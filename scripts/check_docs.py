#!/usr/bin/env python3
"""Docs-lint: documentation must not rot against the tree.

Three checks over README.md and docs/*.md, stdlib only:

  1. Intra-repo markdown links ([text](target)) resolve to a file or
     directory, relative to the linking document (anchors stripped,
     external schemes ignored).
  2. Backtick-quoted repo paths (`src/...`, `tests/...`, `examples/...`,
     `bench/...`, `docs/...`, `scripts/...`, `.github/...`) name something
     that exists. Moving or renaming a source file without updating the
     docs that cite it fails here instead of in review.
  3. Every module directory under src/ has an entry in ARCHITECTURE.md,
     so the module table can never silently omit a new subsystem.

Exit 0 when clean; exit 1 with one line per violation otherwise.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# Directories whose backtick mentions must exist in the tree. Build
# outputs (build/...) and placeholders (BENCH_*.json) are deliberately
# outside this set.
PATH_PREFIXES = ("src", "tests", "examples", "bench", "docs", "scripts", ".github")

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
# A repo path inside backticks: starts at one of the known roots (not
# mid-path — `./build/tests/foo` must not match on its `tests/` infix),
# continues with at least one slash-separated component.
CODE_PATH_RE = re.compile(
    r"`[^`]*?(?<![\w/.])((?:%s)/[\w./-]+)" % "|".join(re.escape(p) for p in PATH_PREFIXES)
)


def doc_files() -> list[Path]:
    files = [REPO / "README.md"]
    files += sorted((REPO / "docs").glob("*.md"))
    return [f for f in files if f.is_file()]


def check_links(doc: Path, text: str, errors: list[str]) -> None:
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        rel = target.split("#", 1)[0]
        if not rel:
            continue
        resolved = (doc.parent / rel).resolve()
        if not resolved.exists():
            errors.append(f"{doc.relative_to(REPO)}: broken link -> {target}")


def path_exists(path: str) -> bool:
    if (REPO / path).exists():
        return True
    # Docs cite build targets and headers by stem (`bench/fig16_serving`,
    # `src/raft/raft_node`); accept a stem when a source file carries it.
    target = REPO / path
    return target.parent.is_dir() and any(target.parent.glob(target.name + ".*"))


def check_code_paths(doc: Path, text: str, errors: list[str]) -> None:
    for match in CODE_PATH_RE.finditer(text):
        path = match.group(1).rstrip(".,:;")
        if not path_exists(path):
            errors.append(f"{doc.relative_to(REPO)}: missing path `{path}`")


def check_module_table(errors: list[str]) -> None:
    arch = REPO / "docs" / "ARCHITECTURE.md"
    if not arch.is_file():
        errors.append("docs/ARCHITECTURE.md: file missing")
        return
    text = arch.read_text(encoding="utf-8")
    for module in sorted(p for p in (REPO / "src").iterdir() if p.is_dir()):
        if not any(module.glob("*.h")) and not any(module.glob("*.cpp")):
            continue
        if f"src/{module.name}" not in text:
            errors.append(
                f"docs/ARCHITECTURE.md: no entry for module src/{module.name}"
            )


def main() -> int:
    errors: list[str] = []
    for doc in doc_files():
        text = doc.read_text(encoding="utf-8")
        check_links(doc, text, errors)
        check_code_paths(doc, text, errors)
    check_module_table(errors)
    if errors:
        for e in errors:
            print(f"docs-lint: {e}", file=sys.stderr)
        print(f"docs-lint: {len(errors)} problem(s)", file=sys.stderr)
        return 1
    print(f"docs-lint: {len(doc_files())} documents clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
