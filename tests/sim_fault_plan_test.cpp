// Tests for the declarative scenario engine: plan building, deterministic
// action execution (crash/recover, link faults, latency/loss overrides,
// traffic, leadership transfer), the deferred crash-of-leader trigger, and
// the scoped restore of every override a runtime installs.
#include <gtest/gtest.h>

#include "sim/fault_plan.h"
#include "sim/scenario.h"
#include "test_cluster_util.h"

namespace escape {
namespace {

using sim::CrashNode;
using sim::FaultPlan;
using sim::HealLink;
using sim::LinkDirection;
using sim::NodeRef;
using sim::PlanRuntime;
using sim::ScenarioRunner;
using sim::SimCluster;
using testutil::paper_escape_cluster;
using testutil::paper_raft_cluster;

TEST(FaultPlanTest, BuilderOrdersAndSpans) {
  FaultPlan plan;
  plan.at(from_ms(100), sim::MarkEpisode{"a"})
      .then(from_ms(50), sim::MarkEpisode{"b"})
      .at(from_ms(20), sim::MarkEpisode{"c"});
  ASSERT_EQ(plan.actions().size(), 3u);
  EXPECT_EQ(plan.actions()[0].at, from_ms(100));
  EXPECT_EQ(plan.actions()[1].at, from_ms(150));
  EXPECT_EQ(plan.actions()[2].at, from_ms(20));
  EXPECT_EQ(plan.span(), from_ms(150));

  // A traffic burst extends the span by its duration.
  FaultPlan burst;
  burst.at(from_ms(10), sim::TrafficBurst{from_ms(500)});
  EXPECT_EQ(burst.span(), from_ms(510));
}

TEST(FaultPlanTest, CrashAndRecoverLeaderViaPlan) {
  ScenarioRunner runner(paper_escape_cluster(5, 11));
  const ServerId old_leader = runner.bootstrap();
  ASSERT_NE(old_leader, kNoServer);

  FaultPlan plan;
  plan.at(0, CrashNode{NodeRef::leader()});
  plan.at(from_ms(6'000), sim::RecoverNode{NodeRef::last_crashed()});
  runner.run_plan(plan, from_ms(4'000));

  EXPECT_EQ(runner.runtime().last_crashed(), old_leader);
  const auto episodes = runner.episodes();
  ASSERT_EQ(episodes.size(), 1u);
  EXPECT_TRUE(episodes[0].converged);
  EXPECT_NE(episodes[0].new_leader, old_leader);
  for (ServerId id : runner.cluster().members()) EXPECT_TRUE(runner.cluster().alive(id));
}

TEST(FaultPlanTest, CrashLeaderDefersWhenLeaderless) {
  ScenarioRunner runner(paper_escape_cluster(5, 12));
  runner.cluster().start_all();  // no election yet: the cluster is leaderless

  FaultPlan plan;
  plan.at(0, CrashNode{NodeRef::leader()});
  const auto result = runner.run_failover_plan(plan, from_ms(60'000));

  // The first elected leader was crashed immediately and a successor took
  // over; the measured episode is the successor's election — never the
  // victim's own (same-tick) win, and never zero-length.
  EXPECT_TRUE(result.converged);
  EXPECT_NE(result.new_leader, runner.runtime().last_crashed());
  EXPECT_GT(result.total, 0);
  bool armed = false, fired = false;
  for (const auto& m : runner.runtime().markers()) {
    if (m.what == "crash (armed)") armed = true;
    if (m.what == "crash (deferred)") fired = true;
  }
  EXPECT_TRUE(armed);
  EXPECT_TRUE(fired);
  EXPECT_NE(runner.cluster().leader(), kNoServer);
  EXPECT_NE(runner.cluster().leader(), runner.runtime().last_crashed());
}

TEST(FaultPlanTest, TrafficBurstSubmitsAndCommits) {
  ScenarioRunner runner(paper_escape_cluster(5, 13));
  ASSERT_NE(runner.bootstrap(), kNoServer);

  FaultPlan plan;
  plan.at(0, sim::TrafficBurst{from_ms(5'000), from_ms(200)});
  runner.run_plan(plan, from_ms(2'000));

  const auto submitted = runner.runtime().traffic_submitted();
  EXPECT_GE(submitted, 20u);
  auto& cluster = runner.cluster();
  EXPECT_GE(cluster.node(cluster.leader()).commit_index(),
            static_cast<LogIndex>(submitted) - 5);
}

TEST(FaultPlanTest, ProposalBurstOpenLoopStormCommits) {
  ScenarioRunner runner(paper_escape_cluster(5, 16));
  ASSERT_NE(runner.bootstrap(), kNoServer);

  FaultPlan plan;
  plan.at(0, sim::ProposalBurst{from_ms(2'000), from_ms(20), 8});
  EXPECT_EQ(plan.span(), from_ms(2'000));  // like TrafficBurst, span covers the storm
  runner.run_plan(plan, from_ms(3'000));

  // 8 proposals every 20 ms for 2 s — an open-loop storm, two orders of
  // magnitude past the TrafficBurst trickle. The pipelined leader has to
  // absorb it as multi-entry batches.
  const auto submitted = runner.runtime().traffic_submitted();
  EXPECT_GE(submitted, 400u);
  auto& cluster = runner.cluster();
  EXPECT_GE(cluster.node(cluster.leader()).commit_index(),
            static_cast<LogIndex>(submitted) - 50);
}

TEST(FaultPlanTest, ProposalBurstRejectsDegenerateParameters) {
  ScenarioRunner runner(paper_escape_cluster(3, 17));
  ASSERT_NE(runner.bootstrap(), kNoServer);

  FaultPlan plan;
  plan.at(0, sim::ProposalBurst{from_ms(100), from_ms(20), /*per_tick=*/0});
  runner.run_plan(plan, from_ms(500));

  bool recorded_failure = false;
  for (const auto& m : runner.runtime().markers()) {
    if (m.what == "proposal-burst" && !m.ok) recorded_failure = true;
  }
  EXPECT_TRUE(recorded_failure);
  EXPECT_EQ(runner.runtime().traffic_submitted(), 0u);
}

TEST(FaultPlanTest, CutLinkDropsTrafficAndAccountsStats) {
  ScenarioRunner runner(paper_escape_cluster(3, 14));
  const ServerId leader = runner.bootstrap();
  ASSERT_NE(leader, kNoServer);
  const ServerId follower = leader == 1 ? 2 : 1;

  FaultPlan plan;
  plan.at(0, sim::CutLink{NodeRef::id(leader), NodeRef::id(follower)});
  runner.run_plan(plan, from_ms(5'000));

  // Heartbeats across the cut pair are dropped and accounted as partition
  // losses. (The cut follower may depose the leader through the third node —
  // leadership is allowed to move; the accounting is what's under test.)
  EXPECT_GT(runner.cluster().network().stats().dropped_partition, 0u);

  FaultPlan heal;
  heal.at(0, HealLink{NodeRef::id(leader), NodeRef::id(follower)});
  runner.run_plan(heal, from_ms(5'000));
  EXPECT_NE(runner.cluster().leader(), kNoServer);

  // With every link healed, partition drops stop accumulating.
  const auto dropped_after_heal = runner.cluster().network().stats().dropped_partition;
  runner.loop().run_until(runner.loop().now() + from_ms(3'000));
  EXPECT_EQ(runner.cluster().network().stats().dropped_partition, dropped_after_heal);
}

TEST(FaultPlanTest, AsymmetricIsolationCutsOneDirectionOnly) {
  ScenarioRunner runner(paper_escape_cluster(5, 15));
  const ServerId leader = runner.bootstrap();
  ASSERT_NE(leader, kNoServer);
  ServerId follower = kNoServer;
  for (ServerId id : runner.cluster().members()) {
    if (id != leader) {
      follower = id;
      break;
    }
  }

  // Outbound-mute the follower: it still hears heartbeats (so it never
  // campaigns) but its replies vanish as partition drops.
  FaultPlan plan;
  plan.at(0, sim::PartialIsolate{NodeRef::id(follower), LinkDirection::kOutbound});
  runner.run_plan(plan, from_ms(5'000));

  auto& cluster = runner.cluster();
  EXPECT_EQ(cluster.leader(), leader);
  EXPECT_EQ(cluster.node(follower).role(), Role::kFollower);
  EXPECT_GT(cluster.network().stats().dropped_partition, 0u);

  FaultPlan heal;
  heal.at(0, sim::HealPartial{NodeRef::id(follower)});
  runner.run_plan(heal, from_ms(2'000));
  EXPECT_EQ(runner.cluster().leader(), leader);
}

TEST(FaultPlanTest, LossRateActionChangesOmissionAndAccountsDrops) {
  ScenarioRunner runner(paper_escape_cluster(5, 16));
  ASSERT_NE(runner.bootstrap(), kNoServer);
  ASSERT_EQ(runner.cluster().network().options().broadcast_omission, 0.0);

  FaultPlan plan;
  plan.at(0, sim::SetLossRate{1.0, 0.0});  // every broadcast fully omitted
  runner.run_plan(plan, from_ms(2'000));

  EXPECT_EQ(runner.cluster().network().options().broadcast_omission, 1.0);
  EXPECT_GT(runner.cluster().network().stats().dropped_omission, 0u);
}

TEST(FaultPlanTest, RuntimeDestructionRestoresOverrides) {
  SimCluster cluster(paper_escape_cluster(3, 17));
  ASSERT_NE(sim::bootstrap(cluster), kNoServer);
  const ServerId leader = cluster.leader();
  const ServerId follower = leader == 1 ? 2 : 1;
  {
    PlanRuntime runtime(cluster);
    FaultPlan plan;
    plan.at(0, sim::SwapLatency{sim::constant_latency(from_ms(50))});
    plan.at(0, sim::SetLossRate{0.3, 0.1});
    plan.at(0, sim::ScriptTimeout{NodeRef::id(follower),
                                  []() -> std::optional<Duration> { return from_ms(77); }});
    runtime.install(plan);
    cluster.loop().run_until(cluster.loop().now() + from_ms(100));

    Rng probe(1);
    EXPECT_EQ(cluster.network().options().latency(1, 2, probe), from_ms(50));
    EXPECT_EQ(cluster.network().options().broadcast_omission, 0.3);
    Rng rng(2);
    EXPECT_EQ(cluster.node(follower).mutable_policy().next_election_timeout(rng),
              from_ms(77));
  }
  // The runtime went out of scope: latency, loss knobs, and the scripted
  // timeout are all back to baseline.
  Rng probe(1);
  for (int i = 0; i < 20; ++i) {
    const auto d = cluster.network().options().latency(1, 2, probe);
    EXPECT_GE(d, from_ms(100));
    EXPECT_LE(d, from_ms(200));
  }
  EXPECT_EQ(cluster.network().options().broadcast_omission, 0.0);
  EXPECT_EQ(cluster.network().options().uniform_loss, 0.0);
  Rng rng(2);
  EXPECT_NE(cluster.node(follower).mutable_policy().next_election_timeout(rng),
            from_ms(77));
}

TEST(FaultPlanTest, DegradeAndRestoreLatency) {
  ScenarioRunner runner(paper_escape_cluster(3, 18));
  ASSERT_NE(runner.bootstrap(), kNoServer);
  const ServerId leader = runner.cluster().leader();

  FaultPlan plan;
  plan.at(0, sim::DegradeNode{NodeRef::id(leader), from_ms(1'000)});
  runner.run_plan(plan);

  Rng probe(1);
  const ServerId other = leader == 1 ? 2 : 1;
  EXPECT_GE(runner.cluster().network().options().latency(leader, other, probe),
            from_ms(1'100));
  EXPECT_LE(runner.cluster().network().options().latency(other, leader, probe),
            from_ms(200));

  FaultPlan restore;
  restore.at(0, sim::RestoreLatency{});
  runner.run_plan(restore);
  EXPECT_LE(runner.cluster().network().options().latency(leader, other, probe),
            from_ms(200));
}

TEST(FaultPlanTest, LeaderTransferViaPlan) {
  ScenarioRunner runner(paper_escape_cluster(5, 19));
  const ServerId old_leader = runner.bootstrap();
  ASSERT_NE(old_leader, kNoServer);

  FaultPlan plan;
  plan.at(0, sim::MarkEpisode{"handover"});
  plan.at(0, sim::LeaderTransfer{NodeRef::top_follower()});
  const auto result = runner.run_failover_plan(plan, from_ms(30'000));

  ASSERT_TRUE(result.converged);
  EXPECT_NE(result.new_leader, old_leader);
  // A TimeoutNow handoff skips the detection wait entirely: the transfer
  // resolves well inside one election timeout.
  EXPECT_LT(result.total, from_ms(1'500));
}

TEST(FaultPlanTest, FailedActionsAreRecordedNotFatal) {
  ScenarioRunner runner(paper_escape_cluster(3, 20));
  ASSERT_NE(runner.bootstrap(), kNoServer);

  FaultPlan plan;
  plan.at(0, sim::RecoverNode{NodeRef::id(1)});          // already alive
  plan.at(0, CrashNode{NodeRef::last_crashed()});        // nothing crashed yet
  plan.at(0, sim::LeaderTransfer{NodeRef::leader()});    // target == leader
  runner.run_plan(plan, from_ms(100));

  ASSERT_EQ(runner.runtime().markers().size(), 3u);
  for (const auto& m : runner.runtime().markers()) EXPECT_FALSE(m.ok);
  EXPECT_NE(runner.cluster().leader(), kNoServer);
}

TEST(FaultPlanTest, SeriesViaRunnerMatchesLegacyDriver) {
  // The legacy free function and the runner must produce identical series
  // (they share the engine; this pins the wrappers to it).
  sim::SeriesOptions opts;
  opts.runs = 3;
  opts.traffic_window = from_ms(1'000);

  SimCluster legacy(paper_escape_cluster(5, 21));
  const auto via_free = sim::measure_failover_series(legacy, opts);

  ScenarioRunner runner(paper_escape_cluster(5, 21));
  const auto via_runner = runner.run_series(opts);

  ASSERT_EQ(via_free.size(), via_runner.size());
  for (std::size_t i = 0; i < via_free.size(); ++i) {
    EXPECT_EQ(via_free[i].converged, via_runner[i].converged);
    EXPECT_EQ(via_free[i].total, via_runner[i].total);
    EXPECT_EQ(via_free[i].new_leader, via_runner[i].new_leader);
    EXPECT_EQ(via_free[i].campaigns, via_runner[i].campaigns);
  }
}

TEST(FaultPlanTest, RaftClusterCrashViaPlanConverges) {
  ScenarioRunner runner(paper_raft_cluster(5, 22));
  ASSERT_NE(runner.bootstrap(), kNoServer);
  const auto result = runner.measure_failover();
  EXPECT_TRUE(result.converged);
  EXPECT_GE(result.campaigns, 1u);
}

}  // namespace
}  // namespace escape
