// Tests for the simulation substrate: event loop determinism/ordering and
// the network model (latency, loss, broadcast omission, partitions).
#include <gtest/gtest.h>

#include "sim/event_loop.h"
#include "sim/network.h"

namespace escape::sim {
namespace {

TEST(EventLoopTest, ProcessesInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(30, [&] { order.push_back(3); });
  loop.schedule_at(10, [&] { order.push_back(1); });
  loop.schedule_at(20, [&] { order.push_back(2); });
  loop.run_until(100);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 100);
}

TEST(EventLoopTest, TiesBreakByInsertionOrder) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    loop.schedule_at(10, [&order, i] { order.push_back(i); });
  }
  loop.run_until(10);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoopTest, RunUntilStopsAtBoundary) {
  EventLoop loop;
  int fired = 0;
  loop.schedule_at(10, [&] { ++fired; });
  loop.schedule_at(20, [&] { ++fired; });
  loop.run_until(15);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.now(), 15);
  loop.run_until(20);  // inclusive boundary
  EXPECT_EQ(fired, 2);
}

TEST(EventLoopTest, EventsScheduleEvents) {
  EventLoop loop;
  std::vector<TimePoint> at;
  loop.schedule_at(10, [&] {
    at.push_back(loop.now());
    loop.schedule_after(5, [&] { at.push_back(loop.now()); });
  });
  loop.run_until(100);
  EXPECT_EQ(at, (std::vector<TimePoint>{10, 15}));
}

TEST(EventLoopTest, PastSchedulingClampsToNow) {
  EventLoop loop;
  loop.schedule_at(50, [&] {
    loop.schedule_at(10, [&] { EXPECT_EQ(loop.now(), 50); });
  });
  EXPECT_EQ(loop.run_until(100), 2u);
}

TEST(EventLoopTest, StopInterruptsRun) {
  EventLoop loop;
  int fired = 0;
  loop.schedule_at(10, [&] {
    ++fired;
    loop.stop();
  });
  loop.schedule_at(20, [&] { ++fired; });
  loop.run_until_stopped(100);
  EXPECT_EQ(fired, 1);
  loop.run_until_stopped(100);
  EXPECT_EQ(fired, 2);
}

TEST(EventLoopTest, ProcessedCounter) {
  EventLoop loop;
  for (int i = 0; i < 7; ++i) loop.schedule_at(i, [] {});
  loop.run_until(100);
  EXPECT_EQ(loop.processed(), 7u);
  EXPECT_TRUE(loop.empty());
}

// --- network ------------------------------------------------------------------

struct NetFixture {
  explicit NetFixture(NetworkOptions opts = {}) {
    net = std::make_unique<SimNetwork>(loop, std::move(opts), Rng(5),
                                       [this](const rpc::Envelope& env) {
                                         delivered.push_back(env);
                                         delivery_times.push_back(loop.now());
                                       });
  }

  rpc::Envelope envelope(ServerId from, ServerId to) {
    rpc::RequestVote rv;
    rv.term = 1;
    rv.candidate_id = from;
    return {from, to, rv};
  }

  std::vector<rpc::Envelope> broadcast(ServerId from, std::size_t n) {
    std::vector<rpc::Envelope> batch;
    for (ServerId to = 1; to <= n; ++to) {
      if (to != from) batch.push_back(envelope(from, to));
    }
    return batch;
  }

  EventLoop loop;
  std::unique_ptr<SimNetwork> net;
  std::vector<rpc::Envelope> delivered;
  std::vector<TimePoint> delivery_times;
};

TEST(SimNetworkTest, DeliversWithLatencyInRange) {
  NetworkOptions opts;
  opts.latency = uniform_latency(from_ms(100), from_ms(200));
  NetFixture f(std::move(opts));
  for (int i = 0; i < 200; ++i) f.net->send(f.envelope(1, 2));
  f.loop.run_until(from_ms(1000));
  ASSERT_EQ(f.delivered.size(), 200u);
  for (auto t : f.delivery_times) {
    EXPECT_GE(t, from_ms(100));
    EXPECT_LE(t, from_ms(200));
  }
}

TEST(SimNetworkTest, ConstantLatency) {
  NetworkOptions opts;
  opts.latency = constant_latency(from_ms(50));
  NetFixture f(std::move(opts));
  f.net->send(f.envelope(1, 2));
  f.loop.run_until(from_ms(1000));
  ASSERT_EQ(f.delivery_times.size(), 1u);
  EXPECT_EQ(f.delivery_times[0], from_ms(50));
}

TEST(SimNetworkTest, GroupedLatencySeparatesIntraAndInter) {
  NetworkOptions opts;
  // Servers 1-2 in group 0, servers 3-4 in group 1.
  opts.latency = grouped_latency([](ServerId id) { return id <= 2 ? 0 : 1; }, from_ms(1),
                                 from_ms(5), from_ms(100), from_ms(120));
  NetFixture f(std::move(opts));
  f.net->send(f.envelope(1, 2));  // intra
  f.loop.run_until(from_ms(1000));
  EXPECT_LE(f.delivery_times.at(0), from_ms(5));
  f.net->send(f.envelope(1, 3));  // inter
  f.loop.run_until(from_ms(2000));
  EXPECT_GE(f.delivery_times.at(1) - f.delivery_times.at(0), from_ms(90));
}

TEST(SimNetworkTest, UniformLossDropsApproximately) {
  NetworkOptions opts;
  opts.uniform_loss = 0.5;
  NetFixture f(std::move(opts));
  for (int i = 0; i < 1000; ++i) f.net->send(f.envelope(1, 2));
  f.loop.run_until(from_ms(10'000));
  EXPECT_NEAR(static_cast<double>(f.delivered.size()), 500.0, 80.0);
  EXPECT_EQ(f.net->stats().dropped_loss + f.delivered.size(), 1000u);
}

TEST(SimNetworkTest, BroadcastOmissionDropsExactFraction) {
  NetworkOptions opts;
  opts.broadcast_omission = 0.4;
  NetFixture f(std::move(opts));
  // Broadcast of 10 receivers: exactly 4 omitted each time.
  for (int round = 0; round < 50; ++round) {
    f.delivered.clear();
    f.net->send_batch(f.broadcast(11, 11));  // 10 receivers (self excluded)
    f.loop.run_until(f.loop.now() + from_ms(1000));
    EXPECT_EQ(f.delivered.size(), 6u) << "round " << round;
  }
}

TEST(SimNetworkTest, OmissionTargetsVary) {
  NetworkOptions opts;
  opts.broadcast_omission = 0.4;
  NetFixture f(std::move(opts));
  std::set<ServerId> ever_dropped;
  for (int round = 0; round < 100; ++round) {
    f.delivered.clear();
    f.net->send_batch(f.broadcast(11, 11));
    f.loop.run_until(f.loop.now() + from_ms(1000));
    std::set<ServerId> got;
    for (const auto& env : f.delivered) got.insert(env.to);
    for (ServerId id = 1; id <= 10; ++id) {
      if (got.count(id) == 0) ever_dropped.insert(id);
    }
  }
  // Every receiver should be omitted at least once over 100 rounds.
  EXPECT_EQ(ever_dropped.size(), 10u);
}

TEST(SimNetworkTest, SingletonBatchIgnoresOmission) {
  NetworkOptions opts;
  opts.broadcast_omission = 1.0;
  NetFixture f(std::move(opts));
  // Unicast replies are not subject to broadcast omission.
  std::vector<rpc::Envelope> one{f.envelope(1, 2)};
  for (int i = 0; i < 20; ++i) f.net->send_batch(one);
  f.loop.run_until(from_ms(10'000));
  EXPECT_EQ(f.delivered.size(), 20u);
}

TEST(SimNetworkTest, MixedBatchSplitsIntoGroups) {
  NetworkOptions opts;
  opts.broadcast_omission = 0.5;
  NetFixture f(std::move(opts));
  // 4 RequestVotes (broadcast -> 2 dropped) followed by 1 reply (kept).
  auto batch = f.broadcast(5, 5);  // 4 RequestVotes
  rpc::RequestVoteReply reply;
  reply.term = 1;
  batch.push_back({5, 1, reply});
  f.net->send_batch(batch);
  f.loop.run_until(from_ms(1000));
  EXPECT_EQ(f.delivered.size(), 3u);  // 2 of 4 RVs + the reply
}

TEST(SimNetworkTest, IsolationCutsBothDirections) {
  NetFixture f;
  f.net->isolate(2);
  f.net->send(f.envelope(1, 2));
  f.net->send(f.envelope(2, 1));
  f.loop.run_until(from_ms(1000));
  EXPECT_TRUE(f.delivered.empty());
  EXPECT_EQ(f.net->stats().dropped_partition, 2u);

  f.net->heal(2);
  f.net->send(f.envelope(1, 2));
  f.loop.run_until(from_ms(2000));
  EXPECT_EQ(f.delivered.size(), 1u);
}

TEST(SimNetworkTest, LinkCutIsPairwise) {
  NetFixture f;
  f.net->cut_link(1, 2);
  f.net->send(f.envelope(1, 2));
  f.net->send(f.envelope(2, 1));
  f.net->send(f.envelope(1, 3));
  f.loop.run_until(from_ms(1000));
  ASSERT_EQ(f.delivered.size(), 1u);
  EXPECT_EQ(f.delivered[0].to, 3u);
  f.net->heal_link(1, 2);
  f.net->send(f.envelope(1, 2));
  f.loop.run_until(from_ms(2000));
  EXPECT_EQ(f.delivered.size(), 2u);
}

TEST(SimNetworkTest, StatsAccounting) {
  NetworkOptions opts;
  opts.uniform_loss = 1.0;
  NetFixture f(std::move(opts));
  for (int i = 0; i < 5; ++i) f.net->send(f.envelope(1, 2));
  EXPECT_EQ(f.net->stats().sent, 5u);
  EXPECT_EQ(f.net->stats().dropped_loss, 5u);
  EXPECT_EQ(f.net->stats().delivered, 0u);
}

}  // namespace
}  // namespace escape::sim
