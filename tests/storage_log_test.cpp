#include "storage/log.h"

#include <gtest/gtest.h>

namespace escape::storage {
namespace {

rpc::LogEntry entry(Term t, LogIndex i) {
  rpc::LogEntry e;
  e.term = t;
  e.index = i;
  e.command = {static_cast<std::uint8_t>(i & 0xFF)};
  return e;
}

TEST(LogTest, EmptyLog) {
  Log log;
  EXPECT_EQ(log.last_index(), 0);
  EXPECT_EQ(log.last_term(), 0);
  EXPECT_EQ(log.first_index(), 1);
  EXPECT_EQ(log.term_at(0), Term{0});
  EXPECT_FALSE(log.term_at(1).has_value());
  EXPECT_EQ(log.entry_at(1), nullptr);
  EXPECT_TRUE(log.matches(0, 0));
  EXPECT_FALSE(log.matches(1, 1));
}

TEST(LogTest, AppendAndQuery) {
  Log log;
  log.append(entry(1, 1));
  log.append(entry(1, 2));
  log.append(entry(2, 3));
  EXPECT_EQ(log.last_index(), 3);
  EXPECT_EQ(log.last_term(), 2);
  EXPECT_EQ(log.term_at(2), Term{1});
  EXPECT_EQ(log.term_at(3), Term{2});
  ASSERT_NE(log.entry_at(2), nullptr);
  EXPECT_EQ(log.entry_at(2)->index, 2);
  EXPECT_TRUE(log.matches(2, 1));
  EXPECT_FALSE(log.matches(2, 2));
}

TEST(LogTest, NonContiguousAppendThrows) {
  Log log;
  log.append(entry(1, 1));
  EXPECT_THROW(log.append(entry(1, 3)), std::logic_error);
  EXPECT_THROW(log.append(entry(1, 1)), std::logic_error);
}

TEST(LogTest, TruncateFrom) {
  Log log;
  for (LogIndex i = 1; i <= 5; ++i) log.append(entry(1, i));
  log.truncate_from(3);
  EXPECT_EQ(log.last_index(), 2);
  EXPECT_FALSE(log.term_at(3).has_value());
  log.append(entry(2, 3));  // re-append after truncation
  EXPECT_EQ(log.term_at(3), Term{2});
}

TEST(LogTest, TruncateBeyondTailIsNoop) {
  Log log;
  log.append(entry(1, 1));
  log.truncate_from(5);
  EXPECT_EQ(log.last_index(), 1);
}

TEST(LogTest, SliceClampsToTail) {
  Log log;
  for (LogIndex i = 1; i <= 5; ++i) log.append(entry(1, i));
  const auto s = log.slice(4, 10);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0].index, 4);
  EXPECT_EQ(s[1].index, 5);
  EXPECT_TRUE(log.slice(6, 10).empty());
  EXPECT_EQ(log.slice(1, 2).size(), 2u);
}

TEST(LogTest, UpToDateComparison) {
  Log log;
  log.append(entry(1, 1));
  log.append(entry(3, 2));
  // Higher last term wins regardless of length.
  EXPECT_TRUE(log.candidate_is_up_to_date(1, 4));
  EXPECT_FALSE(log.candidate_is_up_to_date(10, 2));
  // Equal last term: longer (or equal) log wins.
  EXPECT_TRUE(log.candidate_is_up_to_date(2, 3));
  EXPECT_TRUE(log.candidate_is_up_to_date(3, 3));
  EXPECT_FALSE(log.candidate_is_up_to_date(1, 3));
}

TEST(LogTest, UpToDateAgainstEmptyLog) {
  Log log;
  EXPECT_TRUE(log.candidate_is_up_to_date(0, 0));
  EXPECT_TRUE(log.candidate_is_up_to_date(5, 2));
}

TEST(LogTest, TermIndexSearches) {
  Log log;
  log.append(entry(1, 1));
  log.append(entry(2, 2));
  log.append(entry(2, 3));
  log.append(entry(4, 4));
  EXPECT_EQ(log.first_index_of_term(2), LogIndex{2});
  EXPECT_EQ(log.last_index_of_term(2), LogIndex{3});
  EXPECT_EQ(log.first_index_of_term(4), LogIndex{4});
  EXPECT_FALSE(log.first_index_of_term(3).has_value());
  EXPECT_FALSE(log.last_index_of_term(9).has_value());
}

TEST(LogTest, CompactTo) {
  Log log;
  for (LogIndex i = 1; i <= 6; ++i) log.append(entry(1, i));
  log.compact_to(3);
  EXPECT_EQ(log.first_index(), 4);
  EXPECT_EQ(log.last_index(), 6);
  EXPECT_EQ(log.base(), 3);
  EXPECT_EQ(log.base_term(), 1);
  // The boundary retains its term (the consistency check must still match
  // there) but the entry itself is gone; deeper indices are unknown.
  EXPECT_EQ(log.term_at(3), Term{1});
  EXPECT_TRUE(log.matches(3, 1));
  EXPECT_EQ(log.entry_at(3), nullptr);
  EXPECT_FALSE(log.term_at(2).has_value());
  EXPECT_EQ(log.term_at(4), Term{1});
  // Appends continue at the tail.
  log.append(entry(2, 7));
  EXPECT_EQ(log.last_index(), 7);
  // Truncation inside the compacted range is illegal.
  EXPECT_THROW(log.truncate_from(2), std::logic_error);
  // Slice starting in the compacted prefix returns empty (caller snapshots).
  EXPECT_TRUE(log.slice(2, 3).empty());
  // Compacting backwards is a no-op; past the tail is illegal.
  log.compact_to(2);
  EXPECT_EQ(log.base(), 3);
  EXPECT_THROW(log.compact_to(8), std::logic_error);
}

TEST(LogTest, CompactEntireLogThenGrow) {
  Log log;
  for (LogIndex i = 1; i <= 3; ++i) log.append(entry(2, i));
  log.compact_to(3);
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.last_index(), 3);
  // A fully compacted log keeps the boundary term as its last term, so the
  // election up-to-date comparison treats it as owning the absorbed suffix.
  EXPECT_EQ(log.last_term(), 2);
  EXPECT_FALSE(log.candidate_is_up_to_date(2, 2));
  EXPECT_TRUE(log.candidate_is_up_to_date(3, 2));
  log.append(entry(3, 4));
  EXPECT_EQ(log.term_at(4), Term{3});
  EXPECT_EQ(log.last_term(), 3);
}

TEST(LogTest, ResetToRebasesOntoSnapshot) {
  Log log;
  for (LogIndex i = 1; i <= 4; ++i) log.append(entry(1, i));
  // InstallSnapshot ahead of the tail: everything is discarded and the log
  // continues from the snapshot boundary.
  log.reset_to(10, 5);
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.base(), 10);
  EXPECT_EQ(log.base_term(), 5);
  EXPECT_EQ(log.last_index(), 10);
  EXPECT_EQ(log.last_term(), 5);
  EXPECT_TRUE(log.matches(10, 5));
  EXPECT_FALSE(log.term_at(4).has_value());
  log.append(entry(5, 11));
  EXPECT_EQ(log.last_index(), 11);
}

TEST(LogTest, ApproxBytesTracksSuffixOnly) {
  Log log;
  for (LogIndex i = 1; i <= 4; ++i) log.append(entry(1, i));  // 1-byte commands
  EXPECT_EQ(log.approx_bytes(), 4 * 17u);
  log.compact_to(3);
  EXPECT_EQ(log.approx_bytes(), 17u);
}

}  // namespace
}  // namespace escape::storage
