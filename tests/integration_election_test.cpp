// Cluster-level election tests for all three policies, including the
// paper's headline behaviours: ESCAPE's single-campaign convergence
// (Lemma 5), the f+1 liveness bound (Theorem 4), and recovery safety.
#include <gtest/gtest.h>

#include "test_cluster_util.h"

namespace escape {
namespace {

using sim::InvariantChecker;
using sim::SimCluster;
using testutil::paper_escape_cluster;
using testutil::paper_raft_cluster;

class ElectionSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ElectionSeedTest, RaftElectsExactlyOneLeader) {
  SimCluster cluster(paper_raft_cluster(5, GetParam()));
  InvariantChecker inv(cluster);
  const ServerId leader = sim::bootstrap(cluster);
  ASSERT_NE(leader, kNoServer);
  // Exactly one leader among alive nodes.
  int leaders = 0;
  for (ServerId id : cluster.members()) {
    if (cluster.node(id).role() == Role::kLeader) ++leaders;
  }
  EXPECT_EQ(leaders, 1);
  EXPECT_TRUE(inv.ok()) << inv.violations().front();
}

TEST_P(ElectionSeedTest, EscapeElectsLeaderAndDistributesConfigs) {
  SimCluster cluster(paper_escape_cluster(5, GetParam()));
  InvariantChecker inv(cluster);
  const ServerId leader = sim::bootstrap(cluster);
  ASSERT_NE(leader, kNoServer);
  // After settling, every follower holds a fresh patrol-issued config with
  // distinct priorities drawn from the pool {2..n} (leader parks at 1).
  std::set<Priority> priorities;
  for (ServerId id : cluster.members()) {
    const auto cfg = cluster.node(id).policy().current_config();
    if (id == leader) continue;
    EXPECT_GT(cfg.conf_clock, 0) << server_name(id) << " never adopted a patrol config";
    priorities.insert(cfg.priority);
  }
  EXPECT_EQ(priorities.size(), cluster.size() - 1);
  EXPECT_EQ(priorities.count(1), 0u);
  EXPECT_TRUE(inv.ok()) << inv.violations().front();
}

TEST_P(ElectionSeedTest, EscapeFailoverConvergesInOneCampaign) {
  SimCluster cluster(paper_escape_cluster(5, GetParam()));
  InvariantChecker inv(cluster);
  ASSERT_NE(sim::bootstrap(cluster), kNoServer);
  const auto result = sim::measure_failover(cluster);
  ASSERT_TRUE(result.converged);
  // Lemma 5: with nonfaulty candidates, exactly one campaign elects.
  EXPECT_EQ(result.campaigns, 1u);
  // Detection is the top candidate's baseTime timeout; election one RTT.
  EXPECT_LE(result.total, from_ms(2100));
  EXPECT_GE(result.total, from_ms(1500));
  EXPECT_TRUE(inv.ok()) << inv.violations().front();
}

TEST_P(ElectionSeedTest, RaftFailoverConverges) {
  SimCluster cluster(paper_raft_cluster(5, GetParam()));
  InvariantChecker inv(cluster);
  ASSERT_NE(sim::bootstrap(cluster), kNoServer);
  const auto result = sim::measure_failover(cluster);
  ASSERT_TRUE(result.converged);
  EXPECT_GE(result.campaigns, 1u);
  EXPECT_TRUE(inv.ok()) << inv.violations().front();
}

TEST_P(ElectionSeedTest, ZRaftFailoverConverges) {
  SimCluster cluster(testutil::paper_cluster(5, testutil::zraft_factory(), GetParam()));
  InvariantChecker inv(cluster);
  ASSERT_NE(sim::bootstrap(cluster), kNoServer);
  const auto result = sim::measure_failover(cluster);
  ASSERT_TRUE(result.converged);
  EXPECT_TRUE(inv.ok()) << inv.violations().front();
}

TEST_P(ElectionSeedTest, EscapeConvergesUnderMessageLoss) {
  auto options = paper_escape_cluster(7, GetParam());
  options.network.broadcast_omission = 0.3;
  SimCluster cluster(options);
  InvariantChecker inv(cluster, /*check_configs=*/false);  // loss-tolerant run
  ASSERT_NE(sim::bootstrap(cluster), kNoServer);
  const auto result = sim::measure_failover(cluster, from_ms(120'000));
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(inv.ok()) << inv.violations().front();
}

TEST_P(ElectionSeedTest, RaftConvergesUnderMessageLoss) {
  auto options = paper_raft_cluster(7, GetParam());
  options.network.broadcast_omission = 0.3;
  SimCluster cluster(options);
  InvariantChecker inv(cluster);
  ASSERT_NE(sim::bootstrap(cluster), kNoServer);
  const auto result = sim::measure_failover(cluster, from_ms(120'000));
  EXPECT_TRUE(result.converged);
  EXPECT_TRUE(inv.ok()) << inv.violations().front();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ElectionSeedTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

// The Figure 9 headline as a test: ESCAPE's single-campaign convergence is
// scale-invariant.
class EscapeScaleTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {};

TEST_P(EscapeScaleTest, SingleCampaignAtEveryScale) {
  const auto [scale, seed] = GetParam();
  SimCluster cluster(paper_escape_cluster(scale, seed));
  ASSERT_NE(sim::bootstrap(cluster), kNoServer);
  const auto result = sim::measure_failover(cluster);
  ASSERT_TRUE(result.converged);
  EXPECT_EQ(result.campaigns, 1u);
  EXPECT_LE(result.total, from_ms(2100));  // baseTime + one vote round trip
}

INSTANTIATE_TEST_SUITE_P(Scales, EscapeScaleTest,
                         ::testing::Combine(::testing::Values<std::size_t>(8, 16, 32, 64),
                                            ::testing::Values<std::uint64_t>(17, 71, 171)));

TEST(ElectionTest, CrashedLeaderRejoinsAsFollower) {
  SimCluster cluster(paper_escape_cluster(5, 7));
  InvariantChecker inv(cluster);
  const ServerId old_leader = sim::bootstrap(cluster);
  ASSERT_NE(old_leader, kNoServer);
  const auto result = sim::measure_failover(cluster);
  ASSERT_TRUE(result.converged);

  cluster.recover(old_leader);
  cluster.loop().run_until(cluster.loop().now() + from_ms(5'000));
  EXPECT_EQ(cluster.node(old_leader).role(), Role::kFollower);
  EXPECT_EQ(cluster.node(old_leader).leader_hint(), result.new_leader);
  // Its term caught up with the new regime.
  EXPECT_GE(cluster.node(old_leader).term(), result.new_term);
  EXPECT_TRUE(inv.ok()) << inv.violations().front();
  inv.deep_check();
  EXPECT_TRUE(inv.ok()) << inv.violations().front();
}

TEST(ElectionTest, EscapeToleratesCascadingCandidateFailures) {
  // Theorem 4: if the best candidate crashes as soon as it campaigns, the
  // next-priority candidate takes over; with f crash failures the system
  // still elects within f+1 campaigns.
  SimCluster cluster(paper_escape_cluster(5, 11));
  InvariantChecker inv(cluster);
  ASSERT_NE(sim::bootstrap(cluster), kNoServer);

  // f = 2 for n = 5; the crashed leader consumes one failure, leaving one
  // candidate crash before the quorum itself would be lost.
  int crashes_budget = 1;
  std::size_t campaigns = 0;
  cluster.add_event_listener([&](const raft::NodeEvent& e) {
    if (e.kind != raft::NodeEvent::Kind::kCampaignStarted) return;
    ++campaigns;
    if (crashes_budget > 0) {
      --crashes_budget;
      // Deferred: crashing the node mid-event would destroy the object
      // whose member function is on the stack.
      cluster.loop().schedule_after(0, [&cluster, id = e.node] {
        if (cluster.alive(id)) cluster.crash(id);
      });
    }
  });

  const TimePoint crash_at = cluster.loop().now();
  cluster.crash(cluster.leader());
  const auto elected = cluster.run_until_event(
      [](const raft::NodeEvent& e) { return e.kind == raft::NodeEvent::Kind::kBecameLeader; },
      crash_at + from_ms(120'000));
  ASSERT_TRUE(elected.has_value());
  EXPECT_LE(campaigns, 3u);  // f + 1 = 3 campaigns suffice
  EXPECT_TRUE(inv.ok()) << inv.violations().front();
}

TEST(ElectionTest, ForcedCompetitionSplitsRaftButNotEscape) {
  // The Figure 10 mechanism, validated qualitatively: with two forced
  // competing-candidate phases Raft needs extra full timeout rounds, while
  // ESCAPE's term scattering resolves the same collision in one round.
  sim::CompetitionOptions comp;
  comp.phases = 2;

  SimCluster raft(paper_raft_cluster(5, 17));
  ASSERT_NE(sim::bootstrap(raft), kNoServer);
  const auto raft_result = sim::measure_failover_with_competition(raft, comp);
  ASSERT_TRUE(raft_result.converged);

  SimCluster esc(paper_escape_cluster(5, 17));
  ASSERT_NE(sim::bootstrap(esc), kNoServer);
  const auto esc_result = sim::measure_failover_with_competition(esc, comp);
  ASSERT_TRUE(esc_result.converged);

  // Raft pays ~2 extra timeout rounds (>= 2 x 1500 ms) over ESCAPE.
  EXPECT_GE(raft_result.total, esc_result.total + from_ms(2'000));
  EXPECT_LE(esc_result.total, from_ms(2'500));
  // Raft needed several campaigns; ESCAPE at most the two colliding ones.
  EXPECT_GE(raft_result.campaigns, 3u);
  EXPECT_LE(esc_result.campaigns, 2u);
}

TEST(ElectionTest, GeoGroupedLatencyStillConverges) {
  // Section II-B's split-vote-prone topology: two "data centers" with fast
  // intra-group and slow inter-group links.
  auto options = paper_escape_cluster(6, 23);
  options.network.latency = sim::grouped_latency(
      [](ServerId id) { return id <= 3 ? 0 : 1; }, from_ms(5), from_ms(15), from_ms(150),
      from_ms(250));
  SimCluster cluster(options);
  InvariantChecker inv(cluster);
  ASSERT_NE(sim::bootstrap(cluster), kNoServer);
  const auto result = sim::measure_failover(cluster);
  ASSERT_TRUE(result.converged);
  EXPECT_EQ(result.campaigns, 1u);  // priority scattering still prevents splits
  EXPECT_TRUE(inv.ok()) << inv.violations().front();
}

TEST(ElectionTest, RepeatedFailoversStaySafe) {
  SimCluster cluster(paper_escape_cluster(5, 29));
  InvariantChecker inv(cluster);
  ASSERT_NE(sim::bootstrap(cluster), kNoServer);
  ServerId crashed_first = kNoServer;
  for (int round = 0; round < 2; ++round) {  // only f=2 crashes allowed without recovery
    const ServerId leader = cluster.leader();
    if (round == 0) crashed_first = leader;
    const auto result = sim::measure_failover(cluster);
    ASSERT_TRUE(result.converged) << "round " << round;
  }
  cluster.recover(crashed_first);
  cluster.loop().run_until(cluster.loop().now() + from_ms(5'000));
  ASSERT_NE(cluster.leader(), kNoServer);
  EXPECT_TRUE(inv.ok()) << inv.violations().front();
  inv.deep_check();
  EXPECT_TRUE(inv.ok()) << inv.violations().front();
}

TEST(ElectionTest, IsolatedLeaderDeposedOnHeal) {
  // Network partition (not crash): the leader keeps running but is cut off;
  // the majority elects a replacement; on heal the stale leader steps down.
  SimCluster cluster(paper_escape_cluster(5, 31));
  InvariantChecker inv(cluster);
  const ServerId old_leader = sim::bootstrap(cluster);
  ASSERT_NE(old_leader, kNoServer);

  cluster.network().isolate(old_leader);
  const auto elected = cluster.run_until_event(
      [&](const raft::NodeEvent& e) {
        return e.kind == raft::NodeEvent::Kind::kBecameLeader && e.node != old_leader;
      },
      cluster.loop().now() + from_ms(60'000));
  ASSERT_TRUE(elected.has_value());

  cluster.network().heal(old_leader);
  cluster.loop().run_until(cluster.loop().now() + from_ms(5'000));
  EXPECT_EQ(cluster.node(old_leader).role(), Role::kFollower);
  EXPECT_TRUE(inv.ok()) << inv.violations().front();
}

}  // namespace
}  // namespace escape
