// Byte-level fingerprinting of Ready batches for the determinism and
// driver-conformance suites: two runs are "the same" exactly when their
// concatenated fingerprints compare equal. Messages and snapshots go through
// the real wire/storage encoders, so any divergence a peer or a disk could
// observe shows up here.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "raft/ready.h"
#include "rpc/messages.h"
#include "storage/snapshot_store.h"

namespace escape::raft {

inline std::string hex_bytes(const std::vector<std::uint8_t>& bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (std::uint8_t b : bytes) {
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0xF]);
  }
  return out;
}

inline std::string fingerprint(const Ready& rd) {
  std::ostringstream os;
  os << "seq=" << rd.sequence << '\n';
  if (rd.hard_state) {
    os << "hs term=" << rd.hard_state->current_term << " vote=" << rd.hard_state->voted_for
       << " cfg=" << rpc::to_string(rd.hard_state->config) << '\n';
  }
  for (const LogOp& op : rd.log_ops) {
    switch (op.kind) {
      case LogOp::Kind::kAppend:
        os << "op append " << op.entry.index << ':' << op.entry.term << ':'
           << hex_bytes(op.entry.command) << '\n';
        break;
      case LogOp::Kind::kTruncateFrom:
        os << "op truncate_from " << op.index << '\n';
        break;
      case LogOp::Kind::kCompactTo:
        os << "op compact_to " << op.index << '\n';
        break;
      case LogOp::Kind::kSaveSnapshot:
        os << "op save_snapshot " << hex_bytes(storage::encode_snapshot(*op.snapshot)) << '\n';
        break;
    }
  }
  for (const rpc::Envelope& env : rd.messages) {
    os << "msg " << env.from << ">" << env.to << ' ' << hex_bytes(rpc::encode_message(env.message))
       << '\n';
  }
  if (rd.restore) {
    os << "restore " << hex_bytes(storage::encode_snapshot(**rd.restore)) << '\n';
  }
  for (const rpc::LogEntry& e : rd.committed) {
    os << "commit " << e.index << ':' << e.term << ':' << hex_bytes(e.command) << '\n';
  }
  for (const ReadGrant& g : rd.read_grants) {
    os << "read id=" << g.id << " idx=" << g.read_index << " ok=" << g.ok
       << " lease=" << g.via_lease << '\n';
  }
  if (rd.soft_state) {
    os << "soft role=" << static_cast<int>(rd.soft_state->role)
       << " leader=" << rd.soft_state->leader << " term=" << rd.soft_state->term
       << " cc=" << rd.soft_state->conf_clock << '\n';
  }
  return os.str();
}

}  // namespace escape::raft
