// Tests for the multi-group checker and the shard_failover_storm scenario:
// cross-shard invariants hold under randomized host faults, trials are
// deterministic functions of their seed, and the storm scenario measures
// what it claims.
#include <gtest/gtest.h>

#include "shard/shard_check.h"

namespace escape::shard {
namespace {

ShardCheckOptions small_check() {
  ShardCheckOptions options;
  options.trials = 6;
  options.root_seed = 0xA11CE;
  options.threads = 2;
  options.min_shards = 2;
  options.max_shards = 3;
  options.max_fault_rounds = 4;
  options.drain = from_ms(15'000);
  options.check_determinism = false;  // covered by its own test below
  return options;
}

TEST(ShardCheckTest, SmallRandomizedRunHoldsCrossShardInvariants) {
  const auto result = run_shard_check(small_check());
  EXPECT_EQ(result.trials, 6u);
  EXPECT_EQ(result.bootstrapped, 6u);
  for (const auto& failure : result.failures) {
    ADD_FAILURE() << failure.repro << " [" << failure.policy << ", " << failure.shards
                  << " shards]: " << failure.violations.front();
  }
  // The run must actually have exercised the machinery it audits.
  EXPECT_GT(result.host_crashes, 0u);
  EXPECT_GT(result.ops, 0u);
  EXPECT_GT(result.reads_checked, 0u);
}

TEST(ShardCheckTest, TrialsAreDeterministicFunctionsOfTheirSeed) {
  auto options = small_check();
  const auto a = run_shard_trial(0xDEC0DE, options);
  const auto b = run_shard_trial(0xDEC0DE, options);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.ops, b.ops);
  EXPECT_EQ(a.host_crashes, b.host_crashes);
  EXPECT_EQ(a.policy, b.policy);

  // And the built-in replay agrees with itself.
  options.check_determinism = true;
  const auto c = run_shard_trial(0xDEC0DE, options);
  EXPECT_EQ(c.violations, a.violations);
}

TEST(ShardCheckTest, StormScenarioMeasuresEveryOrphanedShard) {
  StormOptions options;
  options.policy = "escape";
  options.shards = 6;
  options.hosts = 5;
  options.leaders_on_victim = 4;
  options.seed = 7;
  const auto report = run_shard_failover_storm(options);
  ASSERT_TRUE(report.bootstrapped);
  EXPECT_GE(report.leaders_packed, 4u);
  EXPECT_GE(report.shards_hit, 4u);
  ASSERT_TRUE(report.all_recovered);
  EXPECT_EQ(report.per_shard_total.size(), report.shards_hit);
  EXPECT_GT(report.first_recovery, 0);
  EXPECT_GE(report.storm_total, report.first_recovery);
  EXPECT_TRUE(report.violations.empty())
      << report.violations.front();
}

TEST(ShardCheckTest, RegistryExposesTheStormScenario) {
  EXPECT_TRUE(has_shard_scenario("shard_failover_storm"));
  EXPECT_FALSE(has_shard_scenario("no_such_scenario"));
  EXPECT_THROW(run_shard_scenario("no_such_scenario", {}), std::invalid_argument);
  const auto names = shard_scenario_names();
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names.front(), "shard_failover_storm");
}

TEST(ShardCheckTest, MakeShardedOptionsRejectsUnknownPolicy) {
  EXPECT_THROW(make_sharded_options("paxos", 2, 3, 1), std::invalid_argument);
}

}  // namespace
}  // namespace escape::shard
