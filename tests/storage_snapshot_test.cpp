// SnapshotStore: serialization roundtrip, corruption rejection, the
// file-backed store's atomic-replace contract, and WAL compaction records
// (MemoryWal rebasing and FileWal compact-record replay across reopens).
#include "storage/snapshot_store.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include <unistd.h>

#include "storage/wal.h"

namespace escape::storage {
namespace {

Snapshot sample_snapshot() {
  Snapshot s;
  s.last_included_index = 42;
  s.last_included_term = 7;
  s.config.priority = 5;
  s.config.conf_clock = (ConfClock{9} << 20) + 3;
  s.config.timer_period = from_ms(1500);
  s.state = {0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x42};
  return s;
}

rpc::LogEntry entry(Term t, LogIndex i) {
  rpc::LogEntry e;
  e.term = t;
  e.index = i;
  e.command = {static_cast<std::uint8_t>(i), static_cast<std::uint8_t>(t)};
  return e;
}

TEST(SnapshotSerdeTest, Roundtrip) {
  const Snapshot s = sample_snapshot();
  const auto buf = encode_snapshot(s);
  const auto back = decode_snapshot(buf);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, s);
}

TEST(SnapshotSerdeTest, EmptyStateRoundtrip) {
  Snapshot s;
  s.last_included_index = 1;
  s.last_included_term = 1;
  const auto back = decode_snapshot(encode_snapshot(s));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->state.empty());
  EXPECT_EQ(*back, s);
}

TEST(SnapshotSerdeTest, CorruptionRejected) {
  auto buf = encode_snapshot(sample_snapshot());
  // Flip one payload byte: the CRC must catch it.
  buf[buf.size() / 2] ^= 0xFF;
  EXPECT_FALSE(decode_snapshot(buf).has_value());
  // Truncation never throws out of the decoder.
  buf.resize(buf.size() / 2);
  EXPECT_FALSE(decode_snapshot(buf).has_value());
  EXPECT_FALSE(decode_snapshot({}).has_value());
}

TEST(MemorySnapshotStoreTest, NewestWinsAndCounts) {
  MemorySnapshotStore store;
  EXPECT_FALSE(store.load().has_value());
  Snapshot s = sample_snapshot();
  store.save(s);
  s.last_included_index = 100;
  store.save(s);
  ASSERT_TRUE(store.load().has_value());
  EXPECT_EQ(store.load()->last_included_index, 100);
  EXPECT_EQ(store.save_count(), 2u);
}

class FileSnapshotStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("escape_snap_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string snap_path() const { return (dir_ / "node.snap").string(); }
  std::filesystem::path dir_;
};

TEST_F(FileSnapshotStoreTest, MissingFileLoadsAbsent) {
  FileSnapshotStore store(snap_path());
  EXPECT_FALSE(store.load().has_value());
}

TEST_F(FileSnapshotStoreTest, SaveLoadAcrossReopen) {
  const Snapshot s = sample_snapshot();
  {
    FileSnapshotStore store(snap_path());
    store.save(s);
  }
  FileSnapshotStore reopened(snap_path());
  const auto back = reopened.load();
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, s);
}

TEST_F(FileSnapshotStoreTest, ReplaceIsAtomicOnDisk) {
  FileSnapshotStore store(snap_path());
  Snapshot s = sample_snapshot();
  store.save(s);
  s.last_included_index = 99;
  s.state.assign(1000, 0x55);
  store.save(s);
  // No stale tmp file lingers, and the newest snapshot wins.
  EXPECT_FALSE(std::filesystem::exists(snap_path() + ".tmp"));
  ASSERT_TRUE(store.load().has_value());
  EXPECT_EQ(store.load()->last_included_index, 99);
}

TEST_F(FileSnapshotStoreTest, CorruptFileTreatedAsAbsent) {
  {
    FileSnapshotStore store(snap_path());
    store.save(sample_snapshot());
  }
  // Scribble over the stored bytes (the CRC frame must reject them).
  std::ofstream f(snap_path(), std::ios::binary | std::ios::trunc);
  f << "not a snapshot";
  f.close();
  FileSnapshotStore store(snap_path());
  EXPECT_FALSE(store.load().has_value());
}

// --- WAL compaction ----------------------------------------------------------

TEST(MemoryWalTest, CompactToRebasesAppends) {
  MemoryWal wal;
  for (LogIndex i = 1; i <= 5; ++i) wal.append(entry(1, i));
  wal.compact_to(3);
  EXPECT_EQ(wal.base(), 3);
  ASSERT_EQ(wal.entries().size(), 2u);
  EXPECT_EQ(wal.entries()[0].index, 4);
  wal.append(entry(2, 6));
  EXPECT_THROW(wal.append(entry(2, 6)), std::logic_error);  // non-contiguous
  // Truncation below the compaction point is illegal; above it rebases.
  EXPECT_THROW(wal.truncate_from(2), std::logic_error);
  wal.truncate_from(5);
  ASSERT_EQ(wal.entries().size(), 1u);
  EXPECT_EQ(wal.entries()[0].index, 4);
}

TEST(MemoryWalTest, CompactBeyondTailClearsAndRebases) {
  MemoryWal wal;
  wal.append(entry(1, 1));
  // InstallSnapshot far ahead of this log: everything is superseded.
  wal.compact_to(10);
  EXPECT_EQ(wal.base(), 10);
  EXPECT_TRUE(wal.entries().empty());
  wal.append(entry(3, 11));
  EXPECT_EQ(wal.entries().front().index, 11);
}

class FileWalCompactTest : public FileSnapshotStoreTest {};

TEST_F(FileWalCompactTest, CompactRecordSurvivesReopen) {
  const std::string path = (dir_ / "node.wal").string();
  {
    FileWal wal(path);
    for (LogIndex i = 1; i <= 6; ++i) wal.append(entry(1, i));
    wal.compact_to(4);
    wal.append(entry(2, 7));
  }
  FileWal reopened(path);
  EXPECT_EQ(reopened.recovered_base(), 4);
  ASSERT_EQ(reopened.recovered_entries().size(), 3u);
  EXPECT_EQ(reopened.recovered_entries().front().index, 5);
  EXPECT_EQ(reopened.recovered_entries().back().index, 7);
  // Appends continue contiguously after recovery.
  reopened.append(entry(2, 8));
}

TEST_F(FileWalCompactTest, CompactThenTruncateThenRecover) {
  const std::string path = (dir_ / "node.wal").string();
  {
    FileWal wal(path);
    for (LogIndex i = 1; i <= 8; ++i) wal.append(entry(1, i));
    wal.compact_to(5);
    wal.truncate_from(7);       // divergence past the snapshot
    wal.append(entry(3, 7));    // replaced suffix
  }
  FileWal reopened(path);
  EXPECT_EQ(reopened.recovered_base(), 5);
  ASSERT_EQ(reopened.recovered_entries().size(), 2u);
  EXPECT_EQ(reopened.recovered_entries()[0].index, 6);
  EXPECT_EQ(reopened.recovered_entries()[1].term, 3);
}

}  // namespace
}  // namespace escape::storage
