// Single-node test harness: a RaftNode core paired with a NodeDriver over
// caller-owned stores, exposing the buffered take_*() observation style the
// direct unit tests drive the node through.
//
// Each input (message, tick, submit, ...) steps the core and immediately
// drains every resulting Ready batch through the driver — persistence lands
// in the fixture's stores (so tests keep asserting on store.load() and
// wal.entries()), while outbound messages, applied entries, read grants and
// installed snapshots accumulate in buffers until the test take_*()s them.
#pragma once

#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "raft/driver.h"
#include "raft/raft_node.h"
#include "storage/snapshot_store.h"
#include "storage/state_store.h"
#include "storage/wal.h"

namespace escape::raft {

class DrivenNode {
 public:
  /// `recovered` is accepted for fixture convenience but ignored: the driver
  /// recovers the log suffix from `wal` itself, and fixtures keep the WAL
  /// consistent with what they claim was recovered.
  DrivenNode(ServerId id, std::vector<ServerId> members,
             std::unique_ptr<ElectionPolicy> policy, storage::StateStore& store,
             storage::Wal& wal, Rng rng, NodeOptions options = {},
             std::vector<rpc::LogEntry> recovered = {},
             storage::SnapshotStore* snapshots = nullptr)
      : driver_(store, wal, snapshots) {
    (void)recovered;
    node_ = std::make_unique<RaftNode>(id, std::move(members), std::move(policy), rng,
                                       options, driver_.recover());
    driver_.attach(*node_);
    auto& hooks = driver_.hooks();
    hooks.send = [this](const std::vector<rpc::Envelope>& batch) {
      outbox_.insert(outbox_.end(), batch.begin(), batch.end());
    };
    hooks.restore = [this](const std::shared_ptr<const Snapshot>& snap) { installed_ = *snap; };
    hooks.apply = [this](const rpc::LogEntry& entry) { committed_.push_back(entry); };
    hooks.read = [this](const ReadGrant& grant) { read_grants_.push_back(grant); };
  }

  // --- inputs (each drains the resulting Ready batches) ---------------------
  void start(TimePoint now) {
    node_->start(now);
    driver_.pump();
  }
  void on_message(const rpc::Envelope& envelope, TimePoint now) {
    node_->step(envelope, now);
    driver_.pump();
  }
  void on_tick(TimePoint now) {
    node_->tick(now);
    driver_.pump();
  }
  std::optional<LogIndex> submit(std::vector<std::uint8_t> command, TimePoint now) {
    const auto index = node_->submit(std::move(command), now);
    driver_.pump();
    return index;
  }
  std::optional<ReadId> submit_read(TimePoint now) {
    const auto read = node_->submit_read(now);
    driver_.pump();
    return read;
  }
  bool transfer_leadership(ServerId target, TimePoint now) {
    const bool ok = node_->transfer_leadership(target, now);
    driver_.pump();
    return ok;
  }
  std::optional<LogIndex> compact(LogIndex upto, std::vector<std::uint8_t> state,
                                  TimePoint now) {
    const auto result = node_->compact(upto, std::move(state), now);
    driver_.pump();
    return result;
  }

  // --- buffered observations ------------------------------------------------
  std::vector<rpc::Envelope> take_outbox() { return std::exchange(outbox_, {}); }
  std::vector<rpc::LogEntry> take_committed() { return std::exchange(committed_, {}); }
  std::vector<ReadGrant> take_read_grants() { return std::exchange(read_grants_, {}); }
  std::optional<Snapshot> take_installed_snapshot() {
    return std::exchange(installed_, std::nullopt);
  }

  // --- introspection passthroughs -------------------------------------------
  ServerId id() const { return node_->id(); }
  Role role() const { return node_->role(); }
  Term term() const { return node_->term(); }
  ServerId leader_hint() const { return node_->leader_hint(); }
  LogIndex commit_index() const { return node_->commit_index(); }
  LogIndex last_applied() const { return node_->last_applied(); }
  const Log& log() const { return node_->log(); }
  const NodeCounters& counters() const { return node_->counters(); }
  ConfClock conf_clock() const { return node_->conf_clock(); }
  bool lease_valid(TimePoint now) const { return node_->lease_valid(now); }
  std::size_t pending_reads() const { return node_->pending_reads(); }
  const ElectionPolicy& policy() const { return node_->policy(); }
  TimePoint next_deadline() const { return node_->next_deadline(); }
  void set_event_hook(std::function<void(const NodeEvent&)> hook) {
    node_->set_event_hook(std::move(hook));
  }

  RaftNode& core() { return *node_; }
  NodeDriver& driver() { return driver_; }

 private:
  NodeDriver driver_;
  std::unique_ptr<RaftNode> node_;
  std::vector<rpc::Envelope> outbox_;
  std::vector<rpc::LogEntry> committed_;
  std::vector<ReadGrant> read_grants_;
  std::optional<Snapshot> installed_;
};

}  // namespace escape::raft
