#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace escape {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-5, 17);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 17);
  }
}

TEST(RngTest, UniformIntSingletonRange) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformIntIsRoughlyUniform) {
  Rng rng(13);
  std::array<int, 8> counts{};
  const int trials = 80000;
  for (int i = 0; i < trials; ++i) counts[static_cast<std::size_t>(rng.uniform_int(0, 7))]++;
  for (int c : counts) {
    EXPECT_NEAR(c, trials / 8, trials / 8 / 5);  // within 20%
  }
}

TEST(RngTest, UniformRealInHalfOpenRange) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform_real(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(RngTest, ChanceApproximatesProbability) {
  Rng rng(23);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(hits, trials * 0.3, trials * 0.02);
}

TEST(RngTest, ForkedStreamsAreDecorrelated) {
  Rng parent(31);
  Rng c1 = parent.fork(1);
  Rng c2 = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (c1.next_u64() == c2.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ForkIsDeterministic) {
  Rng a(31), b(31);
  Rng fa = a.fork(9), fb = b.fork(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(fa.next_u64(), fb.next_u64());
}

TEST(RngTest, StreamSeedIsAPureFunction) {
  EXPECT_EQ(stream_seed(42, 7), stream_seed(42, 7));
  // Unlike fork(), deriving other streams first must not perturb a stream.
  Rng a = Rng::stream(42, 7);
  (void)stream_seed(42, 0);
  (void)stream_seed(42, 99);
  Rng b = Rng::stream(42, 7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, StreamSeedSeparatesIndicesAndRoots) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t root : {0ull, 1ull, 42ull, ~0ull}) {
    for (std::uint64_t index = 0; index < 64; ++index) {
      seeds.insert(stream_seed(root, index));
    }
  }
  EXPECT_EQ(seeds.size(), 4u * 64u);  // no collisions across a small grid
}

TEST(RngTest, StreamsAreDecorrelated) {
  Rng a = Rng::stream(31, 0);
  Rng b = Rng::stream(31, 1);  // adjacent indices, same root
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(37);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(41);
  for (int trial = 0; trial < 100; ++trial) {
    const auto sample = rng.sample_without_replacement(20, 8);
    ASSERT_EQ(sample.size(), 8u);
    std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 8u);
    for (auto idx : sample) EXPECT_LT(idx, 20u);
  }
}

TEST(RngTest, SampleFullPopulation) {
  Rng rng(43);
  const auto sample = rng.sample_without_replacement(5, 5);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(RngTest, SampleZero) {
  Rng rng(47);
  EXPECT_TRUE(rng.sample_without_replacement(5, 0).empty());
}

}  // namespace
}  // namespace escape
