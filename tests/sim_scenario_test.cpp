// Tests for the experiment drivers themselves: traffic generation, the
// repeated crash-recover series, and the forced-competition mechanism.
#include <gtest/gtest.h>

#include "test_cluster_util.h"

namespace escape {
namespace {

using sim::SimCluster;
using testutil::paper_escape_cluster;
using testutil::paper_raft_cluster;

TEST(ScenarioTest, DriveTrafficCommitsEntries) {
  SimCluster cluster(paper_escape_cluster(5, 5));
  ASSERT_NE(sim::bootstrap(cluster), kNoServer);
  const auto submitted = sim::drive_traffic(cluster, from_ms(5'000), from_ms(200));
  EXPECT_GE(submitted, 20u);
  EXPECT_GE(cluster.node(cluster.leader()).commit_index(), static_cast<LogIndex>(submitted) - 5);
}

TEST(ScenarioTest, DriveTrafficWithNoLeaderSubmitsNothing) {
  SimCluster cluster(paper_escape_cluster(5, 5));
  cluster.start_all();
  // Before any election, no leader exists: traffic must no-op (though the
  // cluster elects during the window, earlier intervals submit nothing).
  const auto submitted = sim::drive_traffic(cluster, from_ms(500), from_ms(100));
  EXPECT_EQ(submitted, 0u);
}

TEST(ScenarioTest, SeriesProducesOneResultPerRun) {
  SimCluster cluster(paper_escape_cluster(5, 6));
  sim::SeriesOptions opts;
  opts.runs = 5;
  opts.traffic_window = from_ms(1'000);
  const auto results = sim::measure_failover_series(cluster, opts);
  ASSERT_EQ(results.size(), 5u);
  for (const auto& r : results) {
    EXPECT_TRUE(r.converged);
    EXPECT_GT(r.total, 0);
    EXPECT_EQ(r.campaigns, 1u);  // ESCAPE: single campaign every time
  }
  // Every crashed server was recovered: the full membership is alive.
  for (ServerId id : cluster.members()) EXPECT_TRUE(cluster.alive(id));
}

TEST(ScenarioTest, SeriesKeepsEventLogBounded) {
  SimCluster cluster(paper_escape_cluster(3, 6));
  sim::SeriesOptions opts;
  opts.runs = 4;
  opts.traffic_window = from_ms(500);
  (void)sim::measure_failover_series(cluster, opts);
  // The per-run clear keeps the retained log to roughly one run's events.
  EXPECT_LT(cluster.event_log().size(), 200u);
}

TEST(ScenarioTest, ForcedCompetitionRaftPaysPerPhase) {
  // Each forced phase costs Raft roughly one scripted timeout (~1.5-1.7 s).
  double previous = 0;
  for (int phases = 0; phases <= 2; ++phases) {
    SimCluster cluster(paper_raft_cluster(5, 777));
    ASSERT_NE(sim::bootstrap(cluster), kNoServer);
    sim::CompetitionOptions comp;
    comp.phases = phases;
    const auto r = sim::measure_failover_with_competition(cluster, comp);
    ASSERT_TRUE(r.converged) << "phases=" << phases;
    if (phases > 0) {
      EXPECT_GE(to_ms_f(r.total) - previous, 1'000.0) << "phases=" << phases;
    }
    previous = to_ms_f(r.total);
  }
}

TEST(ScenarioTest, ForcedCompetitionBystandersOnlyVote) {
  SimCluster cluster(paper_raft_cluster(7, 888));
  ASSERT_NE(sim::bootstrap(cluster), kNoServer);
  const ServerId leader = cluster.leader();
  sim::CompetitionOptions comp;
  comp.phases = 1;
  const auto crash_floor = cluster.loop().now();
  const auto r = sim::measure_failover_with_competition(cluster, comp);
  ASSERT_TRUE(r.converged);

  // Campaigns after the crash came only from the two scripted rivals.
  std::set<ServerId> campaigners;
  for (const auto& e : cluster.event_log()) {
    if (e.kind == raft::NodeEvent::Kind::kCampaignStarted && e.at >= crash_floor &&
        e.node != leader) {
      campaigners.insert(e.node);
    }
  }
  EXPECT_EQ(campaigners.size(), 2u);
}

TEST(ScenarioTest, ForcedCompetitionRestoresLatencyModel) {
  SimCluster cluster(paper_raft_cluster(5, 999));
  ASSERT_NE(sim::bootstrap(cluster), kNoServer);
  sim::CompetitionOptions comp;
  comp.phases = 0;
  (void)sim::measure_failover_with_competition(cluster, comp);
  // After the scenario, fresh messages use the base 100-200 ms model again:
  // sample the restored latency function directly.
  Rng probe(1);
  for (int i = 0; i < 50; ++i) {
    const auto d = cluster.network().options().latency(1, 2, probe);
    EXPECT_GE(d, from_ms(100));
    EXPECT_LE(d, from_ms(200));
  }
}

TEST(ScenarioTest, MeasureFailoverRequiresLeader) {
  SimCluster cluster(paper_escape_cluster(3, 4));
  cluster.start_all();  // no leader yet
  EXPECT_THROW(sim::measure_failover(cluster), std::logic_error);
}

TEST(ScenarioTest, BootstrapIsIdempotentOnStartedCluster) {
  SimCluster cluster(paper_escape_cluster(3, 4));
  const ServerId first = sim::bootstrap(cluster);
  ASSERT_NE(first, kNoServer);
  const ServerId again = sim::bootstrap(cluster, from_ms(10'000), from_ms(100));
  EXPECT_EQ(again, first);  // already led; returns the current leader
}

}  // namespace
}  // namespace escape
