// Model-based fuzz test: storage::Log against a trivial reference model
// (std::vector of entries with a compaction base), over thousands of random
// operation sequences.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "storage/log.h"

namespace escape::storage {
namespace {

/// Obviously-correct reference implementation.
struct ModelLog {
  LogIndex base = 0;   // highest compacted index
  Term base_term = 0;  // term retained at the compaction boundary
  std::vector<rpc::LogEntry> entries;

  LogIndex last_index() const { return base + static_cast<LogIndex>(entries.size()); }
  LogIndex first_index() const { return base + 1; }

  std::optional<Term> term_at(LogIndex i) const {
    if (i == 0) return Term{0};
    if (i == base) return base_term;
    if (i < base || i > last_index()) return std::nullopt;
    return entries[static_cast<std::size_t>(i - base - 1)].term;
  }

  void append(rpc::LogEntry e) { entries.push_back(std::move(e)); }

  void truncate_from(LogIndex from) {
    if (from > last_index()) return;
    entries.resize(static_cast<std::size_t>(from - base - 1));
  }

  void compact_to(LogIndex upto) {
    const auto drop = static_cast<std::size_t>(upto - base);
    base_term = entries[drop - 1].term;
    entries.erase(entries.begin(), entries.begin() + static_cast<std::ptrdiff_t>(drop));
    base = upto;
  }
};

rpc::LogEntry make_entry(Term t, LogIndex i, Rng& rng) {
  rpc::LogEntry e;
  e.term = t;
  e.index = i;
  e.command.assign(static_cast<std::size_t>(rng.uniform_int(0, 8)),
                   static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
  return e;
}

class LogModelTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LogModelTest, RandomOpSequencesMatchModel) {
  Rng rng(GetParam());
  Log log;
  ModelLog model;
  Term term = 1;

  for (int step = 0; step < 2000; ++step) {
    const int op = static_cast<int>(rng.uniform_int(0, 9));
    if (op <= 4) {  // append (most common)
      if (rng.chance(0.1)) ++term;
      auto e = make_entry(term, log.last_index() + 1, rng);
      log.append(e);
      model.append(e);
    } else if (op <= 6) {  // truncate suffix
      if (log.last_index() > log.first_index()) {
        const LogIndex from = rng.uniform_int(model.first_index(), model.last_index());
        log.truncate_from(from);
        model.truncate_from(from);
        // Terms never go backwards in real usage; keep generating >= tail.
        term = std::max(term, model.entries.empty() ? Term{1} : model.entries.back().term);
      }
    } else if (op == 7) {  // compact prefix
      if (model.last_index() > model.base) {
        const LogIndex upto = rng.uniform_int(model.base + 1, model.last_index());
        log.compact_to(upto);
        model.compact_to(upto);
      }
    } else {  // probe queries
      const LogIndex probe = rng.uniform_int(0, model.last_index() + 3);
      ASSERT_EQ(log.term_at(probe), model.term_at(probe)) << "probe " << probe;
    }

    // Invariant sweep after every mutation.
    ASSERT_EQ(log.last_index(), model.last_index());
    ASSERT_EQ(log.first_index(), model.first_index());
    ASSERT_EQ(log.size(), model.entries.size());
    ASSERT_EQ(log.base(), model.base);
    ASSERT_EQ(log.base_term(), model.base_term);
  }

  // Final deep comparison: entries, slices, term searches.
  for (LogIndex i = model.first_index(); i <= model.last_index(); ++i) {
    const auto* e = log.entry_at(i);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(*e, model.entries[static_cast<std::size_t>(i - model.base - 1)]);
  }
  if (model.last_index() >= model.first_index()) {
    const LogIndex from = (model.first_index() + model.last_index()) / 2;
    const auto s = log.slice(from, 10);
    for (std::size_t k = 0; k < s.size(); ++k) {
      EXPECT_EQ(s[k], model.entries[static_cast<std::size_t>(from + static_cast<LogIndex>(k) -
                                                             model.base - 1)]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LogModelTest, ::testing::Range<std::uint64_t>(1, 13));

TEST(LogModelTest, MatchesSemantics) {
  // matches(i, t) == (term_at(i) exists and equals t), plus the index-0 rule.
  Rng rng(99);
  Log log;
  Term term = 1;
  for (LogIndex i = 1; i <= 50; ++i) {
    if (rng.chance(0.2)) ++term;
    log.append(make_entry(term, i, rng));
  }
  EXPECT_TRUE(log.matches(0, 0));
  for (LogIndex i = 1; i <= 50; ++i) {
    EXPECT_TRUE(log.matches(i, *log.term_at(i)));
    EXPECT_FALSE(log.matches(i, *log.term_at(i) + 1));
  }
  EXPECT_FALSE(log.matches(51, term));
}

TEST(LogModelTest, UpToDateTotalOrderIsConsistent) {
  // For random log pairs, the §5.4.1 comparison is antisymmetric: if A is
  // strictly newer than B then B must not be considered up-to-date vs A.
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    Log a, b;
    Term ta = 1, tb = 1;
    const auto len_a = rng.uniform_int(0, 20);
    const auto len_b = rng.uniform_int(0, 20);
    for (LogIndex i = 1; i <= len_a; ++i) {
      if (rng.chance(0.3)) ++ta;
      a.append(make_entry(ta, i, rng));
    }
    for (LogIndex i = 1; i <= len_b; ++i) {
      if (rng.chance(0.3)) ++tb;
      b.append(make_entry(tb, i, rng));
    }
    const bool a_accepts_b = a.candidate_is_up_to_date(b.last_index(), b.last_term());
    const bool b_accepts_a = b.candidate_is_up_to_date(a.last_index(), a.last_term());
    // At least one direction must hold (it is a total preorder).
    EXPECT_TRUE(a_accepts_b || b_accepts_a);
    // Both hold only when (last_term, last_index) are equal.
    if (a_accepts_b && b_accepts_a) {
      EXPECT_EQ(a.last_term(), b.last_term());
      EXPECT_EQ(a.last_index(), b.last_index());
    }
  }
}

}  // namespace
}  // namespace escape::storage
