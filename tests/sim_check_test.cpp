// Tests for SimCheck, the randomized scenario fuzzer: fuzz cases derive
// purely from their scenario seed, generated plans are legal (quorum kept,
// everything healed), a bounded fuzz run holds every invariant, and the
// aggregate result is bit-identical across thread counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <variant>

#include "sim/sim_check.h"

namespace escape {
namespace {

using sim::FuzzCase;
using sim::SimCheckOptions;
using sim::SimCheckResult;
using sim::make_fuzz_case;

SimCheckOptions small_options() {
  SimCheckOptions o;
  o.trials = 10;
  o.root_seed = 0x51AC4EC;
  o.threads = 2;
  o.announce_failures = false;
  return o;
}

TEST(SimCheckTest, FuzzCaseIsAPureFunctionOfTheSeed) {
  for (std::uint64_t seed : {1ull, 42ull, 0xFEEDull}) {
    const FuzzCase a = make_fuzz_case(seed);
    const FuzzCase b = make_fuzz_case(seed);
    EXPECT_EQ(a.params.servers, b.params.servers);
    EXPECT_EQ(a.params.policy, b.params.policy);
    EXPECT_EQ(a.params.seed, b.params.seed);
    EXPECT_EQ(a.plan.actions().size(), b.plan.actions().size());
    EXPECT_EQ(sim::describe_plan(a.plan), sim::describe_plan(b.plan));
  }
  EXPECT_NE(sim::describe_plan(make_fuzz_case(1).plan),
            sim::describe_plan(make_fuzz_case(2).plan));
}

TEST(SimCheckTest, GeneratedPlansStayLegal) {
  // Across many seeds: cluster shape within bounds, every crash paired with
  // its own targeted recovery, and the world restored — the final planned
  // instant recovers everyone, and loss/latency overrides are cleared
  // whenever they were touched.
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const FuzzCase c = make_fuzz_case(seed);
    ASSERT_GE(c.params.servers, 3u) << seed;
    ASSERT_LE(c.params.servers, 7u) << seed;
    ASSERT_TRUE(c.params.policy == "escape" || c.params.policy == "zraft" ||
                c.params.policy == "raft")
        << seed;
    std::size_t crashes = 0, recovers = 0, recover_alls = 0, loss_sets = 0, degrades = 0,
                restore_latency = 0;
    Duration last_recover_all = -1;
    for (const auto& planned : c.plan.actions()) {
      // SnapshotAndCrash is a crash for pairing purposes: it downs its
      // target and draws the same targeted recovery as CrashNode.
      if (std::holds_alternative<sim::CrashNode>(planned.action) ||
          std::holds_alternative<sim::SnapshotAndCrash>(planned.action)) {
        ++crashes;
      }
      if (std::holds_alternative<sim::RecoverNode>(planned.action)) ++recovers;
      if (std::holds_alternative<sim::RecoverAll>(planned.action)) {
        ++recover_alls;
        last_recover_all = std::max(last_recover_all, planned.at);
      }
      if (std::holds_alternative<sim::SetLossRate>(planned.action)) ++loss_sets;
      if (std::holds_alternative<sim::DegradeNode>(planned.action)) ++degrades;
      if (std::holds_alternative<sim::RestoreLatency>(planned.action)) ++restore_latency;
    }
    EXPECT_EQ(recovers, crashes) << seed;            // one targeted repair per crash
    EXPECT_GE(recover_alls, 2u) << seed;             // closing + mid-drain sweeps
    EXPECT_EQ(last_recover_all, c.plan.span()) << seed;  // final action recovers all
    if (degrades > 0) EXPECT_GE(restore_latency, 1u) << seed;
    if (loss_sets > 0) EXPECT_GE(loss_sets, 2u) << seed;  // storm + baseline restore
  }
}

TEST(SimCheckTest, SeedsExploreTheWholeVocabulary) {
  std::set<std::string> kinds;
  for (std::uint64_t seed = 1; seed <= 300; ++seed) {
    // Bind the case: actions() returns a reference into it, and a range-for
    // over a temporary's member dangles (caught by the ASan CI job).
    const FuzzCase c = make_fuzz_case(seed);
    for (const auto& planned : c.plan.actions()) {
      kinds.insert(sim::action_name(planned.action));
    }
  }
  for (const char* expected : {"crash", "recover", "recover-all", "cut-link", "heal-link",
                               "partial-isolate", "heal-partial", "isolate", "heal",
                               "degrade", "restore-latency", "set-loss", "leader-transfer",
                               "traffic", "snapshot", "snapshot-crash"}) {
    EXPECT_TRUE(kinds.count(expected)) << "vocabulary never sampled: " << expected;
  }
}

TEST(SimCheckTest, ActionWeightOverridesRetireAndBoostFamilies) {
  // Zeroing a family removes it from generated schedules; boosting another
  // keeps generation legal. Weight changes redefine the seed -> schedule
  // mapping, which is exactly why the default table is the repro contract.
  SimCheckOptions no_snapshots;
  no_snapshots.action_weights = {{"snapshot", 0}, {"snapshot-crash", 0}};
  SimCheckOptions snapshot_heavy;
  snapshot_heavy.action_weights = {{"snapshot", 60}, {"crash", 0}};
  std::set<std::string> without, heavy;
  for (std::uint64_t seed = 1; seed <= 150; ++seed) {
    const FuzzCase a = make_fuzz_case(seed, no_snapshots);
    for (const auto& planned : a.plan.actions()) {
      without.insert(sim::action_name(planned.action));
    }
    const FuzzCase b = make_fuzz_case(seed, snapshot_heavy);
    for (const auto& planned : b.plan.actions()) {
      heavy.insert(sim::action_name(planned.action));
    }
  }
  EXPECT_FALSE(without.count("snapshot"));
  EXPECT_FALSE(without.count("snapshot-crash"));
  EXPECT_TRUE(heavy.count("snapshot"));
  // The default table is exposed for CLI validation and covers the enum.
  EXPECT_TRUE(sim::default_action_weights().count("snapshot-crash"));
  EXPECT_GE(sim::default_action_weights().size(), 10u);
}

TEST(SimCheckTest, SingleTrialReproducesBitExactly) {
  SimCheckOptions options = small_options();
  sim::SimCheckFailure failure;
  const auto first = sim::run_fuzz_trial(99, options, &failure);
  EXPECT_TRUE(failure.repro.empty()) << failure.repro;
  const auto second = sim::run_fuzz_trial(99, options, nullptr);
  ASSERT_TRUE(first.bootstrapped);
  EXPECT_EQ(first.trace, second.trace);
  EXPECT_EQ(first.episodes.size(), second.episodes.size());
  EXPECT_EQ(first.traffic_submitted, second.traffic_submitted);
}

TEST(SimCheckTest, BoundedFuzzRunHoldsAllInvariants) {
  const SimCheckOptions options = small_options();
  const SimCheckResult result = sim::run_sim_check(options);
  EXPECT_EQ(result.trials, options.trials);
  EXPECT_GT(result.executed_actions, 0u);
  ASSERT_TRUE(result.ok()) << result.failures.front().repro << " ("
                           << (result.failures.front().violations.empty()
                                   ? "trace diverged"
                                   : result.failures.front().violations.front())
                           << ")";
}

TEST(SimCheckTest, AggregateIsThreadCountInvariant) {
  SimCheckOptions serial = small_options();
  serial.threads = 1;
  serial.check_determinism = false;  // per-trial replay already covered above
  SimCheckOptions parallel = serial;
  parallel.threads = 4;
  const SimCheckResult a = sim::run_sim_check(serial);
  const SimCheckResult b = sim::run_sim_check(parallel);
  EXPECT_EQ(a.executed_actions, b.executed_actions);
  EXPECT_EQ(a.episodes, b.episodes);
  EXPECT_EQ(a.converged_episodes, b.converged_episodes);
  EXPECT_EQ(a.traffic_submitted, b.traffic_submitted);
  EXPECT_EQ(a.failures.size(), b.failures.size());
}

TEST(SimCheckTest, MembershipActionsAreRetiredByDefaultButWeightable) {
  // The membership verbs ship at weight 0 so every pre-existing seed keeps
  // its byte-identical schedule; they only enter the vocabulary when asked.
  ASSERT_TRUE(sim::default_action_weights().count("join-server"));
  ASSERT_TRUE(sim::default_action_weights().count("leave-server"));
  EXPECT_EQ(sim::default_action_weights().at("join-server"), 0);
  EXPECT_EQ(sim::default_action_weights().at("leave-server"), 0);

  SimCheckOptions weighted = small_options();
  weighted.action_weights = {{"join-server", 25}, {"leave-server", 15}};
  bool planned_join = false;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const FuzzCase c = make_fuzz_case(seed, weighted);
    for (const auto& planned : c.plan.actions()) {
      const std::string name = sim::action_name(planned.action);
      planned_join = planned_join || name == "join-server";
      if (name == "leave-server") {
        // Leaves only ever target servers a prior join racked: the seed
        // cluster's fault budget stays untouched by membership churn.
        const auto& leave = std::get<sim::LeaveServer>(planned.action);
        EXPECT_GT(leave.node.server, c.params.servers) << seed;
      }
    }
  }
  EXPECT_TRUE(planned_join);
}

TEST(SimCheckTest, WeightedMembershipFuzzRunHoldsAllInvariants) {
  SimCheckOptions options = small_options();
  options.action_weights = {{"join-server", 25}, {"leave-server", 15}};
  const SimCheckResult result = sim::run_sim_check(options);
  EXPECT_EQ(result.trials, options.trials);
  ASSERT_TRUE(result.ok()) << result.failures.front().repro << " ("
                           << (result.failures.front().violations.empty()
                                   ? "trace diverged"
                                   : result.failures.front().violations.front())
                           << ")";
}

TEST(SimCheckTest, PassingTrialLeavesTheFailureRecordUntouched) {
  sim::SimCheckFailure untouched;
  (void)sim::run_fuzz_trial(7, small_options(), &untouched);
  EXPECT_TRUE(untouched.repro.empty());
  EXPECT_TRUE(untouched.violations.empty());
}

}  // namespace
}  // namespace escape
