// Tests for the SimCluster harness itself: lifecycle, fault injection
// semantics, timer scheduling, and observation plumbing.
#include <gtest/gtest.h>

#include "test_cluster_util.h"

namespace escape {
namespace {

using sim::SimCluster;
using testutil::paper_escape_cluster;

TEST(SimClusterTest, RejectsZeroSize) {
  sim::ClusterOptions options;
  options.size = 0;
  EXPECT_THROW(SimCluster cluster(options), std::invalid_argument);
}

TEST(SimClusterTest, MembersAreDenseFromOne) {
  SimCluster cluster(paper_escape_cluster(4, 1));
  ASSERT_EQ(cluster.size(), 4u);
  EXPECT_EQ(cluster.members(), (std::vector<ServerId>{1, 2, 3, 4}));
}

TEST(SimClusterTest, DoubleStartThrows) {
  SimCluster cluster(paper_escape_cluster(3, 1));
  cluster.start_all();
  EXPECT_THROW(cluster.start_all(), std::logic_error);
}

TEST(SimClusterTest, CrashedNodeIsInaccessible) {
  SimCluster cluster(paper_escape_cluster(3, 2));
  ASSERT_NE(sim::bootstrap(cluster), kNoServer);
  cluster.crash(2);
  EXPECT_FALSE(cluster.alive(2));
  EXPECT_THROW(cluster.node(2), std::logic_error);
  EXPECT_THROW(cluster.crash(2), std::logic_error);  // node already gone
}

TEST(SimClusterTest, RecoverRequiresCrashed) {
  SimCluster cluster(paper_escape_cluster(3, 3));
  ASSERT_NE(sim::bootstrap(cluster), kNoServer);
  EXPECT_THROW(cluster.recover(1), std::logic_error);
}

TEST(SimClusterTest, DurableStateSurvivesCrash) {
  SimCluster cluster(paper_escape_cluster(3, 4));
  ASSERT_NE(sim::bootstrap(cluster), kNoServer);
  sim::drive_traffic(cluster, from_ms(1'000), from_ms(200));
  ServerId follower = kNoServer;
  for (ServerId id : cluster.members()) {
    if (id != cluster.leader()) {
      follower = id;
      break;
    }
  }
  const Term term_before = cluster.node(follower).term();
  const auto entries_before = cluster.wal(follower).entries().size();
  EXPECT_GT(entries_before, 0u);

  cluster.crash(follower);
  // Disk contents survive the crash...
  EXPECT_EQ(cluster.wal(follower).entries().size(), entries_before);
  ASSERT_TRUE(cluster.state_store(follower).load().has_value());

  cluster.recover(follower);
  // ...and the reincarnated node starts from them.
  EXPECT_GE(cluster.node(follower).term(), term_before);
  EXPECT_EQ(cluster.node(follower).log().last_index(),
            static_cast<LogIndex>(entries_before));
}

TEST(SimClusterTest, LeaderReturnsHighestTermLeader) {
  SimCluster cluster(paper_escape_cluster(5, 5));
  ASSERT_NE(sim::bootstrap(cluster), kNoServer);
  // Partition the leader; a new one emerges in a higher term while the old
  // one still believes it leads. leader() must prefer the newer regime.
  const ServerId old_leader = cluster.leader();
  cluster.network().isolate(old_leader);
  const auto elected = cluster.run_until_event(
      [&](const raft::NodeEvent& e) {
        return e.kind == raft::NodeEvent::Kind::kBecameLeader && e.node != old_leader;
      },
      cluster.loop().now() + from_ms(60'000));
  ASSERT_TRUE(elected.has_value());
  EXPECT_EQ(cluster.leader(), elected->node);
  cluster.network().heal(old_leader);
}

TEST(SimClusterTest, SubmitViaLeaderRoutesAndCommits) {
  SimCluster cluster(paper_escape_cluster(3, 6));
  ASSERT_NE(sim::bootstrap(cluster), kNoServer);
  const auto index = cluster.submit_via_leader({1, 2, 3});
  ASSERT_TRUE(index.has_value());
  EXPECT_TRUE(cluster.run_until_applied(*index, cluster.loop().now() + from_ms(10'000)));
  for (ServerId id : cluster.members()) {
    ASSERT_FALSE(cluster.applied(id).empty());
    EXPECT_EQ(cluster.applied(id).back().command, (std::vector<std::uint8_t>{1, 2, 3}));
  }
}

TEST(SimClusterTest, SubmitWithoutLeaderReturnsNull) {
  SimCluster cluster(paper_escape_cluster(3, 7));
  cluster.start_all();
  EXPECT_FALSE(cluster.submit_via_leader({1}).has_value());
}

TEST(SimClusterTest, ApplyHookObservesEveryCommit) {
  SimCluster cluster(paper_escape_cluster(3, 8));
  std::map<ServerId, int> applies;
  cluster.set_apply_hook([&](ServerId id, const rpc::LogEntry&) { ++applies[id]; });
  ASSERT_NE(sim::bootstrap(cluster), kNoServer);
  sim::drive_traffic(cluster, from_ms(1'500), from_ms(300));
  const LogIndex commit = cluster.node(cluster.leader()).commit_index();
  ASSERT_GT(commit, 0);
  ASSERT_TRUE(cluster.run_until_applied(commit, cluster.loop().now() + from_ms(10'000)));
  for (ServerId id : cluster.members()) {
    EXPECT_EQ(applies[id], static_cast<int>(commit)) << server_name(id);
  }
}

TEST(SimClusterTest, EventLogClearKeepsListeners) {
  SimCluster cluster(paper_escape_cluster(3, 9));
  int events = 0;
  cluster.add_event_listener([&](const raft::NodeEvent&) { ++events; });
  ASSERT_NE(sim::bootstrap(cluster), kNoServer);
  const int before = events;
  cluster.clear_event_log();
  EXPECT_TRUE(cluster.event_log().empty());
  sim::drive_traffic(cluster, from_ms(1'000), from_ms(250));
  EXPECT_GT(events, before);  // listener still firing after the clear
}

TEST(SimClusterTest, AsyncPersistClusterCommitsAndStaysConsistent) {
  // Opting the drivers into async persist flips the whole cluster onto the
  // staged-flush path (SimCluster forces NodeOptions::async_persist to match,
  // so the commit rule waits for the durability acks). Traffic must still
  // commit and apply identically on every member.
  auto options = paper_escape_cluster(3, 21);
  options.driver.async_persist = true;
  SimCluster cluster(options);
  ASSERT_NE(sim::bootstrap(cluster), kNoServer);
  sim::drive_traffic(cluster, from_ms(1'500), from_ms(100));
  const LogIndex commit = cluster.node(cluster.leader()).commit_index();
  ASSERT_GT(commit, 0);
  ASSERT_TRUE(cluster.run_until_applied(commit, cluster.loop().now() + from_ms(10'000)));
  for (ServerId id : cluster.members()) {
    EXPECT_GE(cluster.node(id).commit_index(), commit) << server_name(id);
    ASSERT_GE(cluster.applied(id).size(), static_cast<std::size_t>(commit))
        << server_name(id);
    // Every member applied the same committed prefix (members may run ahead
    // of the sampled commit point as trailing acks land).
    for (std::size_t i = 0; i < static_cast<std::size_t>(commit); ++i) {
      ASSERT_EQ(cluster.applied(id)[i], cluster.applied(1)[i]) << server_name(id);
    }
  }
}

TEST(SimClusterTest, DeterministicReplay) {
  // Identical options + seed => bit-identical event history.
  auto run_once = [] {
    SimCluster cluster(paper_escape_cluster(5, 0xD5));
    sim::bootstrap(cluster);
    sim::measure_failover(cluster);
    std::vector<std::tuple<int, ServerId, Term, TimePoint>> trace;
    for (const auto& e : cluster.event_log()) {
      trace.emplace_back(static_cast<int>(e.kind), e.node, e.term, e.at);
    }
    return trace;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(SimClusterTest, SeedsChangeOutcomes) {
  auto leader_for_seed = [](std::uint64_t seed) {
    SimCluster cluster(testutil::paper_raft_cluster(5, seed));
    return sim::bootstrap(cluster);
  };
  std::set<ServerId> leaders;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) leaders.insert(leader_for_seed(seed));
  EXPECT_GT(leaders.size(), 1u);  // randomized Raft spreads first leadership
}

}  // namespace
}  // namespace escape
