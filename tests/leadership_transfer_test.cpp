// Leadership transfer (TimeoutNow): the proactive complement of ESCAPE's
// precautionary elections — planned maintenance hands leadership to the
// groomed top-priority follower with sub-RTT downtime instead of waiting a
// full election timeout.
#include <gtest/gtest.h>

#include "test_cluster_util.h"

namespace escape {
namespace {

using sim::InvariantChecker;
using sim::SimCluster;
using testutil::paper_escape_cluster;

ServerId top_priority_follower(SimCluster& cluster) {
  const ServerId leader = cluster.leader();
  ServerId top = kNoServer;
  Priority best = 0;
  for (ServerId id : cluster.members()) {
    if (id == leader || !cluster.alive(id)) continue;
    const auto p = cluster.node(id).policy().current_config().priority;
    if (p > best) {
      best = p;
      top = id;
    }
  }
  return top;
}

TEST(LeadershipTransferTest, HandoffCompletesWithinOneRtt) {
  SimCluster cluster(paper_escape_cluster(5, 21));
  InvariantChecker inv(cluster);
  ASSERT_NE(sim::bootstrap(cluster), kNoServer);
  const ServerId old_leader = cluster.leader();
  const ServerId target = top_priority_follower(cluster);
  ASSERT_NE(target, kNoServer);

  const TimePoint start = cluster.loop().now();
  ASSERT_TRUE(cluster.node(old_leader).transfer_leadership(target, start));
  cluster.pump(old_leader);
  const auto elected = cluster.run_until_event(
      [&](const raft::NodeEvent& e) {
        return e.kind == raft::NodeEvent::Kind::kBecameLeader && e.node == target;
      },
      start + from_ms(10'000));
  ASSERT_TRUE(elected.has_value());
  // TimeoutNow skips the election timeout entirely: one latency to deliver
  // the transfer plus one vote round-trip (100-200 ms each hop).
  EXPECT_LE(elected->at - start, from_ms(700));
  // The deposed leader steps down once it sees the higher term.
  cluster.loop().run_until(cluster.loop().now() + from_ms(2'000));
  EXPECT_EQ(cluster.node(old_leader).role(), Role::kFollower);
  EXPECT_TRUE(inv.ok()) << inv.violations().front();
}

TEST(LeadershipTransferTest, RejectsWhenNotLeader) {
  SimCluster cluster(paper_escape_cluster(3, 22));
  ASSERT_NE(sim::bootstrap(cluster), kNoServer);
  for (ServerId id : cluster.members()) {
    if (id == cluster.leader()) continue;
    EXPECT_FALSE(cluster.node(id).transfer_leadership(cluster.leader(), cluster.loop().now()));
  }
}

TEST(LeadershipTransferTest, RejectsSelfAndUnknownTargets) {
  SimCluster cluster(paper_escape_cluster(3, 23));
  ASSERT_NE(sim::bootstrap(cluster), kNoServer);
  auto& leader = cluster.node(cluster.leader());
  EXPECT_FALSE(leader.transfer_leadership(leader.id(), cluster.loop().now()));
  EXPECT_FALSE(leader.transfer_leadership(99, cluster.loop().now()));
}

TEST(LeadershipTransferTest, RejectsLaggingTarget) {
  SimCluster cluster(paper_escape_cluster(5, 24));
  ASSERT_NE(sim::bootstrap(cluster), kNoServer);
  const ServerId leader = cluster.leader();
  ServerId lagger = kNoServer;
  for (ServerId id : cluster.members()) {
    if (id != leader) {
      lagger = id;
      break;
    }
  }
  // Cut the lagger off and replicate entries it cannot receive.
  cluster.network().isolate(lagger);
  sim::drive_traffic(cluster, from_ms(2'000), from_ms(200));
  EXPECT_FALSE(cluster.node(leader).transfer_leadership(lagger, cluster.loop().now()));
  cluster.network().heal(lagger);
}

TEST(LeadershipTransferTest, StaleTimeoutNowIgnored) {
  SimCluster cluster(paper_escape_cluster(3, 25));
  ASSERT_NE(sim::bootstrap(cluster), kNoServer);
  const ServerId leader = cluster.leader();
  ServerId follower = kNoServer;
  for (ServerId id : cluster.members()) {
    if (id != leader) {
      follower = id;
      break;
    }
  }
  // Inject a TimeoutNow from an ancient term directly.
  rpc::TimeoutNow stale;
  stale.term = 0;
  stale.leader_id = leader;
  const auto term_before = cluster.node(follower).term();
  cluster.node(follower).step({leader, follower, stale}, cluster.loop().now());
  cluster.pump(follower);
  EXPECT_EQ(cluster.node(follower).role(), Role::kFollower);
  EXPECT_EQ(cluster.node(follower).term(), term_before);
}

TEST(LeadershipTransferTest, PlannedMaintenanceDrill) {
  // Full drill: hand off, stop the old leader, keep serving, bring it back.
  SimCluster cluster(paper_escape_cluster(5, 26));
  InvariantChecker inv(cluster);
  ASSERT_NE(sim::bootstrap(cluster), kNoServer);
  sim::drive_traffic(cluster, from_ms(2'000), from_ms(200));
  // Let in-flight replication land so the target is fully caught up.
  cluster.loop().run_until(cluster.loop().now() + from_ms(1'000));

  const ServerId old_leader = cluster.leader();
  const ServerId target = top_priority_follower(cluster);
  ASSERT_TRUE(cluster.node(old_leader).transfer_leadership(target, cluster.loop().now()));
  cluster.pump(old_leader);
  ASSERT_TRUE(cluster
                  .run_until_event(
                      [&](const raft::NodeEvent& e) {
                        return e.kind == raft::NodeEvent::Kind::kBecameLeader &&
                               e.node == target;
                      },
                      cluster.loop().now() + from_ms(10'000))
                  .has_value());

  cluster.crash(old_leader);  // now safe: it is a follower
  EXPECT_GE(sim::drive_traffic(cluster, from_ms(2'000), from_ms(200)), 8u);
  cluster.recover(old_leader);
  const LogIndex commit = cluster.node(cluster.leader()).commit_index();
  EXPECT_TRUE(cluster.run_until_applied(commit, cluster.loop().now() + from_ms(30'000)));
  inv.deep_check();
  EXPECT_TRUE(inv.ok()) << inv.violations().front();
}

TEST(LeadershipTransferTest, MessageRoundtrip) {
  rpc::TimeoutNow m;
  m.term = 42;
  m.leader_id = 3;
  const auto decoded = rpc::decode_message(rpc::encode_message(m));
  ASSERT_TRUE(std::holds_alternative<rpc::TimeoutNow>(decoded));
  EXPECT_EQ(std::get<rpc::TimeoutNow>(decoded), m);
  EXPECT_NE(rpc::to_string(rpc::Message{m}).find("TimeoutNow"), std::string::npos);
}

}  // namespace
}  // namespace escape
