// Regression tests for the Lemma 3 staleness path: a server that recovers
// carrying a stale configuration (an old confClock) must never win an
// election against the patrol-groomed candidate, and — the hole SimCheck
// found — two leaderships must never mint the same configuration clock even
// when a leader crashes before any follower learns its latest generation.
// Driven end-to-end through declarative FaultPlan crash+recover schedules.
#include <gtest/gtest.h>

#include <optional>

#include "core/configuration.h"
#include "sim/fault_plan.h"
#include "sim/invariants.h"
#include "sim/presets.h"
#include "sim/scenario.h"

namespace escape {
namespace {

using sim::FaultPlan;
using sim::NodeRef;
using sim::SimCluster;

/// The ablation-B deployment: patrol_every = 8 widens the window in which a
/// recovered server still holds its stale configuration (with the paper
/// default per-heartbeat piggyback the window is one heartbeat wide and the
/// race is essentially unobservable).
sim::ClusterOptions slow_patrol_cluster(std::size_t n, std::uint64_t seed) {
  auto opts = sim::presets::paper_escape_options();
  opts.patrol_every = 8;
  return sim::presets::paper_cluster(n, sim::presets::escape_policy(opts), seed);
}

/// The follower currently holding the top priority (kNoServer if the pool
/// is not fully distributed yet).
ServerId top_priority_follower(SimCluster& cluster) {
  ServerId top = kNoServer;
  Priority best = 0;
  for (ServerId id : cluster.members()) {
    if (id == cluster.leader() || !cluster.alive(id)) continue;
    const auto p = cluster.node(id).policy().current_config().priority;
    if (p > best) {
      best = p;
      top = id;
    }
  }
  return best == static_cast<Priority>(cluster.size()) ? top : kNoServer;
}

/// One interference run. Returns nullopt when the hazard never materialized
/// for this seed (the patrol refreshed the victim before the leader died —
/// a timing phase, not a failure); otherwise whether the stale server won.
std::optional<bool> stale_server_wins(std::uint64_t seed) {
  sim::ScenarioRunner runner(slow_patrol_cluster(7, seed));
  auto& cluster = runner.cluster();
  sim::InvariantChecker invariants(cluster);
  if (runner.bootstrap() == kNoServer) return std::nullopt;
  // Let the first slow patrol round distribute the pool {2..n}.
  cluster.loop().run_until(cluster.loop().now() + from_ms(5'000));
  const ServerId stale = top_priority_follower(cluster);
  if (stale == kNoServer) return std::nullopt;
  const ConfClock stale_clock = cluster.node(stale).policy().current_config().conf_clock;

  // The Figure 5b interference schedule as one declarative plan: the
  // top-priority follower crashes, client traffic advances the log past the
  // lag hysteresis so a patrol round re-issues its priority to a responsive
  // server, and the victim recovers with its stale copy intact.
  FaultPlan interference;
  interference.at(0, sim::CrashNode{NodeRef::id(stale)});
  interference.at(0, sim::TrafficBurst{from_ms(7'000), from_ms(100)});
  interference.at(from_ms(6'000), sim::RecoverNode{NodeRef::id(stale)});
  runner.run_plan(interference);
  if (cluster.leader() == kNoServer || cluster.leader() == stale) return std::nullopt;

  // Preconditions of the hazard: the victim still holds its stale-clocked
  // config, and some responsive server duplicates that priority. A patrol
  // round landing between recovery and here defuses the race for this seed.
  const auto recovered_cfg = cluster.node(stale).policy().current_config();
  if (recovered_cfg.conf_clock != stale_clock) return std::nullopt;
  bool duplicated = false;
  for (ServerId id : cluster.members()) {
    if (id == stale) continue;
    duplicated |= cluster.node(id).policy().current_config().priority ==
                  recovered_cfg.priority;
  }
  if (!duplicated) return std::nullopt;

  // The leader dies while the duplicate priorities race; the staleness vote
  // rule must refuse the stale copy.
  FaultPlan kill_leader;
  kill_leader.at(0, sim::CrashNode{NodeRef::leader()});
  const auto result = runner.run_failover_plan(kill_leader, from_ms(120'000));
  EXPECT_TRUE(result.converged) << "seed " << seed;
  invariants.deep_check();
  EXPECT_TRUE(invariants.ok()) << "seed " << seed << ": " << invariants.violations().front();
  return result.converged && result.new_leader == stale;
}

TEST(StaleConfClockTest, RecoveredServerWithStaleClockCannotWin) {
  // Patrol phase vs. recovery timing decides whether a given seed actually
  // produces the hazard, so scan a deterministic seed range and demand a
  // minimum number of genuine races — each of which the stale server must
  // lose. If a protocol change ever defuses the race entirely (hazards = 0),
  // this fails loudly rather than passing vacuously.
  int hazards = 0;
  for (std::uint64_t seed = 0xB10; seed < 0xB10 + 40 && hazards < 3; ++seed) {
    const auto won = stale_server_wins(seed);
    if (!won.has_value()) continue;
    ++hazards;
    EXPECT_FALSE(*won) << "stale-clocked server won despite the confClock rule (seed "
                       << seed << ")";
  }
  EXPECT_GE(hazards, 3) << "interference schedule no longer produces the hazard";
}

TEST(ConfClockStrideTest, LeadershipsNeverMintTheSameClock) {
  // The SimCheck finding distilled: the leader stamps a new generation and
  // dies before any follower adopts it. Its successor must not re-mint that
  // clock value — on_become_leader floors the clock into the new term's
  // stride, so generations of distinct leaderships stay disjoint.
  core::EscapeOptions opts;  // defaults: ppf + vote rule on
  core::EscapePolicy first(1, 5, opts);
  first.on_become_leader({2, 3, 4, 5}, 5);
  first.begin_heartbeat_round();  // mints generation (5 * stride) + 1
  const ConfClock minted = first.current_config().conf_clock;
  EXPECT_EQ(minted, 5 * core::kConfClockStride + 1);

  // The successor saw nothing of that round (clock 0 world) and wins term 9.
  core::EscapePolicy second(2, 5, opts);
  second.on_become_leader({1, 3, 4, 5}, 9);
  second.begin_heartbeat_round();
  EXPECT_GT(second.current_config().conf_clock, minted);
  EXPECT_EQ(second.current_config().conf_clock, 9 * core::kConfClockStride + 1);
}

TEST(ConfClockStrideTest, StrideStillContinuesFromObservedClocks) {
  // A clock inherited from a *later* term's leadership outranks the floor:
  // max_clock_seen_ still wins when it is ahead of term * stride.
  core::EscapeOptions opts;
  core::EscapePolicy p(3, 5, opts);
  rpc::Configuration cfg;
  cfg.priority = 4;
  cfg.conf_clock = 40 * core::kConfClockStride + 7;  // from a term-40 leader
  cfg.timer_period = from_ms(1500);
  ASSERT_TRUE(p.on_config_received(cfg));
  p.on_become_leader({1, 2, 4, 5}, 12);  // stale term, fresher observed clock
  p.begin_heartbeat_round();
  EXPECT_GT(p.current_config().conf_clock, cfg.conf_clock);
}

}  // namespace
}  // namespace escape
