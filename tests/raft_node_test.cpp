// Direct unit tests of the consensus core: a single RaftNode driven by
// hand-crafted messages and ticks, no simulator.
#include "raft/raft_node.h"

#include "test_node_harness.h"

#include <gtest/gtest.h>

#include "storage/state_store.h"
#include "storage/wal.h"

namespace escape::raft {
namespace {

constexpr Duration kMin = from_ms(100);
constexpr Duration kMax = from_ms(100);  // deterministic timeout for unit tests

struct NodeFixture {
  explicit NodeFixture(ServerId id = 1, std::size_t n = 3,
                       std::vector<rpc::LogEntry> recovered = {}, NodeOptions opts = {}) {
    std::vector<ServerId> members;
    for (ServerId s = 1; s <= n; ++s) members.push_back(s);
    // A recovered log always originates from the WAL; keep them consistent.
    for (const auto& e : recovered) wal.append(e);
    node = std::make_unique<DrivenNode>(
        id, members, std::make_unique<RaftRandomizedPolicy>(kMin, kMax), store, wal, Rng(7),
        opts, std::move(recovered));
  }

  /// Advances virtual time past the election timeout and ticks.
  void expire_election_timer() {
    now += kMax + 1;
    node->on_tick(now);
  }

  void deliver(ServerId from, rpc::Message m) {
    node->on_message({from, node->id(), std::move(m)}, now);
  }

  rpc::AppendEntries make_heartbeat(Term term, ServerId leader = 2) {
    rpc::AppendEntries ae;
    ae.term = term;
    ae.leader_id = leader;
    ae.prev_log_index = 0;
    ae.prev_log_term = 0;
    ae.leader_commit = 0;
    return ae;
  }

  storage::MemoryStateStore store;
  storage::MemoryWal wal;
  std::unique_ptr<DrivenNode> node;
  TimePoint now = 0;
};

TEST(RaftNodeTest, StartsAsFollower) {
  NodeFixture f;
  f.node->start(0);
  EXPECT_EQ(f.node->role(), Role::kFollower);
  EXPECT_EQ(f.node->term(), 0);
  EXPECT_EQ(f.node->leader_hint(), kNoServer);
  EXPECT_LE(f.node->next_deadline(), kMax);
}

TEST(RaftNodeTest, RejectsDoubleStart) {
  NodeFixture f;
  f.node->start(0);
  EXPECT_THROW(f.node->start(0), std::logic_error);
}

TEST(RaftNodeTest, RejectsInvalidConstruction) {
  storage::MemoryStateStore store;
  storage::MemoryWal wal;
  // Member list missing self.
  EXPECT_THROW(DrivenNode(1, {2, 3}, std::make_unique<RaftRandomizedPolicy>(kMin, kMax), store,
                        wal, Rng(1)),
               std::invalid_argument);
  // Reserved id 0.
  EXPECT_THROW(DrivenNode(0, {0, 1}, std::make_unique<RaftRandomizedPolicy>(kMin, kMax), store,
                        wal, Rng(1)),
               std::invalid_argument);
  // Null policy.
  EXPECT_THROW(DrivenNode(1, {1, 2}, nullptr, store, wal, Rng(1)), std::invalid_argument);
}

TEST(RaftNodeTest, TimeoutStartsCampaign) {
  NodeFixture f;
  f.node->start(0);
  f.expire_election_timer();
  EXPECT_EQ(f.node->role(), Role::kCandidate);
  EXPECT_EQ(f.node->term(), 1);  // Raft: term + 1
  const auto out = f.node->take_outbox();
  ASSERT_EQ(out.size(), 2u);  // RequestVote to both peers
  for (const auto& env : out) {
    ASSERT_TRUE(std::holds_alternative<rpc::RequestVote>(env.message));
    const auto& rv = std::get<rpc::RequestVote>(env.message);
    EXPECT_EQ(rv.term, 1);
    EXPECT_EQ(rv.candidate_id, 1u);
  }
}

TEST(RaftNodeTest, PersistsTermAndVoteOnCampaign) {
  NodeFixture f;
  f.node->start(0);
  f.expire_election_timer();
  const auto persisted = f.store.load();
  ASSERT_TRUE(persisted.has_value());
  EXPECT_EQ(persisted->current_term, 1);
  EXPECT_EQ(persisted->voted_for, 1u);  // voted for self
}

TEST(RaftNodeTest, WinsElectionWithQuorum) {
  NodeFixture f;
  f.node->start(0);
  f.expire_election_timer();
  f.node->take_outbox();
  rpc::RequestVoteReply reply;
  reply.term = 1;
  reply.vote_granted = true;
  reply.voter_id = 2;
  f.deliver(2, reply);
  EXPECT_EQ(f.node->role(), Role::kLeader);  // self + S2 = 2 of 3
  EXPECT_EQ(f.node->leader_hint(), 1u);
  // Winning triggers an immediate heartbeat round.
  const auto out = f.node->take_outbox();
  ASSERT_EQ(out.size(), 2u);
  for (const auto& env : out) {
    EXPECT_TRUE(rpc::is_heartbeat(env.message));
  }
}

TEST(RaftNodeTest, DuplicateVotesDoNotDoubleCount) {
  NodeFixture f(1, 5);
  f.node->start(0);
  f.expire_election_timer();
  rpc::RequestVoteReply reply;
  reply.term = 1;
  reply.vote_granted = true;
  reply.voter_id = 2;
  f.deliver(2, reply);
  f.deliver(2, reply);  // duplicate from same voter
  EXPECT_EQ(f.node->role(), Role::kCandidate);  // 2 votes of 5 -> quorum is 3
  reply.voter_id = 3;
  f.deliver(3, reply);
  EXPECT_EQ(f.node->role(), Role::kLeader);
}

TEST(RaftNodeTest, DeniedVotesIgnored) {
  NodeFixture f;
  f.node->start(0);
  f.expire_election_timer();
  rpc::RequestVoteReply reply;
  reply.term = 1;
  reply.vote_granted = false;
  reply.voter_id = 2;
  f.deliver(2, reply);
  EXPECT_EQ(f.node->role(), Role::kCandidate);
}

TEST(RaftNodeTest, CandidateRetriesOnNextTimeout) {
  NodeFixture f;
  f.node->start(0);
  f.expire_election_timer();
  EXPECT_EQ(f.node->term(), 1);
  f.expire_election_timer();
  EXPECT_EQ(f.node->role(), Role::kCandidate);
  EXPECT_EQ(f.node->term(), 2);
  EXPECT_EQ(f.node->counters().campaigns_started, 2u);
}

TEST(RaftNodeTest, GrantsVoteOncePerTerm) {
  NodeFixture f;
  f.node->start(0);
  rpc::RequestVote rv;
  rv.term = 1;
  rv.candidate_id = 2;
  f.deliver(2, rv);
  auto out = f.node->take_outbox();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(std::get<rpc::RequestVoteReply>(out[0].message).vote_granted);

  rv.candidate_id = 3;  // second candidate, same term
  f.deliver(3, rv);
  out = f.node->take_outbox();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_FALSE(std::get<rpc::RequestVoteReply>(out[0].message).vote_granted);
}

TEST(RaftNodeTest, RegrantsSameCandidateIdempotently) {
  NodeFixture f;
  f.node->start(0);
  rpc::RequestVote rv;
  rv.term = 1;
  rv.candidate_id = 2;
  f.deliver(2, rv);
  f.node->take_outbox();
  f.deliver(2, rv);  // retransmission
  auto out = f.node->take_outbox();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(std::get<rpc::RequestVoteReply>(out[0].message).vote_granted);
}

TEST(RaftNodeTest, RejectsStaleTermCandidate) {
  NodeFixture f;
  f.node->start(0);
  f.deliver(2, f.make_heartbeat(5));  // adopt term 5
  f.node->take_outbox();
  rpc::RequestVote rv;
  rv.term = 3;
  rv.candidate_id = 3;
  f.deliver(3, rv);
  const auto out = f.node->take_outbox();
  ASSERT_EQ(out.size(), 1u);
  const auto& reply = std::get<rpc::RequestVoteReply>(out[0].message);
  EXPECT_FALSE(reply.vote_granted);
  EXPECT_EQ(reply.term, 5);  // candidate learns the newer term
}

TEST(RaftNodeTest, RejectsCandidateWithStaleLog) {
  rpc::LogEntry e1{.term = 2, .index = 1, .command = {}};
  NodeFixture f(1, 3, {e1});
  f.node->start(0);
  // A node restarting with prior state refuses votes for one guard window
  // (it may have acked a lease round before dying); step past it — this
  // test is about the log up-to-date rule.
  f.now += kMax;
  rpc::RequestVote rv;
  rv.term = 3;
  rv.candidate_id = 2;
  rv.last_log_index = 5;
  rv.last_log_term = 1;  // lower last term than ours (2)
  f.deliver(2, rv);
  const auto out = f.node->take_outbox();
  const auto& reply = std::get<rpc::RequestVoteReply>(out[0].message);
  EXPECT_FALSE(reply.vote_granted);
  EXPECT_EQ(f.node->term(), 3);  // term still adopted (Eq. 3 max-merge)
}

TEST(RaftNodeTest, HigherTermMessageForcesStepDown) {
  NodeFixture f;
  f.node->start(0);
  f.expire_election_timer();  // candidate in term 1
  f.node->take_outbox();
  f.deliver(2, f.make_heartbeat(4));
  EXPECT_EQ(f.node->role(), Role::kFollower);
  EXPECT_EQ(f.node->term(), 4);
  EXPECT_EQ(f.node->leader_hint(), 2u);
}

TEST(RaftNodeTest, CandidateStepsDownOnEqualTermLeader) {
  NodeFixture f;
  f.node->start(0);
  f.expire_election_timer();  // candidate, term 1
  f.node->take_outbox();
  f.deliver(2, f.make_heartbeat(1));
  EXPECT_EQ(f.node->role(), Role::kFollower);
  EXPECT_EQ(f.node->term(), 1);
}

TEST(RaftNodeTest, StaleHeartbeatRejected) {
  NodeFixture f;
  f.node->start(0);
  f.deliver(2, f.make_heartbeat(3));
  f.node->take_outbox();
  f.deliver(3, f.make_heartbeat(1, 3));  // stale leader
  const auto out = f.node->take_outbox();
  ASSERT_EQ(out.size(), 1u);
  const auto& reply = std::get<rpc::AppendEntriesReply>(out[0].message);
  EXPECT_FALSE(reply.success);
  EXPECT_EQ(reply.term, 3);
}

TEST(RaftNodeTest, AppendEntriesConsistencyCheck) {
  NodeFixture f;
  f.node->start(0);
  rpc::AppendEntries ae = f.make_heartbeat(1);
  ae.prev_log_index = 5;  // we have nothing at index 5
  ae.prev_log_term = 1;
  f.deliver(2, ae);
  const auto out = f.node->take_outbox();
  const auto& reply = std::get<rpc::AppendEntriesReply>(out[0].message);
  EXPECT_FALSE(reply.success);
  EXPECT_EQ(reply.conflict_index, 1);  // log is empty: back up to index 1
  EXPECT_EQ(reply.conflict_term, 0);
}

TEST(RaftNodeTest, AppendsEntriesAndAdvancesCommit) {
  NodeFixture f;
  f.node->start(0);
  rpc::AppendEntries ae = f.make_heartbeat(1);
  ae.entries.push_back({.term = 1, .index = 1, .command = {42}});
  ae.entries.push_back({.term = 1, .index = 2, .command = {43}});
  ae.leader_commit = 1;
  f.deliver(2, ae);
  EXPECT_EQ(f.node->log().last_index(), 2);
  EXPECT_EQ(f.node->commit_index(), 1);
  const auto committed = f.node->take_committed();
  ASSERT_EQ(committed.size(), 1u);
  EXPECT_EQ(committed[0].command, std::vector<std::uint8_t>{42});
  const auto out = f.node->take_outbox();
  const auto& reply = std::get<rpc::AppendEntriesReply>(out[0].message);
  EXPECT_TRUE(reply.success);
  EXPECT_EQ(reply.match_index, 2);
  EXPECT_EQ(reply.status.log_index, 2);
}

TEST(RaftNodeTest, ConflictingSuffixTruncated) {
  std::vector<rpc::LogEntry> recovered{
      {.term = 1, .index = 1, .command = {1}},
      {.term = 2, .index = 2, .command = {2}},
      {.term = 2, .index = 3, .command = {3}},
  };
  NodeFixture f(1, 3, recovered);
  f.node->start(0);
  rpc::AppendEntries ae = f.make_heartbeat(3);
  ae.prev_log_index = 1;
  ae.prev_log_term = 1;
  ae.entries.push_back({.term = 3, .index = 2, .command = {9}});
  f.deliver(2, ae);
  EXPECT_EQ(f.node->log().last_index(), 2);  // index 3 truncated away
  EXPECT_EQ(f.node->log().term_at(2), Term{3});
  // WAL saw the truncation too.
  ASSERT_EQ(f.wal.entries().size(), 2u);
  EXPECT_EQ(f.wal.entries()[1].term, 3);
}

TEST(RaftNodeTest, DuplicateAppendIsIdempotent) {
  NodeFixture f;
  f.node->start(0);
  rpc::AppendEntries ae = f.make_heartbeat(1);
  ae.entries.push_back({.term = 1, .index = 1, .command = {42}});
  f.deliver(2, ae);
  f.deliver(2, ae);  // network duplicate
  EXPECT_EQ(f.node->log().last_index(), 1);
  EXPECT_EQ(f.wal.entries().size(), 1u);
}

TEST(RaftNodeTest, ConflictTermHintPointsAtFirstIndexOfTerm) {
  std::vector<rpc::LogEntry> recovered{
      {.term = 1, .index = 1, .command = {}},
      {.term = 2, .index = 2, .command = {}},
      {.term = 2, .index = 3, .command = {}},
  };
  NodeFixture f(1, 3, recovered);
  f.node->start(0);
  rpc::AppendEntries ae = f.make_heartbeat(3);
  ae.prev_log_index = 3;
  ae.prev_log_term = 3;  // we have term 2 there
  f.deliver(2, ae);
  const auto out = f.node->take_outbox();
  const auto& reply = std::get<rpc::AppendEntriesReply>(out[0].message);
  EXPECT_FALSE(reply.success);
  EXPECT_EQ(reply.conflict_term, 2);
  EXPECT_EQ(reply.conflict_index, 2);  // first index of term 2
}

TEST(RaftNodeTest, LeaderReplicatesAndCommits) {
  NodeFixture f;
  f.node->start(0);
  f.expire_election_timer();
  f.node->take_outbox();
  rpc::RequestVoteReply vote{.term = 1, .vote_granted = true, .voter_id = 2};
  f.deliver(2, vote);
  ASSERT_EQ(f.node->role(), Role::kLeader);
  f.node->take_outbox();

  const auto idx = f.node->submit({7, 7}, f.now);
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(*idx, 1);
  const auto out = f.node->take_outbox();
  ASSERT_EQ(out.size(), 2u);  // eager replication to both peers
  for (const auto& env : out) {
    const auto& ae = std::get<rpc::AppendEntries>(env.message);
    ASSERT_EQ(ae.entries.size(), 1u);
    EXPECT_EQ(ae.entries[0].index, 1);
  }

  rpc::AppendEntriesReply ok{.term = 1, .success = true, .from = 2, .match_index = 1};
  ok.status.log_index = 1;
  f.deliver(2, ok);
  EXPECT_EQ(f.node->commit_index(), 1);  // self + S2 = quorum
  EXPECT_EQ(f.node->take_committed().size(), 1u);
}

TEST(RaftNodeTest, LeaderDoesNotCommitPriorTermByCounting) {
  // Raft §5.4.2 scenario: an entry from an older term must not commit by
  // replica counting alone.
  std::vector<rpc::LogEntry> recovered{{.term = 1, .index = 1, .command = {1}}};
  NodeFixture f(1, 3, recovered);
  f.node->start(0);
  f.deliver(2, f.make_heartbeat(1));  // sync term 1
  f.node->take_outbox();
  f.expire_election_timer();  // campaign in term 2
  f.node->take_outbox();
  rpc::RequestVoteReply vote{.term = 2, .vote_granted = true, .voter_id = 2};
  f.deliver(2, vote);
  ASSERT_EQ(f.node->role(), Role::kLeader);
  f.node->take_outbox();

  // S2 acks the old entry; it must NOT commit (term 1 < current term 2).
  rpc::AppendEntriesReply ok{.term = 2, .success = true, .from = 2, .match_index = 1};
  ok.status.log_index = 1;
  f.deliver(2, ok);
  EXPECT_EQ(f.node->commit_index(), 0);

  // A current-term entry replicated to quorum commits everything below it.
  const auto idx = f.node->submit({2}, f.now);
  ASSERT_TRUE(idx.has_value());
  f.node->take_outbox();
  rpc::AppendEntriesReply ok2{.term = 2, .success = true, .from = 2, .match_index = 2};
  ok2.status.log_index = 2;
  f.deliver(2, ok2);
  EXPECT_EQ(f.node->commit_index(), 2);
  EXPECT_EQ(f.node->take_committed().size(), 2u);
}

TEST(RaftNodeTest, LeaderBacksUpNextIndexOnConflict) {
  // Leader restarts with a 3-entry log, wins term 2; a follower holding only
  // one entry NACKs the first probe with conflict_index = 2.
  std::vector<rpc::LogEntry> recovered{
      {.term = 1, .index = 1, .command = {1}},
      {.term = 1, .index = 2, .command = {2}},
      {.term = 1, .index = 3, .command = {3}},
  };
  NodeFixture f(1, 3, recovered);
  f.node->start(0);
  f.deliver(2, f.make_heartbeat(1));  // learn term 1 first
  f.node->take_outbox();
  f.expire_election_timer();  // campaign in term 2
  f.node->take_outbox();
  f.deliver(2, rpc::RequestVoteReply{.term = 2, .vote_granted = true, .voter_id = 2});
  ASSERT_EQ(f.node->role(), Role::kLeader);
  f.node->take_outbox();  // initial heartbeat probes with prev=3

  rpc::AppendEntriesReply nack{.term = 2, .success = false, .from = 2};
  nack.conflict_index = 2;  // follower's log has exactly one entry
  nack.conflict_term = 0;
  f.deliver(2, nack);
  const auto out = f.node->take_outbox();
  ASSERT_EQ(out.size(), 1u);
  const auto& retry = std::get<rpc::AppendEntries>(out[0].message);
  EXPECT_EQ(retry.prev_log_index, 1);  // next_index backed up to 2
  EXPECT_EQ(retry.entries.size(), 2u);
}

TEST(RaftNodeTest, SubmitOnFollowerRejected) {
  NodeFixture f;
  f.node->start(0);
  EXPECT_FALSE(f.node->submit({1}, f.now).has_value());
}

TEST(RaftNodeTest, SingleNodeClusterLeadsImmediately) {
  NodeFixture f(1, 1);
  f.node->start(0);
  f.expire_election_timer();
  EXPECT_EQ(f.node->role(), Role::kLeader);
  const auto idx = f.node->submit({1}, f.now);
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(f.node->commit_index(), 1);  // quorum of 1
}

TEST(RaftNodeTest, RestartRestoresPersistentState) {
  NodeFixture f;
  f.node->start(0);
  f.expire_election_timer();  // term 1, voted for self
  f.node->take_outbox();

  // "Restart": new node instance over the same store/WAL.
  std::vector<ServerId> members{1, 2, 3};
  DrivenNode restarted(1, members, std::make_unique<RaftRandomizedPolicy>(kMin, kMax), f.store,
                     f.wal, Rng(8), {}, f.wal.entries());
  restarted.start(0);
  EXPECT_EQ(restarted.term(), 1);
  EXPECT_EQ(restarted.role(), Role::kFollower);
  // It must refuse to vote for another candidate in term 1.
  rpc::RequestVote rv;
  rv.term = 1;
  rv.candidate_id = 3;
  restarted.on_message({3, 1, rv}, 0);
  const auto out = restarted.take_outbox();
  EXPECT_FALSE(std::get<rpc::RequestVoteReply>(out[0].message).vote_granted);
}

TEST(RaftNodeTest, LeaderHeartbeatsOnInterval) {
  NodeOptions opts;
  opts.heartbeat_interval = from_ms(50);
  NodeFixture f(1, 3, {}, opts);
  f.node->start(0);
  f.expire_election_timer();
  f.node->take_outbox();
  f.deliver(2, rpc::RequestVoteReply{.term = 1, .vote_granted = true, .voter_id = 2});
  f.node->take_outbox();  // initial heartbeat round

  f.now += from_ms(50);
  f.node->on_tick(f.now);
  const auto out = f.node->take_outbox();
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(f.node->counters().heartbeat_rounds, 2u);
}

TEST(RaftNodeTest, NoopCommittedOnElectionWhenEnabled) {
  NodeOptions opts;
  opts.commit_noop_on_elect = true;
  NodeFixture f(1, 3, {}, opts);
  f.node->start(0);
  f.expire_election_timer();
  f.node->take_outbox();
  f.deliver(2, rpc::RequestVoteReply{.term = 1, .vote_granted = true, .voter_id = 2});
  EXPECT_EQ(f.node->log().last_index(), 1);  // the no-op barrier entry
  EXPECT_EQ(f.node->log().term_at(1), Term{1});
}

TEST(RaftNodeTest, EventHookSeesTransitions) {
  NodeFixture f;
  std::vector<NodeEvent::Kind> kinds;
  f.node->set_event_hook([&](const NodeEvent& e) { kinds.push_back(e.kind); });
  f.node->start(0);
  f.expire_election_timer();
  f.node->take_outbox();
  f.deliver(2, rpc::RequestVoteReply{.term = 1, .vote_granted = true, .voter_id = 2});
  ASSERT_GE(kinds.size(), 2u);
  EXPECT_EQ(kinds[0], NodeEvent::Kind::kCampaignStarted);
  EXPECT_EQ(kinds[1], NodeEvent::Kind::kBecameLeader);
}

TEST(RaftNodeTest, GrantingVoteResetsElectionTimer) {
  NodeFixture f;
  f.node->start(0);
  const auto deadline_before = f.node->next_deadline();
  f.now = deadline_before - 1;
  rpc::RequestVote rv;
  rv.term = 1;
  rv.candidate_id = 2;
  f.deliver(2, rv);
  EXPECT_GT(f.node->next_deadline(), deadline_before);
}

TEST(RaftNodeTest, DeniedVoteDoesNotResetElectionTimer) {
  NodeFixture f;
  f.node->start(0);
  // Vote for S2 first.
  rpc::RequestVote rv;
  rv.term = 1;
  rv.candidate_id = 2;
  f.deliver(2, rv);
  const auto deadline = f.node->next_deadline();
  // S3 begs for a vote in the same term; denial must not defer our timer.
  rv.candidate_id = 3;
  f.deliver(3, rv);
  EXPECT_EQ(f.node->next_deadline(), deadline);
}

// --- batched + pipelined replication ----------------------------------------

/// Elects fixture node 1 leader of a 3-node cluster (vote from S2).
void elect_leader(NodeFixture& f) {
  f.node->start(0);
  f.expire_election_timer();
  f.node->take_outbox();
  f.deliver(2, rpc::RequestVoteReply{.term = 1, .vote_granted = true, .voter_id = 2});
  ASSERT_EQ(f.node->role(), Role::kLeader);
  f.node->take_outbox();
}

/// AppendEntries messages to `to`, in send order.
std::vector<rpc::AppendEntries> appends_to(std::vector<rpc::Envelope> out, ServerId to) {
  std::vector<rpc::AppendEntries> result;
  for (const auto& env : out) {
    if (env.to != to) continue;
    if (const auto* ae = std::get_if<rpc::AppendEntries>(&env.message)) result.push_back(*ae);
  }
  return result;
}

TEST(RaftPipelineTest, WindowCapsInflightBatchesPerFollower) {
  NodeOptions opts;
  opts.max_entries_per_rpc = 1;
  opts.max_inflight_msgs = 3;
  NodeFixture f(1, 3, {}, opts);
  elect_leader(f);

  // Five submissions, window of three: the optimistic next advances per
  // send, so each peer sees exactly entries 1..3 and the rest queue.
  for (int i = 0; i < 5; ++i) f.node->submit({static_cast<std::uint8_t>(i)}, f.now);
  for (ServerId peer : {ServerId{2}, ServerId{3}}) {
    const auto* pr = f.node->core().progress(peer);
    ASSERT_NE(pr, nullptr);
    EXPECT_EQ(pr->next, 4u);
    EXPECT_EQ(pr->inflight, 3u);
  }
  auto out = f.node->take_outbox();
  for (ServerId peer : {ServerId{2}, ServerId{3}}) {
    const auto batches = appends_to(out, peer);
    ASSERT_EQ(batches.size(), 3u);
    for (std::size_t i = 0; i < batches.size(); ++i) {
      ASSERT_EQ(batches[i].entries.size(), 1u);
      EXPECT_EQ(batches[i].entries[0].index, i + 1);
    }
  }
  EXPECT_EQ(f.node->counters().inflight_depth.max, 3u);

  // One ack frees one slot; the backlog refills it immediately.
  rpc::AppendEntriesReply ok{.term = 1, .success = true, .from = 2, .match_index = 1};
  ok.status.log_index = 1;
  f.deliver(2, ok);
  const auto refill = appends_to(f.node->take_outbox(), 2);
  ASSERT_EQ(refill.size(), 1u);
  ASSERT_EQ(refill[0].entries.size(), 1u);
  EXPECT_EQ(refill[0].entries[0].index, 4u);
}

TEST(RaftPipelineTest, ByteBudgetTrimsBatch) {
  NodeOptions opts;
  opts.max_entries_per_rpc = 128;
  // Framing estimate is 24 B/entry; 8 B payloads make 32 B each, so a 64 B
  // budget carries exactly two entries per message.
  opts.max_bytes_per_msg = 64;
  opts.max_inflight_msgs = 1;
  NodeFixture f(1, 3, {}, opts);
  elect_leader(f);

  f.node->submit(std::vector<std::uint8_t>(8, 1), f.now);  // ships alone, fills the window
  for (int i = 2; i <= 5; ++i) {
    f.node->submit(std::vector<std::uint8_t>(8, static_cast<std::uint8_t>(i)), f.now);
  }
  f.node->take_outbox();

  rpc::AppendEntriesReply ok{.term = 1, .success = true, .from = 2, .match_index = 1};
  ok.status.log_index = 1;
  f.deliver(2, ok);
  const auto refill = appends_to(f.node->take_outbox(), 2);
  ASSERT_EQ(refill.size(), 1u);
  ASSERT_EQ(refill[0].entries.size(), 2u);  // budget, not the entry cap, trims
  EXPECT_EQ(refill[0].entries[0].index, 2u);
  EXPECT_EQ(refill[0].entries[1].index, 3u);
}

TEST(RaftPipelineTest, OversizedEntryStillShipsAlone) {
  NodeOptions opts;
  opts.max_bytes_per_msg = 8;  // smaller than any framed entry
  NodeFixture f(1, 3, {}, opts);
  elect_leader(f);
  f.node->submit(std::vector<std::uint8_t>(64, 9), f.now);
  const auto out = appends_to(f.node->take_outbox(), 2);
  ASSERT_EQ(out.size(), 1u);
  ASSERT_EQ(out[0].entries.size(), 1u);  // a batch always carries >= 1 entry
}

TEST(RaftPipelineTest, RejectionEntersProbeModeUntilAck) {
  NodeOptions opts;
  opts.max_entries_per_rpc = 1;
  opts.max_inflight_msgs = 4;
  NodeFixture f(1, 3, {}, opts);
  elect_leader(f);
  for (int i = 0; i < 3; ++i) f.node->submit({static_cast<std::uint8_t>(i)}, f.now);
  f.node->take_outbox();

  // S2 lost the pipelined batches and rejects from scratch: the leader
  // collapses the window and walks back to the conflict hint.
  rpc::AppendEntriesReply nack{.term = 1, .success = false, .from = 2};
  nack.conflict_index = 1;
  nack.conflict_term = 0;
  f.deliver(2, nack);
  const auto* pr = f.node->core().progress(2);
  ASSERT_NE(pr, nullptr);
  EXPECT_TRUE(pr->probing);
  const auto probes = appends_to(f.node->take_outbox(), 2);
  ASSERT_EQ(probes.size(), 1u);  // single probe outstanding, not a new pipeline
  EXPECT_EQ(probes[0].prev_log_index, 0u);

  // While probing, fresh submissions must not reopen the pipeline to S2.
  f.node->submit({42}, f.now);
  EXPECT_TRUE(appends_to(f.node->take_outbox(), 2).empty());

  // The probe's ack clears probe mode and resumes pipelined catch-up.
  rpc::AppendEntriesReply ok{.term = 1, .success = true, .from = 2, .match_index = 1};
  ok.status.log_index = 1;
  f.deliver(2, ok);
  EXPECT_FALSE(f.node->core().progress(2)->probing);
  EXPECT_FALSE(appends_to(f.node->take_outbox(), 2).empty());
}

TEST(RaftPipelineTest, StaleRejectionBehindMatchIgnored) {
  NodeOptions opts;
  opts.max_entries_per_rpc = 1;
  NodeFixture f(1, 3, {}, opts);
  elect_leader(f);
  for (int i = 0; i < 2; ++i) f.node->submit({static_cast<std::uint8_t>(i)}, f.now);
  f.node->take_outbox();

  rpc::AppendEntriesReply ok{.term = 1, .success = true, .from = 2, .match_index = 2};
  ok.status.log_index = 2;
  f.deliver(2, ok);
  f.node->take_outbox();
  const auto next_before = f.node->core().progress(2)->next;

  // A reordered rejection of an already-acked prefix must not drag the
  // cursor back below match (it would re-ship acknowledged entries forever).
  rpc::AppendEntriesReply stale{.term = 1, .success = false, .from = 2};
  stale.conflict_index = 1;
  stale.conflict_term = 0;
  f.deliver(2, stale);
  EXPECT_EQ(f.node->core().progress(2)->next, next_before);
  EXPECT_FALSE(f.node->core().progress(2)->probing);
  EXPECT_TRUE(appends_to(f.node->take_outbox(), 2).empty());
}

TEST(RaftPipelineTest, HeartbeatRoundReopensStalledWindow) {
  NodeOptions opts;
  opts.max_entries_per_rpc = 1;
  opts.max_inflight_msgs = 1;
  NodeFixture f(1, 3, {}, opts);
  elect_leader(f);
  f.node->submit({1}, f.now);  // fills the single-slot window
  f.node->submit({2}, f.now);  // queued behind it
  f.node->take_outbox();

  // Both in-flight sends were lost. The heartbeat round is the liveness
  // valve: it resets the per-peer window, so the round itself re-ships from
  // the current cursor instead of deadlocking on acks that never come.
  f.now += opts.heartbeat_interval + 1;
  f.node->on_tick(f.now);
  const auto resent = appends_to(f.node->take_outbox(), 2);
  ASSERT_FALSE(resent.empty());
}

TEST(RaftPipelineTest, GroupCommitCountersTrackSyncs) {
  NodeFixture f;
  elect_leader(f);
  const auto before = f.node->counters().wal_group_syncs;
  for (int i = 0; i < 3; ++i) f.node->submit({static_cast<std::uint8_t>(i)}, f.now);
  const auto& c = f.node->counters();
  EXPECT_GE(c.wal_group_syncs, before + 3);  // one sync per batch that carried log ops
  EXPECT_EQ(c.wal_records_per_sync.count, c.wal_group_syncs);
  EXPECT_GE(c.wal_records_per_sync.sum, 3u);
  EXPECT_GT(c.append_batch_entries.count, 0u);
}

TEST(RaftPipelineTest, PowHistogramBucketsByBitWidth) {
  PowHistogram h;
  for (std::uint64_t v : {0ull, 1ull, 2ull, 3ull, 4ull, 7ull, 8ull, 1024ull}) h.record(v);
  EXPECT_EQ(h.count, 8u);
  EXPECT_EQ(h.max, 1024u);
  EXPECT_EQ(h.buckets[0], 1u);  // 0
  EXPECT_EQ(h.buckets[1], 1u);  // 1
  EXPECT_EQ(h.buckets[2], 2u);  // 2-3
  EXPECT_EQ(h.buckets[3], 2u);  // 4-7
  EXPECT_EQ(h.buckets[4], 1u);  // 8-15
  EXPECT_DOUBLE_EQ(h.mean(), (0 + 1 + 2 + 3 + 4 + 7 + 8 + 1024) / 8.0);
}

}  // namespace
}  // namespace escape::raft
