// Tests for the KvCluster synchronous client: sequencing, retries across
// leaderless windows, and state-machine rebuilds on recovery.
#include <gtest/gtest.h>

#include "kv/kv_cluster.h"
#include "test_cluster_util.h"

namespace escape::kv {
namespace {

using sim::SimCluster;
using testutil::paper_escape_cluster;

TEST(KvClusterTest, OperationsReturnResults) {
  SimCluster cluster(paper_escape_cluster(3, 11));
  KvCluster kv(cluster);
  ASSERT_NE(sim::bootstrap(cluster), kNoServer);

  const auto put = kv.put("k", "v1");
  ASSERT_TRUE(put.has_value());
  EXPECT_TRUE(put->ok);
  EXPECT_EQ(put->value, "");  // no previous value

  const auto put2 = kv.put("k", "v2");
  ASSERT_TRUE(put2.has_value());
  EXPECT_EQ(put2->value, "v1");  // previous value reported

  EXPECT_EQ(kv.get("k")->value, "v2");
  EXPECT_TRUE(kv.del("k")->ok);
  EXPECT_FALSE(kv.get("k")->ok);
}

TEST(KvClusterTest, TimesOutWithoutQuorum) {
  SimCluster cluster(paper_escape_cluster(3, 12));
  KvCluster kv(cluster);
  ASSERT_NE(sim::bootstrap(cluster), kNoServer);
  // Kill a majority: nothing can commit.
  ServerId killed = kNoServer;
  for (ServerId id : cluster.members()) {
    if (id != cluster.leader()) {
      cluster.crash(id);
      killed = id;
      break;
    }
  }
  cluster.crash(cluster.leader());
  const auto r = kv.put("k", "v", from_ms(5'000));
  EXPECT_FALSE(r.has_value());
  (void)killed;
}

TEST(KvClusterTest, RetriesAcrossLeaderlessWindow) {
  SimCluster cluster(paper_escape_cluster(5, 13));
  KvCluster kv(cluster);
  ASSERT_NE(sim::bootstrap(cluster), kNoServer);
  // Crash the leader and immediately issue a write: the client must wait
  // out the election and commit through the successor.
  cluster.crash(cluster.leader());
  const auto r = kv.put("after-crash", "ok", from_ms(30'000));
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->ok);
  EXPECT_EQ(kv.get("after-crash")->value, "ok");
}

TEST(KvClusterTest, RecoveredReplicaRebuildsIdenticalState) {
  SimCluster cluster(paper_escape_cluster(3, 14));
  KvCluster kv(cluster);
  ASSERT_NE(sim::bootstrap(cluster), kNoServer);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(kv.put("k" + std::to_string(i), std::to_string(i * i)).has_value());
  }
  ServerId victim = kNoServer;
  for (ServerId id : cluster.members()) {
    if (id != cluster.leader()) {
      victim = id;
      break;
    }
  }
  cluster.crash(victim);
  ASSERT_TRUE(kv.put("while-down", "x").has_value());
  cluster.recover(victim);
  const LogIndex commit = cluster.node(cluster.leader()).commit_index();
  ASSERT_TRUE(cluster.run_until_applied(commit, cluster.loop().now() + from_ms(30'000)));
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(kv.store(victim).peek("k" + std::to_string(i)), std::to_string(i * i));
  }
  EXPECT_EQ(kv.store(victim).peek("while-down"), "x");
}

TEST(KvClusterTest, LinearizableReadObservesAcknowledgedWrites) {
  SimCluster cluster(paper_escape_cluster(3, 16));
  KvCluster kv(cluster);
  ASSERT_NE(sim::bootstrap(cluster), kNoServer);
  ASSERT_TRUE(kv.put("k", "v1").has_value());
  const auto r = kv.read("k");
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->ok);
  EXPECT_EQ(r->value, "v1");
  // Absent keys read as not-ok, like get().
  const auto miss = kv.read("nope");
  ASSERT_TRUE(miss.has_value());
  EXPECT_FALSE(miss->ok);
}

TEST(KvClusterTest, ReadsUseTheFastPathNotTheLog) {
  SimCluster cluster(paper_escape_cluster(3, 17));
  KvCluster kv(cluster);
  ASSERT_NE(sim::bootstrap(cluster), kNoServer);
  ASSERT_TRUE(kv.put("k", "v").has_value());
  const ServerId leader = cluster.leader();
  const LogIndex last = cluster.node(leader).log().last_index();
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(kv.read("k").has_value());
  }
  // No log growth: the reads never rode the replicated log.
  EXPECT_EQ(cluster.node(leader).log().last_index(), last);
  const auto& counters = cluster.node(leader).counters();
  EXPECT_EQ(counters.lease_reads + counters.read_index_reads, 8u);
  // The steady-state cluster has a standing lease (heartbeats every 500 ms,
  // lease 0.75 x 1500 ms baseTime), so most reads cost zero messages.
  EXPECT_GT(counters.lease_reads, 0u);
}

TEST(KvClusterTest, ForeignProbeGrantsDoNotDisturbClientReads) {
  // Scenario ClientRead probes share the cluster's read path with the KV
  // client: their grants reach the KvCluster listener with no matching
  // ticket and are stashed. A client read must neither claim a foreign
  // grant nor wipe the stash wholesale on entry (the pre-fix behavior) —
  // the stash may hold the very lease grant the next ticket resolves with.
  SimCluster cluster(paper_escape_cluster(3, 19));
  KvCluster kv(cluster);
  sim::InvariantChecker invariants(cluster);
  ASSERT_NE(sim::bootstrap(cluster), kNoServer);
  ASSERT_TRUE(kv.put("k", "v1").has_value());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(cluster.submit_read(cluster.leader()).has_value());
    const auto r = kv.read("k");
    ASSERT_TRUE(r.has_value());
    EXPECT_TRUE(r->ok);
    EXPECT_EQ(r->value, "v1");
  }
  // Both the client tickets and the foreign probes were audited against the
  // probe ledger; none of the interleavings produced a stale read.
  EXPECT_GE(invariants.reads_checked(), 15u);
  EXPECT_TRUE(invariants.ok()) << invariants.violations().front();
}

TEST(KvClusterTest, ReadsNeverStaleAcrossFailover) {
  SimCluster cluster(paper_escape_cluster(5, 18));
  KvCluster kv(cluster);
  sim::InvariantChecker invariants(cluster);
  ASSERT_NE(sim::bootstrap(cluster), kNoServer);
  // Repeatedly: acknowledge a write, kill the leader, and require the read
  // served by whoever leads next to observe that write — the classic stale
  // read a deposed leaseholder would serve.
  for (int round = 0; round < 3; ++round) {
    const std::string want = "v" + std::to_string(round);
    ASSERT_TRUE(kv.put("x", want).has_value());
    cluster.crash(cluster.leader());
    const auto r = kv.read("x", from_ms(60'000));
    ASSERT_TRUE(r.has_value()) << "round " << round;
    EXPECT_EQ(r->value, want) << "round " << round;
    // Recover the victim so the next round keeps a healthy majority.
    for (ServerId id : cluster.members()) {
      if (!cluster.alive(id)) cluster.recover(id);
    }
    ASSERT_NE(cluster.run_until_leader(cluster.loop().now() + from_ms(60'000)), kNoServer);
  }
  EXPECT_TRUE(invariants.ok()) << invariants.violations().front();
  EXPECT_GT(invariants.reads_checked(), 0u);
}

TEST(KvClusterTest, SequencesAreMonotonicAcrossOps) {
  // Each op gets a fresh sequence; duplicate suppression is keyed on it.
  SimCluster cluster(paper_escape_cluster(3, 15));
  KvCluster kv(cluster);
  ASSERT_NE(sim::bootstrap(cluster), kNoServer);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(kv.put("a", std::to_string(i)).has_value());
  }
  EXPECT_EQ(kv.get("a")->value, "4");  // last write wins, none dropped as dup
}

}  // namespace
}  // namespace escape::kv
