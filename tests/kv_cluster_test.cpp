// Tests for the KvCluster synchronous client: sequencing, retries across
// leaderless windows, and state-machine rebuilds on recovery.
#include <gtest/gtest.h>

#include "kv/kv_cluster.h"
#include "test_cluster_util.h"

namespace escape::kv {
namespace {

using sim::SimCluster;
using testutil::paper_escape_cluster;

TEST(KvClusterTest, OperationsReturnResults) {
  SimCluster cluster(paper_escape_cluster(3, 11));
  KvCluster kv(cluster);
  ASSERT_NE(sim::bootstrap(cluster), kNoServer);

  const auto put = kv.put("k", "v1");
  ASSERT_TRUE(put.has_value());
  EXPECT_TRUE(put->ok);
  EXPECT_EQ(put->value, "");  // no previous value

  const auto put2 = kv.put("k", "v2");
  ASSERT_TRUE(put2.has_value());
  EXPECT_EQ(put2->value, "v1");  // previous value reported

  EXPECT_EQ(kv.get("k")->value, "v2");
  EXPECT_TRUE(kv.del("k")->ok);
  EXPECT_FALSE(kv.get("k")->ok);
}

TEST(KvClusterTest, TimesOutWithoutQuorum) {
  SimCluster cluster(paper_escape_cluster(3, 12));
  KvCluster kv(cluster);
  ASSERT_NE(sim::bootstrap(cluster), kNoServer);
  // Kill a majority: nothing can commit.
  ServerId killed = kNoServer;
  for (ServerId id : cluster.members()) {
    if (id != cluster.leader()) {
      cluster.crash(id);
      killed = id;
      break;
    }
  }
  cluster.crash(cluster.leader());
  const auto r = kv.put("k", "v", from_ms(5'000));
  EXPECT_FALSE(r.has_value());
  (void)killed;
}

TEST(KvClusterTest, RetriesAcrossLeaderlessWindow) {
  SimCluster cluster(paper_escape_cluster(5, 13));
  KvCluster kv(cluster);
  ASSERT_NE(sim::bootstrap(cluster), kNoServer);
  // Crash the leader and immediately issue a write: the client must wait
  // out the election and commit through the successor.
  cluster.crash(cluster.leader());
  const auto r = kv.put("after-crash", "ok", from_ms(30'000));
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->ok);
  EXPECT_EQ(kv.get("after-crash")->value, "ok");
}

TEST(KvClusterTest, RecoveredReplicaRebuildsIdenticalState) {
  SimCluster cluster(paper_escape_cluster(3, 14));
  KvCluster kv(cluster);
  ASSERT_NE(sim::bootstrap(cluster), kNoServer);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(kv.put("k" + std::to_string(i), std::to_string(i * i)).has_value());
  }
  ServerId victim = kNoServer;
  for (ServerId id : cluster.members()) {
    if (id != cluster.leader()) {
      victim = id;
      break;
    }
  }
  cluster.crash(victim);
  ASSERT_TRUE(kv.put("while-down", "x").has_value());
  cluster.recover(victim);
  const LogIndex commit = cluster.node(cluster.leader()).commit_index();
  ASSERT_TRUE(cluster.run_until_applied(commit, cluster.loop().now() + from_ms(30'000)));
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(kv.store(victim).peek("k" + std::to_string(i)), std::to_string(i * i));
  }
  EXPECT_EQ(kv.store(victim).peek("while-down"), "x");
}

TEST(KvClusterTest, SequencesAreMonotonicAcrossOps) {
  // Each op gets a fresh sequence; duplicate suppression is keyed on it.
  SimCluster cluster(paper_escape_cluster(3, 15));
  KvCluster kv(cluster);
  ASSERT_NE(sim::bootstrap(cluster), kNoServer);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(kv.put("a", std::to_string(i)).has_value());
  }
  EXPECT_EQ(kv.get("a")->value, "4");  // last write wins, none dropped as dup
}

}  // namespace
}  // namespace escape::kv
