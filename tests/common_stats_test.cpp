#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace escape {
namespace {

TEST(SampleTest, EmptySampleIsZeroed) {
  Sample s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(s.cdf_at(10.0), 0.0);
  EXPECT_TRUE(s.cdf_series(10).empty());
}

TEST(SampleTest, MeanAndStddev) {
  Sample s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(SampleTest, MinMax) {
  Sample s;
  for (double v : {3.0, -1.0, 8.0, 2.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.min(), -1.0);
  EXPECT_DOUBLE_EQ(s.max(), 8.0);
}

TEST(SampleTest, PercentileNearestRank) {
  Sample s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(95), 95.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
}

TEST(SampleTest, PercentileSingleValue) {
  Sample s;
  s.add(7.5);
  EXPECT_DOUBLE_EQ(s.percentile(1), 7.5);
  EXPECT_DOUBLE_EQ(s.percentile(99), 7.5);
}

TEST(SampleTest, PercentileBoundaryRanks) {
  // Nearest-rank edges: p=0 must clamp to the smallest observation (the
  // rank formula yields rank 0), p=100 to the largest, and the midpoint of
  // an even-sized sample takes the lower of the two central values.
  Sample s;
  for (double v : {10.0, 20.0, 30.0, 40.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(25), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 20.0);
  EXPECT_DOUBLE_EQ(s.percentile(75), 30.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 40.0);
  // Out-of-range requests clamp rather than index out of bounds.
  EXPECT_DOUBLE_EQ(s.percentile(-5), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(150), 40.0);
}

TEST(SampleTest, PercentileSingleObservationEverywhere) {
  Sample s;
  s.add(3.25);
  for (double p : {0.0, 0.1, 50.0, 99.9, 100.0}) {
    EXPECT_DOUBLE_EQ(s.percentile(p), 3.25) << "p=" << p;
  }
}

TEST(SampleTest, CdfAtCountsEveryDuplicate) {
  // cdf_at(x) is the fraction <= x; a run of duplicates at x must all be
  // counted, and a query just below the run counts none of them.
  Sample s;
  for (double v : {1.0, 5.0, 5.0, 5.0, 5.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.cdf_at(5.0 - 1e-9), 1.0 / 6.0);
  EXPECT_DOUBLE_EQ(s.cdf_at(5.0), 5.0 / 6.0);
  EXPECT_DOUBLE_EQ(s.cdf_at(9.0), 1.0);
}

TEST(SampleTest, MergeOfSplitsEqualsWhole) {
  // The TrialPool contract: splitting a sample into consecutive chunks and
  // merging them back in chunk order reproduces the whole sample exactly —
  // raw value order included, so every derived statistic is bit-identical.
  Sample whole;
  std::vector<Sample> chunks(3);
  for (int i = 0; i < 31; ++i) {
    const double v = (i * 37) % 13 + i * 0.25;
    whole.add(v);
    chunks[static_cast<std::size_t>(i / 11)].add(v);
  }
  Sample merged;
  for (const auto& c : chunks) merged.merge(c);
  EXPECT_EQ(merged.values(), whole.values());
  EXPECT_DOUBLE_EQ(merged.mean(), whole.mean());
  EXPECT_DOUBLE_EQ(merged.stddev(), whole.stddev());
  EXPECT_DOUBLE_EQ(merged.percentile(50), whole.percentile(50));
  EXPECT_DOUBLE_EQ(merged.percentile(99), whole.percentile(99));
  EXPECT_DOUBLE_EQ(merged.cdf_at(5.0), whole.cdf_at(5.0));
}

TEST(SampleTest, MergeWithEmptySides) {
  Sample empty;
  Sample s;
  s.add(1.0);
  s.add(2.0);
  s.merge(empty);
  EXPECT_EQ(s.count(), 2u);
  Sample target;
  target.merge(s).merge(empty);
  EXPECT_EQ(target.values(), s.values());
  EXPECT_EQ(empty.merge(s).count(), 2u);
}

TEST(SampleTest, SelfMergeDoublesTheSample) {
  Sample s;
  for (double v : {1.0, 2.0, 3.0}) s.add(v);
  s.merge(s);
  EXPECT_EQ(s.values(), (std::vector<double>{1.0, 2.0, 3.0, 1.0, 2.0, 3.0}));
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
}

TEST(SampleTest, MergeInvalidatesSortedCache) {
  Sample a;
  a.add(5.0);
  EXPECT_DOUBLE_EQ(a.max(), 5.0);  // populates the sorted cache
  Sample b;
  b.add(50.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.max(), 50.0);
  EXPECT_DOUBLE_EQ(a.percentile(100), 50.0);
}

TEST(SampleTest, CdfMatchesDefinition) {
  Sample s;
  for (double v : {1.0, 2.0, 2.0, 3.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.cdf_at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.cdf_at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(s.cdf_at(2.0), 0.75);
  EXPECT_DOUBLE_EQ(s.cdf_at(2.5), 0.75);
  EXPECT_DOUBLE_EQ(s.cdf_at(3.0), 1.0);
  EXPECT_DOUBLE_EQ(s.cdf_at(99.0), 1.0);
}

TEST(SampleTest, CdfSeriesSpansRangeAndIsMonotone) {
  Sample s;
  for (int i = 0; i < 50; ++i) s.add(i * 2.0);
  const auto series = s.cdf_series(11);
  ASSERT_EQ(series.size(), 11u);
  EXPECT_DOUBLE_EQ(series.front().first, 0.0);
  EXPECT_DOUBLE_EQ(series.back().first, 98.0);
  EXPECT_DOUBLE_EQ(series.back().second, 1.0);
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_GE(series[i].second, series[i - 1].second);
  }
}

TEST(SampleTest, CdfSeriesDegenerate) {
  Sample s;
  s.add(5.0);
  s.add(5.0);
  const auto series = s.cdf_series(4);
  ASSERT_EQ(series.size(), 1u);
  EXPECT_DOUBLE_EQ(series[0].first, 5.0);
  EXPECT_DOUBLE_EQ(series[0].second, 1.0);
}

TEST(SampleTest, AddAfterQueryInvalidatesCache) {
  Sample s;
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.max(), 1.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 10.0);
}

TEST(HistogramTest, BucketsAndEdges) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.0);   // bucket 0
  h.add(1.99);  // bucket 0
  h.add(2.0);   // bucket 1
  h.add(9.99);  // bucket 4
  h.add(10.0);  // overflow
  h.add(-0.1);  // underflow
  EXPECT_EQ(h.count_in_bucket(0), 2u);
  EXPECT_EQ(h.count_in_bucket(1), 1u);
  EXPECT_EQ(h.count_in_bucket(4), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(2), 4.0);
}

TEST(SummarizeTest, ContainsAllFields) {
  Sample s;
  for (int i = 1; i <= 10; ++i) s.add(i);
  const auto text = summarize(s, "ms");
  EXPECT_NE(text.find("mean="), std::string::npos);
  EXPECT_NE(text.find("p50="), std::string::npos);
  EXPECT_NE(text.find("p99="), std::string::npos);
  EXPECT_NE(text.find("n=10"), std::string::npos);
}

}  // namespace
}  // namespace escape
