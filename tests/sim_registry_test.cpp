// Tests for the named scenario registry: every built-in scenario must hold
// the paper's safety invariants and be bit-deterministic (two runs with the
// same seed produce identical event traces), and the individual scenarios
// must show the behaviour they were designed to provoke.
#include <gtest/gtest.h>

#include "sim/invariants.h"
#include "sim/scenario.h"
#include "sim/scenario_registry.h"

namespace escape {
namespace {

using sim::ScenarioParams;
using sim::ScenarioReport;
using sim::run_scenario;

ScenarioParams params(std::uint64_t seed, std::string policy = "escape",
                      std::size_t servers = 5) {
  ScenarioParams p;
  p.servers = servers;
  p.policy = std::move(policy);
  p.seed = seed;
  return p;
}

TEST(ScenarioRegistryTest, RegistryListsTheBuiltIns) {
  const auto specs = sim::all_scenarios();
  ASSERT_GE(specs.size(), 11u);
  for (const char* name : {"failover", "handover", "asymmetric_partition", "gray_leader",
                           "rolling_restart", "leader_churn", "loss_spike",
                           "snapshot_catchup", "snapshot_churn", "read_heavy_failover",
                           "lease_expiry_storm"}) {
    EXPECT_NE(sim::find_scenario(name), nullptr) << name;
  }
  EXPECT_EQ(sim::find_scenario("no-such-scenario"), nullptr);
  EXPECT_THROW(run_scenario("no-such-scenario", params(1)), std::invalid_argument);
}

TEST(ScenarioRegistryTest, DuplicateRegistrationThrows) {
  sim::ScenarioSpec dup;
  dup.name = "failover";
  dup.description = "clone";
  dup.plan = [](sim::SimCluster&, const ScenarioParams&) { return sim::FaultPlan{}; };
  EXPECT_THROW(sim::register_scenario(std::move(dup)), std::invalid_argument);
  EXPECT_THROW(sim::register_scenario({}), std::invalid_argument);
}

TEST(ScenarioRegistryTest, UnknownPolicyThrows) {
  EXPECT_THROW(run_scenario("failover", params(1, "paxos")), std::invalid_argument);
}

// Acceptance gate: every registered scenario is deterministic (same seed =>
// identical event trace) and never violates the Section V safety invariants.
TEST(ScenarioRegistryTest, AllScenariosAreDeterministicAndSafe) {
  for (const auto* spec : sim::all_scenarios()) {
    const auto p = params(404, "escape", 5);
    const ScenarioReport first = run_scenario(*spec, p);
    const ScenarioReport second = run_scenario(*spec, p);

    ASSERT_TRUE(first.bootstrapped) << spec->name;
    EXPECT_TRUE(first.safety_ok()) << spec->name << ": " << first.violations.front();
    ASSERT_FALSE(first.trace.empty()) << spec->name;
    EXPECT_EQ(first.trace, second.trace) << spec->name << " is not deterministic";
    EXPECT_EQ(first.episodes.size(), second.episodes.size()) << spec->name;
  }
}

// Every registry scenario must also survive the *expensive* full-state
// checks — pairwise log matching, applied-prefix consistency, leader
// completeness — run explicitly at quiescence. This drives the scenario by
// hand (cluster + checker + runner) so the deep_check() call is visible in
// the test rather than buried in run_scenario.
TEST(ScenarioRegistryTest, DeepCheckHoldsAtQuiescenceForEveryScenario) {
  for (const auto* spec : sim::all_scenarios()) {
    const auto p = params(271, "escape", 5);
    sim::SimCluster cluster(sim::scenario_cluster_options(p));
    sim::InvariantChecker invariants(cluster);
    sim::ScenarioRunner runner(cluster);
    ASSERT_NE(runner.bootstrap(), kNoServer) << spec->name;
    runner.run_plan(spec->plan(cluster, p), spec->drain);
    invariants.deep_check();
    EXPECT_TRUE(invariants.ok())
        << spec->name << ": " << invariants.violations().front();
    EXPECT_FALSE(invariants.leaders_by_term().empty()) << spec->name;
  }
}

TEST(ScenarioRegistryTest, FailoverElectionsAreSingleCampaignPerTerm) {
  // leaders_by_term is the election-safety ledger: the failover scenario
  // under ESCAPE must show exactly two led terms (bootstrap + the measured
  // failover), i.e. every election was won by the first campaign — no
  // intermediate terms with winners, and the failover winner's term matches
  // the episode measurement.
  const auto report = run_scenario("failover", params(5));
  ASSERT_TRUE(report.bootstrapped);
  ASSERT_EQ(report.episodes.size(), 1u);
  ASSERT_TRUE(report.episodes[0].converged);
  ASSERT_EQ(report.leaders_by_term.size(), 2u);
  const auto first = report.leaders_by_term.begin();
  const auto second = std::next(first);
  EXPECT_EQ(first->second, report.bootstrap_leader);
  EXPECT_EQ(second->second, report.episodes[0].new_leader);
  EXPECT_EQ(second->first, report.episodes[0].new_term);
  EXPECT_EQ(report.episodes[0].campaigns, 1u);
}

TEST(ScenarioRegistryTest, ScenariosAreSafeUnderRaftToo) {
  for (const char* name : {"failover", "asymmetric_partition", "gray_leader",
                           "leader_churn"}) {
    const auto report = run_scenario(name, params(7, "raft"));
    ASSERT_TRUE(report.bootstrapped) << name;
    EXPECT_TRUE(report.safety_ok()) << name;
  }
}

TEST(ScenarioRegistryTest, FailoverMeasuresOneSingleCampaignEpisode) {
  const auto report = run_scenario("failover", params(5));
  ASSERT_EQ(report.episodes.size(), 1u);
  EXPECT_TRUE(report.episodes[0].converged);
  EXPECT_EQ(report.episodes[0].campaigns, 1u);  // ESCAPE: no split votes
  EXPECT_GT(report.traffic_submitted, 0u);
  EXPECT_EQ(report.alive_servers, 5u);  // the victim was recovered
}

TEST(ScenarioRegistryTest, HandoverBeatsCrashDetection) {
  const auto report = run_scenario("handover", params(6));
  ASSERT_EQ(report.episodes.size(), 1u);
  ASSERT_TRUE(report.episodes[0].converged);
  EXPECT_NE(report.episodes[0].new_leader, report.bootstrap_leader);
  // No failure detection wait: the handoff resolves in well under the
  // 1500 ms ESCAPE baseTime.
  EXPECT_LT(report.episodes[0].total, from_ms(1'500));
}

TEST(ScenarioRegistryTest, AsymmetricPartitionDeposesTheMutedLeader) {
  const auto report = run_scenario("asymmetric_partition", params(8));
  ASSERT_EQ(report.episodes.size(), 1u);
  ASSERT_TRUE(report.episodes[0].converged);
  EXPECT_NE(report.episodes[0].new_leader, report.bootstrap_leader);
  EXPECT_GT(report.net.dropped_partition, 0u);
  EXPECT_NE(report.final_leader, kNoServer);
}

TEST(ScenarioRegistryTest, GrayLeaderIsReplacedWithoutACrash) {
  const auto report = run_scenario("gray_leader", params(9));
  ASSERT_EQ(report.episodes.size(), 1u);
  ASSERT_TRUE(report.episodes[0].converged);
  EXPECT_NE(report.episodes[0].new_leader, report.bootstrap_leader);
  EXPECT_EQ(report.alive_servers, 5u);  // nobody actually died
}

TEST(ScenarioRegistryTest, RollingRestartStaysAvailableThroughout) {
  const auto report = run_scenario("rolling_restart", params(10));
  // Only the leader's own restart forces an election; every such episode
  // must converge, and the sweep ends with the full membership alive.
  ASSERT_GE(report.episodes.size(), 1u);
  for (const auto& e : report.episodes) EXPECT_TRUE(e.converged);
  EXPECT_EQ(report.alive_servers, 5u);
  EXPECT_NE(report.final_leader, kNoServer);
  EXPECT_GT(report.traffic_submitted, 0u);
}

TEST(ScenarioRegistryTest, LeaderChurnMeasuresEveryCrash) {
  const auto report = run_scenario("leader_churn", params(11));
  ASSERT_EQ(report.episodes.size(), 3u);
  for (const auto& e : report.episodes) {
    EXPECT_TRUE(e.converged);
    EXPECT_EQ(e.campaigns, 1u);  // ESCAPE: churn never splits votes
  }
  EXPECT_EQ(report.alive_servers, 5u);
}

TEST(ScenarioRegistryTest, LossSpikeElectsThroughTheStorm) {
  const auto report = run_scenario("loss_spike", params(12));
  ASSERT_EQ(report.episodes.size(), 1u);
  EXPECT_TRUE(report.episodes[0].converged);
  EXPECT_GT(report.net.dropped_omission, 0u);
  // The storm subsides before the run ends: Δ is back at the params value.
  EXPECT_EQ(report.alive_servers, 5u);
}

// --- read-path assertions ---------------------------------------------------

TEST(ScenarioRegistryTest, ReadHeavyFailoverAuditsEveryGrantAndStaysFresh) {
  // Drive the scenario by hand so the checker is in view: reads hammer the
  // cluster across the crash and every audited grant must be fresh (the
  // audit compares each grant against the cluster-wide commit floor at
  // issue time — a deposed leader serving one stale read fails here).
  const auto p = params(333);
  sim::SimCluster cluster(sim::scenario_cluster_options(p));
  sim::InvariantChecker invariants(cluster);
  sim::ScenarioRunner runner(cluster);
  const auto* spec = sim::find_scenario("read_heavy_failover");
  ASSERT_NE(spec, nullptr);
  ASSERT_NE(runner.bootstrap(), kNoServer);
  runner.run_plan(spec->plan(cluster, p), spec->drain);
  invariants.deep_check();
  EXPECT_TRUE(invariants.ok()) << invariants.violations().front();
  EXPECT_GT(runner.runtime().reads_issued(), 0u);
  EXPECT_GT(invariants.reads_checked(), 0u);
}

TEST(ScenarioRegistryTest, LeaderChurnWithReadsNeverServesStale) {
  // The stock leader_churn schedule with a read storm layered on top: three
  // successive leader crashes while fast-path reads keep flowing. Every
  // grant across every leadership change is audited for staleness.
  const auto p = params(77);
  sim::SimCluster cluster(sim::scenario_cluster_options(p));
  sim::InvariantChecker invariants(cluster);
  sim::ScenarioRunner runner(cluster);
  const auto* spec = sim::find_scenario("leader_churn");
  ASSERT_NE(spec, nullptr);
  sim::FaultPlan plan = spec->plan(cluster, p);
  plan.at(from_ms(500), sim::ClientRead{from_ms(22'000), from_ms(70)});
  ASSERT_NE(runner.bootstrap(), kNoServer);
  runner.run_plan(plan, spec->drain);
  invariants.deep_check();
  EXPECT_TRUE(invariants.ok()) << invariants.violations().front();
  EXPECT_GT(invariants.reads_checked(), 0u);
}

TEST(ScenarioRegistryTest, LeaseExpiryStormDropsLeaseReadsWhilePartitioned) {
  // The satellite claim, measured directly: isolate the leader, let its
  // lease lapse, and require that lease serving stops — reads it accepts
  // afterwards can only pend (and are rejected at step-down), never answer.
  const auto p = params(91);
  sim::SimCluster cluster(sim::scenario_cluster_options(p));
  sim::InvariantChecker invariants(cluster);
  sim::ScenarioRunner runner(cluster);
  const ServerId leader = runner.bootstrap();
  ASSERT_NE(leader, kNoServer);

  // Warm the lease with a few reads, then cut the leader off completely.
  for (int i = 0; i < 3; ++i) {
    cluster.submit_read(leader);
    cluster.loop().run_until(cluster.loop().now() + from_ms(200));
  }
  cluster.network().isolate(leader);
  // ESCAPE baseTime 1500 ms -> lease <= 0.75 x 1500 = 1125 ms past the last
  // confirmed round; run well past it so the lease is certainly dead.
  cluster.loop().run_until(cluster.loop().now() + from_ms(2'500));
  const auto lease_reads_at_expiry = cluster.node(leader).counters().lease_reads;

  for (int i = 0; i < 10; ++i) {
    cluster.submit_read(leader);
    cluster.loop().run_until(cluster.loop().now() + from_ms(300));
  }
  // Zero lease reads while partitioned: every one of the ten could only pend.
  EXPECT_EQ(cluster.node(leader).counters().lease_reads, lease_reads_at_expiry);
  EXPECT_GT(cluster.node(leader).pending_reads(), 0u);

  // Heal: the deposed leader steps down and rejects what it was holding.
  cluster.network().heal(leader);
  ASSERT_NE(cluster.run_until_leader(cluster.loop().now() + from_ms(30'000)), kNoServer);
  cluster.loop().run_until(cluster.loop().now() + from_ms(5'000));
  EXPECT_GT(cluster.node(leader).counters().reads_rejected, 0u);
  EXPECT_EQ(cluster.node(leader).pending_reads(), 0u);
  invariants.deep_check();
  EXPECT_TRUE(invariants.ok()) << invariants.violations().front();
}

TEST(ScenarioRegistryTest, DifferentSeedsExploreDifferentTimelines) {
  const auto a = run_scenario("failover", params(100));
  const auto b = run_scenario("failover", params(101));
  EXPECT_NE(a.trace, b.trace);
}

}  // namespace
}  // namespace escape
