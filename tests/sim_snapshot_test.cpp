// End-to-end snapshot/compaction tests on the simulated cluster: the
// acceptance scenario (a 5-node cluster where one follower crashes, the
// cluster writes past the compaction horizon, and recovery must go through
// InstallSnapshot to an identical applied state and confClock), the
// registry's snapshot scenarios, automatic interval-driven compaction, and
// trace determinism across all of it.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/escape_policy.h"
#include "kv/kv_cluster.h"
#include "sim/fault_plan.h"
#include "sim/invariants.h"
#include "sim/presets.h"
#include "sim/scenario_registry.h"

namespace escape {
namespace {

using sim::FaultPlan;
using sim::NodeRef;

sim::ClusterOptions escape_cluster(std::size_t n, std::uint64_t seed,
                                   LogIndex snapshot_interval = 0) {
  auto opts = sim::presets::paper_cluster(n, sim::presets::escape_policy(), seed);
  opts.snapshot_interval = snapshot_interval;
  return opts;
}

bool trace_mentions(const std::vector<std::string>& trace, const std::string& needle) {
  return std::any_of(trace.begin(), trace.end(), [&](const std::string& line) {
    return line.find(needle) != std::string::npos;
  });
}

TEST(SimSnapshotTest, CrashedFollowerRecoversViaInstallSnapshot) {
  // The acceptance scenario, with a real KV state machine on top so
  // "identical applied state" means identical key-value contents and
  // session tables, not just matching log metadata.
  sim::SimCluster cluster(escape_cluster(5, 0x51AB));
  kv::KvCluster kv(cluster);
  sim::InvariantChecker invariants(cluster);
  ASSERT_NE(sim::bootstrap(cluster), kNoServer);

  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(kv.put("warm" + std::to_string(i), "v" + std::to_string(i)).has_value());
  }
  const ServerId leader = cluster.leader();
  ServerId follower = kNoServer;
  for (const ServerId id : cluster.members()) {
    if (id != leader) {
      follower = id;
      break;
    }
  }
  cluster.crash(follower);

  // Writes continue far past the crashed follower's log position, then the
  // survivors compact — the follower's catch-up entries no longer exist.
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(kv.put("k" + std::to_string(i), "val" + std::to_string(i)).has_value());
  }
  const ServerId l2 = cluster.leader();
  ASSERT_NE(l2, kNoServer);
  const auto compacted = cluster.trigger_snapshot(l2);
  ASSERT_TRUE(compacted.has_value());
  ASSERT_GT(cluster.node(l2).log().base(), LogIndex{0});

  cluster.recover(follower);
  const LogIndex target = cluster.node(l2).commit_index();
  const auto caught_up = [&] {
    return cluster.alive(follower) && cluster.node(follower).last_applied() >= target;
  };
  cluster.run_until_event([&](const raft::NodeEvent&) { return caught_up(); },
                          cluster.loop().now() + from_ms(60'000));
  ASSERT_TRUE(caught_up());

  // Catch-up went through InstallSnapshot, not full replay.
  EXPECT_GE(cluster.node(follower).counters().snapshots_installed, 1u);
  EXPECT_GE(cluster.node(follower).log().base(), *compacted);

  // Identical applied state: every key readable on the leader reads the
  // same on the recovered follower, sessions included.
  for (int i = 0; i < 30; ++i) {
    const auto key = "k" + std::to_string(i);
    EXPECT_EQ(kv.store(follower).peek(key), kv.store(l2).peek(key)) << key;
  }
  EXPECT_EQ(kv.store(follower).size(), kv.store(l2).size());
  EXPECT_EQ(kv.store(follower).session_count(), kv.store(l2).session_count());

  // Identical confClock trajectory: the recovered node's clock is exactly
  // (never behind) a generation the leader has issued, and deep_check's
  // snapshot-monotonicity assertions hold cluster-wide.
  const ConfClock follower_clock = cluster.node(follower).conf_clock();
  EXPECT_GT(follower_clock, ConfClock{0});
  const auto& leader_policy =
      dynamic_cast<const core::EscapePolicy&>(cluster.node(l2).policy());
  EXPECT_LE(follower_clock, leader_policy.issued_clock());
  invariants.deep_check();
  EXPECT_TRUE(invariants.ok()) << invariants.violations().front();
}

TEST(SimSnapshotTest, AutomaticIntervalCompactionBoundsEveryLog) {
  // snapshot_interval drives compaction with no manual trigger: after
  // sustained traffic every live node's retained suffix stays near the
  // interval instead of growing with the write volume.
  sim::ScenarioRunner runner(escape_cluster(5, 0x51AC, /*snapshot_interval=*/32));
  auto& cluster = runner.cluster();
  sim::InvariantChecker invariants(cluster);
  ASSERT_NE(runner.bootstrap(), kNoServer);

  FaultPlan plan;
  plan.at(0, sim::TrafficBurst{from_ms(15'000), from_ms(50)});
  runner.run_plan(plan, from_ms(3'000));

  for (const ServerId id : cluster.members()) {
    ASSERT_TRUE(cluster.alive(id));
    EXPECT_GT(cluster.node(id).counters().snapshots_taken, 0u) << server_name(id);
    EXPECT_GT(cluster.node(id).log().base(), LogIndex{0}) << server_name(id);
    // Retained suffix is bounded by the interval plus in-flight commits.
    EXPECT_LE(cluster.node(id).log().size(), 32u + 16u) << server_name(id);
  }
  invariants.deep_check();
  EXPECT_TRUE(invariants.ok()) << invariants.violations().front();
}

TEST(SimSnapshotTest, SnapshotCatchupScenarioInstallsAndStaysSafe) {
  sim::ScenarioParams params;
  params.seed = 11;
  const auto report = sim::run_scenario("snapshot_catchup", params);
  ASSERT_TRUE(report.bootstrapped);
  EXPECT_TRUE(report.safety_ok()) << report.violations.front();
  EXPECT_TRUE(trace_mentions(report.trace, "snapshot"));
  EXPECT_TRUE(trace_mentions(report.trace, "install-snapshot"));
  // Determinism: same params, same trace.
  const auto replay = sim::run_scenario("snapshot_catchup", params);
  EXPECT_EQ(report.trace, replay.trace);
}

TEST(SimSnapshotTest, SnapshotChurnScenarioSurvivesThreeLeaderHops) {
  sim::ScenarioParams params;
  params.seed = 23;
  const auto report = sim::run_scenario("snapshot_churn", params);
  ASSERT_TRUE(report.bootstrapped);
  EXPECT_TRUE(report.safety_ok()) << report.violations.front();
  EXPECT_GE(report.episodes.size(), 3u);  // every snapshot-crash of a leader measures
  EXPECT_TRUE(trace_mentions(report.trace, "snapshot"));
  const auto replay = sim::run_scenario("snapshot_churn", params);
  EXPECT_EQ(report.trace, replay.trace);
}

TEST(SimSnapshotTest, SnapshotActionsComposeWithRaftAndZraftPolicies) {
  // The snapshot path must stay policy-agnostic: vanilla Raft (no configs)
  // and Z-Raft (configs without clocks) run the same scenarios safely.
  for (const char* policy : {"raft", "zraft"}) {
    sim::ScenarioParams params;
    params.policy = policy;
    params.seed = 31;
    params.snapshot_interval = 48;
    const auto report = sim::run_scenario("snapshot_churn", params);
    ASSERT_TRUE(report.bootstrapped) << policy;
    EXPECT_TRUE(report.safety_ok()) << policy << ": " << report.violations.front();
  }
}

TEST(SimSnapshotTest, SnapshotAndCrashRestartsFromOwnSnapshot) {
  // compact-to-last-applied then restart, at the cluster level: the victim
  // restarts from the snapshot it took an instant before dying, and its
  // log base proves it did not replay from index 1.
  sim::ScenarioRunner runner(escape_cluster(5, 0x51AD));
  auto& cluster = runner.cluster();
  sim::InvariantChecker invariants(cluster);
  ASSERT_NE(runner.bootstrap(), kNoServer);

  FaultPlan plan;
  plan.at(0, sim::TrafficBurst{from_ms(6'000), from_ms(60)});
  plan.at(from_ms(6'500), sim::SnapshotAndCrash{NodeRef::leader()});
  plan.at(from_ms(10'000), sim::RecoverAll{});
  runner.run_plan(plan, from_ms(15'000));

  ServerId victim = kNoServer;
  for (const auto& marker : runner.runtime().markers()) {
    if (marker.what == "snapshot-crash" && marker.ok) victim = marker.node;
  }
  ASSERT_NE(victim, kNoServer);
  ASSERT_TRUE(cluster.alive(victim));
  EXPECT_GT(cluster.node(victim).log().base(), LogIndex{0});
  const auto snap = cluster.snapshot_store(victim).load();
  ASSERT_TRUE(snap.has_value());
  EXPECT_GE(cluster.node(victim).conf_clock(), snap->config.conf_clock);
  invariants.deep_check();
  EXPECT_TRUE(invariants.ok()) << invariants.violations().front();
}

}  // namespace
}  // namespace escape
