// Cluster-level properties tied to the paper's Section V arguments:
// term scattering of concurrent campaigns, Lemma 3 configuration
// uniqueness under churn, clock monotonicity, and the detection-order
// optimization (the top-priority follower detects first).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "test_cluster_util.h"

namespace escape {
namespace {

using sim::InvariantChecker;
using sim::SimCluster;
using testutil::paper_escape_cluster;

class EscapePropertySeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EscapePropertySeeds, WinnerIsTopPriorityFollower) {
  // Section IV-B: "the server with the highest-priority configuration has
  // the maximum potential to detect the leader failure and initiate a new
  // election campaign before any other servers".
  SimCluster cluster(paper_escape_cluster(7, GetParam()));
  ASSERT_NE(sim::bootstrap(cluster), kNoServer);

  // Snapshot priorities at crash time.
  const ServerId leader = cluster.leader();
  ServerId top = kNoServer;
  Priority best = 0;
  for (ServerId id : cluster.members()) {
    if (id == leader) continue;
    const auto p = cluster.node(id).policy().current_config().priority;
    if (p > best) {
      best = p;
      top = id;
    }
  }
  const auto result = sim::measure_failover(cluster);
  ASSERT_TRUE(result.converged);
  EXPECT_EQ(result.new_leader, top);
  EXPECT_EQ(best, static_cast<Priority>(cluster.size()));  // pool top is n
}

TEST_P(EscapePropertySeeds, ConcurrentCampaignsNeverShareATerm) {
  // SCA's purpose (Section IV-A): simultaneous campaigns are scattered into
  // different terms, so "flocked elections" cannot form. Verified over the
  // whole event history of a multi-failover run.
  SimCluster cluster(paper_escape_cluster(5, GetParam() ^ 0xFACE));
  ASSERT_NE(sim::bootstrap(cluster), kNoServer);
  for (int round = 0; round < 2; ++round) {
    const ServerId victim = cluster.leader();
    const auto result = sim::measure_failover(cluster);
    ASSERT_TRUE(result.converged);
    cluster.recover(victim);
    cluster.loop().run_until(cluster.loop().now() + from_ms(3'000));
  }

  std::map<Term, std::set<ServerId>> campaigns_by_term;
  for (const auto& e : cluster.event_log()) {
    if (e.kind == raft::NodeEvent::Kind::kCampaignStarted) {
      campaigns_by_term[e.term].insert(e.node);
    }
  }
  for (const auto& [term, nodes] : campaigns_by_term) {
    EXPECT_LE(nodes.size(), 1u) << "flocked election in term " << term;
  }
}

TEST_P(EscapePropertySeeds, ConfigUniquenessHoldsThroughChurn) {
  // Lemma 3 via the continuous checker, including recoveries (the stale
  // configuration of a recovered server lives in an older confClock, which
  // is exactly what the lemma permits).
  SimCluster cluster(paper_escape_cluster(5, GetParam() ^ 0xBEE));
  InvariantChecker inv(cluster, /*check_configs=*/true);
  ASSERT_NE(sim::bootstrap(cluster), kNoServer);

  for (int round = 0; round < 3; ++round) {
    const ServerId victim = cluster.leader();
    ASSERT_TRUE(sim::measure_failover(cluster).converged);
    cluster.recover(victim);
    cluster.loop().run_until(cluster.loop().now() + from_ms(4'000));
  }
  EXPECT_TRUE(inv.ok()) << inv.violations().front();
}

TEST_P(EscapePropertySeeds, ConfClockIsMonotonicPerServer) {
  SimCluster cluster(paper_escape_cluster(5, GetParam() ^ 0xC10C));
  std::map<ServerId, ConfClock> last_clock;
  bool monotone = true;
  cluster.add_event_listener([&](const raft::NodeEvent& e) {
    if (e.kind != raft::NodeEvent::Kind::kConfigAdopted) return;
    auto [it, inserted] = last_clock.try_emplace(e.node, e.config.conf_clock);
    if (!inserted) {
      if (e.config.conf_clock <= it->second) monotone = false;
      it->second = e.config.conf_clock;
    }
  });
  ASSERT_NE(sim::bootstrap(cluster), kNoServer);
  ASSERT_TRUE(sim::measure_failover(cluster).converged);
  cluster.loop().run_until(cluster.loop().now() + from_ms(5'000));
  EXPECT_TRUE(monotone);
  EXPECT_FALSE(last_clock.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, EscapePropertySeeds, ::testing::Values(3, 7, 19, 43, 71));

TEST(EscapePropertyTest, StaleRecoveredServerCannotWin) {
  // Figure 5b end-to-end: a server that recovers with a stale high-priority
  // configuration must not beat the patrol-groomed candidate.
  SimCluster cluster(paper_escape_cluster(5, 1234));
  ASSERT_NE(sim::bootstrap(cluster), kNoServer);

  // Find the top-priority follower and crash it.
  const ServerId leader = cluster.leader();
  ServerId top = kNoServer;
  Priority best = 0;
  for (ServerId id : cluster.members()) {
    if (id == leader) continue;
    const auto p = cluster.node(id).policy().current_config().priority;
    if (p > best) {
      best = p;
      top = id;
    }
  }
  cluster.crash(top);
  // Give the patrol time to reassign the top priority (it reacts once the
  // crashed follower's responsiveness lags materially; generate traffic so
  // the log advances past the hysteresis threshold).
  sim::drive_traffic(cluster, from_ms(4'000), from_ms(100));
  cluster.recover(top);
  cluster.loop().run_until(cluster.loop().now() + from_ms(300));

  // Crash the leader while the recovered server still holds its stale
  // high-priority configuration.
  const auto result = sim::measure_failover(cluster, from_ms(60'000));
  ASSERT_TRUE(result.converged);
  EXPECT_NE(result.new_leader, top)
      << "stale-clocked server won despite the confClock rule";
}

TEST(EscapePropertyTest, TermGrowthFollowsEquation2) {
  // Every ESCAPE campaign bumps the term by exactly the campaigner's
  // current priority.
  SimCluster cluster(paper_escape_cluster(5, 4321));
  std::map<ServerId, Term> term_before;
  bool eq2_holds = true;
  cluster.add_event_listener([&](const raft::NodeEvent& e) {
    if (e.kind != raft::NodeEvent::Kind::kCampaignStarted) return;
    const auto priority = cluster.node(e.node).policy().current_config().priority;
    // The campaign term carried by the event is the post-bump term; the
    // node's pre-bump term is not directly observable here, so check the
    // congruence against the recorded previous campaign/stepdown term.
    const auto it = term_before.find(e.node);
    if (it != term_before.end() && e.term - it->second != priority &&
        e.term - it->second < priority) {
      eq2_holds = false;  // grew by less than the priority: Eq. 2 violated
    }
    term_before[e.node] = e.term;
  });
  ASSERT_NE(sim::bootstrap(cluster), kNoServer);
  ASSERT_TRUE(sim::measure_failover(cluster).converged);
  EXPECT_TRUE(eq2_holds);
}

TEST(EscapePropertyTest, LeaderParksAtBottomPriority) {
  SimCluster cluster(paper_escape_cluster(6, 99));
  ASSERT_NE(sim::bootstrap(cluster), kNoServer);
  const ServerId leader = cluster.leader();
  EXPECT_EQ(cluster.node(leader).policy().current_config().priority, 1);
  // And the pool {2..n} is fully distributed among followers.
  std::set<Priority> pool;
  for (ServerId id : cluster.members()) {
    if (id != leader) pool.insert(cluster.node(id).policy().current_config().priority);
  }
  EXPECT_EQ(pool, (std::set<Priority>{2, 3, 4, 5, 6}));
}

}  // namespace
}  // namespace escape
