// Tests pinning the canonical experiment presets to the paper's Section VI-A
// parameters — a bench harness silently drifting from the paper's setup
// would invalidate every reproduction claim.
#include <gtest/gtest.h>

#include "sim/presets.h"

namespace escape::sim::presets {
namespace {

TEST(PresetsTest, PaperEscapeOptions) {
  const auto opts = paper_escape_options();
  EXPECT_EQ(opts.base_time, from_ms(1500));  // §VI-B baseTime
  EXPECT_EQ(opts.gap, from_ms(500));         // §VI-B k
  EXPECT_TRUE(opts.enable_ppf);
  EXPECT_TRUE(opts.conf_clock_vote_rule);
  EXPECT_EQ(opts.patrol_every, 1);
}

TEST(PresetsTest, PolicyNames) {
  EXPECT_EQ(escape_policy()(1, 5)->name(), "escape");
  EXPECT_EQ(zraft_policy()(1, 5)->name(), "zraft");
  EXPECT_EQ(raft_policy()(1, 5)->name(), "raft");
}

TEST(PresetsTest, RaftTimeoutRangeMatchesPaper) {
  auto policy = raft_policy()(1, 5);
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    const auto t = policy->next_election_timeout(rng);
    EXPECT_GE(t, from_ms(1500));
    EXPECT_LE(t, from_ms(3000));
  }
}

TEST(PresetsTest, EscapeTimeoutFollowsEquation1) {
  auto policy = escape_policy()(3, 10);
  Rng rng(1);
  // P = id = 3, n = 10: 1500 + 500 * (10 - 3) = 5000 ms.
  EXPECT_EQ(policy->next_election_timeout(rng), from_ms(5000));
}

TEST(PresetsTest, PaperClusterWiring) {
  auto options = paper_cluster(16, escape_policy(), 99, 0.25);
  EXPECT_EQ(options.size, 16u);
  EXPECT_EQ(options.seed, 99u);
  EXPECT_DOUBLE_EQ(options.network.broadcast_omission, 0.25);
  EXPECT_EQ(options.node.heartbeat_interval, from_ms(500));
  // Latency is the paper's NetEm band.
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const auto d = options.network.latency(1, 2, rng);
    EXPECT_GE(d, from_ms(100));
    EXPECT_LE(d, from_ms(200));
  }
}

}  // namespace
}  // namespace escape::sim::presets
