// RaftNode driven directly with an EscapePolicy: verifies the node/policy
// contract at the message level — Eq. 2/3 term arithmetic, confClock on the
// wire, config adoption -> timer period changes, and the status fields of
// Listing 1 flowing back to the leader.
#include <gtest/gtest.h>

#include "core/escape_policy.h"
#include "raft/raft_node.h"

#include "test_node_harness.h"
#include "storage/state_store.h"
#include "storage/wal.h"

namespace escape {
namespace {

core::EscapeOptions small_options() {
  core::EscapeOptions o;
  o.base_time = from_ms(100);
  o.gap = from_ms(50);
  return o;
}

struct EscapeNodeFixture {
  explicit EscapeNodeFixture(ServerId id = 2, std::size_t n = 5) {
    std::vector<ServerId> members;
    for (ServerId s = 1; s <= n; ++s) members.push_back(s);
    node = std::make_unique<raft::DrivenNode>(
        id, members, std::make_unique<core::EscapePolicy>(id, n, small_options()), store, wal,
        Rng(3));
    node->start(0);
  }

  void tick_past(Duration d) {
    now += d;
    node->on_tick(now);
  }

  storage::MemoryStateStore store;
  storage::MemoryWal wal;
  std::unique_ptr<raft::DrivenNode> node;
  TimePoint now = 0;
};

TEST(EscapeNodeTest, InitialTimeoutFollowsEquation1) {
  // S2 in a 5-cluster: 100 + 50*(5-2) = 250 ms.
  EscapeNodeFixture f;
  EXPECT_EQ(f.node->next_deadline(), from_ms(250));
}

TEST(EscapeNodeTest, CampaignJumpsTermByPriority) {
  EscapeNodeFixture f;  // S2: priority 2
  f.tick_past(from_ms(251));
  EXPECT_EQ(f.node->role(), Role::kCandidate);
  EXPECT_EQ(f.node->term(), 2);  // 0 + P(2), Eq. 2
  f.tick_past(from_ms(251));
  EXPECT_EQ(f.node->term(), 4);  // repeated campaign: +P again
}

TEST(EscapeNodeTest, RequestVoteCarriesConfClock) {
  EscapeNodeFixture f;
  // Adopt a config with clock 9 via heartbeat.
  rpc::AppendEntries hb;
  hb.term = 1;
  hb.leader_id = 1;
  hb.new_config = rpc::Configuration{from_ms(100), 5, 9};
  f.node->on_message({1, 2, hb}, f.now);
  f.node->take_outbox();

  // Campaign: the RequestVote must carry clock 9 and jump by priority 5.
  f.tick_past(from_ms(400));
  ASSERT_EQ(f.node->role(), Role::kCandidate);
  EXPECT_EQ(f.node->term(), 6);  // 1 + P(5)
  const auto out = f.node->take_outbox();
  ASSERT_EQ(out.size(), 4u);
  for (const auto& env : out) {
    const auto& rv = std::get<rpc::RequestVote>(env.message);
    EXPECT_EQ(rv.conf_clock, 9);
    EXPECT_EQ(rv.term, 6);
  }
}

TEST(EscapeNodeTest, ConfigAdoptionChangesTimerPeriodAndPersists) {
  EscapeNodeFixture f;
  rpc::AppendEntries hb;
  hb.term = 1;
  hb.leader_id = 1;
  hb.new_config = rpc::Configuration{from_ms(100), 5, 3};  // top priority: 100 ms
  f.now = from_ms(10);
  f.node->on_message({1, 2, hb}, f.now);
  // Timer re-armed with the adopted (shorter) period.
  EXPECT_EQ(f.node->next_deadline(), f.now + from_ms(100));
  // Adopted configuration is durable.
  const auto persisted = f.store.load();
  ASSERT_TRUE(persisted.has_value());
  EXPECT_EQ(persisted->config.priority, 5);
  EXPECT_EQ(persisted->config.conf_clock, 3);
  EXPECT_EQ(f.node->conf_clock(), 3);
}

TEST(EscapeNodeTest, StaleConfigIgnored) {
  EscapeNodeFixture f;
  rpc::AppendEntries hb;
  hb.term = 1;
  hb.leader_id = 1;
  hb.new_config = rpc::Configuration{from_ms(100), 5, 7};
  f.node->on_message({1, 2, hb}, f.now);
  f.node->take_outbox();
  // An older clock (e.g. a reordered heartbeat) must not roll back.
  rpc::AppendEntries stale;
  stale.term = 1;
  stale.leader_id = 1;
  stale.new_config = rpc::Configuration{from_ms(500), 2, 4};
  f.node->on_message({1, 2, stale}, f.now);
  EXPECT_EQ(f.node->policy().current_config().priority, 5);
  EXPECT_EQ(f.node->conf_clock(), 7);
}

TEST(EscapeNodeTest, VoterRejectsStaleClockCandidate) {
  EscapeNodeFixture f;
  rpc::AppendEntries hb;
  hb.term = 1;
  hb.leader_id = 1;
  hb.new_config = rpc::Configuration{from_ms(100), 5, 7};
  f.node->on_message({1, 2, hb}, f.now);
  f.node->take_outbox();

  // Step past the vote-recency guard window (min timeout = baseTime): this
  // test is about the confClock staleness rule, not leader freshness.
  f.now += from_ms(100);

  rpc::RequestVote rv;
  rv.term = 10;
  rv.candidate_id = 3;
  rv.conf_clock = 6;  // behind our 7
  f.node->on_message({3, 2, rv}, f.now);
  auto out = f.node->take_outbox();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_FALSE(std::get<rpc::RequestVoteReply>(out[0].message).vote_granted);
  // Eq. 3: the higher term is adopted even though the vote is refused.
  EXPECT_EQ(f.node->term(), 10);

  rv.term = 11;
  rv.candidate_id = 4;
  rv.conf_clock = 7;  // fresh enough
  f.node->on_message({4, 2, rv}, f.now);
  out = f.node->take_outbox();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(std::get<rpc::RequestVoteReply>(out[0].message).vote_granted);
}

TEST(EscapeNodeTest, Equation3MaxMergeNotAdditive) {
  // A server receiving a higher term adopts it verbatim (max), it does not
  // add its priority — only campaigns add (Eq. 2 vs Eq. 3).
  EscapeNodeFixture f;
  rpc::AppendEntries hb;
  hb.term = 42;
  hb.leader_id = 1;
  f.node->on_message({1, 2, hb}, f.now);
  EXPECT_EQ(f.node->term(), 42);
  f.tick_past(from_ms(400));
  EXPECT_EQ(f.node->term(), 44);  // 42 + P(2)
}

TEST(EscapeNodeTest, ReplyStatusReportsListing1Fields) {
  EscapeNodeFixture f;
  rpc::AppendEntries hb;
  hb.term = 1;
  hb.leader_id = 1;
  hb.new_config = rpc::Configuration{from_ms(150), 4, 2};
  hb.entries.push_back({.term = 1, .index = 1, .command = {1}});
  f.node->on_message({1, 2, hb}, f.now);
  const auto out = f.node->take_outbox();
  ASSERT_EQ(out.size(), 1u);
  const auto& reply = std::get<rpc::AppendEntriesReply>(out[0].message);
  ASSERT_TRUE(reply.success);
  EXPECT_EQ(reply.status.log_index, 1);          // log responsiveness
  EXPECT_EQ(reply.status.timer_period, from_ms(150));
  EXPECT_EQ(reply.status.conf_clock, 2);         // adopted clock
}

TEST(EscapeNodeTest, RestartRestoresAdoptedConfiguration) {
  EscapeNodeFixture f;
  rpc::AppendEntries hb;
  hb.term = 1;
  hb.leader_id = 1;
  hb.new_config = rpc::Configuration{from_ms(100), 5, 7};
  f.node->on_message({1, 2, hb}, f.now);

  std::vector<ServerId> members{1, 2, 3, 4, 5};
  raft::DrivenNode restarted(2, members,
                           std::make_unique<core::EscapePolicy>(2, 5, small_options()),
                           f.store, f.wal, Rng(4));
  restarted.start(0);
  EXPECT_EQ(restarted.policy().current_config().priority, 5);
  EXPECT_EQ(restarted.conf_clock(), 7);
  // The restored (stale-able) period drives the timer, Figure 5b semantics.
  EXPECT_EQ(restarted.next_deadline(), from_ms(100));
}

}  // namespace
}  // namespace escape
