#include "storage/wal.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include <unistd.h>

namespace escape::storage {
namespace {

rpc::LogEntry entry(Term t, LogIndex i) {
  rpc::LogEntry e;
  e.term = t;
  e.index = i;
  e.command = {static_cast<std::uint8_t>(i), static_cast<std::uint8_t>(t)};
  return e;
}

TEST(MemoryWalTest, AppendTruncateReplay) {
  MemoryWal wal;
  wal.append(entry(1, 1));
  wal.append(entry(1, 2));
  wal.append(entry(1, 3));
  wal.truncate_from(2);
  wal.append(entry(2, 2));
  ASSERT_EQ(wal.entries().size(), 2u);
  EXPECT_EQ(wal.entries()[0].term, 1);
  EXPECT_EQ(wal.entries()[1].term, 2);
}

TEST(MemoryWalTest, NonContiguousAppendThrows) {
  MemoryWal wal;
  wal.append(entry(1, 1));
  EXPECT_THROW(wal.append(entry(1, 3)), std::logic_error);
}

TEST(MemoryWalTest, AppendBatchMatchesLoopOfAppends) {
  MemoryWal wal;
  wal.append(entry(1, 1));
  wal.append_batch({entry(1, 2), entry(1, 3), entry(2, 4)});
  ASSERT_EQ(wal.entries().size(), 4u);
  for (LogIndex i = 1; i <= 4; ++i) {
    EXPECT_EQ(wal.entries()[static_cast<std::size_t>(i - 1)].index, i);
  }
  // Contiguity is enforced across the batch boundary too.
  EXPECT_THROW(wal.append_batch({entry(2, 7)}), std::logic_error);
}

class FileWalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("escape_wal_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string wal_path() const { return (dir_ / "node.wal").string(); }
  std::filesystem::path dir_;
};

TEST_F(FileWalTest, FreshFileRecoversEmpty) {
  FileWal wal(wal_path());
  EXPECT_TRUE(wal.recovered_entries().empty());
}

TEST_F(FileWalTest, AppendThenRecover) {
  {
    FileWal wal(wal_path());
    for (LogIndex i = 1; i <= 10; ++i) wal.append(entry(1, i));
    wal.sync();
  }
  FileWal reopened(wal_path());
  ASSERT_EQ(reopened.recovered_entries().size(), 10u);
  for (LogIndex i = 1; i <= 10; ++i) {
    EXPECT_EQ(reopened.recovered_entries()[static_cast<std::size_t>(i - 1)], entry(1, i));
  }
}

TEST_F(FileWalTest, TruncateRecordsReplay) {
  {
    FileWal wal(wal_path());
    for (LogIndex i = 1; i <= 5; ++i) wal.append(entry(1, i));
    wal.truncate_from(3);
    wal.append(entry(2, 3));
    wal.sync();
  }
  FileWal reopened(wal_path());
  ASSERT_EQ(reopened.recovered_entries().size(), 3u);
  EXPECT_EQ(reopened.recovered_entries()[2].term, 2);
}

TEST_F(FileWalTest, TornTailRecordDiscarded) {
  {
    FileWal wal(wal_path());
    for (LogIndex i = 1; i <= 4; ++i) wal.append(entry(1, i));
    wal.sync();
  }
  // Simulate a torn write: chop bytes off the end of the file.
  const auto size = std::filesystem::file_size(wal_path());
  std::filesystem::resize_file(wal_path(), size - 3);

  FileWal reopened(wal_path());
  EXPECT_EQ(reopened.recovered_entries().size(), 3u);
  // The WAL must remain appendable after truncating the torn record.
  reopened.append(entry(1, 4));
  reopened.sync();
  FileWal again(wal_path());
  EXPECT_EQ(again.recovered_entries().size(), 4u);
}

TEST_F(FileWalTest, CorruptMiddleRecordStopsReplay) {
  {
    FileWal wal(wal_path());
    for (LogIndex i = 1; i <= 6; ++i) wal.append(entry(1, i));
    wal.sync();
  }
  // Flip a byte roughly in the middle of the file (inside record ~3).
  const auto size = std::filesystem::file_size(wal_path());
  std::fstream f(wal_path(), std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(static_cast<long>(size / 2));
  char b = 0x5A;
  f.write(&b, 1);
  f.close();

  FileWal reopened(wal_path());
  // Everything before the corrupt record survives; everything after is
  // conservatively dropped.
  EXPECT_LT(reopened.recovered_entries().size(), 6u);
  for (std::size_t i = 0; i < reopened.recovered_entries().size(); ++i) {
    EXPECT_EQ(reopened.recovered_entries()[i].index, static_cast<LogIndex>(i + 1));
  }
}

TEST_F(FileWalTest, ReopenAppendReopen) {
  {
    FileWal wal(wal_path());
    wal.append(entry(1, 1));
    wal.sync();
  }
  {
    FileWal wal(wal_path());
    ASSERT_EQ(wal.recovered_entries().size(), 1u);
    wal.append(entry(1, 2));
    wal.sync();
  }
  FileWal wal(wal_path());
  EXPECT_EQ(wal.recovered_entries().size(), 2u);
}

TEST_F(FileWalTest, SyncEveryRecordMode) {
  FileWal wal(wal_path(), /*sync_every_record=*/true);
  for (LogIndex i = 1; i <= 3; ++i) wal.append(entry(1, i));
  FileWal reopened(wal_path());
  EXPECT_EQ(reopened.recovered_entries().size(), 3u);
}

TEST_F(FileWalTest, AppendBatchRecoversAllRecords) {
  {
    FileWal wal(wal_path());
    wal.append(entry(1, 1));
    std::vector<rpc::LogEntry> batch;
    for (LogIndex i = 2; i <= 9; ++i) batch.push_back(entry(1, i));
    wal.append_batch(batch);  // one buffered write for the whole group
    wal.sync();
  }
  FileWal reopened(wal_path());
  ASSERT_EQ(reopened.recovered_entries().size(), 9u);
  for (LogIndex i = 1; i <= 9; ++i) {
    EXPECT_EQ(reopened.recovered_entries()[static_cast<std::size_t>(i - 1)], entry(1, i));
  }
}

TEST_F(FileWalTest, TornTailInsideBatchRecoversPrefix) {
  // A crash mid-group-commit tears the batch's single write. Each record in
  // the buffer is individually framed and checksummed, so replay keeps the
  // batch's intact prefix and discards only the torn tail — exactly the
  // guarantee the group-commit driver relies on: a batch is all-durable only
  // after sync(), but a partial batch never corrupts recovery.
  {
    FileWal wal(wal_path());
    wal.append(entry(1, 1));
    wal.append_batch({entry(1, 2), entry(1, 3), entry(1, 4), entry(1, 5)});
    wal.sync();
  }
  // Tear into the middle of the batch: chop the last record plus a few bytes
  // of the one before it.
  const auto size = std::filesystem::file_size(wal_path());
  std::filesystem::resize_file(wal_path(), size - (size / 4));

  FileWal reopened(wal_path());
  const auto& recovered = reopened.recovered_entries();
  ASSERT_GE(recovered.size(), 1u);
  ASSERT_LT(recovered.size(), 5u);
  for (std::size_t i = 0; i < recovered.size(); ++i) {
    EXPECT_EQ(recovered[i], entry(1, static_cast<LogIndex>(i + 1)));
  }
  // Appendable after the tear: the next incarnation re-replicates the rest.
  const LogIndex next = recovered.back().index + 1;
  reopened.append(entry(2, next));
  reopened.sync();
  FileWal again(wal_path());
  ASSERT_EQ(again.recovered_entries().size(), recovered.size() + 1);
  EXPECT_EQ(again.recovered_entries().back().term, 2);
}

TEST_F(FileWalTest, SyncEveryRecordBatchStillRecovers) {
  {
    FileWal wal(wal_path(), /*sync_every_record=*/true);
    wal.append_batch({entry(1, 1), entry(1, 2), entry(1, 3)});
  }
  FileWal reopened(wal_path());
  EXPECT_EQ(reopened.recovered_entries().size(), 3u);
}

TEST_F(FileWalTest, TruncateToEmptyThenRebuild) {
  {
    FileWal wal(wal_path());
    for (LogIndex i = 1; i <= 3; ++i) wal.append(entry(1, i));
    wal.truncate_from(1);
    wal.append(entry(5, 1));
    wal.sync();
  }
  FileWal reopened(wal_path());
  ASSERT_EQ(reopened.recovered_entries().size(), 1u);
  EXPECT_EQ(reopened.recovered_entries()[0].term, 5);
}

}  // namespace
}  // namespace escape::storage
