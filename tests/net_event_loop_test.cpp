// Epoll event-loop tests: ByteRing mechanics, port-0 listener adoption,
// frame reassembly across partial transfers (tiny SO_SNDBUF/SO_RCVBUF),
// slow-client eviction vs transport-mode overflow, a 1000-connection accept
// storm, and EINTR injection through the net::testhooks syscall seams.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <numeric>
#include <thread>
#include <vector>

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include "net/event_loop.h"
#include "rpc/wire.h"

namespace escape::net {
namespace {

using namespace std::chrono_literals;

// --- ByteRing ----------------------------------------------------------------

TEST(ByteRingTest, AppendPeekConsumeRoundtrip) {
  ByteRing ring;
  EXPECT_TRUE(ring.empty());
  std::vector<std::uint8_t> data(100);
  std::iota(data.begin(), data.end(), 0);
  ring.append(data.data(), data.size());
  EXPECT_EQ(ring.size(), 100u);

  std::vector<std::uint8_t> out(100);
  ring.peek(0, out.data(), out.size());
  EXPECT_EQ(out, data);

  ring.consume(40);
  EXPECT_EQ(ring.size(), 60u);
  std::vector<std::uint8_t> tail(60);
  ring.peek(0, tail.data(), tail.size());
  EXPECT_EQ(tail, std::vector<std::uint8_t>(data.begin() + 40, data.end()));
}

TEST(ByteRingTest, WrapAroundPreservesBytes) {
  ByteRing ring;
  // Fill, drain most, then append past the physical end so the data wraps.
  std::vector<std::uint8_t> first(48, 0xAA);
  ring.append(first.data(), first.size());
  const std::size_t cap = ring.capacity();
  ring.consume(40);
  std::vector<std::uint8_t> second(cap - 16, 0xBB);  // forces head < tail wrap
  ring.append(second.data(), second.size());

  std::vector<std::uint8_t> out(ring.size());
  ring.peek(0, out.data(), out.size());
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(out[i], 0xAA) << i;
  for (std::size_t i = 8; i < out.size(); ++i) ASSERT_EQ(out[i], 0xBB) << i;

  // head_span is contiguous and may be shorter than size() when wrapped;
  // consuming span-by-span must still walk every byte exactly once.
  std::size_t seen = 0;
  while (!ring.empty()) {
    const auto [ptr, len] = ring.head_span();
    ASSERT_GT(len, 0u);
    ASSERT_LE(len, ring.size());
    seen += len;
    ring.consume(len);
  }
  EXPECT_EQ(seen, out.size());
}

TEST(ByteRingTest, TailSpanProduceMatchesAppend) {
  ByteRing ring;
  const auto [ptr, len] = ring.tail_span(1000);
  ASSERT_GE(len, 1000u);
  for (std::size_t i = 0; i < 1000; ++i) ptr[i] = static_cast<std::uint8_t>(i % 251);
  ring.produce(1000);
  EXPECT_EQ(ring.size(), 1000u);
  std::vector<std::uint8_t> out(1000);
  ring.peek(0, out.data(), out.size());
  for (std::size_t i = 0; i < 1000; ++i) ASSERT_EQ(out[i], i % 251) << i;
}

TEST(ByteRingTest, GrowsAcrossPowerOfTwoBoundaries) {
  ByteRing ring;
  std::vector<std::uint8_t> chunk(777);
  std::iota(chunk.begin(), chunk.end(), 1);
  for (int i = 0; i < 100; ++i) ring.append(chunk.data(), chunk.size());
  EXPECT_EQ(ring.size(), 77700u);
  // Capacity stays a power of two (or zero before first use).
  const std::size_t cap = ring.capacity();
  EXPECT_EQ(cap & (cap - 1), 0u);
  std::vector<std::uint8_t> out(chunk.size());
  ring.peek(99 * chunk.size(), out.data(), out.size());
  EXPECT_EQ(out, chunk);
}

// --- helpers for socket tests ------------------------------------------------

int connect_blocking(std::uint16_t port, int rcvbuf = 0) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (rcvbuf > 0) ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
      << std::strerror(errno);
  return fd;
}

void send_all(int fd, const std::vector<std::uint8_t>& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    ASSERT_GT(n, 0) << std::strerror(errno);
    off += static_cast<std::size_t>(n);
  }
}

/// Reads frames from `fd` until `count` payloads arrive (or 10 s pass).
std::vector<std::vector<std::uint8_t>> read_frames(int fd, std::size_t count) {
  std::vector<std::vector<std::uint8_t>> payloads;
  rpc::FrameReader reader;
  std::vector<std::uint8_t> buf(64 * 1024);
  timeval tv{10, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  while (payloads.size() < count) {
    const ssize_t n = ::recv(fd, buf.data(), buf.size(), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    reader.feed(buf.data(), static_cast<std::size_t>(n));
    while (auto payload = reader.next()) payloads.push_back(std::move(*payload));
  }
  return payloads;
}

/// An EventLoop that echoes every inbound frame payload back on the same
/// connection — the minimal server exercising the full read/parse/write path.
struct EchoLoop {
  EventLoop loop;

  explicit EchoLoop(EventLoop::Options options = {})
      : loop(
            [this] {
              EventLoop::Handler h;
              h.on_frames = [this](EventLoop::ConnId conn,
                                   std::vector<std::vector<std::uint8_t>>&& frames) {
                for (const auto& payload : frames) loop.send(conn, rpc::frame_payload(payload));
              };
              return h;
            }(),
            options) {}

  std::uint16_t start() {
    loop.listen(bind_loopback_listener(0));
    loop.start();
    return loop.port();
  }
};

// --- port-0 listeners --------------------------------------------------------

TEST(EventLoopTest, PortZeroListenersGetDistinctKernelPorts) {
  const BoundListener a = bind_loopback_listener(0);
  const BoundListener b = bind_loopback_listener(0);
  EXPECT_GT(a.port, 0);
  EXPECT_GT(b.port, 0);
  EXPECT_NE(a.port, b.port);
  ::close(a.fd);
  ::close(b.fd);
}

TEST(EventLoopTest, AdoptsPreBoundListenerAndEchoes) {
  EchoLoop echo;
  const BoundListener listener = bind_loopback_listener(0);
  const std::uint16_t port = listener.port;
  echo.loop.listen(listener);
  echo.loop.start();
  EXPECT_EQ(echo.loop.port(), port);

  const int fd = connect_blocking(port);
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  send_all(fd, rpc::frame_payload(payload));
  const auto got = read_frames(fd, 1);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], payload);
  ::close(fd);
  echo.loop.stop();
}

// --- partial transfers -------------------------------------------------------

TEST(EventLoopTest, LargeFramesSurviveTinySocketBuffers) {
  // 64 KiB payloads across 4 KiB socket buffers: every frame spans many
  // partial recv()s on the way in and many partial send()s on the way out,
  // so reassembly exercises the ring-buffer framing in both directions.
  EventLoop::Options tiny;
  tiny.sndbuf = 4096;
  tiny.rcvbuf = 4096;
  EchoLoop echo(tiny);
  const std::uint16_t port = echo.start();

  const int fd = connect_blocking(port);
  constexpr int kCount = 10;
  std::vector<std::vector<std::uint8_t>> sent;
  std::thread writer([&] {
    for (int i = 0; i < kCount; ++i) {
      std::vector<std::uint8_t> payload(64 * 1024, static_cast<std::uint8_t>(i + 1));
      send_all(fd, rpc::frame_payload(payload));
      sent.push_back(std::move(payload));
    }
  });
  const auto got = read_frames(fd, kCount);
  writer.join();
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kCount));
  for (int i = 0; i < kCount; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], sent[static_cast<std::size_t>(i)]) << i;
  ::close(fd);
  echo.loop.stop();
  EXPECT_GE(echo.loop.stats().frames_in.load(), static_cast<std::uint64_t>(kCount));
}

// --- backpressure ------------------------------------------------------------

TEST(EventLoopTest, ServingModeEvictsSlowClient) {
  // The server answers one tiny request with an unbounded stream of 8 KiB
  // frames; the client never reads. The output ring must hit its bound and
  // the connection must be evicted — a reader that stopped reading cannot
  // pin server memory.
  // Tiny socket buffers keep the kernel from absorbing the backlog: the
  // unread responses must land in the loop's output ring, not in TCP.
  EventLoop::Options serving;
  serving.sndbuf = 4096;
  serving.max_outbuf_bytes = 64 * 1024;
  serving.evict_on_overflow = true;

  std::atomic<bool> overflowed{false};
  EventLoop* loop_ptr = nullptr;
  EventLoop::Handler h;
  h.on_frames = [&](EventLoop::ConnId conn, std::vector<std::vector<std::uint8_t>>&&) {
    const std::vector<std::uint8_t> big(8 * 1024, 0xCC);
    for (int i = 0; i < 1000; ++i) {
      if (loop_ptr->send(conn, rpc::frame_payload(big)) != EventLoop::SendResult::kOk) {
        overflowed.store(true);
        return;
      }
    }
  };
  EventLoop loop(h, serving);
  loop_ptr = &loop;
  loop.listen(bind_loopback_listener(0));
  loop.start();

  const int fd = connect_blocking(loop.port(), 4096);
  send_all(fd, rpc::frame_payload({1}));

  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (loop.stats().evicted_slow.load() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_EQ(loop.stats().evicted_slow.load(), 1u);
  EXPECT_TRUE(overflowed.load());
  const auto gone = std::chrono::steady_clock::now() + 10s;
  while (loop.connection_count() > 0 && std::chrono::steady_clock::now() < gone) {
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_EQ(loop.connection_count(), 0u);
  ::close(fd);
  loop.stop();
}

TEST(EventLoopTest, TransportModeRejectsOverflowButKeepsConnection) {
  // Transport mode (consensus traffic): an overflowing frame is dropped —
  // retransmission is the protocol's job — but the connection survives.
  EventLoop::Options transport;
  transport.sndbuf = 4096;
  transport.max_outbuf_bytes = 16 * 1024;
  transport.evict_on_overflow = false;

  std::atomic<int> rejected{0};
  EventLoop* loop_ptr = nullptr;
  EventLoop::Handler h;
  h.on_frames = [&](EventLoop::ConnId conn, std::vector<std::vector<std::uint8_t>>&&) {
    const std::vector<std::uint8_t> big(8 * 1024, 0xDD);
    for (int i = 0; i < 100; ++i) {
      if (loop_ptr->send(conn, rpc::frame_payload(big)) == EventLoop::SendResult::kOverflow) {
        rejected.fetch_add(1);
      }
    }
  };
  EventLoop loop(h, transport);
  loop_ptr = &loop;
  loop.listen(bind_loopback_listener(0));
  loop.start();

  const int fd = connect_blocking(loop.port(), 4096);
  send_all(fd, rpc::frame_payload({1}));
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (rejected.load() == 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(5ms);
  }
  EXPECT_GT(rejected.load(), 0);
  EXPECT_EQ(loop.stats().evicted_slow.load(), 0u);
  EXPECT_EQ(loop.connection_count(), 1u);
  ::close(fd);
  loop.stop();
}

// --- accept storm ------------------------------------------------------------

TEST(EventLoopTest, AcceptStormThousandConnections) {
  // 1000 concurrent client sockets plus server-side accepted fds needs
  // > 2000 descriptors; raise RLIMIT_NOFILE toward its hard cap and skip if
  // the environment cannot grant enough.
  constexpr std::size_t kConns = 1000;
  rlimit lim{};
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &lim), 0);
  const rlim_t needed = 2 * kConns + 256;
  if (lim.rlim_cur < needed) {
    rlimit raised = lim;
    raised.rlim_cur = std::min<rlim_t>(needed, lim.rlim_max);
    ::setrlimit(RLIMIT_NOFILE, &raised);
    ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &lim), 0);
  }
  if (lim.rlim_cur < needed) {
    GTEST_SKIP() << "RLIMIT_NOFILE " << lim.rlim_cur << " < " << needed;
  }

  EchoLoop echo;
  const std::uint16_t port = echo.start();

  std::vector<int> fds;
  fds.reserve(kConns);
  for (std::size_t i = 0; i < kConns; ++i) {
    const int fd = connect_blocking(port);
    ASSERT_GE(fd, 0) << "connection " << i;
    fds.push_back(fd);
  }
  // Every connection sends one frame; every frame must come back.
  for (std::size_t i = 0; i < kConns; ++i) {
    send_all(fds[i], rpc::frame_payload({static_cast<std::uint8_t>(i & 0xFF)}));
  }
  std::atomic<std::size_t> echoed{0};
  std::vector<std::thread> readers;
  const std::size_t stride = 100;
  for (std::size_t lo = 0; lo < kConns; lo += stride) {
    readers.emplace_back([&, lo] {
      for (std::size_t i = lo; i < std::min(lo + stride, kConns); ++i) {
        const auto got = read_frames(fds[i], 1);
        if (got.size() == 1 && got[0][0] == static_cast<std::uint8_t>(i & 0xFF)) {
          echoed.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : readers) t.join();
  EXPECT_EQ(echoed.load(), kConns);
  EXPECT_GE(echo.loop.stats().accepted.load(), kConns);
  EXPECT_EQ(echo.loop.connection_count(), kConns);
  for (int fd : fds) ::close(fd);
  echo.loop.stop();
}

// --- EINTR seams -------------------------------------------------------------

void noop_signal_handler(int) {}

/// Installs a no-op SIGUSR1 handler (without SA_RESTART, so syscalls really
/// can return EINTR) and restores the previous disposition on destruction.
struct SigUsr1Scope {
  struct sigaction old {};
  SigUsr1Scope() {
    struct sigaction sa {};
    sa.sa_handler = noop_signal_handler;
    ::sigaction(SIGUSR1, &sa, &old);
  }
  ~SigUsr1Scope() { ::sigaction(SIGUSR1, &old, nullptr); }
};

struct HookScope {
  ~HookScope() { testhooks::reset(); }
};

std::atomic<int> g_loop_recv_calls{0};
std::atomic<int> g_loop_send_calls{0};
std::atomic<int> g_loop_accept_budget{0};

ssize_t eintr_recv(int fd, void* buf, std::size_t len, int flags) {
  if (g_loop_recv_calls.fetch_add(1) % 3 == 1) {
    ::raise(SIGUSR1);
    errno = EINTR;
    return -1;
  }
  return ::recv(fd, buf, len, flags);
}

ssize_t eintr_short_send(int fd, const void* buf, std::size_t len, int flags) {
  if (g_loop_send_calls.fetch_add(1) % 2 == 1) {
    ::raise(SIGUSR1);
    errno = EINTR;
    return -1;
  }
  // Short write: any prefix is legal; 97 never divides the frame size, so
  // frames straddle send() boundaries.
  return ::send(fd, buf, std::min<std::size_t>(len, 97), flags);
}

int eintr_accept(int fd, sockaddr* addr, socklen_t* addrlen) {
  if (g_loop_accept_budget.fetch_sub(1) > 0) {
    errno = EINTR;
    return -1;
  }
  return ::accept(fd, addr, addrlen);
}

TEST(EventLoopRobustnessTest, SurvivesEintrOnRecvSendAndAccept) {
  SigUsr1Scope sig;
  HookScope hooks;
  g_loop_recv_calls.store(0);
  g_loop_send_calls.store(0);
  g_loop_accept_budget.store(2);
  testhooks::recv_fn = &eintr_recv;
  testhooks::send_fn = &eintr_short_send;
  testhooks::accept_fn = &eintr_accept;

  EchoLoop echo;
  const std::uint16_t port = echo.start();
  const int fd = connect_blocking(port);

  constexpr int kCount = 50;
  std::vector<std::vector<std::uint8_t>> sent;
  for (int i = 0; i < kCount; ++i) {
    std::vector<std::uint8_t> payload(512 + static_cast<std::size_t>(i),
                                      static_cast<std::uint8_t>(i));
    send_all(fd, rpc::frame_payload(payload));
    sent.push_back(std::move(payload));
  }
  const auto got = read_frames(fd, kCount);
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kCount))
      << "frames lost under EINTR-interrupted recv/send/accept";
  for (int i = 0; i < kCount; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], sent[static_cast<std::size_t>(i)]) << i;
  EXPECT_GT(g_loop_recv_calls.load(), 0);
  EXPECT_GT(g_loop_send_calls.load(), 0);
  ::close(fd);
  echo.loop.stop();
}

}  // namespace
}  // namespace escape::net
