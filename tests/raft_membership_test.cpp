// Membership-change coverage, bottom-up: the pure joint-consensus arithmetic
// (apply_conf_change / finish_joint), the codecs that carry memberships on
// the wire and in storage (conf-entry payload, ConfChange messages, v2
// snapshot files with v1 back-compat), and the live AddServer / RemoveServer
// workflows on a simulated ESCAPE cluster — learner catch-up including the
// snapshot-install path, promotion gating, leader removal with retirement,
// and durability of the adopted membership across crash and recovery. Every
// sim test finishes with an InvariantChecker deep check so reconfiguration
// never trades away log matching or Lemma 3 uniqueness.
#include <gtest/gtest.h>

#include <vector>

#include "common/serde.h"
#include "raft/membership.h"
#include "sim/invariants.h"
#include "sim/scenario.h"
#include "storage/snapshot_store.h"
#include "test_cluster_util.h"

namespace escape {
namespace {

using raft::ConfChange;
using raft::apply_conf_change;
using raft::finish_joint;
using rpc::ConfChangeOp;
using rpc::ConfChangeStatus;
using rpc::Membership;
using sim::SimCluster;
using testutil::paper_escape_cluster;

Membership members(std::vector<ServerId> voters, std::vector<ServerId> old_voters = {},
                   std::vector<ServerId> learners = {}) {
  Membership m;
  m.voters = std::move(voters);
  m.old_voters = std::move(old_voters);
  m.learners = std::move(learners);
  return m;
}

// --- transition arithmetic ---------------------------------------------------

TEST(MembershipMathTest, AddLearnerIsASimpleEntry) {
  const auto next = apply_conf_change(members({1, 2, 3}), {ConfChangeOp::kAddLearner, 4});
  ASSERT_TRUE(next.has_value());
  EXPECT_FALSE(next->joint());
  EXPECT_EQ(next->voters, (std::vector<ServerId>{1, 2, 3}));
  EXPECT_EQ(next->learners, (std::vector<ServerId>{4}));
  EXPECT_TRUE(next->is_learner(4));
  EXPECT_FALSE(next->is_voter(4));
}

TEST(MembershipMathTest, PromoteYieldsJointConfigAndFinishRetiresOldMajority) {
  const auto joint =
      apply_conf_change(members({1, 2, 3}, {}, {4}), {ConfChangeOp::kPromote, 4});
  ASSERT_TRUE(joint.has_value());
  EXPECT_TRUE(joint->joint());
  EXPECT_EQ(joint->voters, (std::vector<ServerId>{1, 2, 3, 4}));
  EXPECT_EQ(joint->old_voters, (std::vector<ServerId>{1, 2, 3}));
  EXPECT_TRUE(joint->learners.empty());
  // A joint config counts everyone in either majority as a voter.
  EXPECT_TRUE(joint->is_voter(4));

  const Membership final_config = finish_joint(*joint);
  EXPECT_FALSE(final_config.joint());
  EXPECT_EQ(final_config.voters, (std::vector<ServerId>{1, 2, 3, 4}));
}

TEST(MembershipMathTest, RemoveVoterYieldsJointConfig) {
  const auto joint = apply_conf_change(members({1, 2, 3}), {ConfChangeOp::kRemove, 2});
  ASSERT_TRUE(joint.has_value());
  EXPECT_TRUE(joint->joint());
  EXPECT_EQ(joint->voters, (std::vector<ServerId>{1, 3}));
  EXPECT_EQ(joint->old_voters, (std::vector<ServerId>{1, 2, 3}));
  // Still a voter while the handoff is in flight (old majority counts).
  EXPECT_TRUE(joint->is_voter(2));
  EXPECT_FALSE(finish_joint(*joint).contains(2));
}

TEST(MembershipMathTest, RemoveLearnerIsSimple) {
  const auto next =
      apply_conf_change(members({1, 2, 3}, {}, {4}), {ConfChangeOp::kRemove, 4});
  ASSERT_TRUE(next.has_value());
  EXPECT_FALSE(next->joint());
  EXPECT_FALSE(next->contains(4));
}

TEST(MembershipMathTest, NonsensicalChangesAreRejected) {
  const Membership base = members({1, 2, 3}, {}, {4});
  // Duplicate add (either role).
  EXPECT_FALSE(apply_conf_change(base, {ConfChangeOp::kAddLearner, 2}).has_value());
  EXPECT_FALSE(apply_conf_change(base, {ConfChangeOp::kAddLearner, 4}).has_value());
  // Promoting a non-learner or an unknown server.
  EXPECT_FALSE(apply_conf_change(base, {ConfChangeOp::kPromote, 2}).has_value());
  EXPECT_FALSE(apply_conf_change(base, {ConfChangeOp::kPromote, 9}).has_value());
  // Removing an unknown server.
  EXPECT_FALSE(apply_conf_change(base, {ConfChangeOp::kRemove, 9}).has_value());
  // The last voter stays: a cluster cannot remove itself out of existence.
  EXPECT_FALSE(apply_conf_change(members({1}), {ConfChangeOp::kRemove, 1}).has_value());
  // One change at a time: nothing applies on top of a joint config.
  const Membership joint = members({1, 2, 3, 4}, {1, 2, 3});
  EXPECT_FALSE(apply_conf_change(joint, {ConfChangeOp::kAddLearner, 5}).has_value());
  EXPECT_FALSE(apply_conf_change(joint, {ConfChangeOp::kRemove, 4}).has_value());
  // kNoServer is never a valid subject.
  EXPECT_FALSE(apply_conf_change(base, {ConfChangeOp::kAddLearner, kNoServer}).has_value());
}

// --- codecs ------------------------------------------------------------------

TEST(MembershipCodecTest, ConfEntryPayloadRoundtrips) {
  const Membership m = members({1, 3, 5}, {1, 2, 3}, {7});
  EXPECT_EQ(raft::decode_conf_entry(raft::encode_conf_entry(m)), m);
  const Membership empty;
  EXPECT_EQ(raft::decode_conf_entry(raft::encode_conf_entry(empty)), empty);
}

TEST(MembershipCodecTest, ConfChangeMessagesRoundtrip) {
  rpc::ConfChangeRequest req;
  req.id = 77;
  req.op = ConfChangeOp::kPromote;
  req.server = 4;
  EXPECT_EQ(rpc::decode_message(rpc::encode_message(req)), rpc::Message{req});

  rpc::ConfChangeReply reply;
  reply.id = 77;
  reply.status = ConfChangeStatus::kNotCaughtUp;
  reply.leader_hint = 2;
  reply.index = 41;
  EXPECT_EQ(rpc::decode_message(rpc::encode_message(reply)), rpc::Message{reply});
}

TEST(MembershipCodecTest, ConfEntryKindSurvivesAppendEntriesWire) {
  rpc::AppendEntries ae;
  ae.term = 3;
  ae.leader_id = 1;
  rpc::LogEntry conf;
  conf.term = 3;
  conf.index = 9;
  conf.kind = rpc::EntryKind::kConfChange;
  conf.command = raft::encode_conf_entry(members({1, 2, 3}, {}, {4}));
  ae.entries.push_back(conf);
  const auto decoded = rpc::decode_message(rpc::encode_message(ae));
  ASSERT_TRUE(std::holds_alternative<rpc::AppendEntries>(decoded));
  const auto& got = std::get<rpc::AppendEntries>(decoded);
  ASSERT_EQ(got.entries.size(), 1u);
  EXPECT_EQ(got.entries[0].kind, rpc::EntryKind::kConfChange);
  EXPECT_TRUE(raft::decode_conf_entry(got.entries[0].command).is_learner(4));
}

TEST(MembershipCodecTest, InstallSnapshotCarriesMembership) {
  rpc::InstallSnapshot snap;
  snap.term = 5;
  snap.leader_id = 2;
  snap.last_included_index = 30;
  snap.last_included_term = 4;
  snap.membership = members({1, 2, 3}, {}, {4});
  snap.state = {0xAB};
  const auto decoded = rpc::decode_message(rpc::encode_message(snap));
  ASSERT_TRUE(std::holds_alternative<rpc::InstallSnapshot>(decoded));
  EXPECT_EQ(std::get<rpc::InstallSnapshot>(decoded), snap);
}

TEST(MembershipSnapshotStoreTest, V2RoundtripCarriesMembership) {
  raft::Snapshot s;
  s.last_included_index = 12;
  s.last_included_term = 3;
  s.config.conf_clock = 9;
  s.membership = members({1, 2, 3, 4}, {1, 2, 3}, {5});
  s.state = {1, 2, 3};
  const auto decoded = storage::decode_snapshot(storage::encode_snapshot(s));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, s);
}

TEST(MembershipSnapshotStoreTest, V1SnapshotsStillDecodeWithEmptyMembership) {
  // Hand-assemble a pre-membership (version 1) snapshot file body: the exact
  // layout encode_snapshot wrote before the membership block existed.
  Encoder body;
  body.u8(1);  // kSnapshotVersionV1
  body.i64(12);
  body.i64(3);
  body.i64(from_ms(1500));  // config.timer_period
  body.i32(2);              // config.priority
  body.i64(9);              // config.conf_clock
  body.bytes({1, 2, 3});    // state
  auto encoded_body = body.take();
  Encoder framed;
  framed.u32(crc32(encoded_body));
  framed.bytes(encoded_body);

  const auto decoded = storage::decode_snapshot(framed.take());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->last_included_index, 12);
  EXPECT_EQ(decoded->config.conf_clock, 9);
  EXPECT_TRUE(decoded->membership.empty())
      << "v1 files predate membership; the node falls back to its bootstrap list";
  EXPECT_EQ(decoded->state, (std::vector<std::uint8_t>{1, 2, 3}));
}

// --- live workflows on the sim ----------------------------------------------

/// Admin-client retry loop for AddServer: re-derives the next step (add
/// learner -> wait for catch-up -> promote) from the leader's current
/// membership each slice, exactly like the sim's JoinServer fault action.
bool run_join(SimCluster& cluster, ServerId id, Duration max_wait) {
  auto& loop = cluster.loop();
  const TimePoint deadline = loop.now() + max_wait;
  while (loop.now() < deadline) {
    const ServerId l = cluster.leader();
    if (l != kNoServer) {
      const auto& m = cluster.node(l).membership();
      if (m.is_voter(id) && !m.joint()) return true;
      if (!m.is_voter(id)) {
        cluster.propose_conf_change(
            {m.is_learner(id) ? ConfChangeOp::kPromote : ConfChangeOp::kAddLearner, id});
      }
    }
    loop.run_until(loop.now() + from_ms(200));
  }
  return false;
}

/// Admin-client retry loop for RemoveServer.
bool run_remove(SimCluster& cluster, ServerId id, Duration max_wait) {
  auto& loop = cluster.loop();
  const TimePoint deadline = loop.now() + max_wait;
  while (loop.now() < deadline) {
    const ServerId l = cluster.leader();
    if (l != kNoServer) {
      const auto& m = cluster.node(l).membership();
      // Not done while the removed server itself still leads: it adopted
      // Cnew on append but only retires once Cnew commits.
      if (l != id && !m.contains(id) && !m.joint()) return true;
      if (m.contains(id) && !m.joint()) {
        cluster.propose_conf_change({ConfChangeOp::kRemove, id});
      }
    }
    loop.run_until(loop.now() + from_ms(200));
  }
  return false;
}

TEST(MembershipSimTest, AddServerWorkflowGrowsTheCluster) {
  SimCluster cluster(paper_escape_cluster(3, 101));
  sim::InvariantChecker checker(cluster);
  ASSERT_NE(sim::bootstrap(cluster), kNoServer);
  sim::drive_traffic(cluster, from_ms(1'000), from_ms(200));

  cluster.add_host(4);
  ASSERT_TRUE(run_join(cluster, 4, from_ms(60'000)));
  cluster.loop().run_until(cluster.loop().now() + from_ms(3'000));  // propagate Cnew

  for (const ServerId id : cluster.members()) {
    ASSERT_TRUE(cluster.alive(id));
    const auto& m = cluster.node(id).membership();
    EXPECT_EQ(m.voters, (std::vector<ServerId>{1, 2, 3, 4})) << "server " << id;
    EXPECT_FALSE(m.joint()) << "server " << id;
  }
  EXPECT_EQ(cluster.node(4).cluster_size(), 4u);

  // The grown cluster still commits: a write lands on the new quorum.
  const auto index = cluster.submit_via_leader({0x42});
  ASSERT_TRUE(index.has_value());
  EXPECT_TRUE(cluster.run_until_applied(*index, cluster.loop().now() + from_ms(30'000)));

  checker.deep_check();
  EXPECT_TRUE(checker.ok()) << checker.violations().front();
}

TEST(MembershipSimTest, ProposalStatusesAreReported) {
  SimCluster cluster(paper_escape_cluster(3, 102));
  const ServerId leader = sim::bootstrap(cluster);
  ASSERT_NE(leader, kNoServer);

  // Non-leaders refuse the admin verb outright.
  ServerId follower = kNoServer;
  for (const ServerId id : cluster.members()) {
    if (id != leader) follower = id;
  }
  const auto refused =
      cluster.node(follower).propose_conf_change({ConfChangeOp::kAddLearner, 4},
                                                 cluster.loop().now());
  EXPECT_EQ(refused.status, ConfChangeStatus::kNotLeader);

  // A legal add is accepted and lands at a real log slot...
  cluster.add_host(4);
  const auto accepted = cluster.propose_conf_change({ConfChangeOp::kAddLearner, 4});
  ASSERT_EQ(accepted.status, ConfChangeStatus::kOk);
  EXPECT_GT(accepted.index, 0u);

  // ...and while it is in flight every further change is refused (one at a
  // time — the §4.3 serialization rule).
  EXPECT_EQ(cluster.propose_conf_change({ConfChangeOp::kRemove, 2}).status,
            ConfChangeStatus::kBusy);

  // Once the add commits, nonsense is rejected as invalid.
  ASSERT_TRUE(cluster.run_until_applied(accepted.index, cluster.loop().now() + from_ms(30'000)));
  EXPECT_EQ(cluster.propose_conf_change({ConfChangeOp::kPromote, 2}).status,
            ConfChangeStatus::kInvalid);
  EXPECT_EQ(cluster.propose_conf_change({ConfChangeOp::kAddLearner, 4}).status,
            ConfChangeStatus::kInvalid);

  // Promotion is gated on catch-up: crash the learner, advance commit past
  // its match point, and the promote is refused rather than handing a vote
  // to a replica that would drag the quorum backwards.
  cluster.crash(4);
  const auto moved = cluster.submit_via_leader({0x01});
  ASSERT_TRUE(moved.has_value());
  ASSERT_TRUE(cluster.run_until_applied(*moved, cluster.loop().now() + from_ms(30'000)));
  EXPECT_EQ(cluster.propose_conf_change({ConfChangeOp::kPromote, 4}).status,
            ConfChangeStatus::kNotCaughtUp);

  // Recovered and caught up, the same workflow completes.
  cluster.recover(4);
  EXPECT_TRUE(run_join(cluster, 4, from_ms(60'000)));
}

TEST(MembershipSimTest, LearnerCatchesUpThroughSnapshotInstall) {
  SimCluster cluster(paper_escape_cluster(3, 103));
  sim::InvariantChecker checker(cluster);
  ASSERT_NE(sim::bootstrap(cluster), kNoServer);
  sim::drive_traffic(cluster, from_ms(2'000), from_ms(100));

  // Compact the leader's log so a fresh learner's backfill cannot come from
  // log entries alone — InstallSnapshot is the only catch-up path.
  const ServerId leader = cluster.leader();
  ASSERT_NE(leader, kNoServer);
  const auto compacted_to = cluster.trigger_snapshot(leader);
  ASSERT_TRUE(compacted_to.has_value());
  ASSERT_GT(*compacted_to, 0u);

  cluster.add_host(4);
  ASSERT_TRUE(run_join(cluster, 4, from_ms(60'000)));

  // The learner rebased onto the shipped snapshot before replaying the tail.
  EXPECT_GE(cluster.node(4).log().base(), *compacted_to);
  const auto installed = cluster.snapshot_store(4).load();
  ASSERT_TRUE(installed.has_value());
  // The snapshot predates the expansion, so its membership is the seed trio;
  // the conf entries in the replayed tail are what made server 4 a voter.
  EXPECT_EQ(installed->membership.voters, (std::vector<ServerId>{1, 2, 3}));
  EXPECT_TRUE(cluster.node(4).membership().is_voter(4));

  checker.deep_check();
  EXPECT_TRUE(checker.ok()) << checker.violations().front();
}

TEST(MembershipSimTest, RemovedLeaderRetiresAndSuccessorServes) {
  SimCluster cluster(paper_escape_cluster(3, 104));
  sim::InvariantChecker checker(cluster);
  const ServerId old_leader = sim::bootstrap(cluster);
  ASSERT_NE(old_leader, kNoServer);
  sim::drive_traffic(cluster, from_ms(1'000), from_ms(200));

  // RemoveServer targeting the sitting leader: it drives its own joint
  // handoff, commits Cnew, retires, and the remaining pair re-elects.
  ASSERT_TRUE(run_remove(cluster, old_leader, from_ms(120'000)));

  const ServerId successor = cluster.leader();
  ASSERT_NE(successor, kNoServer);
  EXPECT_NE(successor, old_leader);
  const auto& m = cluster.node(successor).membership();
  EXPECT_EQ(m.voters.size(), 2u);
  EXPECT_FALSE(m.contains(old_leader));

  // The shrunk cluster still serves writes. (run_until_applied would wait on
  // the removed-but-racked server too, which no longer receives appends, so
  // commit is asserted on the successor directly.)
  const auto index = cluster.submit_via_leader({0x07});
  ASSERT_TRUE(index.has_value());
  const TimePoint deadline = cluster.loop().now() + from_ms(30'000);
  while (cluster.loop().now() < deadline && cluster.node(successor).commit_index() < *index) {
    cluster.loop().run_until(cluster.loop().now() + from_ms(200));
  }
  EXPECT_GE(cluster.node(successor).commit_index(), *index);

  // The removed server stays racked but can no longer vote or campaign under
  // the membership it adopted.
  EXPECT_TRUE(cluster.alive(old_leader));
  EXPECT_FALSE(cluster.node(old_leader).membership().is_voter(old_leader));

  checker.deep_check();
  EXPECT_TRUE(checker.ok()) << checker.violations().front();
}

TEST(MembershipSimTest, InheritedJointConfigCompletesWithoutClientTraffic) {
  // Liveness regression: a successor that inherits an uncommitted Cold,new
  // must finish the handoff on an otherwise idle cluster. The commit rule
  // needs a current-term entry, and no client traffic will supply one — the
  // new leader has to append its own barrier no-op (and, when the joint
  // entry is already committed, Cnew itself) at election time.
  SimCluster cluster(paper_escape_cluster(3, 106));
  sim::InvariantChecker checker(cluster);
  ASSERT_NE(sim::bootstrap(cluster), kNoServer);

  cluster.add_host(4);
  const auto added = cluster.propose_conf_change({ConfChangeOp::kAddLearner, 4});
  ASSERT_EQ(added.status, ConfChangeStatus::kOk);
  ASSERT_TRUE(cluster.run_until_applied(added.index, cluster.loop().now() + from_ms(30'000)));
  cluster.loop().run_until(cluster.loop().now() + from_ms(2'000));  // learner catch-up

  // Push into the joint phase, then kill the leader before it can commit.
  rpc::ConfChangeStatus promoted = ConfChangeStatus::kNotLeader;
  const TimePoint promote_deadline = cluster.loop().now() + from_ms(30'000);
  while (promoted != ConfChangeStatus::kOk && cluster.loop().now() < promote_deadline) {
    promoted = cluster.propose_conf_change({ConfChangeOp::kPromote, 4}).status;
    if (promoted != ConfChangeStatus::kOk) {
      cluster.loop().run_until(cluster.loop().now() + from_ms(500));
    }
  }
  ASSERT_EQ(promoted, ConfChangeStatus::kOk);
  const ServerId doomed = cluster.leader();
  cluster.crash(doomed);

  // No traffic, no proposals: the successor alone must drive Cold,new to
  // commit and append Cnew.
  const TimePoint deadline = cluster.loop().now() + from_ms(60'000);
  auto settled = [&] {
    const ServerId l = cluster.leader();
    if (l == kNoServer) return false;
    const auto& m = cluster.node(l).membership();
    return m.is_voter(4) && !m.joint();
  };
  while (!settled() && cluster.loop().now() < deadline) {
    cluster.loop().run_until(cluster.loop().now() + from_ms(500));
  }
  ASSERT_TRUE(settled());

  cluster.recover(doomed);
  cluster.loop().run_until(cluster.loop().now() + from_ms(3'000));
  checker.deep_check();
  EXPECT_TRUE(checker.ok()) << checker.violations().front();
}

TEST(MembershipSimTest, AdoptedMembershipSurvivesCrashRecovery) {
  SimCluster cluster(paper_escape_cluster(3, 105));
  ASSERT_NE(sim::bootstrap(cluster), kNoServer);
  cluster.add_host(4);
  ASSERT_TRUE(run_join(cluster, 4, from_ms(60'000)));
  sim::drive_traffic(cluster, from_ms(1'000), from_ms(200));

  // The new voter's membership is reconstructed from snapshot + WAL alone.
  cluster.crash(4);
  cluster.loop().run_until(cluster.loop().now() + from_ms(1'000));
  cluster.recover(4);
  cluster.loop().run_until(cluster.loop().now() + from_ms(3'000));

  const auto& m = cluster.node(4).membership();
  EXPECT_EQ(m.voters, (std::vector<ServerId>{1, 2, 3, 4}));
  EXPECT_FALSE(m.joint());
  EXPECT_TRUE(cluster.node(4).membership().is_voter(4));

  // And a seed member that crashes mid-life re-derives the same view.
  cluster.crash(2);
  cluster.loop().run_until(cluster.loop().now() + from_ms(1'000));
  cluster.recover(2);
  cluster.loop().run_until(cluster.loop().now() + from_ms(3'000));
  EXPECT_EQ(cluster.node(2).membership().voters, (std::vector<ServerId>{1, 2, 3, 4}));
}

}  // namespace
}  // namespace escape
