// Adversarial message fuzzing against a single RaftNode: storms of
// randomized (but well-formed) protocol messages must never crash the node,
// never roll its term backwards, never shrink its committed prefix, and
// never produce two different votes in one term.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "raft/raft_node.h"

#include "test_node_harness.h"
#include "storage/state_store.h"
#include "storage/wal.h"

namespace escape::raft {
namespace {

rpc::Message random_message(Rng& rng, Term max_term, LogIndex max_index) {
  const int kind = static_cast<int>(rng.uniform_int(0, 3));
  switch (kind) {
    case 0: {
      rpc::RequestVote m;
      m.term = rng.uniform_int(0, max_term);
      m.candidate_id = static_cast<ServerId>(rng.uniform_int(2, 5));
      m.last_log_index = rng.uniform_int(0, max_index);
      m.last_log_term = rng.uniform_int(0, max_term);
      m.conf_clock = rng.uniform_int(0, 5);
      return m;
    }
    case 1: {
      rpc::RequestVoteReply m;
      m.term = rng.uniform_int(0, max_term);
      m.vote_granted = rng.chance(0.5);
      m.voter_id = static_cast<ServerId>(rng.uniform_int(2, 5));
      return m;
    }
    case 2: {
      rpc::AppendEntries m;
      m.term = rng.uniform_int(0, max_term);
      m.leader_id = static_cast<ServerId>(rng.uniform_int(2, 5));
      m.prev_log_index = rng.uniform_int(0, max_index);
      m.prev_log_term = rng.uniform_int(0, max_term);
      m.leader_commit = rng.uniform_int(0, max_index);
      const auto n = rng.uniform_int(0, 3);
      for (std::int64_t i = 0; i < n; ++i) {
        rpc::LogEntry e;
        e.index = m.prev_log_index + i + 1;
        e.term = std::min<Term>(m.term, m.prev_log_term + rng.uniform_int(0, 1));
        e.command = {static_cast<std::uint8_t>(rng.uniform_int(0, 255))};
        m.entries.push_back(std::move(e));
      }
      if (rng.chance(0.3)) {
        rpc::Configuration c;
        c.priority = static_cast<Priority>(rng.uniform_int(1, 5));
        c.conf_clock = rng.uniform_int(0, 5);
        c.timer_period = from_ms(rng.uniform_int(100, 5000));
        m.new_config = c;
      }
      return m;
    }
    default: {
      rpc::AppendEntriesReply m;
      m.term = rng.uniform_int(0, max_term);
      m.success = rng.chance(0.5);
      m.from = static_cast<ServerId>(rng.uniform_int(2, 5));
      m.match_index = rng.uniform_int(0, max_index);
      m.conflict_index = rng.uniform_int(0, max_index);
      m.conflict_term = rng.uniform_int(0, max_term);
      m.status.log_index = rng.uniform_int(0, max_index);
      m.status.conf_clock = rng.uniform_int(0, 5);
      return m;
    }
  }
}

class RaftFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RaftFuzzTest, MessageStormPreservesLocalInvariants) {
  Rng rng(GetParam());
  storage::MemoryStateStore store;
  storage::MemoryWal wal;
  DrivenNode node(1, {1, 2, 3, 4, 5},
                std::make_unique<RaftRandomizedPolicy>(from_ms(100), from_ms(200)), store, wal,
                Rng(GetParam() ^ 0xF00D));
  node.start(0);

  // Track per-term votes this node granted (via its replies).
  std::map<Term, ServerId> votes;
  Term last_term = 0;
  LogIndex last_commit = 0;
  std::vector<rpc::LogEntry> committed;

  TimePoint now = 0;
  for (int step = 0; step < 5000; ++step) {
    now += rng.uniform_int(0, from_ms(50));
    if (rng.chance(0.1)) {
      node.on_tick(now);
    } else {
      const auto from = static_cast<ServerId>(rng.uniform_int(2, 5));
      node.on_message({from, 1, random_message(rng, 20, 10)}, now);
    }

    // Term is monotone.
    ASSERT_GE(node.term(), last_term);
    last_term = node.term();

    // Commit index is monotone and within the log.
    ASSERT_GE(node.commit_index(), last_commit);
    ASSERT_LE(node.commit_index(), node.log().last_index());
    last_commit = node.commit_index();

    // Committed entries form a dense, append-only sequence.
    for (auto& e : node.take_committed()) {
      ASSERT_EQ(e.index, static_cast<LogIndex>(committed.size()) + 1);
      committed.push_back(std::move(e));
    }

    // At most one vote per term, ever.
    for (const auto& env : node.take_outbox()) {
      const auto* reply = std::get_if<rpc::RequestVoteReply>(&env.message);
      if (reply == nullptr || !reply->vote_granted) continue;
      const auto [it, inserted] = votes.try_emplace(reply->term, env.to);
      ASSERT_TRUE(inserted || it->second == env.to)
          << "voted for both S" << it->second << " and S" << env.to << " in term "
          << reply->term;
    }
  }

  // The persisted state always reflects (term, vote) no older than observed.
  const auto persisted = store.load();
  ASSERT_TRUE(persisted.has_value());
  EXPECT_EQ(persisted->current_term, node.term());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RaftFuzzTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

TEST(RaftFuzzTest, SurvivesPathologicalAppendEntries) {
  storage::MemoryStateStore store;
  storage::MemoryWal wal;
  DrivenNode node(1, {1, 2, 3},
                std::make_unique<RaftRandomizedPolicy>(from_ms(100), from_ms(200)), store, wal,
                Rng(1));
  node.start(0);

  // prev_log_index far beyond the log.
  rpc::AppendEntries ae;
  ae.term = 5;
  ae.leader_id = 2;
  ae.prev_log_index = 1'000'000;
  ae.prev_log_term = 4;
  node.on_message({2, 1, ae}, 0);
  auto out = node.take_outbox();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_FALSE(std::get<rpc::AppendEntriesReply>(out[0].message).success);

  // leader_commit far beyond what was shipped: commit clamps to the log.
  rpc::AppendEntries ae2;
  ae2.term = 5;
  ae2.leader_id = 2;
  ae2.entries.push_back({.term = 5, .index = 1, .command = {}});
  ae2.leader_commit = 1'000'000;
  node.on_message({2, 1, ae2}, 0);
  EXPECT_EQ(node.commit_index(), 1);
}

}  // namespace
}  // namespace escape::raft
