// The deterministic-core contract: a RaftNode is a pure state machine over
// its inputs. Feeding the identical input sequence into two fresh cores must
// produce byte-identical Ready streams and identical final state — there is
// no hidden clock, no I/O, no allocation-order dependence to diverge on.
// Also pins down the Ready lifecycle discipline (ready()/advance() pairing,
// no inputs mid-drain).
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "raft/raft_node.h"
#include "test_ready_fingerprint.h"

namespace escape::raft {
namespace {

constexpr Duration kMin = from_ms(100);
constexpr Duration kMax = from_ms(200);

/// One scripted input to a core.
struct Input {
  enum class Kind {
    kMessage,
    kTick,
    kSubmit,
    kSubmitRead,
    kAckPersisted,  ///< async-persist durability completion
  } kind = Kind::kTick;
  rpc::Envelope envelope;             ///< kMessage
  std::vector<std::uint8_t> command;  ///< kSubmit
  LogIndex durable = 0;               ///< kAckPersisted
  TimePoint now = 0;
};

rpc::Message random_message(Rng& rng, Term max_term, LogIndex max_index) {
  switch (rng.uniform_int(0, 4)) {
    case 0: {
      rpc::RequestVote m;
      m.term = rng.uniform_int(0, max_term);
      m.candidate_id = static_cast<ServerId>(rng.uniform_int(2, 5));
      m.last_log_index = rng.uniform_int(0, max_index);
      m.last_log_term = rng.uniform_int(0, max_term);
      m.conf_clock = rng.uniform_int(0, 5);
      return m;
    }
    case 1: {
      rpc::RequestVoteReply m;
      m.term = rng.uniform_int(0, max_term);
      m.vote_granted = rng.chance(0.5);
      m.voter_id = static_cast<ServerId>(rng.uniform_int(2, 5));
      return m;
    }
    case 2: {
      rpc::AppendEntries m;
      m.term = rng.uniform_int(0, max_term);
      m.leader_id = static_cast<ServerId>(rng.uniform_int(2, 5));
      m.prev_log_index = rng.uniform_int(0, max_index);
      m.prev_log_term = rng.uniform_int(0, max_term);
      m.leader_commit = rng.uniform_int(0, max_index);
      const auto n = rng.uniform_int(0, 3);
      for (std::int64_t i = 0; i < n; ++i) {
        rpc::LogEntry e;
        e.index = m.prev_log_index + i + 1;
        e.term = std::min<Term>(m.term, m.prev_log_term + rng.uniform_int(0, 1));
        e.command = {static_cast<std::uint8_t>(rng.uniform_int(0, 255))};
        m.entries.push_back(std::move(e));
      }
      return m;
    }
    case 3: {
      rpc::AppendEntriesReply m;
      m.term = rng.uniform_int(0, max_term);
      m.success = rng.chance(0.5);
      m.from = static_cast<ServerId>(rng.uniform_int(2, 5));
      m.match_index = rng.uniform_int(0, max_index);
      m.conflict_index = rng.uniform_int(0, max_index);
      m.conflict_term = rng.uniform_int(0, max_term);
      m.status.log_index = rng.uniform_int(0, max_index);
      m.status.conf_clock = rng.uniform_int(0, 5);
      return m;
    }
    default: {
      rpc::TimeoutNow m;
      m.term = rng.uniform_int(0, max_term);
      m.leader_id = static_cast<ServerId>(rng.uniform_int(2, 5));
      return m;
    }
  }
}

/// Generates one scripted run: a storm of ticks, messages, submits and read
/// requests in advancing virtual time. The script is a plain value — the
/// whole point is replaying the SAME one into multiple cores.
std::vector<Input> make_script(std::uint64_t seed, int steps) {
  Rng rng(seed);
  std::vector<Input> script;
  TimePoint now = 0;
  for (int i = 0; i < steps; ++i) {
    now += rng.uniform_int(0, from_ms(50));
    Input in;
    in.now = now;
    const double roll = rng.uniform_real(0.0, 1.0);
    if (roll < 0.15) {
      in.kind = Input::Kind::kTick;
    } else if (roll < 0.25) {
      in.kind = Input::Kind::kSubmit;
      in.command = {static_cast<std::uint8_t>(rng.uniform_int(0, 255))};
    } else if (roll < 0.30) {
      in.kind = Input::Kind::kSubmitRead;
    } else {
      in.kind = Input::Kind::kMessage;
      const auto from = static_cast<ServerId>(rng.uniform_int(2, 5));
      in.envelope = {from, 1, random_message(rng, 20, 10)};
    }
    script.push_back(std::move(in));
  }
  return script;
}

/// Pipelined-input storm: elects the core leader, then pounds it with
/// proposal bursts, follower acks and NACKs (conflict hints included),
/// heartbeat ticks and async-persist durability acks — the exact input mix
/// the batched + pipelined replication path runs on, with bursts landing at
/// a single instant so batch coalescing and window backpressure both fire.
std::vector<Input> make_pipelined_script(std::uint64_t seed, int steps) {
  Rng rng(seed);
  std::vector<Input> script;
  TimePoint now = kMax + 1;

  // Campaign plus two grants: the storm needs a leader to pipeline from.
  Input tick;
  tick.kind = Input::Kind::kTick;
  tick.now = now;
  script.push_back(tick);
  for (ServerId v : {2u, 3u}) {
    rpc::RequestVoteReply yes;
    yes.term = 1;
    yes.vote_granted = true;
    yes.voter_id = v;
    Input in;
    in.kind = Input::Kind::kMessage;
    in.envelope = {v, 1, yes};
    in.now = now;
    script.push_back(in);
  }

  LogIndex horizon = 1;  // upper bound on indices acks may reference
  for (int i = 0; i < steps; ++i) {
    now += rng.uniform_int(0, from_ms(5));
    const double roll = rng.uniform_real(0.0, 1.0);
    if (roll < 0.35) {
      const auto burst = rng.uniform_int(1, 16);
      for (std::int64_t b = 0; b < burst; ++b) {
        Input in;
        in.kind = Input::Kind::kSubmit;
        in.command = {static_cast<std::uint8_t>(rng.uniform_int(0, 255))};
        in.now = now;
        script.push_back(std::move(in));
        ++horizon;
      }
      continue;
    }
    Input in;
    in.now = now;
    if (roll < 0.75) {
      rpc::AppendEntriesReply m;
      m.term = 1;
      m.from = static_cast<ServerId>(rng.uniform_int(2, 5));
      m.success = rng.chance(0.8);
      m.match_index = rng.uniform_int(0, horizon);
      m.conflict_index = rng.uniform_int(0, horizon);
      m.conflict_term = rng.uniform_int(0, 1);
      m.status.log_index = rng.uniform_int(0, horizon);
      in.kind = Input::Kind::kMessage;
      in.envelope = {m.from, 1, m};
    } else if (roll < 0.88) {
      in.kind = Input::Kind::kAckPersisted;
      in.durable = rng.uniform_int(0, horizon);
    } else {
      in.kind = Input::Kind::kTick;
    }
    script.push_back(std::move(in));
  }
  return script;
}

std::unique_ptr<RaftNode> make_core(std::uint64_t rng_seed,
                                    NodeOptions opts = NodeOptions()) {
  return std::make_unique<RaftNode>(
      1, std::vector<ServerId>{1, 2, 3, 4, 5},
      std::make_unique<RaftRandomizedPolicy>(kMin, kMax), Rng(rng_seed), opts, Bootstrap{});
}

/// Drains every pending batch from a bare core (no driver, no stores),
/// appending fingerprints to `out` and advancing the apply cursor exactly as
/// a driver would.
void drain(RaftNode& node, LogIndex& applied, std::string& out) {
  while (node.has_ready()) {
    const Ready rd = node.ready();
    if (rd.restore) applied = (*rd.restore)->last_included_index;
    for (const auto& e : rd.committed) applied = e.index;
    out += fingerprint(rd);
    node.advance(applied);
  }
}

/// Runs the script through a fresh core; returns the concatenated Ready
/// fingerprints plus a final-state stamp.
std::string run_script(const std::vector<Input>& script, std::uint64_t rng_seed,
                       NodeOptions opts = NodeOptions()) {
  auto node = make_core(rng_seed, opts);
  std::string out;
  LogIndex applied = 0;
  node->start(0);
  drain(*node, applied, out);
  for (const Input& in : script) {
    switch (in.kind) {
      case Input::Kind::kMessage:
        node->step(in.envelope, in.now);
        break;
      case Input::Kind::kTick:
        node->tick(in.now);
        break;
      case Input::Kind::kSubmit:
        node->submit(in.command, in.now);
        break;
      case Input::Kind::kSubmitRead:
        node->submit_read(in.now);
        break;
      case Input::Kind::kAckPersisted:
        node->ack_persisted(in.durable, in.now);
        break;
    }
    drain(*node, applied, out);
  }
  out += "final term=" + std::to_string(node->term()) +
         " role=" + std::to_string(static_cast<int>(node->role())) +
         " commit=" + std::to_string(node->commit_index()) +
         " applied=" + std::to_string(node->last_applied()) +
         " log=" + std::to_string(node->log().last_index()) +
         " cc=" + std::to_string(node->conf_clock()) + "\n";
  return out;
}

class CoreDeterminismTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CoreDeterminismTest, IdenticalInputsIdenticalReadyStreams) {
  const auto script = make_script(GetParam(), 3000);
  const std::string first = run_script(script, GetParam() ^ 0xF00D);
  const std::string second = run_script(script, GetParam() ^ 0xF00D);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST_P(CoreDeterminismTest, DifferentRngSeedsStillDeterministicPerSeed) {
  // The rng feeds election jitter; a different seed may diverge (fine), but
  // each seed must self-replicate.
  const auto script = make_script(GetParam(), 1000);
  EXPECT_EQ(run_script(script, 1), run_script(script, 1));
  EXPECT_EQ(run_script(script, 2), run_script(script, 2));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoreDeterminismTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

// --- pipelined-input storms ---------------------------------------------------
// Same contract, but over the replication fast path: tight windows, byte
// budgets that force mid-batch trims, probe-mode churn from random NACKs, and
// (second variant) the async-persist commit rule driven by ack_persisted.
// Map iteration order over Progress, histogram bucketing and the optimistic
// next/inflight bookkeeping all sit on this path — any hidden nondeterminism
// there shows up as diverging fingerprints.

NodeOptions pipelined_options() {
  NodeOptions opts;
  opts.max_entries_per_rpc = 8;
  opts.max_bytes_per_msg = 256;  // 16-byte framing + 1-byte payloads: trims fire
  opts.max_inflight_msgs = 4;
  return opts;
}

class PipelinedDeterminismTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelinedDeterminismTest, StormYieldsIdenticalReadyStreams) {
  const auto script = make_pipelined_script(GetParam(), 2000);
  const std::string first = run_script(script, GetParam() ^ 0xBEEF, pipelined_options());
  const std::string second = run_script(script, GetParam() ^ 0xBEEF, pipelined_options());
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  // The storm must actually commit through the pipeline — a stream that is
  // identical because nothing happened proves nothing.
  EXPECT_EQ(first.find(" commit=0 "), std::string::npos);
}

TEST_P(PipelinedDeterminismTest, AsyncPersistStormYieldsIdenticalReadyStreams) {
  // With async_persist the leader's own entry only counts toward commit once
  // ack_persisted covers it, so the scripted acks actively gate commit
  // advancement — the exact interleaving the async driver produces.
  const auto script = make_pipelined_script(GetParam(), 2000);
  NodeOptions opts = pipelined_options();
  opts.async_persist = true;
  const std::string first = run_script(script, GetParam() ^ 0xD00D, opts);
  const std::string second = run_script(script, GetParam() ^ 0xD00D, opts);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  EXPECT_EQ(first.find(" commit=0 "), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelinedDeterminismTest,
                         ::testing::Values(111, 222, 333, 444, 555, 666));

// --- Ready lifecycle discipline ---------------------------------------------

TEST(ReadyLifecycleTest, ReadyReentryThrows) {
  auto node = make_core(9);
  node->start(0);
  node->tick(kMax + 1);  // campaign: hard state + messages pending
  ASSERT_TRUE(node->has_ready());
  (void)node->ready();
  EXPECT_THROW((void)node->ready(), std::logic_error);
}

TEST(ReadyLifecycleTest, InputBetweenReadyAndAdvanceThrows) {
  auto node = make_core(9);
  node->start(0);
  node->tick(kMax + 1);
  ASSERT_TRUE(node->has_ready());
  (void)node->ready();
  EXPECT_THROW(node->tick(kMax + 2), std::logic_error);
  EXPECT_THROW(node->submit({0x1}, kMax + 2), std::logic_error);
  EXPECT_THROW(node->step({2, 1, rpc::RequestVoteReply{}}, kMax + 2), std::logic_error);
  node->advance(node->last_applied());  // recovers; inputs flow again
  node->tick(kMax + 2);
}

TEST(ReadyLifecycleTest, AckPersistedBetweenReadyAndAdvanceThrows) {
  // The durability ack is an input like any other: the completion queue may
  // not inject it mid-drain.
  auto node = make_core(9);
  node->start(0);
  node->tick(kMax + 1);
  ASSERT_TRUE(node->has_ready());
  (void)node->ready();
  EXPECT_THROW(node->ack_persisted(1, kMax + 2), std::logic_error);
  node->advance(node->last_applied());
  node->ack_persisted(1, kMax + 2);  // flows again after the drain completes
}

TEST(ReadyLifecycleTest, AdvanceWithoutBatchThrows) {
  auto node = make_core(9);
  node->start(0);
  EXPECT_THROW(node->advance(0), std::logic_error);
}

TEST(ReadyLifecycleTest, AdvanceWithWrongAppliedCursorThrows) {
  auto node = make_core(9);
  node->start(0);
  node->tick(kMax + 1);
  ASSERT_TRUE(node->has_ready());
  (void)node->ready();
  EXPECT_THROW(node->advance(7), std::logic_error);  // nothing was applied
  node->advance(0);
}

TEST(ReadyLifecycleTest, BatchesAccumulateAcrossInputsUntilDrained) {
  auto node = make_core(9);
  node->start(0);
  node->tick(kMax + 1);  // campaign
  rpc::RequestVoteReply yes;
  yes.term = node->term();
  yes.vote_granted = true;
  for (ServerId v : {2u, 3u}) {
    yes.voter_id = v;
    node->step({v, 1, yes}, kMax + 1);
  }
  ASSERT_EQ(node->role(), Role::kLeader);
  // One batch carries the whole accumulated burst; sequence numbers are
  // dense over ready() calls, not inputs.
  ASSERT_TRUE(node->has_ready());
  const Ready rd = node->ready();
  EXPECT_EQ(rd.sequence, 1u);
  EXPECT_FALSE(rd.messages.empty());
  node->advance(node->last_applied());
}

}  // namespace
}  // namespace escape::raft
