#include "common/serde.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace escape {
namespace {

TEST(SerdeTest, PrimitiveRoundtrip) {
  Encoder e;
  e.u8(0xAB);
  e.u16(0xBEEF);
  e.u32(0xDEADBEEF);
  e.u64(0x0123456789ABCDEFull);
  e.i32(-42);
  e.i64(-1234567890123456789ll);
  e.boolean(true);
  e.boolean(false);
  e.f64(3.14159);

  Decoder d(e.data());
  EXPECT_EQ(d.u8(), 0xAB);
  EXPECT_EQ(d.u16(), 0xBEEF);
  EXPECT_EQ(d.u32(), 0xDEADBEEFu);
  EXPECT_EQ(d.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(d.i32(), -42);
  EXPECT_EQ(d.i64(), -1234567890123456789ll);
  EXPECT_TRUE(d.boolean());
  EXPECT_FALSE(d.boolean());
  EXPECT_DOUBLE_EQ(d.f64(), 3.14159);
  d.expect_end();
}

TEST(SerdeTest, StringRoundtrip) {
  Encoder e;
  e.str("");
  e.str("hello");
  e.str(std::string("\x00\x01\xFF", 3));
  Decoder d(e.data());
  EXPECT_EQ(d.str(), "");
  EXPECT_EQ(d.str(), "hello");
  EXPECT_EQ(d.str(), std::string("\x00\x01\xFF", 3));
  d.expect_end();
}

TEST(SerdeTest, BytesRoundtrip) {
  Encoder e;
  std::vector<std::uint8_t> blob{1, 2, 3, 255, 0};
  e.bytes(blob);
  e.bytes({});
  Decoder d(e.data());
  EXPECT_EQ(d.bytes(), blob);
  EXPECT_TRUE(d.bytes().empty());
  d.expect_end();
}

TEST(SerdeTest, UnderrunThrows) {
  Encoder e;
  e.u16(7);
  Decoder d(e.data());
  EXPECT_EQ(d.u8(), 7);
  EXPECT_THROW(d.u32(), DecodeError);
}

TEST(SerdeTest, TruncatedStringThrows) {
  Encoder e;
  e.u32(100);  // claims 100 bytes, none follow
  Decoder d(e.data());
  EXPECT_THROW(d.str(), DecodeError);
}

TEST(SerdeTest, TrailingBytesDetected) {
  Encoder e;
  e.u8(1);
  e.u8(2);
  Decoder d(e.data());
  d.u8();
  EXPECT_THROW(d.expect_end(), DecodeError);
  d.u8();
  EXPECT_NO_THROW(d.expect_end());
}

TEST(SerdeTest, InvalidBooleanThrows) {
  std::vector<std::uint8_t> buf{2};
  Decoder d(buf);
  EXPECT_THROW(d.boolean(), DecodeError);
}

TEST(SerdeTest, LittleEndianLayout) {
  Encoder e;
  e.u32(0x01020304);
  ASSERT_EQ(e.size(), 4u);
  EXPECT_EQ(e.data()[0], 0x04);
  EXPECT_EQ(e.data()[1], 0x03);
  EXPECT_EQ(e.data()[2], 0x02);
  EXPECT_EQ(e.data()[3], 0x01);
}

TEST(SerdeTest, RandomRoundtripSweep) {
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    Encoder e;
    std::vector<std::int64_t> ints;
    std::vector<std::string> strs;
    const int n = static_cast<int>(rng.uniform_int(0, 10));
    for (int i = 0; i < n; ++i) {
      ints.push_back(rng.uniform_int(INT64_MIN / 2, INT64_MAX / 2));
      std::string s;
      const int len = static_cast<int>(rng.uniform_int(0, 64));
      for (int j = 0; j < len; ++j) s.push_back(static_cast<char>(rng.uniform_int(0, 255)));
      strs.push_back(s);
      e.i64(ints.back());
      e.str(strs.back());
    }
    Decoder d(e.data());
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(d.i64(), ints[static_cast<std::size_t>(i)]);
      EXPECT_EQ(d.str(), strs[static_cast<std::size_t>(i)]);
    }
    d.expect_end();
  }
}

TEST(Crc32Test, KnownVector) {
  // CRC32("123456789") = 0xCBF43926 (IEEE reflected).
  const std::string s = "123456789";
  EXPECT_EQ(crc32(reinterpret_cast<const std::uint8_t*>(s.data()), s.size()), 0xCBF43926u);
}

TEST(Crc32Test, EmptyIsZero) { EXPECT_EQ(crc32(nullptr, 0), 0u); }

TEST(Crc32Test, DetectsBitFlip) {
  std::vector<std::uint8_t> buf(64, 0xAA);
  const auto base = crc32(buf);
  for (std::size_t i = 0; i < buf.size(); i += 7) {
    auto copy = buf;
    copy[i] ^= 0x01;
    EXPECT_NE(crc32(copy), base) << "flip at byte " << i;
  }
}

}  // namespace
}  // namespace escape
