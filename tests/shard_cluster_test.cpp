// Tests for the multi-Raft deployment: shared-timeline composition of
// independent groups, host-level faults, leader placement, and the routed
// KV client.
#include <gtest/gtest.h>

#include "shard/shard_check.h"
#include "shard/sharded_cluster.h"
#include "shard/sharded_kv.h"
#include "sim/invariants.h"

namespace escape::shard {
namespace {

TEST(ShardedClusterTest, GroupsShareOneVirtualTimeline) {
  ShardedCluster cluster(make_sharded_options("escape", 3, 3, 101));
  ASSERT_EQ(cluster.shards(), 3u);
  for (ShardId shard = 0; shard < 3; ++shard) {
    // Every group's loop() is the deployment's loop: one timeline.
    EXPECT_EQ(&cluster.group(shard).loop(), &cluster.loop());
  }
}

TEST(ShardedClusterTest, SoloClusterStillOwnsItsLoop) {
  // The single-group path is unchanged: no external loop means a private one.
  sim::ClusterOptions options;
  options.size = 3;
  sim::SimCluster solo(options);
  solo.loop().run_until(from_ms(10));
  EXPECT_EQ(solo.loop().now(), from_ms(10));
}

TEST(ShardedClusterTest, BootstrapElectsEveryGroupIndependently) {
  ShardedCluster cluster(make_sharded_options("escape", 4, 5, 102));
  ASSERT_TRUE(cluster.bootstrap_all());
  for (ShardId shard = 0; shard < cluster.shards(); ++shard) {
    EXPECT_NE(cluster.leader(shard), kNoServer) << "shard " << shard;
  }
  // Independent groups: each elected in its own term history, with its own
  // patrol/confClock state — terms need not agree across groups.
}

TEST(ShardedClusterTest, SpreadLeadersLandsOnDefaultPlacement) {
  ShardedCluster cluster(make_sharded_options("escape", 4, 5, 103));
  ASSERT_TRUE(cluster.bootstrap_all());
  const std::size_t placed = cluster.spread_leaders();
  EXPECT_EQ(placed, 4u);
  for (ShardId shard = 0; shard < cluster.shards(); ++shard) {
    EXPECT_EQ(cluster.leader(shard), cluster.default_placement(shard)) << "shard " << shard;
  }
}

TEST(ShardedClusterTest, PackLeadersConcentratesOnOneHost) {
  ShardedCluster cluster(make_sharded_options("escape", 5, 5, 104));
  ASSERT_TRUE(cluster.bootstrap_all());
  const std::size_t placed = cluster.pack_leaders(2, 4);
  EXPECT_EQ(placed, 4u);
  EXPECT_GE(cluster.leaders_on(2), 4u);
}

TEST(ShardedClusterTest, HostCrashTakesDownEveryReplicaAndRecoverHeals) {
  ShardedCluster cluster(make_sharded_options("escape", 3, 5, 105));
  ASSERT_TRUE(cluster.bootstrap_all());
  ASSERT_TRUE(cluster.host_alive(3));
  cluster.crash_host(3);
  for (ShardId shard = 0; shard < cluster.shards(); ++shard) {
    EXPECT_FALSE(cluster.group(shard).alive(3)) << "shard " << shard;
  }
  EXPECT_FALSE(cluster.host_alive(3));
  // The other four hosts still form a quorum in every group.
  ASSERT_TRUE(cluster.run_until_all_leaders(cluster.loop().now() + from_ms(60'000)));
  cluster.recover_host(3);
  EXPECT_TRUE(cluster.host_alive(3));
}

TEST(ShardedKvTest, RoutesEveryKeyToItsOwnerAndReplicates) {
  ShardedCluster cluster(make_sharded_options("escape", 3, 3, 106));
  ShardedKv kv(cluster);
  ASSERT_TRUE(cluster.bootstrap_all());

  std::vector<std::string> keys;
  for (int i = 0; i < 12; ++i) keys.push_back("user:" + std::to_string(i));
  for (const auto& key : keys) {
    ASSERT_TRUE(kv.put(key, "value-of-" + key, from_ms(30'000)).has_value()) << key;
  }
  // Every key lives exactly in its owning group, and reads route back to it.
  for (const auto& key : keys) {
    const ShardId owner = kv.owner(key);
    const ServerId leader = cluster.leader(owner);
    ASSERT_NE(leader, kNoServer);
    EXPECT_EQ(kv.group_kv(owner).store(leader).peek(key), "value-of-" + key);
    const auto got = kv.get(key, from_ms(30'000));
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->value, "value-of-" + key);
    const auto read = kv.read(key, from_ms(30'000));
    ASSERT_TRUE(read.has_value());
    EXPECT_EQ(read->value, "value-of-" + key);
  }
  EXPECT_TRUE(kv.routing_violations().empty());

  // The 12 keys spread over the groups (3 shards, FNV spread): no group
  // should have seen zero traffic.
  std::size_t routed_total = 0;
  for (const std::size_t count : kv.ops_routed()) {
    routed_total += count;
  }
  EXPECT_GE(routed_total, 3u * 12u);
}

TEST(ShardedKvTest, GroupsFailIndependently) {
  // Crashing one shard's leader host must not stall keys owned by other
  // shards whose leaders live elsewhere — the scale-out isolation story.
  ShardedCluster cluster(make_sharded_options("escape", 4, 5, 107));
  ShardedKv kv(cluster);
  ASSERT_TRUE(cluster.bootstrap_all());
  ASSERT_EQ(cluster.spread_leaders(), 4u);

  const ServerId victim = cluster.default_placement(0);
  cluster.crash_host(victim);

  // A key owned by a group whose leader survived commits immediately.
  std::string other_key;
  for (int i = 0; i < 64 && other_key.empty(); ++i) {
    const std::string candidate = "other-" + std::to_string(i);
    const ShardId owner = cluster.shard_of(candidate);
    if (cluster.leader(owner) != kNoServer && cluster.leader(owner) != victim) {
      other_key = candidate;
    }
  }
  ASSERT_FALSE(other_key.empty());
  const auto quick = kv.put(other_key, "fast", from_ms(20'000));
  ASSERT_TRUE(quick.has_value());
  EXPECT_TRUE(quick->ok);

  // Shard 0 re-elects (its quorum survived) and then serves again too.
  std::string orphan_key;
  for (int i = 0; i < 64 && orphan_key.empty(); ++i) {
    const std::string candidate = "orphan-" + std::to_string(i);
    if (cluster.shard_of(candidate) == 0) orphan_key = candidate;
  }
  ASSERT_FALSE(orphan_key.empty());
  const auto healed = kv.put(orphan_key, "recovered", from_ms(60'000));
  ASSERT_TRUE(healed.has_value());
  EXPECT_TRUE(healed->ok);
  EXPECT_TRUE(kv.routing_violations().empty());
}

}  // namespace
}  // namespace escape::shard
