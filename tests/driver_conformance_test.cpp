// Driver conformance: the simulator's immediate-dispatch SimDriver and the
// TCP runtime's buffered RealDriver must drive one core identically. A
// scripted three-node scenario — election, replication, leader failover,
// snapshot catch-up of a lagging restart, and a linearizable read — runs
// once through each consumption style over in-memory storage, single
// threaded on a virtual clock, and the per-node Ready streams (observed at
// the shared NodeDriver underneath) must be byte-identical.
#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "net/real_driver.h"
#include "raft/raft_node.h"
#include "sim/sim_driver.h"
#include "storage/snapshot_store.h"
#include "storage/state_store.h"
#include "storage/wal.h"
#include "test_ready_fingerprint.h"

namespace escape::raft {
namespace {

constexpr Duration kMin = from_ms(100);
constexpr Duration kMax = from_ms(200);
constexpr Duration kStep = from_ms(10);

enum class Style { kSim, kReal };

NodeOptions test_options() {
  NodeOptions opts;
  opts.heartbeat_interval = from_ms(30);
  return opts;
}

/// One server: durable stores that outlive crashes, plus a per-incarnation
/// driver+core pair in the chosen consumption style.
struct Server {
  storage::MemoryStateStore store;
  storage::MemoryWal wal;
  storage::MemorySnapshotStore snaps;
  std::unique_ptr<sim::SimDriver> sim;
  std::unique_ptr<net::RealDriver> real;
  std::unique_ptr<RaftNode> node;
  bool alive = false;
  std::string stream;  ///< concatenated Ready fingerprints, all incarnations
};

class MiniCluster {
 public:
  MiniCluster(Style style, std::uint64_t seed) : style_(style), seed_(seed) {
    for (ServerId id : members_) boot(id);
  }

  void start_all(TimePoint now) {
    for (ServerId id : members_) {
      servers_.at(id).node->start(now);
      drain(id);
    }
  }

  void boot(ServerId id) {
    Server& s = servers_[id];
    s.sim.reset();
    s.real.reset();
    auto make_node = [&](Bootstrap boot) {
      return std::make_unique<RaftNode>(id, members_,
                                        std::make_unique<RaftRandomizedPolicy>(kMin, kMax),
                                        Rng(seed_ ^ (0xAB00 + id)), test_options(),
                                        std::move(boot));
    };
    if (style_ == Style::kSim) {
      s.sim = std::make_unique<sim::SimDriver>(s.store, s.wal, &s.snaps);
      s.node = make_node(s.sim->recover());
      s.sim->attach(*s.node);
      s.sim->hooks().send = [this](const std::vector<rpc::Envelope>& batch) {
        for (const auto& env : batch) wire_.push_back(env);
      };
      s.sim->base().hooks().observe = [&s](const Ready& rd) { s.stream += fingerprint(rd); };
    } else {
      s.real = std::make_unique<net::RealDriver>(s.store, s.wal, &s.snaps);
      s.node = make_node(s.real->recover());
      s.real->attach(*s.node);
      s.real->base().hooks().observe = [&s](const Ready& rd) { s.stream += fingerprint(rd); };
    }
    s.alive = true;
  }

  void crash(ServerId id) {
    Server& s = servers_.at(id);
    s.alive = false;
    s.node.reset();
    s.sim.reset();
    s.real.reset();
  }

  void recover(ServerId id, TimePoint now) {
    boot(id);
    servers_.at(id).node->start(now);
    drain(id);
  }

  /// Drains every pending batch in the style under test. For kReal the
  /// environment effects are flushed after each pump_one, as RealNode's
  /// driver thread does outside its lock.
  void drain(ServerId id) {
    Server& s = servers_.at(id);
    if (!s.alive) return;
    if (style_ == Style::kSim) {
      s.sim->pump();
      return;
    }
    net::RealDriver::Effects fx;
    while (s.real->pump_one(fx)) {
      for (const auto& env : fx.messages) wire_.push_back(env);
      for (const auto& grant : fx.read_grants) grants_.push_back(grant);
      fx.clear();
    }
  }

  /// Delivers every queued envelope (in order), draining after each step;
  /// deliveries may enqueue more until the wire goes quiet.
  void deliver_all(TimePoint now) {
    while (!wire_.empty()) {
      const rpc::Envelope env = wire_.front();
      wire_.pop_front();
      Server& dst = servers_.at(env.to);
      if (!dst.alive) continue;
      dst.node->step(env, now);
      drain(env.to);
    }
  }

  void tick_all(TimePoint now) {
    for (ServerId id : members_) {
      Server& s = servers_.at(id);
      if (!s.alive) continue;
      s.node->tick(now);
      drain(id);
    }
  }

  ServerId leader() const {
    ServerId best = kNoServer;
    Term best_term = -1;
    for (ServerId id : members_) {
      const Server& s = servers_.at(id);
      if (s.alive && s.node->role() == Role::kLeader && s.node->term() > best_term) {
        best = id;
        best_term = s.node->term();
      }
    }
    return best;
  }

  Server& server(ServerId id) { return servers_.at(id); }
  const std::vector<ReadGrant>& grants() const { return grants_; }

 private:
  Style style_;
  std::uint64_t seed_;
  std::vector<ServerId> members_{1, 2, 3};
  std::map<ServerId, Server> servers_;
  std::deque<rpc::Envelope> wire_;
  std::vector<ReadGrant> grants_;
};

struct ScenarioResult {
  std::map<ServerId, std::string> streams;
  ServerId first_leader = kNoServer;
  ServerId second_leader = kNoServer;
  bool read_granted = false;
};

/// The recorded scenario: elect, replicate, fail over, compact, catch the
/// restarted server up by snapshot, serve a lease read. All decision points
/// (who leads, when) emerge deterministically from the seeded cores.
ScenarioResult run_scenario(Style style, std::uint64_t seed) {
  MiniCluster cluster(style, seed);
  ScenarioResult result;
  cluster.start_all(0);

  std::uint8_t payload = 0;
  ServerId crashed = kNoServer;
  for (TimePoint now = kStep; now <= from_ms(4000); now += kStep) {
    cluster.tick_all(now);
    cluster.deliver_all(now);
    const ServerId leader = cluster.leader();

    if (now == from_ms(1000) && leader != kNoServer) {
      result.first_leader = leader;
      for (int i = 0; i < 5; ++i) {
        cluster.server(leader).node->submit({++payload}, now);
        cluster.drain(leader);
      }
      cluster.deliver_all(now);
    }
    if (now == from_ms(1500) && result.first_leader != kNoServer && crashed == kNoServer) {
      crashed = result.first_leader;
      cluster.crash(crashed);
    }
    if (now == from_ms(2500) && leader != kNoServer && leader != crashed) {
      result.second_leader = leader;
      for (int i = 0; i < 3; ++i) {
        cluster.server(leader).node->submit({++payload}, now);
        cluster.drain(leader);
      }
      cluster.deliver_all(now);
      // Compact the survivors so the crashed server returns behind the log
      // base and must catch up by snapshot.
      for (ServerId id : {ServerId{1}, ServerId{2}, ServerId{3}}) {
        if (id == crashed) continue;
        auto& s = cluster.server(id);
        s.node->compact(s.node->last_applied(), {0xEE}, now);
        cluster.drain(id);
      }
    }
    if (now == from_ms(2800) && crashed != kNoServer) {
      cluster.recover(crashed, now);
      crashed = kNoServer;
    }
    if (now == from_ms(3500) && leader != kNoServer) {
      cluster.server(leader).node->submit_read(now);
      cluster.drain(leader);
      cluster.deliver_all(now);
    }
  }

  for (ServerId id : {ServerId{1}, ServerId{2}, ServerId{3}}) {
    result.streams[id] = std::move(cluster.server(id).stream);
  }
  if (style == Style::kSim) {
    // Grants were dispatched through the sim hooks; recover them from the
    // streams instead so both styles report uniformly.
    for (const auto& [id, stream] : result.streams) {
      if (stream.find(" ok=1") != std::string::npos) result.read_granted = true;
    }
  } else {
    for (const auto& grant : cluster.grants()) {
      if (grant.ok) result.read_granted = true;
    }
  }
  return result;
}

class DriverConformanceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DriverConformanceTest, SimAndRealDriversProduceIdenticalReadyStreams) {
  const ScenarioResult sim = run_scenario(Style::kSim, GetParam());
  const ScenarioResult real = run_scenario(Style::kReal, GetParam());

  // The scenario must actually have exercised its beats.
  ASSERT_NE(sim.first_leader, kNoServer) << "no leader elected by t=1s";
  ASSERT_NE(sim.second_leader, kNoServer) << "no failover leader by t=2.5s";
  EXPECT_NE(sim.first_leader, sim.second_leader);
  EXPECT_TRUE(sim.read_granted);
  EXPECT_TRUE(real.read_granted);

  // Identical dynamics...
  EXPECT_EQ(sim.first_leader, real.first_leader);
  EXPECT_EQ(sim.second_leader, real.second_leader);

  // ...and byte-identical per-node Ready streams.
  for (ServerId id : {ServerId{1}, ServerId{2}, ServerId{3}}) {
    ASSERT_FALSE(sim.streams.at(id).empty());
    EXPECT_EQ(sim.streams.at(id), real.streams.at(id)) << "node " << id << " diverged";
  }
}

TEST_P(DriverConformanceTest, ScenarioCoversSnapshotCatchUp) {
  const ScenarioResult sim = run_scenario(Style::kSim, GetParam());
  // The restarted server must have been caught up by InstallSnapshot: its
  // stream contains a restore (or it booted from a stored snapshot after a
  // later crash — either way a restore fingerprint appears somewhere).
  bool restored = false;
  for (const auto& [id, stream] : sim.streams) {
    if (stream.find("restore ") != std::string::npos) restored = true;
  }
  EXPECT_TRUE(restored) << "scenario never exercised snapshot catch-up";
}

INSTANTIATE_TEST_SUITE_P(Seeds, DriverConformanceTest, ::testing::Values(7, 21, 42));

}  // namespace
}  // namespace escape::raft
