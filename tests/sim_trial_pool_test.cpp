// Tests for the parallel Monte-Carlo trial engine: every trial runs exactly
// once, seeds derive purely from (root, index), results aggregate in index
// order, and — the load-bearing contract — the numbers are bit-identical
// no matter how many threads the pool uses.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/stats.h"
#include "sim/trial_pool.h"

namespace escape {
namespace {

using sim::TrialPool;

TEST(TrialPoolTest, ResolvesExplicitThreadCount) {
  TrialPool one(1);
  EXPECT_EQ(one.threads(), 1u);
  TrialPool three(3);
  EXPECT_EQ(three.threads(), 3u);
  EXPECT_GE(TrialPool::default_threads(), 1u);
}

TEST(TrialPoolTest, RunsEveryTrialExactlyOnce) {
  for (std::size_t threads : {1u, 2u, 5u}) {
    TrialPool pool(threads);
    constexpr std::size_t kTrials = 97;
    std::vector<std::atomic<int>> hits(kTrials);
    pool.run(kTrials, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < kTrials; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "trial " << i << " threads=" << threads;
    }
  }
}

TEST(TrialPoolTest, ZeroTrialsIsANoOp) {
  TrialPool pool(2);
  pool.run(0, [](std::size_t) { FAIL() << "no trial should run"; });
}

TEST(TrialPoolTest, BatchesAreReusableAcrossRuns) {
  TrialPool pool(3);
  for (int round = 0; round < 5; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.run(10, [&](std::size_t i) { sum.fetch_add(i); });
    EXPECT_EQ(sum.load(), 45u);
  }
}

TEST(TrialPoolTest, MapSeededReturnsIndexOrderedResults) {
  TrialPool pool(4);
  const auto seeds = pool.map_seeded<std::uint64_t>(
      64, 42, [](std::size_t, std::uint64_t seed) { return seed; });
  ASSERT_EQ(seeds.size(), 64u);
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(seeds[i], stream_seed(42, i)) << i;
  }
}

TEST(TrialPoolTest, AggregatesAreThreadCountInvariant) {
  // The acceptance-gate property in miniature: a seeded Monte-Carlo
  // aggregate must be bit-identical across pool sizes.
  auto sweep = [](std::size_t threads) {
    TrialPool pool(threads);
    const auto values = pool.map_seeded<double>(
        200, 7, [](std::size_t, std::uint64_t seed) {
          Rng rng(seed);
          double acc = 0;
          for (int i = 0; i < 100; ++i) acc += rng.uniform_real(0.0, 1.0);
          return acc;
        });
    Sample sample;
    for (double v : values) sample.add(v);
    return sample;
  };
  const Sample serial = sweep(1);
  const Sample parallel = sweep(4);
  EXPECT_EQ(serial.values(), parallel.values());  // bitwise, order included
  EXPECT_DOUBLE_EQ(serial.mean(), parallel.mean());
  EXPECT_DOUBLE_EQ(serial.percentile(99), parallel.percentile(99));
}

TEST(TrialPoolTest, FirstTrialExceptionPropagates) {
  // Both execution legs (inline for threads == 1, pooled otherwise) share
  // the contract: every trial still runs, the first exception rethrows.
  for (std::size_t threads : {1u, 3u}) {
    TrialPool pool(threads);
    std::atomic<int> completed{0};
    EXPECT_THROW(
        pool.run(20,
                 [&](std::size_t i) {
                   if (i == 7) throw std::runtime_error("trial 7 failed");
                   completed.fetch_add(1);
                 }),
        std::runtime_error);
    // Trials are independent: the failure does not cancel the rest.
    EXPECT_EQ(completed.load(), 19) << "threads=" << threads;
    // The pool stays usable after a failed batch.
    std::atomic<int> ok{0};
    pool.run(4, [&](std::size_t) { ok.fetch_add(1); });
    EXPECT_EQ(ok.load(), 4) << "threads=" << threads;
  }
}

TEST(TrialPoolTest, NestedRunExecutesInline) {
  // A trial that itself fans out must not deadlock the pool it runs on;
  // nested batches execute inline on the claiming thread.
  TrialPool pool(2);
  std::atomic<std::size_t> inner_total{0};
  pool.run(6, [&](std::size_t) {
    pool.run(5, [&](std::size_t j) { inner_total.fetch_add(j + 1); });
  });
  EXPECT_EQ(inner_total.load(), 6u * 15u);
}

TEST(TrialPoolTest, ConcurrentTopLevelCallersDoNotCorruptEachOther) {
  // The pool carries one batch at a time; a second top-level caller degrades
  // to inline execution instead of stealing the in-flight batch's trials.
  TrialPool pool(3);
  std::vector<std::atomic<int>> hits_a(60), hits_b(60);
  std::thread other([&] { pool.run(60, [&](std::size_t i) { hits_b[i].fetch_add(1); }); });
  pool.run(60, [&](std::size_t i) { hits_a[i].fetch_add(1); });
  other.join();
  for (std::size_t i = 0; i < 60; ++i) {
    EXPECT_EQ(hits_a[i].load(), 1) << i;
    EXPECT_EQ(hits_b[i].load(), 1) << i;
  }
}

TEST(TrialPoolTest, SharedPoolIsASingleton) {
  EXPECT_EQ(&TrialPool::shared(), &TrialPool::shared());
  EXPECT_GE(TrialPool::shared().threads(), 1u);
}

}  // namespace
}  // namespace escape
