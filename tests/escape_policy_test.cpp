// Unit tests for the ESCAPE election policy: SCA arithmetic (Eq. 1/2),
// confClock rules, and the probing patrol function, including the paper's
// Figure 5a/5b rearrangement scenarios.
#include "core/escape_policy.h"

#include <gtest/gtest.h>

#include <set>

namespace escape::core {
namespace {

EscapeOptions test_options() {
  EscapeOptions o;
  o.base_time = from_ms(1500);
  o.gap = from_ms(500);
  return o;
}

rpc::ConfigStatus status(LogIndex idx, ConfClock clock) {
  rpc::ConfigStatus s;
  s.log_index = idx;
  s.conf_clock = clock;
  return s;
}

TEST(ScaTest, Equation1Timeouts) {
  const auto opts = test_options();
  // period = 1500 + 500 * (n - P); n = 10.
  EXPECT_EQ(election_period(opts, 10, 10), from_ms(1500));
  EXPECT_EQ(election_period(opts, 10, 2), from_ms(1500 + 500 * 8));
  EXPECT_EQ(election_period(opts, 10, 1), from_ms(1500 + 500 * 9));
}

TEST(ScaTest, PaperExampleFromSectionIVA2) {
  // "in a 10-server cluster with baseTime=100ms and k=10, S2's initial
  //  election timeout is 180 ms; S10's is the base time (100 ms)".
  EscapeOptions o;
  o.base_time = from_ms(100);
  o.gap = from_ms(10);
  EXPECT_EQ(election_period(o, 10, 2), from_ms(180));
  EXPECT_EQ(election_period(o, 10, 10), from_ms(100));
}

TEST(ScaTest, InitialConfigurationUsesServerId) {
  const auto opts = test_options();
  const auto cfg = initial_configuration(opts, 5, 3);
  EXPECT_EQ(cfg.priority, 3);
  EXPECT_EQ(cfg.conf_clock, 0);
  EXPECT_EQ(cfg.timer_period, election_period(opts, 5, 3));
}

TEST(EscapePolicyTest, CampaignTermGrowsByPriority) {
  EscapePolicy p(3, 5, test_options());
  // Eq. 2 with initial priority = id = 3.
  EXPECT_EQ(p.campaign_term(7), 10);
  EXPECT_EQ(p.campaign_term(10), 13);
}

TEST(EscapePolicyTest, TimeoutIsDeterministicFromConfig) {
  EscapePolicy p(2, 5, test_options());
  Rng rng(1);
  const auto t1 = p.next_election_timeout(rng);
  const auto t2 = p.next_election_timeout(rng);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t1, election_period(test_options(), 5, 2));
}

TEST(EscapePolicyTest, AdoptsOnlyStrictlyFresherConfig) {
  EscapePolicy p(2, 5, test_options());
  rpc::Configuration cfg;
  cfg.priority = 5;
  cfg.timer_period = from_ms(1500);
  cfg.conf_clock = 3;
  EXPECT_TRUE(p.on_config_received(cfg));
  EXPECT_EQ(p.current_config(), cfg);

  // Same clock: rejected (replay).
  rpc::Configuration replay = cfg;
  replay.priority = 4;
  EXPECT_FALSE(p.on_config_received(replay));
  EXPECT_EQ(p.current_config().priority, 5);

  // Older clock: rejected (reordered heartbeat).
  rpc::Configuration older = cfg;
  older.conf_clock = 2;
  EXPECT_FALSE(p.on_config_received(older));

  // Newer clock: adopted.
  rpc::Configuration newer = cfg;
  newer.conf_clock = 4;
  newer.priority = 2;
  EXPECT_TRUE(p.on_config_received(newer));
  EXPECT_EQ(p.current_config().priority, 2);
}

TEST(EscapePolicyTest, VoteRequestCarriesAdoptedClock) {
  EscapePolicy p(2, 5, test_options());
  EXPECT_EQ(p.vote_request_clock(), 0);
  rpc::Configuration cfg;
  cfg.priority = 4;
  cfg.conf_clock = 9;
  cfg.timer_period = from_ms(2000);
  p.on_config_received(cfg);
  EXPECT_EQ(p.vote_request_clock(), 9);
}

TEST(EscapePolicyTest, ConfClockVoteRule) {
  EscapePolicy p(2, 5, test_options());
  rpc::Configuration cfg;
  cfg.priority = 4;
  cfg.conf_clock = 5;
  cfg.timer_period = from_ms(2000);
  p.on_config_received(cfg);

  rpc::RequestVote rv;
  rv.conf_clock = 4;  // stale candidate
  EXPECT_FALSE(p.approve_candidate(rv));
  rv.conf_clock = 5;  // same clock: acceptable
  EXPECT_TRUE(p.approve_candidate(rv));
  rv.conf_clock = 6;  // fresher: acceptable
  EXPECT_TRUE(p.approve_candidate(rv));
}

TEST(EscapePolicyTest, VoteRuleDisabledByOption) {
  auto opts = test_options();
  opts.conf_clock_vote_rule = false;
  EscapePolicy p(2, 5, opts);
  rpc::Configuration cfg;
  cfg.priority = 4;
  cfg.conf_clock = 5;
  cfg.timer_period = from_ms(2000);
  p.on_config_received(cfg);
  rpc::RequestVote rv;
  rv.conf_clock = 0;
  EXPECT_TRUE(p.approve_candidate(rv));
}

TEST(EscapePolicyTest, RestoreKeepsScaDefaultsOnFreshDisk) {
  EscapePolicy p(3, 5, test_options());
  p.restore(rpc::Configuration{});  // zeroed persisted state
  EXPECT_EQ(p.current_config().priority, 3);
  p.restore(rpc::Configuration{.timer_period = from_ms(1700), .priority = 4, .conf_clock = 8});
  EXPECT_EQ(p.current_config().priority, 4);
  EXPECT_EQ(p.current_config().conf_clock, 8);
}

// --- probing patrol function ------------------------------------------------

struct Patrol {
  Patrol() : policy(1, 5, test_options()) { policy.on_become_leader({2, 3, 4, 5}, 10); }

  /// One heartbeat round: feed statuses, then patrol.
  void round(const std::map<ServerId, rpc::ConfigStatus>& statuses) {
    for (const auto& [id, st] : statuses) policy.on_follower_status(id, st);
    policy.begin_heartbeat_round();
  }

  Priority assigned_priority(ServerId id) { return policy.config_for(id)->priority; }

  EscapePolicy policy;
};

TEST(PpfTest, FirstRoundDistributesDistinctPriorities) {
  Patrol p;
  p.policy.begin_heartbeat_round();
  std::set<Priority> prios;
  std::set<ConfClock> clocks;
  for (ServerId f : {2u, 3u, 4u, 5u}) {
    const auto cfg = p.policy.config_for(f);
    ASSERT_TRUE(cfg.has_value());
    prios.insert(cfg->priority);
    clocks.insert(cfg->conf_clock);
    EXPECT_EQ(cfg->timer_period, election_period(test_options(), 5, cfg->priority));
  }
  // Pool is {2..5}: the leader parks at priority 1.
  EXPECT_EQ(prios, (std::set<Priority>{2, 3, 4, 5}));
  EXPECT_EQ(clocks.size(), 1u);
  EXPECT_EQ(p.policy.current_config().priority, 1);
}

TEST(PpfTest, UpToDateFollowersGetHigherPriorities) {
  // Figure 5a: S4 and S5 fall behind (beyond the lag hysteresis); their
  // high priorities move to the up-to-date servers.
  Patrol p;
  p.round({{2, status(100, 0)}, {3, status(100, 0)}, {4, status(40, 0)}, {5, status(20, 0)}});
  EXPECT_GT(p.assigned_priority(2), p.assigned_priority(4));
  EXPECT_GT(p.assigned_priority(3), p.assigned_priority(5));
  EXPECT_GT(p.assigned_priority(4), p.assigned_priority(5));
  // The most responsive follower holds the top priority (n = 5).
  EXPECT_EQ(std::max(p.assigned_priority(2), p.assigned_priority(3)), 5);
}

TEST(PpfTest, JitterWithinHysteresisKeepsAssignment) {
  // Followers within lag_threshold of the best index are equally ranked;
  // ordinary in-flight replication jitter must not reshuffle priorities.
  Patrol p;
  p.round({{2, status(100, 0)}, {3, status(100, 0)}, {4, status(100, 0)}, {5, status(100, 0)}});
  const auto before = p.policy.assignments();
  // +-5 entries of jitter (threshold is 10): assignment must be identical.
  p.round({{2, status(105, 1)}, {3, status(102, 1)}, {4, status(98, 1)}, {5, status(101, 1)}});
  EXPECT_EQ(p.policy.assignments(), before);
}

TEST(PpfTest, PipelineBacklogDemotesCongestedFollower) {
  // Same log indices (within hysteresis) — the log-index rule alone sees no
  // laggard — but S4's replication backlog towers over everyone else's:
  // pi(P, k) must not leave a congested server holding a top priority, or
  // the next failover elects the one node that cannot absorb the load.
  Patrol p;
  p.round({{2, status(100, 0)}, {3, status(100, 0)}, {4, status(100, 0)}, {5, status(100, 0)}});
  const auto clock1 = p.policy.config_for(2)->conf_clock;
  for (ServerId f : {2u, 3u, 5u}) p.policy.on_follower_backlog(f, 2, 1);
  p.policy.on_follower_backlog(4, 300, 16);
  p.round({{2, status(200, clock1)},
           {3, status(200, clock1)},
           {4, status(195, clock1)},
           {5, status(200, clock1)}});
  EXPECT_EQ(p.assigned_priority(4), 2);  // bottom of the pool
  std::set<Priority> responsive{p.assigned_priority(2), p.assigned_priority(3),
                                p.assigned_priority(5)};
  EXPECT_EQ(responsive, (std::set<Priority>{3, 4, 5}));
}

TEST(PpfTest, UniformBacklogKeepsAssignment) {
  // The backlog rule is *relative*: an open-loop write storm loads every
  // follower equally, and symmetric pressure must not reshuffle priorities
  // (each reshuffle stales every follower's config until re-adoption).
  Patrol p;
  p.round({{2, status(100, 0)}, {3, status(100, 0)}, {4, status(100, 0)}, {5, status(100, 0)}});
  const auto before = p.policy.assignments();
  for (ServerId f : {2u, 3u, 4u, 5u}) p.policy.on_follower_backlog(f, 500, 16);
  p.round({{2, status(105, 1)}, {3, status(102, 1)}, {4, status(98, 1)}, {5, status(101, 1)}});
  EXPECT_EQ(p.policy.assignments(), before);
}

TEST(PpfTest, CrashedFollowerPriorityReassigned) {
  // Figure 5b: a crashed follower stops replying; once the cluster's log
  // advances past the hysteresis threshold, its high priority is re-issued
  // to a responsive server and its own copy goes stale.
  Patrol p;
  p.round({{2, status(10, 0)}, {3, status(10, 0)}, {4, status(10, 0)}, {5, status(10, 0)}});
  const auto clock1 = p.policy.config_for(2)->conf_clock;

  // S4 crashes: its known index freezes at 10 while the others advance.
  p.round({{2, status(30, clock1)}, {3, status(30, clock1)}, {5, status(30, clock1)}});
  const auto clock2 = p.policy.config_for(2)->conf_clock;
  EXPECT_GT(clock2, clock1);
  // Responsive followers occupy the top three priorities {5,4,3}; the
  // unresponsive S4 is pushed to the bottom of the pool (2).
  EXPECT_EQ(p.assigned_priority(4), 2);
  std::set<Priority> responsive{p.assigned_priority(2), p.assigned_priority(3),
                                p.assigned_priority(5)};
  EXPECT_EQ(responsive, (std::set<Priority>{3, 4, 5}));
}

TEST(PpfTest, ClockAdvancesOnlyOnRearrangement) {
  // The confClock stamps rearrangement generations: a round that would
  // reissue the identical assignment keeps the clock (lossy re-broadcasts
  // converge without staling everyone), while a material responsiveness
  // change bumps it.
  Patrol p;
  p.policy.begin_heartbeat_round();
  const auto c1 = p.policy.config_for(2)->conf_clock;

  // Same ranking (everyone equally synced): clock must not move.
  p.round({{2, status(5, c1)}, {3, status(5, c1)}, {4, status(5, c1)}, {5, status(5, c1)}});
  EXPECT_EQ(p.policy.config_for(2)->conf_clock, c1);

  // S5 (the current top priority) falls far behind: rearrangement.
  p.round({{2, status(50, c1)}, {3, status(50, c1)}, {4, status(50, c1)}, {5, status(5, c1)}});
  const auto c2 = p.policy.config_for(2)->conf_clock;
  EXPECT_GT(c2, c1);
  EXPECT_EQ(p.assigned_priority(5), 2);  // demoted to the bottom of the pool

  // Stable again: clock holds.
  p.round({{2, status(55, c2)}, {3, status(52, c2)}, {4, status(54, c2)}, {5, status(50, c2)}});
  EXPECT_EQ(p.policy.config_for(2)->conf_clock, c2);
}

TEST(PpfTest, ClockContinuesAcrossLeaderships) {
  // A new leader must issue clocks above anything it has ever observed, so
  // followers holding configs from the previous leader still adopt.
  EscapePolicy p(2, 5, test_options());
  rpc::Configuration cfg;
  cfg.priority = 5;
  cfg.conf_clock = 41;
  cfg.timer_period = from_ms(1500);
  p.on_config_received(cfg);  // adopted from previous leader

  p.on_become_leader({1, 3, 4, 5}, 50);
  p.begin_heartbeat_round();
  EXPECT_GT(p.config_for(1)->conf_clock, 41);
}

TEST(PpfTest, ClockContinuesFromFollowerStatuses) {
  // Even if the new leader itself was behind, statuses reveal fresher clocks
  // and the next patrol round jumps past them.
  EscapePolicy p(2, 5, test_options());
  p.on_become_leader({1, 3, 4, 5}, 50);
  p.begin_heartbeat_round();  // issues clock 1
  p.on_follower_status(3, status(5, 77));
  p.begin_heartbeat_round();
  EXPECT_GT(p.config_for(1)->conf_clock, 77);
}

TEST(PpfTest, PatrolEveryNRounds) {
  auto opts = test_options();
  opts.patrol_every = 3;
  EscapePolicy p(1, 5, opts);
  p.on_become_leader({2, 3, 4, 5}, 1);
  p.begin_heartbeat_round();
  EXPECT_FALSE(p.config_for(2).has_value());
  p.begin_heartbeat_round();
  EXPECT_FALSE(p.config_for(2).has_value());
  p.begin_heartbeat_round();
  EXPECT_TRUE(p.config_for(2).has_value());  // third round patrols
  p.begin_heartbeat_round();
  EXPECT_FALSE(p.config_for(2).has_value());
}

TEST(PpfTest, FollowerSideNeverEmitsConfigs) {
  EscapePolicy p(2, 5, test_options());
  p.begin_heartbeat_round();  // not leading
  EXPECT_FALSE(p.config_for(3).has_value());
}

TEST(PpfTest, LosingLeadershipStopsPatrol) {
  Patrol p;
  p.policy.begin_heartbeat_round();
  ASSERT_TRUE(p.policy.config_for(2).has_value());
  // Adopting a config means another server leads now. The clock must outrank
  // what this leadership (term 10) minted, i.e. come from a later term's
  // stride (see kConfClockStride).
  rpc::Configuration cfg;
  cfg.priority = 3;
  cfg.conf_clock = 11 * kConfClockStride;
  cfg.timer_period = from_ms(2500);
  p.policy.on_config_received(cfg);
  p.policy.begin_heartbeat_round();
  EXPECT_FALSE(p.policy.config_for(2).has_value());
}

// --- Z-Raft baseline ---------------------------------------------------------

TEST(ZRaftTest, FixedPrioritiesNoPatrolNoClockRule) {
  auto policy = make_zraft_policy(3, 5, test_options());
  EXPECT_EQ(policy->name(), "zraft");
  // SCA semantics retained: term growth by id, Eq. 1 timeout.
  EXPECT_EQ(policy->campaign_term(10), 13);
  Rng rng(1);
  EXPECT_EQ(policy->next_election_timeout(rng), election_period(test_options(), 5, 3));
  // No clock rule.
  rpc::RequestVote rv;
  rv.conf_clock = 0;
  EXPECT_TRUE(policy->approve_candidate(rv));
  // No patrol.
  policy->on_become_leader({1, 2, 4, 5}, 1);
  policy->begin_heartbeat_round();
  EXPECT_FALSE(policy->config_for(1).has_value());
}

TEST(EscapePolicyTest, TimeoutOverrideWins) {
  EscapePolicy p(2, 5, test_options());
  p.set_timeout_override([] { return std::optional<Duration>(from_ms(42)); });
  Rng rng(1);
  EXPECT_EQ(p.next_election_timeout(rng), from_ms(42));
  p.set_timeout_override([] { return std::optional<Duration>(); });
  EXPECT_EQ(p.next_election_timeout(rng), election_period(test_options(), 5, 2));
  p.set_timeout_override(nullptr);
  EXPECT_EQ(p.next_election_timeout(rng), election_period(test_options(), 5, 2));
}

}  // namespace
}  // namespace escape::core
