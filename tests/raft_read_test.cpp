// Unit tests of the linearizable read fast path: ReadIndex batching, the
// leader lease, the vote-recency guard that makes the lease sound, and the
// rejection semantics on leadership loss. A single RaftNode is driven by
// hand-crafted messages and ticks, no simulator.
#include "raft/raft_node.h"

#include "test_node_harness.h"

#include <gtest/gtest.h>

#include "storage/state_store.h"
#include "storage/wal.h"

namespace escape::raft {
namespace {

constexpr Duration kMin = from_ms(100);
constexpr Duration kMax = from_ms(100);  // deterministic timeout for unit tests

struct ReadFixture {
  explicit ReadFixture(std::size_t n = 3, NodeOptions opts = {}) {
    std::vector<ServerId> members;
    for (ServerId s = 1; s <= n; ++s) members.push_back(s);
    node = std::make_unique<DrivenNode>(1, members,
                                      std::make_unique<RaftRandomizedPolicy>(kMin, kMax),
                                      store, wal, Rng(7), opts);
    node->start(0);
  }

  void deliver(ServerId from, rpc::Message m) {
    node->on_message({from, node->id(), std::move(m)}, now);
  }

  /// Expires the election timer and wins with one peer vote (quorum 2 of 3).
  void become_leader() {
    now += kMax + 1;
    node->on_tick(now);
    rpc::RequestVoteReply vote;
    vote.term = node->term();
    vote.vote_granted = true;
    vote.voter_id = 2;
    deliver(2, vote);
    ASSERT_EQ(node->role(), Role::kLeader);
    node->take_outbox();
  }

  /// Acknowledges the latest broadcast round from `from`.
  void ack_round(ServerId from, std::uint64_t round) {
    rpc::AppendEntriesReply reply;
    reply.term = node->term();
    reply.success = true;
    reply.from = from;
    reply.match_index = node->log().last_index();
    reply.round = round;
    deliver(from, reply);
  }

  /// The round stamped on the most recently broadcast AppendEntries.
  std::uint64_t last_round() {
    const auto out = node->take_outbox();
    std::uint64_t round = 0;
    for (const auto& env : out) {
      if (const auto* ae = std::get_if<rpc::AppendEntries>(&env.message)) {
        round = std::max(round, ae->round);
      }
    }
    return round;
  }

  storage::MemoryStateStore store;
  storage::MemoryWal wal;
  std::unique_ptr<DrivenNode> node;
  TimePoint now = 0;
};

TEST(RaftReadTest, NonLeaderRefusesReads) {
  ReadFixture f;
  EXPECT_FALSE(f.node->submit_read(f.now).has_value());
  EXPECT_TRUE(f.node->take_read_grants().empty());
}

TEST(RaftReadTest, SingleNodeClusterGrantsImmediately) {
  ReadFixture f(1);
  f.now += kMax + 1;
  f.node->on_tick(f.now);  // single-node cluster elects itself
  ASSERT_EQ(f.node->role(), Role::kLeader);
  (void)f.node->submit(std::vector<std::uint8_t>{1}, f.now);
  const auto read = f.node->submit_read(f.now);
  ASSERT_TRUE(read.has_value());
  const auto grants = f.node->take_read_grants();
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_TRUE(grants[0].ok);
  EXPECT_EQ(grants[0].id, *read);
  EXPECT_EQ(grants[0].read_index, f.node->commit_index());
  EXPECT_EQ(f.node->counters().read_index_reads, 1u);
}

TEST(RaftReadTest, ReadIndexWaitsForAQuorumAckedRound) {
  ReadFixture f;
  f.become_leader();
  // The election's round 1 is in flight; the read must wait on a *later*
  // round (one broadcast after the read arrived).
  const auto read = f.node->submit_read(f.now);
  ASSERT_TRUE(read.has_value());
  EXPECT_TRUE(f.node->take_read_grants().empty());
  EXPECT_EQ(f.node->pending_reads(), 1u);

  // Confirming round 1 is not enough for the read, but it opens round 2
  // eagerly (the batch's round) rather than waiting out the heartbeat.
  f.ack_round(2, 1);
  EXPECT_TRUE(f.node->take_read_grants().empty());
  const auto round2 = f.last_round();
  EXPECT_EQ(round2, 2u);

  f.ack_round(3, round2);
  const auto grants = f.node->take_read_grants();
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_TRUE(grants[0].ok);
  EXPECT_FALSE(grants[0].via_lease);
  EXPECT_EQ(grants[0].id, *read);
  EXPECT_EQ(f.node->pending_reads(), 0u);
  EXPECT_EQ(f.node->counters().read_index_reads, 1u);
}

TEST(RaftReadTest, ConfirmedRoundGrantsALeaseThatServesWithZeroMessages) {
  ReadFixture f;
  f.become_leader();
  f.ack_round(2, 1);  // quorum for round 1: lease granted from its send time
  ASSERT_TRUE(f.node->lease_valid(f.now));
  f.node->take_outbox();

  const auto read = f.node->submit_read(f.now);
  ASSERT_TRUE(read.has_value());
  const auto grants = f.node->take_read_grants();
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_TRUE(grants[0].ok);
  EXPECT_TRUE(grants[0].via_lease);
  EXPECT_TRUE(f.node->take_outbox().empty());  // zero messages
  EXPECT_EQ(f.node->counters().lease_reads, 1u);
}

TEST(RaftReadTest, LeaseExpiresAtAStrictFractionOfTheMinimumTimeout) {
  ReadFixture f;
  f.become_leader();
  const TimePoint sent_at = f.now;  // round 1 was broadcast on becoming leader
  f.ack_round(2, 1);
  // Default ratio 0.75 of the 100 ms minimum timeout, anchored at send time.
  const TimePoint expiry = sent_at + static_cast<Duration>(0.75 * kMin);
  EXPECT_TRUE(f.node->lease_valid(expiry - 1));
  EXPECT_FALSE(f.node->lease_valid(expiry));
  // Past expiry, reads fall back to ReadIndex.
  f.now = expiry;
  ASSERT_TRUE(f.node->submit_read(f.now).has_value());
  EXPECT_TRUE(f.node->take_read_grants().empty());
  EXPECT_EQ(f.node->pending_reads(), 1u);
  EXPECT_EQ(f.node->counters().lease_reads, 0u);
}

TEST(RaftReadTest, LeaseRatioZeroDisablesTheLease) {
  NodeOptions opts;
  opts.lease_ratio = 0;
  ReadFixture f(3, opts);
  f.become_leader();
  f.ack_round(2, 1);
  EXPECT_FALSE(f.node->lease_valid(f.now));
  ASSERT_TRUE(f.node->submit_read(f.now).has_value());
  EXPECT_TRUE(f.node->take_read_grants().empty());  // pending, not lease-served
}

TEST(RaftReadTest, StepDownRejectsPendingReadsAndRevokesTheLease) {
  ReadFixture f;
  f.become_leader();
  f.ack_round(2, 1);
  ASSERT_TRUE(f.node->lease_valid(f.now));
  // Lease is warm, but force a pending read by expiring it first.
  f.now += from_ms(80);
  const auto read = f.node->submit_read(f.now);
  ASSERT_TRUE(read.has_value());
  ASSERT_EQ(f.node->pending_reads(), 1u);
  f.node->take_read_grants();

  // A higher-term heartbeat deposes this leader.
  rpc::AppendEntries ae;
  ae.term = f.node->term() + 1;
  ae.leader_id = 2;
  f.deliver(2, ae);
  ASSERT_EQ(f.node->role(), Role::kFollower);
  const auto grants = f.node->take_read_grants();
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_FALSE(grants[0].ok);
  EXPECT_EQ(grants[0].id, *read);
  EXPECT_FALSE(f.node->lease_valid(f.now));
  EXPECT_EQ(f.node->counters().reads_rejected, 1u);
}

TEST(RaftReadTest, CatchUpAppendsCountTowardTheOpenRound) {
  ReadFixture f;
  f.become_leader();
  // Client entry: the eager replication it triggers carries round 1, so the
  // acks confirm the round without any extra heartbeat.
  ASSERT_TRUE(f.node->submit(std::vector<std::uint8_t>{42}, f.now).has_value());
  rpc::AppendEntriesReply reply;
  reply.term = f.node->term();
  reply.success = true;
  reply.from = 2;
  reply.match_index = 1;
  reply.round = 1;
  f.deliver(2, reply);
  EXPECT_TRUE(f.node->lease_valid(f.now));
  EXPECT_EQ(f.node->commit_index(), 1);
}

// --- vote-recency guard ------------------------------------------------------

TEST(RaftReadTest, VotersRefuseCandidatesWhileTheirLeaderIsFresh) {
  ReadFixture f;
  rpc::AppendEntries ae;
  ae.term = 1;
  ae.leader_id = 2;
  f.deliver(2, ae);  // S2 is a live leader as far as S1 knows
  f.node->take_outbox();

  rpc::RequestVote rv;
  rv.term = 5;
  rv.candidate_id = 3;
  rv.last_log_index = 10;
  rv.last_log_term = 1;
  f.deliver(3, rv);
  const auto out = f.node->take_outbox();
  ASSERT_EQ(out.size(), 1u);
  const auto* reply = std::get_if<rpc::RequestVoteReply>(&out[0].message);
  ASSERT_NE(reply, nullptr);
  EXPECT_FALSE(reply->vote_granted);
  // The refusal must not adopt the disruptive candidate's term either —
  // otherwise the next reply from S1 to its leader would depose it anyway.
  EXPECT_EQ(f.node->term(), 1);
  EXPECT_EQ(f.node->counters().votes_refused_recent_leader, 1u);
}

TEST(RaftReadTest, GuardExpiresWithTheMinimumElectionTimeout) {
  ReadFixture f;
  rpc::AppendEntries ae;
  ae.term = 1;
  ae.leader_id = 2;
  f.deliver(2, ae);
  f.node->take_outbox();

  f.now += kMin;  // the guard window is exactly min_election_timeout
  rpc::RequestVote rv;
  rv.term = 5;
  rv.candidate_id = 3;
  rv.last_log_index = 10;
  rv.last_log_term = 1;
  f.deliver(3, rv);
  const auto out = f.node->take_outbox();
  ASSERT_EQ(out.size(), 1u);
  const auto* reply = std::get_if<rpc::RequestVoteReply>(&out[0].message);
  ASSERT_NE(reply, nullptr);
  EXPECT_TRUE(reply->vote_granted);
  EXPECT_EQ(f.node->term(), 5);
}

TEST(RaftReadTest, LeadershipTransferCampaignsBypassTheGuard) {
  ReadFixture f;
  rpc::AppendEntries ae;
  ae.term = 1;
  ae.leader_id = 2;
  f.deliver(2, ae);
  f.node->take_outbox();

  rpc::RequestVote rv;
  rv.term = 5;
  rv.candidate_id = 3;
  rv.last_log_index = 10;
  rv.last_log_term = 1;
  rv.leadership_transfer = true;  // TimeoutNow-sanctioned campaign
  f.deliver(3, rv);
  const auto out = f.node->take_outbox();
  ASSERT_EQ(out.size(), 1u);
  const auto* reply = std::get_if<rpc::RequestVoteReply>(&out[0].message);
  ASSERT_NE(reply, nullptr);
  EXPECT_TRUE(reply->vote_granted);
}

TEST(RaftReadTest, RestartedNodesRefuseVotesForOneGuardWindow) {
  // A voter that acked a lease-extending round and then crashed remembers
  // nothing; its fresh incarnation must not hand a rival a vote inside the
  // lease it helped establish. Restarting with prior state arms a refusal
  // window of vote_guard_ratio x min_timeout; a genuinely new server (term
  // 0, empty log) has nothing to protect and votes immediately.
  storage::MemoryStateStore store;
  storage::MemoryWal wal;
  rpc::LogEntry e1{.term = 1, .index = 1, .command = {}};
  wal.append(e1);
  DrivenNode restarted(1, {1, 2, 3}, std::make_unique<RaftRandomizedPolicy>(kMin, kMax), store,
                     wal, Rng(7), {}, {e1});
  restarted.start(0);

  rpc::RequestVote rv;
  rv.term = 5;
  rv.candidate_id = 2;
  rv.last_log_index = 9;
  rv.last_log_term = 4;
  restarted.on_message({2, 1, rv}, 0);
  auto out = restarted.take_outbox();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_FALSE(std::get<rpc::RequestVoteReply>(out[0].message).vote_granted);
  EXPECT_EQ(restarted.term(), 0);  // refusal adopts nothing

  // Past the guard window the same request is granted.
  restarted.on_message({2, 1, rv}, kMin);
  out = restarted.take_outbox();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(std::get<rpc::RequestVoteReply>(out[0].message).vote_granted);
}

TEST(RaftReadTest, LeadersRefuseRivalsOutright) {
  ReadFixture f;
  f.become_leader();
  const Term term = f.node->term();
  rpc::RequestVote rv;
  rv.term = term + 10;
  rv.candidate_id = 3;
  rv.last_log_index = 10;
  rv.last_log_term = term;
  f.deliver(3, rv);
  EXPECT_EQ(f.node->role(), Role::kLeader);  // no step-down on a rogue RV
  EXPECT_EQ(f.node->term(), term);
  const auto out = f.node->take_outbox();
  ASSERT_EQ(out.size(), 1u);
  const auto* reply = std::get_if<rpc::RequestVoteReply>(&out[0].message);
  ASSERT_NE(reply, nullptr);
  EXPECT_FALSE(reply->vote_granted);
}

TEST(RaftReadTest, TransferRevokesTheLeaseBeforeInvitingTheRival) {
  ReadFixture f;
  f.become_leader();
  // Catch the target up so the transfer is accepted.
  rpc::AppendEntriesReply reply;
  reply.term = f.node->term();
  reply.success = true;
  reply.from = 2;
  reply.match_index = f.node->log().last_index();
  reply.round = 1;
  f.deliver(2, reply);
  ASSERT_TRUE(f.node->lease_valid(f.now));
  ASSERT_TRUE(f.node->transfer_leadership(2, f.now));
  EXPECT_FALSE(f.node->lease_valid(f.now));
}

TEST(RaftReadTest, InFlightAcksCannotReextendTheLeaseAfterATransfer) {
  // The transfer's rival campaigns with the vote-recency guard waived, so
  // the lease argument is void for the rest of this leadership: an ack that
  // was already in flight when the transfer was sanctioned must not arm the
  // lease afterwards (a one-shot revocation at transfer time would let it).
  ReadFixture f;
  f.become_leader();
  // Catch the target up *without* acknowledging round 1 (round 0 is the
  // no-round sentinel), so round 1 is still unconfirmed — its ack in flight.
  rpc::AppendEntriesReply catch_up;
  catch_up.term = f.node->term();
  catch_up.success = true;
  catch_up.from = 2;
  catch_up.match_index = f.node->log().last_index();
  catch_up.round = 0;
  f.deliver(2, catch_up);
  ASSERT_FALSE(f.node->lease_valid(f.now));
  ASSERT_TRUE(f.node->transfer_leadership(2, f.now));
  f.node->take_outbox();

  // The in-flight ack for round 1 lands after the transfer was sanctioned.
  f.ack_round(2, 1);
  EXPECT_FALSE(f.node->lease_valid(f.now));
  // Reads issued now must take the ReadIndex route, never a dead lease.
  ASSERT_TRUE(f.node->submit_read(f.now).has_value());
  for (const auto& g : f.node->take_read_grants()) EXPECT_FALSE(g.via_lease);
  EXPECT_EQ(f.node->counters().lease_reads, 0u);
}

}  // namespace
}  // namespace escape::raft
