// Serving-layer tests: a real 3-node KvServer cluster on port-0 listeners,
// driven both through KvClient (leader tracking, retries) and through raw
// sockets speaking serve::kv_wire (redirects, session dedup).
#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <future>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "core/escape_policy.h"
#include "rpc/wire.h"
#include "serve/kv_client.h"
#include "serve/kv_server.h"

namespace escape::serve {
namespace {

using namespace std::chrono_literals;

net::PolicyFactory fast_escape() {
  core::EscapeOptions opts;
  opts.base_time = from_ms(300);
  opts.gap = from_ms(150);
  return [opts](ServerId id, std::size_t n) {
    return std::make_unique<core::EscapePolicy>(id, n, opts);
  };
}

/// Three KvServers, every listener on a kernel-assigned port: raft listeners
/// are all bound before any server is constructed, so no port can be stolen
/// between discovery and use.
struct ServingCluster {
  std::vector<std::unique_ptr<KvServer>> servers;
  std::map<ServerId, std::uint16_t> client_ports;

  explicit ServingCluster(std::uint64_t seed = 42) {
    std::map<ServerId, std::uint16_t> endpoints;
    std::map<ServerId, int> raft_fds;
    for (ServerId id = 1; id <= 3; ++id) {
      const auto listener = net::bind_loopback_listener(0);
      endpoints[id] = listener.port;
      raft_fds[id] = listener.fd;
    }
    for (ServerId id = 1; id <= 3; ++id) {
      KvServer::Options options;
      options.node.node.heartbeat_interval = from_ms(60);
      options.node.listen_fd = raft_fds[id];
      options.node.seed = seed + id;
      servers.push_back(std::make_unique<KvServer>(id, endpoints, fast_escape(), options));
    }
    for (auto& server : servers) server->start();
    for (auto& server : servers) client_ports[server->id()] = server->client_port();
  }

  ~ServingCluster() {
    for (auto& server : servers) {
      if (server) server->stop();
    }
  }

  ServerId wait_for_leader(std::chrono::milliseconds timeout = 5000ms) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (std::chrono::steady_clock::now() < deadline) {
      for (const auto& server : servers) {
        if (server && server->node().role() == Role::kLeader) return server->id();
      }
      std::this_thread::sleep_for(10ms);
    }
    return kNoServer;
  }

  ServerId kill_leader() {
    for (auto& server : servers) {
      if (server && server->node().role() == Role::kLeader) {
        const ServerId victim = server->id();
        server->stop();
        server.reset();
        return victim;
      }
    }
    return kNoServer;
  }
};

/// Synchronous submit through KvClient.
std::pair<Status, kv::CommandResult> sync_op(KvClient& client, kv::Command command,
                                             std::chrono::milliseconds timeout = 5000ms) {
  auto promise = std::make_shared<std::promise<std::pair<Status, kv::CommandResult>>>();
  auto future = promise->get_future();
  client.submit(std::move(command), [promise](Status s, const kv::CommandResult& r) {
    promise->set_value({s, r});
  });
  if (future.wait_for(timeout) != std::future_status::ready) {
    return {Status::kTimeout, {}};
  }
  return future.get();
}

kv::Command put(const std::string& key, const std::string& value) {
  kv::Command c;
  c.op = kv::Op::kPut;
  c.key = key;
  c.value = value;
  return c;
}

kv::Command get(const std::string& key) {
  kv::Command c;
  c.op = kv::Op::kGet;
  c.key = key;
  return c;
}

// --- raw-socket client (no KvClient retry machinery in the way) --------------

int connect_blocking(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
      << std::strerror(errno);
  return fd;
}

/// Sends one Request and blocks for its Response (10 s cap).
std::optional<Response> roundtrip(int fd, const Request& request) {
  const auto frame = rpc::frame_payload(encode_request(request));
  std::size_t off = 0;
  while (off < frame.size()) {
    const ssize_t n = ::send(fd, frame.data() + off, frame.size() - off, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return std::nullopt;
    off += static_cast<std::size_t>(n);
  }
  timeval tv{10, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  rpc::FrameReader reader;
  std::vector<std::uint8_t> buf(16 * 1024);
  while (true) {
    if (auto payload = reader.next()) return decode_response(*payload);
    const ssize_t n = ::recv(fd, buf.data(), buf.size(), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return std::nullopt;
    reader.feed(buf.data(), static_cast<std::size_t>(n));
  }
}

// --- tests -------------------------------------------------------------------

TEST(KvServerTest, PutGetRoundtripThroughRealCluster) {
  ServingCluster cluster;
  ASSERT_NE(cluster.wait_for_leader(), kNoServer);

  KvClient client(cluster.client_ports, 10'000);
  client.start();

  auto [put_status, put_result] = sync_op(client, put("alpha", "1"));
  EXPECT_EQ(put_status, Status::kOk);

  auto [get_status, get_result] = sync_op(client, get("alpha"));
  EXPECT_EQ(get_status, Status::kOk);
  EXPECT_TRUE(get_result.ok);
  EXPECT_EQ(get_result.value, "1");

  auto [miss_status, miss_result] = sync_op(client, get("absent"));
  EXPECT_EQ(miss_status, Status::kOk);
  EXPECT_FALSE(miss_result.ok);

  client.stop();
}

TEST(KvServerTest, FollowerAnswersNotLeaderWithHint) {
  ServingCluster cluster;
  const ServerId leader = cluster.wait_for_leader();
  ASSERT_NE(leader, kNoServer);

  ServerId follower = kNoServer;
  for (const auto& [id, port] : cluster.client_ports) {
    if (id != leader) {
      follower = id;
      break;
    }
  }
  ASSERT_NE(follower, kNoServer);

  Request request;
  request.request_id = 1;
  request.command = put("redirected", "x");
  request.command.client_id = 501;
  request.command.sequence = 1;

  // The hint converges once the follower has heard a heartbeat; retry briefly.
  const int fd = connect_blocking(cluster.client_ports[follower]);
  Response last;
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (std::chrono::steady_clock::now() < deadline) {
    const auto response = roundtrip(fd, request);
    ASSERT_TRUE(response.has_value()) << "follower closed the connection";
    last = *response;
    ASSERT_EQ(last.status, Status::kNotLeader);
    if (last.leader_hint == leader) break;
    std::this_thread::sleep_for(50ms);
    ++request.request_id;
  }
  EXPECT_EQ(last.status, Status::kNotLeader);
  EXPECT_EQ(last.leader_hint, leader);
  ::close(fd);
}

TEST(KvServerTest, SessionDedupMakesRetriesExactlyOnce) {
  ServingCluster cluster;
  const ServerId leader = cluster.wait_for_leader();
  ASSERT_NE(leader, kNoServer);

  const int fd = connect_blocking(cluster.client_ports[leader]);

  Request first;
  first.request_id = 1;
  first.command = put("dedup", "original");
  first.command.client_id = 700;
  first.command.sequence = 5;
  const auto r1 = roundtrip(fd, first);
  ASSERT_TRUE(r1.has_value());
  ASSERT_EQ(r1->status, Status::kOk);

  // The same (client_id, sequence) with a DIFFERENT value models a client
  // retry after a lost response: the command must not execute twice, so the
  // store keeps the original value and the cached result is replayed.
  Request retry = first;
  retry.request_id = 2;
  retry.command.value = "replayed-must-not-apply";
  const auto r2 = roundtrip(fd, retry);
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r2->status, Status::kOk);

  Request check;
  check.request_id = 3;
  check.command = get("dedup");
  const auto r3 = roundtrip(fd, check);
  ASSERT_TRUE(r3.has_value());
  ASSERT_EQ(r3->status, Status::kOk);
  EXPECT_TRUE(r3->result.ok);
  EXPECT_EQ(r3->result.value, "original");
  ::close(fd);
}

TEST(KvServerTest, LeaderKillResolvesEveryPendingWrite) {
  ServingCluster cluster;
  ASSERT_NE(cluster.wait_for_leader(), kNoServer);

  KvClient::Options options;
  options.timeout = from_ms(4000);
  KvClient client(cluster.client_ports, 20'000, options);
  client.start();

  // A stream of writes with the leader dying mid-stream: every callback must
  // fire (no request may hang), and the stream must make progress again on
  // the new leader.
  constexpr int kWrites = 120;
  std::atomic<int> done{0};
  std::atomic<int> ok{0};
  for (int i = 0; i < kWrites; ++i) {
    client.submit(put("k" + std::to_string(i % 10), std::to_string(i)),
                  [&](Status s, const kv::CommandResult&) {
                    if (s == Status::kOk) ok.fetch_add(1);
                    done.fetch_add(1);
                  });
    if (i == 30) cluster.kill_leader();
    std::this_thread::sleep_for(2ms);
  }

  const auto deadline = std::chrono::steady_clock::now() + 15s;
  while (done.load() < kWrites && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(10ms);
  }
  EXPECT_EQ(done.load(), kWrites) << "some requests never completed";
  EXPECT_GT(ok.load(), 0);

  // The survivors re-elected; a fresh write must succeed.
  auto [status, result] = sync_op(client, put("after-failover", "yes"), 10000ms);
  EXPECT_EQ(status, Status::kOk);
  auto [get_status, get_result] = sync_op(client, get("after-failover"), 10000ms);
  EXPECT_EQ(get_status, Status::kOk);
  EXPECT_TRUE(get_result.ok);
  EXPECT_EQ(get_result.value, "yes");

  client.stop();
}

}  // namespace
}  // namespace escape::serve
