// Unit tests for the KV state machine: command serde, operations, and
// session-based exactly-once semantics.
#include "kv/kv_store.h"

#include <gtest/gtest.h>

namespace escape::kv {
namespace {

Command cmd(Op op, std::string key, std::string value = "", std::string expected = "",
            std::uint64_t client = 1, std::uint64_t seq = 0) {
  static std::uint64_t auto_seq = 0;
  Command c;
  c.client_id = client;
  c.sequence = seq != 0 ? seq : ++auto_seq;
  c.op = op;
  c.key = std::move(key);
  c.value = std::move(value);
  c.expected = std::move(expected);
  return c;
}

TEST(KvCommandTest, Roundtrip) {
  const auto c = cmd(Op::kCas, "key", "new", "old", 42, 7);
  const auto decoded = decode_command(encode_command(c));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, c);
}

TEST(KvCommandTest, MalformedRejected) {
  EXPECT_FALSE(decode_command({}).has_value());
  EXPECT_FALSE(decode_command({1, 2, 3}).has_value());
  auto bytes = encode_command(cmd(Op::kPut, "k", "v"));
  bytes.pop_back();
  EXPECT_FALSE(decode_command(bytes).has_value());
  bytes.push_back(0);
  bytes.push_back(0);
  EXPECT_FALSE(decode_command(bytes).has_value());
}

TEST(KvCommandTest, InvalidOpRejected) {
  auto c = cmd(Op::kPut, "k", "v");
  auto bytes = encode_command(c);
  bytes[16] = 0x7F;  // op byte follows client_id(8) + sequence(8)
  EXPECT_FALSE(decode_command(bytes).has_value());
}

TEST(KvCommandTest, ResultRoundtrip) {
  CommandResult r{true, "payload"};
  const auto decoded = decode_result(encode_result(r));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, r);
  EXPECT_FALSE(decode_result({0xFF}).has_value());
}

TEST(KvStoreTest, PutGet) {
  KvStore store;
  EXPECT_TRUE(store.execute(cmd(Op::kPut, "a", "1")).ok);
  const auto got = store.execute(cmd(Op::kGet, "a"));
  EXPECT_TRUE(got.ok);
  EXPECT_EQ(got.value, "1");
}

TEST(KvStoreTest, GetMissing) {
  KvStore store;
  const auto got = store.execute(cmd(Op::kGet, "nope"));
  EXPECT_FALSE(got.ok);
  EXPECT_TRUE(got.value.empty());
}

TEST(KvStoreTest, PutReturnsPreviousValue) {
  KvStore store;
  store.execute(cmd(Op::kPut, "a", "1"));
  const auto r = store.execute(cmd(Op::kPut, "a", "2"));
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.value, "1");
  EXPECT_EQ(store.peek("a"), "2");
}

TEST(KvStoreTest, Del) {
  KvStore store;
  store.execute(cmd(Op::kPut, "a", "1"));
  EXPECT_TRUE(store.execute(cmd(Op::kDel, "a")).ok);
  EXPECT_FALSE(store.execute(cmd(Op::kDel, "a")).ok);  // already gone
  EXPECT_FALSE(store.peek("a").has_value());
}

TEST(KvStoreTest, CasSemantics) {
  KvStore store;
  // CAS against absent key uses empty string as current.
  EXPECT_TRUE(store.execute(cmd(Op::kCas, "a", "1", "")).ok);
  // Mismatch fails and reports the current value.
  const auto fail = store.execute(cmd(Op::kCas, "a", "2", "zzz"));
  EXPECT_FALSE(fail.ok);
  EXPECT_EQ(fail.value, "1");
  // Match succeeds.
  EXPECT_TRUE(store.execute(cmd(Op::kCas, "a", "2", "1")).ok);
  EXPECT_EQ(store.peek("a"), "2");
}

TEST(KvStoreTest, SessionDedupReturnsCachedResult) {
  KvStore store;
  // A CAS is not idempotent, which is exactly what dedup must protect.
  auto c = cmd(Op::kCas, "a", "1", "", 9, 100);
  const auto first = store.execute(c);
  EXPECT_TRUE(first.ok);
  const auto replay = store.execute(c);  // committed twice after a failover
  EXPECT_TRUE(replay.ok);                // cached result, not a re-execution
  EXPECT_EQ(store.peek("a"), "1");

  // An older sequence from the same session is also absorbed.
  auto old = cmd(Op::kPut, "a", "999", "", 9, 50);
  store.execute(old);
  EXPECT_EQ(store.peek("a"), "1");
}

TEST(KvStoreTest, SessionsAreIndependent) {
  KvStore store;
  store.execute(cmd(Op::kPut, "a", "1", "", 1, 5));
  // A different client with the same sequence number is not a duplicate.
  const auto r = store.execute(cmd(Op::kPut, "a", "2", "", 2, 5));
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(store.peek("a"), "2");
  EXPECT_EQ(store.session_count(), 2u);
}

TEST(KvStoreTest, ClientZeroBypassesSessions) {
  KvStore store;
  store.execute(cmd(Op::kPut, "a", "1", "", 0, 5));
  store.execute(cmd(Op::kPut, "a", "2", "", 0, 5));  // same seq, still applied
  EXPECT_EQ(store.peek("a"), "2");
  EXPECT_EQ(store.session_count(), 0u);
}

TEST(KvStoreTest, ApplyDecodesEntries) {
  KvStore store;
  rpc::LogEntry entry;
  entry.term = 1;
  entry.index = 1;
  entry.command = encode_command(cmd(Op::kPut, "k", "v"));
  const auto result = decode_result(store.apply(entry));
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok);
  EXPECT_EQ(store.peek("k"), "v");
}

TEST(KvStoreTest, ApplyMalformedEntryIsNoop) {
  KvStore store;
  rpc::LogEntry entry;
  entry.term = 1;
  entry.index = 1;
  entry.command = {0xDE, 0xAD};
  const auto result = decode_result(store.apply(entry));
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->ok);
  EXPECT_EQ(store.size(), 0u);
}

TEST(KvStoreTest, NoopCommand) {
  KvStore store;
  EXPECT_TRUE(store.execute(cmd(Op::kNoop, "")).ok);
  EXPECT_EQ(store.size(), 0u);
}

TEST(KvStoreTest, SnapshotRestoreRoundtrip) {
  KvStore store;
  store.execute(cmd(Op::kPut, "a", "1", "", 9, 100));
  store.execute(cmd(Op::kPut, "b", "2", "", 8, 5));
  store.execute(cmd(Op::kDel, "b", "", "", 8, 6));

  KvStore restored;
  ASSERT_TRUE(restored.restore(store.snapshot()));
  EXPECT_EQ(restored.peek("a"), "1");
  EXPECT_FALSE(restored.peek("b").has_value());
  EXPECT_EQ(restored.size(), store.size());
  EXPECT_EQ(restored.session_count(), 2u);

  // Exactly-once survives the restore: a replayed CAS-style duplicate is
  // absorbed by the restored session table, not re-executed.
  const auto replay = restored.execute(cmd(Op::kPut, "a", "999", "", 9, 100));
  EXPECT_TRUE(replay.ok);  // cached outcome of the original put
  EXPECT_EQ(restored.peek("a"), "1");
  // And the streams stay byte-identical — the determinism the snapshot
  // bench's thread-invariance check leans on.
  EXPECT_EQ(store.snapshot(), restored.snapshot());
}

TEST(KvStoreTest, RestoreEmptySnapshotYieldsEmptyStore) {
  KvStore empty;
  KvStore restored;
  restored.execute(cmd(Op::kPut, "junk", "x"));
  ASSERT_TRUE(restored.restore(empty.snapshot()));
  EXPECT_EQ(restored.size(), 0u);
  EXPECT_EQ(restored.session_count(), 0u);
}

TEST(KvStoreTest, MalformedSnapshotLeavesStateUntouched) {
  KvStore store;
  store.execute(cmd(Op::kPut, "a", "1"));
  EXPECT_FALSE(store.restore({0xBA, 0xD0}));
  auto truncated = store.snapshot();
  truncated.resize(truncated.size() - 1);
  EXPECT_FALSE(store.restore(truncated));
  EXPECT_EQ(store.peek("a"), "1");  // unchanged through both failures
}

}  // namespace
}  // namespace escape::kv
