#include "rpc/wire.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace escape::rpc {
namespace {

Message sample_message() {
  RequestVote rv;
  rv.term = 5;
  rv.candidate_id = 2;
  rv.last_log_index = 3;
  rv.last_log_term = 4;
  rv.conf_clock = 1;
  return rv;
}

TEST(WireTest, FrameRoundtrip) {
  const auto framed = frame_message(sample_message());
  FrameReader reader;
  reader.feed(framed.data(), framed.size());
  const auto payload = reader.next();
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(decode_message(*payload), sample_message());
  EXPECT_FALSE(reader.next().has_value());
}

TEST(WireTest, ByteAtATimeDelivery) {
  const auto framed = frame_message(sample_message());
  FrameReader reader;
  for (std::size_t i = 0; i + 1 < framed.size(); ++i) {
    reader.feed(&framed[i], 1);
    EXPECT_FALSE(reader.next().has_value()) << "completed early at byte " << i;
  }
  reader.feed(&framed.back(), 1);
  ASSERT_TRUE(reader.next().has_value());
}

TEST(WireTest, MultipleFramesInOneChunk) {
  auto all = frame_message(sample_message());
  const auto second = frame_message(sample_message());
  all.insert(all.end(), second.begin(), second.end());
  FrameReader reader;
  reader.feed(all.data(), all.size());
  EXPECT_TRUE(reader.next().has_value());
  EXPECT_TRUE(reader.next().has_value());
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(WireTest, BadMagicThrows) {
  auto framed = frame_message(sample_message());
  framed[0] ^= 0xFF;
  FrameReader reader;
  reader.feed(framed.data(), framed.size());
  EXPECT_THROW(reader.next(), DecodeError);
}

TEST(WireTest, BadVersionThrows) {
  auto framed = frame_message(sample_message());
  framed[2] = 0x7E;
  FrameReader reader;
  reader.feed(framed.data(), framed.size());
  EXPECT_THROW(reader.next(), DecodeError);
}

TEST(WireTest, NonzeroFlagsThrow) {
  auto framed = frame_message(sample_message());
  framed[3] = 0x01;
  FrameReader reader;
  reader.feed(framed.data(), framed.size());
  EXPECT_THROW(reader.next(), DecodeError);
}

TEST(WireTest, CorruptPayloadFailsCrc) {
  auto framed = frame_message(sample_message());
  framed.back() ^= 0x01;  // flip a payload byte
  FrameReader reader;
  reader.feed(framed.data(), framed.size());
  EXPECT_THROW(reader.next(), DecodeError);
}

TEST(WireTest, HugeLengthRejectedBeforeBuffering) {
  Encoder e;
  e.u16(kWireMagic);
  e.u8(kWireVersion);
  e.u8(0);
  e.u32(kMaxFrameBytes + 1);
  e.u32(0);
  FrameReader reader;
  reader.feed(e.data().data(), e.size());
  EXPECT_THROW(reader.next(), DecodeError);
}

TEST(WireTest, OversizedPayloadRefusedAtFraming) {
  std::vector<std::uint8_t> big(kMaxFrameBytes + 1, 0);
  EXPECT_THROW(frame_payload(big), DecodeError);
}

TEST(WireTest, RandomChunkingSweep) {
  Rng rng(2024);
  std::vector<std::uint8_t> stream;
  const int frames = 20;
  for (int i = 0; i < frames; ++i) {
    const auto f = frame_message(sample_message());
    stream.insert(stream.end(), f.begin(), f.end());
  }
  FrameReader reader;
  int decoded = 0;
  std::size_t pos = 0;
  while (pos < stream.size()) {
    const auto chunk = static_cast<std::size_t>(rng.uniform_int(1, 37));
    const auto len = std::min(chunk, stream.size() - pos);
    reader.feed(stream.data() + pos, len);
    pos += len;
    while (reader.next().has_value()) ++decoded;
  }
  EXPECT_EQ(decoded, frames);
}

}  // namespace
}  // namespace escape::rpc
