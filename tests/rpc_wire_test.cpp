#include "rpc/wire.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace escape::rpc {
namespace {

Message sample_message() {
  RequestVote rv;
  rv.term = 5;
  rv.candidate_id = 2;
  rv.last_log_index = 3;
  rv.last_log_term = 4;
  rv.conf_clock = 1;
  return rv;
}

TEST(WireTest, FrameRoundtrip) {
  const auto framed = frame_message(sample_message());
  FrameReader reader;
  reader.feed(framed.data(), framed.size());
  const auto payload = reader.next();
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(decode_message(*payload), sample_message());
  EXPECT_FALSE(reader.next().has_value());
}

TEST(WireTest, ByteAtATimeDelivery) {
  const auto framed = frame_message(sample_message());
  FrameReader reader;
  for (std::size_t i = 0; i + 1 < framed.size(); ++i) {
    reader.feed(&framed[i], 1);
    EXPECT_FALSE(reader.next().has_value()) << "completed early at byte " << i;
  }
  reader.feed(&framed.back(), 1);
  ASSERT_TRUE(reader.next().has_value());
}

TEST(WireTest, MultipleFramesInOneChunk) {
  auto all = frame_message(sample_message());
  const auto second = frame_message(sample_message());
  all.insert(all.end(), second.begin(), second.end());
  FrameReader reader;
  reader.feed(all.data(), all.size());
  EXPECT_TRUE(reader.next().has_value());
  EXPECT_TRUE(reader.next().has_value());
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(WireTest, BadMagicThrows) {
  auto framed = frame_message(sample_message());
  framed[0] ^= 0xFF;
  FrameReader reader;
  reader.feed(framed.data(), framed.size());
  EXPECT_THROW(reader.next(), DecodeError);
}

TEST(WireTest, BadVersionThrows) {
  auto framed = frame_message(sample_message());
  framed[2] = 0x7E;
  FrameReader reader;
  reader.feed(framed.data(), framed.size());
  EXPECT_THROW(reader.next(), DecodeError);
}

TEST(WireTest, NonzeroFlagsThrow) {
  auto framed = frame_message(sample_message());
  framed[3] = 0x01;
  FrameReader reader;
  reader.feed(framed.data(), framed.size());
  EXPECT_THROW(reader.next(), DecodeError);
}

TEST(WireTest, CorruptPayloadFailsCrc) {
  auto framed = frame_message(sample_message());
  framed.back() ^= 0x01;  // flip a payload byte
  FrameReader reader;
  reader.feed(framed.data(), framed.size());
  EXPECT_THROW(reader.next(), DecodeError);
}

TEST(WireTest, HugeLengthRejectedBeforeBuffering) {
  Encoder e;
  e.u16(kWireMagic);
  e.u8(kWireVersion);
  e.u8(0);
  e.u32(kMaxFrameBytes + 1);
  e.u32(0);
  FrameReader reader;
  reader.feed(e.data().data(), e.size());
  EXPECT_THROW(reader.next(), DecodeError);
}

TEST(WireTest, OversizedPayloadRefusedAtFraming) {
  std::vector<std::uint8_t> big(kMaxFrameBytes + 1, 0);
  EXPECT_THROW(frame_payload(big), DecodeError);
}

TEST(WireTest, BatchedAppendEntriesRoundtrip) {
  // The pipelined leader ships multi-entry batches; the whole batch — entry
  // payloads, the piggybacked configuration, commit index — must survive the
  // wire byte-for-byte.
  AppendEntries ae;
  ae.term = 7;
  ae.leader_id = 3;
  ae.prev_log_index = 41;
  ae.prev_log_term = 6;
  ae.leader_commit = 40;
  for (LogIndex i = 42; i < 42 + 64; ++i) {
    LogEntry e;
    e.term = 7;
    e.index = i;
    e.command.assign(static_cast<std::size_t>(i % 13), static_cast<std::uint8_t>(i));
    ae.entries.push_back(std::move(e));
  }
  Configuration cfg;
  cfg.timer_period = from_ms(150);
  cfg.priority = 2;
  cfg.conf_clock = 3;
  ae.new_config = cfg;

  const auto framed = frame_message(ae);
  FrameReader reader;
  reader.feed(framed.data(), framed.size());
  const auto payload = reader.next();
  ASSERT_TRUE(payload.has_value());
  const auto decoded = decode_message(*payload);
  ASSERT_TRUE(std::holds_alternative<AppendEntries>(decoded));
  EXPECT_EQ(std::get<AppendEntries>(decoded), ae);
}

TEST(WireTest, ConflictHintReplyRoundtrip) {
  // A NACK's conflict hints drive the leader's probe backtracking; losing or
  // reordering them on the wire would turn one-RTT conflict resolution back
  // into a per-index walk.
  AppendEntriesReply nack;
  nack.term = 7;
  nack.success = false;
  nack.from = 4;
  nack.match_index = 0;
  nack.conflict_index = 17;
  nack.conflict_term = 5;
  nack.status.log_index = 16;
  nack.status.conf_clock = 3;

  const auto framed = frame_message(nack);
  FrameReader reader;
  reader.feed(framed.data(), framed.size());
  const auto payload = reader.next();
  ASSERT_TRUE(payload.has_value());
  const auto decoded = decode_message(*payload);
  ASSERT_TRUE(std::holds_alternative<AppendEntriesReply>(decoded));
  EXPECT_EQ(std::get<AppendEntriesReply>(decoded), nack);
}

TEST(WireTest, MaxBudgetBatchFitsInOneFrame) {
  // NodeOptions::max_bytes_per_msg defaults to 1 MiB, far under the 16 MiB
  // frame cap — a budget-maximal batch must frame without tripping the wire
  // limit (the two bounds are independent knobs, this pins their ordering).
  AppendEntries ae;
  ae.term = 2;
  ae.leader_id = 1;
  ae.prev_log_index = 0;
  ae.prev_log_term = 0;
  ae.leader_commit = 0;
  std::size_t budget = 1u << 20;
  LogIndex next = 1;
  while (budget > (4u << 10)) {
    LogEntry e;
    e.term = 2;
    e.index = next++;
    e.command.assign(4u << 10, 0xA5);
    budget -= e.command.size();
    ae.entries.push_back(std::move(e));
  }
  const auto framed = frame_message(ae);
  EXPECT_LT(framed.size(), kMaxFrameBytes);
  FrameReader reader;
  reader.feed(framed.data(), framed.size());
  const auto payload = reader.next();
  ASSERT_TRUE(payload.has_value());
  const auto decoded = decode_message(*payload);
  ASSERT_TRUE(std::holds_alternative<AppendEntries>(decoded));
  EXPECT_EQ(std::get<AppendEntries>(decoded), ae);
}

TEST(WireTest, RandomChunkingSweep) {
  Rng rng(2024);
  std::vector<std::uint8_t> stream;
  const int frames = 20;
  for (int i = 0; i < frames; ++i) {
    const auto f = frame_message(sample_message());
    stream.insert(stream.end(), f.begin(), f.end());
  }
  FrameReader reader;
  int decoded = 0;
  std::size_t pos = 0;
  while (pos < stream.size()) {
    const auto chunk = static_cast<std::size_t>(rng.uniform_int(1, 37));
    const auto len = std::min(chunk, stream.size() - pos);
    reader.feed(stream.data() + pos, len);
    pos += len;
    while (reader.next().has_value()) ++decoded;
  }
  EXPECT_EQ(decoded, frames);
}

}  // namespace
}  // namespace escape::rpc
