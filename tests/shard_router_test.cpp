// Tests for the consistent-hash shard router: determinism, balance, and the
// ring construction contract.
#include <gtest/gtest.h>

#include "shard/router.h"

namespace escape::shard {
namespace {

TEST(ShardRouterTest, HashIsTheFnv1aReference) {
  // FNV-1a 64-bit published test vectors; routing must never depend on an
  // implementation-defined std::hash.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST(ShardRouterTest, RejectsDegenerateOptions) {
  EXPECT_THROW(ShardRouter({0, 64}), std::invalid_argument);
  EXPECT_THROW(ShardRouter({4, 0}), std::invalid_argument);
}

TEST(ShardRouterTest, SingleShardOwnsEverything) {
  ShardRouter router({1, 8});
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(router.shard_of("key-" + std::to_string(i)), 0u);
  }
}

TEST(ShardRouterTest, MappingIsDeterministicAcrossInstances) {
  ShardRouter a({4, 64});
  ShardRouter b({4, 64});
  EXPECT_EQ(a.ring_size(), 4u * 64u);
  for (int i = 0; i < 500; ++i) {
    const std::string key = "user:" + std::to_string(i * 37);
    EXPECT_EQ(a.shard_of(key), b.shard_of(key));
    EXPECT_LT(a.shard_of(key), 4u);
  }
}

TEST(ShardRouterTest, VnodesSpreadKeysAcrossAllShards) {
  ShardRouter router({4, 64});
  const auto shares = router.key_shares();
  ASSERT_EQ(shares.size(), 4u);
  double total = 0.0;
  for (const double share : shares) {
    // With 64 vnodes per shard the max/min spread stays well inside 2x of
    // the fair 0.25 share.
    EXPECT_GT(share, 0.10);
    EXPECT_LT(share, 0.45);
    total += share;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ShardRouterTest, GrowingTheRingMovesOnlyAFractionOfKeys) {
  // The consistent-hashing contract: adding shards must not reshuffle the
  // world. Going 4 -> 5 shards should move roughly 1/5 of keys, not ~all of
  // them as a modulo router would.
  ShardRouter before({4, 64});
  ShardRouter after({5, 64});
  int moved = 0;
  const int keys = 2000;
  for (int i = 0; i < keys; ++i) {
    const std::string key = "stable-key-" + std::to_string(i);
    if (before.shard_of(key) != after.shard_of(key)) ++moved;
  }
  EXPECT_LT(moved, keys / 2);  // far below a full reshuffle
  EXPECT_GT(moved, 0);         // some keys must land on the new shard
}

}  // namespace
}  // namespace escape::shard
