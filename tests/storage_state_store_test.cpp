#include "storage/state_store.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace escape::storage {
namespace {

PersistentState sample_state() {
  PersistentState s;
  s.current_term = 17;
  s.voted_for = 3;
  s.config.priority = 5;
  s.config.timer_period = from_ms(2100);
  s.config.conf_clock = 44;
  return s;
}

TEST(MemoryStateStoreTest, LoadBeforeSaveIsEmpty) {
  MemoryStateStore store;
  EXPECT_FALSE(store.load().has_value());
}

TEST(MemoryStateStoreTest, SaveLoadRoundtrip) {
  MemoryStateStore store;
  store.save(sample_state());
  const auto loaded = store.load();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, sample_state());
  EXPECT_EQ(store.save_count(), 1u);
}

TEST(MemoryStateStoreTest, OverwriteKeepsLatest) {
  MemoryStateStore store;
  store.save(sample_state());
  auto s2 = sample_state();
  s2.current_term = 99;
  store.save(s2);
  EXPECT_EQ(store.load()->current_term, 99);
  EXPECT_EQ(store.save_count(), 2u);
}

class FileStateStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("escape_state_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const { return (dir_ / name).string(); }
  std::filesystem::path dir_;
};

TEST_F(FileStateStoreTest, MissingFileLoadsEmpty) {
  FileStateStore store(path("state"));
  EXPECT_FALSE(store.load().has_value());
}

TEST_F(FileStateStoreTest, SaveLoadRoundtrip) {
  FileStateStore store(path("state"));
  store.save(sample_state());
  const auto loaded = store.load();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, sample_state());
}

TEST_F(FileStateStoreTest, SurvivesReopen) {
  {
    FileStateStore store(path("state"));
    store.save(sample_state());
  }
  FileStateStore reopened(path("state"));
  ASSERT_TRUE(reopened.load().has_value());
  EXPECT_EQ(*reopened.load(), sample_state());
}

TEST_F(FileStateStoreTest, CorruptFileTreatedAsAbsent) {
  FileStateStore store(path("state"));
  store.save(sample_state());
  {
    std::ofstream f(path("state"), std::ios::binary | std::ios::trunc);
    f << "garbage!";
  }
  EXPECT_FALSE(store.load().has_value());
}

TEST_F(FileStateStoreTest, FlippedByteDetectedByCrc) {
  FileStateStore store(path("state"));
  store.save(sample_state());
  // Flip one byte in the middle of the file.
  std::fstream f(path("state"), std::ios::binary | std::ios::in | std::ios::out);
  f.seekg(0, std::ios::end);
  const auto size = static_cast<long>(f.tellg());
  ASSERT_GT(size, 8);
  f.seekp(size / 2);
  char b;
  f.seekg(size / 2);
  f.read(&b, 1);
  b = static_cast<char>(b ^ 0x40);
  f.seekp(size / 2);
  f.write(&b, 1);
  f.close();
  EXPECT_FALSE(store.load().has_value());
}

TEST_F(FileStateStoreTest, RepeatedSavesKeepLatest) {
  FileStateStore store(path("state"));
  for (Term t = 1; t <= 20; ++t) {
    auto s = sample_state();
    s.current_term = t;
    store.save(s);
  }
  EXPECT_EQ(store.load()->current_term, 20);
}

}  // namespace
}  // namespace escape::storage
