// End-to-end replication tests through the KvCluster client: commits,
// failover continuity, exactly-once semantics, catch-up, and WAL recovery.
#include <gtest/gtest.h>

#include "kv/kv_cluster.h"
#include "test_cluster_util.h"

namespace escape {
namespace {

using kv::KvCluster;
using sim::InvariantChecker;
using sim::SimCluster;
using testutil::paper_escape_cluster;

TEST(ReplicationTest, PutGetRoundtrip) {
  SimCluster cluster(paper_escape_cluster(5, 3));
  KvCluster kv(cluster);
  ASSERT_NE(sim::bootstrap(cluster), kNoServer);

  const auto put = kv.put("alpha", "1");
  ASSERT_TRUE(put.has_value());
  EXPECT_TRUE(put->ok);
  const auto got = kv.get("alpha");
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->ok);
  EXPECT_EQ(got->value, "1");
}

TEST(ReplicationTest, AllReplicasConverge) {
  SimCluster cluster(paper_escape_cluster(5, 5));
  KvCluster kv(cluster);
  InvariantChecker inv(cluster);
  ASSERT_NE(sim::bootstrap(cluster), kNoServer);

  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(kv.put("k" + std::to_string(i), std::to_string(i)).has_value());
  }
  const LogIndex target = cluster.node(cluster.leader()).commit_index();
  ASSERT_TRUE(cluster.run_until_applied(target, cluster.loop().now() + from_ms(30'000)));

  for (ServerId id : cluster.members()) {
    for (int i = 0; i < 10; ++i) {
      EXPECT_EQ(kv.store(id).peek("k" + std::to_string(i)), std::to_string(i))
          << server_name(id);
    }
  }
  inv.deep_check();
  EXPECT_TRUE(inv.ok()) << inv.violations().front();
}

TEST(ReplicationTest, WritesSurviveLeaderFailover) {
  SimCluster cluster(paper_escape_cluster(5, 7));
  KvCluster kv(cluster);
  InvariantChecker inv(cluster);
  ASSERT_NE(sim::bootstrap(cluster), kNoServer);

  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(kv.put("pre" + std::to_string(i), "x").has_value());
  }
  cluster.crash(cluster.leader());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(kv.put("post" + std::to_string(i), "y").has_value());
  }
  // Every committed write, before and after the crash, is visible.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(kv.get("pre" + std::to_string(i))->value, "x");
    EXPECT_EQ(kv.get("post" + std::to_string(i))->value, "y");
  }
  EXPECT_TRUE(inv.ok()) << inv.violations().front();
}

TEST(ReplicationTest, DuplicateCommitAppliedOnce) {
  // Force the same command (same session/sequence) into the log twice; the
  // state machine must execute it exactly once. CAS is the canary: a second
  // execution would fail and flip the cached result.
  SimCluster cluster(paper_escape_cluster(3, 9));
  KvCluster kv(cluster);
  ASSERT_NE(sim::bootstrap(cluster), kNoServer);

  kv::Command c;
  c.client_id = 77;
  c.sequence = 1;
  c.op = kv::Op::kCas;
  c.key = "ctr";
  c.expected = "";
  c.value = "1";
  const auto bytes = encode_command(c);

  const ServerId leader = cluster.leader();
  ASSERT_TRUE(cluster.node(leader).submit(bytes, cluster.loop().now()).has_value());
  ASSERT_TRUE(cluster.node(leader).submit(bytes, cluster.loop().now()).has_value());
  cluster.pump(leader);
  const LogIndex target = cluster.node(leader).log().last_index();
  ASSERT_TRUE(cluster.run_until_applied(target, cluster.loop().now() + from_ms(30'000)));

  for (ServerId id : cluster.members()) {
    EXPECT_EQ(kv.store(id).peek("ctr"), "1") << server_name(id);
  }
}

TEST(ReplicationTest, LaggingFollowerCatchesUp) {
  SimCluster cluster(paper_escape_cluster(5, 11));
  KvCluster kv(cluster);
  InvariantChecker inv(cluster);
  ASSERT_NE(sim::bootstrap(cluster), kNoServer);

  // Partition a follower, commit traffic without it.
  ServerId lagger = kNoServer;
  for (ServerId id : cluster.members()) {
    if (id != cluster.leader()) {
      lagger = id;
      break;
    }
  }
  cluster.network().isolate(lagger);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(kv.put("k" + std::to_string(i), "v").has_value());
  }
  const LogIndex target = cluster.node(cluster.leader()).commit_index();
  EXPECT_LT(cluster.node(lagger).commit_index(), target);

  cluster.network().heal(lagger);
  ASSERT_TRUE(cluster.run_until_applied(target, cluster.loop().now() + from_ms(30'000)));
  EXPECT_GE(cluster.node(lagger).commit_index(), target);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(kv.store(lagger).peek("k" + std::to_string(i)), "v");
  }
  inv.deep_check();
  EXPECT_TRUE(inv.ok()) << inv.violations().front();
}

TEST(ReplicationTest, CrashRecoveryReplaysWal) {
  SimCluster cluster(paper_escape_cluster(5, 13));
  KvCluster kv(cluster);
  InvariantChecker inv(cluster);
  ASSERT_NE(sim::bootstrap(cluster), kNoServer);

  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(kv.put("k" + std::to_string(i), "v" + std::to_string(i)).has_value());
  }
  // Crash a follower that already holds the entries.
  ServerId victim = kNoServer;
  for (ServerId id : cluster.members()) {
    if (id != cluster.leader()) {
      victim = id;
      break;
    }
  }
  const LogIndex before = cluster.node(victim).log().last_index();
  EXPECT_GT(before, 0);
  cluster.crash(victim);
  ASSERT_TRUE(kv.put("during", "crash").has_value());

  cluster.recover(victim);
  // Recovery rebuilds the log from the durable WAL…
  EXPECT_GE(cluster.node(victim).log().last_index(), before);
  // …and the node then catches up with entries committed while it was down.
  const LogIndex target = cluster.node(cluster.leader()).commit_index();
  ASSERT_TRUE(cluster.run_until_applied(target, cluster.loop().now() + from_ms(30'000)));
  EXPECT_EQ(kv.store(victim).peek("during"), "crash");
  inv.deep_check();
  EXPECT_TRUE(inv.ok()) << inv.violations().front();
}

TEST(ReplicationTest, CasChainsAreLinear) {
  SimCluster cluster(paper_escape_cluster(3, 15));
  KvCluster kv(cluster);
  ASSERT_NE(sim::bootstrap(cluster), kNoServer);

  ASSERT_TRUE(kv.cas("x", "", "1")->ok);
  ASSERT_FALSE(kv.cas("x", "0", "2")->ok);  // wrong witness
  ASSERT_TRUE(kv.cas("x", "1", "2")->ok);
  ASSERT_TRUE(kv.del("x")->ok);
  ASSERT_FALSE(kv.get("x")->ok);
}

TEST(ReplicationTest, CommitsContinueUnderModerateLoss) {
  auto options = paper_escape_cluster(5, 17);
  options.network.broadcast_omission = 0.2;
  SimCluster cluster(options);
  KvCluster kv(cluster);
  InvariantChecker inv(cluster, /*check_configs=*/false);
  ASSERT_NE(sim::bootstrap(cluster), kNoServer);

  for (int i = 0; i < 5; ++i) {
    const auto r = kv.put("k" + std::to_string(i), "v", from_ms(120'000));
    ASSERT_TRUE(r.has_value()) << "write " << i << " failed under loss";
  }
  EXPECT_TRUE(inv.ok()) << inv.violations().front();
}

}  // namespace
}  // namespace escape
