// Snapshot/compaction unit tests of the consensus core: a RaftNode driven by
// hand-crafted messages, no simulator. Covers the leader's snapshot-or-
// entries decision, follower install (fresh, stale, and racing a leader
// change mid-transfer), compact-to-last-applied-then-restart recovery, and
// the ESCAPE confClock surviving a restore through the snapshot alone.
#include <gtest/gtest.h>

#include "core/configuration.h"
#include "core/escape_policy.h"
#include "raft/raft_node.h"

#include "test_node_harness.h"
#include "storage/snapshot_store.h"
#include "storage/state_store.h"
#include "storage/wal.h"

namespace escape::raft {
namespace {

constexpr Duration kMin = from_ms(100);
constexpr Duration kMax = from_ms(100);  // deterministic timeout for unit tests

std::vector<std::uint8_t> bytes(std::initializer_list<std::uint8_t> b) { return b; }

struct SnapFixture {
  explicit SnapFixture(ServerId id = 1, std::size_t n = 3,
                       std::unique_ptr<ElectionPolicy> policy = nullptr) {
    std::vector<ServerId> members;
    for (ServerId s = 1; s <= n; ++s) members.push_back(s);
    if (!policy) policy = std::make_unique<RaftRandomizedPolicy>(kMin, kMax);
    node = std::make_unique<DrivenNode>(id, members, std::move(policy), store, wal, Rng(7),
                                      NodeOptions{}, wal.entries(), &snaps);
  }

  void expire_election_timer() {
    now += kMax + 1;
    node->on_tick(now);
  }

  void deliver(ServerId from, rpc::Message m) {
    node->on_message({from, node->id(), std::move(m)}, now);
  }

  /// Elects this node leader of its 3-node cluster (vote from S2).
  void become_leader() {
    node->start(now);
    expire_election_timer();
    node->take_outbox();
    rpc::RequestVoteReply reply;
    reply.term = node->term();
    reply.vote_granted = true;
    reply.voter_id = 2;
    deliver(2, reply);
    ASSERT_EQ(node->role(), Role::kLeader);
  }

  /// Submits `count` commands and commits them via success replies from S2.
  void submit_and_commit(std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) {
      ASSERT_TRUE(node->submit({static_cast<std::uint8_t>(i)}, now).has_value());
    }
    node->take_outbox();
    rpc::AppendEntriesReply ok;
    ok.term = node->term();
    ok.success = true;
    ok.from = 2;
    ok.match_index = node->log().last_index();
    deliver(2, ok);
    ASSERT_EQ(node->commit_index(), node->log().last_index());
    node->take_committed();
  }

  rpc::InstallSnapshot make_snapshot_msg(Term term, LogIndex last, Term last_term,
                                         ServerId leader = 2) {
    rpc::InstallSnapshot is;
    is.term = term;
    is.leader_id = leader;
    is.last_included_index = last;
    is.last_included_term = last_term;
    is.state = bytes({0xAB, 0xCD});
    return is;
  }

  storage::MemoryStateStore store;
  storage::MemoryWal wal;
  storage::MemorySnapshotStore snaps;
  std::unique_ptr<DrivenNode> node;
  TimePoint now = 0;
};

TEST(RaftSnapshotTest, CompactRequiresStoreAndAppliedEntries) {
  storage::MemoryStateStore store;
  storage::MemoryWal wal;
  DrivenNode bare(1, {1, 2, 3}, std::make_unique<RaftRandomizedPolicy>(kMin, kMax), store, wal,
                Rng(7));
  bare.start(0);
  // No snapshot store: compaction is disabled.
  EXPECT_FALSE(bare.compact(5, {}, 0).has_value());

  SnapFixture f;
  f.become_leader();
  // Nothing applied yet: nothing to compact.
  EXPECT_FALSE(f.node->compact(5, {}, f.now).has_value());
}

TEST(RaftSnapshotTest, CompactClampsToLastAppliedAndPersists) {
  SnapFixture f;
  f.become_leader();
  f.submit_and_commit(6);
  const auto compacted = f.node->compact(100, bytes({1, 2, 3}), f.now);
  ASSERT_TRUE(compacted.has_value());
  EXPECT_EQ(*compacted, f.node->last_applied());
  EXPECT_EQ(f.node->log().base(), *compacted);
  EXPECT_EQ(f.wal.base(), *compacted);
  const auto snap = f.snaps.load();
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->last_included_index, *compacted);
  EXPECT_EQ(snap->last_included_term, f.node->log().base_term());
  EXPECT_EQ(snap->state, bytes({1, 2, 3}));
  // Re-compacting at the same point is a no-op.
  EXPECT_FALSE(f.node->compact(100, {}, f.now).has_value());
}

TEST(RaftSnapshotTest, LeaderShipsSnapshotWhenFollowerFallsBelowHorizon) {
  SnapFixture f;
  f.become_leader();
  f.submit_and_commit(6);
  ASSERT_TRUE(f.node->compact(4, bytes({9}), f.now).has_value());

  // S3 reports a log far behind the compaction horizon.
  rpc::AppendEntriesReply behind;
  behind.term = f.node->term();
  behind.success = false;
  behind.from = 3;
  behind.conflict_index = 1;
  behind.conflict_term = 0;
  f.deliver(3, behind);

  const auto out = f.node->take_outbox();
  ASSERT_EQ(out.size(), 1u);
  ASSERT_TRUE(std::holds_alternative<rpc::InstallSnapshot>(out[0].message));
  const auto& is = std::get<rpc::InstallSnapshot>(out[0].message);
  EXPECT_EQ(out[0].to, 3u);
  EXPECT_EQ(is.last_included_index, 4);
  EXPECT_EQ(is.state, bytes({9}));
  EXPECT_EQ(f.node->counters().install_snapshots_sent, 1u);

  // The follower's reply advances next_index past the snapshot; the
  // remaining suffix then goes out as ordinary AppendEntries.
  rpc::InstallSnapshotReply done;
  done.term = f.node->term();
  done.from = 3;
  done.success = true;
  done.match_index = 4;
  f.deliver(3, done);
  const auto after = f.node->take_outbox();
  ASSERT_EQ(after.size(), 1u);
  ASSERT_TRUE(std::holds_alternative<rpc::AppendEntries>(after[0].message));
  const auto& ae = std::get<rpc::AppendEntries>(after[0].message);
  EXPECT_EQ(ae.prev_log_index, 4);
  ASSERT_FALSE(ae.entries.empty());
  EXPECT_EQ(ae.entries.front().index, 5);
}

TEST(RaftSnapshotTest, FollowerInstallsAndResumesReplication) {
  SnapFixture f(2);
  f.node->start(0);

  auto is = f.make_snapshot_msg(/*term=*/1, /*last=*/5, /*last_term=*/1);
  f.deliver(2, is);

  EXPECT_EQ(f.node->log().base(), 5);
  EXPECT_EQ(f.node->log().base_term(), 1);
  EXPECT_EQ(f.node->commit_index(), 5);
  EXPECT_EQ(f.node->last_applied(), 5);
  EXPECT_EQ(f.node->counters().snapshots_installed, 1u);
  const auto installed = f.node->take_installed_snapshot();
  ASSERT_TRUE(installed.has_value());
  EXPECT_EQ(installed->state, bytes({0xAB, 0xCD}));
  EXPECT_FALSE(f.node->take_installed_snapshot().has_value());  // drained
  ASSERT_TRUE(f.snaps.load().has_value());

  auto out = f.node->take_outbox();
  ASSERT_EQ(out.size(), 1u);
  const auto& reply = std::get<rpc::InstallSnapshotReply>(out[0].message);
  EXPECT_TRUE(reply.success);
  EXPECT_EQ(reply.match_index, 5);

  // Replication resumes right after the boundary.
  rpc::AppendEntries ae;
  ae.term = 1;
  ae.leader_id = 2;
  ae.prev_log_index = 5;
  ae.prev_log_term = 1;
  rpc::LogEntry e;
  e.term = 1;
  e.index = 6;
  e.command = {42};
  ae.entries.push_back(e);
  ae.leader_commit = 6;
  f.deliver(2, ae);
  EXPECT_EQ(f.node->log().last_index(), 6);
  EXPECT_EQ(f.node->commit_index(), 6);
  const auto committed = f.node->take_committed();
  ASSERT_EQ(committed.size(), 1u);
  EXPECT_EQ(committed[0].index, 6);
}

TEST(RaftSnapshotTest, StaleSnapshotNeverRegressesCommit) {
  SnapFixture f(2);
  f.node->start(0);
  f.deliver(2, f.make_snapshot_msg(1, 8, 1));
  f.node->take_installed_snapshot();

  // A duplicate/older snapshot (leader retransmission) must not reinstall or
  // roll anything back — the reply reports how far we actually are.
  f.node->take_outbox();
  f.deliver(2, f.make_snapshot_msg(1, 5, 1));
  EXPECT_EQ(f.node->commit_index(), 8);
  EXPECT_EQ(f.node->counters().snapshots_installed, 1u);
  EXPECT_FALSE(f.node->take_installed_snapshot().has_value());
  const auto out = f.node->take_outbox();
  ASSERT_EQ(out.size(), 1u);
  const auto& reply = std::get<rpc::InstallSnapshotReply>(out[0].message);
  EXPECT_TRUE(reply.success);
  EXPECT_EQ(reply.match_index, 8);
}

TEST(RaftSnapshotTest, InstallRacingLeaderChangeMidTransfer) {
  // The in-flight snapshot of a deposed leader arrives after the follower
  // has already heard from the new term: it must be rejected outright, and
  // the new leader's own snapshot must still install cleanly afterwards.
  SnapFixture f(2);
  f.node->start(0);

  rpc::AppendEntries hb;  // new leader S3 announces term 5
  hb.term = 5;
  hb.leader_id = 3;
  f.deliver(3, hb);
  ASSERT_EQ(f.node->term(), 5);
  f.node->take_outbox();

  f.deliver(2, f.make_snapshot_msg(/*term=*/2, /*last=*/9, /*last_term=*/2));  // stale
  EXPECT_EQ(f.node->log().base(), 0);
  EXPECT_EQ(f.node->commit_index(), 0);
  EXPECT_EQ(f.node->counters().snapshots_installed, 0u);
  {
    const auto out = f.node->take_outbox();
    ASSERT_EQ(out.size(), 1u);
    const auto& reply = std::get<rpc::InstallSnapshotReply>(out[0].message);
    EXPECT_FALSE(reply.success);
    EXPECT_EQ(reply.term, 5);
  }

  f.deliver(3, f.make_snapshot_msg(/*term=*/5, /*last=*/7, /*last_term=*/4, /*leader=*/3));
  EXPECT_EQ(f.node->log().base(), 7);
  EXPECT_EQ(f.node->commit_index(), 7);
  EXPECT_EQ(f.node->counters().snapshots_installed, 1u);
}

TEST(RaftSnapshotTest, CompactToLastAppliedThenRestart) {
  SnapFixture f;
  f.become_leader();
  f.submit_and_commit(5);
  const Term term = f.node->term();
  ASSERT_TRUE(f.node->compact(f.node->last_applied(), bytes({7, 7}), f.now).has_value());
  // Two more entries after the snapshot, committed and retained in the WAL.
  f.submit_and_commit(2);
  const LogIndex tail = f.node->log().last_index();

  // Crash: volatile state dies, store/wal/snaps survive.
  f.node.reset();
  std::vector<ServerId> members = {1, 2, 3};
  DrivenNode restarted(1, members, std::make_unique<RaftRandomizedPolicy>(kMin, kMax), f.store,
                     f.wal, Rng(8), NodeOptions{}, f.wal.entries(), &f.snaps);
  restarted.start(0);
  EXPECT_EQ(restarted.log().base(), 5);
  EXPECT_EQ(restarted.log().base_term(), term);
  EXPECT_EQ(restarted.log().last_index(), tail);  // WAL suffix re-seeded
  EXPECT_EQ(restarted.last_applied(), 5);         // runtime restores state, then replays
  EXPECT_EQ(restarted.commit_index(), 5);
  // A fully caught-up restart can still vote sensibly: its last term is the
  // retained suffix's, not zero.
  EXPECT_EQ(restarted.log().last_term(), term);
}

TEST(RaftSnapshotTest, RestorePreservesConfClockThroughSnapshotAlone) {
  // escape_staleness_test-style regression: the state store is lost but the
  // snapshot survives. The restored node must resume at the snapshot's
  // configuration generation — never regress to the SCA initial clock 0 —
  // and new leaderships must keep minting strictly above it.
  const ConfClock inherited = 6 * core::kConfClockStride + 11;
  SnapFixture f(2, 3, std::make_unique<core::EscapePolicy>(2, 3));
  f.node->start(0);

  rpc::AppendEntries ae;  // leader S1 assigns us a groomed configuration
  ae.term = 1;
  ae.leader_id = 1;
  rpc::Configuration cfg;
  cfg.priority = 3;
  cfg.timer_period = from_ms(1500);
  cfg.conf_clock = inherited;
  ae.new_config = cfg;
  rpc::LogEntry e;
  e.term = 1;
  e.index = 1;
  e.command = {1};
  ae.entries.push_back(e);
  ae.leader_commit = 1;
  f.deliver(1, ae);
  ASSERT_EQ(f.node->conf_clock(), inherited);
  f.node->take_committed();
  ASSERT_TRUE(f.node->compact(1, {}, f.now).has_value());
  ASSERT_TRUE(f.snaps.load().has_value());
  EXPECT_EQ(f.snaps.load()->config.conf_clock, inherited);

  // Restart with a FRESH state store: only the snapshot knows the clock.
  storage::MemoryStateStore lost_state;
  DrivenNode restarted(2, {1, 2, 3}, std::make_unique<core::EscapePolicy>(2, 3), lost_state,
                     f.wal, Rng(9), NodeOptions{}, f.wal.entries(), &f.snaps);
  restarted.start(0);
  EXPECT_EQ(restarted.conf_clock(), inherited);

  // And a policy that wins leadership afterwards floors into a disjoint,
  // strictly higher stride (Lemma 3 across the restore).
  core::EscapePolicy successor(3, 3);
  successor.on_become_leader({1, 2}, 7);
  successor.begin_heartbeat_round();
  EXPECT_GT(successor.current_config().conf_clock, inherited);
}

}  // namespace
}  // namespace escape::raft
