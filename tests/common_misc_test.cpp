// Tests for the small common utilities: clocks, logging, type helpers.
#include <gtest/gtest.h>

#include <thread>

#include "common/clock.h"
#include "common/logging.h"
#include "common/types.h"

namespace escape {
namespace {

TEST(TypesTest, TimeConversions) {
  EXPECT_EQ(from_ms(1500), 1'500'000);
  EXPECT_EQ(to_ms(from_ms(1500)), 1500);
  EXPECT_EQ(to_ms(1'500'999), 1500);  // truncation
  EXPECT_DOUBLE_EQ(to_ms_f(1'500'500), 1500.5);
}

TEST(TypesTest, Names) {
  EXPECT_STREQ(role_name(Role::kFollower), "follower");
  EXPECT_STREQ(role_name(Role::kCandidate), "candidate");
  EXPECT_STREQ(role_name(Role::kLeader), "leader");
  EXPECT_EQ(server_name(7), "S7");
}

TEST(ManualClockTest, AdvancesForwardOnly) {
  ManualClock clock(100);
  EXPECT_EQ(clock.now(), 100);
  clock.advance_to(250);
  EXPECT_EQ(clock.now(), 250);
  clock.advance_to(200);  // backwards: ignored
  EXPECT_EQ(clock.now(), 250);
}

TEST(SteadyClockTest, MonotoneAndRoughlyRealTime) {
  SteadyClock clock;
  const auto t0 = clock.now();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const auto t1 = clock.now();
  EXPECT_GE(t1 - t0, from_ms(15));
  EXPECT_LT(t1 - t0, from_ms(2000));
}

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Logger::set_sink([this](LogLevel level, const std::string& msg) {
      captured_.emplace_back(level, msg);
    });
    previous_level_ = Logger::level();
  }
  void TearDown() override {
    Logger::set_sink(nullptr);
    Logger::set_level(previous_level_);
  }

  std::vector<std::pair<LogLevel, std::string>> captured_;
  LogLevel previous_level_ = LogLevel::kWarn;
};

TEST_F(LoggingTest, LevelFiltering) {
  Logger::set_level(LogLevel::kWarn);
  LOG_DEBUG("hidden");
  LOG_INFO("hidden too");
  LOG_WARN("visible " << 42);
  LOG_ERROR("also visible");
  ASSERT_EQ(captured_.size(), 2u);
  EXPECT_EQ(captured_[0].first, LogLevel::kWarn);
  EXPECT_EQ(captured_[0].second, "visible 42");
  EXPECT_EQ(captured_[1].first, LogLevel::kError);
}

TEST_F(LoggingTest, OffSilencesEverything) {
  Logger::set_level(LogLevel::kOff);
  LOG_ERROR("nope");
  EXPECT_TRUE(captured_.empty());
}

TEST_F(LoggingTest, TraceEnablesEverything) {
  Logger::set_level(LogLevel::kTrace);
  LOG_TRACE("a");
  LOG_DEBUG("b");
  EXPECT_EQ(captured_.size(), 2u);
}

TEST_F(LoggingTest, StreamExpressionNotEvaluatedWhenFiltered) {
  Logger::set_level(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return std::string("x");
  };
  LOG_DEBUG(expensive());
  EXPECT_EQ(evaluations, 0);
  LOG_ERROR(expensive());
  EXPECT_EQ(evaluations, 1);
}

}  // namespace
}  // namespace escape
