#include "rpc/messages.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace escape::rpc {
namespace {

RequestVote sample_request_vote() {
  RequestVote m;
  m.term = 42;
  m.candidate_id = 3;
  m.last_log_index = 17;
  m.last_log_term = 40;
  m.conf_clock = 9;
  m.leadership_transfer = true;
  return m;
}

AppendEntries sample_append_entries(bool with_config, std::size_t entries) {
  AppendEntries m;
  m.term = 7;
  m.leader_id = 1;
  m.prev_log_index = 5;
  m.prev_log_term = 6;
  m.leader_commit = 4;
  m.round = 31;
  for (std::size_t i = 0; i < entries; ++i) {
    LogEntry e;
    e.term = 7;
    e.index = 6 + static_cast<LogIndex>(i);
    e.command = {static_cast<std::uint8_t>(i), 0xFF};
    m.entries.push_back(e);
  }
  if (with_config) {
    Configuration c;
    c.timer_period = from_ms(1750);
    c.priority = 5;
    c.conf_clock = 12;
    m.new_config = c;
  }
  return m;
}

template <typename T>
void expect_roundtrip(const T& msg) {
  const Message in = msg;
  const auto bytes = encode_message(in);
  const Message out = decode_message(bytes);
  ASSERT_TRUE(std::holds_alternative<T>(out));
  EXPECT_EQ(std::get<T>(out), msg);
}

InstallSnapshot sample_install_snapshot(std::size_t state_bytes) {
  InstallSnapshot m;
  m.term = 9;
  m.leader_id = 2;
  m.last_included_index = 64;
  m.last_included_term = 8;
  m.config.timer_period = from_ms(2000);
  m.config.priority = 4;
  m.config.conf_clock = (ConfClock{9} << 20) + 1;
  m.round = 7;
  for (std::size_t i = 0; i < state_bytes; ++i) {
    m.state.push_back(static_cast<std::uint8_t>(i * 37));
  }
  return m;
}

TEST(MessagesTest, RequestVoteRoundtrip) { expect_roundtrip(sample_request_vote()); }

TEST(MessagesTest, InstallSnapshotRoundtrip) {
  expect_roundtrip(sample_install_snapshot(0));
  expect_roundtrip(sample_install_snapshot(1024));
}

TEST(MessagesTest, InstallSnapshotReplyRoundtrip) {
  InstallSnapshotReply m;
  m.term = 9;
  m.from = 5;
  m.success = true;
  m.match_index = 64;
  m.status.log_index = 64;
  m.status.timer_period = from_ms(2000);
  m.status.conf_clock = 77;
  m.round = 7;
  expect_roundtrip(m);
}

TEST(MessagesTest, InstallSnapshotTruncatedRejected) {
  auto bytes = encode_message(Message{sample_install_snapshot(100)});
  bytes.resize(bytes.size() - 10);  // chop into the state payload
  EXPECT_THROW(decode_message(bytes), DecodeError);
}

TEST(MessagesTest, InstallSnapshotToString) {
  const auto s = to_string(Message{sample_install_snapshot(4)});
  EXPECT_NE(s.find("InstallSnapshot"), std::string::npos);
  EXPECT_NE(s.find("last=64/8"), std::string::npos);
  EXPECT_NE(s.find("bytes=4"), std::string::npos);
}

TEST(MessagesTest, RequestVoteReplyRoundtrip) {
  RequestVoteReply m;
  m.term = 42;
  m.vote_granted = true;
  m.voter_id = 2;
  expect_roundtrip(m);
}

TEST(MessagesTest, AppendEntriesHeartbeatRoundtrip) {
  expect_roundtrip(sample_append_entries(false, 0));
}

TEST(MessagesTest, AppendEntriesWithConfigRoundtrip) {
  expect_roundtrip(sample_append_entries(true, 0));
}

TEST(MessagesTest, AppendEntriesWithEntriesRoundtrip) {
  expect_roundtrip(sample_append_entries(true, 5));
}

TEST(MessagesTest, AppendEntriesReplyRoundtrip) {
  AppendEntriesReply m;
  m.term = 8;
  m.success = false;
  m.from = 4;
  m.match_index = 11;
  m.conflict_index = 9;
  m.conflict_term = 6;
  m.status.log_index = 11;
  m.status.timer_period = from_ms(2000);
  m.status.conf_clock = 3;
  m.round = 31;
  expect_roundtrip(m);
}

TEST(MessagesTest, ClientRequestRoundtrip) {
  ClientRequest m;
  m.client_id = 77;
  m.sequence = 3;
  m.command = {1, 2, 3};
  expect_roundtrip(m);
}

TEST(MessagesTest, ClientReplyRoundtrip) {
  ClientReply m;
  m.client_id = 77;
  m.sequence = 3;
  m.status = ClientStatus::kNotLeader;
  m.leader_hint = 2;
  m.result = {9};
  expect_roundtrip(m);
}

TEST(MessagesTest, IsHeartbeat) {
  EXPECT_TRUE(is_heartbeat(Message{sample_append_entries(true, 0)}));
  EXPECT_FALSE(is_heartbeat(Message{sample_append_entries(true, 2)}));
  EXPECT_FALSE(is_heartbeat(Message{sample_request_vote()}));
}

TEST(MessagesTest, UnknownTagRejected) {
  std::vector<std::uint8_t> buf{0x7F};
  EXPECT_THROW(decode_message(buf), DecodeError);
}

TEST(MessagesTest, EmptyBufferRejected) {
  std::vector<std::uint8_t> buf;
  EXPECT_THROW(decode_message(buf), DecodeError);
}

TEST(MessagesTest, TruncatedMessageRejected) {
  auto bytes = encode_message(Message{sample_append_entries(true, 3)});
  for (std::size_t cut = 1; cut < bytes.size(); cut += 3) {
    std::vector<std::uint8_t> truncated(bytes.begin(), bytes.begin() + static_cast<long>(cut));
    EXPECT_THROW(decode_message(truncated), DecodeError) << "cut at " << cut;
  }
}

TEST(MessagesTest, TrailingGarbageRejected) {
  auto bytes = encode_message(Message{sample_request_vote()});
  bytes.push_back(0x00);
  EXPECT_THROW(decode_message(bytes), DecodeError);
}

TEST(MessagesTest, OversizedEntryCountRejected) {
  // Hand-craft an AppendEntries frame claiming 2^31 entries.
  Encoder e;
  e.u8(3);  // AppendEntries tag
  e.i64(1);
  e.u32(1);
  e.i64(0);
  e.i64(0);
  e.u32(0x80000000u);  // entry count far beyond the buffer
  EXPECT_THROW(decode_message(e.data()), DecodeError);
}

TEST(MessagesTest, FuzzedBuffersNeverCrash) {
  Rng rng(1234);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> buf(static_cast<std::size_t>(rng.uniform_int(0, 128)));
    for (auto& b : buf) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    try {
      (void)decode_message(buf);  // either parses or throws DecodeError
    } catch (const DecodeError&) {
    }
  }
}

TEST(MessagesTest, MutatedValidFramesNeverCrash) {
  Rng rng(4321);
  const auto base = encode_message(Message{sample_append_entries(true, 4)});
  for (int trial = 0; trial < 2000; ++trial) {
    auto buf = base;
    const auto pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(buf.size()) - 1));
    buf[pos] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    try {
      (void)decode_message(buf);
    } catch (const DecodeError&) {
    }
  }
}

TEST(MessagesTest, ToStringMentionsKeyFields) {
  const auto s = to_string(Message{sample_request_vote()});
  EXPECT_NE(s.find("RequestVote"), std::string::npos);
  EXPECT_NE(s.find("t=42"), std::string::npos);
  EXPECT_NE(s.find("S3"), std::string::npos);
}

}  // namespace
}  // namespace escape::rpc
