// Randomized fault-schedule property tests (seed-parameterized): crash,
// recover, isolate and heal random nodes under client traffic, then verify
// every safety invariant from Section V. This is the closest thing to a
// model-checking pass the repo runs in CI.
#include <gtest/gtest.h>

#include "kv/kv_cluster.h"
#include "test_cluster_util.h"

namespace escape {
namespace {

using sim::InvariantChecker;
using sim::SimCluster;

struct FaultSweepParams {
  std::string policy;  // "raft" | "zraft" | "escape"
  std::uint64_t seed;
};

std::string param_name(const ::testing::TestParamInfo<FaultSweepParams>& info) {
  return info.param.policy + "_seed" + std::to_string(info.param.seed);
}

sim::PolicyFactory factory_for(const std::string& policy) {
  if (policy == "raft") return sim::raft_policy_factory(from_ms(1500), from_ms(3000));
  if (policy == "zraft") return testutil::zraft_factory();
  return testutil::escape_factory();
}

class FaultScheduleTest : public ::testing::TestWithParam<FaultSweepParams> {};

TEST_P(FaultScheduleTest, SafetyHoldsUnderRandomFaults) {
  const auto& param = GetParam();
  constexpr std::size_t kN = 5;
  auto options = testutil::paper_cluster(kN, factory_for(param.policy), param.seed);
  SimCluster cluster(options);
  kv::KvCluster kv(cluster);
  // Config uniqueness is checked at the end (recovering nodes legitimately
  // carry stale configs mid-schedule; Lemma 4 bounds, not forbids, that).
  InvariantChecker inv(cluster, /*check_configs=*/false);
  ASSERT_NE(sim::bootstrap(cluster), kNoServer);

  Rng rng(param.seed * 7919 + 13);
  std::set<ServerId> down;
  std::set<ServerId> isolated;
  int writes_ok = 0;

  auto alive_majority_after = [&](ServerId candidate) {
    // Keep a functioning majority: never take down a node if doing so would
    // leave fewer than quorum connected-and-alive members.
    std::size_t healthy = 0;
    for (ServerId id : cluster.members()) {
      if (id != candidate && down.count(id) == 0 && isolated.count(id) == 0) ++healthy;
    }
    return healthy >= kN / 2 + 1;
  };

  for (int step = 0; step < 40; ++step) {
    const int action = static_cast<int>(rng.uniform_int(0, 4));
    const ServerId victim =
        static_cast<ServerId>(rng.uniform_int(1, static_cast<std::int64_t>(kN)));
    switch (action) {
      case 0:  // crash
        if (down.count(victim) == 0 && isolated.count(victim) == 0 &&
            alive_majority_after(victim)) {
          cluster.crash(victim);
          down.insert(victim);
        }
        break;
      case 1:  // recover
        if (!down.empty()) {
          const ServerId id = *down.begin();
          cluster.recover(id);
          down.erase(id);
        }
        break;
      case 2:  // isolate
        if (down.count(victim) == 0 && isolated.count(victim) == 0 &&
            alive_majority_after(victim)) {
          cluster.network().isolate(victim);
          isolated.insert(victim);
        }
        break;
      case 3:  // heal
        if (!isolated.empty()) {
          const ServerId id = *isolated.begin();
          cluster.network().heal(id);
          isolated.erase(id);
        }
        break;
      case 4:  // client write
        if (kv.put("key" + std::to_string(step), std::to_string(step), from_ms(20'000))) {
          ++writes_ok;
        }
        break;
    }
    cluster.loop().run_until(cluster.loop().now() +
                             from_ms(rng.uniform_int(500, 3'000)));
    ASSERT_TRUE(inv.ok()) << inv.violations().front();
  }

  // Heal the world and let it converge.
  for (ServerId id : isolated) cluster.network().heal(id);
  for (ServerId id : down) cluster.recover(id);
  cluster.loop().run_until(cluster.loop().now() + from_ms(20'000));

  ASSERT_NE(cluster.run_until_leader(cluster.loop().now() + from_ms(120'000)), kNoServer);
  const auto final_write = kv.put("final", "done", from_ms(120'000));
  EXPECT_TRUE(final_write.has_value()) << "cluster wedged after fault schedule";

  inv.deep_check();
  EXPECT_TRUE(inv.ok()) << inv.violations().front();
  // Not a safety property, but the schedule should have made progress.
  EXPECT_GT(writes_ok, 0);
}

std::vector<FaultSweepParams> sweep() {
  std::vector<FaultSweepParams> params;
  for (const char* policy : {"raft", "zraft", "escape"}) {
    for (std::uint64_t seed : {101u, 202u, 303u, 404u}) {
      params.push_back({policy, seed});
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(Sweep, FaultScheduleTest, ::testing::ValuesIn(sweep()), param_name);

}  // namespace
}  // namespace escape
