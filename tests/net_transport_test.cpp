// Real-socket tests: TCP transport framing/delivery and a 3-node real-time
// cluster on 127.0.0.1. Every listener binds port 0 (kernel-assigned) and is
// handed to its transport as an open fd, so parallel ctest workers can never
// collide on a port and no port can be stolen between discovery and use.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <filesystem>
#include <mutex>
#include <thread>

#include <sys/socket.h>
#include <sys/stat.h>

#include <unistd.h>

#include "core/escape_policy.h"
#include "net/event_loop.h"
#include "net/real_cluster.h"
#include "net/tcp_transport.h"

namespace escape::net {
namespace {

using namespace std::chrono_literals;

/// Kernel-assigned ports for a set of members: binds one port-0 listener per
/// id and keeps the open fds for the transports to adopt (TransportOptions /
/// RealNode::Options listen_fd).
struct Port0Cluster {
  std::map<ServerId, std::uint16_t> endpoints;
  std::map<ServerId, int> fds;

  explicit Port0Cluster(std::initializer_list<ServerId> ids) {
    for (ServerId id : ids) {
      const BoundListener listener = bind_loopback_listener(0);
      endpoints[id] = listener.port;
      fds[id] = listener.fd;
    }
  }

  TransportOptions options_for(ServerId id, TransportOptions base = {}) {
    base.listen_fd = fds.at(id);
    return base;
  }
};

/// A loopback port that is currently free: bound, discovered, and released.
/// Connecting to it gets ECONNREFUSED (barring an improbable immediate
/// reuse), which is what the dead-peer tests need.
std::uint16_t dead_port() {
  const BoundListener listener = bind_loopback_listener(0);
  const std::uint16_t port = listener.port;
  ::close(listener.fd);
  return port;
}

rpc::Message probe_message(Term term) {
  rpc::RequestVote rv;
  rv.term = term;
  rv.candidate_id = 1;
  rv.last_log_index = 3;
  rv.last_log_term = 2;
  return rv;
}

struct Mailbox {
  std::mutex mu;
  std::condition_variable cv;
  std::vector<rpc::Envelope> messages;

  void push(const rpc::Envelope& env) {
    {
      std::lock_guard lock(mu);
      messages.push_back(env);
    }
    cv.notify_all();
  }

  bool wait_for_count(std::size_t n, std::chrono::milliseconds timeout) {
    std::unique_lock lock(mu);
    return cv.wait_for(lock, timeout, [&] { return messages.size() >= n; });
  }
};

TEST(TcpTransportTest, DeliversBetweenTwoEndpoints) {
  Port0Cluster ports({1, 2});
  Mailbox inbox1, inbox2;
  TcpTransport t1(1, ports.endpoints, [&](const rpc::Envelope& e) { inbox1.push(e); },
                  ports.options_for(1));
  TcpTransport t2(2, ports.endpoints, [&](const rpc::Envelope& e) { inbox2.push(e); },
                  ports.options_for(2));
  t1.start();
  t2.start();

  t1.send({1, 2, probe_message(7)});
  ASSERT_TRUE(inbox2.wait_for_count(1, 5000ms));
  EXPECT_EQ(inbox2.messages[0].from, 1u);
  EXPECT_EQ(inbox2.messages[0].to, 2u);
  EXPECT_EQ(inbox2.messages[0].message, probe_message(7));

  // Reply direction reuses / establishes the reverse connection.
  t2.send({2, 1, probe_message(8)});
  ASSERT_TRUE(inbox1.wait_for_count(1, 5000ms));
  EXPECT_EQ(inbox1.messages[0].message, probe_message(8));

  t1.stop();
  t2.stop();
}

TEST(TcpTransportTest, ManyMessagesArriveInOrder) {
  Port0Cluster ports({1, 2});
  Mailbox inbox;
  TcpTransport t1(1, ports.endpoints, [](const rpc::Envelope&) {}, ports.options_for(1));
  TcpTransport t2(2, ports.endpoints, [&](const rpc::Envelope& e) { inbox.push(e); },
                  ports.options_for(2));
  t1.start();
  t2.start();

  constexpr int kCount = 500;
  for (int i = 0; i < kCount; ++i) {
    t1.send({1, 2, probe_message(i)});
  }
  ASSERT_TRUE(inbox.wait_for_count(kCount, 10000ms));
  for (int i = 0; i < kCount; ++i) {
    const auto& rv = std::get<rpc::RequestVote>(inbox.messages[static_cast<std::size_t>(i)].message);
    EXPECT_EQ(rv.term, i);  // single TCP stream preserves order
  }
  t1.stop();
  t2.stop();
}

TEST(TcpTransportTest, SendToUnknownPeerDrops) {
  Port0Cluster ports({1});
  TcpTransport t1(1, ports.endpoints, [](const rpc::Envelope&) {}, ports.options_for(1));
  t1.start();
  t1.send({1, 99, probe_message(1)});
  EXPECT_EQ(t1.stats().dropped.load(), 1u);
  t1.stop();
}

TEST(TcpTransportTest, SendToDeadPeerDoesNotBlock) {
  Port0Cluster ports({1});
  // Peer 2's port has no listener.
  auto endpoints = ports.endpoints;
  endpoints[2] = dead_port();
  TcpTransport t1(1, endpoints, [](const rpc::Envelope&) {}, ports.options_for(1));
  t1.start();
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 100; ++i) t1.send({1, 2, probe_message(i)});
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, 1s);  // connection failure must not stall the sender
  t1.stop();
}

TEST(TcpTransportTest, RequiresSelfEndpoint) {
  EXPECT_THROW(TcpTransport(1, {{2, 1234}}, [](const rpc::Envelope&) {}),
               std::invalid_argument);
}

TEST(TcpTransportTest, StopIsIdempotent) {
  Port0Cluster ports({1});
  TcpTransport t1(1, ports.endpoints, [](const rpc::Envelope&) {}, ports.options_for(1));
  t1.start();
  t1.stop();
  t1.stop();  // second stop is a no-op
}

// --- robustness: EINTR and short writes --------------------------------------
// The syscall seams (net/tcp_transport.h testhooks) stand in for the kernel:
// they return the exact (-1, EINTR) / short-count / (0, stale errno) shapes
// the sockets API is allowed to produce, while a real no-op SIGUSR1 raised
// mid-transfer makes the interrupts genuine signal deliveries rather than
// pure stubs. Each test fails on the pre-fix transport, which treated EINTR
// as fatal and consulted errno on a 0-byte send.

void noop_signal_handler(int) {}

/// Installs a no-op SIGUSR1 handler (without SA_RESTART, so syscalls really
/// can return EINTR) and restores the previous disposition on destruction.
struct SigUsr1Scope {
  struct sigaction old {};
  SigUsr1Scope() {
    struct sigaction sa {};
    sa.sa_handler = noop_signal_handler;
    ::sigaction(SIGUSR1, &sa, &old);
  }
  ~SigUsr1Scope() { ::sigaction(SIGUSR1, &old, nullptr); }
};

struct HookScope {
  ~HookScope() { testhooks::reset(); }
};

std::atomic<int> g_recv_calls{0};
std::atomic<int> g_send_calls{0};
std::atomic<int> g_send_zero_budget{0};
std::atomic<int> g_accept_eintr_budget{0};

ssize_t eintr_recv(int fd, void* buf, std::size_t len, int flags) {
  if (g_recv_calls.fetch_add(1) % 3 == 1) {
    ::raise(SIGUSR1);
    errno = EINTR;
    return -1;
  }
  return ::recv(fd, buf, len, flags);
}

ssize_t eintr_short_send(int fd, const void* buf, std::size_t len, int flags) {
  if (g_send_calls.fetch_add(1) % 2 == 1) {
    ::raise(SIGUSR1);
    errno = EINTR;
    return -1;
  }
  // A short write: the kernel may accept any prefix. 97 is deliberately not
  // a divisor of the frame size, so frames straddle send() boundaries.
  return ::send(fd, buf, std::min<std::size_t>(len, 97), flags);
}

ssize_t zero_return_send(int fd, const void* buf, std::size_t len, int flags) {
  if (g_send_zero_budget.fetch_sub(1) > 0) {
    // A 0 return with errno left over from an unrelated failure; errno is
    // only meaningful for negative returns, so the transport must not act
    // on this value.
    errno = ECONNRESET;
    return 0;
  }
  return ::send(fd, buf, len, flags);
}

int eintr_accept(int fd, sockaddr* addr, socklen_t* addrlen) {
  if (g_accept_eintr_budget.fetch_sub(1) > 0) {
    errno = EINTR;
    return -1;
  }
  return ::accept(fd, addr, addrlen);
}

TEST(TcpTransportRobustnessTest, SurvivesEintrDuringRecv) {
  SigUsr1Scope sig;
  HookScope hooks;
  g_recv_calls.store(0);
  testhooks::recv_fn = &eintr_recv;

  Port0Cluster ports({1, 2});
  Mailbox inbox;
  TcpTransport t1(1, ports.endpoints, [](const rpc::Envelope&) {}, ports.options_for(1));
  TcpTransport t2(2, ports.endpoints, [&](const rpc::Envelope& e) { inbox.push(e); },
                  ports.options_for(2));
  t1.start();
  t2.start();

  constexpr int kCount = 200;
  for (int i = 0; i < kCount; ++i) t1.send({1, 2, probe_message(i)});
  ASSERT_TRUE(inbox.wait_for_count(kCount, 10000ms))
      << "only " << inbox.messages.size() << " of " << kCount
      << " messages survived EINTR-interrupted recv";
  for (int i = 0; i < kCount; ++i) {
    const auto& rv =
        std::get<rpc::RequestVote>(inbox.messages[static_cast<std::size_t>(i)].message);
    EXPECT_EQ(rv.term, i);
  }
  EXPECT_GT(g_recv_calls.load(), 0);
  t1.stop();
  t2.stop();
}

TEST(TcpTransportRobustnessTest, SurvivesEintrAndShortWritesDuringSend) {
  SigUsr1Scope sig;
  HookScope hooks;
  g_send_calls.store(0);
  testhooks::send_fn = &eintr_short_send;

  Port0Cluster ports({1, 2});
  Mailbox inbox;
  TcpTransport t1(1, ports.endpoints, [](const rpc::Envelope&) {}, ports.options_for(1));
  TcpTransport t2(2, ports.endpoints, [&](const rpc::Envelope& e) { inbox.push(e); },
                  ports.options_for(2));
  t1.start();
  t2.start();

  constexpr int kCount = 300;
  for (int i = 0; i < kCount; ++i) t1.send({1, 2, probe_message(i)});
  ASSERT_TRUE(inbox.wait_for_count(kCount, 15000ms))
      << "only " << inbox.messages.size() << " of " << kCount
      << " messages survived interrupt + short-write interleavings";
  for (int i = 0; i < kCount; ++i) {
    EXPECT_EQ(inbox.messages[static_cast<std::size_t>(i)].message, probe_message(i));
  }
  t1.stop();
  t2.stop();
}

TEST(TcpTransportRobustnessTest, ZeroByteSendDoesNotActOnStaleErrno) {
  HookScope hooks;
  g_send_zero_budget.store(1);
  testhooks::send_fn = &zero_return_send;

  Port0Cluster ports({1, 2});
  Mailbox inbox;
  TcpTransport t1(1, ports.endpoints, [](const rpc::Envelope&) {}, ports.options_for(1));
  TcpTransport t2(2, ports.endpoints, [&](const rpc::Envelope& e) { inbox.push(e); },
                  ports.options_for(2));
  t1.start();
  t2.start();

  // Pre-fix, the 0 return fell through to the stale-ECONNRESET branch and
  // closed the connection with this frame still queued — losing it.
  t1.send({1, 2, probe_message(1)});
  ASSERT_TRUE(inbox.wait_for_count(1, 5000ms))
      << "frame queued behind a 0-byte send() was lost";
  EXPECT_EQ(inbox.messages[0].message, probe_message(1));
  t1.stop();
  t2.stop();
}

TEST(TcpTransportRobustnessTest, SurvivesEintrDuringAccept) {
  HookScope hooks;
  g_accept_eintr_budget.store(2);
  testhooks::accept_fn = &eintr_accept;

  Port0Cluster ports({1, 2});
  Mailbox inbox;
  TcpTransport t1(1, ports.endpoints, [](const rpc::Envelope&) {}, ports.options_for(1));
  TcpTransport t2(2, ports.endpoints, [&](const rpc::Envelope& e) { inbox.push(e); },
                  ports.options_for(2));
  t1.start();
  t2.start();

  t1.send({1, 2, probe_message(3)});
  ASSERT_TRUE(inbox.wait_for_count(1, 5000ms));
  EXPECT_EQ(inbox.messages[0].message, probe_message(3));
  t1.stop();
  t2.stop();
}

TEST(TcpTransportRobustnessTest, FramesSurviveTinySendBuffer) {
  // A 1-entry AppendEntries with a 64 KiB command dwarfs SO_SNDBUF, so every
  // frame crosses many partial send() calls; CRC framing must reassemble
  // each one intact.
  TransportOptions tiny;
  tiny.sndbuf = 4096;
  tiny.rcvbuf = 4096;

  Port0Cluster ports({1, 2});
  Mailbox inbox;
  TcpTransport t1(1, ports.endpoints, [](const rpc::Envelope&) {}, ports.options_for(1, tiny));
  TcpTransport t2(2, ports.endpoints, [&](const rpc::Envelope& e) { inbox.push(e); },
                  ports.options_for(2, tiny));
  t1.start();
  t2.start();

  auto bulk_message = [](int i) -> rpc::Message {
    rpc::AppendEntries ae;
    ae.term = i;
    ae.leader_id = 1;
    rpc::LogEntry entry;
    entry.term = i;
    entry.index = i + 1;
    entry.command.assign(64 * 1024, static_cast<std::uint8_t>(i));
    ae.entries.push_back(std::move(entry));
    return ae;
  };

  constexpr int kCount = 20;
  for (int i = 0; i < kCount; ++i) t1.send({1, 2, bulk_message(i)});
  ASSERT_TRUE(inbox.wait_for_count(kCount, 20000ms))
      << "only " << inbox.messages.size() << " of " << kCount
      << " bulk frames crossed the tiny send buffer";
  for (int i = 0; i < kCount; ++i) {
    EXPECT_EQ(inbox.messages[static_cast<std::size_t>(i)].message, bulk_message(i));
  }
  t1.stop();
  t2.stop();
}

// --- real-time cluster -------------------------------------------------------

PolicyFactory fast_escape() {
  core::EscapeOptions opts;
  opts.base_time = from_ms(300);
  opts.gap = from_ms(150);
  return [opts](ServerId id, std::size_t n) {
    return std::make_unique<core::EscapePolicy>(id, n, opts);
  };
}

ServerId wait_for_leader(std::vector<std::unique_ptr<RealNode>>& nodes,
                         std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    for (const auto& node : nodes) {
      if (node && node->role() == Role::kLeader) return node->id();
    }
    std::this_thread::sleep_for(10ms);
  }
  return kNoServer;
}

TEST(RealClusterTest, ElectsReplicatesAndFailsOver) {
  Port0Cluster ports({1, 2, 3});

  std::vector<std::unique_ptr<RealNode>> nodes;
  for (ServerId id = 1; id <= 3; ++id) {
    RealNode::Options options;
    options.node.heartbeat_interval = from_ms(60);
    options.listen_fd = ports.fds[id];
    nodes.push_back(std::make_unique<RealNode>(id, ports.endpoints, fast_escape(), options));
  }
  std::atomic<int> applied{0};
  for (auto& node : nodes) {
    node->set_apply_hook([&](const rpc::LogEntry&) { applied.fetch_add(1); });
    node->start();
  }

  const ServerId leader = wait_for_leader(nodes, 5000ms);
  ASSERT_NE(leader, kNoServer);

  // Non-leaders reject submissions and point at the leader.
  for (const auto& node : nodes) {
    if (node->id() != leader) {
      EXPECT_FALSE(node->submit({1}).has_value());
    }
  }

  const auto index = nodes[leader - 1]->submit({42});
  ASSERT_TRUE(index.has_value());
  const auto commit_deadline = std::chrono::steady_clock::now() + 5000ms;
  while (applied.load() < 3 && std::chrono::steady_clock::now() < commit_deadline) {
    std::this_thread::sleep_for(10ms);
  }
  EXPECT_GE(applied.load(), 3);  // committed and applied on every replica

  // Kill the leader; survivors re-elect.
  const Term old_term = nodes[leader - 1]->term();
  nodes[leader - 1]->stop();
  nodes[leader - 1].reset();
  const ServerId next = wait_for_leader(nodes, 5000ms);
  ASSERT_NE(next, kNoServer);
  EXPECT_NE(next, leader);
  EXPECT_GT(nodes[next - 1]->term(), old_term);

  for (auto& node : nodes) {
    if (node) node->stop();
  }
}

TEST(RealClusterTest, LinearizableReadBarrierOverTcp) {
  Port0Cluster ports({1, 2, 3});

  std::vector<std::unique_ptr<RealNode>> nodes;
  for (ServerId id = 1; id <= 3; ++id) {
    RealNode::Options options;
    options.node.heartbeat_interval = from_ms(60);
    options.listen_fd = ports.fds[id];
    nodes.push_back(std::make_unique<RealNode>(id, ports.endpoints, fast_escape(), options));
  }
  std::atomic<int> granted{0};
  std::atomic<int> lease_granted{0};
  std::atomic<LogIndex> read_index{-1};
  for (auto& node : nodes) {
    node->set_read_hook([&](const raft::ReadGrant& grant) {
      if (!grant.ok) return;
      read_index.store(grant.read_index);
      if (grant.via_lease) lease_granted.fetch_add(1);
      granted.fetch_add(1);
    });
    node->start();
  }
  const ServerId leader = wait_for_leader(nodes, 5000ms);
  ASSERT_NE(leader, kNoServer);

  // Followers refuse reads, as they refuse writes.
  for (const auto& node : nodes) {
    if (node->id() != leader) {
      EXPECT_FALSE(node->submit_read().has_value());
    }
  }

  const auto index = nodes[leader - 1]->submit({7});
  ASSERT_TRUE(index.has_value());
  const auto deadline = std::chrono::steady_clock::now() + 5000ms;
  while (nodes[leader - 1]->commit_index() < *index &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(10ms);
  }
  ASSERT_GE(nodes[leader - 1]->commit_index(), *index);

  // A handful of read barriers: every grant must cover the committed write.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(nodes[leader - 1]->submit_read().has_value());
    const auto read_deadline = std::chrono::steady_clock::now() + 5000ms;
    while (granted.load() < i + 1 && std::chrono::steady_clock::now() < read_deadline) {
      std::this_thread::sleep_for(5ms);
    }
    ASSERT_EQ(granted.load(), i + 1) << "read " << i << " never granted";
    EXPECT_GE(read_index.load(), *index);
    std::this_thread::sleep_for(20ms);  // let heartbeat rounds extend the lease
  }
  const auto counters = nodes[leader - 1]->counters();
  EXPECT_EQ(counters.lease_reads + counters.read_index_reads, 5u);

  for (auto& node : nodes) node->stop();
}

TEST(RealClusterTest, DurableStateSurvivesRestart) {
  Port0Cluster ports({1});
  const std::string dir = "/tmp/escape_real_test_" + std::to_string(::getpid());
  ::mkdir(dir.c_str(), 0755);

  RealNode::Options options;
  options.node.heartbeat_interval = from_ms(60);
  options.data_dir = dir;

  Term term_before = 0;
  {
    auto first_options = options;
    first_options.listen_fd = ports.fds[1];
    RealNode node(1, ports.endpoints, fast_escape(), first_options);
    node.start();
    // Single-node cluster: leads immediately after its first timeout.
    const auto deadline = std::chrono::steady_clock::now() + 5000ms;
    while (node.role() != Role::kLeader && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(10ms);
    }
    ASSERT_EQ(node.role(), Role::kLeader);
    ASSERT_TRUE(node.submit({9}).has_value());
    const auto commit_deadline = std::chrono::steady_clock::now() + 2000ms;
    while (node.commit_index() < 1 && std::chrono::steady_clock::now() < commit_deadline) {
      std::this_thread::sleep_for(10ms);
    }
    term_before = node.term();
    node.stop();
  }

  // The restart re-binds the (now released) port itself: SO_REUSEADDR makes
  // the same endpoint available again immediately after stop().
  RealNode restarted(1, ports.endpoints, fast_escape(), options);
  restarted.start();
  // Persisted term must be restored (it may then advance when it re-elects).
  EXPECT_GE(restarted.term(), term_before);
  const auto deadline = std::chrono::steady_clock::now() + 5000ms;
  while (restarted.commit_index() < 1 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(10ms);
  }
  EXPECT_GE(restarted.commit_index(), 1);  // WAL replayed the entry
  restarted.stop();
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace escape::net
