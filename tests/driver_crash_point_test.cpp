// Crash-point enumeration over the Ready drain. A driver may die at any
// point between ready() and advance(); the two observable classes are
// "persisted but not sent" (kill right after the persistence section) and
// "sent but not applied" (kill right after the transport hand-off). For a
// scripted follower run covering appends, a vote grant, a configuration
// adoption and a snapshot install, this suite kills the drain at EVERY
// (batch, phase) point, restarts from the surviving stores, and checks the
// recovery invariants:
//
//   - everything acked before the crash is still durable after it (the
//     leader commits on those acks — read linearizability rests on this),
//   - a granted vote survives (no second vote in the same term),
//   - the adopted configuration clock survives (Lemma 3: a conf clock, once
//     advertised, is never regressed),
//   - the restarted node completes the remainder of the scenario.
//
// The async-persist variant re-runs the same enumeration with
// Options::async_persist on and a WAL that loses its unsynced tail at the
// crash — the exposure async mode opens — and kills at every phase event
// including kStaged. The held-sends discipline is what must make the loss
// safe: nothing acked before the crash may sit in the lost tail.
//
// Plus the negative test for the persist-before-send checker itself (the
// class is compiled in release builds too, so this runs everywhere).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/escape_policy.h"
#include "raft/driver.h"
#include "raft/membership.h"
#include "raft/raft_node.h"

namespace escape::raft {
namespace {

// Timeouts far beyond the script's clock so the follower never campaigns;
// every transition in the run is driven by the scripted messages.
constexpr Duration kQuiet = from_ms(1'000'000);

struct CrashInjected {};

/// Kill switch armed at one (batch ordinal, phase) point of a run.
struct KillPoint {
  std::size_t batch = 0;  ///< 0-based ordinal over drained batches
  NodeDriver::Phase phase = NodeDriver::Phase::kPersisted;
};

/// One incarnation: driver + core over the (outliving) stores.
class Incarnation {
 public:
  Incarnation(storage::MemoryStateStore& store, storage::MemoryWal& wal,
              storage::MemorySnapshotStore& snaps, std::optional<KillPoint> kill)
      : driver_(store, wal, &snaps) {
    // Quiet timeouts keep the follower scripted; the guard and lease are off
    // so the scripted vote is judged on log recency alone. EscapePolicy (not
    // the vanilla Raft policy) so the scripted configuration adoption — and
    // with it the Lemma 3 conf-clock invariant — is actually exercised.
    NodeOptions opts;
    opts.lease_ratio = 0;
    opts.vote_guard_ratio = 0;
    core::EscapeOptions escape;
    escape.base_time = kQuiet;
    node_ = std::make_unique<RaftNode>(1, std::vector<ServerId>{1, 2, 3},
                                       std::make_unique<core::EscapePolicy>(1, 3, escape),
                                       Rng(7), opts, driver_.recover());
    driver_.attach(*node_);
    driver_.hooks().send = [this](const std::vector<rpc::Envelope>& batch) {
      sent_.insert(sent_.end(), batch.begin(), batch.end());
    };
    driver_.hooks().apply = [this](const rpc::LogEntry& e) { applied_.push_back(e); };
    driver_.hooks().phase = [this, kill](NodeDriver::Phase phase, const Ready&) {
      if (phase == NodeDriver::Phase::kSent) ++batches_seen_;
      if (kill && kill->batch == batch_ordinal(phase) && kill->phase == phase) {
        throw CrashInjected{};
      }
    };
  }

  /// Feeds script inputs starting at `cursor`; returns the index of the
  /// first unconsumed input (== script size when it survived to the end).
  std::size_t run(const std::vector<rpc::Envelope>& script, std::size_t cursor) {
    node_->start(0);
    try {
      driver_.pump();
      while (cursor < script.size()) {
        node_->step(script[cursor], static_cast<TimePoint>(cursor + 1));
        ++cursor;
        driver_.pump();
      }
    } catch (const CrashInjected&) {
      crashed_ = true;
    }
    return cursor;
  }

  /// One extra input outside the script (e.g. a trailing leader heartbeat).
  void deliver(const rpc::Envelope& envelope, TimePoint now) {
    node_->step(envelope, now);
    driver_.pump();
  }

  bool crashed() const { return crashed_; }
  std::size_t batches_completed() const { return batches_seen_; }
  const std::vector<rpc::Envelope>& sent() const { return sent_; }
  const RaftNode& node() const { return *node_; }

 private:
  std::size_t batch_ordinal(NodeDriver::Phase phase) const {
    // kPersisted fires before batches_seen_ ticks over, kSent after.
    return phase == NodeDriver::Phase::kPersisted ? batches_seen_ : batches_seen_ - 1;
  }

  NodeDriver driver_;
  std::unique_ptr<RaftNode> node_;
  std::vector<rpc::Envelope> sent_;
  std::vector<rpc::LogEntry> applied_;
  std::size_t batches_seen_ = 0;
  bool crashed_ = false;
};

rpc::AppendEntries make_append(Term term, LogIndex prev, Term prev_term,
                               std::vector<LogIndex> indices, LogIndex commit) {
  rpc::AppendEntries ae;
  ae.term = term;
  ae.leader_id = 2;
  ae.prev_log_index = prev;
  ae.prev_log_term = prev_term;
  ae.leader_commit = commit;
  for (LogIndex i : indices) {
    rpc::LogEntry e;
    e.term = term;
    e.index = i;
    e.command = {static_cast<std::uint8_t>(i)};
    ae.entries.push_back(std::move(e));
  }
  return ae;
}

/// The scripted follower life: replicate, apply, vote, adopt a config,
/// install a snapshot, resume replication beyond it.
std::vector<rpc::Envelope> make_script() {
  std::vector<rpc::Envelope> script;
  script.push_back({2, 1, make_append(2, 0, 0, {1, 2}, 0)});
  script.push_back({2, 1, make_append(2, 2, 2, {3}, 2)});
  rpc::RequestVote rv;
  rv.term = 3;
  rv.candidate_id = 2;
  rv.last_log_index = 3;
  rv.last_log_term = 2;
  script.push_back({2, 1, rv});
  auto with_config = make_append(3, 3, 2, {4}, 3);
  rpc::Configuration cfg;
  cfg.timer_period = kQuiet;
  cfg.priority = 2;
  cfg.conf_clock = 1;
  with_config.new_config = cfg;
  script.push_back({2, 1, with_config});
  rpc::InstallSnapshot snap;
  snap.term = 3;
  snap.leader_id = 2;
  snap.last_included_index = 6;
  snap.last_included_term = 3;
  snap.config = cfg;
  snap.state = {0xAA, 0xBB};
  script.push_back({2, 1, snap});
  script.push_back({2, 1, make_append(3, 6, 3, {7}, 7)});
  return script;
}

/// Highest append/snapshot index the pre-crash incarnation acked: the leader
/// counts these toward commit, so they must survive the crash.
LogIndex highest_acked(const std::vector<rpc::Envelope>& sent) {
  LogIndex acked = 0;
  for (const auto& env : sent) {
    if (const auto* r = std::get_if<rpc::AppendEntriesReply>(&env.message)) {
      if (r->success) acked = std::max(acked, r->match_index);
    } else if (const auto* r2 = std::get_if<rpc::InstallSnapshotReply>(&env.message)) {
      if (r2->success) acked = std::max(acked, r2->match_index);
    }
  }
  return acked;
}

/// Highest conf clock the pre-crash incarnation advertised in replies.
ConfClock highest_advertised_clock(const std::vector<rpc::Envelope>& sent) {
  ConfClock clock = 0;
  for (const auto& env : sent) {
    if (const auto* r = std::get_if<rpc::AppendEntriesReply>(&env.message)) {
      clock = std::max(clock, r->status.conf_clock);
    }
  }
  return clock;
}

TEST(DriverCrashPointTest, EveryKillPointRecoversSafely) {
  // Dry run: how many batches does the full script drain?
  std::size_t total_batches = 0;
  {
    storage::MemoryStateStore store;
    storage::MemoryWal wal;
    storage::MemorySnapshotStore snaps;
    Incarnation dry(store, wal, snaps, std::nullopt);
    ASSERT_EQ(dry.run(make_script(), 0), make_script().size());
    ASSERT_FALSE(dry.crashed());
    total_batches = dry.batches_completed();
    ASSERT_EQ(dry.node().commit_index(), 7);
    ASSERT_EQ(dry.node().conf_clock(), 1);
  }
  ASSERT_GE(total_batches, 5u);

  const auto script = make_script();
  int kill_points = 0;
  for (std::size_t batch = 0; batch < total_batches; ++batch) {
    for (const auto phase : {NodeDriver::Phase::kPersisted, NodeDriver::Phase::kSent}) {
      ++kill_points;
      storage::MemoryStateStore store;
      storage::MemoryWal wal;
      storage::MemorySnapshotStore snaps;

      auto first = std::make_unique<Incarnation>(store, wal, snaps, KillPoint{batch, phase});
      const std::size_t cursor = first->run(script, 0);
      ASSERT_TRUE(first->crashed()) << "kill point (" << batch << ") never fired";
      const LogIndex acked = highest_acked(first->sent());
      const ConfClock advertised = highest_advertised_clock(first->sent());
      const auto sent_before = first->sent();
      first.reset();  // the process dies; only store/wal/snaps survive

      // Restart from the surviving stores. Boot itself must not throw —
      // every crash point leaves WAL/snapshot in a recoverable state.
      auto second = std::make_unique<Incarnation>(store, wal, snaps, std::nullopt);
      const auto& node = second->node();

      // Acked durability: what the dead incarnation acknowledged is still
      // covered (log or snapshot). A lost ack here would let the leader
      // commit — and linearizable reads observe — an entry this quorum
      // member no longer holds.
      EXPECT_GE(std::max(node.log().last_index(), node.log().base()), acked)
          << "batch " << batch << " phase " << static_cast<int>(phase);

      // Vote durability: if the dead incarnation granted a vote, the
      // restarted one remembers it and refuses a rival in the same term.
      for (const auto& env : sent_before) {
        const auto* vote = std::get_if<rpc::RequestVoteReply>(&env.message);
        if (vote == nullptr || !vote->vote_granted) continue;
        const auto persisted = store.load();
        ASSERT_TRUE(persisted.has_value());
        EXPECT_GE(persisted->current_term, vote->term);
        if (persisted->current_term == vote->term) {
          EXPECT_EQ(persisted->voted_for, 2u);
        }
      }

      // Lemma 3: an advertised conf clock never regresses across restart
      // (adoption persists into the hard state before any reply carries it).
      if (advertised > 0) {
        const auto persisted = store.load();
        ASSERT_TRUE(persisted.has_value());
        EXPECT_GE(persisted->config.conf_clock, advertised);
      }

      // The survivor finishes the scenario (the leader would retransmit
      // from the unconsumed input on).
      const std::size_t end = second->run(script, cursor);
      EXPECT_EQ(end, script.size());
      EXPECT_FALSE(second->crashed());
      // Commit is volatile; when the kill hit the script's very last batch
      // the restart has entry 7 durable but needs the leader's next
      // heartbeat to learn it committed — exactly what a live leader sends.
      second->deliver({2, 1, make_append(3, 7, 3, {}, 7)}, 100);
      EXPECT_EQ(second->node().commit_index(), 7);
      EXPECT_EQ(second->node().log().last_index(), 7);
      EXPECT_EQ(second->node().conf_clock(), 1);
    }
  }
  EXPECT_GE(kill_points, 10);
}

// --- async persist: kill points with a volatile WAL tail ---------------------

/// Wal that models a disk losing its unsynced tail at a crash: sync()
/// checkpoints the materialized image, crash() rolls back to the checkpoint.
/// MemoryWal cannot express this (its sync() is a no-op), and it is exactly
/// the exposure async persist opens — staged batches are written here but a
/// crash before flush_persists() revokes them.
class VolatileTailWal final : public storage::Wal {
 public:
  void append(const rpc::LogEntry& entry) override {
    const LogIndex tail =
        live_.entries.empty() ? live_.base : live_.entries.back().index;
    if (entry.index <= tail) {
      // The core always truncates before rewriting an index.
      throw std::logic_error("append rewrites index " + std::to_string(entry.index));
    }
    if (entry.index > tail + 1) {
      // Forward gap: the crash lost the compact record from the tail but the
      // snapshot (saved directly, not via the WAL) survived, and the restart
      // resumes appending above its boundary. FileWal records such appends
      // without complaint — recovery reconciles against the snapshot — so
      // this double rebases the same way.
      live_.base = entry.index - 1;
      live_.entries.clear();
    }
    live_.entries.push_back(entry);
  }
  void append_batch(const std::vector<rpc::LogEntry>& entries) override {
    for (const auto& e : entries) append(e);
  }
  void truncate_from(LogIndex from) override {
    while (!live_.entries.empty() && live_.entries.back().index >= from) {
      live_.entries.pop_back();
    }
  }
  void compact_to(LogIndex upto) override {
    while (!live_.entries.empty() && live_.entries.front().index <= upto) {
      live_.entries.erase(live_.entries.begin());
    }
    live_.base = std::max(live_.base, upto);
  }
  void sync() override { synced_ = live_; }
  std::vector<rpc::LogEntry> recovered() const override { return synced_.entries; }

  /// The process dies: everything since the last sync() is gone.
  void crash() { live_ = synced_; }

 private:
  struct Image {
    LogIndex base = 0;
    std::vector<rpc::LogEntry> entries;
  };
  Image live_;
  Image synced_;
};

/// Async-mode incarnation. Kill points are phase-event ordinals (the async
/// drain emits kStaged at pump time and kPersisted/kSent per batch at flush
/// time, so a (batch, phase) pair no longer names a unique point).
class AsyncIncarnation {
 public:
  AsyncIncarnation(storage::MemoryStateStore& store, VolatileTailWal& wal,
                   storage::MemorySnapshotStore& snaps, std::optional<std::size_t> kill_event)
      : driver_(store, wal, &snaps,
                NodeDriver::Options{.group_commit = true, .async_persist = true}) {
    NodeOptions opts;
    opts.lease_ratio = 0;
    opts.vote_guard_ratio = 0;
    opts.async_persist = true;  // commit rule must wait for ack_persisted()
    core::EscapeOptions escape;
    escape.base_time = kQuiet;
    node_ = std::make_unique<RaftNode>(1, std::vector<ServerId>{1, 2, 3},
                                       std::make_unique<core::EscapePolicy>(1, 3, escape),
                                       Rng(7), opts, driver_.recover());
    driver_.attach(*node_);
    driver_.hooks().send = [this](const std::vector<rpc::Envelope>& batch) {
      // The async contract: no message leaves while its batch is staged.
      EXPECT_TRUE(in_flush_) << "async driver released a send outside flush_persists()";
      sent_.insert(sent_.end(), batch.begin(), batch.end());
    };
    driver_.hooks().phase = [this, kill_event](NodeDriver::Phase phase, const Ready&) {
      phases_.push_back(phase);
      if (kill_event && *kill_event == phases_.size() - 1) throw CrashInjected{};
    };
  }

  std::size_t run(const std::vector<rpc::Envelope>& script, std::size_t cursor) {
    node_->start(0);
    try {
      settle(0);
      while (cursor < script.size()) {
        const auto now = static_cast<TimePoint>(cursor + 1);
        node_->step(script[cursor], now);
        ++cursor;
        settle(now);
      }
    } catch (const CrashInjected&) {
      crashed_ = true;
    }
    return cursor;
  }

  void deliver(const rpc::Envelope& envelope, TimePoint now) {
    node_->step(envelope, now);
    settle(now);
  }

  bool crashed() const { return crashed_; }
  const std::vector<NodeDriver::Phase>& phases() const { return phases_; }
  const std::vector<rpc::Envelope>& sent() const { return sent_; }
  const RaftNode& node() const { return *node_; }

 private:
  /// Pump-and-flush until quiescent: stage whatever the core has, complete
  /// the persists, and pump again (the durability ack can produce commits).
  void settle(TimePoint now) {
    driver_.pump();
    while (driver_.staged() > 0) {
      in_flush_ = true;
      driver_.flush_persists(now);
      in_flush_ = false;
      driver_.pump();
    }
  }

  NodeDriver driver_;
  std::unique_ptr<RaftNode> node_;
  std::vector<rpc::Envelope> sent_;
  std::vector<NodeDriver::Phase> phases_;
  bool in_flush_ = false;
  bool crashed_ = false;
};

TEST(DriverCrashPointTest, AsyncPersistEveryKillPointRecoversSafely) {
  const auto script = make_script();

  // Dry run: the full phase-event sequence of a crash-free async drain.
  std::size_t total_events = 0;
  std::size_t staged_events = 0;
  {
    storage::MemoryStateStore store;
    VolatileTailWal wal;
    storage::MemorySnapshotStore snaps;
    AsyncIncarnation dry(store, wal, snaps, std::nullopt);
    ASSERT_EQ(dry.run(script, 0), script.size());
    ASSERT_FALSE(dry.crashed());
    ASSERT_EQ(dry.node().commit_index(), 7);
    ASSERT_EQ(dry.node().conf_clock(), 1);
    total_events = dry.phases().size();
    for (const auto phase : dry.phases()) {
      if (phase == NodeDriver::Phase::kStaged) ++staged_events;
    }
  }
  // Every batch stages exactly once, so the staged points alone must cover
  // the whole scripted life (appends, vote, config, snapshot, post-snapshot).
  ASSERT_GE(staged_events, 5u);
  ASSERT_GE(total_events, 3 * staged_events);

  for (std::size_t event = 0; event < total_events; ++event) {
    storage::MemoryStateStore store;
    VolatileTailWal wal;
    storage::MemorySnapshotStore snaps;

    auto first = std::make_unique<AsyncIncarnation>(store, wal, snaps, event);
    const std::size_t cursor = first->run(script, 0);
    ASSERT_TRUE(first->crashed()) << "kill event " << event << " never fired";
    const LogIndex acked = highest_acked(first->sent());
    const ConfClock advertised = highest_advertised_clock(first->sent());
    const auto sent_before = first->sent();
    first.reset();
    // The process dies and takes the unsynced WAL tail with it. Anything the
    // dead incarnation staged but never flushed is now gone — which is only
    // safe because its sends were held.
    wal.crash();

    auto second = std::make_unique<AsyncIncarnation>(store, wal, snaps, std::nullopt);
    const auto& node = second->node();

    // The async acked-durability bar: every ack was released after a sync
    // covering it, so no ack refers into the lost tail.
    EXPECT_GE(std::max(node.log().last_index(), node.log().base()), acked)
        << "kill event " << event << ": an ack overclaimed into the unsynced tail";

    // Vote durability: the hard state saves inline even in async mode, and
    // the grant itself is held until after that save is synced-irrelevant
    // (MemoryStateStore) — the restart must refuse a rival in the same term.
    for (const auto& env : sent_before) {
      const auto* vote = std::get_if<rpc::RequestVoteReply>(&env.message);
      if (vote == nullptr || !vote->vote_granted) continue;
      const auto persisted = store.load();
      ASSERT_TRUE(persisted.has_value());
      EXPECT_GE(persisted->current_term, vote->term);
      if (persisted->current_term == vote->term) {
        EXPECT_EQ(persisted->voted_for, 2u);
      }
    }

    // Lemma 3 across an async crash: an advertised conf clock never
    // regresses (adoption rides the inline hard-state save, not the tail).
    if (advertised > 0) {
      const auto persisted = store.load();
      ASSERT_TRUE(persisted.has_value());
      EXPECT_GE(persisted->config.conf_clock, advertised);
    }

    // The survivor finishes the scenario. Unlike the sync-mode test the
    // replay may NACK inputs whose prerequisites sat in the lost tail; the
    // scripted snapshot install re-covers indices 1..6 regardless, and the
    // trailing retransmit of entry 7 stands in for the leader's conflict-
    // hint driven retry.
    const std::size_t end = second->run(script, cursor);
    EXPECT_EQ(end, script.size());
    EXPECT_FALSE(second->crashed());
    second->deliver({2, 1, make_append(3, 6, 3, {7}, 7)}, 100);
    second->deliver({2, 1, make_append(3, 7, 3, {}, 7)}, 101);
    EXPECT_EQ(second->node().commit_index(), 7) << "kill event " << event;
    EXPECT_EQ(second->node().log().last_index(), 7) << "kill event " << event;
    EXPECT_EQ(second->node().conf_clock(), 1) << "kill event " << event;
  }
}

// --- joint-consensus crash points --------------------------------------------
// The same kill-point enumeration, but the script walks a follower through a
// full joint-consensus handoff: Cold,new (joint) then Cnew as configuration
// entries in the replicated log. A membership is adopted on *append* and
// reconstructed purely from snapshot + WAL on restart, so at every crash
// point the recovered node's membership() must equal what the latest durable
// conf entry says — never a phase-torn hybrid.

rpc::Membership joint_membership() {
  rpc::Membership m;
  m.voters = {1, 2, 3, 4};
  m.old_voters = {1, 2, 3};
  return m;
}

rpc::Envelope make_conf_append(LogIndex prev, LogIndex index, const rpc::Membership& m,
                               LogIndex commit) {
  auto ae = make_append(2, prev, 2, {}, commit);
  rpc::LogEntry e;
  e.term = 2;
  e.index = index;
  e.kind = rpc::EntryKind::kConfChange;
  e.command = encode_conf_entry(m);
  ae.entries.push_back(std::move(e));
  return {2, 1, ae};
}

/// Replicate, adopt Cold,new, adopt Cnew, learn the commit.
std::vector<rpc::Envelope> make_reconfig_script() {
  std::vector<rpc::Envelope> script;
  script.push_back({2, 1, make_append(2, 0, 0, {1, 2}, 0)});
  script.push_back(make_conf_append(2, 3, joint_membership(), 2));
  script.push_back(make_conf_append(3, 4, finish_joint(joint_membership()), 3));
  script.push_back({2, 1, make_append(2, 4, 2, {}, 4)});
  return script;
}

/// What the durable log says the membership is: the last conf entry in the
/// recovered WAL, or the bootstrap voter trio when none survived.
rpc::Membership durable_membership(const storage::MemoryWal& wal) {
  rpc::Membership m;
  m.voters = {1, 2, 3};
  for (const auto& e : wal.recovered()) {
    if (e.kind == rpc::EntryKind::kConfChange) m = decode_conf_entry(e.command);
  }
  return m;
}

TEST(DriverCrashPointTest, JointConfigEveryKillPointRecoversMembership) {
  std::size_t total_batches = 0;
  {
    storage::MemoryStateStore store;
    storage::MemoryWal wal;
    storage::MemorySnapshotStore snaps;
    Incarnation dry(store, wal, snaps, std::nullopt);
    ASSERT_EQ(dry.run(make_reconfig_script(), 0), make_reconfig_script().size());
    ASSERT_FALSE(dry.crashed());
    total_batches = dry.batches_completed();
    ASSERT_EQ(dry.node().commit_index(), 4);
    ASSERT_EQ(dry.node().membership(), finish_joint(joint_membership()));
  }
  ASSERT_GE(total_batches, 3u);

  const auto script = make_reconfig_script();
  for (std::size_t batch = 0; batch < total_batches; ++batch) {
    for (const auto phase : {NodeDriver::Phase::kPersisted, NodeDriver::Phase::kSent}) {
      storage::MemoryStateStore store;
      storage::MemoryWal wal;
      storage::MemorySnapshotStore snaps;

      auto first = std::make_unique<Incarnation>(store, wal, snaps, KillPoint{batch, phase});
      const std::size_t cursor = first->run(script, 0);
      ASSERT_TRUE(first->crashed()) << "kill point (" << batch << ") never fired";
      const LogIndex acked = highest_acked(first->sent());
      first.reset();

      auto second = std::make_unique<Incarnation>(store, wal, snaps, std::nullopt);
      const auto& node = second->node();

      // Membership rescan: whatever phase the crash tore through, the
      // restarted node's view equals the latest durable conf entry — the
      // joint config exactly when only Cold,new survived, never a mix.
      EXPECT_EQ(node.membership(), durable_membership(wal))
          << "batch " << batch << " phase " << static_cast<int>(phase);

      // An acked conf entry is as durable as an acked command: the leader
      // counts it toward the joint commit that drives the handoff forward.
      EXPECT_GE(node.log().last_index(), acked)
          << "batch " << batch << " phase " << static_cast<int>(phase);

      // The survivor finishes the handoff and lands on Cnew.
      const std::size_t end = second->run(script, cursor);
      EXPECT_EQ(end, script.size());
      EXPECT_FALSE(second->crashed());
      second->deliver({2, 1, make_append(2, 4, 2, {}, 4)}, 100);
      EXPECT_EQ(second->node().commit_index(), 4);
      EXPECT_EQ(second->node().membership(), finish_joint(joint_membership()));
      EXPECT_FALSE(second->node().membership().joint());
    }
  }
}

// --- the persist-before-send checker, tested directly ------------------------
// ReadySequenceChecker is always compiled (NDEBUG only gates whether
// NodeDriver invokes it), so these negative tests run in release CI too.

Ready append_and_ack_batch() {
  Ready rd;
  HardState hs;
  hs.current_term = 3;
  hs.voted_for = 2;
  rd.hard_state = hs;
  rpc::LogEntry e;
  e.term = 3;
  e.index = 1;
  e.command = {0x1};
  rd.log_ops.push_back(LogOp::append(e));
  rpc::AppendEntriesReply ack;
  ack.term = 3;
  ack.success = true;
  ack.from = 1;
  ack.match_index = 1;
  rd.messages.push_back({1, 2, ack});
  return rd;
}

TEST(ReadySequenceCheckerTest, SendBeforePersistIsCaught) {
  ReadySequenceChecker checker;
  checker.seed(Bootstrap{});
  const Ready rd = append_and_ack_batch();
  // A driver that ships the ack before running the persistence section
  // calls check_send against stale durable state: caught.
  EXPECT_THROW(checker.check_send(rd), std::logic_error);
  checker.note_persisted(rd);
  EXPECT_NO_THROW(checker.check_send(rd));
}

TEST(ReadySequenceCheckerTest, UnpersistedVoteGrantIsCaught) {
  ReadySequenceChecker checker;
  checker.seed(Bootstrap{});
  Ready rd;
  HardState hs;
  hs.current_term = 5;
  hs.voted_for = 3;
  rd.hard_state = hs;
  rpc::RequestVoteReply grant;
  grant.term = 5;
  grant.vote_granted = true;
  grant.voter_id = 1;
  rd.messages.push_back({1, 3, grant});
  EXPECT_THROW(checker.check_send(rd), std::logic_error);
  checker.note_persisted(rd);
  EXPECT_NO_THROW(checker.check_send(rd));
}

TEST(ReadySequenceCheckerTest, TruncationShrinksDurableCoverage) {
  ReadySequenceChecker checker;
  Bootstrap boot;
  rpc::LogEntry e;
  e.term = 1;
  e.index = 3;
  boot.log = {e};
  checker.seed(boot);

  // Truncating from 2 leaves only index 1 durable; acking 3 afterwards is a
  // violation even though 3 was durable once.
  Ready rd;
  rd.log_ops.push_back(LogOp::truncate_from(2));
  checker.note_persisted(rd);

  Ready ack_batch;
  rpc::AppendEntriesReply ack;
  ack.term = 1;
  ack.success = true;
  ack.match_index = 3;
  ack_batch.messages.push_back({1, 2, ack});
  EXPECT_THROW(checker.check_send(ack_batch), std::logic_error);
  ack.match_index = 1;
  ack_batch.messages.clear();
  ack_batch.messages.push_back({1, 2, ack});
  EXPECT_NO_THROW(checker.check_send(ack_batch));
}

TEST(ReadySequenceCheckerTest, SeededFromBootstrapCoversRecoveredState) {
  // A recovered node replying about its pre-crash log must not trip the
  // checker: seeding from the Bootstrap is part of the contract.
  ReadySequenceChecker checker;
  Bootstrap boot;
  HardState hs;
  hs.current_term = 4;
  boot.hard_state = hs;
  rpc::LogEntry e;
  e.term = 4;
  e.index = 9;
  boot.log = {e};
  checker.seed(boot);

  Ready rd;
  rpc::AppendEntriesReply ack;
  ack.term = 4;
  ack.success = true;
  ack.match_index = 9;
  rd.messages.push_back({1, 2, ack});
  EXPECT_NO_THROW(checker.check_send(rd));
}

TEST(ReadySequenceCheckerTest, AsyncStagedSendsOverclaimUntilFlushedInOrder) {
  // Models the async driver's completion queue: batches A then B are staged
  // (written, unsynced, sends held); flush_persists() notes and releases them
  // FIFO. A buggy driver that releases a batch's sends before its persistence
  // is noted — or releases B while only A flushed — overclaims durability and
  // must be caught.
  ReadySequenceChecker checker;
  checker.seed(Bootstrap{});

  Ready a;
  for (LogIndex i = 1; i <= 2; ++i) {
    rpc::LogEntry e;
    e.term = 1;
    e.index = i;
    e.command = {static_cast<std::uint8_t>(i)};
    a.log_ops.push_back(LogOp::append(e));
  }
  rpc::AppendEntriesReply ack_a;
  ack_a.term = 1;
  ack_a.success = true;
  ack_a.from = 1;
  ack_a.match_index = 2;
  a.messages.push_back({1, 2, ack_a});

  Ready b;
  rpc::LogEntry e3;
  e3.term = 1;
  e3.index = 3;
  e3.command = {0x3};
  b.log_ops.push_back(LogOp::append(e3));
  rpc::AppendEntriesReply ack_b = ack_a;
  ack_b.match_index = 3;
  b.messages.push_back({1, 2, ack_b});

  // Releasing either batch's sends while both still sit in the queue.
  EXPECT_THROW(checker.check_send(a), std::logic_error);
  EXPECT_THROW(checker.check_send(b), std::logic_error);

  // Correct FIFO flush of A; B's ack still reaches into unsynced territory —
  // releasing it now would be skipping the queue.
  checker.note_persisted(a);
  EXPECT_NO_THROW(checker.check_send(a));
  EXPECT_THROW(checker.check_send(b), std::logic_error);

  checker.note_persisted(b);
  EXPECT_NO_THROW(checker.check_send(b));
}

TEST(ReadySequenceCheckerTest, AsyncLeaderShipmentOverclaimIsCaught) {
  // A pipelining leader's own AppendEntries ships the entries it just staged
  // (it counts itself toward their quorum). In async mode that shipment is an
  // overclaim until the covering sync: the checker rejects it at check_send.
  ReadySequenceChecker checker;
  Bootstrap boot;
  HardState hs;
  hs.current_term = 2;
  boot.hard_state = hs;
  checker.seed(boot);

  Ready rd;
  rpc::AppendEntries ae;
  ae.term = 2;
  ae.leader_id = 1;
  ae.prev_log_index = 0;
  ae.prev_log_term = 0;
  for (LogIndex i = 1; i <= 3; ++i) {
    rpc::LogEntry e;
    e.term = 2;
    e.index = i;
    e.command = {static_cast<std::uint8_t>(i)};
    rd.log_ops.push_back(LogOp::append(e));
    ae.entries.push_back(e);
  }
  rd.messages.push_back({1, 2, ae});

  EXPECT_THROW(checker.check_send(rd), std::logic_error);
  checker.note_persisted(rd);
  EXPECT_NO_THROW(checker.check_send(rd));
}

}  // namespace
}  // namespace escape::raft
