// Shared helpers for integration tests: standard cluster configurations
// matching the paper's experimental setup (Section VI-A).
#pragma once

#include "core/escape_policy.h"
#include "sim/invariants.h"
#include "sim/scenario.h"
#include "sim/sim_cluster.h"

namespace escape::testutil {

inline core::EscapeOptions paper_escape_options() {
  core::EscapeOptions o;
  o.base_time = from_ms(1500);  // Section VI-B: baseTime = 1500 ms
  o.gap = from_ms(500);         // Section VI-B: k = 500 ms
  return o;
}

inline sim::PolicyFactory escape_factory(core::EscapeOptions opts = paper_escape_options()) {
  return [opts](ServerId id, std::size_t n) {
    return std::make_unique<core::EscapePolicy>(id, n, opts);
  };
}

inline sim::PolicyFactory zraft_factory(core::EscapeOptions opts = paper_escape_options()) {
  return [opts](ServerId id, std::size_t n) { return core::make_zraft_policy(id, n, opts); };
}

/// Paper defaults: 100-200 ms latency (NetEm), Raft timeouts 1500-3000 ms,
/// 500 ms heartbeats.
inline sim::ClusterOptions paper_cluster(std::size_t n, sim::PolicyFactory policy,
                                         std::uint64_t seed) {
  sim::ClusterOptions o;
  o.size = n;
  o.policy = std::move(policy);
  o.seed = seed;
  o.network.latency = sim::uniform_latency(from_ms(100), from_ms(200));
  o.node.heartbeat_interval = from_ms(500);
  return o;
}

inline sim::ClusterOptions paper_raft_cluster(std::size_t n, std::uint64_t seed) {
  return paper_cluster(n, sim::raft_policy_factory(from_ms(1500), from_ms(3000)), seed);
}

inline sim::ClusterOptions paper_escape_cluster(std::size_t n, std::uint64_t seed) {
  return paper_cluster(n, escape_factory(), seed);
}

}  // namespace escape::testutil
