// Replicated key-value store riding on the consensus stack: a bank of
// accounts served by a 5-node ESCAPE cluster, surviving a leader crash in
// the middle of a transfer workload with exactly-once semantics.
//
//   $ ./examples/kv_cluster
#include <cstdio>
#include <string>

#include "kv/kv_cluster.h"
#include "sim/presets.h"
#include "sim/scenario.h"

using namespace escape;

namespace {

int balance(kv::KvCluster& bank, const std::string& account) {
  const auto r = bank.get(account);
  return r && r->ok ? std::stoi(r->value) : 0;
}

/// Moves `amount` from one account to another with optimistic CAS retries —
/// the pattern a real client library would use on this API.
bool transfer(kv::KvCluster& bank, const std::string& from, const std::string& to, int amount) {
  for (int attempt = 0; attempt < 8; ++attempt) {
    const int from_balance = balance(bank, from);
    if (from_balance < amount) return false;
    const auto debit = bank.cas(from, std::to_string(from_balance),
                                std::to_string(from_balance - amount));
    if (!debit || !debit->ok) continue;  // lost a race; retry with fresh value
    const int to_balance = balance(bank, to);
    const auto credit =
        bank.cas(to, std::to_string(to_balance), std::to_string(to_balance + amount));
    if (credit && credit->ok) return true;
    // Credit raced: undo the debit and retry from scratch.
    bank.put(from, std::to_string(balance(bank, from) + amount));
  }
  return false;
}

}  // namespace

int main() {
  sim::SimCluster cluster(sim::presets::paper_cluster(5, sim::presets::escape_policy(), 7));
  kv::KvCluster bank(cluster);
  if (sim::bootstrap(cluster) == kNoServer) {
    std::printf("bootstrap failed\n");
    return 1;
  }
  std::printf("cluster up, leader %s\n", server_name(cluster.leader()).c_str());

  // Seed accounts.
  bank.put("alice", "100");
  bank.put("bob", "100");
  bank.put("carol", "100");
  std::printf("seeded: alice=100 bob=100 carol=100\n");

  // Run transfers; crash the leader midway.
  int completed = 0;
  for (int i = 0; i < 10; ++i) {
    if (i == 5) {
      std::printf("!!! crashing leader %s mid-workload\n",
                  server_name(cluster.leader()).c_str());
      cluster.crash(cluster.leader());
    }
    if (transfer(bank, i % 2 == 0 ? "alice" : "bob", "carol", 10)) ++completed;
  }

  std::printf("%d/10 transfers completed across the failover\n", completed);

  // Audits ride the read fast path: linearizable (they observe every
  // acknowledged transfer) but zero log entries — under a standing lease,
  // zero messages. The counters show which route served them.
  const auto audit = bank.read("carol");
  std::printf("fast-path audit: carol=%s\n", audit && audit->ok ? audit->value.c_str() : "?");
  const auto& counters = cluster.node(cluster.leader()).counters();
  std::printf("read routes on %s: lease=%llu read-index=%llu\n",
              server_name(cluster.leader()).c_str(),
              static_cast<unsigned long long>(counters.lease_reads),
              static_cast<unsigned long long>(counters.read_index_reads));
  std::printf("final: alice=%d bob=%d carol=%d (total=%d, conserved=%s)\n",
              balance(bank, "alice"), balance(bank, "bob"), balance(bank, "carol"),
              balance(bank, "alice") + balance(bank, "bob") + balance(bank, "carol"),
              balance(bank, "alice") + balance(bank, "bob") + balance(bank, "carol") == 300
                  ? "yes"
                  : "NO");

  // Every replica converged to the same state.
  const LogIndex commit = cluster.node(cluster.leader()).commit_index();
  cluster.run_until_applied(commit, cluster.loop().now() + from_ms(30'000));
  std::printf("replica carol-balances: ");
  for (ServerId id : cluster.members()) {
    if (!cluster.alive(id)) {
      std::printf("%s=down ", server_name(id).c_str());
      continue;
    }
    const auto v = bank.store(id).peek("carol");
    std::printf("%s=%s ", server_name(id).c_str(), v ? v->c_str() : "?");
  }
  std::printf("\n");
  return 0;
}
