// Geo-distributed deployment (Section II-B): two "data centers" with fast
// intra-group links and slow inter-group links — the topology where Raft's
// voting is most split-vote-prone, because each candidate wins its local
// group first and the groups deadlock. ESCAPE's prioritized configurations
// scatter concurrent campaigns into different terms, so the same topology
// converges in one campaign.
//
//   $ ./examples/geo_replication
#include <cstdio>

#include "common/stats.h"
#include "sim/presets.h"
#include "sim/scenario.h"

using namespace escape;

namespace {

sim::ClusterOptions geo_cluster(sim::PolicyFactory policy, std::uint64_t seed) {
  auto options = sim::presets::paper_cluster(6, std::move(policy), seed);
  // S1-S3 in region "east", S4-S6 in region "west": 5-15 ms locally,
  // 150-250 ms across regions.
  options.network.latency =
      sim::grouped_latency([](ServerId id) { return id <= 3 ? 0 : 1; }, from_ms(5), from_ms(15),
                           from_ms(150), from_ms(250));
  return options;
}

struct Outcome {
  Sample total_ms;
  Sample campaigns;
};

Outcome run(const char* name, sim::PolicyFactory policy) {
  Outcome out;
  constexpr int kRounds = 30;
  for (int i = 0; i < kRounds; ++i) {
    sim::SimCluster cluster(geo_cluster(policy, 0x6E0 + static_cast<std::uint64_t>(i) * 37));
    if (sim::bootstrap(cluster) == kNoServer) continue;
    const auto r = sim::measure_failover(cluster);
    if (!r.converged) continue;
    out.total_ms.add(to_ms_f(r.total));
    out.campaigns.add(static_cast<double>(r.campaigns));
  }
  std::printf("%-8s  avg election %.0f ms  p99 %.0f ms  avg campaigns %.2f  max campaigns %.0f\n",
              name, out.total_ms.mean(), out.total_ms.percentile(99), out.campaigns.mean(),
              out.campaigns.max());
  return out;
}

}  // namespace

int main() {
  std::printf("Geo-replication: 2 regions x 3 servers, intra 5-15 ms, inter 150-250 ms\n");
  std::printf("crash the leader, measure recovery (30 rounds each):\n\n");

  const auto raft = run("Raft", sim::presets::raft_policy());
  const auto escape = run("ESCAPE", sim::presets::escape_policy());

  std::printf("\nESCAPE cuts the average failover by %.0f%% in this topology.\n",
              100.0 * (raft.total_ms.mean() - escape.total_ms.mean()) / raft.total_ms.mean());
  std::printf("Raft needed up to %.0f campaigns in a single failover; ESCAPE's priority\n"
              "scattering kept every recovery to a single effective campaign.\n",
              raft.campaigns.max());
  return 0;
}
