// Election clinic: a small CLI lab for exploring leader-election behaviour
// under different policies, cluster sizes and fault conditions. Prints the
// full protocol timeline of one failover.
//
//   $ ./examples/election_clinic [policy] [servers] [loss%] [seed]
//     policy   raft | zraft | escape      (default escape)
//     servers  cluster size               (default 5)
//     loss%    broadcast omission 0..90   (default 0)
//     seed     RNG seed                   (default 1)
//
//   e.g.  ./examples/election_clinic raft 31 20 7
#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/presets.h"
#include "sim/scenario.h"

using namespace escape;

int main(int argc, char** argv) {
  const std::string policy_name = argc > 1 ? argv[1] : "escape";
  const std::size_t n = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 5;
  const double loss = argc > 3 ? std::atof(argv[3]) / 100.0 : 0.0;
  const std::uint64_t seed = argc > 4 ? static_cast<std::uint64_t>(std::atoll(argv[4])) : 1;

  sim::PolicyFactory policy;
  if (policy_name == "raft") {
    policy = sim::presets::raft_policy();
  } else if (policy_name == "zraft") {
    policy = sim::presets::zraft_policy();
  } else if (policy_name == "escape") {
    policy = sim::presets::escape_policy();
  } else {
    std::fprintf(stderr, "unknown policy '%s' (raft|zraft|escape)\n", policy_name.c_str());
    return 2;
  }

  std::printf("policy=%s servers=%zu loss=%.0f%% seed=%llu\n\n", policy_name.c_str(), n,
              loss * 100, static_cast<unsigned long long>(seed));

  sim::ScenarioRunner runner(sim::presets::paper_cluster(n, policy, seed, loss));
  auto& cluster = runner.cluster();
  bool verbose = false;  // quiet during bootstrap, narrated during failover
  cluster.add_event_listener([&](const raft::NodeEvent& e) {
    if (!verbose) return;
    switch (e.kind) {
      case raft::NodeEvent::Kind::kCampaignStarted:
        std::printf("[%9.1f ms] %-4s CAMPAIGN   term=%lld\n", to_ms_f(e.at),
                    server_name(e.node).c_str(), static_cast<long long>(e.term));
        break;
      case raft::NodeEvent::Kind::kVoteGranted:
        std::printf("[%9.1f ms] %-4s VOTE  ->   %s (term %lld)\n", to_ms_f(e.at),
                    server_name(e.node).c_str(), server_name(e.peer).c_str(),
                    static_cast<long long>(e.term));
        break;
      case raft::NodeEvent::Kind::kBecameLeader:
        std::printf("[%9.1f ms] %-4s LEADER     term=%lld\n", to_ms_f(e.at),
                    server_name(e.node).c_str(), static_cast<long long>(e.term));
        break;
      case raft::NodeEvent::Kind::kSteppedDown:
        std::printf("[%9.1f ms] %-4s step-down  term=%lld\n", to_ms_f(e.at),
                    server_name(e.node).c_str(), static_cast<long long>(e.term));
        break;
      default:
        break;
    }
  });

  const ServerId leader = runner.bootstrap();
  if (leader == kNoServer) {
    std::printf("bootstrap did not elect a leader (try another seed)\n");
    return 1;
  }
  std::printf("bootstrapped: %s leads term %lld\n", server_name(leader).c_str(),
              static_cast<long long>(cluster.node(leader).term()));
  if (policy_name != "raft") {
    std::printf("configurations (priority / confClock / timeout):\n");
    for (ServerId id : cluster.members()) {
      const auto cfg = cluster.node(id).policy().current_config();
      std::printf("  %-4s P=%-3d k=%-4lld %5lld ms%s\n", server_name(id).c_str(), cfg.priority,
                  static_cast<long long>(cfg.conf_clock),
                  static_cast<long long>(to_ms(cfg.timer_period)),
                  id == leader ? "  (leader)" : "");
    }
  }

  std::printf("\n--- crashing %s; failover timeline ---\n", server_name(leader).c_str());
  verbose = true;
  const auto result = runner.measure_failover();
  verbose = false;

  if (!result.converged) {
    std::printf("no leader within the wait budget\n");
    return 1;
  }
  std::printf("\nsummary: %s elected in term %lld\n", server_name(result.new_leader).c_str(),
              static_cast<long long>(result.new_term));
  std::printf("  detection  %7.1f ms   (crash -> first campaign)\n", to_ms_f(result.detection));
  std::printf("  election   %7.1f ms   (first campaign -> leader)\n", to_ms_f(result.election));
  std::printf("  total      %7.1f ms   over %zu campaign(s)\n", to_ms_f(result.total),
              result.campaigns);
  std::printf("  messages: %llu sent, %llu dropped by loss/partition\n",
              static_cast<unsigned long long>(cluster.network().stats().sent),
              static_cast<unsigned long long>(cluster.network().stats().dropped_omission +
                                              cluster.network().stats().dropped_loss +
                                              cluster.network().stats().dropped_partition));
  return 0;
}
