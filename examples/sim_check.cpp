// SimCheck CLI: randomized scenario fuzzing over the fault-plan vocabulary.
//
//   $ ./examples/sim_check                         # default fuzz run
//   $ ./examples/sim_check --trials 500 --root-seed 99 --threads 8
//   $ ./examples/sim_check --actions snapshot=30,crash=20   # reweight vocabulary
//   $ ./examples/sim_check --scenario-seed 1234567 # replay ONE trial, verbose
//
// Every trial derives entirely from one scenario seed, so the repro line a
// failing run prints (`sim_check --scenario-seed N`) replays the exact
// cluster, schedule, and RNG stream of the violation — under the same
// --actions weights, which change the seed -> schedule mapping. Exits
// non-zero when any trial violates an invariant or breaks trace determinism.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <string>

#include "sim/sim_check.h"
#include "sim/trial_pool.h"

using namespace escape;

namespace {

int usage(const char* argv0) {
  std::string names;
  for (const auto& [name, weight] : sim::default_action_weights()) {
    if (!names.empty()) names += ",";
    names += name + ("=" + std::to_string(weight));
  }
  std::fprintf(stderr,
               "usage: %s [--trials N] [--root-seed S] [--threads T]\n"
               "          [--max-faults K] [--no-determinism]\n"
               "          [--actions name=weight,...]  reweight the fuzz vocabulary\n"
               "          [--scenario-seed N]   replay one trial verbosely\n"
               "default action weights: %s\n",
               argv0, names.c_str());
  return 2;
}

/// Parses "name=weight,name=weight" into options. Unknown names or
/// unparsable weights fail (returning false) rather than silently fuzzing a
/// different vocabulary than the caller asked for.
bool parse_actions(const char* spec, std::map<std::string, int>* out) {
  const auto& known = sim::default_action_weights();
  std::string s(spec);
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t comma = std::min(s.find(',', pos), s.size());
    const std::size_t eq = s.find('=', pos);
    if (eq == std::string::npos || eq >= comma) return false;
    const std::string name = s.substr(pos, eq - pos);
    if (known.find(name) == known.end()) {
      std::fprintf(stderr, "unknown action '%s'\n", name.c_str());
      return false;
    }
    if (eq + 1 >= comma) return false;  // empty weight ("crash=") is a typo, not 0
    char* end = nullptr;
    const long weight = std::strtol(s.c_str() + eq + 1, &end, 10);
    if (end != s.c_str() + comma || weight < 0) return false;
    (*out)[name] = static_cast<int>(weight);
    pos = comma + (comma < s.size() ? 1 : 0);
  }
  if (out->empty()) return false;
  // Retiring every family leaves nothing to schedule; reject up front with a
  // usage error instead of throwing from deep inside plan generation (same
  // arithmetic as the engine, so CLI and engine can never disagree).
  if (sim::effective_action_weight_total(*out) <= 0) {
    std::fprintf(stderr, "--actions retires every action family\n");
    return false;
  }
  return true;
}

bool parse_u64(const char* s, std::uint64_t* out) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s, &end, 0);
  if (end == s || *end != '\0' || errno == ERANGE || s[0] == '-') return false;
  *out = static_cast<std::uint64_t>(v);
  return true;
}

int replay_one(std::uint64_t scenario_seed, const sim::SimCheckOptions& options) {
  const sim::FuzzCase fuzz = sim::make_fuzz_case(scenario_seed, options);
  std::printf("scenario-seed=%llu policy=%s servers=%zu baseline-loss=%.0f%% cluster-seed=%llu\n",
              static_cast<unsigned long long>(scenario_seed), fuzz.params.policy.c_str(),
              fuzz.params.servers, fuzz.params.broadcast_omission * 100,
              static_cast<unsigned long long>(fuzz.params.seed));
  std::printf("schedule (%zu actions):\n", fuzz.plan.actions().size());
  for (const auto& line : sim::describe_plan(fuzz.plan)) {
    std::printf("  %s\n", line.c_str());
  }

  sim::SimCheckFailure failure;
  const sim::ScenarioReport report = sim::run_fuzz_trial(scenario_seed, options, &failure);
  std::printf("\nbootstrapped=%s episodes=%zu (", report.bootstrapped ? "yes" : "NO",
              report.episodes.size());
  std::size_t converged = 0;
  for (const auto& e : report.episodes) converged += e.converged ? 1 : 0;
  std::printf("%zu converged) traffic=%zu executed-actions=%zu trace-events=%zu\n", converged,
              report.traffic_submitted, report.executed_actions, report.trace.size());
  std::printf("leaders by term:");
  for (const auto& [term, leader] : report.leaders_by_term) {
    std::printf(" %lld:%s", static_cast<long long>(term), server_name(leader).c_str());
  }
  std::printf("\n");

  if (failure.repro.empty()) {
    std::printf("verdict: OK (invariants hold%s)\n",
                options.check_determinism ? ", trace deterministic" : "");
    return 0;
  }
  std::printf("verdict: VIOLATION%s\n", failure.trace_diverged ? " [trace diverged]" : "");
  for (const auto& v : failure.violations) std::printf("  violation: %s\n", v.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  sim::SimCheckOptions options;
  options.trials = 100;
  std::optional<std::uint64_t> scenario_seed;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const auto flag = [arg](const char* name) { return std::strcmp(arg, name) == 0; };
    std::uint64_t value = 0;
    if (flag("--no-determinism")) {
      options.check_determinism = false;
    } else if (flag("--actions")) {
      if (i + 1 >= argc || !parse_actions(argv[++i], &options.action_weights)) {
        return usage(argv[0]);
      }
    } else if (i + 1 < argc && parse_u64(argv[i + 1], &value)) {
      ++i;
      if (flag("--trials")) {
        options.trials = static_cast<std::size_t>(value);
      } else if (flag("--root-seed")) {
        options.root_seed = value;
      } else if (flag("--threads")) {
        options.threads = static_cast<std::size_t>(value);
      } else if (flag("--max-faults")) {
        options.max_faults = static_cast<std::size_t>(value);
      } else if (flag("--scenario-seed")) {
        scenario_seed = value;
      } else {
        return usage(argv[0]);
      }
    } else {
      return usage(argv[0]);
    }
  }

  if (scenario_seed) return replay_one(*scenario_seed, options);

  const std::size_t threads =
      options.threads == 0 ? sim::TrialPool::default_threads() : options.threads;
  std::printf("SimCheck: %zu randomized trials, root-seed=%llu, threads=%zu%s\n",
              options.trials, static_cast<unsigned long long>(options.root_seed), threads,
              options.check_determinism ? ", determinism replay on" : "");

  const sim::SimCheckResult result = sim::run_sim_check(options);
  std::printf("trials=%zu actions=%zu episodes=%zu (%zu converged) traffic=%zu\n",
              result.trials, result.executed_actions, result.episodes,
              result.converged_episodes, result.traffic_submitted);
  std::printf("action coverage (scheduled plan actions across all trials):\n");
  for (const auto& [name, count] : result.action_histogram) {
    std::printf("  %-16s %zu\n", name.c_str(), count);
  }
  if (result.ok()) {
    std::printf("SimCheck PASSED: zero invariant or determinism violations\n");
    return 0;
  }
  std::printf("SimCheck FAILED: %zu violating trial(s)\n", result.failures.size());
  for (const auto& f : result.failures) {
    std::printf("  seed=%llu policy=%s servers=%zu%s%s — repro: %s\n",
                static_cast<unsigned long long>(f.scenario_seed), f.policy.c_str(), f.servers,
                f.trace_diverged ? " [trace diverged]" : "",
                f.bootstrapped ? "" : " [bootstrap failed]", f.repro.c_str());
    for (const auto& v : f.violations) std::printf("    violation: %s\n", v.c_str());
  }
  return 1;
}
