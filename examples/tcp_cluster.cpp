// Real deployment path: a 3-server ESCAPE cluster over actual TCP sockets
// on 127.0.0.1, running in real time (no simulator). Elects a leader,
// replicates a command, fails the leader process, and re-elects.
//
//   $ ./examples/tcp_cluster
//
// Timeouts are scaled down (base 300 ms, 60 ms heartbeats) so the demo
// finishes in a couple of wall-clock seconds.
#include <chrono>
#include <cstdio>
#include <thread>

#include "core/escape_policy.h"
#include "net/event_loop.h"
#include "net/real_cluster.h"

using namespace escape;

namespace {

net::PolicyFactory demo_policy() {
  core::EscapeOptions opts;
  opts.base_time = from_ms(300);
  opts.gap = from_ms(150);
  return [opts](ServerId id, std::size_t n) {
    return std::make_unique<core::EscapePolicy>(id, n, opts);
  };
}

ServerId wait_for_leader(const std::vector<std::unique_ptr<net::RealNode>>& nodes,
                         int timeout_ms) {
  for (int waited = 0; waited < timeout_ms; waited += 20) {
    for (const auto& node : nodes) {
      if (node && node->role() == Role::kLeader) return node->id();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return kNoServer;
}

}  // namespace

int main() {
  // Port 0 everywhere: bind every listener first (the kernel assigns free
  // ports), then hand the open fds to the nodes — parallel demo runs never
  // collide and no port can be stolen between discovery and use.
  std::map<ServerId, std::uint16_t> endpoints;
  std::map<ServerId, int> listen_fds;
  for (ServerId id = 1; id <= 3; ++id) {
    const auto listener = net::bind_loopback_listener(0);
    endpoints[id] = listener.port;
    listen_fds[id] = listener.fd;
  }

  std::vector<std::unique_ptr<net::RealNode>> nodes;
  for (const auto& [id, port] : endpoints) {
    net::RealNode::Options options;
    options.node.heartbeat_interval = from_ms(60);
    options.listen_fd = listen_fds[id];
    nodes.push_back(std::make_unique<net::RealNode>(id, endpoints, demo_policy(), options));
  }
  for (auto& node : nodes) node->start();
  std::printf("3 nodes listening on 127.0.0.1:{%u,%u,%u} (kernel-assigned)\n", endpoints[1],
              endpoints[2], endpoints[3]);

  const ServerId first = wait_for_leader(nodes, 5000);
  if (first == kNoServer) {
    std::printf("no leader elected within 5 s\n");
    return 1;
  }
  std::printf("leader elected: %s\n", server_name(first).c_str());

  // Submit a command through the leader and wait for commit.
  auto& leader_node = *nodes[first - 1];
  const auto index = leader_node.submit({'h', 'i'});
  if (!index) {
    std::printf("submit rejected (leadership moved)\n");
    return 1;
  }
  for (int waited = 0; waited < 3000 && leader_node.commit_index() < *index; waited += 20) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  std::printf("command committed at index %lld\n", static_cast<long long>(*index));

  // Fail the leader process; the survivors re-elect.
  std::printf("stopping leader %s...\n", server_name(first).c_str());
  nodes[first - 1]->stop();
  nodes[first - 1].reset();

  const ServerId second = wait_for_leader(nodes, 5000);
  if (second == kNoServer) {
    std::printf("no new leader within 5 s\n");
    return 1;
  }
  std::printf("new leader elected: %s (term %lld)\n", server_name(second).c_str(),
              static_cast<long long>(nodes[second - 1]->term()));

  for (auto& node : nodes) {
    if (node) node->stop();
  }
  std::printf("done\n");
  return 0;
}
