// Membership demo: grow a live 3-server ESCAPE cluster to 5 servers through
// the full AddServer workflow — rack the machine, add it as a learner, let
// it catch up, promote it via joint consensus — then kill the leader in the
// middle of the second expansion's joint configuration and watch the
// handoff complete anyway.
//
//   $ ./examples/membership_demo
//
// Everything runs in deterministic virtual time; re-running reproduces the
// identical timeline. Exits non-zero if the expansion stalls, an acked write
// is lost, or the cluster ends anywhere other than 5 settled voters.
#include <cstdio>
#include <vector>

#include "sim/presets.h"
#include "sim/scenario.h"

using namespace escape;

namespace {

/// Admin-client retry loop for AddServer: re-derive the next step (add
/// learner -> wait for catch-up -> promote) from the leader's current
/// membership, retrying through kBusy, kNotCaughtUp and leader changes.
bool join(sim::SimCluster& cluster, ServerId id, Duration max_wait) {
  auto& loop = cluster.loop();
  const TimePoint deadline = loop.now() + max_wait;
  while (loop.now() < deadline) {
    const ServerId l = cluster.leader();
    if (l != kNoServer) {
      const auto& m = cluster.node(l).membership();
      if (m.is_voter(id) && !m.joint()) return true;
      if (!m.is_voter(id)) {
        cluster.propose_conf_change({m.is_learner(id) ? rpc::ConfChangeOp::kPromote
                                                      : rpc::ConfChangeOp::kAddLearner,
                                     id});
      }
    }
    loop.run_until(loop.now() + from_ms(200));
  }
  return false;
}

}  // namespace

int main() {
  sim::SimCluster cluster(sim::presets::paper_cluster(3, sim::presets::escape_policy(), 42));

  cluster.add_event_listener([&](const raft::NodeEvent& e) {
    switch (e.kind) {
      case raft::NodeEvent::Kind::kBecameLeader:
        std::printf("[%7.1f ms] %s elected leader of term %lld\n", to_ms_f(e.at),
                    server_name(e.node).c_str(), static_cast<long long>(e.term));
        break;
      case raft::NodeEvent::Kind::kMembershipChanged:
        std::printf("[%7.1f ms] %s adopts config entry @%lld\n", to_ms_f(e.at),
                    server_name(e.node).c_str(), static_cast<long long>(e.index));
        break;
      default:
        break;
    }
  });

  std::printf("--- bootstrap: 3 voters ---\n");
  if (sim::bootstrap(cluster) == kNoServer) {
    std::printf("bootstrap failed\n");
    return 1;
  }

  // Keep writes flowing through the whole demo; every acked one must survive.
  std::printf("--- replicating while expanding ---\n");
  sim::drive_traffic(cluster, from_ms(2'000), from_ms(200));
  const LogIndex acked_before = cluster.node(cluster.leader()).commit_index();

  // First expansion: 3 -> 4, the happy path.
  std::printf("--- AddServer S4: learner, catch-up, promote ---\n");
  cluster.add_host(4);
  if (!join(cluster, 4, from_ms(60'000))) {
    std::printf("S4 never became a settled voter\n");
    return 1;
  }
  std::printf("S4 is a voter; cluster quorum is now %zu of %zu\n",
              cluster.node(4).quorum(), cluster.node(4).cluster_size());

  // Second expansion: 3 -> 5, with the leader killed mid-joint-config. The
  // joint entry Cold,new survives on a quorum, the successor inherits the
  // in-flight handoff, auto-commits Cnew, and the join completes.
  std::printf("--- AddServer S5 with a leader crash mid-joint-config ---\n");
  cluster.add_host(5);
  // Retry through kBusy: the previous expansion's Cnew may still be in
  // flight (one membership change at a time).
  while (cluster.propose_conf_change({rpc::ConfChangeOp::kAddLearner, 5}).status !=
         rpc::ConfChangeStatus::kOk) {
    cluster.loop().run_until(cluster.loop().now() + from_ms(500));
  }
  // Let the learner catch up, then push it into the joint phase.
  cluster.loop().run_until(cluster.loop().now() + from_ms(3'000));
  rpc::ConfChangeStatus promoted = rpc::ConfChangeStatus::kNotLeader;
  while (promoted != rpc::ConfChangeStatus::kOk) {
    promoted = cluster.propose_conf_change({rpc::ConfChangeOp::kPromote, 5}).status;
    if (promoted != rpc::ConfChangeStatus::kOk) {
      cluster.loop().run_until(cluster.loop().now() + from_ms(500));
    }
  }
  const ServerId doomed = cluster.leader();
  std::printf("joint config Cold,new appended by %s -- crashing it now\n",
              server_name(doomed).c_str());
  cluster.crash(doomed);

  if (!join(cluster, 5, from_ms(120'000))) {
    std::printf("S5 never became a settled voter after the leader crash\n");
    return 1;
  }
  std::printf("handoff completed by %s despite the crash\n",
              server_name(cluster.leader()).c_str());
  cluster.recover(doomed);
  cluster.loop().run_until(cluster.loop().now() + from_ms(3'000));

  // Final state: 5 settled voters everywhere, no acked write lost.
  std::printf("--- final state ---\n");
  const std::vector<ServerId> expected{1, 2, 3, 4, 5};
  for (const ServerId id : cluster.members()) {
    if (!cluster.alive(id)) continue;
    const auto& m = cluster.node(id).membership();
    if (m.voters != expected || m.joint()) {
      std::printf("%s has not settled on the 5-voter config\n", server_name(id).c_str());
      return 1;
    }
  }
  const ServerId leader = cluster.leader();
  if (leader == kNoServer ||
      cluster.node(leader).commit_index() < acked_before) {
    std::printf("acked writes went missing\n");
    return 1;
  }
  std::printf("all servers settled on voters {S1..S5}; commit %lld >= pre-expansion %lld\n",
              static_cast<long long>(cluster.node(leader).commit_index()),
              static_cast<long long>(acked_before));
  return 0;
}
