// Quickstart: spin up a simulated 5-server ESCAPE cluster, replicate a few
// commands, crash the leader, and watch the precautionary election resolve
// in a single campaign.
//
//   $ ./examples/quickstart
//
// Everything runs in deterministic virtual time; re-running reproduces the
// identical timeline.
#include <cstdio>

#include "sim/presets.h"
#include "sim/scenario.h"

using namespace escape;

int main() {
  // 1. A 5-server cluster with the paper's parameters: 100-200 ms latency,
  //    500 ms heartbeats, ESCAPE configurations from baseTime=1500 ms,
  //    k=500 ms.
  sim::SimCluster cluster(sim::presets::paper_cluster(5, sim::presets::escape_policy(), 42));

  // Print the interesting protocol events as they happen.
  cluster.add_event_listener([&](const raft::NodeEvent& e) {
    switch (e.kind) {
      case raft::NodeEvent::Kind::kCampaignStarted:
        std::printf("[%7.1f ms] %s campaigns in term %lld\n", to_ms_f(e.at),
                    server_name(e.node).c_str(), static_cast<long long>(e.term));
        break;
      case raft::NodeEvent::Kind::kBecameLeader:
        std::printf("[%7.1f ms] %s elected leader of term %lld\n", to_ms_f(e.at),
                    server_name(e.node).c_str(), static_cast<long long>(e.term));
        break;
      case raft::NodeEvent::Kind::kConfigAdopted:
        std::printf("[%7.1f ms] %s adopts pi(P=%d, k=%lld) timeout=%lld ms\n", to_ms_f(e.at),
                    server_name(e.node).c_str(), e.config.priority,
                    static_cast<long long>(e.config.conf_clock),
                    static_cast<long long>(to_ms(e.config.timer_period)));
        break;
      default:
        break;
    }
  });

  // 2. Cold start: the highest-id server has the shortest SCA timeout and
  //    wins the first election without competition.
  std::printf("--- bootstrap ---\n");
  const ServerId leader = sim::bootstrap(cluster);
  if (leader == kNoServer) {
    std::printf("bootstrap failed\n");
    return 1;
  }
  std::printf("leader: %s; patrol has distributed the configuration pool:\n",
              server_name(leader).c_str());
  for (ServerId id : cluster.members()) {
    const auto cfg = cluster.node(id).policy().current_config();
    std::printf("  %s  priority=%d  confClock=%lld  election timeout=%lld ms%s\n",
                server_name(id).c_str(), cfg.priority, static_cast<long long>(cfg.conf_clock),
                static_cast<long long>(to_ms(cfg.timer_period)),
                id == leader ? "  (leader: timer disarmed)" : "");
  }

  // 3. Replicate some commands through the leader.
  std::printf("--- replicating 5 commands ---\n");
  for (int i = 0; i < 5; ++i) {
    cluster.submit_via_leader({static_cast<std::uint8_t>('a' + i)});
  }
  cluster.run_until_applied(5, cluster.loop().now() + from_ms(10'000));
  std::printf("commit index on every server: ");
  for (ServerId id : cluster.members()) {
    std::printf("%s=%lld ", server_name(id).c_str(),
                static_cast<long long>(cluster.node(id).commit_index()));
  }
  std::printf("\n");

  // 4. Kill the leader. ESCAPE's groomed "future leader" (the follower
  //    holding the top-priority configuration) detects the failure after
  //    baseTime (1500 ms) and wins in exactly one campaign.
  std::printf("--- crashing the leader ---\n");
  const auto result = sim::measure_failover(cluster);
  std::printf("new leader %s in term %lld after %.0f ms "
              "(detection %.0f ms + election %.0f ms), campaigns: %zu\n",
              server_name(result.new_leader).c_str(),
              static_cast<long long>(result.new_term), to_ms_f(result.total),
              to_ms_f(result.detection), to_ms_f(result.election), result.campaigns);

  // 5. The log — including everything committed before the crash — survives.
  std::printf("--- state after failover ---\n");
  std::printf("entries at the new leader: %lld (all %d pre-crash commands retained)\n",
              static_cast<long long>(cluster.node(result.new_leader).log().last_index()), 5);
  return 0;
}
