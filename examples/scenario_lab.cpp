// Scenario lab: run any named scenario from the registry and inspect its
// measured episodes, traffic, network losses, safety verdict, and
// determinism (the same seed always reproduces the identical event trace).
//
//   $ ./examples/scenario_lab                 # list the registered scenarios
//   $ ./examples/scenario_lab <name> [policy] [servers] [loss%] [seed]
//     name     a registered scenario (see the listing)
//     policy   raft | zraft | escape          (default escape)
//     servers  cluster size                   (default 5)
//     loss%    baseline broadcast omission    (default 0)
//     seed     RNG seed                       (default 1)
//
//   e.g.  ./examples/scenario_lab gray_leader raft 7 0 42
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "sim/scenario_registry.h"

using namespace escape;

namespace {

int list_scenarios() {
  std::printf("registered scenarios:\n\n");
  for (const auto* spec : sim::all_scenarios()) {
    std::printf("  %-22s %s\n", spec->name.c_str(), spec->description.c_str());
  }
  std::printf("\nusage: scenario_lab <name> [policy] [servers] [loss%%] [seed]\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return list_scenarios();

  const std::string name = argv[1];
  const sim::ScenarioSpec* spec = sim::find_scenario(name);
  if (!spec) {
    std::fprintf(stderr, "unknown scenario '%s'\n\n", name.c_str());
    list_scenarios();
    return 2;
  }

  sim::ScenarioParams params;
  if (argc > 2) params.policy = argv[2];
  if (argc > 3) {
    const int servers = std::atoi(argv[3]);
    if (servers <= 0 || servers > 1024) {
      std::fprintf(stderr, "error: servers must be in 1..1024 (got '%s')\n", argv[3]);
      return 2;
    }
    params.servers = static_cast<std::size_t>(servers);
  }
  if (argc > 4) {
    const double loss = std::atof(argv[4]);
    if (loss < 0.0 || loss > 100.0) {
      std::fprintf(stderr, "error: loss%% must be in 0..100 (got '%s')\n", argv[4]);
      return 2;
    }
    params.broadcast_omission = loss / 100.0;
  }
  if (argc > 5) {
    char* end = nullptr;
    const unsigned long long seed = std::strtoull(argv[5], &end, 0);
    if (end == argv[5] || *end != '\0' || argv[5][0] == '-') {
      std::fprintf(stderr, "error: seed must be a non-negative integer (got '%s')\n",
                   argv[5]);
      return 2;
    }
    params.seed = static_cast<std::uint64_t>(seed);
  }

  std::printf("scenario=%s policy=%s servers=%zu loss=%.0f%% seed=%llu\n", name.c_str(),
              params.policy.c_str(), params.servers, params.broadcast_omission * 100,
              static_cast<unsigned long long>(params.seed));
  std::printf("  %s\n\n", spec->description.c_str());

  sim::ScenarioReport report;
  try {
    report = sim::run_scenario(*spec, params);
  } catch (const std::invalid_argument& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }
  if (!report.bootstrapped) {
    std::printf("bootstrap did not elect a leader (try another seed)\n");
    return 1;
  }

  std::printf("bootstrap leader: %s\n", server_name(report.bootstrap_leader).c_str());
  if (report.episodes.empty()) {
    std::printf("no measurement episodes (the plan never deposed a leader)\n");
  }
  for (std::size_t i = 0; i < report.episodes.size(); ++i) {
    const auto& e = report.episodes[i];
    if (!e.converged) {
      std::printf("episode %zu: did not converge\n", i + 1);
      continue;
    }
    std::printf("episode %zu: %s leads term %lld after %7.1f ms "
                "(detection %7.1f + election %7.1f), campaigns: %zu\n",
                i + 1, server_name(e.new_leader).c_str(),
                static_cast<long long>(e.new_term), to_ms_f(e.total), to_ms_f(e.detection),
                to_ms_f(e.election), e.campaigns);
  }

  std::printf("\nclient commands submitted: %zu\n", report.traffic_submitted);
  std::printf("messages: %llu sent, %llu dropped (omission %llu, loss %llu, partition %llu)\n",
              static_cast<unsigned long long>(report.net.sent),
              static_cast<unsigned long long>(report.net.dropped_omission +
                                              report.net.dropped_loss +
                                              report.net.dropped_partition),
              static_cast<unsigned long long>(report.net.dropped_omission),
              static_cast<unsigned long long>(report.net.dropped_loss),
              static_cast<unsigned long long>(report.net.dropped_partition));
  std::printf("final state: leader=%s, %zu/%zu servers alive, %zu trace events\n",
              report.final_leader == kNoServer ? "none"
                                               : server_name(report.final_leader).c_str(),
              report.alive_servers, params.servers, report.trace.size());
  std::printf("safety invariants: %s\n", report.safety_ok() ? "OK" : "VIOLATED");
  for (const auto& v : report.violations) std::printf("  violation: %s\n", v.c_str());

  // The determinism contract, demonstrated: a second run with identical
  // parameters must replay the exact same event trace.
  const auto replay = sim::run_scenario(*spec, params);
  std::printf("determinism check (re-run, same seed): %s\n",
              replay.trace == report.trace ? "identical trace" : "TRACE DIVERGED");

  return report.safety_ok() && replay.trace == report.trace ? 0 : 1;
}
