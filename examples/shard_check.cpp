// ShardCheck CLI: randomized multi-group checking and the failover storm.
//
//   $ ./examples/shard_check                        # default fuzz run
//   $ ./examples/shard_check --trials 300 --root-seed 99 --threads 8
//   $ ./examples/shard_check --scenario-seed 1234567  # replay ONE trial
//   $ ./examples/shard_check --scenario shard_failover_storm \
//         --policy escape --shards 8 --hosts 5 --victim-leaders 4 --seed 7
//
// Fuzz mode drives randomized sharded deployments (host crashes/recoveries,
// leadership steering, routed client traffic) and audits the cross-shard
// invariants: per-group linearizability, no key served from the wrong group,
// no cross-group confClock leakage. Every trial is a pure function of its
// scenario seed, so the repro line a failure prints
// (`shard_check --scenario-seed N`) replays the exact deployment and fault
// schedule. Scenario mode runs one named host-level scenario and prints its
// report. Both modes exit non-zero on any violation.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "shard/shard_check.h"
#include "sim/trial_pool.h"

using namespace escape;

namespace {

int usage(const char* argv0) {
  std::string names;
  for (const auto& name : shard::shard_scenario_names()) {
    if (!names.empty()) names += ",";
    names += name;
  }
  std::fprintf(stderr,
               "usage: %s [--trials N] [--root-seed S] [--threads T]\n"
               "          [--max-fault-rounds K] [--no-determinism]\n"
               "          [--scenario-seed N]   replay one fuzz trial verbosely\n"
               "       %s --scenario NAME [--policy escape|zraft|raft] [--shards N]\n"
               "          [--hosts N] [--victim-leaders N] [--seed S]\n"
               "scenarios: %s\n",
               argv0, argv0, names.c_str());
  return 2;
}

bool parse_u64(const char* s, std::uint64_t* out) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s, &end, 0);
  if (end == s || *end != '\0' || errno == ERANGE || s[0] == '-') return false;
  *out = static_cast<std::uint64_t>(v);
  return true;
}

int replay_one(std::uint64_t scenario_seed, const shard::ShardCheckOptions& options) {
  const shard::ShardTrialReport r = shard::run_shard_trial(scenario_seed, options);
  std::printf("scenario-seed=%llu policy=%s shards=%zu hosts=%zu\n",
              static_cast<unsigned long long>(scenario_seed), r.policy.c_str(), r.shards,
              r.hosts);
  std::printf("bootstrapped=%s crashes=%zu recoveries=%zu transfers=%zu ops=%zu "
              "reads-checked=%zu digest=%016llx\n",
              r.bootstrapped ? "yes" : "NO", r.host_crashes, r.host_recoveries, r.transfers,
              r.ops, r.reads_checked, static_cast<unsigned long long>(r.digest));
  if (r.bootstrapped && r.violations.empty()) {
    std::printf("verdict: OK (cross-shard invariants hold%s)\n",
                options.check_determinism ? ", state digest deterministic" : "");
    return 0;
  }
  std::printf("verdict: VIOLATION\n");
  for (const auto& v : r.violations) std::printf("  violation: %s\n", v.c_str());
  return 1;
}

int run_storm(const std::string& name, const shard::StormOptions& options) {
  std::printf("scenario=%s policy=%s shards=%zu hosts=%zu victim-leaders=%zu seed=%llu\n",
              name.c_str(), options.policy.c_str(), options.shards, options.hosts,
              options.leaders_on_victim, static_cast<unsigned long long>(options.seed));
  const shard::StormReport report = shard::run_shard_scenario(name, options);
  std::printf("bootstrapped=%s leaders-packed=%zu shards-hit=%zu all-recovered=%s\n",
              report.bootstrapped ? "yes" : "NO", report.leaders_packed, report.shards_hit,
              report.all_recovered ? "yes" : "NO");
  std::printf("per-shard recovery (kill -> new leader), ms:");
  for (const Duration d : report.per_shard_total) {
    std::printf(" %lld", static_cast<long long>(to_ms(d)));
  }
  std::printf("\nfirst-recovery=%lldms storm-total=%lldms\n",
              static_cast<long long>(to_ms(report.first_recovery)),
              static_cast<long long>(to_ms(report.storm_total)));
  if (report.ok()) {
    std::printf("verdict: OK\n");
    return 0;
  }
  std::printf("verdict: FAILED\n");
  for (const auto& v : report.violations) std::printf("  violation: %s\n", v.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  shard::ShardCheckOptions options;
  shard::StormOptions storm;
  std::optional<std::uint64_t> scenario_seed;
  std::string scenario;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const auto flag = [arg](const char* name) { return std::strcmp(arg, name) == 0; };
    std::uint64_t value = 0;
    if (flag("--no-determinism")) {
      options.check_determinism = false;
    } else if (flag("--scenario")) {
      if (i + 1 >= argc) return usage(argv[0]);
      scenario = argv[++i];
    } else if (flag("--policy")) {
      if (i + 1 >= argc) return usage(argv[0]);
      storm.policy = argv[++i];
    } else if (i + 1 < argc && parse_u64(argv[i + 1], &value)) {
      ++i;
      if (flag("--trials")) {
        options.trials = static_cast<std::size_t>(value);
      } else if (flag("--root-seed")) {
        options.root_seed = value;
      } else if (flag("--threads")) {
        options.threads = static_cast<std::size_t>(value);
      } else if (flag("--max-fault-rounds")) {
        options.max_fault_rounds = static_cast<std::size_t>(value);
      } else if (flag("--scenario-seed")) {
        scenario_seed = value;
      } else if (flag("--shards")) {
        storm.shards = static_cast<std::size_t>(value);
      } else if (flag("--hosts")) {
        storm.hosts = static_cast<std::size_t>(value);
      } else if (flag("--victim-leaders")) {
        storm.leaders_on_victim = static_cast<std::size_t>(value);
      } else if (flag("--seed")) {
        storm.seed = value;
      } else {
        return usage(argv[0]);
      }
    } else {
      return usage(argv[0]);
    }
  }

  if (!scenario.empty()) {
    if (!shard::has_shard_scenario(scenario)) {
      std::fprintf(stderr, "unknown scenario '%s'\n", scenario.c_str());
      return usage(argv[0]);
    }
    return run_storm(scenario, storm);
  }
  if (scenario_seed) return replay_one(*scenario_seed, options);

  const std::size_t threads =
      options.threads == 0 ? sim::TrialPool::default_threads() : options.threads;
  std::printf("ShardCheck: %zu randomized multi-group trials, root-seed=%llu, threads=%zu%s\n",
              options.trials, static_cast<unsigned long long>(options.root_seed), threads,
              options.check_determinism ? ", determinism replay on" : "");

  const shard::ShardCheckResult result = shard::run_shard_check(options);
  std::printf("trials=%zu bootstrapped=%zu crashes=%zu recoveries=%zu transfers=%zu "
              "ops=%zu reads-checked=%zu\n",
              result.trials, result.bootstrapped, result.host_crashes,
              result.host_recoveries, result.transfers, result.ops, result.reads_checked);
  std::printf("policy coverage:\n");
  for (const auto& [name, count] : result.policy_histogram) {
    std::printf("  %-8s %zu\n", name.c_str(), count);
  }
  if (result.ok()) {
    std::printf("ShardCheck PASSED: zero cross-shard invariant violations\n");
    return 0;
  }
  std::printf("ShardCheck FAILED: %zu violating trial(s)\n", result.failures.size());
  for (const auto& f : result.failures) {
    std::printf("  seed=%llu policy=%s shards=%zu hosts=%zu — repro: %s\n",
                static_cast<unsigned long long>(f.scenario_seed), f.policy.c_str(), f.shards,
                f.hosts, f.repro.c_str());
    for (const auto& v : f.violations) std::printf("    violation: %s\n", v.c_str());
  }
  return 1;
}
