// Consistent-hash shard router.
//
// Maps every key to exactly one consensus group the way tarantool's vshard
// layers routing above replication: a hash ring of virtual nodes, each owned
// by a shard, with a key served by the first virtual node at or after its
// hash point (wrapping at the top of the ring). Virtual nodes smooth the
// per-shard key share; the ring is built once from (shard count, vnode
// count) and is identical on every process that constructs it with the same
// parameters — routing needs no coordination and can never disagree between
// a client and the groups.
//
// Hashing is FNV-1a over the key bytes with a splitmix64 finalizer (not
// std::hash, whose value is implementation-defined and would make routing —
// and therefore every sharded test and bench — differ across standard
// libraries).
#pragma once

#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

namespace escape::shard {

using ShardId = std::uint32_t;

/// 64-bit FNV-1a over `bytes`; the ring's hash function, exposed for tests.
std::uint64_t fnv1a64(std::string_view bytes);

struct RouterOptions {
  std::size_t shards = 1;
  /// Virtual nodes per shard. More vnodes flatten the key-share spread at
  /// the cost of a larger (still tiny) ring; 64 keeps the max/min share
  /// under ~2x, plenty for a bench/test substrate.
  std::size_t vnodes_per_shard = 64;
};

class ShardRouter {
 public:
  /// Builds the ring. Throws std::invalid_argument when shards or
  /// vnodes_per_shard is 0.
  explicit ShardRouter(RouterOptions options);

  /// The owning shard of `key`: first ring point at or after fnv1a64(key),
  /// wrapping past the top.
  ShardId shard_of(std::string_view key) const;

  std::size_t shards() const { return options_.shards; }
  std::size_t ring_size() const { return ring_.size(); }

  /// Fraction of a large pseudo-random key population owned by each shard
  /// (distribution diagnostics in tests and the bench).
  std::vector<double> key_shares(std::size_t keys = 100'000) const;

 private:
  RouterOptions options_;
  /// (hash point, owner), sorted by hash point.
  std::vector<std::pair<std::uint64_t, ShardId>> ring_;
};

}  // namespace escape::shard
