#include "shard/sharded_kv.h"

namespace escape::shard {

ShardedKv::ShardedKv(ShardedCluster& cluster)
    : cluster_(cluster), routed_(cluster.shards(), 0) {
  kvs_.reserve(cluster_.shards());
  for (ShardId shard = 0; shard < cluster_.shards(); ++shard) {
    kvs_.push_back(std::make_unique<kv::KvCluster>(cluster_.group(shard)));
  }
}

std::optional<kv::CommandResult> ShardedKv::put(const std::string& key,
                                                const std::string& value, Duration timeout) {
  const ShardId shard = owner(key);
  ++routed_[shard];
  return kvs_[shard]->put(key, value, timeout);
}

std::optional<kv::CommandResult> ShardedKv::get(const std::string& key, Duration timeout) {
  const ShardId shard = owner(key);
  ++routed_[shard];
  return kvs_[shard]->get(key, timeout);
}

std::optional<kv::CommandResult> ShardedKv::del(const std::string& key, Duration timeout) {
  const ShardId shard = owner(key);
  ++routed_[shard];
  return kvs_[shard]->del(key, timeout);
}

std::optional<kv::CommandResult> ShardedKv::read(const std::string& key, Duration timeout) {
  const ShardId shard = owner(key);
  ++routed_[shard];
  return kvs_[shard]->read(key, timeout);
}

std::vector<std::string> ShardedKv::routing_violations() const {
  std::vector<std::string> violations;
  for (ShardId shard = 0; shard < cluster_.shards(); ++shard) {
    for (ServerId host = 1; host <= cluster_.hosts(); ++host) {
      kvs_[shard]->store(host).for_each_key([&](const std::string& key) {
        const ShardId want = cluster_.shard_of(key);
        if (want != shard) {
          violations.push_back("key '" + key + "' found in shard " + std::to_string(shard) +
                               " replica " + server_name(host) + " but routes to shard " +
                               std::to_string(want));
        }
      });
    }
  }
  return violations;
}

}  // namespace escape::shard
