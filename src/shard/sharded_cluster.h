// Multi-Raft deployment: N independent consensus groups over one host set.
//
// Each shard is a full SimCluster — its own patrol, confClock, leases, WAL,
// snapshot store and log — and all groups share one EventLoop, so the whole
// deployment advances through a single virtual timeline the way co-located
// groups share wall-clock time on real hardware. Host h is ServerId h in
// every group (the multi-Raft colocation model: one machine carries one
// replica of every shard), so crashing a host takes down its replica in all
// groups at once — the failure mode the shard_failover_storm scenario
// measures.
//
// The Ready core is untouched: a shard's RaftNode/driver stack is exactly
// the single-group stack; this layer only composes instances and adds
// host-level fault injection plus leader placement.
#pragma once

#include <memory>
#include <vector>

#include "shard/router.h"
#include "sim/event_loop.h"
#include "sim/sim_cluster.h"

namespace escape::shard {

struct ShardedClusterOptions {
  std::size_t shards = 4;
  std::size_t hosts = 5;
  /// Per-group election policy; defaults (like SimCluster) to randomized
  /// Raft. Pass sim::presets::escape_policy() for ESCAPE groups.
  sim::PolicyFactory policy;
  raft::NodeOptions node;
  raft::NodeDriver::Options driver;
  sim::NetworkOptions network;
  std::uint64_t seed = 42;
  LogIndex snapshot_interval = 0;
  std::size_t vnodes_per_shard = 64;
};

class ShardedCluster {
 public:
  explicit ShardedCluster(ShardedClusterOptions options);

  /// Starts every group's nodes. Must be called once.
  void start_all();

  // --- accessors -----------------------------------------------------------
  sim::EventLoop& loop() { return loop_; }
  const ShardRouter& router() const { return router_; }
  std::size_t shards() const { return groups_.size(); }
  std::size_t hosts() const { return options_.hosts; }
  sim::SimCluster& group(ShardId shard) { return *groups_.at(shard); }
  const sim::SimCluster& group(ShardId shard) const { return *groups_.at(shard); }
  ShardId shard_of(std::string_view key) const { return router_.shard_of(key); }

  /// Current leader of one shard (kNoServer when leaderless).
  ServerId leader(ShardId shard) const { return group(shard).leader(); }

  /// Number of shards whose current leader lives on `host`.
  std::size_t leaders_on(ServerId host) const;

  // --- driving -------------------------------------------------------------
  /// Advances the shared loop by `d` of virtual time.
  void run_for(Duration d);

  /// Runs until every shard has a leader or `deadline` passes; true when all
  /// groups ended up led.
  bool run_until_all_leaders(TimePoint deadline);

  /// start_all + elections + a settling period, the standard preamble:
  /// returns false when some group failed to elect within `max_wait`.
  bool bootstrap_all(Duration max_wait = from_ms(120'000), Duration settle = from_ms(3'000));

  // --- leader placement ----------------------------------------------------
  /// The host shard `shard`'s leader is steered to by spread_leaders():
  /// round-robin over hosts so no host concentrates leaderships.
  ServerId default_placement(ShardId shard) const {
    return static_cast<ServerId>(shard % options_.hosts) + 1;
  }

  /// Steers shard `shard`'s leadership onto `host` via leadership transfer,
  /// retrying until it lands or `max_wait` elapses. True on success.
  bool place_leader(ShardId shard, ServerId host, Duration max_wait = from_ms(30'000));

  /// Places every shard's leader at its default_placement. Returns the
  /// number of shards whose leader ended up where asked.
  std::size_t spread_leaders(Duration max_wait = from_ms(30'000));

  /// Concentrates the leaders of shards [0, count) onto `host` (the storm
  /// scenario's setup: one machine serving many shard-leaders). Returns how
  /// many landed.
  std::size_t pack_leaders(ServerId host, std::size_t count,
                           Duration max_wait = from_ms(30'000));

  // --- membership ----------------------------------------------------------
  /// Racks a fresh machine and runs the AddServer workflow (learner ->
  /// catch-up -> promote) against *every* group, driving the shared loop
  /// until the host is a settled voter in all of them or `max_wait` elapses.
  /// One machine carries one replica of every shard, so scaling out means N
  /// independent joint-consensus handshakes sharing one timeline. True when
  /// every group settled. Idempotent per group: groups where the host is
  /// already racked (or already a voter) just re-verify.
  bool join_host(ServerId host, Duration max_wait = from_ms(120'000));

  /// Runs RemoveServer against every group until `host` is out of all their
  /// configurations. The machine stays racked (its replicas keep ticking,
  /// harmlessly non-voting) — crash_host afterwards models decommissioning.
  /// Removing a host that currently leads some groups is fine: each such
  /// leader commits Cnew and retires, and the group re-elects. Note
  /// default_placement keeps its original host count; steer leaders
  /// explicitly after a topology change.
  bool remove_host(ServerId host, Duration max_wait = from_ms(120'000));

  // --- host-level faults ---------------------------------------------------
  /// Crashes `host`'s replica in every group where it is up. Volatile state
  /// dies everywhere at once; per-group durable state survives.
  void crash_host(ServerId host);

  /// Recovers `host`'s replica in every group where it is down.
  void recover_host(ServerId host);

  /// True when the host's replica is up in every group (replicas only go
  /// down together via crash_host, so any-group would be equivalent).
  bool host_alive(ServerId host) const;

 private:
  ShardedClusterOptions options_;
  sim::EventLoop loop_;
  ShardRouter router_;
  std::vector<std::unique_ptr<sim::SimCluster>> groups_;
};

}  // namespace escape::shard
