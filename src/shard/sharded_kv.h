// Sharded KV client: the router in front of one KvCluster per group.
//
// Every operation hashes its key through the ShardRouter and runs against
// exactly the owning group's replicated KvStore; cross-shard operations do
// not exist at this layer (the paper's scale-out story is independent
// groups, not distributed transactions). routing_violations() audits the
// other direction: no replica of any group may hold a key the router maps
// elsewhere — the "router never serves a key from the wrong group"
// invariant, checked from the authoritative state machines rather than from
// client bookkeeping.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "kv/kv_cluster.h"
#include "shard/sharded_cluster.h"

namespace escape::shard {

class ShardedKv {
 public:
  /// Wraps `cluster` (which must outlive this object). Installs each group's
  /// KvCluster apply hooks; nothing else may install hooks on those groups.
  explicit ShardedKv(ShardedCluster& cluster);

  /// Synchronous client operations, routed by key. Same semantics as the
  /// single-group KvCluster calls they forward to.
  std::optional<kv::CommandResult> put(const std::string& key, const std::string& value,
                                       Duration timeout = from_ms(60'000));
  std::optional<kv::CommandResult> get(const std::string& key,
                                       Duration timeout = from_ms(60'000));
  std::optional<kv::CommandResult> del(const std::string& key,
                                       Duration timeout = from_ms(60'000));

  /// Linearizable fast-path read (lease / ReadIndex) against the owning
  /// group's leader.
  std::optional<kv::CommandResult> read(const std::string& key,
                                        Duration timeout = from_ms(60'000));

  ShardId owner(const std::string& key) const { return cluster_.shard_of(key); }
  kv::KvCluster& group_kv(ShardId shard) { return *kvs_.at(shard); }

  /// Operations routed to each shard so far (client-side balance metric).
  const std::vector<std::size_t>& ops_routed() const { return routed_; }

  /// Scans every replica store of every group and reports each key whose
  /// router owner is a different group. Empty means routing never leaked.
  std::vector<std::string> routing_violations() const;

 private:
  ShardedCluster& cluster_;
  std::vector<std::unique_ptr<kv::KvCluster>> kvs_;
  std::vector<std::size_t> routed_;
};

}  // namespace escape::shard
