#include "shard/sharded_cluster.h"

#include <algorithm>
#include <stdexcept>

#include "common/rng.h"

namespace escape::shard {

ShardedCluster::ShardedCluster(ShardedClusterOptions options)
    : options_(std::move(options)),
      router_({options_.shards, options_.vnodes_per_shard}) {
  if (options_.shards == 0) throw std::invalid_argument("need at least one shard");
  if (options_.hosts == 0) throw std::invalid_argument("need at least one host");
  groups_.reserve(options_.shards);
  for (ShardId shard = 0; shard < options_.shards; ++shard) {
    sim::ClusterOptions group_options;
    group_options.size = options_.hosts;
    group_options.policy = options_.policy;
    group_options.node = options_.node;
    group_options.driver = options_.driver;
    group_options.network = options_.network;
    // Independent deterministic randomness per group (elections, network
    // jitter), all derived from one deployment seed.
    group_options.seed = stream_seed(options_.seed, shard);
    group_options.snapshot_interval = options_.snapshot_interval;
    group_options.loop = &loop_;
    groups_.push_back(std::make_unique<sim::SimCluster>(std::move(group_options)));
  }
}

void ShardedCluster::start_all() {
  for (auto& group : groups_) group->start_all();
}

std::size_t ShardedCluster::leaders_on(ServerId host) const {
  std::size_t count = 0;
  for (const auto& group : groups_) {
    if (group->leader() == host) ++count;
  }
  return count;
}

void ShardedCluster::run_for(Duration d) { loop_.run_until(loop_.now() + d); }

bool ShardedCluster::run_until_all_leaders(TimePoint deadline) {
  auto all_led = [&] {
    return std::all_of(groups_.begin(), groups_.end(),
                       [](const auto& g) { return g->leader() != kNoServer; });
  };
  // Step the shared loop in slices: per-group stop predicates would fight
  // over the one loop, and elections resolve within a few slices anyway.
  while (!all_led() && loop_.now() < deadline) {
    loop_.run_until(std::min(deadline, loop_.now() + from_ms(200)));
  }
  return all_led();
}

bool ShardedCluster::bootstrap_all(Duration max_wait, Duration settle) {
  start_all();
  if (!run_until_all_leaders(loop_.now() + max_wait)) return false;
  run_for(settle);
  // Settling can itself reshuffle a leadership; require a led steady state.
  return run_until_all_leaders(loop_.now() + max_wait);
}

bool ShardedCluster::place_leader(ShardId shard, ServerId host, Duration max_wait) {
  auto& g = group(shard);
  const TimePoint deadline = loop_.now() + max_wait;
  while (loop_.now() < deadline) {
    const ServerId l = g.leader();
    if (l == host) return true;
    if (l != kNoServer && g.alive(host)) {
      // TimeoutNow-based: the target campaigns immediately once caught up;
      // when it is not caught up yet, transfer refuses and we retry after
      // replication progresses.
      g.node(l).transfer_leadership(host, loop_.now());
      g.pump(l);
    }
    loop_.run_until(std::min(deadline, loop_.now() + from_ms(500)));
  }
  return g.leader() == host;
}

std::size_t ShardedCluster::spread_leaders(Duration max_wait) {
  std::size_t placed = 0;
  for (ShardId shard = 0; shard < shards(); ++shard) {
    if (place_leader(shard, default_placement(shard), max_wait)) ++placed;
  }
  return placed;
}

std::size_t ShardedCluster::pack_leaders(ServerId host, std::size_t count, Duration max_wait) {
  std::size_t placed = 0;
  for (ShardId shard = 0; shard < shards() && shard < count; ++shard) {
    if (place_leader(shard, host, max_wait)) ++placed;
  }
  return placed;
}

bool ShardedCluster::join_host(ServerId host, Duration max_wait) {
  for (auto& group : groups_) {
    bool present = false;
    for (const ServerId m : group->members()) present = present || m == host;
    if (!present) group->add_host(host);
  }
  const TimePoint deadline = loop_.now() + max_wait;
  const auto settled = [&](sim::SimCluster& g) {
    const ServerId l = g.leader();
    if (l == kNoServer) return false;
    const auto& m = g.node(l).membership();
    return m.is_voter(host) && !m.joint();
  };
  // Same state machine as the sim's JoinServer action, but stepping the
  // shared loop directly: re-derive each group's phase from its leader's
  // membership every slice, so kBusy windows, leader changes and snapshot
  // catch-up all land on a retry.
  while (loop_.now() < deadline) {
    bool all = true;
    for (auto& group : groups_) {
      if (settled(*group)) continue;
      all = false;
      const ServerId l = group->leader();
      if (l == kNoServer) continue;
      const auto& m = group->node(l).membership();
      if (m.is_voter(host)) continue;  // joint config resolving
      group->propose_conf_change({m.is_learner(host) ? rpc::ConfChangeOp::kPromote
                                                     : rpc::ConfChangeOp::kAddLearner,
                                  host});
    }
    if (all) return true;
    loop_.run_until(std::min(deadline, loop_.now() + from_ms(200)));
  }
  return std::all_of(groups_.begin(), groups_.end(),
                     [&](const auto& g) { return settled(*g); });
}

bool ShardedCluster::remove_host(ServerId host, Duration max_wait) {
  const TimePoint deadline = loop_.now() + max_wait;
  const auto gone = [&](sim::SimCluster& g) {
    const ServerId l = g.leader();
    if (l == kNoServer) return false;
    const auto& m = g.node(l).membership();
    return !m.contains(host) && !m.joint();
  };
  while (loop_.now() < deadline) {
    bool all = true;
    for (auto& group : groups_) {
      if (gone(*group)) continue;
      all = false;
      const ServerId l = group->leader();
      if (l == kNoServer) continue;
      if (!group->node(l).membership().joint()) {
        group->propose_conf_change({rpc::ConfChangeOp::kRemove, host});
      }
    }
    if (all) return true;
    loop_.run_until(std::min(deadline, loop_.now() + from_ms(200)));
  }
  return std::all_of(groups_.begin(), groups_.end(),
                     [&](const auto& g) { return gone(*g); });
}

void ShardedCluster::crash_host(ServerId host) {
  for (auto& group : groups_) {
    if (group->alive(host)) group->crash(host);
  }
}

void ShardedCluster::recover_host(ServerId host) {
  for (auto& group : groups_) {
    if (!group->alive(host)) group->recover(host);
  }
}

bool ShardedCluster::host_alive(ServerId host) const {
  return std::all_of(groups_.begin(), groups_.end(),
                     [host](const auto& g) { return g->alive(host); });
}

}  // namespace escape::shard
