#include "shard/sharded_cluster.h"

#include <algorithm>
#include <stdexcept>

#include "common/rng.h"

namespace escape::shard {

ShardedCluster::ShardedCluster(ShardedClusterOptions options)
    : options_(std::move(options)),
      router_({options_.shards, options_.vnodes_per_shard}) {
  if (options_.shards == 0) throw std::invalid_argument("need at least one shard");
  if (options_.hosts == 0) throw std::invalid_argument("need at least one host");
  groups_.reserve(options_.shards);
  for (ShardId shard = 0; shard < options_.shards; ++shard) {
    sim::ClusterOptions group_options;
    group_options.size = options_.hosts;
    group_options.policy = options_.policy;
    group_options.node = options_.node;
    group_options.driver = options_.driver;
    group_options.network = options_.network;
    // Independent deterministic randomness per group (elections, network
    // jitter), all derived from one deployment seed.
    group_options.seed = stream_seed(options_.seed, shard);
    group_options.snapshot_interval = options_.snapshot_interval;
    group_options.loop = &loop_;
    groups_.push_back(std::make_unique<sim::SimCluster>(std::move(group_options)));
  }
}

void ShardedCluster::start_all() {
  for (auto& group : groups_) group->start_all();
}

std::size_t ShardedCluster::leaders_on(ServerId host) const {
  std::size_t count = 0;
  for (const auto& group : groups_) {
    if (group->leader() == host) ++count;
  }
  return count;
}

void ShardedCluster::run_for(Duration d) { loop_.run_until(loop_.now() + d); }

bool ShardedCluster::run_until_all_leaders(TimePoint deadline) {
  auto all_led = [&] {
    return std::all_of(groups_.begin(), groups_.end(),
                       [](const auto& g) { return g->leader() != kNoServer; });
  };
  // Step the shared loop in slices: per-group stop predicates would fight
  // over the one loop, and elections resolve within a few slices anyway.
  while (!all_led() && loop_.now() < deadline) {
    loop_.run_until(std::min(deadline, loop_.now() + from_ms(200)));
  }
  return all_led();
}

bool ShardedCluster::bootstrap_all(Duration max_wait, Duration settle) {
  start_all();
  if (!run_until_all_leaders(loop_.now() + max_wait)) return false;
  run_for(settle);
  // Settling can itself reshuffle a leadership; require a led steady state.
  return run_until_all_leaders(loop_.now() + max_wait);
}

bool ShardedCluster::place_leader(ShardId shard, ServerId host, Duration max_wait) {
  auto& g = group(shard);
  const TimePoint deadline = loop_.now() + max_wait;
  while (loop_.now() < deadline) {
    const ServerId l = g.leader();
    if (l == host) return true;
    if (l != kNoServer && g.alive(host)) {
      // TimeoutNow-based: the target campaigns immediately once caught up;
      // when it is not caught up yet, transfer refuses and we retry after
      // replication progresses.
      g.node(l).transfer_leadership(host, loop_.now());
      g.pump(l);
    }
    loop_.run_until(std::min(deadline, loop_.now() + from_ms(500)));
  }
  return g.leader() == host;
}

std::size_t ShardedCluster::spread_leaders(Duration max_wait) {
  std::size_t placed = 0;
  for (ShardId shard = 0; shard < shards(); ++shard) {
    if (place_leader(shard, default_placement(shard), max_wait)) ++placed;
  }
  return placed;
}

std::size_t ShardedCluster::pack_leaders(ServerId host, std::size_t count, Duration max_wait) {
  std::size_t placed = 0;
  for (ShardId shard = 0; shard < shards() && shard < count; ++shard) {
    if (place_leader(shard, host, max_wait)) ++placed;
  }
  return placed;
}

void ShardedCluster::crash_host(ServerId host) {
  for (auto& group : groups_) {
    if (group->alive(host)) group->crash(host);
  }
}

void ShardedCluster::recover_host(ServerId host) {
  for (auto& group : groups_) {
    if (!group->alive(host)) group->recover(host);
  }
}

bool ShardedCluster::host_alive(ServerId host) const {
  return std::all_of(groups_.begin(), groups_.end(),
                     [host](const auto& g) { return g->alive(host); });
}

}  // namespace escape::shard
