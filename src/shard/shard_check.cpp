#include "shard/shard_check.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "core/configuration.h"
#include "shard/sharded_kv.h"
#include "sim/invariants.h"
#include "sim/presets.h"
#include "sim/trial_pool.h"

namespace escape::shard {
namespace {

void mix(std::uint64_t& h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
}

/// Digest of the observable consensus state of every group: any divergence
/// between two runs of the same seed lands here.
std::uint64_t state_digest(ShardedCluster& cluster) {
  std::uint64_t h = 0;
  for (ShardId shard = 0; shard < cluster.shards(); ++shard) {
    auto& group = cluster.group(shard);
    mix(h, shard);
    mix(h, static_cast<std::uint64_t>(group.leader()));
    for (ServerId host = 1; host <= cluster.hosts(); ++host) {
      if (!group.alive(host)) {
        mix(h, 0xDEAD);
        continue;
      }
      const auto& node = group.node(host);
      mix(h, static_cast<std::uint64_t>(node.term()));
      mix(h, static_cast<std::uint64_t>(node.commit_index()));
      mix(h, node.conf_clock());
    }
  }
  return h;
}

/// The no-leakage audit: an adopted confClock names its minting leadership
/// via the stride quotient (core::kConfClockStride); that term must be one
/// *this* group's checker saw lead. A clock minted by another group's
/// leadership history (leakage through shared infrastructure) or a corrupted
/// clock shows up as a term this group never elected.
void audit_conf_clocks(ShardedCluster& cluster,
                       const std::vector<std::unique_ptr<sim::InvariantChecker>>& checkers,
                       std::vector<std::string>& out) {
  for (ShardId shard = 0; shard < cluster.shards(); ++shard) {
    auto& group = cluster.group(shard);
    const auto& led = checkers[shard]->leaders_by_term();
    for (ServerId host = 1; host <= cluster.hosts(); ++host) {
      if (!group.alive(host)) continue;
      const ConfClock clock = group.node(host).conf_clock();
      if (clock == 0) continue;  // the shared initial configuration
      const Term mint = static_cast<Term>(clock / core::kConfClockStride);
      if (led.find(mint) == led.end()) {
        out.push_back("shard " + std::to_string(shard) + ": " + server_name(host) +
                      " adopted confClock " + std::to_string(clock) + " minted by term " +
                      std::to_string(mint) + ", which never led this group");
      }
    }
  }
}

struct TrialWorld {
  ShardedCluster cluster;
  ShardedKv kv;
  std::vector<std::unique_ptr<sim::InvariantChecker>> checkers;

  explicit TrialWorld(ShardedClusterOptions options)
      : cluster(std::move(options)), kv(cluster) {
    for (ShardId shard = 0; shard < cluster.shards(); ++shard) {
      checkers.push_back(std::make_unique<sim::InvariantChecker>(cluster.group(shard)));
    }
  }
};

ShardTrialReport run_trial_once(std::uint64_t scenario_seed, const ShardCheckOptions& options) {
  ShardTrialReport report;
  report.scenario_seed = scenario_seed;

  Rng rng(scenario_seed);
  report.shards = static_cast<std::size_t>(rng.uniform_int(
      static_cast<std::int64_t>(options.min_shards),
      static_cast<std::int64_t>(options.max_shards)));
  report.hosts = rng.chance(0.5) ? 5 : 3;
  // ESCAPE is the protocol under test; vanilla Raft and ZRaft groups keep
  // the invariants honest across policies.
  const double policy_roll = rng.uniform_real(0.0, 1.0);
  report.policy = policy_roll < 0.6 ? "escape" : (policy_roll < 0.8 ? "zraft" : "raft");

  TrialWorld world(
      make_sharded_options(report.policy, report.shards, report.hosts, rng.next_u64()));
  auto& cluster = world.cluster;
  auto& kv = world.kv;

  report.bootstrapped = cluster.bootstrap_all();
  if (report.bootstrapped) {
    cluster.spread_leaders();

    auto traffic = [&](std::size_t nops) {
      for (std::size_t i = 0; i < nops; ++i) {
        const std::string key = "key-" + std::to_string(rng.uniform_int(0, 40));
        const double roll = rng.uniform_real(0.0, 1.0);
        if (roll < 0.6) {
          kv.put(key, "v" + std::to_string(report.ops), from_ms(12'000));
        } else if (roll < 0.85) {
          kv.read(key, from_ms(12'000));
        } else {
          kv.get(key, from_ms(12'000));
        }
        ++report.ops;
      }
    };

    // Hosts are shared by every group, so the quorum budget is host-level:
    // never more than a minority down keeps every group able to commit.
    const std::size_t down_budget = (report.hosts - 1) / 2;
    std::vector<ServerId> downed;
    const std::size_t rounds = static_cast<std::size_t>(
        rng.uniform_int(2, static_cast<std::int64_t>(options.max_fault_rounds)));
    for (std::size_t round = 0; round < rounds; ++round) {
      traffic(static_cast<std::size_t>(rng.uniform_int(3, 8)));

      const double roll = rng.uniform_real(0.0, 1.0);
      if (downed.size() < down_budget && roll < 0.45) {
        std::vector<ServerId> up;
        for (ServerId host = 1; host <= report.hosts; ++host) {
          if (cluster.host_alive(host)) up.push_back(host);
        }
        const ServerId victim = up[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(up.size()) - 1))];
        cluster.crash_host(victim);
        downed.push_back(victim);
        ++report.host_crashes;
      } else if (!downed.empty() && roll < 0.75) {
        const std::size_t pick = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(downed.size()) - 1));
        cluster.recover_host(downed[pick]);
        downed.erase(downed.begin() + static_cast<std::ptrdiff_t>(pick));
        ++report.host_recoveries;
      } else {
        const ShardId shard = static_cast<ShardId>(
            rng.uniform_int(0, static_cast<std::int64_t>(report.shards) - 1));
        const ServerId target =
            static_cast<ServerId>(rng.uniform_int(1, static_cast<std::int64_t>(report.hosts)));
        auto& group = cluster.group(shard);
        const ServerId leader = group.leader();
        if (leader != kNoServer && leader != target && group.alive(target)) {
          group.node(leader).transfer_leadership(target, cluster.loop().now());
          group.pump(leader);
          ++report.transfers;
        }
      }
      cluster.run_for(from_ms(rng.uniform_int(1'000, 4'000)));
    }

    // Closing sweep: heal everything and let every group converge before the
    // deep checks, then prove the healed deployment still serves.
    for (const ServerId host : downed) cluster.recover_host(host);
    cluster.run_for(options.drain);
    traffic(4);
    cluster.run_for(from_ms(3'000));
  }

  for (ShardId shard = 0; shard < cluster.shards(); ++shard) {
    world.checkers[shard]->deep_check();
    report.reads_checked += world.checkers[shard]->reads_checked();
    for (const auto& violation : world.checkers[shard]->violations()) {
      report.violations.push_back("shard " + std::to_string(shard) + ": " + violation);
    }
  }
  auto routing = kv.routing_violations();
  report.violations.insert(report.violations.end(), routing.begin(), routing.end());
  audit_conf_clocks(cluster, world.checkers, report.violations);
  report.digest = state_digest(cluster);
  return report;
}

}  // namespace

ShardedClusterOptions make_sharded_options(const std::string& policy, std::size_t shards,
                                           std::size_t hosts, std::uint64_t seed) {
  ShardedClusterOptions options;
  options.shards = shards;
  options.hosts = hosts;
  options.seed = seed;
  options.network.latency = sim::uniform_latency(from_ms(100), from_ms(200));
  options.node.heartbeat_interval = from_ms(500);
  if (policy == "escape") {
    options.policy = sim::presets::escape_policy();
  } else if (policy == "zraft") {
    options.policy = sim::presets::zraft_policy();
  } else if (policy == "raft") {
    options.policy = sim::presets::raft_policy();
  } else {
    throw std::invalid_argument("unknown policy: " + policy);
  }
  return options;
}

ShardTrialReport run_shard_trial(std::uint64_t scenario_seed, const ShardCheckOptions& options) {
  ShardTrialReport report = run_trial_once(scenario_seed, options);
  if (options.check_determinism) {
    const ShardTrialReport replay = run_trial_once(scenario_seed, options);
    if (replay.digest != report.digest || replay.violations != report.violations) {
      report.violations.push_back("nondeterministic replay: state digest or violation set "
                                  "differs between identical-seed runs");
    }
  }
  return report;
}

ShardCheckResult run_shard_check(const ShardCheckOptions& options) {
  sim::TrialPool pool(options.threads);
  const auto reports = pool.map_seeded<ShardTrialReport>(
      options.trials, options.root_seed,
      [&options](std::size_t, std::uint64_t seed) { return run_shard_trial(seed, options); });

  ShardCheckResult result;
  result.trials = reports.size();
  for (const auto& report : reports) {
    if (report.bootstrapped) ++result.bootstrapped;
    result.host_crashes += report.host_crashes;
    result.host_recoveries += report.host_recoveries;
    result.transfers += report.transfers;
    result.ops += report.ops;
    result.reads_checked += report.reads_checked;
    ++result.policy_histogram[report.policy];
    // A trial that failed to bootstrap found a liveness bug too; surface it.
    if (!report.violations.empty() || !report.bootstrapped) {
      ShardCheckFailure failure;
      failure.scenario_seed = report.scenario_seed;
      failure.policy = report.policy;
      failure.shards = report.shards;
      failure.hosts = report.hosts;
      failure.violations = report.violations;
      if (!report.bootstrapped) {
        failure.violations.push_back("bootstrap failed: some group never elected a leader");
      }
      failure.repro = "shard_check --scenario-seed " + std::to_string(report.scenario_seed);
      result.failures.push_back(std::move(failure));
    }
  }
  return result;
}

StormReport run_shard_failover_storm(const StormOptions& options) {
  StormReport report;
  ShardedCluster cluster(
      make_sharded_options(options.policy, options.shards, options.hosts, options.seed));
  std::vector<std::unique_ptr<sim::InvariantChecker>> checkers;
  for (ShardId shard = 0; shard < cluster.shards(); ++shard) {
    checkers.push_back(std::make_unique<sim::InvariantChecker>(cluster.group(shard)));
  }
  ShardedKv kv(cluster);

  report.bootstrapped = cluster.bootstrap_all();
  if (!report.bootstrapped) return report;

  // Concentrate the first `leaders_on_victim` shard-leaderships on the
  // victim and spread the rest over the survivors, the worst-case placement
  // the scenario exists to measure.
  const ServerId victim = 1;
  cluster.pack_leaders(victim, options.leaders_on_victim, options.max_wait);
  for (ShardId shard = static_cast<ShardId>(options.leaders_on_victim);
       shard < cluster.shards(); ++shard) {
    const ServerId host = 2 + static_cast<ServerId>((shard - options.leaders_on_victim) %
                                                    (options.hosts - 1));
    cluster.place_leader(shard, host, options.max_wait);
  }
  report.leaders_packed = cluster.leaders_on(victim);

  // Non-trivial logs in every group, so elections exercise log comparisons.
  for (std::size_t i = 0; i < 3 * cluster.shards(); ++i) {
    kv.put("storm-key-" + std::to_string(i), "v", from_ms(15'000));
  }
  cluster.run_for(from_ms(2'000));

  std::vector<ShardId> orphaned;
  for (ShardId shard = 0; shard < cluster.shards(); ++shard) {
    if (cluster.leader(shard) == victim) orphaned.push_back(shard);
  }
  report.shards_hit = orphaned.size();
  for (ShardId shard = 0; shard < cluster.shards(); ++shard) {
    cluster.group(shard).clear_event_log();
  }

  const TimePoint t0 = cluster.loop().now();
  cluster.crash_host(victim);
  const TimePoint deadline = t0 + options.max_wait;
  auto all_re_led = [&] {
    return std::all_of(orphaned.begin(), orphaned.end(),
                       [&](ShardId shard) { return cluster.leader(shard) != kNoServer; });
  };
  while (!all_re_led() && cluster.loop().now() < deadline) {
    cluster.loop().run_until(std::min(deadline, cluster.loop().now() + from_ms(100)));
  }
  report.all_recovered = all_re_led();

  for (const ShardId shard : orphaned) {
    for (const auto& event : cluster.group(shard).event_log()) {
      if (event.kind == raft::NodeEvent::Kind::kBecameLeader && event.at >= t0) {
        report.per_shard_total.push_back(event.at - t0);
        break;
      }
    }
  }
  if (!report.per_shard_total.empty()) {
    report.first_recovery =
        *std::min_element(report.per_shard_total.begin(), report.per_shard_total.end());
    report.storm_total =
        *std::max_element(report.per_shard_total.begin(), report.per_shard_total.end());
  }

  // Heal, settle, and audit: the storm must not have cost any safety.
  cluster.recover_host(victim);
  cluster.run_for(from_ms(10'000));
  for (std::size_t i = 0; i < cluster.shards(); ++i) {
    kv.put("post-storm-" + std::to_string(i), "v", from_ms(15'000));
  }
  cluster.run_for(from_ms(2'000));
  for (ShardId shard = 0; shard < cluster.shards(); ++shard) {
    checkers[shard]->deep_check();
    for (const auto& violation : checkers[shard]->violations()) {
      report.violations.push_back("shard " + std::to_string(shard) + ": " + violation);
    }
  }
  auto routing = kv.routing_violations();
  report.violations.insert(report.violations.end(), routing.begin(), routing.end());
  audit_conf_clocks(cluster, checkers, report.violations);
  return report;
}

std::vector<std::string> shard_scenario_names() { return {"shard_failover_storm"}; }

bool has_shard_scenario(const std::string& name) {
  const auto names = shard_scenario_names();
  return std::find(names.begin(), names.end(), name) != names.end();
}

StormReport run_shard_scenario(const std::string& name, const StormOptions& options) {
  if (name != "shard_failover_storm") {
    throw std::invalid_argument("unknown shard scenario: " + name);
  }
  return run_shard_failover_storm(options);
}

}  // namespace escape::shard
