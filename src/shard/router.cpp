#include "shard/router.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace escape::shard {

std::uint64_t fnv1a64(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

namespace {

// FNV-1a alone orders similar short strings poorly across the full 64-bit
// range (the ring compares whole words, so top-bit clustering skews shard
// shares badly at small vnode counts). A splitmix64 finalizer on top gives
// avalanche without giving up the portable FNV base.
std::uint64_t ring_point(std::string_view bytes) {
  std::uint64_t z = fnv1a64(bytes);
  z ^= z >> 30;
  z *= 0xbf58476d1ce4e5b9ull;
  z ^= z >> 27;
  z *= 0x94d049bb133111ebull;
  z ^= z >> 31;
  return z;
}

}  // namespace

ShardRouter::ShardRouter(RouterOptions options) : options_(options) {
  if (options_.shards == 0) throw std::invalid_argument("router needs at least one shard");
  if (options_.vnodes_per_shard == 0) {
    throw std::invalid_argument("router needs at least one vnode per shard");
  }
  ring_.reserve(options_.shards * options_.vnodes_per_shard);
  for (ShardId shard = 0; shard < options_.shards; ++shard) {
    for (std::size_t v = 0; v < options_.vnodes_per_shard; ++v) {
      // Each vnode's point is the hash of a stable textual identity, so the
      // ring is a pure function of (shards, vnodes) — no RNG, no state.
      const std::string ident =
          "shard-" + std::to_string(shard) + "/vnode-" + std::to_string(v);
      ring_.emplace_back(ring_point(ident), shard);
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

ShardId ShardRouter::shard_of(std::string_view key) const {
  const std::uint64_t point = ring_point(key);
  const auto it = std::lower_bound(
      ring_.begin(), ring_.end(), point,
      [](const std::pair<std::uint64_t, ShardId>& e, std::uint64_t p) { return e.first < p; });
  return it == ring_.end() ? ring_.front().second : it->second;
}

std::vector<double> ShardRouter::key_shares(std::size_t keys) const {
  std::vector<std::size_t> counts(options_.shards, 0);
  for (std::size_t i = 0; i < keys; ++i) {
    ++counts[shard_of("sample-key-" + std::to_string(i))];
  }
  std::vector<double> shares(options_.shards);
  for (std::size_t s = 0; s < options_.shards; ++s) {
    shares[s] = static_cast<double>(counts[s]) / static_cast<double>(keys);
  }
  return shares;
}

}  // namespace escape::shard
