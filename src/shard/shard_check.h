// Multi-group randomized checking and the shard failover storm scenario.
//
// run_shard_check extends the single-group SimCheck vocabulary to sharded
// deployments: each trial builds a ShardedCluster from its scenario seed,
// drives keyed client traffic through the router while crashing/recovering
// whole hosts (never more than a quorum-minority at once) and steering
// leaderships, then audits the cross-shard invariants:
//   * each group is independently linearizable — a full InvariantChecker
//     (election safety, log matching, leader completeness, state-machine
//     safety, Lemma 3, read linearizability) runs per group;
//   * the router never serves a key from the wrong group — every key in
//     every replica store must hash to the group holding it;
//   * no cross-group confClock leakage — a group's adopted confClock must
//     have been minted by a leadership of *that* group: the clock's stride
//     quotient (core::kConfClockStride) names the minting term, which must
//     appear in the group's own observed leader history.
// Trials are pure functions of their seed (TrialPool rules), so any failure
// reproduces from the printed `shard_check --scenario-seed N` line, and an
// optional replay re-runs each trial and compares state digests to prove it.
//
// run_shard_failover_storm is the scenario the multi-Raft design exists to
// measure: pack many shard-leaderships onto one host, kill it, and time how
// long until every orphaned shard leads again — ESCAPE's pre-assigned
// successors against Raft's randomized timeouts, at storm scale.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "shard/sharded_cluster.h"

namespace escape::shard {

/// Paper-preset deployment options (100–200 ms links, 500 ms heartbeats)
/// for a named policy: "escape", "zraft" or "raft". Shared by the checker,
/// the storm scenario, fig15 and the tests so every consumer measures the
/// same deployment. Throws std::invalid_argument on an unknown policy.
ShardedClusterOptions make_sharded_options(const std::string& policy, std::size_t shards,
                                           std::size_t hosts, std::uint64_t seed);

// --- randomized multi-group checking ---------------------------------------

struct ShardCheckOptions {
  std::size_t trials = 150;
  std::uint64_t root_seed = 0xE5CA9Eull;
  std::size_t threads = 0;  ///< TrialPool sizing; 0 = default_threads()
  std::size_t min_shards = 2;
  std::size_t max_shards = 5;
  std::size_t max_fault_rounds = 6;
  /// Post-heal settling time before the deep checks.
  Duration drain = from_ms(20'000);
  /// Re-run every trial and compare state digests (doubles the cost).
  bool check_determinism = true;
};

/// Everything one trial observed; pure function of (scenario_seed, options).
struct ShardTrialReport {
  std::uint64_t scenario_seed = 0;
  std::string policy;
  std::size_t shards = 0;
  std::size_t hosts = 0;
  bool bootstrapped = false;
  std::size_t host_crashes = 0;
  std::size_t host_recoveries = 0;
  std::size_t transfers = 0;
  std::size_t ops = 0;
  std::size_t reads_checked = 0;
  /// Order-independent digest of the final per-group consensus state
  /// (terms, leaders, commit indexes, confClocks) for determinism replay.
  std::uint64_t digest = 0;
  std::vector<std::string> violations;
};

/// Runs one scenario; exposed so the CLI can replay a failure seed.
ShardTrialReport run_shard_trial(std::uint64_t scenario_seed, const ShardCheckOptions& options);

struct ShardCheckFailure {
  std::uint64_t scenario_seed = 0;
  std::string policy;
  std::size_t shards = 0;
  std::size_t hosts = 0;
  std::vector<std::string> violations;
  std::string repro;  ///< "shard_check --scenario-seed N"
};

struct ShardCheckResult {
  std::size_t trials = 0;
  std::size_t bootstrapped = 0;
  std::size_t host_crashes = 0;
  std::size_t host_recoveries = 0;
  std::size_t transfers = 0;
  std::size_t ops = 0;
  std::size_t reads_checked = 0;
  std::map<std::string, std::size_t> policy_histogram;
  std::vector<ShardCheckFailure> failures;
  bool ok() const { return failures.empty(); }
};

/// Fans the trials over a TrialPool (thread-count invariant) and folds the
/// reports in trial-index order.
ShardCheckResult run_shard_check(const ShardCheckOptions& options);

// --- shard failover storm ---------------------------------------------------

struct StormOptions {
  std::string policy = "escape";
  std::size_t shards = 8;
  std::size_t hosts = 5;
  /// Shard-leaderships packed onto the victim host before the kill.
  std::size_t leaders_on_victim = 4;
  std::uint64_t seed = 1;
  /// Ceiling on each wait phase (placement, recovery).
  Duration max_wait = from_ms(60'000);
};

struct StormReport {
  bool bootstrapped = false;
  bool all_recovered = false;
  std::size_t leaders_packed = 0;  ///< shard-leaders on the victim at the kill
  std::size_t shards_hit = 0;      ///< groups orphaned by the kill
  /// Kill -> new leader, one entry per orphaned group (recovery order).
  std::vector<Duration> per_shard_total;
  Duration first_recovery = 0;
  Duration storm_total = 0;  ///< kill -> last orphaned group re-led
  std::vector<std::string> violations;
  bool ok() const { return bootstrapped && all_recovered && violations.empty(); }
};

StormReport run_shard_failover_storm(const StormOptions& options);

// --- shard scenario registry -------------------------------------------------
// The sim registry's ScenarioSpec plans over one SimCluster; storms are
// host-level events spanning every group, so shard scenarios register here.

std::vector<std::string> shard_scenario_names();
bool has_shard_scenario(const std::string& name);

/// Runs a registered scenario ("shard_failover_storm"). Throws
/// std::invalid_argument on an unknown name.
StormReport run_shard_scenario(const std::string& name, const StormOptions& options);

}  // namespace escape::shard
