// Real TCP transport for deploying the consensus core outside the simulator.
//
// Each server owns one TcpTransport: a listening socket plus lazily
// established outgoing connections to peers, serviced by a single background
// poll() thread. Messages are framed with rpc::frame_message (length prefix +
// CRC); a corrupt frame closes the connection, and outgoing sends reconnect
// transparently — consensus tolerates lost messages by design, so the
// transport drops rather than blocks when a peer is unreachable.
//
// Thread model: send() may be called from any thread (it enqueues and wakes
// the poll loop via a self-pipe); the deliver callback runs on the poll
// thread and must not block.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/types.h>

#include "rpc/messages.h"
#include "rpc/wire.h"

namespace escape::net {

/// Statistics for tests and diagnostics.
struct TransportStats {
  std::atomic<std::uint64_t> sent{0};
  std::atomic<std::uint64_t> received{0};
  std::atomic<std::uint64_t> dropped{0};
  std::atomic<std::uint64_t> reconnects{0};
};

/// Syscall seams for fault-injection tests. Production code always calls the
/// sockets API through these pointers, which default to the real syscalls;
/// net_transport_test swaps them (before start(), restoring afterwards) to
/// inject EINTR returns and short writes deterministically — conditions the
/// kernel produces rarely enough that a test relying on real signal timing
/// would be flaky. Not for use outside tests.
namespace testhooks {
using RecvFn = ssize_t (*)(int fd, void* buf, std::size_t len, int flags);
using SendFn = ssize_t (*)(int fd, const void* buf, std::size_t len, int flags);
using AcceptFn = int (*)(int fd, sockaddr* addr, socklen_t* addrlen);
extern RecvFn recv_fn;
extern SendFn send_fn;
extern AcceptFn accept_fn;
/// Restores all three hooks to the real syscalls.
void reset();
}  // namespace testhooks

struct TransportOptions {
  /// When > 0, sets SO_SNDBUF / SO_RCVBUF on every socket. Tests use tiny
  /// buffers to force partial writes; 0 keeps the kernel defaults.
  int sndbuf = 0;
  int rcvbuf = 0;
};

class TcpTransport {
 public:
  using DeliverFn = std::function<void(const rpc::Envelope&)>;

  /// `endpoints` maps every cluster member (including `self`) to a TCP port
  /// on 127.0.0.1. The transport binds self's port in start().
  TcpTransport(ServerId self, std::map<ServerId, std::uint16_t> endpoints, DeliverFn deliver,
               TransportOptions options = {});
  ~TcpTransport();

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  /// Binds, listens and launches the poll thread. Throws std::runtime_error
  /// on bind failure.
  void start();

  /// Stops the poll thread and closes all sockets. Idempotent.
  void stop();

  /// Queues `envelope` for its destination. Never blocks; drops (and counts)
  /// when the peer is unreachable and the outbound queue is saturated.
  void send(const rpc::Envelope& envelope);

  const TransportStats& stats() const { return stats_; }
  ServerId self() const { return self_; }

 private:
  struct Conn {
    int fd = -1;
    ServerId peer = kNoServer;        ///< known for outgoing; learned for incoming
    rpc::FrameReader reader;
    std::deque<std::uint8_t> outbuf;  ///< bytes awaiting writability
    bool connecting = false;          ///< nonblocking connect() in flight
  };

  void poll_loop();
  void handle_readable(Conn& conn);
  void flush_writable(Conn& conn);
  bool connect_peer(ServerId peer);
  void close_conn(int fd);
  void wake();
  void apply_socket_options(int fd) const;

  static constexpr std::size_t kMaxOutboundBytes = 8u << 20;

  const ServerId self_;
  const std::map<ServerId, std::uint16_t> endpoints_;
  DeliverFn deliver_;
  const TransportOptions options_;

  std::mutex mu_;                  // guards conns_, peer_conn_
  std::map<int, Conn> conns_;      // by fd
  std::map<ServerId, int> peer_conn_;  // outgoing connection per peer

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  std::thread thread_;
  std::atomic<bool> running_{false};
  TransportStats stats_;
};

}  // namespace escape::net
