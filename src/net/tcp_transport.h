// Real TCP transport for deploying the consensus core outside the simulator.
//
// Each server owns one TcpTransport: a listening socket plus lazily
// established outgoing connections to peers, multiplexed by one EventLoop
// (edge-triggered epoll, per-connection ring buffers — see event_loop.h).
// Messages are framed with rpc::frame_message (length prefix + CRC); a
// corrupt frame closes the connection, and outgoing sends reconnect
// transparently — consensus tolerates lost messages by design, so the
// transport drops rather than blocks when a peer is unreachable.
//
// Thread model: send()/send_batch() may be called from any thread (they
// enqueue on the loop's output rings and wake it via its eventfd); the
// deliver callback runs on the loop thread and must not block. With
// set_deliver_batch, every complete frame of one readiness burst arrives in
// a single callback — the seam RealNode uses to step many messages per
// node-lock acquisition.
//
// The net::testhooks syscall seams live in event_loop.h (shared with the
// serving layer).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "net/event_loop.h"
#include "rpc/messages.h"
#include "rpc/wire.h"

namespace escape::net {

/// Statistics for tests and diagnostics.
struct TransportStats {
  std::atomic<std::uint64_t> sent{0};
  std::atomic<std::uint64_t> received{0};
  std::atomic<std::uint64_t> dropped{0};
  std::atomic<std::uint64_t> reconnects{0};
};

struct TransportOptions {
  /// When > 0, sets SO_SNDBUF / SO_RCVBUF on every socket. Tests use tiny
  /// buffers to force partial writes; 0 keeps the kernel defaults.
  int sndbuf = 0;
  int rcvbuf = 0;
  /// When >= 0, start() adopts this already-bound listening socket (see
  /// bind_loopback_listener) instead of binding endpoints[self]. This is the
  /// port-0 path: reserve every listener first, discover the kernel-assigned
  /// ports, then hand each open fd to its transport — no rebind race.
  int listen_fd = -1;
};

class TcpTransport {
 public:
  using DeliverFn = std::function<void(const rpc::Envelope&)>;
  using DeliverBatchFn = std::function<void(std::vector<rpc::Envelope>&&)>;

  /// `endpoints` maps every cluster member (including `self`) to a TCP port
  /// on 127.0.0.1. The transport binds self's port in start() (unless
  /// options.listen_fd adopts a pre-bound listener). `deliver` may be null
  /// when set_deliver_batch() installs a batch callback before start().
  TcpTransport(ServerId self, std::map<ServerId, std::uint16_t> endpoints, DeliverFn deliver,
               TransportOptions options = {});
  ~TcpTransport();

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  /// Replaces per-envelope delivery with whole-burst delivery: all messages
  /// parsed from one readiness edge arrive in a single call, in order.
  /// Call before start().
  void set_deliver_batch(DeliverBatchFn deliver_batch);

  /// Binds (or adopts), listens and launches the event-loop thread. Throws
  /// std::runtime_error on bind failure.
  void start();

  /// Stops the event loop and closes all sockets. Idempotent and terminal —
  /// a stopped transport cannot be restarted.
  void stop();

  /// Queues `envelope` for its destination. Never blocks; drops (and counts)
  /// when the peer is unreachable or the outbound queue is saturated.
  void send(const rpc::Envelope& envelope);

  /// Queues a whole Ready batch: one lock acquisition on the transport, and
  /// the loop coalesces all frames sharing a destination into few write()s.
  void send_batch(const std::vector<rpc::Envelope>& envelopes);

  /// Port the transport is listening on. Meaningful after start(); with a
  /// pre-bound listener this is the kernel-assigned port.
  std::uint16_t port() const;

  const TransportStats& stats() const { return stats_; }
  ServerId self() const { return self_; }

 private:
  void on_frames(EventLoop::ConnId conn, std::vector<std::vector<std::uint8_t>>&& frames);
  void on_conn_closed(EventLoop::ConnId conn);
  EventLoop::ConnId outgoing_locked(ServerId peer);  // mu_ held

  const ServerId self_;
  const std::map<ServerId, std::uint16_t> endpoints_;
  DeliverFn deliver_;
  DeliverBatchFn deliver_batch_;
  const TransportOptions options_;

  std::unique_ptr<EventLoop> loop_;

  std::mutex mu_;  // guards peer_conn_, conn_peer_
  std::map<ServerId, EventLoop::ConnId> peer_conn_;  ///< outgoing connection per peer
  std::map<EventLoop::ConnId, ServerId> conn_peer_;  ///< known (outgoing) or learned (hello)

  TransportStats stats_;
};

}  // namespace escape::net
