// The real-time runtime's Ready consumer.
//
// RealNode's driver thread holds a mutex while stepping the core, but must
// not hold it while touching the transport or the application hooks (a slow
// apply hook would stall message ingestion; a transport send could deadlock
// against a peer doing the same). RealDriver therefore splits each batch:
// pump_one() runs under the lock — persistence happens there, keeping the
// persist-before-send ordering trivially correct — and buffers the
// environment-facing effects into an Effects record the caller flushes
// after releasing the lock, in the same mandatory order (send, restore,
// apply, grant).
//
// driver_conformance_test replays identical scenarios through this buffered
// style and sim::SimDriver's immediate style and asserts the Ready streams
// match — the two runtimes drive one core the same way.
#pragma once

#include <memory>
#include <vector>

#include "raft/driver.h"

namespace escape::net {

/// One server's driver in the TCP runtime: drains batches under the node
/// lock into Effects records flushed outside it.
class RealDriver {
 public:
  /// The environment-facing portion of one Ready batch, in flush order.
  struct Effects {
    std::vector<rpc::Envelope> messages;
    std::shared_ptr<const raft::Snapshot> restore;  ///< null: no restore
    std::vector<rpc::LogEntry> committed;
    std::vector<raft::ReadGrant> read_grants;

    bool empty() const {
      return messages.empty() && !restore && committed.empty() && read_grants.empty();
    }
    void clear() {
      messages.clear();
      restore.reset();
      committed.clear();
      read_grants.clear();
    }
  };

  RealDriver(storage::StateStore& store, storage::Wal& wal,
             storage::SnapshotStore* snapshots, raft::NodeDriver::Options options = {});

  /// See raft::NodeDriver::recover().
  raft::Bootstrap recover() { return base_.recover(); }

  /// See raft::NodeDriver::attach().
  void attach(raft::RaftNode& node) { base_.attach(node); }

  /// Drains at most one batch (call holding the node lock): persistence
  /// executes immediately, environment effects land in `out` for the caller
  /// to flush after unlocking. Returns false when nothing was pending.
  bool pump_one(Effects& out);

  /// Drains one flush *unit*: consecutive message-only batches merge into
  /// `out` (requires out.empty()), and the first batch that carries a
  /// restore, committed entries or read grants terminates the unit. Flushing
  /// `out` in the usual order then equals flushing each batch in order —
  /// every merged batch's persistence already ran here, before any of its
  /// messages escape, and no apply/restore can be reordered across a later
  /// batch. This is what lets RealNode ship a whole burst of AppendEntries
  /// fan-out as one transport send_batch(). Returns false when nothing was
  /// pending.
  bool pump_unit(Effects& out);

  /// Async-persist completion (call holding the node lock, like pump_one):
  /// the WAL sync happens here and each released batch's held messages land
  /// in `out` for flushing outside the lock. See
  /// raft::NodeDriver::flush_persists().
  std::size_t flush_persists(Effects& out, TimePoint now);

  /// The generic drain underneath — tests attach phase hooks and Ready
  /// observers here.
  raft::NodeDriver& base() { return base_; }

 private:
  raft::NodeDriver base_;
  Effects* sink_ = nullptr;  ///< non-null only inside pump_one
};

}  // namespace escape::net
