#include "net/real_driver.h"

#include <stdexcept>

namespace escape::net {

RealDriver::RealDriver(storage::StateStore& store, storage::Wal& wal,
                       storage::SnapshotStore* snapshots, raft::NodeDriver::Options options)
    : base_(store, wal, snapshots, options) {
  auto& hooks = base_.hooks();
  hooks.send = [this](const std::vector<rpc::Envelope>& batch) {
    sink_->messages.insert(sink_->messages.end(), batch.begin(), batch.end());
  };
  hooks.restore = [this](const std::shared_ptr<const raft::Snapshot>& snap) {
    sink_->restore = snap;
    // A restore supersedes anything this batch buffered so far (the core
    // clears its committed list the same way); entries after this point in
    // the batch post-date the snapshot and stay.
    sink_->committed.clear();
  };
  hooks.apply = [this](const rpc::LogEntry& entry) { sink_->committed.push_back(entry); };
  hooks.read = [this](const raft::ReadGrant& grant) { sink_->read_grants.push_back(grant); };
}

bool RealDriver::pump_one(Effects& out) {
  if (sink_) throw std::logic_error("RealDriver::pump_one() re-entered");
  sink_ = &out;
  bool drained = false;
  try {
    drained = base_.pump_one();
  } catch (...) {
    sink_ = nullptr;
    throw;
  }
  sink_ = nullptr;
  return drained;
}

bool RealDriver::pump_unit(Effects& out) {
  bool any = false;
  Effects batch;
  for (;;) {
    batch.clear();
    if (!pump_one(batch)) break;
    any = true;
    out.messages.insert(out.messages.end(), std::make_move_iterator(batch.messages.begin()),
                        std::make_move_iterator(batch.messages.end()));
    if (batch.restore || !batch.committed.empty() || !batch.read_grants.empty()) {
      // This batch carries environment effects beyond messages: stop merging
      // so the caller's send -> restore -> apply -> grant flush preserves the
      // per-batch order.
      out.restore = std::move(batch.restore);
      out.committed = std::move(batch.committed);
      out.read_grants = std::move(batch.read_grants);
      break;
    }
  }
  return any;
}

std::size_t RealDriver::flush_persists(Effects& out, TimePoint now) {
  if (sink_) throw std::logic_error("RealDriver::flush_persists() re-entered");
  sink_ = &out;
  std::size_t released = 0;
  try {
    released = base_.flush_persists(now);
  } catch (...) {
    sink_ = nullptr;
    throw;
  }
  sink_ = nullptr;
  return released;
}

}  // namespace escape::net
