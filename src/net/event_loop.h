// Epoll-based event loop for the real-network serving path.
//
// One EventLoop multiplexes a listening socket plus any number of inbound
// and outbound connections on a single thread, modeled on the single-writer
// network loop of tarantool's iproto: the loop thread is the only thread
// that ever touches a socket, so reads, frame parsing, and writes need no
// per-connection synchronization. Other threads interact through two
// thread-safe entry points — send() enqueues a frame onto the connection's
// output ring and wakes the loop via an eventfd; connect() opens a
// nonblocking outbound connection — and the loop drains everything in
// batches:
//
//   * edge-triggered epoll (EPOLLET): each readiness edge is drained to
//     EAGAIN, so the kernel is consulted once per burst, not once per frame;
//   * per-connection input/output ring buffers (ByteRing): recv() lands
//     directly in the input ring, frames are parsed off it in place (wire
//     format identical to rpc::FrameReader), and every complete frame of a
//     readiness burst is delivered to the owner in ONE on_frames callback —
//     the batching seam RealNode uses to step many requests per node-lock
//     acquisition;
//   * deferred output flush: frames queued from the loop thread (responses)
//     and from other threads (Ready sends) accumulate in the output rings
//     and are written socket-by-socket at the end of the poll iteration,
//     coalescing many small frames into few write() calls;
//   * backpressure: each output ring is bounded. When a frame would
//     overflow the bound the loop either evicts the connection (serving
//     mode: a client that stops reading cannot pin server memory; counted
//     in stats().evicted_slow) or rejects the frame (transport mode:
//     consensus tolerates dropped messages by design).
//
// Syscalls go through net::testhooks (shared with TcpTransport) so tests
// inject EINTR and short transfers deterministically.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include <sys/socket.h>
#include <sys/types.h>

namespace escape::net {

/// Syscall seams for fault-injection tests. Production code always calls the
/// sockets API through these pointers, which default to the real syscalls;
/// net tests swap them (before start(), restoring afterwards) to inject
/// EINTR returns and short transfers deterministically — conditions the
/// kernel produces rarely enough that a test relying on real signal timing
/// would be flaky. Not for use outside tests.
namespace testhooks {
using RecvFn = ssize_t (*)(int fd, void* buf, std::size_t len, int flags);
using SendFn = ssize_t (*)(int fd, const void* buf, std::size_t len, int flags);
using AcceptFn = int (*)(int fd, sockaddr* addr, socklen_t* addrlen);
extern RecvFn recv_fn;
extern SendFn send_fn;
extern AcceptFn accept_fn;
/// Restores all three hooks to the real syscalls.
void reset();
}  // namespace testhooks

/// An already-bound, listening loopback socket plus its kernel-assigned
/// port. Binding port 0 and discovering the result via getsockname is how
/// tests and examples avoid fixed-port collisions: reserve every listener
/// first, then hand the open fds to the transports — the port can never be
/// stolen between discovery and use.
struct BoundListener {
  int fd = -1;
  std::uint16_t port = 0;
};

/// Binds and listens on 127.0.0.1:`port` (0 = kernel-assigned), nonblocking,
/// SO_REUSEADDR. Throws std::runtime_error on failure. The caller owns the
/// fd until it hands the listener to an EventLoop.
BoundListener bind_loopback_listener(std::uint16_t port, int backlog = 1024);

/// Growable byte ring: a power-of-two circular buffer with contiguous-span
/// access for zero-copy recv()/send() at the head and tail. Grows on demand;
/// the serving layer bounds it externally (see EventLoop::Options).
class ByteRing {
 public:
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return buf_.size(); }

  /// Appends `n` bytes, growing as needed.
  void append(const std::uint8_t* data, std::size_t n);

  /// Largest contiguous writable span at the tail, growing capacity to hold
  /// at least `want` more bytes. recv() targets this directly.
  std::pair<std::uint8_t*, std::size_t> tail_span(std::size_t want);

  /// Marks `n` bytes of the tail span as filled.
  void produce(std::size_t n);

  /// Contiguous readable span at the head (may be shorter than size() when
  /// the ring wraps). send() sources from this directly.
  std::pair<const std::uint8_t*, std::size_t> head_span() const;

  /// Copies `n` bytes starting `offset` bytes past the head into `out`
  /// (wrap-aware). Requires offset + n <= size().
  void peek(std::size_t offset, std::uint8_t* out, std::size_t n) const;

  /// Discards `n` bytes from the head. Requires n <= size().
  void consume(std::size_t n);

 private:
  void grow(std::size_t need);

  std::vector<std::uint8_t> buf_;  ///< power-of-two capacity (or empty)
  std::size_t head_ = 0;           ///< index of the first unread byte
  std::size_t size_ = 0;
};

/// Loop-wide statistics for tests, benches and diagnostics.
struct EventLoopStats {
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> connected{0};
  std::atomic<std::uint64_t> closed{0};
  std::atomic<std::uint64_t> frames_in{0};
  std::atomic<std::uint64_t> frames_out{0};
  std::atomic<std::uint64_t> bytes_in{0};
  std::atomic<std::uint64_t> bytes_out{0};
  std::atomic<std::uint64_t> evicted_slow{0};  ///< slow-client evictions
  std::atomic<std::uint64_t> decode_errors{0};
  std::atomic<std::uint64_t> wakeups{0};
};

class EventLoop {
 public:
  /// Identifies one connection for the lifetime of the loop. Ids are never
  /// reused, so a stale id held by another thread can at worst miss.
  using ConnId = std::uint64_t;

  enum class SendResult : std::uint8_t {
    kOk = 0,
    kOverflow = 1,  ///< output bound exceeded; frame rejected (or conn evicted)
    kClosed = 2,    ///< no such connection
  };

  struct Options {
    /// When > 0, sets SO_SNDBUF / SO_RCVBUF on every socket (tests use tiny
    /// buffers to force partial transfers); 0 keeps the kernel defaults.
    int sndbuf = 0;
    int rcvbuf = 0;
    /// Bound on a connection's output ring. A frame that would exceed it is
    /// rejected — and the connection evicted when evict_on_overflow is set.
    std::size_t max_outbuf_bytes = 8u << 20;
    /// Serving mode: a client whose output ring overflows is closed and
    /// counted (stats().evicted_slow) instead of merely throttled — a reader
    /// that stopped reading must not pin server memory. Transport mode
    /// (false) rejects the frame and keeps the connection; consensus
    /// retransmits by design.
    bool evict_on_overflow = false;
    /// recv() chunk requested per call.
    std::size_t read_chunk = 1u << 16;
  };

  /// Callbacks, all invoked on the loop thread; they must not block. They
  /// may call send()/close()/connect() freely.
  struct Handler {
    /// New connection: accepted (inbound=true) or established outbound.
    std::function<void(ConnId, bool inbound)> on_open;
    /// Every complete frame payload parsed from one readiness burst, in
    /// arrival order — the batching seam.
    std::function<void(ConnId, std::vector<std::vector<std::uint8_t>>&&)> on_frames;
    /// Connection closed (peer hangup, error, eviction, or close()). Not
    /// invoked for connections torn down by stop().
    std::function<void(ConnId)> on_close;
  };

  EventLoop(Handler handler, Options options);
  explicit EventLoop(Handler handler) : EventLoop(std::move(handler), Options()) {}
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Adopts an already-bound listener (see bind_loopback_listener) or, when
  /// `listener.fd < 0`, binds 127.0.0.1:`listener.port`. Call before
  /// start(); optional — a client-only loop never listens.
  void listen(BoundListener listener);

  /// Port the adopted listener is bound to (0 when not listening).
  std::uint16_t port() const { return listen_port_; }

  /// Launches the loop thread.
  void start();

  /// Stops the loop thread and closes every socket. Idempotent. on_close is
  /// not invoked for the teardown.
  void stop();

  /// Opens a nonblocking outbound connection to 127.0.0.1:`port`.
  /// Thread-safe; usable before or after start(). Returns 0 on immediate
  /// failure (socket exhaustion). The connection is usable for send() at
  /// once — frames queue until the connect completes.
  ConnId connect(std::uint16_t port);

  /// Queues one framed buffer on `conn`'s output ring and wakes the loop.
  /// Thread-safe, never blocks. See Options for the overflow policy.
  SendResult send(ConnId conn, const std::vector<std::uint8_t>& frame);

  /// Requests an asynchronous close of `conn`. Thread-safe; on_close fires
  /// on the loop thread.
  void close(ConnId conn);

  /// Bytes currently queued on `conn`'s output ring (flow-control probes).
  std::size_t outbuf_bytes(ConnId conn) const;

  /// Live connection count (listener and wake fd excluded).
  std::size_t connection_count() const;

  const EventLoopStats& stats() const { return stats_; }

  /// True when called from the loop thread (callback context).
  bool on_loop_thread() const { return std::this_thread::get_id() == loop_tid_.load(); }

 private:
  struct Conn {
    int fd = -1;
    ConnId id = 0;
    bool inbound = false;
    std::atomic<bool> connecting{false};  ///< nonblocking connect() still in flight
    bool want_flush = false;              ///< queued output since the last flush pass (mu_)
    std::atomic<bool> doomed{false};      ///< close requested; torn down by the loop
    ByteRing in;               ///< loop-thread-only
    ByteRing out;              ///< guarded by mu_
  };

  void run();
  void accept_ready();
  void read_ready(Conn* conn);
  void flush_conn(Conn* conn);
  void flush_pending();
  void teardown(Conn* conn, bool deliver_close);
  Conn* find_locked(ConnId id);
  void wake();
  void apply_socket_options(int fd) const;
  void register_fd(int fd, std::uint64_t tag);

  Handler handler_;
  const Options options_;

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  int listen_fd_ = -1;
  std::uint16_t listen_port_ = 0;

  mutable std::mutex mu_;  // guards conns_, flush_queue_, every Conn::out
  std::map<ConnId, std::unique_ptr<Conn>> conns_;
  std::vector<ConnId> flush_queue_;
  std::atomic<ConnId> next_id_{2};  // 0 = wake tag, 1 = listener tag

  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<std::thread::id> loop_tid_{};
  EventLoopStats stats_;
};

}  // namespace escape::net
