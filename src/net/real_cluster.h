// Real-time runtime: one consensus server over TCP and steady_clock.
//
// RealNode wires a RaftNode core to a TcpTransport and a driver thread.
// Inbound messages land in a mailbox from the transport's poll thread; the
// driver thread drains the mailbox and fires due timers under the node lock,
// then consumes the resulting Ready batches through a RealDriver —
// persistence under the lock, transport sends / applies / read grants
// flushed outside it — so the consensus core itself stays single-threaded
// and performs no I/O, exactly as in the simulator.
//
// This is the deployment path a downstream user runs on a real cluster; the
// repo's benches use the simulator instead (determinism and virtual time).
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "common/clock.h"
#include "net/real_driver.h"
#include "net/tcp_transport.h"
#include "raft/raft_node.h"
#include "storage/snapshot_store.h"
#include "storage/state_store.h"
#include "storage/wal.h"

namespace escape::net {

/// Builds an election policy for a member (same shape as sim::PolicyFactory).
using PolicyFactory =
    std::function<std::unique_ptr<raft::ElectionPolicy>(ServerId id, std::size_t cluster_size)>;

class RealNode {
 public:
  struct Options {
    Options() { node.commit_noop_on_elect = true; }  // production semantics

    raft::NodeOptions node;
    /// When non-empty, durable state lives in `<data_dir>/S<id>.state`,
    /// `<data_dir>/S<id>.wal` and `<data_dir>/S<id>.snap`; otherwise
    /// volatile in-memory stores are used.
    std::string data_dir;
    std::uint64_t seed = 1;
    /// Pre-bound listening socket to adopt (port-0 path; see
    /// bind_loopback_listener). When < 0, the transport binds
    /// endpoints[id] itself in start().
    int listen_fd = -1;
  };

  /// `endpoints` maps every member (including `id`) to a 127.0.0.1 port.
  RealNode(ServerId id, std::map<ServerId, std::uint16_t> endpoints, PolicyFactory policy,
           Options options);
  RealNode(ServerId id, std::map<ServerId, std::uint16_t> endpoints, PolicyFactory policy);
  ~RealNode();

  RealNode(const RealNode&) = delete;
  RealNode& operator=(const RealNode&) = delete;

  /// Binds the transport and launches the driver thread.
  void start();

  /// Stops the driver thread and transport. Idempotent.
  void stop();

  /// Thread-safe command submission (leader only; nullopt otherwise).
  std::optional<LogIndex> submit(std::vector<std::uint8_t> command);

  /// Thread-safe linearizable-read submission (leader only; nullopt
  /// otherwise — redirect via leader_hint()). The completion arrives on the
  /// driver thread through the read hook, after every committed entry up to
  /// the grant's read index was handed to the apply hook; an `ok` grant
  /// therefore licenses serving the read from the local state machine.
  std::optional<raft::ReadId> submit_read();

  /// Hook invoked (on the driver thread) for every committed entry.
  void set_apply_hook(std::function<void(const rpc::LogEntry&)> hook);

  /// Hook invoked (on the driver thread) for every read grant/rejection.
  void set_read_hook(std::function<void(const raft::ReadGrant&)> hook);

  /// Hook invoked (on the driver thread) when a leader snapshot supersedes
  /// this node's log — rebuild the application state machine from it before
  /// the next apply. Also fired from start() when the node boots from a
  /// stored snapshot (set the hook before start()).
  void set_restore_hook(std::function<void(const raft::Snapshot&)> hook);

  // Thread-safe snapshots of node state.
  Role role() const;
  Term term() const;
  ServerId leader_hint() const;
  LogIndex commit_index() const;
  raft::NodeCounters counters() const;
  ServerId id() const { return id_; }

  /// Port the transport listens on (kernel-assigned with the port-0 path).
  /// Meaningful after start().
  std::uint16_t listen_port() const;

 private:
  void run_loop();

  const ServerId id_;
  Options options_;
  SteadyClock clock_;

  std::unique_ptr<storage::StateStore> store_;
  std::unique_ptr<storage::Wal> wal_;
  std::unique_ptr<storage::SnapshotStore> snaps_;
  std::unique_ptr<RealDriver> driver_io_;    // guarded by mu_
  std::unique_ptr<raft::RaftNode> node_;     // guarded by mu_
  std::shared_ptr<const raft::Snapshot> boot_snapshot_;  ///< replayed in start()
  std::unique_ptr<TcpTransport> transport_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<rpc::Envelope> mailbox_;
  std::function<void(const rpc::LogEntry&)> apply_hook_;
  std::function<void(const raft::ReadGrant&)> read_hook_;
  std::function<void(const raft::Snapshot&)> restore_hook_;

  std::thread driver_;
  std::atomic<bool> running_{false};
};

}  // namespace escape::net
