#include "net/event_loop.h"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include "common/logging.h"
#include "common/serde.h"
#include "rpc/wire.h"

namespace escape::net {
namespace {

// epoll_event.data.u64 tags for the two non-connection fds; connection ids
// start at 2 (see next_id_).
constexpr std::uint64_t kWakeTag = 0;
constexpr std::uint64_t kListenerTag = 1;

constexpr std::size_t kFrameHeaderBytes = 2 + 1 + 1 + 4 + 4;

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void set_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Parses every complete frame off `in` (same wire format as
/// rpc::FrameReader, parsed in place on the ring). Returns false on a
/// magic/version/length/CRC violation — the stream is no longer trustworthy.
bool parse_frames(ByteRing& in, std::vector<std::vector<std::uint8_t>>& out) {
  for (;;) {
    if (in.size() < kFrameHeaderBytes) return true;
    std::uint8_t hdr[kFrameHeaderBytes];
    in.peek(0, hdr, kFrameHeaderBytes);
    Decoder d(hdr, kFrameHeaderBytes);
    const auto magic = d.u16();
    const auto version = d.u8();
    const auto flags = d.u8();
    const auto length = d.u32();
    const auto crc = d.u32();
    if (magic != rpc::kWireMagic || version != rpc::kWireVersion || flags != 0 ||
        length > rpc::kMaxFrameBytes) {
      return false;
    }
    if (in.size() < kFrameHeaderBytes + length) return true;
    std::vector<std::uint8_t> payload(length);
    in.peek(kFrameHeaderBytes, payload.data(), length);
    if (crc32(payload) != crc) return false;
    in.consume(kFrameHeaderBytes + length);
    out.push_back(std::move(payload));
  }
}

}  // namespace

namespace testhooks {
RecvFn recv_fn = &::recv;
SendFn send_fn = &::send;
AcceptFn accept_fn = &::accept;
void reset() {
  recv_fn = &::recv;
  send_fn = &::send;
  accept_fn = &::accept;
}
}  // namespace testhooks

BoundListener bind_loopback_listener(std::uint16_t port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw std::runtime_error("socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error("bind() failed on port " + std::to_string(port) + ": " +
                             std::strerror(err));
  }
  if (::listen(fd, backlog) != 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error(std::string("listen() failed: ") + std::strerror(err));
  }
  set_nonblocking(fd);
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error(std::string("getsockname() failed: ") + std::strerror(err));
  }
  return BoundListener{fd, ntohs(bound.sin_port)};
}

// --- ByteRing ----------------------------------------------------------------

void ByteRing::grow(std::size_t need) {
  std::size_t cap = buf_.empty() ? 4096 : buf_.size();
  while (cap < need) cap *= 2;
  if (cap == buf_.size()) return;
  std::vector<std::uint8_t> next(cap);
  peek(0, next.data(), size_);
  buf_ = std::move(next);
  head_ = 0;
}

void ByteRing::append(const std::uint8_t* data, std::size_t n) {
  if (size_ + n > buf_.size()) grow(size_ + n);
  const std::size_t tail = (head_ + size_) & (buf_.size() - 1);
  const std::size_t first = std::min(n, buf_.size() - tail);
  std::memcpy(buf_.data() + tail, data, first);
  std::memcpy(buf_.data(), data + first, n - first);
  size_ += n;
}

std::pair<std::uint8_t*, std::size_t> ByteRing::tail_span(std::size_t want) {
  if (size_ + want > buf_.size()) grow(size_ + want);
  const std::size_t tail = (head_ + size_) & (buf_.size() - 1);
  return {buf_.data() + tail, std::min(buf_.size() - tail, buf_.size() - size_)};
}

void ByteRing::produce(std::size_t n) { size_ += n; }

std::pair<const std::uint8_t*, std::size_t> ByteRing::head_span() const {
  if (buf_.empty()) return {nullptr, 0};
  return {buf_.data() + head_, std::min(size_, buf_.size() - head_)};
}

void ByteRing::peek(std::size_t offset, std::uint8_t* out, std::size_t n) const {
  if (n == 0) return;
  const std::size_t start = (head_ + offset) & (buf_.size() - 1);
  const std::size_t first = std::min(n, buf_.size() - start);
  std::memcpy(out, buf_.data() + start, first);
  std::memcpy(out + first, buf_.data(), n - first);
}

void ByteRing::consume(std::size_t n) {
  head_ = (head_ + n) & (buf_.size() - 1);
  size_ -= n;
  if (size_ == 0) head_ = 0;
}

// --- EventLoop ---------------------------------------------------------------

EventLoop::EventLoop(Handler handler, Options options)
    : handler_(std::move(handler)), options_(options) {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) throw std::runtime_error("epoll_create1() failed");
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
    throw std::runtime_error("eventfd() failed");
  }
  register_fd(wake_fd_, kWakeTag);
}

EventLoop::~EventLoop() { stop(); }

void EventLoop::register_fd(int fd, std::uint64_t tag) {
  epoll_event ev{};
  // Every fd is registered once, edge-triggered, for both directions: the
  // loop drains each readiness edge to EAGAIN, so no EPOLL_CTL_MOD churn is
  // ever needed. (The wake/listen fds only ever report EPOLLIN.)
  ev.events = EPOLLIN | EPOLLOUT | EPOLLET | EPOLLRDHUP;
  ev.data.u64 = tag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    throw std::runtime_error(std::string("epoll_ctl(ADD) failed: ") + std::strerror(errno));
  }
}

void EventLoop::apply_socket_options(int fd) const {
  if (options_.sndbuf > 0) {
    ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options_.sndbuf, sizeof(options_.sndbuf));
  }
  if (options_.rcvbuf > 0) {
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &options_.rcvbuf, sizeof(options_.rcvbuf));
  }
}

void EventLoop::listen(BoundListener listener) {
  if (listen_fd_ >= 0) throw std::logic_error("EventLoop already listening");
  if (listener.fd < 0) listener = bind_loopback_listener(listener.port);
  apply_socket_options(listener.fd);
  listen_fd_ = listener.fd;
  listen_port_ = listener.port;
  register_fd(listen_fd_, kListenerTag);
}

void EventLoop::start() {
  running_.store(true);
  thread_ = std::thread([this] { run(); });
}

void EventLoop::stop() {
  const bool was_running = running_.exchange(false);
  if (was_running) {
    wake();
    if (thread_.joinable()) thread_.join();
  }
  std::lock_guard lock(mu_);
  for (auto& [id, conn] : conns_) {
    if (conn->fd >= 0) ::close(conn->fd);
  }
  conns_.clear();
  flush_queue_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  if (wake_fd_ >= 0) ::close(wake_fd_);
  wake_fd_ = -1;
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  epoll_fd_ = -1;
}

void EventLoop::wake() {
  const std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

EventLoop::ConnId EventLoop::connect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return 0;
  set_nonblocking(fd);
  set_nodelay(fd);
  apply_socket_options(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  const int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    return 0;
  }
  auto conn = std::make_unique<Conn>();
  conn->fd = fd;
  conn->id = next_id_.fetch_add(1);
  conn->inbound = false;
  // Even an instantly-successful loopback connect() goes through the
  // "connecting" state: registering with EPOLLET reports current readiness
  // as an initial edge, so the loop's first EPOLLOUT completes the connect
  // and fires on_open uniformly on the loop thread.
  conn->connecting.store(true, std::memory_order_relaxed);
  const ConnId id = conn->id;
  {
    std::lock_guard lock(mu_);
    conns_.emplace(id, std::move(conn));
  }
  try {
    register_fd(fd, id);
  } catch (const std::runtime_error&) {
    std::lock_guard lock(mu_);
    conns_.erase(id);
    ::close(fd);
    return 0;
  }
  stats_.connected.fetch_add(1, std::memory_order_relaxed);
  return id;
}

EventLoop::SendResult EventLoop::send(ConnId id, const std::vector<std::uint8_t>& frame) {
  bool need_wake = false;
  {
    std::lock_guard lock(mu_);
    Conn* conn = find_locked(id);
    if (!conn || conn->doomed.load(std::memory_order_relaxed)) return SendResult::kClosed;
    if (conn->out.size() + frame.size() > options_.max_outbuf_bytes) {
      if (options_.evict_on_overflow) {
        // Slow client: its output ring is full because it stopped reading.
        // Cut it loose rather than let it pin server memory.
        stats_.evicted_slow.fetch_add(1, std::memory_order_relaxed);
        conn->doomed.store(true, std::memory_order_relaxed);
        if (!conn->want_flush) {
          conn->want_flush = true;
          flush_queue_.push_back(id);
        }
        need_wake = !on_loop_thread();
      }
      if (need_wake) wake();
      return SendResult::kOverflow;
    }
    conn->out.append(frame.data(), frame.size());
    stats_.frames_out.fetch_add(1, std::memory_order_relaxed);
    if (!conn->want_flush) {
      conn->want_flush = true;
      flush_queue_.push_back(id);
      need_wake = !on_loop_thread();
    }
  }
  // Off-loop senders wake the loop; on the loop thread the end-of-iteration
  // flush pass picks the connection up, coalescing many frames per write().
  if (need_wake) wake();
  return SendResult::kOk;
}

void EventLoop::close(ConnId id) {
  bool need_wake = false;
  {
    std::lock_guard lock(mu_);
    Conn* conn = find_locked(id);
    if (!conn || conn->doomed.load(std::memory_order_relaxed)) return;
    conn->doomed.store(true, std::memory_order_relaxed);
    if (!conn->want_flush) {
      conn->want_flush = true;
      flush_queue_.push_back(id);
    }
    need_wake = !on_loop_thread();
  }
  if (need_wake) wake();
}

std::size_t EventLoop::outbuf_bytes(ConnId id) const {
  std::lock_guard lock(mu_);
  const auto it = conns_.find(id);
  return it == conns_.end() ? 0 : it->second->out.size();
}

std::size_t EventLoop::connection_count() const {
  std::lock_guard lock(mu_);
  return conns_.size();
}

EventLoop::Conn* EventLoop::find_locked(ConnId id) {
  const auto it = conns_.find(id);
  return it == conns_.end() ? nullptr : it->second.get();
}

void EventLoop::accept_ready() {
  for (;;) {
    const int fd = testhooks::accept_fn(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;  // signal mid-accept; connection still queued
      if (errno != EAGAIN && errno != EWOULDBLOCK) {
        LOG_WARN("event loop: accept() failed: " << std::strerror(errno));
      }
      break;
    }
    set_nonblocking(fd);
    set_nodelay(fd);
    apply_socket_options(fd);
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->id = next_id_.fetch_add(1);
    conn->inbound = true;
    const ConnId id = conn->id;
    {
      std::lock_guard lock(mu_);
      conns_.emplace(id, std::move(conn));
    }
    try {
      register_fd(fd, id);
    } catch (const std::runtime_error&) {
      std::lock_guard lock(mu_);
      conns_.erase(id);
      ::close(fd);
      continue;
    }
    stats_.accepted.fetch_add(1, std::memory_order_relaxed);
    if (handler_.on_open) handler_.on_open(id, true);
  }
}

void EventLoop::read_ready(Conn* conn) {
  bool peer_closed = false;
  for (;;) {
    auto [buf, cap] = conn->in.tail_span(options_.read_chunk);
    const ssize_t n = testhooks::recv_fn(conn->fd, buf, cap, 0);
    if (n > 0) {
      conn->in.produce(static_cast<std::size_t>(n));
      stats_.bytes_in.fetch_add(static_cast<std::uint64_t>(n), std::memory_order_relaxed);
    } else if (n == 0) {
      peer_closed = true;  // orderly shutdown; deliver what already arrived
      break;
    } else {
      // errno is only meaningful on a negative return. EINTR means a signal
      // landed mid-syscall: the connection is healthy, retry immediately.
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      teardown(conn, true);
      return;
    }
  }
  std::vector<std::vector<std::uint8_t>> frames;
  if (!parse_frames(conn->in, frames)) {
    stats_.decode_errors.fetch_add(1, std::memory_order_relaxed);
    LOG_WARN("event loop: closing connection " << conn->id << " after frame decode error");
    teardown(conn, true);
    return;
  }
  if (!frames.empty()) {
    stats_.frames_in.fetch_add(frames.size(), std::memory_order_relaxed);
    if (handler_.on_frames) handler_.on_frames(conn->id, std::move(frames));
  }
  if (peer_closed) teardown(conn, true);
}

void EventLoop::flush_conn(Conn* conn) {
  std::unique_lock lock(mu_);
  conn->want_flush = false;
  while (!conn->out.empty()) {
    const auto [data, len] = conn->out.head_span();
    const ssize_t n = testhooks::send_fn(conn->fd, data, len, MSG_NOSIGNAL);
    if (n > 0) {
      conn->out.consume(static_cast<std::size_t>(n));
      stats_.bytes_out.fetch_add(static_cast<std::uint64_t>(n), std::memory_order_relaxed);
    } else if (n == 0) {
      // No bytes accepted but no error either; errno is stale here and must
      // not be consulted. Retry on the next writability edge.
      break;
    } else if (errno == EINTR) {
      continue;  // signal mid-send; the connection is fine
    } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
      break;  // kernel buffer full; EPOLLET delivers an edge when it drains
    } else {
      lock.unlock();
      teardown(conn, true);
      return;
    }
  }
}

void EventLoop::flush_pending() {
  std::vector<ConnId> queue;
  {
    std::lock_guard lock(mu_);
    queue.swap(flush_queue_);
  }
  for (const ConnId id : queue) {
    Conn* conn;
    {
      std::lock_guard lock(mu_);
      conn = find_locked(id);
    }
    if (!conn) continue;
    if (conn->doomed.load(std::memory_order_relaxed)) {
      teardown(conn, true);
      continue;
    }
    flush_conn(conn);
  }
}

void EventLoop::teardown(Conn* conn, bool deliver_close) {
  std::unique_ptr<Conn> owned;
  {
    std::lock_guard lock(mu_);
    const auto it = conns_.find(conn->id);
    if (it == conns_.end()) return;
    owned = std::move(it->second);
    conns_.erase(it);
  }
  ::close(owned->fd);
  owned->fd = -1;
  stats_.closed.fetch_add(1, std::memory_order_relaxed);
  if (deliver_close && handler_.on_close) handler_.on_close(owned->id);
}

void EventLoop::run() {
  loop_tid_.store(std::this_thread::get_id());
  std::vector<epoll_event> events(256);
  while (running_.load()) {
    const int n = ::epoll_wait(epoll_fd_, events.data(), static_cast<int>(events.size()),
                               100);  // bounded: shutdown cannot hang on a quiet loop
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (!running_.load()) break;
    for (int i = 0; i < n; ++i) {
      const std::uint64_t tag = events[i].data.u64;
      const std::uint32_t ev = events[i].events;
      if (tag == kWakeTag) {
        std::uint64_t drain;
        while (::read(wake_fd_, &drain, sizeof(drain)) > 0) {
        }
        stats_.wakeups.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (tag == kListenerTag) {
        accept_ready();
        continue;
      }
      Conn* conn;
      {
        std::lock_guard lock(mu_);
        conn = find_locked(tag);
      }
      if (!conn) continue;  // torn down earlier this iteration
      if (ev & EPOLLERR) {
        teardown(conn, true);
        continue;
      }
      if (ev & EPOLLOUT) {
        if (conn->connecting.exchange(false, std::memory_order_relaxed)) {
          int err = 0;
          socklen_t len = sizeof(err);
          ::getsockopt(conn->fd, SOL_SOCKET, SO_ERROR, &err, &len);
          if (err != 0) {
            teardown(conn, true);
            continue;
          }
          if (handler_.on_open) handler_.on_open(conn->id, false);
          // on_open may have queued frames or closed the connection.
          {
            std::lock_guard lock(mu_);
            conn = find_locked(tag);
          }
          if (!conn) continue;
        }
        flush_conn(conn);
        {
          std::lock_guard lock(mu_);
          conn = find_locked(tag);
        }
        if (!conn) continue;  // flush hit a fatal error
      }
      if (ev & (EPOLLIN | EPOLLRDHUP | EPOLLHUP)) read_ready(conn);
    }
    // End-of-iteration output pass: every connection send() touched this
    // iteration — responses generated in on_frames and frames queued by
    // other threads — flushes here, many frames per write().
    flush_pending();
  }
}

}  // namespace escape::net
