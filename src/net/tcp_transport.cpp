#include "net/tcp_transport.h"

#include <stdexcept>

#include "common/logging.h"
#include "common/serde.h"

namespace escape::net {
namespace {

// The first frame on an outgoing connection carries a one-u32 hello (the
// sender's id) so the acceptor can attribute inbound traffic to a ServerId.
std::vector<std::uint8_t> hello_frame(ServerId self) {
  Encoder e;
  e.u32(self);
  return rpc::frame_payload(e.take());
}

}  // namespace

TcpTransport::TcpTransport(ServerId self, std::map<ServerId, std::uint16_t> endpoints,
                           DeliverFn deliver, TransportOptions options)
    : self_(self),
      endpoints_(std::move(endpoints)),
      deliver_(std::move(deliver)),
      options_(options) {
  if (endpoints_.find(self_) == endpoints_.end()) {
    throw std::invalid_argument("endpoints must include self");
  }
  EventLoop::Options loop_options;
  loop_options.sndbuf = options_.sndbuf;
  loop_options.rcvbuf = options_.rcvbuf;
  // Transport mode: overflow drops the frame but keeps the connection —
  // consensus retransmits by design, and evicting a live peer link would
  // only force a reconnect.
  loop_options.evict_on_overflow = false;
  EventLoop::Handler handler;
  handler.on_frames = [this](EventLoop::ConnId conn,
                             std::vector<std::vector<std::uint8_t>>&& frames) {
    on_frames(conn, std::move(frames));
  };
  handler.on_close = [this](EventLoop::ConnId conn) { on_conn_closed(conn); };
  loop_ = std::make_unique<EventLoop>(std::move(handler), loop_options);
}

TcpTransport::~TcpTransport() { stop(); }

void TcpTransport::set_deliver_batch(DeliverBatchFn deliver_batch) {
  deliver_batch_ = std::move(deliver_batch);
}

void TcpTransport::start() {
  BoundListener listener{options_.listen_fd, endpoints_.at(self_)};
  if (listener.fd < 0) listener = bind_loopback_listener(listener.port);
  loop_->listen(listener);
  loop_->start();
}

void TcpTransport::stop() {
  loop_->stop();
  std::lock_guard lock(mu_);
  peer_conn_.clear();
  conn_peer_.clear();
}

std::uint16_t TcpTransport::port() const { return loop_->port(); }

EventLoop::ConnId TcpTransport::outgoing_locked(ServerId peer) {
  const auto existing = peer_conn_.find(peer);
  if (existing != peer_conn_.end()) return existing->second;
  const auto endpoint = endpoints_.find(peer);
  if (endpoint == endpoints_.end()) return 0;
  const EventLoop::ConnId conn = loop_->connect(endpoint->second);
  if (conn == 0) return 0;
  peer_conn_[peer] = conn;
  conn_peer_[conn] = peer;
  stats_.reconnects.fetch_add(1, std::memory_order_relaxed);
  loop_->send(conn, hello_frame(self_));
  return conn;
}

void TcpTransport::send(const rpc::Envelope& envelope) {
  const auto frame = rpc::frame_message(envelope.message);
  EventLoop::ConnId conn;
  {
    std::lock_guard lock(mu_);
    conn = outgoing_locked(envelope.to);
  }
  if (conn == 0 || loop_->send(conn, frame) != EventLoop::SendResult::kOk) {
    stats_.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  stats_.sent.fetch_add(1, std::memory_order_relaxed);
}

void TcpTransport::send_batch(const std::vector<rpc::Envelope>& envelopes) {
  // Per-envelope path; the loop already coalesces every frame queued this
  // pass into few write()s per destination.
  for (const auto& envelope : envelopes) send(envelope);
}

void TcpTransport::on_frames(EventLoop::ConnId conn,
                             std::vector<std::vector<std::uint8_t>>&& frames) {
  ServerId peer = kNoServer;
  {
    std::lock_guard lock(mu_);
    const auto it = conn_peer_.find(conn);
    if (it != conn_peer_.end()) peer = it->second;
  }
  std::vector<rpc::Envelope> batch;
  batch.reserve(frames.size());
  bool corrupt = false;
  std::size_t i = 0;
  try {
    if (peer == kNoServer) {
      // First inbound frame is the hello carrying the sender's id.
      Decoder d(frames[0]);
      peer = d.u32();
      d.expect_end();
      std::lock_guard lock(mu_);
      conn_peer_[conn] = peer;
      i = 1;
    }
    for (; i < frames.size(); ++i) {
      rpc::Envelope env;
      env.from = peer;
      env.to = self_;
      env.message = rpc::decode_message(frames[i]);
      batch.push_back(std::move(env));
    }
  } catch (const DecodeError& e) {
    LOG_WARN("transport " << server_name(self_)
                          << ": closing connection after decode error: " << e.what());
    corrupt = true;
  }
  stats_.received.fetch_add(batch.size(), std::memory_order_relaxed);
  // Frames decoded before the corrupt one still deliver, matching the
  // stream-prefix semantics of the old per-frame path.
  if (!batch.empty()) {
    if (deliver_batch_) {
      deliver_batch_(std::move(batch));
    } else if (deliver_) {
      for (const auto& env : batch) deliver_(env);
    }
  }
  if (corrupt) loop_->close(conn);
}

void TcpTransport::on_conn_closed(EventLoop::ConnId conn) {
  std::lock_guard lock(mu_);
  const auto it = conn_peer_.find(conn);
  if (it == conn_peer_.end()) return;
  const auto out = peer_conn_.find(it->second);
  // Only forget the outgoing link when it is this connection — an inbound
  // connection from the same peer closing must not sever our own link.
  if (out != peer_conn_.end() && out->second == conn) peer_conn_.erase(out);
  conn_peer_.erase(it);
}

}  // namespace escape::net
