#include "net/tcp_transport.h"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/logging.h"

namespace escape::net {
namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

// Frames carry a one-u32 hello (the sender's id) as the first payload so the
// acceptor can attribute inbound traffic to a ServerId.
std::vector<std::uint8_t> hello_payload(ServerId self) {
  Encoder e;
  e.u32(self);
  return e.take();
}

}  // namespace

namespace testhooks {
RecvFn recv_fn = &::recv;
SendFn send_fn = &::send;
AcceptFn accept_fn = &::accept;
void reset() {
  recv_fn = &::recv;
  send_fn = &::send;
  accept_fn = &::accept;
}
}  // namespace testhooks

TcpTransport::TcpTransport(ServerId self, std::map<ServerId, std::uint16_t> endpoints,
                           DeliverFn deliver, TransportOptions options)
    : self_(self),
      endpoints_(std::move(endpoints)),
      deliver_(std::move(deliver)),
      options_(options) {
  if (endpoints_.find(self_) == endpoints_.end()) {
    throw std::invalid_argument("endpoints must include self");
  }
}

TcpTransport::~TcpTransport() { stop(); }

void TcpTransport::apply_socket_options(int fd) const {
  if (options_.sndbuf > 0) {
    ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options_.sndbuf, sizeof(options_.sndbuf));
  }
  if (options_.rcvbuf > 0) {
    ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &options_.rcvbuf, sizeof(options_.rcvbuf));
  }
}

void TcpTransport::start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  apply_socket_options(listen_fd_);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(endpoints_.at(self_));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    throw std::runtime_error("bind() failed on port " + std::to_string(endpoints_.at(self_)) +
                             ": " + std::strerror(errno));
  }
  if (::listen(listen_fd_, 64) != 0) throw std::runtime_error("listen() failed");
  set_nonblocking(listen_fd_);

  if (::pipe(wake_pipe_) != 0) throw std::runtime_error("pipe() failed");
  set_nonblocking(wake_pipe_[0]);
  set_nonblocking(wake_pipe_[1]);

  running_.store(true);
  thread_ = std::thread([this] { poll_loop(); });
}

void TcpTransport::stop() {
  if (!running_.exchange(false)) return;
  wake();
  if (thread_.joinable()) thread_.join();
  std::lock_guard lock(mu_);
  for (auto& [fd, conn] : conns_) ::close(fd);
  conns_.clear();
  peer_conn_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  for (int& fd : wake_pipe_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
}

void TcpTransport::wake() {
  const char b = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &b, 1);
}

bool TcpTransport::connect_peer(ServerId peer) {
  // mu_ held by caller.
  const auto it = endpoints_.find(peer);
  if (it == endpoints_.end()) return false;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return false;
  set_nonblocking(fd);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  apply_socket_options(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(it->second);
  const int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    ::close(fd);
    return false;
  }
  Conn conn;
  conn.fd = fd;
  conn.peer = peer;
  conn.connecting = rc != 0;
  // First frame on an outgoing connection identifies us to the acceptor.
  const auto hello = rpc::frame_payload(hello_payload(self_));
  conn.outbuf.insert(conn.outbuf.end(), hello.begin(), hello.end());
  conns_.emplace(fd, std::move(conn));
  peer_conn_[peer] = fd;
  stats_.reconnects.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void TcpTransport::send(const rpc::Envelope& envelope) {
  const auto frame = rpc::frame_message(envelope.message);
  {
    std::lock_guard lock(mu_);
    auto it = peer_conn_.find(envelope.to);
    if (it == peer_conn_.end()) {
      if (!connect_peer(envelope.to)) {
        stats_.dropped.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      it = peer_conn_.find(envelope.to);
    }
    auto& conn = conns_.at(it->second);
    if (conn.outbuf.size() + frame.size() > kMaxOutboundBytes) {
      stats_.dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    conn.outbuf.insert(conn.outbuf.end(), frame.begin(), frame.end());
    stats_.sent.fetch_add(1, std::memory_order_relaxed);
  }
  wake();
}

void TcpTransport::close_conn(int fd) {
  // mu_ held by caller.
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  if (it->second.peer != kNoServer) {
    const auto pit = peer_conn_.find(it->second.peer);
    if (pit != peer_conn_.end() && pit->second == fd) peer_conn_.erase(pit);
  }
  ::close(fd);
  conns_.erase(it);
}

void TcpTransport::handle_readable(Conn& conn) {
  std::uint8_t buf[1 << 16];
  while (true) {
    const ssize_t n = testhooks::recv_fn(conn.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn.reader.feed(buf, static_cast<std::size_t>(n));
    } else if (n == 0) {
      close_conn(conn.fd);  // orderly shutdown by the peer
      return;
    } else {
      // errno is only meaningful on a negative return. EINTR means a signal
      // landed mid-syscall: the connection is healthy, retry immediately.
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      close_conn(conn.fd);
      return;
    }
  }
  try {
    while (auto payload = conn.reader.next()) {
      if (conn.peer == kNoServer) {
        // First inbound frame is the hello carrying the sender's id.
        Decoder d(*payload);
        conn.peer = d.u32();
        d.expect_end();
        continue;
      }
      rpc::Envelope env;
      env.from = conn.peer;
      env.to = self_;
      env.message = rpc::decode_message(*payload);
      stats_.received.fetch_add(1, std::memory_order_relaxed);
      deliver_(env);
    }
  } catch (const DecodeError& e) {
    LOG_WARN("transport " << server_name(self_) << ": closing connection after decode error: "
                          << e.what());
    close_conn(conn.fd);
  }
}

void TcpTransport::flush_writable(Conn& conn) {
  conn.connecting = false;
  while (!conn.outbuf.empty()) {
    // deque is not contiguous; copy a bounded chunk.
    std::uint8_t chunk[1 << 16];
    const std::size_t len = std::min(conn.outbuf.size(), sizeof(chunk));
    for (std::size_t i = 0; i < len; ++i) chunk[i] = conn.outbuf[i];
    const ssize_t n = testhooks::send_fn(conn.fd, chunk, len, MSG_NOSIGNAL);
    if (n > 0) {
      conn.outbuf.erase(conn.outbuf.begin(), conn.outbuf.begin() + n);
    } else if (n == 0) {
      // No bytes accepted but no error either; errno is stale here and must
      // not be consulted. Leave the buffer queued and retry on the next
      // POLLOUT rather than spinning or closing on a leftover errno value.
      break;
    } else if (errno == EINTR) {
      continue;  // signal mid-send; the connection is fine
    } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
      break;
    } else {
      close_conn(conn.fd);
      return;
    }
  }
}

void TcpTransport::poll_loop() {
  while (running_.load()) {
    std::vector<pollfd> fds;
    fds.push_back({listen_fd_, POLLIN, 0});
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    {
      std::lock_guard lock(mu_);
      for (auto& [fd, conn] : conns_) {
        short events = POLLIN;
        if (!conn.outbuf.empty() || conn.connecting) events |= POLLOUT;
        fds.push_back({fd, events, 0});
      }
    }
    const int rc = ::poll(fds.data(), fds.size(), 100);
    if (rc < 0 && errno != EINTR) break;
    if (!running_.load()) break;

    if (fds[0].revents & POLLIN) {
      while (true) {
        const int cfd = testhooks::accept_fn(listen_fd_, nullptr, nullptr);
        if (cfd < 0) {
          if (errno == EINTR) continue;  // signal mid-accept; the pending
                                         // connection is still queued
          break;
        }
        set_nonblocking(cfd);
        const int one = 1;
        ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        apply_socket_options(cfd);
        std::lock_guard lock(mu_);
        Conn conn;
        conn.fd = cfd;
        conns_.emplace(cfd, std::move(conn));
      }
    }
    if (fds[1].revents & POLLIN) {
      char drain[256];
      while (::read(wake_pipe_[0], drain, sizeof(drain)) > 0) {
      }
    }
    for (std::size_t i = 2; i < fds.size(); ++i) {
      std::lock_guard lock(mu_);
      auto it = conns_.find(fds[i].fd);
      if (it == conns_.end()) continue;
      if (fds[i].revents & (POLLERR | POLLHUP)) {
        close_conn(fds[i].fd);
        continue;
      }
      if (fds[i].revents & POLLOUT) flush_writable(it->second);
      // flush may close; re-find.
      it = conns_.find(fds[i].fd);
      if (it == conns_.end()) continue;
      if (fds[i].revents & POLLIN) handle_readable(it->second);
    }
  }
}

}  // namespace escape::net
