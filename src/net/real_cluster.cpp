#include "net/real_cluster.h"

#include <chrono>

#include "common/logging.h"

namespace escape::net {

RealNode::RealNode(ServerId id, std::map<ServerId, std::uint16_t> endpoints,
                   PolicyFactory policy, Options options)
    : id_(id), options_(std::move(options)) {
  std::vector<ServerId> members;
  for (const auto& [member, port] : endpoints) members.push_back(member);

  if (options_.data_dir.empty()) {
    store_ = std::make_unique<storage::MemoryStateStore>();
    wal_ = std::make_unique<storage::NullWal>();
    snaps_ = std::make_unique<storage::MemorySnapshotStore>();
  } else {
    const std::string base = options_.data_dir + "/" + server_name(id_);
    store_ = std::make_unique<storage::FileStateStore>(base + ".state");
    wal_ = std::make_unique<storage::FileWal>(base + ".wal");
    snaps_ = std::make_unique<storage::FileSnapshotStore>(base + ".snap");
  }

  driver_io_ = std::make_unique<RealDriver>(*store_, *wal_, snaps_.get());
  auto boot = driver_io_->recover();
  if (boot.snapshot && boot.snapshot->last_included_index > 0) {
    boot_snapshot_ = std::make_shared<const raft::Snapshot>(*boot.snapshot);
  }
  node_ = std::make_unique<raft::RaftNode>(id_, members, policy(id_, members.size()),
                                           Rng(options_.seed ^ (0xC0FFEEull + id_)),
                                           options_.node, std::move(boot));
  driver_io_->attach(*node_);
  TransportOptions topts;
  topts.listen_fd = options_.listen_fd;
  transport_ = std::make_unique<TcpTransport>(id_, endpoints, TcpTransport::DeliverFn{}, topts);
  // Whole-burst delivery: every message of one readiness edge lands in the
  // mailbox under a single lock acquisition, and the driver thread steps
  // them all before pumping Ready batches.
  transport_->set_deliver_batch([this](std::vector<rpc::Envelope>&& batch) {
    {
      std::lock_guard lock(mu_);
      for (auto& env : batch) mailbox_.push_back(std::move(env));
    }
    cv_.notify_one();
  });
}

RealNode::RealNode(ServerId id, std::map<ServerId, std::uint16_t> endpoints,
                   PolicyFactory policy)
    : RealNode(id, std::move(endpoints), std::move(policy), Options()) {}

RealNode::~RealNode() { stop(); }

void RealNode::start() {
  transport_->start();
  running_.store(true);
  {
    std::lock_guard lock(mu_);
    // Rebuild the application state machine from the stored snapshot before
    // any entry beyond it can reach the apply hook.
    if (boot_snapshot_ && restore_hook_) restore_hook_(*boot_snapshot_);
    node_->start(clock_.now());
  }
  driver_ = std::thread([this] { run_loop(); });
}

void RealNode::stop() {
  if (!running_.exchange(false)) return;
  cv_.notify_all();
  if (driver_.joinable()) driver_.join();
  transport_->stop();
}

std::optional<LogIndex> RealNode::submit(std::vector<std::uint8_t> command) {
  std::optional<LogIndex> index;
  {
    std::lock_guard lock(mu_);
    index = node_->submit(std::move(command), clock_.now());
  }
  cv_.notify_one();  // the driver thread persists + ships the Ready batch
  return index;
}

std::optional<raft::ReadId> RealNode::submit_read() {
  std::optional<raft::ReadId> read;
  {
    std::lock_guard lock(mu_);
    read = node_->submit_read(clock_.now());
  }
  cv_.notify_one();  // the driver drains the round / any lease grant
  return read;
}

void RealNode::set_apply_hook(std::function<void(const rpc::LogEntry&)> hook) {
  std::lock_guard lock(mu_);
  apply_hook_ = std::move(hook);
}

void RealNode::set_read_hook(std::function<void(const raft::ReadGrant&)> hook) {
  std::lock_guard lock(mu_);
  read_hook_ = std::move(hook);
}

void RealNode::set_restore_hook(std::function<void(const raft::Snapshot&)> hook) {
  std::lock_guard lock(mu_);
  restore_hook_ = std::move(hook);
}

Role RealNode::role() const {
  std::lock_guard lock(mu_);
  return node_->role();
}

Term RealNode::term() const {
  std::lock_guard lock(mu_);
  return node_->term();
}

ServerId RealNode::leader_hint() const {
  std::lock_guard lock(mu_);
  return node_->leader_hint();
}

LogIndex RealNode::commit_index() const {
  std::lock_guard lock(mu_);
  return node_->commit_index();
}

raft::NodeCounters RealNode::counters() const {
  std::lock_guard lock(mu_);
  return node_->counters();
}

std::uint16_t RealNode::listen_port() const { return transport_->port(); }

void RealNode::run_loop() {
  using namespace std::chrono;
  RealDriver::Effects effects;
  while (running_.load()) {
    {
      std::unique_lock lock(mu_);
      if (mailbox_.empty() && !node_->has_ready()) {
        // Sleep until the next timer deadline (bounded so shutdown and
        // clock drift are handled), or until a message arrives.
        const TimePoint deadline = node_->next_deadline();
        Duration wait_us = deadline == kNever ? from_ms(100) : deadline - clock_.now();
        wait_us = std::clamp<Duration>(wait_us, 0, from_ms(100));
        cv_.wait_for(lock, microseconds(wait_us));
      }
      if (!running_.load()) break;
      while (!mailbox_.empty()) {
        const rpc::Envelope env = std::move(mailbox_.front());
        mailbox_.pop_front();
        node_->step(env, clock_.now());
      }
      node_->tick(clock_.now());
    }
    // Drain the pending Ready batches one flush unit at a time: persistence
    // runs under the lock (pump_unit merges consecutive message-only batches
    // so a replication fan-out ships as one send_batch), the
    // environment-facing effects flush outside it in the mandatory order —
    // send, restore, apply, grant.
    for (;;) {
      effects.clear();
      bool drained = false;
      std::function<void(const rpc::LogEntry&)> hook;
      std::function<void(const raft::ReadGrant&)> read_hook;
      std::function<void(const raft::Snapshot&)> restore_hook;
      {
        std::lock_guard lock(mu_);
        drained = driver_io_->pump_unit(effects);
        hook = apply_hook_;
        read_hook = read_hook_;
        restore_hook = restore_hook_;
      }
      if (!drained) break;
      transport_->send_batch(effects.messages);
      if (effects.restore && restore_hook) restore_hook(*effects.restore);
      if (hook) {
        for (const auto& entry : effects.committed) hook(entry);
      }
      // Strictly after the entries: an `ok` grant promises the state machine
      // the read hook serves from already covers its read index.
      if (read_hook) {
        for (const auto& grant : effects.read_grants) read_hook(grant);
      }
    }
  }
}

}  // namespace escape::net
