// KV command wire format.
//
// Commands are the opaque bytes inside replicated log entries. Each command
// carries the issuing client's session identity (client_id, sequence) so the
// state machine can deduplicate retried submissions: a command committed
// twice (e.g. resubmitted after a leader failover) is applied once and the
// cached result is returned.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace escape::kv {

enum class Op : std::uint8_t {
  kPut = 1,     ///< key := value
  kGet = 2,     ///< read key (replicated read; linearizable by construction)
  kDel = 3,     ///< erase key
  kCas = 4,     ///< key := value iff current == expected
  kNoop = 5,    ///< no effect (leader barrier entries)
};

struct Command {
  std::uint64_t client_id = 0;
  std::uint64_t sequence = 0;
  Op op = Op::kNoop;
  std::string key;
  std::string value;     ///< for kPut / kCas
  std::string expected;  ///< for kCas

  bool operator==(const Command&) const = default;
};

/// Result of applying a command.
struct CommandResult {
  bool ok = false;        ///< operation succeeded (CAS matched, GET found...)
  std::string value;      ///< GET result / previous value where meaningful

  bool operator==(const CommandResult&) const = default;
};

/// Serializes a command into log-entry bytes.
std::vector<std::uint8_t> encode_command(const Command& cmd);

/// Parses log-entry bytes; nullopt when malformed (a malformed committed
/// entry is treated as a no-op rather than poisoning the state machine).
std::optional<Command> decode_command(const std::vector<std::uint8_t>& bytes);

/// Serializes / parses results carried back to clients.
std::vector<std::uint8_t> encode_result(const CommandResult& result);
std::optional<CommandResult> decode_result(const std::vector<std::uint8_t>& bytes);

}  // namespace escape::kv
