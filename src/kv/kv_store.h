// Replicated key-value store (the example application substrate).
//
// One KvStore instance runs on every replica; the consensus layer feeds it
// committed entries in log order. Sessions deduplicate client retries: a
// command whose (client_id, sequence) is not newer than the session's last
// applied sequence returns the cached result without re-executing, giving
// exactly-once semantics over an at-least-once submission path.
#pragma once

#include <cstddef>
#include <map>
#include <string>

#include "kv/kv_command.h"
#include "kv/state_machine.h"

namespace escape::kv {

class KvStore final : public StateMachine {
 public:
  std::vector<std::uint8_t> apply(const rpc::LogEntry& entry) override;

  /// Serializes data and sessions. Sessions are part of the snapshot so
  /// exactly-once semantics survive a snapshot-based restore: a client retry
  /// that lands after the restore still deduplicates against the session
  /// table the snapshot carried.
  std::vector<std::uint8_t> snapshot() const override;
  bool restore(const std::vector<std::uint8_t>& bytes) override;

  /// Executes a decoded command with session dedup; exposed for direct
  /// (non-replicated) unit testing.
  CommandResult execute(const Command& cmd);

  /// Local read (not linearizable; tests and inspection only).
  std::optional<std::string> peek(const std::string& key) const;

  std::size_t size() const { return data_.size(); }
  std::size_t session_count() const { return sessions_.size(); }

  /// Visits every key currently in the store, in order. The shard layer's
  /// routing audit uses this to prove no replica holds a key its group does
  /// not own.
  template <typename Fn>
  void for_each_key(Fn&& fn) const {
    for (const auto& [key, value] : data_) fn(key);
  }

 private:
  CommandResult do_execute(const Command& cmd);

  struct Session {
    std::uint64_t last_sequence = 0;
    CommandResult last_result;
  };

  std::map<std::string, std::string> data_;
  std::map<std::uint64_t, Session> sessions_;
};

}  // namespace escape::kv
