// Replicated KV service over a simulated cluster.
//
// KvCluster glues a SimCluster to one KvStore per replica and provides a
// synchronous client: each operation is stamped with a session sequence,
// submitted through the current leader, retried across leader failovers, and
// returns the state-machine output once the entry commits. This is the
// level of API a downstream application would use.
#pragma once

#include <map>
#include <memory>
#include <optional>

#include "kv/kv_command.h"
#include "kv/kv_store.h"
#include "sim/sim_cluster.h"

namespace escape::kv {

class KvCluster {
 public:
  /// Wraps `cluster` (which must outlive this object). Installs the apply
  /// hook; nothing else may install one on the same cluster.
  explicit KvCluster(sim::SimCluster& cluster);

  /// Synchronous client operations; each drives the simulation until the
  /// command commits or `timeout` virtual time elapses. Leader failovers are
  /// retried transparently; duplicates are absorbed by session dedup.
  std::optional<CommandResult> put(const std::string& key, const std::string& value,
                                   Duration timeout = from_ms(60'000));
  std::optional<CommandResult> get(const std::string& key, Duration timeout = from_ms(60'000));
  std::optional<CommandResult> del(const std::string& key, Duration timeout = from_ms(60'000));
  std::optional<CommandResult> cas(const std::string& key, const std::string& expected,
                                   const std::string& value, Duration timeout = from_ms(60'000));

  /// Linearizable read over the fast path: served from the leader's local
  /// store under its lease (zero messages) or after one ReadIndex
  /// confirmation round — never through the replicated log, unlike get().
  /// Retried across leader failovers and rejections until `timeout` virtual
  /// time elapses. `ok` is false when the key is absent (like get()).
  std::optional<CommandResult> read(const std::string& key, Duration timeout = from_ms(60'000));

  /// The replica-local store of one member (inspection in tests/examples).
  const KvStore& store(ServerId id) const { return *stores_.at(id); }

  sim::SimCluster& cluster() { return cluster_; }

 private:
  std::optional<CommandResult> run(Command cmd, Duration timeout);

  /// Resolves the in-flight read() against a grant for its ticket: peeks the
  /// serving replica's store on success, marks the read for re-issue on
  /// rejection. Shared by the listener (asynchronous ReadIndex grants) and
  /// the post-submit claim path (synchronous lease grants).
  void resolve_grant(const raft::ReadGrant& grant);

  /// Abandons the current read ticket (done, rejected, or timed out) and
  /// erases exactly its stash entry. Keyed by ticket so grants stashed for
  /// other issuers — or for the *next* ticket, which can land during
  /// submit_read before the ticket is recorded — survive.
  void retire_pending_read();

  sim::SimCluster& cluster_;
  std::map<ServerId, std::unique_ptr<KvStore>> stores_;
  std::map<ServerId, LogIndex> last_applied_;
  std::map<ServerId, std::map<std::pair<std::uint64_t, std::uint64_t>, CommandResult>> results_;
  std::uint64_t client_id_ = 1;
  std::uint64_t next_sequence_ = 1;

  /// The one in-flight read() of this synchronous client, resolved by the
  /// cluster's read listener against the serving replica's local store.
  struct PendingClientRead {
    ServerId server = kNoServer;
    raft::ReadId id = 0;
    bool done = false;
    bool rejected = false;
    CommandResult result;
  };
  std::optional<PendingClientRead> pending_read_;
  std::string pending_read_key_;
  /// Grants that arrived before read() recorded its pending ticket — a lease
  /// read resolves synchronously inside SimCluster::submit_read, while the
  /// ticket id is only known once that call returns. read() claims from here
  /// immediately after submitting.
  std::map<std::pair<ServerId, raft::ReadId>, raft::ReadGrant> unclaimed_grants_;
};

}  // namespace escape::kv
