// Replicated KV service over a simulated cluster.
//
// KvCluster glues a SimCluster to one KvStore per replica and provides a
// synchronous client: each operation is stamped with a session sequence,
// submitted through the current leader, retried across leader failovers, and
// returns the state-machine output once the entry commits. This is the
// level of API a downstream application would use.
#pragma once

#include <map>
#include <memory>
#include <optional>

#include "kv/kv_command.h"
#include "kv/kv_store.h"
#include "sim/sim_cluster.h"

namespace escape::kv {

class KvCluster {
 public:
  /// Wraps `cluster` (which must outlive this object). Installs the apply
  /// hook; nothing else may install one on the same cluster.
  explicit KvCluster(sim::SimCluster& cluster);

  /// Synchronous client operations; each drives the simulation until the
  /// command commits or `timeout` virtual time elapses. Leader failovers are
  /// retried transparently; duplicates are absorbed by session dedup.
  std::optional<CommandResult> put(const std::string& key, const std::string& value,
                                   Duration timeout = from_ms(60'000));
  std::optional<CommandResult> get(const std::string& key, Duration timeout = from_ms(60'000));
  std::optional<CommandResult> del(const std::string& key, Duration timeout = from_ms(60'000));
  std::optional<CommandResult> cas(const std::string& key, const std::string& expected,
                                   const std::string& value, Duration timeout = from_ms(60'000));

  /// The replica-local store of one member (inspection in tests/examples).
  const KvStore& store(ServerId id) const { return *stores_.at(id); }

  sim::SimCluster& cluster() { return cluster_; }

 private:
  std::optional<CommandResult> run(Command cmd, Duration timeout);

  sim::SimCluster& cluster_;
  std::map<ServerId, std::unique_ptr<KvStore>> stores_;
  std::map<ServerId, LogIndex> last_applied_;
  std::map<ServerId, std::map<std::pair<std::uint64_t, std::uint64_t>, CommandResult>> results_;
  std::uint64_t client_id_ = 1;
  std::uint64_t next_sequence_ = 1;
};

}  // namespace escape::kv
