#include "kv/kv_store.h"

#include "common/serde.h"

namespace escape::kv {

std::vector<std::uint8_t> KvStore::apply(const rpc::LogEntry& entry) {
  const auto cmd = decode_command(entry.command);
  if (!cmd) return encode_result({});  // malformed/no-op entries apply as no-ops
  return encode_result(execute(*cmd));
}

std::vector<std::uint8_t> KvStore::snapshot() const {
  // std::map iteration is key-ordered, so equal states serialize to equal
  // bytes on every replica.
  Encoder e;
  e.u32(static_cast<std::uint32_t>(data_.size()));
  for (const auto& [key, value] : data_) {
    e.str(key);
    e.str(value);
  }
  e.u32(static_cast<std::uint32_t>(sessions_.size()));
  for (const auto& [client, session] : sessions_) {
    e.u64(client);
    e.u64(session.last_sequence);
    e.boolean(session.last_result.ok);
    e.str(session.last_result.value);
  }
  return e.take();
}

bool KvStore::restore(const std::vector<std::uint8_t>& bytes) {
  std::map<std::string, std::string> data;
  std::map<std::uint64_t, Session> sessions;
  try {
    Decoder d(bytes);
    const auto n = d.u32();
    for (std::uint32_t i = 0; i < n; ++i) {
      auto key = d.str();
      data.emplace(std::move(key), d.str());
    }
    const auto s = d.u32();
    for (std::uint32_t i = 0; i < s; ++i) {
      const auto client = d.u64();
      Session session;
      session.last_sequence = d.u64();
      session.last_result.ok = d.boolean();
      session.last_result.value = d.str();
      sessions.emplace(client, std::move(session));
    }
    d.expect_end();
  } catch (const DecodeError&) {
    return false;  // malformed snapshot: state unchanged
  }
  data_ = std::move(data);
  sessions_ = std::move(sessions);
  return true;
}

CommandResult KvStore::execute(const Command& cmd) {
  if (cmd.client_id != 0) {
    auto& session = sessions_[cmd.client_id];
    if (cmd.sequence <= session.last_sequence) {
      return session.last_result;  // duplicate: return cached outcome
    }
    CommandResult result = do_execute(cmd);
    session.last_sequence = cmd.sequence;
    session.last_result = result;
    return result;
  }
  return do_execute(cmd);
}

CommandResult KvStore::do_execute(const Command& cmd) {
  CommandResult r;
  switch (cmd.op) {
    case Op::kPut: {
      auto it = data_.find(cmd.key);
      if (it != data_.end()) r.value = it->second;
      data_[cmd.key] = cmd.value;
      r.ok = true;
      break;
    }
    case Op::kGet: {
      auto it = data_.find(cmd.key);
      if (it != data_.end()) {
        r.ok = true;
        r.value = it->second;
      }
      break;
    }
    case Op::kDel: {
      r.ok = data_.erase(cmd.key) > 0;
      break;
    }
    case Op::kCas: {
      auto it = data_.find(cmd.key);
      const std::string current = it == data_.end() ? std::string{} : it->second;
      if (current == cmd.expected) {
        data_[cmd.key] = cmd.value;
        r.ok = true;
      } else {
        r.value = current;
      }
      break;
    }
    case Op::kNoop:
      r.ok = true;
      break;
  }
  return r;
}

std::optional<std::string> KvStore::peek(const std::string& key) const {
  auto it = data_.find(key);
  if (it == data_.end()) return std::nullopt;
  return it->second;
}

}  // namespace escape::kv
