// Application state machine interface.
//
// Committed log entries are applied in log order, exactly once per
// incarnation. Implementations must be deterministic: equal entry sequences
// produce equal states and outputs on every replica (State-Machine Safety
// turns that determinism into replica consistency).
#pragma once

#include <cstdint>
#include <vector>

#include "rpc/messages.h"

namespace escape::kv {

class StateMachine {
 public:
  virtual ~StateMachine() = default;

  /// Applies one committed entry and returns its output (returned to the
  /// submitting client by the leader).
  virtual std::vector<std::uint8_t> apply(const rpc::LogEntry& entry) = 0;
};

}  // namespace escape::kv
