// Application state machine interface.
//
// Committed log entries are applied in log order, exactly once per
// incarnation. Implementations must be deterministic: equal entry sequences
// produce equal states and outputs on every replica (State-Machine Safety
// turns that determinism into replica consistency).
//
// snapshot()/restore() close the loop for log compaction: snapshot()
// serializes the full state (including any session/dedup bookkeeping — the
// exactly-once guarantee must survive a restore), and restore() replaces the
// state wholesale with a previously serialized one. The pair must be
// lossless: restore(snapshot()) yields a machine indistinguishable from the
// original under every later apply().
#pragma once

#include <cstdint>
#include <vector>

#include "rpc/messages.h"

namespace escape::kv {

class StateMachine {
 public:
  virtual ~StateMachine() = default;

  /// Applies one committed entry and returns its output (returned to the
  /// submitting client by the leader).
  virtual std::vector<std::uint8_t> apply(const rpc::LogEntry& entry) = 0;

  /// Serializes the whole state for a snapshot. Deterministic: equal states
  /// produce equal bytes (snapshots of replicas at the same applied index
  /// are byte-identical).
  virtual std::vector<std::uint8_t> snapshot() const = 0;

  /// Replaces the state with one produced by snapshot(). Returns false (and
  /// leaves the machine unchanged) when the bytes are malformed.
  virtual bool restore(const std::vector<std::uint8_t>& bytes) = 0;
};

}  // namespace escape::kv
