#include "kv/kv_cluster.h"

#include <algorithm>

#include "common/logging.h"

namespace escape::kv {

KvCluster::KvCluster(sim::SimCluster& cluster) : cluster_(cluster) {
  for (ServerId id : cluster_.members()) stores_[id] = std::make_unique<KvStore>();
  cluster_.set_apply_hook([this](ServerId id, const rpc::LogEntry& entry) {
    // A replayed index means the node restarted and is rebuilding its state
    // machine from the log; start from a fresh store.
    auto& store = stores_[id];
    auto& last = last_applied_[id];
    if (entry.index <= last) store = std::make_unique<KvStore>();
    last = entry.index;
    const auto result_bytes = store->apply(entry);
    if (const auto cmd = decode_command(entry.command)) {
      if (const auto result = decode_result(result_bytes)) {
        results_[id][{cmd->client_id, cmd->sequence}] = *result;
      }
    }
  });
  // Compaction glue: snapshots serialize the replica's KvStore (sessions
  // included, so exactly-once survives), and a restore — whether from the
  // leader's InstallSnapshot or a restart from the local snapshot store —
  // replaces the replica's store wholesale and fast-forwards its applied
  // cursor to the snapshot boundary.
  cluster_.set_snapshot_state_hook(
      [this](ServerId id) { return stores_.at(id)->snapshot(); });
  cluster_.set_snapshot_restore_hook(
      [this](ServerId id, const storage::Snapshot& snap) {
        auto store = std::make_unique<KvStore>();
        if (!snap.state.empty() && !store->restore(snap.state)) {
          LOG_WARN("S" << id << ": malformed snapshot state; starting empty");
        }
        stores_[id] = std::move(store);
        last_applied_[id] = snap.last_included_index;
      });
}

std::optional<CommandResult> KvCluster::put(const std::string& key, const std::string& value,
                                            Duration timeout) {
  Command c;
  c.op = Op::kPut;
  c.key = key;
  c.value = value;
  return run(std::move(c), timeout);
}

std::optional<CommandResult> KvCluster::get(const std::string& key, Duration timeout) {
  Command c;
  c.op = Op::kGet;
  c.key = key;
  return run(std::move(c), timeout);
}

std::optional<CommandResult> KvCluster::del(const std::string& key, Duration timeout) {
  Command c;
  c.op = Op::kDel;
  c.key = key;
  return run(std::move(c), timeout);
}

std::optional<CommandResult> KvCluster::cas(const std::string& key, const std::string& expected,
                                            const std::string& value, Duration timeout) {
  Command c;
  c.op = Op::kCas;
  c.key = key;
  c.expected = expected;
  c.value = value;
  return run(std::move(c), timeout);
}

std::optional<CommandResult> KvCluster::run(Command cmd, Duration timeout) {
  cmd.client_id = client_id_;
  cmd.sequence = next_sequence_++;
  const auto session_key = std::make_pair(cmd.client_id, cmd.sequence);
  const auto bytes = encode_command(cmd);
  const TimePoint deadline = cluster_.loop().now() + timeout;

  auto find_result = [&]() -> std::optional<CommandResult> {
    // Applied on any replica implies committed.
    for (const auto& [id, by_session] : results_) {
      const auto it = by_session.find(session_key);
      if (it != by_session.end()) return it->second;
    }
    return std::nullopt;
  };

  // Submit to the current leader; when leadership moves, resubmit through
  // the new leader (the original entry may have been truncated). Session
  // dedup in KvStore makes resubmission exactly-once.
  ServerId submitted_to = kNoServer;
  while (cluster_.loop().now() < deadline) {
    if (auto r = find_result()) return r;
    const ServerId leader = cluster_.leader();
    if (leader != kNoServer && leader != submitted_to) {
      if (cluster_.node(leader).submit(bytes, cluster_.loop().now())) {
        submitted_to = leader;
        cluster_.pump(leader);
      }
    }
    cluster_.loop().run_until(std::min(deadline, cluster_.loop().now() + from_ms(100)));
  }
  return find_result();
}

}  // namespace escape::kv
