#include "kv/kv_cluster.h"

#include <algorithm>

#include "common/logging.h"

namespace escape::kv {

KvCluster::KvCluster(sim::SimCluster& cluster) : cluster_(cluster) {
  for (ServerId id : cluster_.members()) stores_[id] = std::make_unique<KvStore>();
  cluster_.set_apply_hook([this](ServerId id, const rpc::LogEntry& entry) {
    // A replayed index means the node restarted and is rebuilding its state
    // machine from the log; start from a fresh store.
    auto& store = stores_[id];
    auto& last = last_applied_[id];
    if (entry.index <= last) store = std::make_unique<KvStore>();
    last = entry.index;
    const auto result_bytes = store->apply(entry);
    if (const auto cmd = decode_command(entry.command)) {
      if (const auto result = decode_result(result_bytes)) {
        results_[id][{cmd->client_id, cmd->sequence}] = *result;
      }
    }
  });
  // Compaction glue: snapshots serialize the replica's KvStore (sessions
  // included, so exactly-once survives), and a restore — whether from the
  // leader's InstallSnapshot or a restart from the local snapshot store —
  // replaces the replica's store wholesale and fast-forwards its applied
  // cursor to the snapshot boundary.
  cluster_.set_snapshot_state_hook(
      [this](ServerId id) { return stores_.at(id)->snapshot(); });
  cluster_.set_snapshot_restore_hook(
      [this](ServerId id, const storage::Snapshot& snap) {
        auto store = std::make_unique<KvStore>();
        if (!snap.state.empty() && !store->restore(snap.state)) {
          LOG_WARN("S" << id << ": malformed snapshot state; starting empty");
        }
        stores_[id] = std::move(store);
        last_applied_[id] = snap.last_included_index;
      });
  // Read fast path: grants arrive after the same pump applied every newly
  // committed entry, so peeking the serving replica's store here observes a
  // state at least as fresh as the grant's read index.
  cluster_.add_read_listener([this](ServerId id, const raft::ReadGrant& grant) {
    if (!pending_read_ || pending_read_->server != id || pending_read_->id != grant.id) {
      // Not (yet) ours: either another issuer's read (a scenario's
      // ClientRead probe) or our own grant racing the ticket record — a
      // lease grant fires inside submit_read, before read() learns its id.
      // Stash it; read() claims right after submitting. Bounded by evicting
      // the oldest — never by dropping the new grant, which could be the
      // one read() is about to claim (a dropped claim would stall the
      // client for its whole timeout).
      while (unclaimed_grants_.size() >= 256) {
        unclaimed_grants_.erase(unclaimed_grants_.begin());
      }
      unclaimed_grants_[{id, grant.id}] = grant;
      return;
    }
    resolve_grant(grant);
  });
}

std::optional<CommandResult> KvCluster::put(const std::string& key, const std::string& value,
                                            Duration timeout) {
  Command c;
  c.op = Op::kPut;
  c.key = key;
  c.value = value;
  return run(std::move(c), timeout);
}

std::optional<CommandResult> KvCluster::get(const std::string& key, Duration timeout) {
  Command c;
  c.op = Op::kGet;
  c.key = key;
  return run(std::move(c), timeout);
}

std::optional<CommandResult> KvCluster::del(const std::string& key, Duration timeout) {
  Command c;
  c.op = Op::kDel;
  c.key = key;
  return run(std::move(c), timeout);
}

std::optional<CommandResult> KvCluster::cas(const std::string& key, const std::string& expected,
                                            const std::string& value, Duration timeout) {
  Command c;
  c.op = Op::kCas;
  c.key = key;
  c.expected = expected;
  c.value = value;
  return run(std::move(c), timeout);
}

void KvCluster::resolve_grant(const raft::ReadGrant& grant) {
  if (!grant.ok) {
    pending_read_->rejected = true;
    return;
  }
  const auto value = stores_.at(pending_read_->server)->peek(pending_read_key_);
  pending_read_->result.ok = value.has_value();
  pending_read_->result.value = value.value_or("");
  pending_read_->done = true;
}

void KvCluster::retire_pending_read() {
  if (!pending_read_) return;
  // Drop only the retired ticket's stash entry, never the whole stash: the
  // listener may stash grants for *other* issuers' probes (scenario
  // ClientReads) at any time, and — the race this is keyed against — the
  // next ticket's lease grant lands in the stash *inside* submit_read(),
  // between the reset of the old ticket and the record of the new one. A
  // wholesale clear anywhere in that window would discard the very grant the
  // claim path is about to look up, stalling the client for its full
  // timeout.
  unclaimed_grants_.erase({pending_read_->server, pending_read_->id});
  pending_read_.reset();
}

std::optional<CommandResult> KvCluster::read(const std::string& key, Duration timeout) {
  const TimePoint deadline = cluster_.loop().now() + timeout;
  pending_read_key_ = key;
  retire_pending_read();
  while (cluster_.loop().now() < deadline) {
    if (!pending_read_ || pending_read_->rejected) {
      // (Re)issue through whatever leads now; a rejection means the previous
      // leadership ended before confirming the batch. Retire the rejected
      // ticket first so a late grant for it can't linger in the stash.
      retire_pending_read();
      const ServerId leader = cluster_.leader();
      if (leader != kNoServer) {
        if (const auto read = cluster_.submit_read(leader)) {
          pending_read_ = PendingClientRead{leader, *read, false, false, {}};
          // A lease read already resolved inside submit_read; claim it. The
          // peek happens in the same virtual instant as the grant (no loop
          // turn in between), so it observes exactly the granted state.
          const auto it = unclaimed_grants_.find({leader, *read});
          if (it != unclaimed_grants_.end()) {
            const raft::ReadGrant grant = it->second;
            unclaimed_grants_.erase(it);
            resolve_grant(grant);
          }
        }
      }
    }
    if (pending_read_ && pending_read_->done) {
      auto result = pending_read_->result;
      retire_pending_read();
      return result;
    }
    // A crashed leader never answers; cap the wait so the retry loop can
    // re-route instead of sleeping out the whole deadline.
    cluster_.loop().run_until(std::min(deadline, cluster_.loop().now() + from_ms(100)));
    if (pending_read_ && pending_read_->server != cluster_.leader() && !pending_read_->done) {
      pending_read_->rejected = true;  // leadership moved; re-issue
    }
  }
  std::optional<CommandResult> result;
  if (pending_read_ && pending_read_->done) result = pending_read_->result;
  retire_pending_read();
  return result;
}

std::optional<CommandResult> KvCluster::run(Command cmd, Duration timeout) {
  cmd.client_id = client_id_;
  cmd.sequence = next_sequence_++;
  const auto session_key = std::make_pair(cmd.client_id, cmd.sequence);
  const auto bytes = encode_command(cmd);
  const TimePoint deadline = cluster_.loop().now() + timeout;

  auto find_result = [&]() -> std::optional<CommandResult> {
    // Applied on any replica implies committed.
    for (const auto& [id, by_session] : results_) {
      const auto it = by_session.find(session_key);
      if (it != by_session.end()) return it->second;
    }
    return std::nullopt;
  };

  // Submit to the current leader; when leadership moves, resubmit through
  // the new leader (the original entry may have been truncated). Session
  // dedup in KvStore makes resubmission exactly-once.
  ServerId submitted_to = kNoServer;
  while (cluster_.loop().now() < deadline) {
    if (auto r = find_result()) return r;
    const ServerId leader = cluster_.leader();
    if (leader != kNoServer && leader != submitted_to) {
      if (cluster_.node(leader).submit(bytes, cluster_.loop().now())) {
        submitted_to = leader;
        cluster_.pump(leader);
      }
    }
    cluster_.loop().run_until(std::min(deadline, cluster_.loop().now() + from_ms(100)));
  }
  return find_result();
}

}  // namespace escape::kv
