#include "kv/kv_command.h"

#include "common/serde.h"

namespace escape::kv {

std::vector<std::uint8_t> encode_command(const Command& cmd) {
  Encoder e;
  e.u64(cmd.client_id);
  e.u64(cmd.sequence);
  e.u8(static_cast<std::uint8_t>(cmd.op));
  e.str(cmd.key);
  e.str(cmd.value);
  e.str(cmd.expected);
  return e.take();
}

std::optional<Command> decode_command(const std::vector<std::uint8_t>& bytes) {
  try {
    Decoder d(bytes);
    Command c;
    c.client_id = d.u64();
    c.sequence = d.u64();
    const auto op = d.u8();
    if (op < static_cast<std::uint8_t>(Op::kPut) || op > static_cast<std::uint8_t>(Op::kNoop)) {
      return std::nullopt;
    }
    c.op = static_cast<Op>(op);
    c.key = d.str();
    c.value = d.str();
    c.expected = d.str();
    d.expect_end();
    return c;
  } catch (const DecodeError&) {
    return std::nullopt;
  }
}

std::vector<std::uint8_t> encode_result(const CommandResult& result) {
  Encoder e;
  e.boolean(result.ok);
  e.str(result.value);
  return e.take();
}

std::optional<CommandResult> decode_result(const std::vector<std::uint8_t>& bytes) {
  try {
    Decoder d(bytes);
    CommandResult r;
    r.ok = d.boolean();
    r.value = d.str();
    d.expect_end();
    return r;
  } catch (const DecodeError&) {
    return std::nullopt;
  }
}

}  // namespace escape::kv
