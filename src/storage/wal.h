// Write-ahead log for replicated entries.
//
// The consensus core emits log mutations (append / truncate-suffix /
// compact-prefix) through the Wal interface before acting on them.
// Implementations:
//   * NullWal    — discards everything (pure in-memory simulation runs).
//   * MemoryWal  — replays into a vector; lets tests model a disk that
//                  survives a simulated crash.
//   * FileWal    — record-oriented file with CRC-protected records and
//                  torn-write recovery: a partially written final record is
//                  detected and discarded on open, everything before it is
//                  replayed.
//
// Compaction: compact_to(upto) records that every entry with index <= upto
// is now covered by a snapshot (in the paired SnapshotStore) and need not be
// replayed. Recovered entries therefore start at upto+1; the snapshot holds
// the state that those dropped entries produced.
//
// FileWal record layout: [kind u8][len u32][crc u32][payload len bytes].
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "rpc/messages.h"

namespace escape::storage {

/// Durable sink for log mutations.
class Wal {
 public:
  virtual ~Wal() = default;

  /// Records that `entry` was appended at its index.
  virtual void append(const rpc::LogEntry& entry) = 0;

  /// Records a contiguous run of appends as one group. Implementations may
  /// amortize the whole run into a single I/O (group commit); the default
  /// forwards to append() per entry. Durability is still only guaranteed
  /// after sync() — a crash mid-group may leave a torn tail, which recovery
  /// resolves to the longest valid prefix of the group.
  virtual void append_batch(const std::vector<rpc::LogEntry>& entries) {
    for (const auto& e : entries) append(e);
  }

  /// Records that all entries with index >= `from` were discarded.
  virtual void truncate_from(LogIndex from) = 0;

  /// Records that entries with index <= `upto` were absorbed into a snapshot
  /// and will never be replayed. Also rebases the WAL so a later append at
  /// upto+1 is contiguous. Default: no-op (volatile implementations).
  virtual void compact_to(LogIndex upto) { (void)upto; }

  /// Blocks until all prior records are durable (no-op for volatile impls).
  virtual void sync() = 0;

  /// Entry sequence a restart would replay (those past the last compaction
  /// record). Drivers feed this into raft::Bootstrap::log; volatile
  /// implementations that keep nothing return empty.
  virtual std::vector<rpc::LogEntry> recovered() const { return {}; }
};

/// Discards all records.
class NullWal final : public Wal {
 public:
  void append(const rpc::LogEntry&) override {}
  void truncate_from(LogIndex) override {}
  void sync() override {}
};

/// Keeps the materialized entry sequence in memory.
class MemoryWal final : public Wal {
 public:
  void append(const rpc::LogEntry& entry) override;
  void truncate_from(LogIndex from) override;
  void compact_to(LogIndex upto) override;
  void sync() override {}
  std::vector<rpc::LogEntry> recovered() const override { return entries_; }

  /// Entry sequence as it would be recovered after a crash; starts at
  /// base()+1 once compacted.
  const std::vector<rpc::LogEntry>& entries() const { return entries_; }

  /// Highest compacted index (0 when never compacted). The paired
  /// SnapshotStore covers everything up to and including it.
  LogIndex base() const { return base_; }

 private:
  LogIndex base_ = 0;
  std::vector<rpc::LogEntry> entries_;
};

/// File-backed WAL.
class FileWal final : public Wal {
 public:
  /// Opens (creating if needed) the WAL at `path` and replays existing
  /// records. Recovered entries are available via recovered_entries() until
  /// the first mutation. A trailing torn record is truncated away.
  explicit FileWal(std::string path, bool sync_every_record = false);
  ~FileWal() override;

  FileWal(const FileWal&) = delete;
  FileWal& operator=(const FileWal&) = delete;

  void append(const rpc::LogEntry& entry) override;
  void append_batch(const std::vector<rpc::LogEntry>& entries) override;
  void truncate_from(LogIndex from) override;
  void compact_to(LogIndex upto) override;
  void sync() override;
  std::vector<rpc::LogEntry> recovered() const override { return recovered_; }

  /// Entries reconstructed from the file at open time (those past the last
  /// compaction record; see recovered_base()).
  const std::vector<rpc::LogEntry>& recovered_entries() const { return recovered_; }

  /// Highest compacted index recorded in the file (0 when never compacted);
  /// recovered_entries() starts at recovered_base()+1.
  LogIndex recovered_base() const { return base_; }

 private:
  void write_record(std::uint8_t kind, const std::vector<std::uint8_t>& payload);
  void write_buffer(const std::vector<std::uint8_t>& buf);

  std::string path_;
  bool sync_every_record_;
  int fd_ = -1;
  LogIndex base_ = 0;
  std::vector<rpc::LogEntry> recovered_;
};

}  // namespace escape::storage
