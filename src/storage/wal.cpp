#include "storage/wal.h"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <fcntl.h>
#include <unistd.h>

#include "common/logging.h"
#include "common/serde.h"

namespace escape::storage {
namespace {

constexpr std::uint8_t kRecordAppend = 1;
constexpr std::uint8_t kRecordTruncate = 2;
constexpr std::uint8_t kRecordCompact = 3;

std::vector<std::uint8_t> encode_entry_payload(const rpc::LogEntry& e) {
  Encoder enc;
  enc.i64(e.term);
  enc.i64(e.index);
  enc.u8(static_cast<std::uint8_t>(e.kind));
  enc.bytes(e.command);
  return enc.take();
}

rpc::LogEntry decode_entry_payload(const std::vector<std::uint8_t>& p) {
  Decoder d(p);
  rpc::LogEntry e;
  e.term = d.i64();
  e.index = d.i64();
  const auto kind = d.u8();
  if (kind > static_cast<std::uint8_t>(rpc::EntryKind::kConfChange)) {
    throw DecodeError("invalid WAL entry kind");
  }
  e.kind = static_cast<rpc::EntryKind>(kind);
  e.command = d.bytes();
  d.expect_end();
  return e;
}

void throw_errno(const std::string& op, const std::string& path) {
  throw std::runtime_error(op + " failed for " + path + ": " + std::strerror(errno));
}

}  // namespace

void MemoryWal::append(const rpc::LogEntry& entry) {
  if (entry.index != base_ + static_cast<LogIndex>(entries_.size()) + 1) {
    throw std::logic_error("MemoryWal::append: non-contiguous index");
  }
  entries_.push_back(entry);
}

void MemoryWal::truncate_from(LogIndex from) {
  if (from <= base_) {
    throw std::logic_error("MemoryWal::truncate_from: index already compacted");
  }
  if (from - base_ <= static_cast<LogIndex>(entries_.size())) {
    entries_.resize(static_cast<std::size_t>(from - base_ - 1));
  }
}

void MemoryWal::compact_to(LogIndex upto) {
  if (upto <= base_) return;
  const LogIndex tail = base_ + static_cast<LogIndex>(entries_.size());
  if (upto >= tail) {
    entries_.clear();
  } else {
    entries_.erase(entries_.begin(),
                   entries_.begin() + static_cast<std::ptrdiff_t>(upto - base_));
  }
  base_ = upto;
}

FileWal::FileWal(std::string path, bool sync_every_record)
    : path_(std::move(path)), sync_every_record_(sync_every_record) {
  // Replay pass: read the whole file, apply records, stop at the first
  // corrupt/partial record and remember the valid byte length.
  std::vector<std::uint8_t> data;
  {
    const int rfd = ::open(path_.c_str(), O_RDONLY);
    if (rfd >= 0) {
      std::uint8_t chunk[1 << 16];
      ssize_t n;
      while ((n = ::read(rfd, chunk, sizeof(chunk))) > 0) data.insert(data.end(), chunk, chunk + n);
      ::close(rfd);
      if (n < 0) throw_errno("read", path_);
    } else if (errno != ENOENT) {
      throw_errno("open", path_);
    }
  }

  std::size_t valid = 0;
  std::size_t pos = 0;
  while (pos + 9 <= data.size()) {  // kind(1) + len(4) + crc(4)
    const std::uint8_t kind = data[pos];
    Decoder hd(data.data() + pos + 1, 8);
    const auto len = hd.u32();
    const auto crc = hd.u32();
    if (pos + 9 + len > data.size()) break;  // torn tail
    std::vector<std::uint8_t> payload(data.begin() + static_cast<std::ptrdiff_t>(pos + 9),
                                      data.begin() + static_cast<std::ptrdiff_t>(pos + 9 + len));
    if (crc32(payload) != crc) break;  // corrupt tail
    try {
      const auto tail = [this] { return base_ + static_cast<LogIndex>(recovered_.size()); };
      if (kind == kRecordAppend) {
        auto e = decode_entry_payload(payload);
        if (e.index <= base_) break;  // append below the compaction point: stop
        // An append after an implicit divergence acts as truncate+append,
        // mirroring how the consensus core issues records.
        if (e.index <= tail()) {
          recovered_.resize(static_cast<std::size_t>(e.index - base_ - 1));
        }
        if (e.index != tail() + 1) break;  // hole: stop
        recovered_.push_back(std::move(e));
      } else if (kind == kRecordTruncate) {
        Decoder d(payload);
        const auto from = d.i64();
        d.expect_end();
        if (from <= base_) break;  // truncating the compacted prefix: stop
        if (from <= tail()) {
          recovered_.resize(static_cast<std::size_t>(from - base_ - 1));
        }
      } else if (kind == kRecordCompact) {
        Decoder d(payload);
        const auto upto = d.i64();
        d.expect_end();
        if (upto > base_) {
          if (upto >= tail()) {
            recovered_.clear();
          } else {
            recovered_.erase(recovered_.begin(),
                             recovered_.begin() + static_cast<std::ptrdiff_t>(upto - base_));
          }
          base_ = upto;
        }
      } else {
        break;  // unknown record kind: stop replay conservatively
      }
    } catch (const DecodeError&) {
      break;
    }
    pos += 9 + len;
    valid = pos;
  }

  if (valid < data.size()) {
    LOG_WARN("WAL " << path_ << ": dropping " << (data.size() - valid)
                    << " trailing bytes (torn or corrupt record)");
    if (::truncate(path_.c_str(), static_cast<off_t>(valid)) != 0 && errno != ENOENT) {
      throw_errno("truncate", path_);
    }
  }

  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) throw_errno("open", path_);
}

FileWal::~FileWal() {
  if (fd_ >= 0) ::close(fd_);
}

namespace {

/// Appends one framed record ([kind][len][crc][payload]) onto `buf`.
void frame_record(std::vector<std::uint8_t>& buf, std::uint8_t kind,
                  const std::vector<std::uint8_t>& payload) {
  Encoder e;
  e.u8(kind);
  e.u32(static_cast<std::uint32_t>(payload.size()));
  e.u32(crc32(payload));
  auto header = e.take();
  buf.insert(buf.end(), header.begin(), header.end());
  buf.insert(buf.end(), payload.begin(), payload.end());
}

}  // namespace

void FileWal::write_buffer(const std::vector<std::uint8_t>& buf) {
  std::size_t off = 0;
  while (off < buf.size()) {
    const ssize_t n = ::write(fd_, buf.data() + off, buf.size() - off);
    if (n < 0) throw_errno("write", path_);
    off += static_cast<std::size_t>(n);
  }
  if (sync_every_record_) sync();
}

void FileWal::write_record(std::uint8_t kind, const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> buf;
  frame_record(buf, kind, payload);
  write_buffer(buf);
}

void FileWal::append(const rpc::LogEntry& entry) {
  write_record(kRecordAppend, encode_entry_payload(entry));
}

void FileWal::append_batch(const std::vector<rpc::LogEntry>& entries) {
  // Group commit: frame the whole run into one buffer and issue a single
  // write. Recovery handles a torn tail inside the group the same as a torn
  // single record — the longest valid record prefix survives.
  std::vector<std::uint8_t> buf;
  for (const auto& e : entries) frame_record(buf, kRecordAppend, encode_entry_payload(e));
  write_buffer(buf);
}

void FileWal::truncate_from(LogIndex from) {
  Encoder e;
  e.i64(from);
  write_record(kRecordTruncate, e.take());
}

void FileWal::compact_to(LogIndex upto) {
  if (upto <= base_) return;
  Encoder e;
  e.i64(upto);
  write_record(kRecordCompact, e.take());
  base_ = upto;
}

void FileWal::sync() {
  if (::fsync(fd_) != 0) throw_errno("fsync", path_);
}

}  // namespace escape::storage
