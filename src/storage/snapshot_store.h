// Durable snapshot storage.
//
// A Snapshot captures everything a server needs to discard its log prefix:
// the application state machine's serialized state, the (last included
// index, last included term) boundary the Raft consistency check anchors on,
// and — crucial for ESCAPE — the configuration π(P, k) adopted when the
// snapshot was taken. Carrying the configuration through snapshots is what
// keeps the confClock monotone across a restore: a server that restarts from
// a snapshot (or installs one from the leader) resumes at a configuration
// generation at least as fresh as the state it holds, so Lemma 3/4 reasoning
// survives compaction.
//
// FileSnapshotStore writes WAL-style: the whole snapshot goes to
// `<path>.tmp`, is fsynced, then atomically renamed over `<path>` — a crash
// mid-write leaves the previous snapshot intact, and a CRC over the body
// rejects torn or corrupted files at load time.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "rpc/messages.h"

namespace escape::storage {

/// One complete snapshot of a server's applied state.
struct Snapshot {
  LogIndex last_included_index = 0;  ///< last log index the state covers
  Term last_included_term = 0;       ///< its term (consistency-check anchor)
  rpc::Configuration config;         ///< ESCAPE config adopted at snapshot time
  std::vector<std::uint8_t> state;   ///< serialized application state machine

  bool operator==(const Snapshot&) const = default;
};

/// Serializes a snapshot into a CRC-framed buffer.
std::vector<std::uint8_t> encode_snapshot(const Snapshot& snapshot);

/// Parses a buffer produced by encode_snapshot; nullopt when malformed or
/// CRC-corrupt (a damaged snapshot is treated as absent, never installed).
std::optional<Snapshot> decode_snapshot(const std::vector<std::uint8_t>& buf);

/// Abstract durable store holding at most one snapshot (the newest wins).
class SnapshotStore {
 public:
  virtual ~SnapshotStore() = default;

  /// Durably replaces the stored snapshot (atomic: a crash mid-save keeps
  /// the previous snapshot for file-backed implementations).
  virtual void save(const Snapshot& snapshot) = 0;

  /// Loads the last saved snapshot; nullopt when none exists (or the stored
  /// one is corrupt).
  virtual std::optional<Snapshot> load() = 0;
};

/// Volatile store for simulation and tests; survives a simulated crash the
/// same way MemoryStateStore does (the host keeps the store while the node
/// object is destroyed).
class MemorySnapshotStore final : public SnapshotStore {
 public:
  void save(const Snapshot& snapshot) override {
    snapshot_ = snapshot;
    ++save_count_;
  }
  std::optional<Snapshot> load() override { return snapshot_; }

  /// Number of save() calls (tests assert when snapshots must be taken).
  std::size_t save_count() const { return save_count_; }

 private:
  std::optional<Snapshot> snapshot_;
  std::size_t save_count_ = 0;
};

/// Crash-safe file-backed store (tmp + fsync + rename).
class FileSnapshotStore final : public SnapshotStore {
 public:
  /// `path` is the snapshot file; writes go to `path.tmp` then rename.
  explicit FileSnapshotStore(std::string path);

  void save(const Snapshot& snapshot) override;
  std::optional<Snapshot> load() override;

 private:
  std::string path_;
};

}  // namespace escape::storage
