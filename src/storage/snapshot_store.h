// Durable snapshot storage.
//
// The Snapshot value type itself lives with the deterministic core in
// raft/snapshot.h (the core produces and consumes snapshots purely in
// memory); this header holds everything durable about it — the CRC-framed
// serialization and the stores the drivers persist through.
//
// FileSnapshotStore writes WAL-style: the whole snapshot goes to
// `<path>.tmp`, is fsynced, then atomically renamed over `<path>` — a crash
// mid-write leaves the previous snapshot intact, and a CRC over the body
// rejects torn or corrupted files at load time.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "raft/snapshot.h"
#include "rpc/messages.h"

namespace escape::storage {

using Snapshot = ::escape::raft::Snapshot;

/// Serializes a snapshot into a CRC-framed buffer.
std::vector<std::uint8_t> encode_snapshot(const Snapshot& snapshot);

/// Parses a buffer produced by encode_snapshot; nullopt when malformed or
/// CRC-corrupt (a damaged snapshot is treated as absent, never installed).
std::optional<Snapshot> decode_snapshot(const std::vector<std::uint8_t>& buf);

/// Abstract durable store holding at most one snapshot (the newest wins).
class SnapshotStore {
 public:
  virtual ~SnapshotStore() = default;

  /// Durably replaces the stored snapshot (atomic: a crash mid-save keeps
  /// the previous snapshot for file-backed implementations).
  virtual void save(const Snapshot& snapshot) = 0;

  /// Loads the last saved snapshot; nullopt when none exists (or the stored
  /// one is corrupt).
  virtual std::optional<Snapshot> load() = 0;
};

/// Volatile store for simulation and tests; survives a simulated crash the
/// same way MemoryStateStore does (the host keeps the store while the node
/// object is destroyed).
class MemorySnapshotStore final : public SnapshotStore {
 public:
  void save(const Snapshot& snapshot) override {
    snapshot_ = snapshot;
    ++save_count_;
  }
  std::optional<Snapshot> load() override { return snapshot_; }

  /// Number of save() calls (tests assert when snapshots must be taken).
  std::size_t save_count() const { return save_count_; }

 private:
  std::optional<Snapshot> snapshot_;
  std::size_t save_count_ = 0;
};

/// Crash-safe file-backed store (tmp + fsync + rename).
class FileSnapshotStore final : public SnapshotStore {
 public:
  /// `path` is the snapshot file; writes go to `path.tmp` then rename.
  explicit FileSnapshotStore(std::string path);

  void save(const Snapshot& snapshot) override;
  std::optional<Snapshot> load() override;

 private:
  std::string path_;
};

}  // namespace escape::storage
