// Durable per-server state.
//
// Raft requires current_term and voted_for to survive restarts; ESCAPE
// additionally persists the server's adopted configuration π(P, k) — the
// paper's Figure 5b depends on a recovering server restoring its (possibly
// stale) priority and configuration clock.
//
// FileStateStore writes atomically (tmp file + fsync + rename) with a CRC so
// a crash mid-write leaves the previous state intact.
#pragma once

#include <optional>
#include <string>

#include "raft/ready.h"
#include "rpc/messages.h"

namespace escape::storage {

/// State that must be durable before a server answers an RPC. The value type
/// is raft::HardState — the deterministic core emits it in Ready batches and
/// never touches the store itself; drivers persist it here.
using PersistentState = ::escape::raft::HardState;

/// Abstract durable store for PersistentState.
class StateStore {
 public:
  virtual ~StateStore() = default;

  /// Durably replaces the stored state. Must not return before the state
  /// would survive a crash (for file-backed implementations).
  virtual void save(const PersistentState& state) = 0;

  /// Loads the last saved state; nullopt when nothing was ever saved.
  virtual std::optional<PersistentState> load() = 0;
};

/// Volatile store for simulation and tests. A simulated crash keeps the
/// MemoryStateStore alive while the node object is destroyed, modelling a
/// machine whose disk survives the process.
class MemoryStateStore final : public StateStore {
 public:
  void save(const PersistentState& state) override {
    state_ = state;
    ++save_count_;
  }
  std::optional<PersistentState> load() override { return state_; }

  /// Number of save() calls (tests assert persistence happens when required).
  std::size_t save_count() const { return save_count_; }

 private:
  std::optional<PersistentState> state_;
  std::size_t save_count_ = 0;
};

/// Crash-safe file-backed store.
class FileStateStore final : public StateStore {
 public:
  /// `path` is the state file; writes go to `path.tmp` then rename.
  explicit FileStateStore(std::string path);

  void save(const PersistentState& state) override;
  std::optional<PersistentState> load() override;

 private:
  std::string path_;
};

}  // namespace escape::storage
