// In-memory replicated log.
//
// Indexing is 1-based as in the Raft paper; index 0 is the empty-log
// sentinel with term 0. The container supports prefix compaction (keeping a
// base offset) so a snapshotting layer can truncate the head without
// renumbering, though the consensus core in this repo always replays full
// logs (the paper's experiments never compact).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "rpc/messages.h"

namespace escape::storage {

/// Append-only (plus suffix truncation) sequence of log entries.
class Log {
 public:
  Log() = default;

  /// Index of the last entry; 0 when empty.
  LogIndex last_index() const { return base_ + static_cast<LogIndex>(entries_.size()); }

  /// Term of the last entry; 0 when empty.
  Term last_term() const;

  /// First index still present (after compaction); base()+1. For an
  /// uncompacted log this is 1.
  LogIndex first_index() const { return base_ + 1; }

  /// Term at `index`. Returns 0 for index 0; nullopt when out of range
  /// (compacted away or beyond the tail).
  std::optional<Term> term_at(LogIndex index) const;

  /// Entry at `index`, or nullopt when out of range.
  const rpc::LogEntry* entry_at(LogIndex index) const;

  /// Appends one entry; its index must be last_index()+1.
  void append(rpc::LogEntry entry);

  /// Removes all entries with index >= `from`. No-op when from > last_index.
  void truncate_from(LogIndex from);

  /// Drops entries with index <= `upto` (snapshot compaction).
  void compact_prefix(LogIndex upto);

  /// Copies entries [from, from+max_count) clamped to the tail.
  std::vector<rpc::LogEntry> slice(LogIndex from, std::size_t max_count) const;

  /// True when a (index, term) pair matches this log (Raft consistency
  /// check). Index 0 always matches.
  bool matches(LogIndex index, Term term) const;

  /// True when a candidate's (last_log_index, last_log_term) is at least as
  /// up-to-date as this log (Raft §5.4.1 election restriction).
  bool candidate_is_up_to_date(LogIndex cand_last_index, Term cand_last_term) const;

  /// First index of term `t` within the stored suffix, if any; used to build
  /// conflict hints for fast follower catch-up.
  std::optional<LogIndex> first_index_of_term(Term t) const;

  /// Last index of term `t` within the stored suffix, if any; used by the
  /// leader to resolve follower conflict hints.
  std::optional<LogIndex> last_index_of_term(Term t) const;

  /// Number of entries currently stored (excludes compacted prefix).
  std::size_t size() const { return entries_.size(); }

 private:
  LogIndex base_ = 0;  ///< highest compacted index; entries_[0] is base_+1
  std::vector<rpc::LogEntry> entries_;
};

}  // namespace escape::storage
