// Compatibility shim: the in-memory replicated log is a pure value type with
// no I/O, so it lives with the deterministic consensus core in raft/log.h
// (the core library must not depend on the storage module). Storage-layer
// code and tests keep addressing it as storage::Log.
#pragma once

#include "raft/log.h"

namespace escape::storage {

using Log = ::escape::raft::Log;

}  // namespace escape::storage
