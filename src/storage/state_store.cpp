#include "storage/state_store.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

#include "common/logging.h"
#include "common/serde.h"

namespace escape::storage {
namespace {

std::vector<std::uint8_t> encode_state(const PersistentState& s) {
  Encoder e;
  e.i64(s.current_term);
  e.u32(s.voted_for);
  e.i64(s.config.timer_period);
  e.i32(s.config.priority);
  e.i64(s.config.conf_clock);
  auto body = e.take();
  Encoder framed;
  framed.u32(crc32(body));
  framed.bytes(body);
  return framed.take();
}

std::optional<PersistentState> decode_state(const std::vector<std::uint8_t>& buf) {
  try {
    Decoder d(buf);
    const auto crc = d.u32();
    const auto body = d.bytes();
    d.expect_end();
    if (crc32(body) != crc) return std::nullopt;
    Decoder bd(body);
    PersistentState s;
    s.current_term = bd.i64();
    s.voted_for = bd.u32();
    s.config.timer_period = bd.i64();
    s.config.priority = bd.i32();
    s.config.conf_clock = bd.i64();
    bd.expect_end();
    return s;
  } catch (const DecodeError&) {
    return std::nullopt;
  }
}

void throw_errno(const std::string& op, const std::string& path) {
  throw std::runtime_error(op + " failed for " + path + ": " + std::strerror(errno));
}

}  // namespace

FileStateStore::FileStateStore(std::string path) : path_(std::move(path)) {}

void FileStateStore::save(const PersistentState& state) {
  const auto buf = encode_state(state);
  const std::string tmp = path_ + ".tmp";

  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw_errno("open", tmp);
  std::size_t off = 0;
  while (off < buf.size()) {
    const ssize_t n = ::write(fd, buf.data() + off, buf.size() - off);
    if (n < 0) {
      ::close(fd);
      throw_errno("write", tmp);
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    throw_errno("fsync", tmp);
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path_.c_str()) != 0) throw_errno("rename", tmp);
}

std::optional<PersistentState> FileStateStore::load() {
  const int fd = ::open(path_.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return std::nullopt;
    throw_errno("open", path_);
  }
  std::vector<std::uint8_t> buf;
  std::uint8_t chunk[4096];
  ssize_t n;
  while ((n = ::read(fd, chunk, sizeof(chunk))) > 0) {
    buf.insert(buf.end(), chunk, chunk + n);
  }
  ::close(fd);
  if (n < 0) throw_errno("read", path_);
  auto state = decode_state(buf);
  if (!state) {
    LOG_WARN("state file " << path_ << " is corrupt; treating as absent");
  }
  return state;
}

}  // namespace escape::storage
