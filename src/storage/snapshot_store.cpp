#include "storage/snapshot_store.h"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <fcntl.h>
#include <unistd.h>

#include "common/logging.h"
#include "common/serde.h"

namespace escape::storage {
namespace {

/// Bump when the body layout changes; load refuses unknown versions instead
/// of misparsing old files. v2 added the membership block after the
/// configuration; v1 files still decode (membership stays empty and the
/// node falls back to its bootstrap member list).
constexpr std::uint8_t kSnapshotVersionV1 = 1;
constexpr std::uint8_t kSnapshotVersion = 2;

void throw_errno(const std::string& op, const std::string& path) {
  throw std::runtime_error(op + " failed for " + path + ": " + std::strerror(errno));
}

}  // namespace

std::vector<std::uint8_t> encode_snapshot(const Snapshot& snapshot) {
  Encoder e;
  e.u8(kSnapshotVersion);
  e.i64(snapshot.last_included_index);
  e.i64(snapshot.last_included_term);
  e.i64(snapshot.config.timer_period);
  e.i32(snapshot.config.priority);
  e.i64(snapshot.config.conf_clock);
  rpc::encode_membership(e, snapshot.membership);
  e.bytes(snapshot.state);
  auto body = e.take();
  Encoder framed;
  framed.u32(crc32(body));
  framed.bytes(body);
  return framed.take();
}

std::optional<Snapshot> decode_snapshot(const std::vector<std::uint8_t>& buf) {
  try {
    Decoder d(buf);
    const auto crc = d.u32();
    const auto body = d.bytes();
    d.expect_end();
    if (crc32(body) != crc) return std::nullopt;
    Decoder bd(body);
    const auto version = bd.u8();
    if (version != kSnapshotVersion && version != kSnapshotVersionV1) return std::nullopt;
    Snapshot s;
    s.last_included_index = bd.i64();
    s.last_included_term = bd.i64();
    s.config.timer_period = bd.i64();
    s.config.priority = bd.i32();
    s.config.conf_clock = bd.i64();
    if (version >= kSnapshotVersion) s.membership = rpc::decode_membership(bd);
    s.state = bd.bytes();
    bd.expect_end();
    return s;
  } catch (const DecodeError&) {
    return std::nullopt;
  }
}

FileSnapshotStore::FileSnapshotStore(std::string path) : path_(std::move(path)) {}

void FileSnapshotStore::save(const Snapshot& snapshot) {
  const auto buf = encode_snapshot(snapshot);
  const std::string tmp = path_ + ".tmp";

  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw_errno("open", tmp);
  std::size_t off = 0;
  while (off < buf.size()) {
    const ssize_t n = ::write(fd, buf.data() + off, buf.size() - off);
    if (n < 0) {
      ::close(fd);
      throw_errno("write", tmp);
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    throw_errno("fsync", tmp);
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path_.c_str()) != 0) throw_errno("rename", tmp);
}

std::optional<Snapshot> FileSnapshotStore::load() {
  const int fd = ::open(path_.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return std::nullopt;
    throw_errno("open", path_);
  }
  std::vector<std::uint8_t> buf;
  std::uint8_t chunk[1 << 16];
  ssize_t n;
  while ((n = ::read(fd, chunk, sizeof(chunk))) > 0) {
    buf.insert(buf.end(), chunk, chunk + n);
  }
  ::close(fd);
  if (n < 0) throw_errno("read", path_);
  auto snapshot = decode_snapshot(buf);
  if (!snapshot) {
    LOG_WARN("snapshot file " << path_ << " is corrupt; treating as absent");
  }
  return snapshot;
}

}  // namespace escape::storage
