#include "common/rng.h"

#include <cassert>
#include <numeric>

namespace escape {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

std::uint64_t stream_seed(std::uint64_t root, std::uint64_t index) {
  // Finalize the root once so structured roots (small integers, bit flags)
  // land in a well-mixed region, fold the index in with a large odd
  // multiplier, and finalize again. Two SplitMix64 rounds keep adjacent
  // indices decorrelated well past the avalanche threshold.
  std::uint64_t x = root;
  std::uint64_t mixed = splitmix64(x) ^ (index * 0xD1342543DE82EF95ull);
  return splitmix64(mixed);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % range + 1) % range;
  std::uint64_t v = next_u64();
  while (v > limit) v = next_u64();
  return lo + static_cast<std::int64_t>(v % range);
}

double Rng::uniform_real(double lo, double hi) {
  const double unit = static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  return lo + unit * (hi - lo);
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform_real(0.0, 1.0) < p;
}

Rng Rng::fork(std::uint64_t salt) {
  // Mix the child's salt with fresh output from this stream so that
  // fork(k) streams are decorrelated from each other and from the parent.
  std::uint64_t mixed = next_u64() ^ (salt * 0xD1342543DE82EF95ull + 0x2545F4914F6CDD1Dull);
  return Rng(splitmix64(mixed));
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) {
  assert(k <= n);
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  // Partial Fisher-Yates: the first k positions end up as the sample.
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(
        uniform_int(static_cast<std::int64_t>(i), static_cast<std::int64_t>(n) - 1));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace escape
