// Bounds-checked binary serialization.
//
// Fixed-width little-endian primitives plus length-prefixed strings/blobs.
// Decoding failures throw DecodeError — a frame from the network is untrusted
// input and every read is range-checked. The format is deliberately simple
// (no varints) so the wire layout is auditable byte-by-byte in tests.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace escape {

/// Thrown when a buffer is malformed (truncated, oversized length prefix...).
class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

/// Append-only byte sink.
class Encoder {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { put_le(v); }
  void u32(std::uint32_t v) { put_le(v); }
  void u64(std::uint64_t v) { put_le(v); }
  void i32(std::int32_t v) { put_le(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { put_le(static_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }

  /// Length-prefixed (u32) byte string.
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  /// Length-prefixed (u32) raw bytes.
  void bytes(const std::vector<std::uint8_t>& b) {
    u32(static_cast<std::uint32_t>(b.size()));
    buf_.insert(buf_.end(), b.begin(), b.end());
  }

  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  template <typename T>
  void put_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<std::uint8_t> buf_;
};

/// Range-checked byte source over a borrowed buffer.
class Decoder {
 public:
  Decoder(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}
  explicit Decoder(const std::vector<std::uint8_t>& buf) : Decoder(buf.data(), buf.size()) {}

  std::uint8_t u8() { return take_le<std::uint8_t>(); }
  std::uint16_t u16() { return take_le<std::uint16_t>(); }
  std::uint32_t u32() { return take_le<std::uint32_t>(); }
  std::uint64_t u64() { return take_le<std::uint64_t>(); }
  std::int32_t i32() { return static_cast<std::int32_t>(take_le<std::uint32_t>()); }
  std::int64_t i64() { return static_cast<std::int64_t>(take_le<std::uint64_t>()); }
  bool boolean() {
    const auto v = u8();
    if (v > 1) throw DecodeError("invalid boolean");
    return v == 1;
  }
  double f64() {
    const auto bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::string str() {
    const auto n = u32();
    require(n);
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  std::vector<std::uint8_t> bytes() {
    const auto n = u32();
    require(n);
    std::vector<std::uint8_t> b(data_ + pos_, data_ + pos_ + n);
    pos_ += n;
    return b;
  }

  /// Bytes not yet consumed.
  std::size_t remaining() const { return size_ - pos_; }

  /// Fails decoding unless the buffer was fully consumed (detects trailing
  /// garbage — a frame must parse exactly).
  void expect_end() const {
    if (pos_ != size_) throw DecodeError("trailing bytes in frame");
  }

 private:
  void require(std::size_t n) const {
    if (size_ - pos_ < n) throw DecodeError("buffer underrun");
  }

  template <typename T>
  T take_le() {
    require(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<T>(data_[pos_ + i]) << (8 * i)));
    }
    pos_ += sizeof(T);
    return v;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// CRC32 (IEEE, reflected) over a byte range; used by the WAL and wire frames
/// to reject torn or corrupted records.
std::uint32_t crc32(const std::uint8_t* data, std::size_t size);
inline std::uint32_t crc32(const std::vector<std::uint8_t>& b) { return crc32(b.data(), b.size()); }

}  // namespace escape
