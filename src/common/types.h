// Core scalar types shared by every module.
//
// The protocol layer is written against *virtual time*: a signed 64-bit count
// of microseconds since an arbitrary origin. The simulator advances this
// clock deterministically; the real-time runtime derives it from
// steady_clock. All public configuration surfaces speak milliseconds (the
// unit the paper uses) through the from_ms/to_ms helpers.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace escape {

/// Identifies a server within a cluster. Server ids are dense, start at 1
/// (matching the paper's S1..Sn notation) and never change for the lifetime
/// of a cluster.
using ServerId = std::uint32_t;

/// Sentinel "no server" value (e.g. voted_for when no vote was cast).
inline constexpr ServerId kNoServer = 0;

/// Raft logical time. Monotonically non-decreasing on every server.
/// In ESCAPE, terms advance by a candidate's priority (Eq. 2) instead of 1.
using Term = std::int64_t;

/// Index into the replicated log; 1-based, 0 means "empty log".
using LogIndex = std::int64_t;

/// ESCAPE's configuration clock: the logical clock of configuration
/// rearrangements (Listing 1, `confClock`). 0 on protocols without ESCAPE.
using ConfClock = std::int64_t;

/// ESCAPE priority. Higher wins. Initially a server's id (SCA, Section IV-A).
using Priority = std::int32_t;

/// Virtual time point, microseconds since simulation/process start.
using TimePoint = std::int64_t;

/// Virtual duration in microseconds.
using Duration = std::int64_t;

inline constexpr TimePoint kNever = std::numeric_limits<TimePoint>::max();

/// Converts milliseconds (the paper's unit) to the internal microsecond unit.
constexpr Duration from_ms(std::int64_t ms) { return ms * 1000; }

/// Converts an internal microsecond duration to (truncated) milliseconds.
constexpr std::int64_t to_ms(Duration d) { return d / 1000; }

/// Converts an internal microsecond duration to fractional milliseconds.
constexpr double to_ms_f(Duration d) { return static_cast<double>(d) / 1000.0; }

/// Role of a server at any instant (Figure 1 of the paper).
enum class Role : std::uint8_t { kFollower = 0, kCandidate = 1, kLeader = 2 };

/// Human-readable role name, for logs and traces.
inline const char* role_name(Role r) {
  switch (r) {
    case Role::kFollower: return "follower";
    case Role::kCandidate: return "candidate";
    case Role::kLeader: return "leader";
  }
  return "?";
}

/// Formats "S<id>" like the paper's server notation.
inline std::string server_name(ServerId id) { return "S" + std::to_string(id); }

}  // namespace escape
