// Minimal leveled logger.
//
// The protocol core never logs on the hot path unconditionally; log calls
// compile down to a level check plus (when enabled) a formatted line to a
// sink. The default sink is stderr; tests and the simulator may install a
// capturing sink. Thread-safe: sink writes are serialized by a mutex.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace escape {

enum class LogLevel : int { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

/// Global logging configuration. Intentionally tiny: a level threshold and a
/// replaceable sink.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  /// Current threshold; messages below it are dropped before formatting.
  static LogLevel level();

  /// Sets the threshold for all subsequent log calls.
  static void set_level(LogLevel level);

  /// Replaces the sink (default writes "[LVL] msg" to stderr). Passing a
  /// null function restores the default sink.
  static void set_sink(Sink sink);

  /// Emits a pre-formatted message at `level` (no level check; use LOG_*).
  static void write(LogLevel level, const std::string& msg);
};

namespace detail {
struct LogLine {
  LogLevel level;
  std::ostringstream os;
  explicit LogLine(LogLevel l) : level(l) {}
  ~LogLine() { Logger::write(level, os.str()); }
};
}  // namespace detail

#define ESCAPE_LOG(lvl, expr)                                  \
  do {                                                         \
    if (static_cast<int>(lvl) >= static_cast<int>(::escape::Logger::level())) { \
      ::escape::detail::LogLine line_(lvl);                    \
      line_.os << expr;                                        \
    }                                                          \
  } while (0)

#define LOG_TRACE(expr) ESCAPE_LOG(::escape::LogLevel::kTrace, expr)
#define LOG_DEBUG(expr) ESCAPE_LOG(::escape::LogLevel::kDebug, expr)
#define LOG_INFO(expr) ESCAPE_LOG(::escape::LogLevel::kInfo, expr)
#define LOG_WARN(expr) ESCAPE_LOG(::escape::LogLevel::kWarn, expr)
#define LOG_ERROR(expr) ESCAPE_LOG(::escape::LogLevel::kError, expr)

}  // namespace escape
