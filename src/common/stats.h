// Measurement helpers used by benches, tests and EXPERIMENTS.md generation.
//
// Sample keeps raw observations (election times are small counts — at most a
// few thousand per experiment point) and derives mean/stddev/percentiles and
// CDF series exactly, matching how the paper reports Figures 3, 4, 9, 10, 11.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.h"

namespace escape {

/// A batch of scalar observations with exact order statistics.
class Sample {
 public:
  /// Adds one observation.
  void add(double v);

  /// Appends every observation of `other`, preserving both insertion orders
  /// (this sample's values first). Merging the pieces of a partitioned
  /// sample in partition order reproduces the whole sample exactly, which is
  /// what lets sim::TrialPool aggregate per-trial samples into bit-identical
  /// statistics regardless of the thread count that produced them.
  Sample& merge(const Sample& other);

  /// Number of observations recorded.
  std::size_t count() const { return values_.size(); }

  /// Arithmetic mean; 0 for an empty sample.
  double mean() const;

  /// Sample standard deviation (n-1 denominator); 0 when count() < 2.
  double stddev() const;

  /// Smallest / largest observation; 0 for an empty sample.
  double min() const;
  double max() const;

  /// Exact percentile in [0,100] via nearest-rank; 0 for an empty sample.
  double percentile(double p) const;

  /// Fraction of observations <= x, in [0,1]. This is the empirical CDF the
  /// paper plots in Figures 3 and 9.
  double cdf_at(double x) const;

  /// Evaluates the CDF on an evenly spaced grid of `points` xs spanning
  /// [min, max]; returns (x, fraction<=x) pairs.
  std::vector<std::pair<double, double>> cdf_series(std::size_t points) const;

  /// Raw observations in insertion order.
  const std::vector<double>& values() const { return values_; }

 private:
  void ensure_sorted() const;

  std::vector<double> values_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
};

/// Fixed-width histogram over [lo, hi) with `buckets` bins plus overflow.
/// Used by micro benches and network-model tests to check distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double v);

  std::size_t bucket_count() const { return counts_.size(); }
  std::size_t count_in_bucket(std::size_t i) const { return counts_[i]; }
  std::size_t overflow() const { return overflow_; }
  std::size_t underflow() const { return underflow_; }
  std::size_t total() const { return total_; }

  /// Lower edge of bucket i.
  double bucket_lo(std::size_t i) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::size_t> counts_;
  std::size_t overflow_ = 0, underflow_ = 0, total_ = 0;
};

/// Renders "mean=... p50=... p99=... n=..." for one-line experiment output.
std::string summarize(const Sample& s, const std::string& unit);

}  // namespace escape
