#include "common/logging.h"

#include <atomic>
#include <iostream>
#include <mutex>

namespace escape {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_sink_mu;
Logger::Sink& sink_ref() {
  static Logger::Sink sink;  // empty => default stderr sink
  return sink;
}

const char* level_tag(LogLevel l) {
  switch (l) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}

}  // namespace

LogLevel Logger::level() { return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed)); }

void Logger::set_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void Logger::set_sink(Sink sink) {
  std::lock_guard lock(g_sink_mu);
  sink_ref() = std::move(sink);
}

void Logger::write(LogLevel level, const std::string& msg) {
  std::lock_guard lock(g_sink_mu);
  if (sink_ref()) {
    sink_ref()(level, msg);
  } else {
    std::cerr << '[' << level_tag(level) << "] " << msg << '\n';
  }
}

}  // namespace escape
