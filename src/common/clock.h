// Virtual/real clock abstraction.
//
// The protocol core receives `now` explicitly on every input, so it never
// queries a clock itself. Clock exists for the runtimes: the simulator's
// event loop implements it over virtual time, and the TCP runtime implements
// it over steady_clock. Code that must sleep (only the real runtime does)
// goes through Clock too, keeping the rest of the library time-source free.
#pragma once

#include <chrono>

#include "common/types.h"

namespace escape {

/// Abstract monotonic clock in the library's microsecond virtual-time unit.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time. Monotonic, not necessarily related to wall time.
  virtual TimePoint now() const = 0;
};

/// Clock backed by std::chrono::steady_clock (used by the TCP runtime).
class SteadyClock final : public Clock {
 public:
  SteadyClock() : origin_(std::chrono::steady_clock::now()) {}

  TimePoint now() const override {
    const auto d = std::chrono::steady_clock::now() - origin_;
    return std::chrono::duration_cast<std::chrono::microseconds>(d).count();
  }

 private:
  std::chrono::steady_clock::time_point origin_;
};

/// Manually advanced clock (used by the simulator and unit tests).
class ManualClock final : public Clock {
 public:
  explicit ManualClock(TimePoint start = 0) : now_(start) {}

  TimePoint now() const override { return now_; }

  /// Moves time forward; never backwards.
  void advance_to(TimePoint t) {
    if (t > now_) now_ = t;
  }

 private:
  TimePoint now_;
};

}  // namespace escape
