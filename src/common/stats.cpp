#include "common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace escape {

void Sample::add(double v) {
  values_.push_back(v);
  sorted_valid_ = false;
}

Sample& Sample::merge(const Sample& other) {
  if (&other == this) {  // self-insert from own iterators would be UB
    const std::size_t n = values_.size();
    values_.reserve(2 * n);
    for (std::size_t i = 0; i < n; ++i) values_.push_back(values_[i]);
  } else {
    values_.insert(values_.end(), other.values_.begin(), other.values_.end());
  }
  sorted_valid_ = false;
  return *this;
}

double Sample::mean() const {
  if (values_.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values_) sum += v;
  return sum / static_cast<double>(values_.size());
}

double Sample::stddev() const {
  if (values_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double v : values_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values_.size() - 1));
}

void Sample::ensure_sorted() const {
  if (!sorted_valid_) {
    sorted_ = values_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double Sample::min() const {
  if (values_.empty()) return 0.0;
  ensure_sorted();
  return sorted_.front();
}

double Sample::max() const {
  if (values_.empty()) return 0.0;
  ensure_sorted();
  return sorted_.back();
}

double Sample::percentile(double p) const {
  if (values_.empty()) return 0.0;
  ensure_sorted();
  p = std::clamp(p, 0.0, 100.0);
  // Nearest-rank definition: smallest value with at least p% of mass at or
  // below it.
  const auto n = sorted_.size();
  const auto rank = static_cast<std::size_t>(std::ceil(p / 100.0 * static_cast<double>(n)));
  const auto idx = rank == 0 ? 0 : rank - 1;
  return sorted_[std::min(idx, n - 1)];
}

double Sample::cdf_at(double x) const {
  if (values_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

std::vector<std::pair<double, double>> Sample::cdf_series(std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (values_.empty() || points == 0) return out;
  ensure_sorted();
  const double lo = sorted_.front();
  const double hi = sorted_.back();
  out.reserve(points);
  if (points == 1 || hi == lo) {
    out.emplace_back(hi, 1.0);
    return out;
  }
  const double step = (hi - lo) / static_cast<double>(points - 1);
  for (std::size_t i = 0; i < points; ++i) {
    const double x = lo + step * static_cast<double>(i);
    out.emplace_back(x, cdf_at(x));
  }
  return out;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)), counts_(buckets, 0) {
  assert(hi > lo && buckets > 0);
}

void Histogram::add(double v) {
  ++total_;
  if (v < lo_) {
    ++underflow_;
  } else if (v >= hi_) {
    ++overflow_;
  } else {
    auto idx = static_cast<std::size_t>((v - lo_) / width_);
    if (idx >= counts_.size()) idx = counts_.size() - 1;  // fp edge case at hi
    ++counts_[idx];
  }
}

double Histogram::bucket_lo(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }

std::string summarize(const Sample& s, const std::string& unit) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(1);
  os << "mean=" << s.mean() << unit << " p50=" << s.percentile(50) << unit
     << " p95=" << s.percentile(95) << unit << " p99=" << s.percentile(99) << unit
     << " max=" << s.max() << unit << " n=" << s.count();
  return os.str();
}

}  // namespace escape
