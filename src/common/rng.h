// Deterministic pseudo-random number generation.
//
// Every stochastic choice in the library (election timeouts, network latency,
// loss, shuffles) flows through Rng so that a (seed, scenario) pair replays
// bit-identically. The generator is xoshiro256** seeded via SplitMix64 —
// fast, high quality, and trivially serializable.
#pragma once

#include <cstdint>
#include <vector>

namespace escape {

/// Derives the seed of the `index`-th independent stream of `root`. A pure
/// function of its arguments — unlike Rng::fork(), which advances the parent
/// stream — so trial i's generator never depends on how many other trials
/// were derived before it or on which thread derived it. This is the
/// splittable-stream primitive behind sim::TrialPool and SimCheck.
std::uint64_t stream_seed(std::uint64_t root, std::uint64_t index);

/// Deterministic random number generator (xoshiro256**).
///
/// Not thread-safe; each simulated component owns its own stream, usually
/// derived from a root seed with Rng::fork() so streams are decorrelated.
class Rng {
 public:
  /// Seeds the generator. Equal seeds yield equal streams.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// The `index`-th independent stream of `root` (see stream_seed).
  static Rng stream(std::uint64_t root, std::uint64_t index) {
    return Rng(stream_seed(root, index));
  }

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi);

  /// Bernoulli trial with probability p in [0,1].
  bool chance(double p);

  /// Derives an independent child stream; deterministic in (this, salt).
  Rng fork(std::uint64_t salt);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k);

 private:
  std::uint64_t s_[4];
};

}  // namespace escape
