// Stochastic Configuration Assignment (SCA) arithmetic — Section IV-A.
//
// A configuration π(P, k) pairs a priority P with an election timeout derived
// from Eq. 1:
//
//     period(P) = baseTime + gap · (n − P)
//
// so the highest priority (P = n) has the shortest timeout (baseTime) and
// detects a failed leader first. A candidate's term advances by its priority
// when it campaigns (Eq. 2), which scatters simultaneous campaigns into
// different terms; received terms merge by max (Eq. 3 — standard Raft
// behaviour, unchanged in RaftNode).
#pragma once

#include <cstddef>

#include "common/types.h"
#include "rpc/messages.h"

namespace escape::core {

/// Parameters of ESCAPE's configuration scheme.
struct EscapeOptions {
  /// Eq. 1 baseTime: minimum election timeout; must comfortably exceed the
  /// network latency. The paper's evaluation uses 1500 ms.
  Duration base_time = from_ms(1500);

  /// Eq. 1 k: per-priority timeout gap. The paper recommends at least 2x the
  /// network latency and evaluates with 500 ms.
  Duration gap = from_ms(500);

  /// Enables the probing patrol function (Section IV-B). With PPF disabled
  /// the policy degenerates to Z-Raft: fixed server-ID priorities, no
  /// rearrangement, no configuration clock advancement (Section VI-D).
  bool enable_ppf = true;

  /// Enables the confClock staleness vote rule ("servers never vote for
  /// candidates whose configuration clock is stale"). Disabling it is
  /// ablation B: recovered servers with stale priorities can split votes.
  bool conf_clock_vote_rule = true;

  /// Rearrange + redistribute configurations every this many heartbeat
  /// rounds. 1 = piggyback on every heartbeat (paper default); larger values
  /// model the "separate heartbeat at a low interval rate" optimization of
  /// Section IV-C (ablation D).
  int patrol_every = 1;

  /// Ranking hysteresis: a follower counts as *lagging* (and is demoted in
  /// the patrol ranking) only when its reported log index trails the most
  /// responsive follower's by more than this many entries. Followers within
  /// the threshold keep their previous relative order, so ordinary
  /// replication jitter (in-flight entries, one omitted heartbeat) does not
  /// trigger spurious rearrangements — the configuration clock only advances
  /// on material responsiveness changes, which keeps vote-time clock checks
  /// meaningful under message loss.
  LogIndex lag_threshold = 10;

  /// Pipeline-backlog hysteresis for the patrol ranking (entries). A
  /// follower whose replication backlog (entries the leader still owes it)
  /// exceeds the *smallest* backlog among followers by more than this is
  /// demoted like a log-index laggard, so the freshest replica under load
  /// keeps the shortest timeout. The comparison is relative, not absolute:
  /// an open-loop write storm puts every follower equally behind, and a
  /// uniform backlog must not demote anyone (assignments — and hence the
  /// confClock — stay stable under symmetric load). 0 disables the signal.
  LogIndex backlog_lag_threshold = 64;
};

/// Configuration-clock stride per term. A new leader floors its clock at
/// term * kConfClockStride before minting rearrangement generations, so the
/// clock ranges minted by distinct leaderships are disjoint (election safety
/// gives at most one leader per term, and terms strictly increase across
/// leaderships). Without the floor, a leader that crashes after stamping a
/// generation but before any follower adopts it leaves that clock value
/// unknowable to its successor, which can re-mint it with different
/// contents — two configurations sharing a confClock, the exact Lemma 3
/// violation SimCheck found. A leadership would need 2^20 rearrangements to
/// overflow its range; the patrol only mints on material responsiveness
/// changes, so real runs stay orders of magnitude below that.
inline constexpr ConfClock kConfClockStride = ConfClock{1} << 20;

/// Eq. 1: election timeout implied by priority `p` in an `n`-server cluster.
/// Eq. 1's ladder spans [baseTime, baseTime + gap·(n−1)] for P in {1..n}; a
/// priority *above* n can only come from a self-assigned initial config whose
/// id exceeds the current voter count (a server joining an established
/// cluster). Flooring at baseTime keeps such off-ladder configs sane — an
/// unclamped period would go non-positive and the timer would fire every
/// tick, a campaign livelock.
constexpr Duration election_period(const EscapeOptions& opts, std::size_t n, Priority p) {
  const Duration ladder =
      opts.base_time + opts.gap * (static_cast<Duration>(n) - static_cast<Duration>(p));
  return ladder < opts.base_time ? opts.base_time : ladder;
}

/// The initial (clock-0) configuration a server self-assigns when joining:
/// priority = server id (SCA "priorities implemented by server IDs").
inline rpc::Configuration initial_configuration(const EscapeOptions& opts, std::size_t n,
                                                ServerId id) {
  rpc::Configuration c;
  c.priority = static_cast<Priority>(id);
  c.timer_period = election_period(opts, n, c.priority);
  c.conf_clock = 0;
  return c;
}

}  // namespace escape::core
