// The ESCAPE election policy — the paper's core contribution (Section IV).
//
// Follower side: the adopted configuration π(P, k) dictates the election
// timeout (Eq. 1), the term jump on candidacy (Eq. 2), the confClock stamped
// on RequestVote, and the staleness vote rule.
//
// Leader side (probing patrol function, Section IV-B): each heartbeat round
// the leader (1) ranks followers by log responsiveness reported in
// AppendEntriesReply.status, (2) rearranges the pool of n−1 configurations so
// higher priorities go to more up-to-date followers, (3) stamps the
// assignments with a freshly incremented confClock, and (4) piggybacks each
// follower's assignment on its next AppendEntries. The leader itself holds
// the bottom priority (its timer is disarmed while leading — "NA/∞" in
// Figure 5), so the distributed pool is {2..n}.
//
// With `enable_ppf == false` the policy is exactly Z-Raft (Section VI-D):
// fixed server-ID priorities with no rearrangement and no clock.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/configuration.h"
#include "raft/election_policy.h"

namespace escape::core {

class EscapePolicy final : public raft::ElectionPolicy {
 public:
  /// `self` is this server's id; `cluster_size` the total member count n.
  EscapePolicy(ServerId self, std::size_t cluster_size, EscapeOptions options = {});

  std::string name() const override { return options_.enable_ppf ? "escape" : "zraft"; }

  // --- follower / candidate side -----------------------------------------
  Term campaign_term(Term current) const override;
  Duration min_election_timeout() const override { return options_.base_time; }
  ConfClock vote_request_clock() const override { return current_.conf_clock; }
  bool approve_candidate(const rpc::RequestVote& request) const override;
  bool on_config_received(const rpc::Configuration& config) override;
  rpc::Configuration current_config() const override { return current_; }
  void restore(const rpc::Configuration& config) override;

  // --- leader side (PPF) ---------------------------------------------------
  void on_become_leader(const std::vector<ServerId>& others, Term term) override;
  /// Membership change: adopts the new voter count n (Eq. 1's ladder and
  /// Eq. 2's jumps recompute) and, while leading, resets the patrol pool to
  /// the new voter set — the next patrol round re-deals every priority under
  /// a freshly minted confClock. Lemma 3 across a reconfig: the re-deal and
  /// any racing patrol rearrangement serialize on this leader's single
  /// round_clock_, monotone adoption discards stale in-flight assignments,
  /// and a removed server's standing assignment keeps a clock that is never
  /// reused.
  void on_membership_changed(const std::vector<ServerId>& voter_others,
                             std::size_t n_voters) override;
  void on_follower_status(ServerId from, const rpc::ConfigStatus& status) override;
  void on_follower_backlog(ServerId follower, LogIndex backlog, std::size_t inflight) override;
  void begin_heartbeat_round() override;
  std::optional<rpc::Configuration> config_for(ServerId dest) override;
  std::optional<rpc::Configuration> assignment_for(ServerId dest) override;

  // --- introspection (tests, invariant checkers) --------------------------
  const EscapeOptions& options() const { return options_; }
  /// Leader-side view of the current assignment (empty on followers).
  const std::map<ServerId, rpc::Configuration>& assignments() const { return assignments_; }
  /// The configuration clock of the most recent patrol round issued by this
  /// server while leading.
  ConfClock issued_clock() const { return round_clock_; }

 protected:
  Duration sample_election_timeout(Rng& rng) override;

 private:
  void run_patrol();

  const ServerId self_;
  std::size_t n_;  ///< current voter count (updated by on_membership_changed)
  const EscapeOptions options_;

  /// Configuration currently in force on this server.
  rpc::Configuration current_;

  // --- leader-only state ---------------------------------------------------
  struct FollowerProbe {
    LogIndex log_index = 0;        ///< last reported log responsiveness
    ConfClock adopted_clock = -1;  ///< clock the follower reports adopted
    LogIndex backlog = 0;          ///< entries the leader still owes (pipeline)
    std::size_t inflight = 0;      ///< optimistic batches in flight to it
  };
  std::vector<ServerId> followers_;
  std::map<ServerId, FollowerProbe> probes_;
  std::map<ServerId, rpc::Configuration> assignments_;
  ConfClock round_clock_ = 0;     ///< clock of the last issued rearrangement
  ConfClock max_clock_seen_ = 0;  ///< highest clock observed anywhere
  int rounds_since_patrol_ = 0;
  bool leading_ = false;
  bool patrol_round_pending_ = false;  ///< send configs in the current round
};

/// Z-Raft (Section VI-D): ZooKeeper-style fixed-priority election grafted
/// onto Raft — ESCAPE's SCA without PPF, no configuration clock. Provided as
/// a named factory to make bench/ test call sites self-describing.
inline std::unique_ptr<raft::ElectionPolicy> make_zraft_policy(ServerId self,
                                                               std::size_t cluster_size,
                                                               EscapeOptions options = {}) {
  options.enable_ppf = false;
  options.conf_clock_vote_rule = false;
  return std::make_unique<EscapePolicy>(self, cluster_size, options);
}

}  // namespace escape::core
