#include "core/escape_policy.h"

#include <algorithm>
#include <cassert>

#include "common/logging.h"

namespace escape::core {

EscapePolicy::EscapePolicy(ServerId self, std::size_t cluster_size, EscapeOptions options)
    : self_(self), n_(cluster_size), options_(options) {
  assert(cluster_size >= 1);
  current_ = initial_configuration(options_, n_, self_);
}

Term EscapePolicy::campaign_term(Term current) const {
  // Eq. 2: T <- T + P. Priority is always >= 1 by construction, but guard
  // against a zeroed restore so terms keep advancing.
  const Priority p = std::max<Priority>(1, current_.priority);
  return current + p;
}

bool EscapePolicy::approve_candidate(const rpc::RequestVote& request) const {
  if (!options_.conf_clock_vote_rule) return true;
  // "Servers never vote for candidates whose configuration clock is stale":
  // the candidate's clock must be at least the voter's (Section IV-B).
  return request.conf_clock >= current_.conf_clock;
}

bool EscapePolicy::on_config_received(const rpc::Configuration& config) {
  // Only strictly fresher assignments are adopted; replays and reordered
  // heartbeats cannot roll the configuration back (Lemma 4 relies on clock
  // monotonicity).
  if (config.conf_clock <= current_.conf_clock) return false;
  current_ = config;
  if (config.conf_clock > max_clock_seen_) max_clock_seen_ = config.conf_clock;
  leading_ = false;  // receiving a config means someone else leads
  return true;
}

void EscapePolicy::restore(const rpc::Configuration& config) {
  // A zeroed persisted config (fresh disk) keeps the SCA initial assignment.
  if (config.priority != 0 || config.conf_clock != 0 || config.timer_period != 0) {
    current_ = config;
    max_clock_seen_ = std::max(max_clock_seen_, config.conf_clock);
  }
}

Duration EscapePolicy::sample_election_timeout(Rng&) {
  // Deterministic: the adopted configuration *is* the timeout (Eq. 1).
  return current_.timer_period > 0 ? current_.timer_period
                                   : election_period(options_, n_, current_.priority);
}

void EscapePolicy::on_become_leader(const std::vector<ServerId>& others, Term term) {
  leading_ = true;
  followers_ = others;
  std::sort(followers_.begin(), followers_.end());
  probes_.clear();
  assignments_.clear();
  rounds_since_patrol_ = 0;
  patrol_round_pending_ = false;
  // Continue the clock from the freshest value this server has ever seen so
  // followers holding configurations from a previous leadership still adopt
  // ours, and floor it into this term's stride so generations minted by
  // distinct leaderships can never collide — even when a predecessor stamped
  // a clock and crashed before any follower learned of it (Lemma 3 must
  // survive that window; see kConfClockStride).
  round_clock_ = std::max({round_clock_, max_clock_seen_, term * kConfClockStride});
  for (ServerId f : followers_) probes_[f];  // default probe entries
}

void EscapePolicy::on_membership_changed(const std::vector<ServerId>& voter_others,
                                         std::size_t n_voters) {
  // Eq. 1 and Eq. 2 are parameterized by n; followers track it too so their
  // fallback period (no adopted assignment yet) matches the new ladder. A
  // learner bootstrapping with zero known voters keeps n >= 1.
  n_ = std::max<std::size_t>(1, n_voters);
  if (!leading_) return;
  std::vector<ServerId> next = voter_others;
  std::sort(next.begin(), next.end());
  if (next == followers_) return;
  followers_ = std::move(next);
  for (auto it = probes_.begin(); it != probes_.end();) {
    if (!std::binary_search(followers_.begin(), followers_.end(), it->first)) {
      it = probes_.erase(it);
    } else {
      ++it;
    }
  }
  for (ServerId f : followers_) probes_[f];  // default probe entries for newcomers
  // Force a full re-deal at the next heartbeat round: with assignments_
  // empty the patrol sees changed=true and mints a fresh confClock, so the
  // whole pool {2..n} is re-issued over the new voter set in one generation
  // — a reconfig can never leave two servers sharing a (P, k) pair from
  // different-n ladders (Lemma 3 across reconfigs).
  assignments_.clear();
  rounds_since_patrol_ = options_.patrol_every;  // patrol immediately
  patrol_round_pending_ = false;
}

void EscapePolicy::on_follower_status(ServerId from, const rpc::ConfigStatus& status) {
  if (!leading_) return;
  auto it = probes_.find(from);
  if (it == probes_.end()) return;
  it->second.log_index = status.log_index;
  it->second.adopted_clock = status.conf_clock;
  if (status.conf_clock > max_clock_seen_) max_clock_seen_ = status.conf_clock;
}

void EscapePolicy::on_follower_backlog(ServerId follower, LogIndex backlog,
                                       std::size_t inflight) {
  if (!leading_) return;
  auto it = probes_.find(follower);
  if (it == probes_.end()) return;
  it->second.backlog = backlog;
  it->second.inflight = inflight;
}

void EscapePolicy::begin_heartbeat_round() {
  if (!leading_ || !options_.enable_ppf || followers_.empty()) {
    patrol_round_pending_ = false;
    return;
  }
  ++rounds_since_patrol_;
  if (rounds_since_patrol_ < options_.patrol_every) {
    patrol_round_pending_ = false;
    return;
  }
  rounds_since_patrol_ = 0;
  run_patrol();
  patrol_round_pending_ = true;
}

void EscapePolicy::run_patrol() {
  // Rank followers by log responsiveness (last log index reported in a
  // heartbeat reply). Figure 5a: up-to-date servers take the higher-priority
  // configurations; Figure 5b: a crashed follower stops reporting, its known
  // index freezes below the advancing cluster, and its high priority is
  // re-issued to a responsive server while its own copy goes stale.
  //
  // Hysteresis: followers within lag_threshold of the best reported index
  // are "healthy" and keep their previous relative order; only material
  // laggards are demoted. This keeps assignments (and hence the confClock)
  // stable under replication jitter and message loss.
  LogIndex best = 0;
  for (ServerId f : followers_) best = std::max(best, probes_.at(f).log_index);
  // Pipeline feedback (see EscapeOptions::backlog_lag_threshold): demotion
  // keys off the backlog *relative to the least-owed follower*, so a
  // symmetric write storm — every window equally full — demotes nobody.
  LogIndex min_backlog = 0;
  bool any_backlog = false;
  for (ServerId f : followers_) {
    const LogIndex b = probes_.at(f).backlog;
    if (!any_backlog || b < min_backlog) min_backlog = b;
    any_backlog = true;
  }
  const auto lagging = [&](ServerId f) {
    const FollowerProbe& probe = probes_.at(f);
    if (best - probe.log_index > options_.lag_threshold) return true;
    return options_.backlog_lag_threshold > 0 &&
           probe.backlog - min_backlog > options_.backlog_lag_threshold;
  };
  const auto previous_priority = [&](ServerId f) -> Priority {
    const auto it = assignments_.find(f);
    return it == assignments_.end() ? 0 : it->second.priority;
  };
  std::vector<ServerId> order = followers_;
  std::sort(order.begin(), order.end(), [&](ServerId a, ServerId b) {
    const bool la = lagging(a);
    const bool lb = lagging(b);
    if (la != lb) return !la;  // healthy followers outrank laggards
    if (la) {                  // among laggards, least-behind first
      const auto ia = probes_.at(a).log_index;
      const auto ib = probes_.at(b).log_index;
      if (ia != ib) return ia > ib;
      const auto ba = probes_.at(a).backlog;  // then least-owed first
      const auto bb = probes_.at(b).backlog;
      if (ba != bb) return ba < bb;
    }
    const auto pa = previous_priority(a);
    const auto pb = previous_priority(b);
    if (pa != pb) return pa > pb;  // stable: keep the standing order
    return a > b;                  // deterministic tiebreak (SCA id seed)
  });

  // Prospective distribution of the pool {n, n-1, ..., 2}; the leader parks
  // itself at the bottom priority (1) with its timer effectively "NA/inf"
  // while leading. The pool never reaches 1: a leader removing itself from
  // the voter set patrols n followers, and dealing the last one P=1 would
  // duplicate the leader's own priority at the same clock — the exact
  // Lemma 3 violation the clock rules out. The lowest-ranked voter keeps
  // its standing (older-clock) assignment until the next leadership deals
  // a full pool.
  std::map<ServerId, Priority> proposed;
  Priority p = static_cast<Priority>(n_);
  for (ServerId f : order) {
    if (p < 2) break;
    proposed[f] = p--;
  }

  // The configuration clock stamps *rearrangement generations*: it advances
  // only when the assignment actually changes (or when a follower reports a
  // clock ahead of ours, e.g. inherited from a previous leadership that we
  // missed). Re-broadcasting an unchanged assignment keeps the same clock,
  // so followers that were omitted by a lossy round converge to it without
  // penalizing everyone else's freshness.
  bool changed = assignments_.empty() || max_clock_seen_ > round_clock_;
  if (!changed) {
    for (const auto& [f, prio] : proposed) {
      const auto it = assignments_.find(f);
      if (it == assignments_.end() || it->second.priority != prio) {
        changed = true;
        break;
      }
    }
  }
  if (!changed) return;

  round_clock_ = std::max(round_clock_, max_clock_seen_) + 1;
  for (const auto& [f, prio] : proposed) {
    rpc::Configuration c;
    c.priority = prio;
    c.timer_period = election_period(options_, n_, c.priority);
    c.conf_clock = round_clock_;
    assignments_[f] = c;
  }
  current_.priority = 1;
  current_.timer_period = election_period(options_, n_, 1);
  current_.conf_clock = round_clock_;
  max_clock_seen_ = round_clock_;
}

std::optional<rpc::Configuration> EscapePolicy::config_for(ServerId dest) {
  if (!leading_ || !options_.enable_ppf || !patrol_round_pending_) return std::nullopt;
  const auto it = assignments_.find(dest);
  if (it == assignments_.end()) return std::nullopt;
  return it->second;
}

std::optional<rpc::Configuration> EscapePolicy::assignment_for(ServerId dest) {
  if (!leading_ || !options_.enable_ppf) return std::nullopt;
  const auto it = assignments_.find(dest);
  if (it == assignments_.end()) return std::nullopt;
  return it->second;
}

}  // namespace escape::core
