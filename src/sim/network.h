// Simulated network.
//
// Models the paper's testbed: per-pair latency (NetEm-style uniform 100–200
// ms by default), geo "groups" with distinct intra/inter latencies (the
// split-vote-prone topology of Section II-B), per-broadcast receiver omission
// (the Δ message-loss model of Section VI-D: a broadcast reaches exactly
// ⌈(1−Δ)·n⌉ receivers), Bernoulli per-message loss, and link isolation for
// partitions.
#pragma once

#include <functional>
#include <map>
#include <set>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "rpc/messages.h"
#include "sim/event_loop.h"

namespace escape::sim {

/// Latency model: virtual delay for a (from, to) message.
using LatencyFn = std::function<Duration(ServerId from, ServerId to, Rng& rng)>;

/// Uniform latency in [lo, hi] for every pair (the paper's NetEm setup).
LatencyFn uniform_latency(Duration lo, Duration hi);

/// Fixed latency for every pair.
LatencyFn constant_latency(Duration d);

/// Geo-distributed topology: servers in the same group communicate with
/// intra-group latency, across groups with (higher) inter-group latency
/// (Section II-B). `group_of` maps a server id to its group index.
LatencyFn grouped_latency(std::function<int(ServerId)> group_of, Duration intra_lo,
                          Duration intra_hi, Duration inter_lo, Duration inter_hi);

/// Network behaviour knobs.
struct NetworkOptions {
  LatencyFn latency;  ///< defaults to uniform 100–200 ms when unset

  /// Section VI-D's Δ: in each broadcast, this fraction of the receivers is
  /// randomly omitted ("a broadcast only reaches 1−Δ servers").
  double broadcast_omission = 0.0;

  /// Independent per-message drop probability (applies to everything,
  /// including replies); used for generic fault-injection tests.
  double uniform_loss = 0.0;
};

/// Delivery statistics for assertions and bench reporting.
struct NetworkStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_omission = 0;
  std::uint64_t dropped_loss = 0;
  std::uint64_t dropped_partition = 0;
};

/// Routes envelopes between simulated servers with latency and loss.
class SimNetwork {
 public:
  /// `deliver` is invoked (via the event loop, after sampled latency) for
  /// every message that survives loss and partitions.
  SimNetwork(EventLoop& loop, NetworkOptions options, Rng rng,
             std::function<void(const rpc::Envelope&)> deliver);

  /// Sends a batch of envelopes drained from one server interaction.
  /// Consecutive envelopes from the same sender carrying the same message
  /// alternative (e.g. the n−1 RequestVotes of one campaign) form a
  /// *broadcast group* and are subject to exact-fraction omission.
  void send_batch(const std::vector<rpc::Envelope>& batch);

  /// Sends one envelope (no broadcast-omission semantics, only uniform loss
  /// and partitions).
  void send(const rpc::Envelope& envelope);

  /// Cuts / restores all links touching `id` (crash & network partition are
  /// both modelled as link removal; a crashed node additionally stops
  /// processing — see SimCluster).
  void isolate(ServerId id) { isolated_.insert(id); }
  void heal(ServerId id) { isolated_.erase(id); }
  bool isolated(ServerId id) const { return isolated_.count(id) > 0; }

  /// Severs the link in both directions between two servers.
  void cut_link(ServerId a, ServerId b) { cut_.insert(ordered(a, b)); }
  void heal_link(ServerId a, ServerId b) { cut_.erase(ordered(a, b)); }

  /// Severs only the `from` -> `to` direction (asymmetric faults: a node
  /// that can hear the cluster but can no longer reach it, or vice versa).
  void cut_link_one_way(ServerId from, ServerId to) { cut_one_way_.insert({from, to}); }
  void heal_link_one_way(ServerId from, ServerId to) { cut_one_way_.erase({from, to}); }

  const NetworkStats& stats() const { return stats_; }

  /// Read-only view of the behaviour knobs. Mutation goes through the
  /// explicit setters below so every mid-run change is an auditable event;
  /// an uncontrolled mutable reference would let callers silently break run
  /// reproducibility.
  const NetworkOptions& options() const { return options_; }

  /// Swaps the latency model; an empty function restores the model the
  /// network was constructed with.
  void set_latency(LatencyFn latency);

  /// Sets the Section VI-D broadcast receiver-omission fraction Δ in [0, 1].
  void set_broadcast_omission(double delta);

  /// Sets the independent per-message drop probability in [0, 1].
  void set_uniform_loss(double probability);

 private:
  static std::pair<ServerId, ServerId> ordered(ServerId a, ServerId b) {
    return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  }
  bool link_up(ServerId from, ServerId to) const;
  void transmit(const rpc::Envelope& envelope);

  EventLoop& loop_;
  NetworkOptions options_;
  LatencyFn default_latency_;  ///< constructor-normalized model, for set_latency({})
  Rng rng_;
  std::function<void(const rpc::Envelope&)> deliver_;
  std::set<ServerId> isolated_;
  std::set<std::pair<ServerId, ServerId>> cut_;
  std::set<std::pair<ServerId, ServerId>> cut_one_way_;  // (from, to), directed
  NetworkStats stats_;
};

}  // namespace escape::sim
