#include "sim/trial_pool.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace escape::sim {

namespace {

// Set while a pool thread (worker or caller) is inside a trial; a nested
// run() from such a thread executes inline instead of corrupting the batch
// state of the pool it is itself draining.
thread_local bool t_inside_trial = false;

// Scoped save/restore so nested inline batches can't clobber the flag of an
// enclosing trial.
struct InsideTrialScope {
  bool saved = t_inside_trial;
  InsideTrialScope() { t_inside_trial = true; }
  ~InsideTrialScope() { t_inside_trial = saved; }
};

}  // namespace

std::size_t TrialPool::default_threads() {
  // More workers than this buys nothing (trials are CPU-bound) and risks
  // std::system_error from thread exhaustion escaping shared()'s static
  // initializer; clamp rather than crash on an absurd env value.
  constexpr std::size_t kMaxThreads = 256;
  if (const char* env = std::getenv("ESCAPE_BENCH_THREADS")) {
    char* end = nullptr;
    errno = 0;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && errno != ERANGE && v > 0) {
      if (static_cast<std::size_t>(v) > kMaxThreads) {
        std::fprintf(stderr, "warning: clamping ESCAPE_BENCH_THREADS=%ld to %zu\n", v,
                     kMaxThreads);
        return kMaxThreads;
      }
      return static_cast<std::size_t>(v);
    }
    std::fprintf(stderr, "warning: ignoring unparsable ESCAPE_BENCH_THREADS='%s'\n", env);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

TrialPool& TrialPool::shared() {
  static TrialPool pool;
  return pool;
}

TrialPool::TrialPool(std::size_t threads)
    : threads_(threads == 0 ? default_threads() : threads) {
  workers_.reserve(threads_ - 1);
  for (std::size_t i = 0; i + 1 < threads_; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

TrialPool::~TrialPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void TrialPool::run_inline(std::size_t count, const std::function<void(std::size_t)>& fn) {
  // Same exception contract as the pooled path: trials are independent, so
  // one failure must not skip the rest (otherwise a throwing trial would
  // make aggregates thread-count-dependent).
  InsideTrialScope scope;
  std::exception_ptr first_error;
  for (std::size_t i = 0; i < count; ++i) {
    try {
      fn(i);
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void TrialPool::run(std::size_t count, const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (workers_.empty() || count == 1 || t_inside_trial) {
    run_inline(count, fn);
    return;
  }

  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (job_ != nullptr) {
      // Another top-level caller's batch is in flight; taking it over would
      // orphan its unclaimed trials. Concurrent callers degrade to inline
      // execution instead (the pool carries one batch at a time).
      lock.unlock();
      run_inline(count, fn);
      return;
    }
    job_ = &fn;
    count_ = count;
    next_ = 0;
    unfinished_ = count;
    error_ = nullptr;
    ++batch_;
  }
  work_cv_.notify_all();
  drain_current_batch();  // the calling thread is one of the pool's threads

  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return unfinished_ == 0; });
  job_ = nullptr;
  if (error_) {
    auto error = error_;
    error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void TrialPool::worker_main() {
  std::uint64_t seen_batch = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return shutdown_ || batch_ != seen_batch; });
      if (shutdown_) return;
      seen_batch = batch_;
    }
    drain_current_batch();
  }
}

void TrialPool::drain_current_batch() {
  while (true) {
    const std::function<void(std::size_t)>* job = nullptr;
    std::size_t i = 0;
    {
      // Claim under the mutex: a worker that raced past the end of the
      // previous batch sees either job_ == nullptr or next_ >= count_ and
      // leaves; it can never double-claim or miss a trial.
      std::lock_guard<std::mutex> lock(mutex_);
      if (job_ == nullptr || next_ >= count_) return;
      i = next_++;
      job = job_;
    }
    std::exception_ptr error;
    {
      InsideTrialScope scope;
      try {
        (*job)(i);
      } catch (...) {
        error = std::current_exception();
      }
    }
    std::lock_guard<std::mutex> lock(mutex_);
    if (error && !error_) error_ = error;
    if (--unfinished_ == 0) done_cv_.notify_all();
  }
}

}  // namespace escape::sim
