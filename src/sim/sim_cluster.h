// Simulated cluster harness.
//
// Hosts N RaftNode cores over a SimNetwork on one EventLoop. Each host pairs
// its core with a SimDriver over an owned "disk" (MemoryStateStore +
// MemoryWal + MemorySnapshotStore), so crash/recover cycles model a machine
// whose durable state survives process death — and every simulated run
// exercises the same Ready drain discipline the TCP runtime uses. Provides
// the fault
// injection and measurement hooks the paper's evaluation protocol needs:
// crash/recover, link isolation, event listeners, and stop predicates for
// running the simulation until an election-related condition holds.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "raft/raft_node.h"
#include "sim/event_loop.h"
#include "sim/network.h"
#include "sim/sim_driver.h"
#include "storage/snapshot_store.h"
#include "storage/state_store.h"
#include "storage/wal.h"

namespace escape::sim {

/// Builds an election policy for one member; invoked once per node
/// construction (including recoveries).
using PolicyFactory =
    std::function<std::unique_ptr<raft::ElectionPolicy>(ServerId id, std::size_t cluster_size)>;

/// Returns a PolicyFactory for vanilla Raft with the given timeout range.
PolicyFactory raft_policy_factory(Duration timeout_min, Duration timeout_max);

struct ClusterOptions {
  std::size_t size = 5;
  PolicyFactory policy;  ///< defaults to Raft with 1500–3000 ms timeouts
  raft::NodeOptions node;
  /// Durability strategy for every host's driver (group commit, async
  /// persist). When driver.async_persist is set, node.async_persist is forced
  /// on so the core's commit rule matches the driver's staging.
  raft::NodeDriver::Options driver;
  NetworkOptions network;
  std::uint64_t seed = 42;
  /// External event loop to run on. When null (the default) the cluster owns
  /// a private loop. A sharded deployment passes one shared loop to all of
  /// its groups so they advance through a single virtual timeline — exactly
  /// like independent consensus groups sharing real wall-clock time.
  EventLoop* loop = nullptr;
  /// Automatic log compaction: when > 0, a host snapshots its state machine
  /// and compacts whenever it retains at least this many applied entries
  /// beyond its last snapshot. 0 keeps the whole log (manual
  /// trigger_snapshot() still works).
  LogIndex snapshot_interval = 0;
};

/// A full simulated deployment of `size` consensus servers.
class SimCluster {
 public:
  explicit SimCluster(ClusterOptions options);

  /// Starts every node at the current virtual time. Must be called once.
  void start_all();

  // --- accessors -----------------------------------------------------------
  EventLoop& loop() { return *loop_; }
  SimNetwork& network() { return *network_; }
  bool started() const { return started_; }
  std::uint64_t seed() const { return options_.seed; }
  raft::RaftNode& node(ServerId id);
  const raft::RaftNode& node(ServerId id) const;
  bool alive(ServerId id) const;
  const std::vector<ServerId>& members() const { return members_; }
  std::size_t size() const { return members_.size(); }
  /// Hosts present at construction (the bootstrap voter set). Joined hosts
  /// (add_host) extend members() but never this list.
  std::size_t seed_size() const { return seed_size_; }

  /// The unique alive leader in the highest term, or kNoServer when no alive
  /// node currently leads.
  ServerId leader() const;

  /// Durable state of a host (survives crash/recover).
  storage::MemoryStateStore& state_store(ServerId id) { return *hosts_.at(id).store; }
  storage::MemoryWal& wal(ServerId id) { return *hosts_.at(id).wal; }
  storage::MemorySnapshotStore& snapshot_store(ServerId id) { return *hosts_.at(id).snaps; }

  /// Entries applied (committed) by a host, in order, across incarnations.
  const std::vector<rpc::LogEntry>& applied(ServerId id) const { return hosts_.at(id).applied; }

  // --- membership --------------------------------------------------------------
  /// Provisions a brand-new host (empty disk) and boots it as a self-learner:
  /// it knows only itself, holds no vote, and waits for a leader to replicate
  /// (or snapshot) state into it. Joining the consensus group is a separate
  /// step — propose_conf_change(kAddLearner) makes the leader start feeding
  /// it, kPromote makes it a voter. Mirrors racking a fresh machine before
  /// running the AddServer API against the cluster.
  void add_host(ServerId id);

  /// Routes a configuration change through the current leader. Returns the
  /// core's verdict; status kNotLeader (the default) when the cluster is
  /// leaderless. One change at a time: a kBusy reply means a joint config is
  /// still in flight — retry after it commits.
  raft::RaftNode::ConfChangeResult propose_conf_change(const raft::ConfChange& change);

  // --- fault injection -------------------------------------------------------
  /// Kills a node: it stops processing and loses volatile state; its store
  /// and WAL survive for recover().
  void crash(ServerId id);

  /// Restarts a crashed node from its durable state (including its stored
  /// snapshot, when one exists: the log rebases onto it and the restore hook
  /// rebuilds the application state machine from its payload).
  void recover(ServerId id);

  // --- snapshotting -----------------------------------------------------------
  /// Takes a snapshot of `id` at its applied index and compacts its log and
  /// WAL. Returns the compacted-through index, or nullopt when the node is
  /// down or nothing new is compactable.
  std::optional<LogIndex> trigger_snapshot(ServerId id);

  /// Provider of the serialized application state of `id` at its current
  /// applied index (KvCluster installs one). Unset: snapshots carry an empty
  /// payload — the consensus-level mechanics still work, there is simply no
  /// application state to preserve.
  void set_snapshot_state_hook(std::function<std::vector<std::uint8_t>(ServerId)> hook) {
    snapshot_state_hook_ = std::move(hook);
  }

  /// Invoked when a node installs a leader snapshot mid-run and when a
  /// recovering node boots from a stored one — always *before* any
  /// subsequently committed entries reach the apply hook.
  void set_snapshot_restore_hook(
      std::function<void(ServerId, const storage::Snapshot&)> hook) {
    snapshot_restore_hook_ = std::move(hook);
  }

  // --- driving ----------------------------------------------------------------
  /// Runs until `pred` matches an emitted NodeEvent, or `deadline` passes.
  /// Returns the matching event, or nullopt on timeout.
  std::optional<raft::NodeEvent> run_until_event(
      std::function<bool(const raft::NodeEvent&)> pred, TimePoint deadline);

  /// Runs until some node becomes leader; returns it (kNoServer on timeout).
  ServerId run_until_leader(TimePoint deadline);

  /// Submits a command through the current leader (nullopt when leaderless).
  std::optional<LogIndex> submit_via_leader(std::vector<std::uint8_t> command);

  /// Runs until every alive node has applied index >= `index`.
  bool run_until_applied(LogIndex index, TimePoint deadline);

  // --- linearizable reads -----------------------------------------------------
  /// Submits a linearizable read through node `id` (it must currently lead;
  /// nullopt otherwise or when it is down). Records the read in the probe
  /// ledger with its *commit floor* — the highest commit index any alive
  /// node has at issue time, which is exactly what a linearizable read must
  /// observe — so the InvariantChecker can audit the grant when it fires.
  std::optional<raft::ReadId> submit_read(ServerId id);

  /// Commit floor recorded for an outstanding read probe (see submit_read);
  /// nullopt once granted/rejected or for an unknown ticket.
  std::optional<LogIndex> read_floor(ServerId id, raft::ReadId read) const;

  /// Registers a listener invoked from pump for every read completion,
  /// *after* the same pump applied all newly committed entries — so a
  /// listener that serves `ok` grants from the replica state machine always
  /// observes state at or beyond the grant's read index. KvCluster serves
  /// clients through one; the InvariantChecker audits through another. The
  /// probe ledger entry is erased right after the listeners run. Returns a
  /// handle for remove_read_listener.
  std::size_t add_read_listener(std::function<void(ServerId, const raft::ReadGrant&)> listener);
  void remove_read_listener(std::size_t handle);

  // --- observation -------------------------------------------------------------
  /// Registers a persistent event listener (fires for every NodeEvent).
  /// Returns a handle for remove_event_listener; listeners fire in
  /// registration order.
  std::size_t add_event_listener(std::function<void(const raft::NodeEvent&)> listener);

  /// Detaches a listener registered with add_event_listener. Scenario
  /// machinery (PlanRuntime) attaches per-experiment listeners and must not
  /// leak them into later experiments on the same long-lived cluster.
  void remove_event_listener(std::size_t handle);

  /// Every event emitted since construction (or the last clear), in order.
  const std::vector<raft::NodeEvent>& event_log() const { return event_log_; }

  /// Drops recorded events; long-lived measurement series call this between
  /// runs so scans and memory stay bounded. Listeners are unaffected.
  void clear_event_log() { event_log_.clear(); }

  /// Per-application callback (e.g. to drive a KV state machine).
  void set_apply_hook(std::function<void(ServerId, const rpc::LogEntry&)> hook) {
    apply_hook_ = std::move(hook);
  }

  /// Drains the node's pending Ready batches through its driver and
  /// reschedules its timers. Called automatically after every delivery/tick;
  /// public for tests that poke nodes directly.
  void pump(ServerId id);

  /// The driver consuming a node's Ready batches (tests attach phase hooks
  /// and Ready observers through it). Throws when the node is crashed.
  SimDriver& driver(ServerId id);

 private:
  struct Host {
    std::unique_ptr<storage::MemoryStateStore> store;
    std::unique_ptr<storage::MemoryWal> wal;
    std::unique_ptr<storage::MemorySnapshotStore> snaps;
    /// Bootstrap membership for this host's incarnations: the seed voter set
    /// for construction-time hosts, {self} as a learner for joined ones.
    /// Durable config entries (log/snapshot) override it on recovery.
    rpc::Membership base;
    /// Per-incarnation Ready consumer; rebuilt (like the node) on recover.
    std::unique_ptr<SimDriver> driver;
    std::unique_ptr<raft::RaftNode> node;
    bool alive = false;
    TimePoint scheduled_wakeup = kNever;
    std::vector<rpc::LogEntry> applied;
  };

  void build_node(ServerId id);
  void ensure_timer(ServerId id);
  void deliver(const rpc::Envelope& envelope);
  void on_node_event(const raft::NodeEvent& event);

  ClusterOptions options_;
  std::vector<ServerId> members_;
  std::size_t seed_size_ = 0;
  std::unique_ptr<EventLoop> owned_loop_;  ///< null when options_.loop is external
  EventLoop* loop_;
  Rng rng_;
  std::unique_ptr<SimNetwork> network_;
  std::map<ServerId, Host> hosts_;
  std::vector<raft::NodeEvent> event_log_;
  std::map<std::size_t, std::function<void(const raft::NodeEvent&)>> listeners_;
  std::size_t next_listener_handle_ = 0;
  std::function<bool(const raft::NodeEvent&)> stop_predicate_;
  std::optional<raft::NodeEvent> stop_event_;
  std::function<void(ServerId, const rpc::LogEntry&)> apply_hook_;
  std::map<std::size_t, std::function<void(ServerId, const raft::ReadGrant&)>> read_listeners_;
  std::size_t next_read_listener_handle_ = 0;
  std::function<std::vector<std::uint8_t>(ServerId)> snapshot_state_hook_;
  std::function<void(ServerId, const storage::Snapshot&)> snapshot_restore_hook_;
  /// Outstanding read probes: (server, read id) -> commit floor at issue.
  std::map<std::pair<ServerId, raft::ReadId>, LogIndex> read_probes_;
  bool started_ = false;
};

}  // namespace escape::sim
