#include "sim/scenario.h"

#include <algorithm>
#include <map>
#include <memory>
#include <stdexcept>

#include "common/logging.h"

namespace escape::sim {

std::string trace_line(const raft::NodeEvent& event) {
  using Kind = raft::NodeEvent::Kind;
  std::string line = std::to_string(event.at) + " " + server_name(event.node);
  switch (event.kind) {
    case Kind::kCampaignStarted:
      line += " campaign term=" + std::to_string(event.term);
      break;
    case Kind::kBecameLeader:
      line += " leader term=" + std::to_string(event.term);
      break;
    case Kind::kSteppedDown:
      line += " step-down term=" + std::to_string(event.term);
      break;
    case Kind::kConfigAdopted:
      line += " config P=" + std::to_string(event.config.priority) +
              " clock=" + std::to_string(event.config.conf_clock);
      break;
    case Kind::kCommitAdvanced:
      line += " commit index=" + std::to_string(event.index);
      break;
    case Kind::kVoteGranted:
      line += " vote->" + server_name(event.peer) + " term=" + std::to_string(event.term);
      break;
    case Kind::kSnapshotTaken:
      line += " snapshot index=" + std::to_string(event.index);
      break;
    case Kind::kSnapshotInstalled:
      line += " install-snapshot index=" + std::to_string(event.index);
      break;
    case Kind::kReadGranted:
      line += " read-grant index=" + std::to_string(event.index) +
              (event.via_lease ? " lease" : " read-index");
      break;
    case Kind::kReadRejected:
      line += " read-reject index=" + std::to_string(event.index);
      break;
    case Kind::kMembershipChanged:
      line += " membership index=" + std::to_string(event.index);
      break;
  }
  return line;
}

FailoverResult analyze_window(const std::vector<raft::NodeEvent>& log, TimePoint start,
                              TimePoint end, std::size_t begin_index,
                              std::size_t end_index) {
  FailoverResult result;
  const std::size_t stop = std::min(end_index, log.size());
  const raft::NodeEvent* elected = nullptr;
  // Boundary instants belong to the window ([start, end], matching the
  // legacy e.at >= crash_at scan and the runner's stop predicate): a win
  // dispatched in the same virtual-time tick as the fault still converges
  // the episode.
  for (std::size_t i = begin_index; i < stop; ++i) {
    const auto& e = log[i];
    if (e.at < start || e.at > end) continue;
    if (e.kind == raft::NodeEvent::Kind::kBecameLeader) {
      elected = &e;
      break;
    }
  }
  const TimePoint window_end = elected ? elected->at : end;
  TimePoint first_campaign = kNever;
  for (std::size_t i = begin_index; i < stop; ++i) {
    const auto& e = log[i];
    if (e.at < start || e.at > window_end) continue;
    if (e.kind == raft::NodeEvent::Kind::kCampaignStarted) {
      ++result.campaigns;
      if (first_campaign == kNever) first_campaign = e.at;
    }
  }
  if (elected) {
    result.converged = true;
    result.new_leader = elected->node;
    result.new_term = elected->term;
    result.total = elected->at - start;
    if (first_campaign != kNever && first_campaign <= elected->at) {
      result.detection = first_campaign - start;
      result.election = elected->at - first_campaign;
    } else {
      // The winning campaign predated the episode start (possible under
      // heavy message loss); attribute everything to the election period.
      result.election = result.total;
    }
  }
  return result;
}

std::vector<FailoverResult> analyze_episodes(const std::vector<raft::NodeEvent>& log,
                                             const std::vector<PlanMarker>& markers) {
  std::vector<const PlanMarker*> starts;
  for (const auto& m : markers) {
    if (m.episode) starts.push_back(&m);
  }
  std::vector<FailoverResult> results;
  for (std::size_t i = 0; i < starts.size(); ++i) {
    const bool last = i + 1 == starts.size();
    const TimePoint end = last ? kNever : starts[i + 1]->at;
    const std::size_t end_index =
        last ? static_cast<std::size_t>(-1) : starts[i + 1]->log_index;
    results.push_back(analyze_window(log, starts[i]->at, end, starts[i]->log_index,
                                     end_index));
  }
  return results;
}

ServerId bootstrap(SimCluster& cluster, Duration max_wait, Duration settle) {
  if (!cluster.started()) cluster.start_all();
  const TimePoint deadline = cluster.loop().now() + max_wait;
  while (cluster.loop().now() < deadline) {
    if (cluster.run_until_leader(deadline) == kNoServer) return kNoServer;
    // Let heartbeats flow and (for ESCAPE) patrol rounds distribute fresh
    // configurations before any experiment begins.
    cluster.loop().run_until(cluster.loop().now() + settle);
    // Under message loss, leadership can be in flux at the settle boundary;
    // only return once a leader is in place at observation time.
    if (const ServerId leader = cluster.leader(); leader != kNoServer) return leader;
  }
  return cluster.leader();
}

// --- ScenarioRunner ----------------------------------------------------------

ScenarioRunner::ScenarioRunner(ClusterOptions options)
    : owned_(std::make_unique<SimCluster>(std::move(options))),
      cluster_(*owned_),
      runtime_(cluster_) {}

ScenarioRunner::ScenarioRunner(SimCluster& cluster) : cluster_(cluster), runtime_(cluster_) {}

ServerId ScenarioRunner::bootstrap(Duration max_wait, Duration settle) {
  return sim::bootstrap(cluster_, max_wait, settle);
}

void ScenarioRunner::run_plan(const FaultPlan& plan, Duration drain) {
  const TimePoint end = runtime_.install(plan);
  cluster_.loop().run_until(end + drain);
}

FailoverResult ScenarioRunner::run_failover_plan(const FaultPlan& plan, Duration max_wait) {
  return run_failover_plan_on(runtime_, plan, max_wait);
}

FailoverResult ScenarioRunner::run_failover_plan_on(PlanRuntime& runtime,
                                                    const FaultPlan& plan,
                                                    Duration max_wait) {
  const TimePoint start = cluster_.loop().now();
  const std::size_t marker_floor = runtime.markers().size();
  runtime.install(plan);

  auto episode_marker = [&]() -> const PlanMarker* {
    const auto& markers = runtime.markers();
    for (std::size_t i = marker_floor; i < markers.size(); ++i) {
      if (markers[i].episode) return &markers[i];
    }
    return nullptr;
  };

  const auto pred = [&](const raft::NodeEvent& e) {
    if (e.kind != raft::NodeEvent::Kind::kBecameLeader) return false;
    // The marker only exists once the fault has executed, so the win that
    // *triggered* a deferred crash can never satisfy this.
    const PlanMarker* m = episode_marker();
    return m != nullptr && e.at >= m->at;
  };

  // A fault firing on schedule gets exactly `max_wait` from the episode
  // start (every planned offset is <= span), matching the legacy drivers'
  // per-election timeout semantics.
  TimePoint deadline = start + plan.span() + max_wait;
  auto elected = cluster_.run_until_event(pred, deadline);
  const PlanMarker* m = episode_marker();
  if (!elected && m != nullptr && m->at + max_wait > deadline) {
    // The fault fired late (a deferred crash waited out an election): grant
    // the measured election the full budget from the episode start, as the
    // legacy series driver did after its run_until_leader phase.
    deadline = m->at + max_wait;
    elected = cluster_.run_until_event(pred, deadline);
    m = episode_marker();
  }

  if (m == nullptr) return {};  // the triggering fault never fired: unconverged
  // Enforce the per-election budget in the measurement even when the fault
  // fired well before the plan's span ran out: a win past episode start +
  // max_wait is a timeout by the paper's definition, not a conversion.
  const TimePoint budget_end = m->at + max_wait;
  if (elected && elected->at <= budget_end) {
    return analyze_window(cluster_.event_log(), m->at, elected->at, m->log_index);
  }
  return analyze_window(cluster_.event_log(), m->at, std::min(deadline, budget_end),
                        m->log_index);
}

FailoverResult ScenarioRunner::measure_failover(Duration max_wait) {
  if (cluster_.leader() == kNoServer) {
    throw std::logic_error("measure_failover: no leader to crash");
  }
  FaultPlan plan;
  plan.at(0, CrashNode{NodeRef::leader()});
  return run_failover_plan(plan, max_wait);
}

FailoverResult ScenarioRunner::measure_competition(const CompetitionOptions& options,
                                                   Duration max_wait) {
  const ServerId leader = cluster_.leader();
  if (leader == kNoServer) {
    throw std::logic_error("measure_failover_with_competition: no leader");
  }
  std::vector<ServerId> followers;
  for (ServerId id : cluster_.members()) {
    if (id != leader && cluster_.alive(id)) followers.push_back(id);
  }
  if (followers.size() < 2) {
    throw std::logic_error("competition scenario needs at least two followers");
  }
  // Rivals: the two followers whose configurations are most likely to expire
  // first (highest priority). Under vanilla Raft all priorities are 0 and the
  // id tiebreak picks a deterministic pair.
  std::sort(followers.begin(), followers.end(), [&](ServerId a, ServerId b) {
    const auto pa = cluster_.node(a).policy().current_config().priority;
    const auto pb = cluster_.node(b).policy().current_config().priority;
    if (pa != pb) return pa > pb;
    return a < b;
  });
  const ServerId rival_a = followers[0];
  const ServerId rival_b = followers[1];

  // One shared timeout per potentially contested expiry (index 0 doubles as
  // the pre-crash value), plus the decisive divergent one at index `phases`.
  Rng rng(cluster_.seed() ^ 0xF160F160ull);
  const int phases = options.phases;
  std::vector<Duration> shared;
  for (int i = 0; i <= phases; ++i) {
    shared.push_back(rng.uniform_int(options.phase_timeout_lo, options.phase_timeout_hi));
  }

  // The competition's scripts and biased topology run on their own scoped
  // runtime: its construction-time snapshot is the cluster's *current*
  // state, so restoring afterwards puts back exactly what the caller had
  // (loss knobs, link faults, a swapped latency model) instead of the
  // runner's construction-time baseline.
  PlanRuntime competition(cluster_);

  // The rival scripts learn the crash instant from the runtime's episode
  // marker (kNever until the planned crash executes).
  SimCluster* cl = &cluster_;
  PlanRuntime* rt = &competition;
  auto rival_script = [&](bool loser) -> raft::ElectionPolicy::TimeoutOverride {
    auto arms = std::make_shared<int>(0);
    return [cl, rt, arms, shared, phases, loser, divergence = options.divergence,
            grace = options.inflight_grace]() -> std::optional<Duration> {
      int i = 0;
      // Arms within the grace window stem from heartbeats already in
      // flight at the crash; they re-arm with the phase-1 value.
      const TimePoint crash_at = rt->last_episode_at();
      if (crash_at != kNever && cl->loop().now() >= crash_at + grace) {
        i = ++*arms;  // post-crash arms walk the script
      }
      const auto idx = static_cast<std::size_t>(std::min(i, phases));
      Duration v = shared[idx];
      if (i >= phases && loser) v += divergence;
      return v;
    };
  };

  FaultPlan plan;
  plan.at(0, ScriptTimeout{NodeRef::id(rival_a), rival_script(/*loser=*/false)});
  plan.at(0, ScriptTimeout{NodeRef::id(rival_b), rival_script(/*loser=*/true)});
  std::map<ServerId, ServerId> favorite;  // bystander -> preferred rival
  bool flip = false;
  for (ServerId id : followers) {
    if (id == rival_a || id == rival_b) continue;
    plan.at(0, ScriptTimeout{NodeRef::id(id),
                             [timeout = options.bystander_timeout]() -> std::optional<Duration> {
                               return timeout;
                             }});
    favorite[id] = flip ? rival_a : rival_b;
    flip = !flip;
  }

  // Deterministic vote splitting: each bystander hears its favorite rival
  // first in every contested phase, so neither rival reaches a majority
  // until the decisive divergent timeout.
  const LatencyFn base_latency = cluster_.network().options().latency;
  plan.at(0, SwapLatency{[favorite, rival_a, rival_b, base_latency,
                          favored = options.favored_latency,
                          unfavored = options.unfavored_latency](ServerId from, ServerId to,
                                                                 Rng& latency_rng) {
    if (from == rival_a || from == rival_b) {
      const auto it = favorite.find(to);
      if (it != favorite.end()) {
        return it->second == from ? favored : unfavored;
      }
    }
    return base_latency(from, to, latency_rng);
  }});

  // Let every follower re-arm with a scripted value, then fail the leader.
  plan.at(options.rearm_window, CrashNode{NodeRef::leader()});

  auto result = run_failover_plan_on(competition, plan, max_wait);

  // Scoped restore: the scripted topology and timeouts must not leak into
  // the next run of a series (the local runtime's destructor would also
  // restore, covering exceptional exits).
  competition.restore_overrides();
  return result;
}

std::vector<FailoverResult> ScenarioRunner::run_series(const SeriesOptions& options) {
  std::vector<FailoverResult> results;
  if (sim::bootstrap(cluster_) == kNoServer) return results;
  for (std::size_t run = 0; run < options.runs; ++run) {
    // Per-run reset keeps event-log scans and memory bounded across a
    // 1000-run series.
    cluster_.clear_event_log();
    runtime_.clear_markers();

    FaultPlan plan;
    if (options.traffic_window > 0) {
      plan.at(0, TrafficBurst{options.traffic_window, options.traffic_interval});
    }
    // Crash whoever leads when the traffic window closes; if leadership is
    // momentarily vacant the crash defers to the next election win.
    plan.at(options.traffic_window, CrashNode{NodeRef::leader()});
    results.push_back(run_failover_plan(plan, options.max_wait));

    // A run that timed out leaderless leaves its crash trigger armed; defuse
    // it so the settle window's election is not killed with no one left to
    // recover the victim.
    runtime_.disarm_deferred_crash();
    const ServerId victim = runtime_.last_crashed();
    if (victim != kNoServer && !cluster_.alive(victim)) cluster_.recover(victim);
    cluster_.loop().run_until(cluster_.loop().now() + options.settle);
  }
  return results;
}

std::vector<FailoverResult> ScenarioRunner::episodes() const {
  return analyze_episodes(cluster_.event_log(), runtime_.markers());
}

std::vector<std::string> ScenarioRunner::trace() const {
  std::vector<std::string> lines;
  lines.reserve(cluster_.event_log().size());
  for (const auto& e : cluster_.event_log()) lines.push_back(trace_line(e));
  return lines;
}

// --- legacy free-function drivers -------------------------------------------

FailoverResult measure_failover(SimCluster& cluster, Duration max_wait) {
  ScenarioRunner runner(cluster);
  return runner.measure_failover(max_wait);
}

FailoverResult measure_failover_with_competition(SimCluster& cluster,
                                                 const CompetitionOptions& options,
                                                 Duration max_wait) {
  ScenarioRunner runner(cluster);
  return runner.measure_competition(options, max_wait);
}

std::size_t drive_traffic(SimCluster& cluster, Duration duration, Duration interval,
                          std::size_t payload_bytes) {
  ScenarioRunner runner(cluster);
  FaultPlan plan;
  plan.at(0, TrafficBurst{duration, interval, payload_bytes});
  runner.run_plan(plan);
  return runner.runtime().traffic_submitted();
}

std::vector<FailoverResult> measure_failover_series(SimCluster& cluster,
                                                    const SeriesOptions& options) {
  ScenarioRunner runner(cluster);
  return runner.run_series(options);
}

}  // namespace escape::sim
