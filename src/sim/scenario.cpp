#include "sim/scenario.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "common/logging.h"

namespace escape::sim {

ServerId bootstrap(SimCluster& cluster, Duration max_wait, Duration settle) {
  if (!cluster.started()) cluster.start_all();
  const TimePoint deadline = cluster.loop().now() + max_wait;
  while (cluster.loop().now() < deadline) {
    if (cluster.run_until_leader(deadline) == kNoServer) return kNoServer;
    // Let heartbeats flow and (for ESCAPE) patrol rounds distribute fresh
    // configurations before any experiment begins.
    cluster.loop().run_until(cluster.loop().now() + settle);
    // Under message loss, leadership can be in flux at the settle boundary;
    // only return once a leader is in place at observation time.
    if (const ServerId leader = cluster.leader(); leader != kNoServer) return leader;
  }
  return cluster.leader();
}

FailoverResult measure_failover(SimCluster& cluster, Duration max_wait) {
  const ServerId old_leader = cluster.leader();
  if (old_leader == kNoServer) throw std::logic_error("measure_failover: no leader to crash");
  const TimePoint crash_at = cluster.loop().now();
  cluster.crash(old_leader);

  const auto elected = cluster.run_until_event(
      [](const raft::NodeEvent& e) { return e.kind == raft::NodeEvent::Kind::kBecameLeader; },
      crash_at + max_wait);

  FailoverResult result;
  TimePoint first_campaign = kNever;
  for (const auto& e : cluster.event_log()) {
    if (e.at < crash_at) continue;
    if (e.kind == raft::NodeEvent::Kind::kCampaignStarted) {
      ++result.campaigns;
      if (first_campaign == kNever) first_campaign = e.at;
    }
  }
  if (elected) {
    result.converged = true;
    result.new_leader = elected->node;
    result.new_term = elected->term;
    result.total = elected->at - crash_at;
    if (first_campaign != kNever && first_campaign <= elected->at) {
      result.detection = first_campaign - crash_at;
      result.election = elected->at - first_campaign;
    } else {
      // The winning campaign predated the crash (possible under heavy
      // message loss); attribute everything to the election period.
      result.election = result.total;
    }
  }
  return result;
}

FailoverResult measure_failover_with_competition(SimCluster& cluster,
                                                 const CompetitionOptions& options,
                                                 Duration max_wait) {
  const ServerId leader = cluster.leader();
  if (leader == kNoServer) {
    throw std::logic_error("measure_failover_with_competition: no leader");
  }
  std::vector<ServerId> followers;
  for (ServerId id : cluster.members()) {
    if (id != leader && cluster.alive(id)) followers.push_back(id);
  }
  if (followers.size() < 2) {
    throw std::logic_error("competition scenario needs at least two followers");
  }
  // Rivals: the two followers whose configurations are most likely to expire
  // first (highest priority). Under vanilla Raft all priorities are 0 and the
  // id tiebreak picks a deterministic pair.
  std::sort(followers.begin(), followers.end(), [&](ServerId a, ServerId b) {
    const auto pa = cluster.node(a).policy().current_config().priority;
    const auto pb = cluster.node(b).policy().current_config().priority;
    if (pa != pb) return pa > pb;
    return a < b;
  });
  const ServerId rival_a = followers[0];
  const ServerId rival_b = followers[1];

  // One shared timeout per potentially contested expiry (index 0 doubles as
  // the pre-crash value), plus the decisive divergent one at index `phases`.
  Rng rng(cluster.seed() ^ 0xF160F160ull);
  const int phases = options.phases;
  std::vector<Duration> shared;
  for (int i = 0; i <= phases; ++i) {
    shared.push_back(rng.uniform_int(options.phase_timeout_lo, options.phase_timeout_hi));
  }

  auto crash_time = std::make_shared<TimePoint>(kNever);
  auto install_rival = [&](ServerId id, bool loser) {
    auto arms = std::make_shared<int>(0);
    cluster.node(id).mutable_policy().set_timeout_override(
        [&cluster, crash_time, arms, shared, phases, loser, divergence = options.divergence,
         grace = options.inflight_grace]() -> std::optional<Duration> {
          int i = 0;
          // Arms within the grace window stem from heartbeats already in
          // flight at the crash; they re-arm with the phase-1 value.
          if (*crash_time != kNever && cluster.loop().now() >= *crash_time + grace) {
            i = ++*arms;  // post-crash arms walk the script
          }
          const auto idx = static_cast<std::size_t>(std::min(i, phases));
          Duration v = shared[idx];
          if (i >= phases && loser) v += divergence;
          return v;
        });
  };
  install_rival(rival_a, /*loser=*/false);
  install_rival(rival_b, /*loser=*/true);
  std::map<ServerId, ServerId> favorite;  // bystander -> preferred rival
  bool flip = false;
  for (ServerId id : followers) {
    if (id == rival_a || id == rival_b) continue;
    cluster.node(id).mutable_policy().set_timeout_override(
        [timeout = options.bystander_timeout]() -> std::optional<Duration> { return timeout; });
    favorite[id] = flip ? rival_a : rival_b;
    flip = !flip;
  }

  // Deterministic vote splitting: each bystander hears its favorite rival
  // first in every contested phase, so neither rival reaches a majority
  // until the decisive divergent timeout.
  const LatencyFn base_latency = cluster.network().options().latency;
  cluster.network().options().latency =
      [favorite, rival_a, rival_b, base_latency, favored = options.favored_latency,
       unfavored = options.unfavored_latency](ServerId from, ServerId to, Rng& rng) {
        if (from == rival_a || from == rival_b) {
          const auto it = favorite.find(to);
          if (it != favorite.end()) {
            return it->second == from ? favored : unfavored;
          }
        }
        return base_latency(from, to, rng);
      };

  // Let every follower re-arm with a scripted value, then fail the leader.
  cluster.loop().run_until(cluster.loop().now() + options.rearm_window);
  *crash_time = cluster.loop().now();
  auto result = measure_failover(cluster, max_wait);

  // The scripts reference this stack frame's options/cluster; clear them
  // before the scenario returns (nodes may outlive the measurement).
  cluster.network().options().latency = base_latency;
  for (ServerId id : followers) {
    if (cluster.alive(id)) cluster.node(id).mutable_policy().set_timeout_override(nullptr);
  }
  return result;
}

std::vector<FailoverResult> measure_failover_series(SimCluster& cluster,
                                                    const SeriesOptions& options) {
  std::vector<FailoverResult> results;
  if (bootstrap(cluster) == kNoServer) return results;
  for (std::size_t run = 0; run < options.runs; ++run) {
    cluster.clear_event_log();
    if (options.traffic_window > 0) {
      drive_traffic(cluster, options.traffic_window, options.traffic_interval);
    }
    if (cluster.leader() == kNoServer &&
        cluster.run_until_leader(cluster.loop().now() + options.max_wait) == kNoServer) {
      results.push_back({});  // cluster wedged: record as unconverged
      continue;
    }
    const ServerId victim = cluster.leader();
    results.push_back(measure_failover(cluster, options.max_wait));
    cluster.recover(victim);
    cluster.loop().run_until(cluster.loop().now() + options.settle);
  }
  return results;
}

std::size_t drive_traffic(SimCluster& cluster, Duration duration, Duration interval,
                          std::size_t payload_bytes) {
  const TimePoint end = cluster.loop().now() + duration;
  std::size_t submitted = 0;
  while (cluster.loop().now() < end) {
    if (const ServerId leader = cluster.leader(); leader != kNoServer) {
      std::vector<std::uint8_t> payload(payload_bytes,
                                        static_cast<std::uint8_t>(submitted & 0xFF));
      if (cluster.node(leader).submit(std::move(payload), cluster.loop().now())) {
        ++submitted;
        cluster.pump(leader);
      }
    }
    cluster.loop().run_until(std::min(end, cluster.loop().now() + interval));
  }
  return submitted;
}

}  // namespace escape::sim
