// SimCheck: randomized scenario fuzzing for the simulator.
//
// The registry's hand-written scenarios only exercise the fault schedules we
// thought to write. SimCheck composes *legal* random FaultPlans from the
// full action vocabulary — crashes (direct and crash-the-leader), symmetric
// and one-way link cuts, partial isolation, node degradation, loss-rate
// storms, planned leadership transfers, traffic bursts, snapshot actions,
// linearizable read storms (client-read) — runs each
// under the InvariantChecker (listeners during the run, deep_check() at
// quiescence), and replays the trial to verify same-seed trace determinism.
//
// Every trial is a pure function of one scenario seed: cluster size, policy,
// baseline loss, cluster RNG seed, and the whole fault schedule all derive
// from it. A violation therefore reproduces from the seed alone, and
// SimCheck reports the one-line repro command (`sim_check --scenario-seed N`)
// for every failure. Trials fan out over sim::TrialPool, so a thousand-trial
// fuzz run costs wall-clock time of trials/threads.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/scenario_registry.h"

namespace escape::sim {

/// Generation and execution knobs. The defaults define the repro contract:
/// `sim_check --scenario-seed N` regenerates a trial bit-exactly only under
/// the same generation knobs, so CI and the CLI stick to the defaults.
struct SimCheckOptions {
  std::size_t trials = 100;
  std::uint64_t root_seed = 0xE5CA9Eull;  ///< trial i uses stream_seed(root, i)
  std::size_t threads = 0;                ///< 0 = TrialPool::default_threads()
  std::size_t min_servers = 3;
  std::size_t max_servers = 7;
  std::size_t max_faults = 8;        ///< fault actions sampled per plan
  Duration drain = from_ms(20'000);  ///< run-out after the last planned action
  bool check_determinism = true;     ///< replay every trial, compare traces
  bool announce_failures = true;     ///< print repro lines to stderr when found
  /// Per-action sampling-weight overrides, keyed by the names in
  /// default_action_weights(); entries replace the default weight (0 retires
  /// an action from the vocabulary). Non-default weights change the
  /// seed -> schedule mapping, so repro lines must quote the same --actions.
  std::map<std::string, int> action_weights;
};

/// The fuzz vocabulary's default sampling weights, keyed by action name
/// ("crash", "cut-link", ..., "snapshot", "snapshot-crash"). The CLI's
/// --actions flag validates its overrides against these keys.
const std::map<std::string, int>& default_action_weights();

/// Sum of the effective weights after applying `overrides` to the defaults
/// (negative overrides clamp to 0). A total of 0 retires every action
/// family — make_fuzz_case rejects it, and callers validating user input
/// should too, with the same arithmetic.
int effective_action_weight_total(const std::map<std::string, int>& overrides);

/// Everything one fuzzed trial is built from, derived purely from
/// `scenario_seed` (see make_fuzz_case).
struct FuzzCase {
  std::uint64_t scenario_seed = 0;
  ScenarioParams params;  ///< servers / policy / baseline loss / cluster seed
  FaultPlan plan;
};

/// The full record of one failing trial.
struct SimCheckFailure {
  std::uint64_t scenario_seed = 0;
  std::string policy;
  std::size_t servers = 0;
  bool bootstrapped = true;     ///< false: no leader before any fault fired
  bool trace_diverged = false;  ///< same-seed replay produced a different trace
  std::vector<std::string> violations;  ///< invariant violations (live + deep)
  std::string repro;                    ///< one-line repro command
};

/// Aggregate over a fuzz run; counters are summed in trial-index order, so
/// the whole struct is identical across thread counts.
struct SimCheckResult {
  std::size_t trials = 0;
  std::size_t executed_actions = 0;    ///< plan actions the runtimes executed
  std::size_t episodes = 0;            ///< measured failover episodes
  std::size_t converged_episodes = 0;  ///< episodes that elected a leader
  std::size_t traffic_submitted = 0;   ///< client commands across all trials
  /// Scheduled plan actions by name across every trial (closing-sweep heals
  /// included) — the coverage evidence that each vocabulary family actually
  /// ran; CI prints it so a silently retired action is visible in the log.
  std::map<std::string, std::size_t> action_histogram;
  std::vector<SimCheckFailure> failures;
  bool ok() const { return failures.empty(); }
};

/// Derives the complete fuzz case for `scenario_seed`: cluster shape, policy,
/// baseline loss, cluster seed, and a legal fault schedule (crashes never
/// exceed a minority at plan-construction time, every fault is healed and
/// every server recovered before the drain, so deep_check() runs against a
/// whole cluster).
FuzzCase make_fuzz_case(std::uint64_t scenario_seed, const SimCheckOptions& options = {});

/// One-line renderings of a plan's schedule ("2200ms crash(leader)"), for
/// the CLI's verbose repro output.
std::vector<std::string> describe_plan(const FaultPlan& plan);

/// Runs the single trial for `scenario_seed` (generation + execution +
/// optional determinism replay) and returns the scenario report of the first
/// execution. `failure`, when non-null, receives the failure record (and is
/// left untouched for a passing trial).
ScenarioReport run_fuzz_trial(std::uint64_t scenario_seed, const SimCheckOptions& options,
                              SimCheckFailure* failure = nullptr);

/// The fuzzer: `options.trials` independent trials over a TrialPool.
/// Deterministic in (root_seed, trials, generation knobs) — thread count
/// changes wall-clock only.
SimCheckResult run_sim_check(const SimCheckOptions& options = {});

}  // namespace escape::sim
