// Parallel Monte-Carlo trial engine.
//
// The paper's experiment points are aggregates over hundreds to a thousand
// independent seeded trials; each trial owns its whole world (EventLoop,
// SimCluster, RNG stream), so trials are embarrassingly parallel. TrialPool
// runs them on a fixed-size std::thread pool in the FoundationDB
// deterministic-simulation mold: parallelism changes only the wall clock,
// never the numbers.
//
// The determinism contract rests on two rules enforced here:
//   1. trial i draws its randomness from Rng::stream(root_seed, i) — a pure
//      derivation (common/rng.h), independent of scheduling order; and
//   2. results are aggregated in trial-index order (map_seeded returns a
//      vector indexed by trial), never in completion order.
// Together they make every aggregate bit-identical across thread counts.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/rng.h"

namespace escape::sim {

/// A fixed-size worker pool for independent seeded trials.
class TrialPool {
 public:
  /// Spawns `threads - 1` workers (the calling thread participates in every
  /// batch, so `threads == 1` runs batches inline with no threads at all).
  /// `threads == 0` resolves via default_threads().
  explicit TrialPool(std::size_t threads = 0);
  ~TrialPool();

  TrialPool(const TrialPool&) = delete;
  TrialPool& operator=(const TrialPool&) = delete;

  /// Degree of parallelism, including the calling thread.
  std::size_t threads() const { return threads_; }

  /// ESCAPE_BENCH_THREADS when set to a positive integer, otherwise the
  /// hardware concurrency (at least 1).
  static std::size_t default_threads();

  /// Process-wide pool sized by default_threads(); shared by the bench
  /// harnesses so one sweep reuses one set of workers.
  static TrialPool& shared();

  /// Runs fn(0), fn(1), ..., fn(count - 1), each exactly once, distributed
  /// over the pool. Blocks until every trial finished; the first exception
  /// any trial threw is rethrown (remaining trials still run — trials are
  /// independent by construction). `fn` must not touch shared mutable state.
  ///
  /// The pool carries one batch at a time. Re-entrant calls (a trial that
  /// itself runs a batch) and concurrent top-level callers both degrade to
  /// inline execution on their own thread — never blocking on, or stealing
  /// from, a batch already in flight.
  void run(std::size_t count, const std::function<void(std::size_t)>& fn);

  /// Seeded fan-out: trial i computes fn(i, stream_seed(root_seed, i)) and
  /// the results come back in trial-index order. This is the canonical
  /// thread-count-invariant shape (SimCheck runs on it); bench sweeps that
  /// must preserve historical per-trial seed schemes use run() directly and
  /// apply the same two rules by hand.
  template <typename R>
  std::vector<R> map_seeded(std::size_t count, std::uint64_t root_seed,
                            const std::function<R(std::size_t, std::uint64_t)>& fn) {
    std::vector<R> out(count);
    run(count, [&](std::size_t i) { out[i] = fn(i, stream_seed(root_seed, i)); });
    return out;
  }

 private:
  void worker_main();
  void drain_current_batch();
  static void run_inline(std::size_t count, const std::function<void(std::size_t)>& fn);

  const std::size_t threads_;
  std::vector<std::thread> workers_;

  // Batch state, all guarded by mutex_. Trials run for milliseconds of
  // wall clock each, so a mutex hit per claim/finish is noise.
  std::mutex mutex_;
  std::condition_variable work_cv_;  ///< workers wait here for a new batch
  std::condition_variable done_cv_;  ///< run() waits here for completion
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t count_ = 0;       ///< trials in the current batch
  std::size_t next_ = 0;        ///< next unclaimed trial index
  std::size_t unfinished_ = 0;  ///< trials not yet completed
  std::uint64_t batch_ = 0;     ///< bumped per run(); wakes workers
  std::exception_ptr error_;    ///< first exception thrown by a trial
  bool shutdown_ = false;
};

}  // namespace escape::sim
