#include "sim/scenario_registry.h"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "sim/invariants.h"
#include "sim/presets.h"

namespace escape::sim {

namespace {

FaultPlan failover_plan(SimCluster&, const ScenarioParams&) {
  FaultPlan plan;
  plan.at(0, TrafficBurst{from_ms(2'000)});
  plan.at(from_ms(2'000), CrashNode{NodeRef::leader()});
  plan.at(from_ms(8'000), RecoverNode{NodeRef::last_crashed()});
  return plan;
}

FaultPlan handover_plan(SimCluster&, const ScenarioParams&) {
  FaultPlan plan;
  plan.at(0, TrafficBurst{from_ms(1'000)});
  plan.at(from_ms(1'500), MarkEpisode{"planned handoff"});
  plan.at(from_ms(1'500), LeaderTransfer{NodeRef::top_follower()});
  return plan;
}

FaultPlan asymmetric_partition_plan(SimCluster& cluster, const ScenarioParams&) {
  // The bootstrap leader keeps *receiving* from the cluster but its own
  // messages stop arriving — the half-dead leader Raft's randomized timers
  // were never designed around. Followers must elect a replacement; the old
  // leader hears the new term and steps down instead of split-braining.
  const ServerId leader = cluster.leader();
  FaultPlan plan;
  plan.at(0, TrafficBurst{from_ms(12'000)});
  plan.at(from_ms(1'000), MarkEpisode{"leader outbound cut"});
  plan.at(from_ms(1'000), PartialIsolate{NodeRef::id(leader), LinkDirection::kOutbound});
  plan.at(from_ms(12'000), HealPartial{NodeRef::id(leader)});
  return plan;
}

FaultPlan gray_leader_plan(SimCluster& cluster, const ScenarioParams&) {
  // Degraded, not dead: every message the leader sends is delayed by 4 s, so
  // its heartbeats always arrive after the followers' election timeouts.
  const ServerId leader = cluster.leader();
  FaultPlan plan;
  plan.at(0, TrafficBurst{from_ms(10'000)});
  plan.at(from_ms(1'000), MarkEpisode{"gray leader"});
  plan.at(from_ms(1'000), DegradeNode{NodeRef::id(leader), from_ms(4'000)});
  plan.at(from_ms(15'000), RestoreLatency{});
  return plan;
}

FaultPlan rolling_restart_plan(SimCluster& cluster, const ScenarioParams&) {
  // Maintenance sweep: every server restarts once, in id order, under
  // sustained client traffic. Leader restarts are measured episodes.
  FaultPlan plan;
  const Duration step = from_ms(3'000);
  const Duration down_time = from_ms(1'500);
  Duration t = from_ms(1'000);
  for (const ServerId id : cluster.members()) {
    plan.at(t, CrashNode{NodeRef::id(id)});
    plan.at(t + down_time, RecoverNode{NodeRef::id(id)});
    t += step;
  }
  plan.at(0, TrafficBurst{t});
  return plan;
}

FaultPlan leader_churn_plan(SimCluster&, const ScenarioParams&) {
  // Sustained churn: whoever leads dies, three times in a row, while client
  // traffic keeps flowing. Crashes that land during an election defer to the
  // next winner, which can outlive the paired recovery slot — RecoverAll
  // picks up whichever victim is down, and a final one sweeps up stragglers
  // (best-effort: a crash deferred past it stays down until the run ends).
  FaultPlan plan;
  plan.at(0, TrafficBurst{from_ms(20'000)});
  for (int i = 0; i < 3; ++i) {
    const Duration t = from_ms(2'000 + i * 6'000);
    plan.at(t, CrashNode{NodeRef::leader()});
    plan.at(t + from_ms(3'000), RecoverAll{});
  }
  plan.at(from_ms(21'000), RecoverAll{});
  return plan;
}

FaultPlan snapshot_catchup_plan(SimCluster& cluster, const ScenarioParams&) {
  // The lagging-follower catch-up path: a follower crashes, sustained writes
  // push the cluster far past its log position, the leader compacts its log
  // behind a snapshot, and the follower recovers — its next index now falls
  // below the leader's first retained entry, so the only way back is
  // InstallSnapshot (restore + truncate + resume), not AppendEntries replay.
  const ServerId leader = cluster.leader();
  ServerId follower = kNoServer;
  for (const ServerId id : cluster.members()) {
    if (id != leader) {
      follower = id;
      break;
    }
  }
  FaultPlan plan;
  plan.at(0, TrafficBurst{from_ms(14'000), from_ms(60)});
  plan.at(from_ms(1'000), CrashNode{NodeRef::id(follower)});
  plan.at(from_ms(8'000), TriggerSnapshot{NodeRef::leader()});
  plan.at(from_ms(9'000), RecoverNode{NodeRef::id(follower)});
  return plan;
}

FaultPlan snapshot_churn_plan(SimCluster&, const ScenarioParams&) {
  // Compact-then-die, three leaders in a row, under sustained traffic: every
  // victim restarts from its own snapshot, successors catch stragglers up
  // via InstallSnapshot, and the configuration clock must survive each hop
  // (snapshot restore, install, and the new leadership's stride floor).
  FaultPlan plan;
  plan.at(0, TrafficBurst{from_ms(24'000), from_ms(80)});
  for (int i = 0; i < 3; ++i) {
    const Duration t = from_ms(3'000 + i * 7'000);
    plan.at(t, SnapshotAndCrash{NodeRef::leader()});
    plan.at(t + from_ms(3'500), RecoverAll{});
  }
  plan.at(from_ms(25'000), RecoverAll{});
  return plan;
}

FaultPlan read_heavy_failover_plan(SimCluster&, const ScenarioParams&) {
  // The paper's crash-the-leader protocol with a read-dominated workload
  // riding through it: fast-path reads hammer the cluster before, during and
  // after the failover, so every grant is audited across the leadership
  // change — a deposed leader serving one stale read trips the
  // read-linearizability invariant.
  FaultPlan plan;
  plan.at(0, TrafficBurst{from_ms(12'000), from_ms(120)});
  plan.at(from_ms(500), ClientRead{from_ms(14'000), from_ms(60)});
  plan.at(from_ms(3'000), CrashNode{NodeRef::leader()});
  plan.at(from_ms(9'000), RecoverNode{NodeRef::last_crashed()});
  return plan;
}

FaultPlan lease_expiry_storm_plan(SimCluster& cluster, const ScenarioParams&) {
  // The staleness hole leases could open, made flesh: the bootstrap leader
  // is fully partitioned away mid-read-storm. Its lease must lapse before
  // the top-priority follower's baseTime + k(n-P) timeout elects a successor
  // (Eq. 1) — reads it accepted but could no longer confirm are rejected on
  // step-down, never answered stale, and lease serving stops for the whole
  // isolation window.
  const ServerId leader = cluster.leader();
  FaultPlan plan;
  plan.at(0, TrafficBurst{from_ms(14'000), from_ms(150)});
  plan.at(0, ClientRead{from_ms(16'000), from_ms(80)});
  plan.at(from_ms(2'000), MarkEpisode{"leader isolated; lease must lapse first"});
  plan.at(from_ms(2'000), IsolateNode{NodeRef::id(leader)});
  plan.at(from_ms(12'000), HealNode{NodeRef::id(leader)});
  return plan;
}

FaultPlan loss_spike_plan(SimCluster&, const ScenarioParams& params) {
  // A transient Δ = 40% broadcast-omission storm hits, the leader dies in
  // the middle of it, and conditions recover only after the election.
  FaultPlan plan;
  plan.at(0, TrafficBurst{from_ms(12'000)});
  plan.at(from_ms(1'000), SetLossRate{0.4, 0.0});
  plan.at(from_ms(2'000), CrashNode{NodeRef::leader()});
  plan.at(from_ms(9'000), RecoverNode{NodeRef::last_crashed()});
  plan.at(from_ms(10'000), SetLossRate{params.broadcast_omission, 0.0});
  return plan;
}

FaultPlan rolling_expansion_plan(SimCluster& cluster, const ScenarioParams&) {
  // Capacity ramp under load: two servers join (learner -> catch-up ->
  // promote), the leader dies mid-ramp, and two more join after the
  // failover. Every join re-deals the SCA pool over the grown voter set
  // under a fresh confClock; the acked-write ledger and the invariant
  // checker must survive every hop. With the default 3 seed servers this is
  // the 3 -> 5 -> 7 expansion.
  const auto base = static_cast<ServerId>(cluster.size());
  FaultPlan plan;
  plan.at(0, TrafficBurst{from_ms(32'000)});
  plan.at(from_ms(1'000), JoinServer{static_cast<ServerId>(base + 1)});
  plan.at(from_ms(7'000), JoinServer{static_cast<ServerId>(base + 2)});
  plan.at(from_ms(14'000), CrashNode{NodeRef::leader()});
  plan.at(from_ms(17'000), RecoverNode{NodeRef::last_crashed()});
  plan.at(from_ms(20'000), JoinServer{static_cast<ServerId>(base + 3)});
  plan.at(from_ms(26'000), JoinServer{static_cast<ServerId>(base + 4)});
  return plan;
}

FaultPlan membership_flap_plan(SimCluster& cluster, const ScenarioParams&) {
  // Autoscaler flapping during a partition: a server joins, a follower gets
  // isolated, the autoscaler reverses itself (remove the newcomer), then
  // reverses again (re-add it) — all before the partition heals. Quorum
  // arithmetic shifts 4 times while one voter is unreachable; the one-change-
  // at-a-time rule (kBusy) and the joint commit rule are what keep the
  // flapping linearized.
  const ServerId leader = cluster.leader();
  ServerId follower = kNoServer;
  for (const ServerId id : cluster.members()) {
    if (id != leader) {
      follower = id;
      break;
    }
  }
  const auto extra = static_cast<ServerId>(cluster.size() + 1);
  FaultPlan plan;
  plan.at(0, TrafficBurst{from_ms(28'000)});
  plan.at(from_ms(1'000), JoinServer{extra});
  plan.at(from_ms(8'000), IsolateNode{NodeRef::id(follower)});
  plan.at(from_ms(9'000), LeaveServer{NodeRef::id(extra)});
  plan.at(from_ms(16'000), JoinServer{extra});
  plan.at(from_ms(23'000), HealNode{NodeRef::id(follower)});
  return plan;
}

FaultPlan dead_node_replacement_plan(SimCluster& cluster, const ScenarioParams&) {
  // Operator replaces a dead machine: a follower crashes and is removed from
  // the configuration while the leader's lease — which that follower's last
  // heartbeat acks helped extend — could still be live, then a fresh server
  // joins in its place. Lease reads flow throughout: the quorum the lease
  // argument rests on shrinks mid-lease, and no grant may go stale.
  const ServerId leader = cluster.leader();
  ServerId follower = kNoServer;
  for (const ServerId id : cluster.members()) {
    if (id != leader) {
      follower = id;
      break;
    }
  }
  const auto replacement = static_cast<ServerId>(cluster.size() + 1);
  FaultPlan plan;
  plan.at(0, TrafficBurst{from_ms(20'000)});
  plan.at(from_ms(500), ClientRead{from_ms(20'000), from_ms(120)});
  plan.at(from_ms(2'000), CrashNode{NodeRef::id(follower)});
  plan.at(from_ms(2'100), LeaveServer{NodeRef::id(follower)});
  plan.at(from_ms(6'000), JoinServer{replacement});
  return plan;
}

std::map<std::string, ScenarioSpec>& registry() {
  static std::map<std::string, ScenarioSpec> scenarios = [] {
    std::map<std::string, ScenarioSpec> built_in;
    auto add = [&built_in](ScenarioSpec spec) {
      built_in.emplace(spec.name, std::move(spec));
    };
    add({"failover",
         "Paper §VI protocol: client traffic, crash the leader, recover it",
         failover_plan, from_ms(10'000), 3});
    add({"handover",
         "Planned leadership transfer (TimeoutNow) to the top-priority follower",
         handover_plan, from_ms(10'000), 3});
    add({"asymmetric_partition",
         "Leader hears the cluster but its own messages stop arriving; "
         "followers must depose it",
         asymmetric_partition_plan, from_ms(10'000), 3});
    add({"gray_leader",
         "Leader degrades (every message +4 s) instead of crashing; "
         "heartbeats arrive too late to suppress elections",
         gray_leader_plan, from_ms(10'000), 3});
    add({"rolling_restart",
         "Every server restarts once, in order, under sustained traffic",
         rolling_restart_plan, from_ms(10'000), 3});
    add({"leader_churn",
         "Three consecutive leader crashes under sustained traffic",
         leader_churn_plan, from_ms(10'000), 3});
    add({"loss_spike",
         "Transient 40% broadcast-omission storm with a mid-storm leader crash",
         loss_spike_plan, from_ms(15'000), 3});
    add({"snapshot_catchup",
         "Follower crashes, writes pass the compaction horizon, leader "
         "compacts; recovery must go through InstallSnapshot",
         snapshot_catchup_plan, from_ms(12'000), 3});
    add({"snapshot_churn",
         "Three compact-then-crash leader cycles under traffic; state and "
         "confClock survive every snapshot hop",
         snapshot_churn_plan, from_ms(12'000), 3});
    add({"read_heavy_failover",
         "Fast-path reads hammer the cluster through a leader crash and "
         "recovery; every grant is audited for staleness",
         read_heavy_failover_plan, from_ms(10'000), 3});
    add({"lease_expiry_storm",
         "Leader fully partitioned mid-read-storm; its lease must lapse "
         "before the successor election, pending reads are rejected",
         lease_expiry_storm_plan, from_ms(12'000), 3});
    add({"rolling_expansion",
         "Two servers join under traffic, the leader dies mid-ramp, two more "
         "join after failover (3 -> 5 -> 7 with the default seed cluster)",
         rolling_expansion_plan, from_ms(14'000), 3});
    add({"membership_flap",
         "Autoscaler adds, removes, and re-adds a server while a follower is "
         "partitioned away; quorum shifts stay linearized via joint consensus",
         membership_flap_plan, from_ms(14'000), 3});
    add({"dead_node_replacement",
         "Follower crashes and is removed while the leader's lease could "
         "still rest on its acks, then a replacement joins; lease reads flow "
         "throughout",
         dead_node_replacement_plan, from_ms(14'000), 3});
    return built_in;
  }();
  return scenarios;
}

}  // namespace

void register_scenario(ScenarioSpec spec) {
  if (spec.name.empty() || !spec.plan) {
    throw std::invalid_argument("scenario needs a name and a plan builder");
  }
  const std::string name = spec.name;
  const auto [it, inserted] = registry().emplace(name, std::move(spec));
  (void)it;
  if (!inserted) {
    throw std::invalid_argument("scenario '" + name + "' already registered");
  }
}

const ScenarioSpec* find_scenario(const std::string& name) {
  const auto& scenarios = registry();
  const auto it = scenarios.find(name);
  return it == scenarios.end() ? nullptr : &it->second;
}

std::vector<const ScenarioSpec*> all_scenarios() {
  std::vector<const ScenarioSpec*> specs;
  for (const auto& [name, spec] : registry()) specs.push_back(&spec);
  return specs;  // std::map iteration is already name-sorted
}

ClusterOptions scenario_cluster_options(const ScenarioParams& params) {
  PolicyFactory policy;
  if (params.policy == "raft") {
    policy = presets::raft_policy();
  } else if (params.policy == "zraft") {
    policy = presets::zraft_policy();
  } else if (params.policy == "escape") {
    policy = presets::escape_policy();
  } else {
    throw std::invalid_argument("unknown policy '" + params.policy +
                                "' (raft|zraft|escape)");
  }
  ClusterOptions options = presets::paper_cluster(params.servers, std::move(policy),
                                                  params.seed, params.broadcast_omission);
  options.snapshot_interval = params.snapshot_interval;
  return options;
}

ScenarioReport run_scenario(const ScenarioSpec& spec, const ScenarioParams& params) {
  if (params.servers < spec.min_servers) {
    throw std::invalid_argument("scenario '" + spec.name + "' needs >= " +
                                std::to_string(spec.min_servers) + " servers");
  }
  SimCluster cluster(scenario_cluster_options(params));
  InvariantChecker invariants(cluster);
  ScenarioRunner runner(cluster);

  ScenarioReport report;
  report.bootstrap_leader = runner.bootstrap();
  if (report.bootstrap_leader == kNoServer) {
    // Even a failed bootstrap may have tripped the listener-driven checks
    // (e.g. two leaders in one term); a report must never read safe while
    // the checker recorded otherwise.
    report.trace = runner.trace();
    report.leaders_by_term = invariants.leaders_by_term();
    report.violations = invariants.violations();
    return report;
  }
  report.bootstrapped = true;

  runner.run_plan(spec.plan(cluster, params), spec.drain);
  invariants.deep_check();

  report.episodes = runner.episodes();
  report.executed_actions = runner.runtime().markers().size();
  report.leaders_by_term = invariants.leaders_by_term();
  report.traffic_submitted = runner.runtime().traffic_submitted();
  report.reads_issued = runner.runtime().reads_issued();
  report.net = cluster.network().stats();
  report.final_leader = cluster.leader();
  for (const ServerId id : cluster.members()) {
    if (cluster.alive(id)) ++report.alive_servers;
  }
  report.trace = runner.trace();
  report.violations = invariants.violations();
  return report;
}

ScenarioReport run_scenario(const std::string& name, const ScenarioParams& params) {
  const ScenarioSpec* spec = find_scenario(name);
  if (!spec) throw std::invalid_argument("unknown scenario '" + name + "'");
  return run_scenario(*spec, params);
}

}  // namespace escape::sim
