#include "sim/network.h"

#include <cmath>
#include <stdexcept>

namespace escape::sim {

LatencyFn uniform_latency(Duration lo, Duration hi) {
  return [lo, hi](ServerId, ServerId, Rng& rng) { return rng.uniform_int(lo, hi); };
}

LatencyFn constant_latency(Duration d) {
  return [d](ServerId, ServerId, Rng&) { return d; };
}

LatencyFn grouped_latency(std::function<int(ServerId)> group_of, Duration intra_lo,
                          Duration intra_hi, Duration inter_lo, Duration inter_hi) {
  return [=](ServerId from, ServerId to, Rng& rng) {
    if (group_of(from) == group_of(to)) return rng.uniform_int(intra_lo, intra_hi);
    return rng.uniform_int(inter_lo, inter_hi);
  };
}

SimNetwork::SimNetwork(EventLoop& loop, NetworkOptions options, Rng rng,
                       std::function<void(const rpc::Envelope&)> deliver)
    : loop_(loop), options_(std::move(options)), rng_(rng), deliver_(std::move(deliver)) {
  if (!options_.latency) options_.latency = uniform_latency(from_ms(100), from_ms(200));
  default_latency_ = options_.latency;
}

bool SimNetwork::link_up(ServerId from, ServerId to) const {
  if (isolated_.count(from) > 0 || isolated_.count(to) > 0) return false;
  if (cut_one_way_.count({from, to}) > 0) return false;
  return cut_.count(ordered(from, to)) == 0;
}

void SimNetwork::set_latency(LatencyFn latency) {
  options_.latency = latency ? std::move(latency) : default_latency_;
}

void SimNetwork::set_broadcast_omission(double delta) {
  if (delta < 0.0 || delta > 1.0) {
    throw std::invalid_argument("broadcast_omission must be in [0, 1]");
  }
  options_.broadcast_omission = delta;
}

void SimNetwork::set_uniform_loss(double probability) {
  if (probability < 0.0 || probability > 1.0) {
    throw std::invalid_argument("uniform_loss must be in [0, 1]");
  }
  options_.uniform_loss = probability;
}

void SimNetwork::send(const rpc::Envelope& envelope) {
  ++stats_.sent;
  if (!link_up(envelope.from, envelope.to)) {
    ++stats_.dropped_partition;
    return;
  }
  if (options_.uniform_loss > 0.0 && rng_.chance(options_.uniform_loss)) {
    ++stats_.dropped_loss;
    return;
  }
  transmit(envelope);
}

void SimNetwork::send_batch(const std::vector<rpc::Envelope>& batch) {
  // Identify broadcast groups: maximal runs of consecutive envelopes with
  // the same sender and the same message alternative. The paper's Δ model
  // omits an exact fraction of the receivers of each broadcast.
  std::size_t i = 0;
  while (i < batch.size()) {
    std::size_t j = i + 1;
    while (j < batch.size() && batch[j].from == batch[i].from &&
           batch[j].message.index() == batch[i].message.index()) {
      ++j;
    }
    const std::size_t group = j - i;
    if (group >= 2 && options_.broadcast_omission > 0.0) {
      const auto omit_count = static_cast<std::size_t>(
          std::floor(options_.broadcast_omission * static_cast<double>(group) + 0.5));
      auto omit = rng_.sample_without_replacement(group, std::min(omit_count, group));
      std::set<std::size_t> omitted(omit.begin(), omit.end());
      for (std::size_t k = 0; k < group; ++k) {
        if (omitted.count(k) > 0) {
          ++stats_.sent;
          ++stats_.dropped_omission;
        } else {
          send(batch[i + k]);
        }
      }
    } else {
      for (std::size_t k = i; k < j; ++k) send(batch[k]);
    }
    i = j;
  }
}

void SimNetwork::transmit(const rpc::Envelope& envelope) {
  const Duration delay = options_.latency(envelope.from, envelope.to, rng_);
  ++stats_.delivered;
  loop_.schedule_after(delay, [this, envelope] { deliver_(envelope); });
}

}  // namespace escape::sim
