// Discrete-event simulation kernel.
//
// A single-threaded priority queue of (time, sequence, closure). Ties in
// time break by insertion order, which — together with seeded RNG everywhere
// else — makes entire cluster runs bit-reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.h"

namespace escape::sim {

/// Deterministic virtual-time event scheduler.
class EventLoop {
 public:
  using Callback = std::function<void()>;

  /// Current virtual time (time of the event being processed, or the last
  /// processed event).
  TimePoint now() const { return now_; }

  /// Schedules `fn` at absolute virtual time `at` (clamped to now()).
  void schedule_at(TimePoint at, Callback fn);

  /// Schedules `fn` after `delay` from now().
  void schedule_after(Duration delay, Callback fn) { schedule_at(now_ + delay, std::move(fn)); }

  /// Runs events until the queue is empty or virtual time would exceed
  /// `until`. Returns the number of events processed. Events scheduled
  /// exactly at `until` are processed.
  std::size_t run_until(TimePoint until);

  /// Runs until `stop()` is requested from within a callback, the queue
  /// drains, or virtual time exceeds `until`.
  std::size_t run_until_stopped(TimePoint until);

  /// Requests run_until_stopped to return after the current event.
  void stop() { stop_requested_ = true; }

  /// True when no events are pending.
  bool empty() const { return queue_.empty(); }

  /// Total events processed over the loop's lifetime.
  std::uint64_t processed() const { return processed_; }

 private:
  struct Event {
    TimePoint at;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  TimePoint now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t processed_ = 0;
  bool stop_requested_ = false;
};

}  // namespace escape::sim
