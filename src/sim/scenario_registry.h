// Named scenario registry.
//
// A ScenarioSpec pairs a name with a FaultPlan builder; run_scenario()
// bootstraps a paper-preset cluster, installs the plan, runs it to
// completion in virtual time, and returns per-episode failover
// measurements, the full event trace (the determinism fingerprint: same
// seed => identical trace), and the safety-invariant verdict.
//
// The registry ships the paper's crash-the-leader protocol plus scenarios
// the paper never evaluated — asymmetric partitions, gray (degraded-latency)
// leaders, rolling restarts, sustained leader churn, loss spikes, planned
// handoffs. New workloads are a registration away:
//
//   register_scenario({.name = "my-scenario", .description = "...",
//                      .plan = [](SimCluster& c, const ScenarioParams& p) {
//                        FaultPlan plan;
//                        plan.at(from_ms(1000), CrashNode{NodeRef::leader()});
//                        return plan;
//                      }});
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/scenario.h"

namespace escape::sim {

/// Knobs every registered scenario understands; scenarios derive their
/// cluster from sim::presets::paper_cluster with these.
struct ScenarioParams {
  std::size_t servers = 5;
  std::string policy = "escape";  ///< raft | zraft | escape
  double broadcast_omission = 0.0;
  std::uint64_t seed = 1;
  /// Automatic compaction threshold (ClusterOptions::snapshot_interval);
  /// 0 keeps the whole log unless the plan triggers snapshots itself.
  LogIndex snapshot_interval = 0;
};

/// A named, declarative experiment.
struct ScenarioSpec {
  std::string name;
  std::string description;
  /// Builds the fault schedule; invoked once on the *bootstrapped* cluster,
  /// so it can resolve concrete ids (e.g. the bootstrap leader).
  std::function<FaultPlan(SimCluster&, const ScenarioParams&)> plan;
  /// Virtual time to keep running after the last planned action, so
  /// elections triggered near the end can resolve.
  Duration drain = from_ms(10'000);
  /// Smallest cluster the plan makes sense on.
  std::size_t min_servers = 3;
};

/// Everything one scenario run produced.
struct ScenarioReport {
  bool bootstrapped = false;
  ServerId bootstrap_leader = kNoServer;
  std::vector<FailoverResult> episodes;  ///< one per measurement episode
  std::size_t traffic_submitted = 0;
  std::size_t reads_issued = 0;          ///< ClientRead fast-path reads issued
  NetworkStats net{};
  ServerId final_leader = kNoServer;
  std::size_t alive_servers = 0;
  std::size_t executed_actions = 0;     ///< plan actions the runtime executed
  /// Election-safety ledger from the InvariantChecker: who won each term.
  /// Single-campaign claims are assertable directly (one new term per
  /// episode, no interleaved losers).
  std::map<Term, ServerId> leaders_by_term;
  std::vector<std::string> trace;       ///< canonical event trace
  std::vector<std::string> violations;  ///< safety-invariant violations
  bool safety_ok() const { return violations.empty(); }
};

/// Registers a scenario; throws std::invalid_argument on a duplicate name.
void register_scenario(ScenarioSpec spec);

/// Looks up a scenario (including built-ins); nullptr when unknown.
const ScenarioSpec* find_scenario(const std::string& name);

/// Every registered scenario, sorted by name.
std::vector<const ScenarioSpec*> all_scenarios();

/// Builds the paper-preset ClusterOptions for `params`; throws
/// std::invalid_argument on an unknown policy name.
ClusterOptions scenario_cluster_options(const ScenarioParams& params);

/// Bootstraps, installs the spec's plan, runs to quiescence, and collects
/// measurements + trace + safety verdict. Deterministic: identical params
/// yield an identical report.
ScenarioReport run_scenario(const ScenarioSpec& spec, const ScenarioParams& params);
ScenarioReport run_scenario(const std::string& name, const ScenarioParams& params);

}  // namespace escape::sim
