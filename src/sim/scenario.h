// Experiment drivers implementing the paper's measurement protocol, built on
// the declarative scenario engine (sim/fault_plan.h).
//
// Section VI records leader election time from the instant the leader
// crashes to the instant a new leader is elected, split into:
//   detection period — crash .. first candidate appears (first campaign)
//   election period  — first campaign .. new leader elected
//
// ScenarioRunner is the shared engine: it installs FaultPlans, runs the
// event loop, and derives per-episode FailoverResults from the cluster's
// event log. The legacy free functions (measure_failover, drive_traffic,
// measure_failover_series, measure_failover_with_competition) are thin
// wrappers that compose plan actions on a temporary runner.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "sim/fault_plan.h"
#include "sim/sim_cluster.h"

namespace escape::sim {

/// Outcome of one leader-failure experiment.
struct FailoverResult {
  bool converged = false;
  Duration detection = 0;       ///< crash -> first campaign
  Duration election = 0;        ///< first campaign -> new leader
  Duration total = 0;           ///< crash -> new leader
  std::size_t campaigns = 0;    ///< election campaigns started in the window
  ServerId new_leader = kNoServer;
  Term new_term = 0;
};

/// Canonical one-line rendering of a NodeEvent; identical seeds yield
/// identical lines, so a vector of them is the determinism fingerprint the
/// scenario tests compare.
std::string trace_line(const raft::NodeEvent& event);

/// Measures one failover episode from an event log: the first kBecameLeader
/// in the closed window [start, end] converges the episode (a win dispatched
/// in the same virtual-time tick as the fault counts); campaigns are counted
/// from `start` to the election (or to `end` when unconverged). Only events
/// at positions [begin_index, end_index) are considered — episode markers
/// record their log position so same-tick events *preceding* the fault
/// (e.g. the election win that triggered a deferred crash) are excluded.
FailoverResult analyze_window(const std::vector<raft::NodeEvent>& log, TimePoint start,
                              TimePoint end, std::size_t begin_index = 0,
                              std::size_t end_index = static_cast<std::size_t>(-1));

/// Derives one FailoverResult per episode marker: episode i spans from its
/// marker to the next episode marker (or the end of the log).
std::vector<FailoverResult> analyze_episodes(const std::vector<raft::NodeEvent>& log,
                                             const std::vector<PlanMarker>& markers);

/// Cold-starts the cluster: runs until the first leader emerges, then lets
/// the system settle (heartbeats propagate, ESCAPE patrol rounds assign
/// configurations). Returns the leader id, or kNoServer on timeout.
ServerId bootstrap(SimCluster& cluster, Duration max_wait = from_ms(60'000),
                   Duration settle = from_ms(3'000));

/// Tuning for the forced-competition experiment (Figure 10).
struct CompetitionOptions {
  /// Number of forced phases with competing candidates (0..3 in the paper).
  int phases = 0;
  /// Scripted timeout for each contested phase is sampled from
  /// [phase_timeout_lo, phase_timeout_hi] and *shared* by both rivals so
  /// their campaigns collide within one network latency.
  Duration phase_timeout_lo = from_ms(1500);
  Duration phase_timeout_hi = from_ms(1700);
  /// Extra delay added to the losing rival's final timeout so the winning
  /// rival completes the decisive campaign uncontested.
  Duration divergence = from_ms(1200);
  /// Timeout pinned on non-rival followers so they only vote.
  Duration bystander_timeout = from_ms(120'000);
  /// Virtual time to keep running after installing the scripts so every
  /// follower re-arms its timer with a scripted value before the crash.
  Duration rearm_window = from_ms(1'500);
  /// To make each contested phase split deterministically, every bystander
  /// is assigned a "favorite" rival whose messages reach it with
  /// `favored_latency` while the other rival's take `unfavored_latency`
  /// (the geo-group effect of Section II-B). The gap must exceed the rivals'
  /// campaign-start skew (one network latency) so favorites never flip.
  Duration favored_latency = from_ms(100);
  Duration unfavored_latency = from_ms(400);
  /// Timer arms within this window after the crash are treated as pre-crash:
  /// they come from heartbeats that were already in flight when the leader
  /// died and must not consume scripted phase timeouts.
  Duration inflight_grace = from_ms(300);
};

/// The paper's Section VI measurement protocol: on one long-lived cluster,
/// repeatedly (1) serve client traffic, (2) crash the leader and record the
/// election, (3) recover the crashed server and let the system settle.
struct SeriesOptions {
  std::size_t runs = 100;
  Duration traffic_window = from_ms(3'000);   ///< client load before each crash
  Duration traffic_interval = from_ms(100);   ///< submission period
  Duration settle = from_ms(2'000);           ///< recovery settle between runs
  Duration max_wait = from_ms(120'000);       ///< per-election timeout
};

/// Drives a SimCluster through declarative FaultPlans and measures the
/// resulting failover episodes. Owns the cluster when constructed from
/// ClusterOptions, or borrows an existing one (the legacy free functions and
/// tests use the borrowing form).
///
/// Every override a plan installs (latency, loss, scripted timeouts) is
/// scoped to the runner's PlanRuntime and restored on destruction, so an
/// exception mid-scenario cannot leak a scripted topology into later runs.
class ScenarioRunner {
 public:
  explicit ScenarioRunner(ClusterOptions options);
  explicit ScenarioRunner(SimCluster& cluster);

  SimCluster& cluster() { return cluster_; }
  const SimCluster& cluster() const { return cluster_; }
  EventLoop& loop() { return cluster_.loop(); }
  PlanRuntime& runtime() { return runtime_; }

  /// Cold-starts the cluster (see sim::bootstrap).
  ServerId bootstrap(Duration max_wait = from_ms(60'000), Duration settle = from_ms(3'000));

  /// Installs `plan` and runs the loop until every action (and `drain` more
  /// virtual time) has elapsed. Time-bounded, hence fully deterministic.
  void run_plan(const FaultPlan& plan, Duration drain = 0);

  /// Installs `plan`, runs until the first measurement episode it opens has
  /// elected a leader, and returns that episode's measurement. `max_wait` is
  /// the election budget measured from the episode start (the paper's
  /// per-election timeout): the run is bounded by plan span + max_wait from
  /// install, extended to episode start + max_wait when the triggering
  /// fault fires late (a deferred crash-the-leader).
  FailoverResult run_failover_plan(const FaultPlan& plan, Duration max_wait);

  /// Crashes the current leader and measures recovery per the paper's
  /// protocol. The cluster must have a leader.
  FailoverResult measure_failover(Duration max_wait = from_ms(60'000));

  /// Forces `options.phases` rounds of simultaneous candidate timeouts after
  /// crashing the leader, then measures recovery (Figure 10). Under Raft each
  /// forced round yields a split vote; under ESCAPE/Z-Raft the
  /// priority-scattered terms resolve the very first round (Section VI-C).
  FailoverResult measure_competition(const CompetitionOptions& options,
                                     Duration max_wait = from_ms(120'000));

  /// Runs `options.runs` crash-recover cycles (bootstrapping first if needed)
  /// and returns one FailoverResult per cycle; unconverged entries are kept
  /// so callers can count them. Returns empty when bootstrap fails.
  std::vector<FailoverResult> run_series(const SeriesOptions& options);

  /// Per-episode measurements for the markers recorded since the last
  /// clear, derived from the cluster's event log.
  std::vector<FailoverResult> episodes() const;

  /// Canonical textual trace of every recorded NodeEvent (determinism key).
  std::vector<std::string> trace() const;

 private:
  FailoverResult run_failover_plan_on(PlanRuntime& runtime, const FaultPlan& plan,
                                      Duration max_wait);

  std::unique_ptr<SimCluster> owned_;
  SimCluster& cluster_;
  PlanRuntime runtime_;
};

/// Legacy driver: crashes the current leader on a borrowed cluster. See
/// ScenarioRunner::measure_failover.
FailoverResult measure_failover(SimCluster& cluster, Duration max_wait = from_ms(60'000));

/// Legacy driver: Figure 10's forced competition on a borrowed cluster. See
/// ScenarioRunner::measure_competition.
FailoverResult measure_failover_with_competition(SimCluster& cluster,
                                                 const CompetitionOptions& options,
                                                 Duration max_wait = from_ms(120'000));

/// Submits a small command through whatever leader exists every `interval`
/// for `duration` of virtual time (a scoped TrafficBurst plan). Under message
/// loss this keeps follower logs unevenly replicated — the precondition for
/// Section VI-D's "unqualified candidate" dynamics. Returns the number of
/// submissions.
std::size_t drive_traffic(SimCluster& cluster, Duration duration, Duration interval,
                          std::size_t payload_bytes = 16);

/// Legacy driver: the Section VI series protocol on a borrowed cluster. See
/// ScenarioRunner::run_series.
std::vector<FailoverResult> measure_failover_series(SimCluster& cluster,
                                                    const SeriesOptions& options);

}  // namespace escape::sim
