// Reusable experiment drivers implementing the paper's measurement protocol.
//
// Section VI records leader election time from the instant the leader
// crashes to the instant a new leader is elected, split into:
//   detection period — crash .. first candidate appears (first campaign)
//   election period  — first campaign .. new leader elected
// measure_failover implements exactly that; measure_failover_with_competition
// additionally scripts follower timers to force m phases of competing
// candidates (Figure 10's experiment).
#pragma once

#include <optional>

#include "sim/sim_cluster.h"

namespace escape::sim {

/// Outcome of one leader-failure experiment.
struct FailoverResult {
  bool converged = false;
  Duration detection = 0;       ///< crash -> first campaign
  Duration election = 0;        ///< first campaign -> new leader
  Duration total = 0;           ///< crash -> new leader
  std::size_t campaigns = 0;    ///< election campaigns started in the window
  ServerId new_leader = kNoServer;
  Term new_term = 0;
};

/// Cold-starts the cluster: runs until the first leader emerges, then lets
/// the system settle (heartbeats propagate, ESCAPE patrol rounds assign
/// configurations). Returns the leader id, or kNoServer on timeout.
ServerId bootstrap(SimCluster& cluster, Duration max_wait = from_ms(60'000),
                   Duration settle = from_ms(3'000));

/// Crashes the current leader and measures recovery per the paper's
/// protocol. The cluster must have a leader.
FailoverResult measure_failover(SimCluster& cluster, Duration max_wait = from_ms(60'000));

/// Tuning for the forced-competition experiment (Figure 10).
struct CompetitionOptions {
  /// Number of forced phases with competing candidates (0..3 in the paper).
  int phases = 0;
  /// Scripted timeout for each contested phase is sampled from
  /// [phase_timeout_lo, phase_timeout_hi] and *shared* by both rivals so
  /// their campaigns collide within one network latency.
  Duration phase_timeout_lo = from_ms(1500);
  Duration phase_timeout_hi = from_ms(1700);
  /// Extra delay added to the losing rival's final timeout so the winning
  /// rival completes the decisive campaign uncontested.
  Duration divergence = from_ms(1200);
  /// Timeout pinned on non-rival followers so they only vote.
  Duration bystander_timeout = from_ms(120'000);
  /// Virtual time to keep running after installing the scripts so every
  /// follower re-arms its timer with a scripted value before the crash.
  Duration rearm_window = from_ms(1'500);
  /// To make each contested phase split deterministically, every bystander
  /// is assigned a "favorite" rival whose messages reach it with
  /// `favored_latency` while the other rival's take `unfavored_latency`
  /// (the geo-group effect of Section II-B). The gap must exceed the rivals'
  /// campaign-start skew (one network latency) so favorites never flip.
  Duration favored_latency = from_ms(100);
  Duration unfavored_latency = from_ms(400);
  /// Timer arms within this window after the crash are treated as pre-crash:
  /// they come from heartbeats that were already in flight when the leader
  /// died and must not consume scripted phase timeouts.
  Duration inflight_grace = from_ms(300);
};

/// Forces `options.phases` rounds of simultaneous candidate timeouts after
/// crashing the leader, then measures recovery. Under Raft each forced round
/// yields a split vote; under ESCAPE/Z-Raft the priority-scattered terms
/// resolve the very first round (Section VI-C).
FailoverResult measure_failover_with_competition(SimCluster& cluster,
                                                 const CompetitionOptions& options,
                                                 Duration max_wait = from_ms(120'000));

/// Submits a small command through whatever leader exists every `interval`
/// for `duration` of virtual time. Under message loss this keeps follower
/// logs unevenly replicated — the precondition for Section VI-D's
/// "unqualified candidate" dynamics. Returns the number of submissions.
std::size_t drive_traffic(SimCluster& cluster, Duration duration, Duration interval,
                          std::size_t payload_bytes = 16);

/// The paper's Section VI measurement protocol: on one long-lived cluster,
/// repeatedly (1) serve client traffic, (2) crash the leader and record the
/// election, (3) recover the crashed server and let the system settle.
struct SeriesOptions {
  std::size_t runs = 100;
  Duration traffic_window = from_ms(3'000);   ///< client load before each crash
  Duration traffic_interval = from_ms(100);   ///< submission period
  Duration settle = from_ms(2'000);           ///< recovery settle between runs
  Duration max_wait = from_ms(120'000);       ///< per-election timeout
};

/// Runs `options.runs` crash-recover cycles and returns one FailoverResult
/// per cycle (unconverged entries kept, so callers can count them).
std::vector<FailoverResult> measure_failover_series(SimCluster& cluster,
                                                    const SeriesOptions& options);

}  // namespace escape::sim
