// Safety invariant checkers.
//
// Continuously (via event listeners) and on demand (deep_check) verifies the
// properties the paper argues in Section V:
//   * Election Safety    — at most one leader per term (Theorem 2 substrate)
//   * Log Matching       — equal (index, term) implies equal prefixes
//   * Leader Completeness— committed entries appear in every later leader log
//     (or below its snapshot boundary — compacted entries are committed by
//     construction)
//   * State-Machine Safety — applied sequences are mutually consistent,
//     compared by log index so snapshot-restored replicas (whose applied
//     streams begin past the snapshot) still participate
//   * Configuration uniqueness (Lemma 3) — servers sharing a confClock hold
//     distinct priorities
//   * Snapshot clock monotonicity — a server's adopted confClock is never
//     behind the configuration its own snapshot carries (a restored node
//     cannot regress the generation its state embodies), and a snapshot
//     never claims an index past the server's applied point
//   * Read linearizability — every granted fast-path read observes a state
//     no older than the commit point at issue time: its read index must
//     cover the probe ledger's commit floor (the highest commit index any
//     alive server held when the read was issued — what a deposed leader
//     serving from a stale lease would fall behind), and the serving
//     replica must have applied through that index before the grant fired
// Violations are recorded as human-readable strings; tests assert ok().
#pragma once

#include <map>
#include <string>
#include <vector>

#include "sim/sim_cluster.h"

namespace escape::sim {

class InvariantChecker {
 public:
  /// Attaches listeners to `cluster` (which must outlive the checker).
  /// When `check_configs` is set, Lemma 3 uniqueness is verified on every
  /// configuration adoption and leadership change.
  explicit InvariantChecker(SimCluster& cluster, bool check_configs = true);

  /// Expensive full-state checks: pairwise log matching, applied-prefix
  /// consistency, and leader completeness. Call at quiescent points.
  void deep_check();

  bool ok() const { return violations_.empty(); }
  const std::vector<std::string>& violations() const { return violations_; }

  /// Leaders observed per term (useful to assert single-campaign claims).
  const std::map<Term, ServerId>& leaders_by_term() const { return leaders_by_term_; }

  /// Fast-path reads audited against the probe ledger (grants whose probe
  /// was issued through SimCluster::submit_read). Lets tests assert the
  /// read-linearizability invariant actually engaged.
  std::size_t reads_checked() const { return reads_checked_; }

 private:
  void on_event(const raft::NodeEvent& event);
  void on_read(ServerId id, const raft::ReadGrant& grant);
  void check_config_uniqueness();
  void add_violation(std::string v);

  SimCluster& cluster_;
  bool check_configs_;
  std::map<Term, ServerId> leaders_by_term_;
  std::vector<std::string> violations_;
  std::size_t reads_checked_ = 0;
};

}  // namespace escape::sim
