#include "sim/fault_plan.h"

#include <algorithm>
#include <utility>

namespace escape::sim {

namespace {

/// Offset at which an action's effect ends (bursts outlast their start).
Duration action_end(const PlannedAction& planned) {
  if (const auto* burst = std::get_if<TrafficBurst>(&planned.action)) {
    return planned.at + burst->duration;
  }
  if (const auto* storm = std::get_if<ProposalBurst>(&planned.action)) {
    return planned.at + storm->duration;
  }
  if (const auto* reads = std::get_if<ClientRead>(&planned.action)) {
    return planned.at + reads->duration;
  }
  return planned.at;
}

}  // namespace

const char* action_name(const FaultAction& action) {
  struct Visitor {
    const char* operator()(const CrashNode&) const { return "crash"; }
    const char* operator()(const RecoverNode&) const { return "recover"; }
    const char* operator()(const RecoverAll&) const { return "recover-all"; }
    const char* operator()(const IsolateNode&) const { return "isolate"; }
    const char* operator()(const HealNode&) const { return "heal"; }
    const char* operator()(const CutLink&) const { return "cut-link"; }
    const char* operator()(const HealLink&) const { return "heal-link"; }
    const char* operator()(const PartialIsolate&) const { return "partial-isolate"; }
    const char* operator()(const HealPartial&) const { return "heal-partial"; }
    const char* operator()(const SwapLatency&) const { return "swap-latency"; }
    const char* operator()(const DegradeNode&) const { return "degrade"; }
    const char* operator()(const RestoreLatency&) const { return "restore-latency"; }
    const char* operator()(const SetLossRate&) const { return "set-loss"; }
    const char* operator()(const LeaderTransfer&) const { return "leader-transfer"; }
    const char* operator()(const TrafficBurst&) const { return "traffic"; }
    const char* operator()(const ProposalBurst&) const { return "proposal-burst"; }
    const char* operator()(const ClientRead&) const { return "client-read"; }
    const char* operator()(const ScriptTimeout&) const { return "script-timeout"; }
    const char* operator()(const MarkEpisode&) const { return "mark-episode"; }
    const char* operator()(const TriggerSnapshot&) const { return "snapshot"; }
    const char* operator()(const SnapshotAndCrash&) const { return "snapshot-crash"; }
    const char* operator()(const JoinServer&) const { return "join-server"; }
    const char* operator()(const LeaveServer&) const { return "leave-server"; }
  };
  return std::visit(Visitor{}, action);
}

FaultPlan& FaultPlan::at(Duration offset, FaultAction action) {
  cursor_ = offset;
  actions_.push_back({offset, std::move(action)});
  return *this;
}

FaultPlan& FaultPlan::then(Duration delay, FaultAction action) {
  return at(cursor_ + delay, std::move(action));
}

Duration FaultPlan::span() const {
  Duration span = 0;
  for (const auto& planned : actions_) span = std::max(span, action_end(planned));
  return span;
}

// --- PlanRuntime -------------------------------------------------------------

PlanRuntime::PlanRuntime(SimCluster& cluster)
    : cluster_(cluster),
      base_options_(cluster.network().options()),
      live_(std::make_shared<LiveFlag>()) {
  // Deferred crash-of-leader: when the plan asked to crash "the leader" while
  // the cluster was leaderless, the next election win triggers the crash. The
  // crash itself is pushed through the event loop — never executed from
  // inside the node's own event dispatch, where destroying the node would be
  // a use-after-free.
  listener_handle_ = cluster_.add_event_listener(
      [this, live = live_](const raft::NodeEvent& event) {
        if (!live->active || live->crashes_pending <= 0) return;
        if (event.kind != raft::NodeEvent::Kind::kBecameLeader) return;
        --live->crashes_pending;
        cluster_.loop().schedule_at(event.at, [this, live] {
          if (!live->active) return;
          const ServerId id = cluster_.leader();
          if (id != kNoServer) {
            crash_now(id, /*deferred=*/true);
          } else {
            // The winner already stepped down within this tick; keep the
            // contract ("fires as soon as a leader emerges") and re-arm.
            ++live->crashes_pending;
          }
        });
      });
}

PlanRuntime::~PlanRuntime() {
  live_->active = false;  // defuse every closure still sitting in the loop
  cluster_.remove_event_listener(listener_handle_);
  restore_overrides();
}

TimePoint PlanRuntime::install(const FaultPlan& plan) {
  const TimePoint start = cluster_.loop().now();
  TimePoint end = start;
  for (const auto& planned : plan.actions()) {
    end = std::max(end, start + action_end(planned));
    cluster_.loop().schedule_at(start + planned.at,
                                [this, live = live_, action = planned.action] {
                                  if (live->active) execute(action);
                                });
  }
  return end;
}

TimePoint PlanRuntime::last_episode_at() const {
  for (auto it = markers_.rbegin(); it != markers_.rend(); ++it) {
    if (it->episode) return it->at;
  }
  return kNever;
}

void PlanRuntime::disarm_deferred_crash() { live_->crashes_pending = 0; }

void PlanRuntime::clear_markers() {
  markers_.clear();
  traffic_submitted_ = 0;
  reads_issued_ = 0;
  joins_completed_ = 0;
  leaves_completed_ = 0;
  last_crashed_ = kNoServer;
  live_->crashes_pending = 0;
}

void PlanRuntime::restore_overrides() {
  cluster_.network().set_latency(base_options_.latency);
  cluster_.network().set_broadcast_omission(base_options_.broadcast_omission);
  cluster_.network().set_uniform_loss(base_options_.uniform_loss);
  swapped_latency_ = nullptr;
  degraded_.clear();
  for (const ServerId id : scripted_) {
    if (cluster_.alive(id)) cluster_.node(id).mutable_policy().set_timeout_override(nullptr);
  }
  scripted_.clear();
  for (const ServerId id : isolated_) cluster_.network().heal(id);
  isolated_.clear();
  for (const auto& [a, b] : cut_links_) cluster_.network().heal_link(a, b);
  cut_links_.clear();
  for (const auto& [from, to] : one_way_cuts_) cluster_.network().heal_link_one_way(from, to);
  one_way_cuts_.clear();
}

ServerId PlanRuntime::resolve(const NodeRef& ref) const {
  switch (ref.kind) {
    case NodeRef::Kind::kId:
      return ref.server;
    case NodeRef::Kind::kLeader:
      return cluster_.leader();
    case NodeRef::Kind::kLastCrashed:
      return last_crashed_;
    case NodeRef::Kind::kTopFollower: {
      const ServerId leader = cluster_.leader();
      ServerId best = kNoServer;
      Priority best_priority = 0;
      for (const ServerId id : cluster_.members()) {
        if (id == leader || !cluster_.alive(id)) continue;
        const Priority p = cluster_.node(id).policy().current_config().priority;
        if (best == kNoServer || p > best_priority) {
          best = id;
          best_priority = p;
        }
      }
      return best;
    }
  }
  return kNoServer;
}

void PlanRuntime::crash_now(ServerId id, bool deferred) {
  PlanMarker marker;
  marker.at = cluster_.loop().now();
  marker.what = deferred ? "crash (deferred)" : "crash";
  marker.node = id;
  marker.log_index = cluster_.event_log().size();
  if (id == kNoServer || !cluster_.alive(id)) {
    marker.ok = false;
    markers_.push_back(std::move(marker));
    return;
  }
  // Crashing the acting leader starts a measurement episode: the Section VI
  // protocol times detection/election from this instant.
  marker.episode = (cluster_.leader() == id);
  cluster_.crash(id);
  last_crashed_ = id;
  markers_.push_back(std::move(marker));
}

void PlanRuntime::apply_latency() {
  LatencyFn base = swapped_latency_ ? swapped_latency_ : base_options_.latency;
  if (degraded_.empty()) {
    cluster_.network().set_latency(std::move(base));
    return;
  }
  cluster_.network().set_latency(
      [base, degraded = degraded_](ServerId from, ServerId to, Rng& rng) {
        Duration d = base(from, to, rng);
        const auto it = degraded.find(from);
        if (it != degraded.end()) d += it->second;
        return d;
      });
}

void PlanRuntime::traffic_tick(TimePoint end, Duration interval, std::size_t payload_bytes) {
  if (cluster_.loop().now() >= end) return;
  std::vector<std::uint8_t> payload(payload_bytes,
                                    static_cast<std::uint8_t>(traffic_submitted_ & 0xFF));
  if (cluster_.submit_via_leader(std::move(payload))) ++traffic_submitted_;
  const TimePoint next = cluster_.loop().now() + interval;
  if (next < end) {
    cluster_.loop().schedule_at(next, [this, live = live_, end, interval, payload_bytes] {
      if (live->active) traffic_tick(end, interval, payload_bytes);
    });
  }
}

void PlanRuntime::proposal_tick(TimePoint end, Duration interval, std::size_t per_tick,
                                std::size_t payload_bytes) {
  if (cluster_.loop().now() >= end) return;
  // Open loop: every tick offers the full `per_tick` regardless of how far
  // behind replication is; leaderless instants skip a beat, like traffic.
  for (std::size_t i = 0; i < per_tick; ++i) {
    std::vector<std::uint8_t> payload(payload_bytes,
                                      static_cast<std::uint8_t>(traffic_submitted_ & 0xFF));
    if (!cluster_.submit_via_leader(std::move(payload))) break;
    ++traffic_submitted_;
  }
  const TimePoint next = cluster_.loop().now() + interval;
  if (next < end) {
    cluster_.loop().schedule_at(next, [this, live = live_, end, interval, per_tick,
                                       payload_bytes] {
      if (live->active) proposal_tick(end, interval, per_tick, payload_bytes);
    });
  }
}

void PlanRuntime::read_tick(TimePoint end, Duration interval) {
  if (cluster_.loop().now() >= end) return;
  // Fire-and-audit: the probe ledger + InvariantChecker judge the grant;
  // the runtime only keeps the issue count. Leaderless instants skip a beat
  // (exactly like traffic), which is what read-heavy failover scenarios are
  // probing in the first place.
  const ServerId leader = cluster_.leader();
  if (leader != kNoServer && cluster_.submit_read(leader)) ++reads_issued_;
  const TimePoint next = cluster_.loop().now() + interval;
  if (next < end) {
    cluster_.loop().schedule_at(next, [this, live = live_, end, interval] {
      if (live->active) read_tick(end, interval);
    });
  }
}

void PlanRuntime::join_tick(ServerId id, Duration interval) {
  // One state machine, re-derived from the leader's membership every tick so
  // leader changes, rollbacks and lost replies all land on a retry instead of
  // a stuck phase: not-present -> AddLearner, learner -> Promote (the core
  // answers kNotCaughtUp until replication/snapshot catch-up finishes),
  // voter-in-joint -> wait, settled voter -> done.
  const ServerId leader = cluster_.leader();
  if (leader != kNoServer) {
    const auto& m = cluster_.node(leader).membership();
    if (m.is_voter(id)) {
      if (!m.joint()) {
        ++joins_completed_;
        PlanMarker marker;
        marker.at = cluster_.loop().now();
        marker.what = "join-complete";
        marker.node = id;
        marker.log_index = cluster_.event_log().size();
        markers_.push_back(std::move(marker));
        return;
      }
      // Joint config still resolving; the leader auto-appends Cnew on commit.
    } else if (m.is_learner(id)) {
      cluster_.propose_conf_change({rpc::ConfChangeOp::kPromote, id});
    } else {
      cluster_.propose_conf_change({rpc::ConfChangeOp::kAddLearner, id});
    }
  }
  cluster_.loop().schedule_at(cluster_.loop().now() + interval,
                              [this, live = live_, id, interval] {
                                if (live->active) join_tick(id, interval);
                              });
}

void PlanRuntime::leave_tick(ServerId id, Duration interval) {
  const ServerId leader = cluster_.leader();
  if (leader != kNoServer) {
    const auto& m = cluster_.node(leader).membership();
    if (!m.contains(id) && !m.joint()) {
      ++leaves_completed_;
      PlanMarker marker;
      marker.at = cluster_.loop().now();
      marker.what = "leave-complete";
      marker.node = id;
      marker.log_index = cluster_.event_log().size();
      markers_.push_back(std::move(marker));
      return;
    }
    // A joint config containing the target is the removal in flight; propose
    // only from a settled state (kBusy would be the answer anyway).
    if (!m.joint()) cluster_.propose_conf_change({rpc::ConfChangeOp::kRemove, id});
  }
  cluster_.loop().schedule_at(cluster_.loop().now() + interval,
                              [this, live = live_, id, interval] {
                                if (live->active) leave_tick(id, interval);
                              });
}

void PlanRuntime::execute(const FaultAction& action) {
  PlanMarker marker;
  marker.at = cluster_.loop().now();
  marker.what = action_name(action);
  marker.log_index = cluster_.event_log().size();

  struct Visitor {
    PlanRuntime& rt;
    PlanMarker& marker;

    void operator()(const CrashNode& a) {
      const ServerId id = rt.resolve(a.node);
      if (id == kNoServer && a.node.kind == NodeRef::Kind::kLeader) {
        // Leaderless right now: defer to the next election win.
        ++rt.live_->crashes_pending;
        marker.what = "crash (armed)";
        return;
      }
      rt.crash_now(id, /*deferred=*/false);
      marker.what.clear();  // crash_now recorded its own marker
    }
    void operator()(const RecoverNode& a) {
      const ServerId id = rt.resolve(a.node);
      marker.node = id;
      if (id == kNoServer || rt.cluster_.alive(id)) {
        marker.ok = false;
        return;
      }
      rt.cluster_.recover(id);
    }
    void operator()(const RecoverAll&) {
      for (const ServerId id : rt.cluster_.members()) {
        if (!rt.cluster_.alive(id)) rt.cluster_.recover(id);
      }
    }
    void operator()(const IsolateNode& a) {
      const ServerId id = rt.resolve(a.node);
      marker.node = id;
      if (id == kNoServer) {
        marker.ok = false;
        return;
      }
      rt.cluster_.network().isolate(id);
      rt.isolated_.insert(id);
    }
    void operator()(const HealNode& a) {
      const ServerId id = rt.resolve(a.node);
      marker.node = id;
      if (id == kNoServer) {
        marker.ok = false;
        return;
      }
      rt.cluster_.network().heal(id);
      rt.isolated_.erase(id);
    }
    void operator()(const CutLink& a) {
      const ServerId x = rt.resolve(a.a);
      const ServerId y = rt.resolve(a.b);
      marker.node = x;
      if (x == kNoServer || y == kNoServer || x == y) {
        marker.ok = false;
        return;
      }
      if (a.bidirectional) {
        rt.cluster_.network().cut_link(x, y);
        rt.cut_links_.insert(std::minmax(x, y));
      } else {
        rt.cluster_.network().cut_link_one_way(x, y);
        rt.one_way_cuts_.insert({x, y});
      }
    }
    void operator()(const HealLink& a) {
      const ServerId x = rt.resolve(a.a);
      const ServerId y = rt.resolve(a.b);
      marker.node = x;
      if (x == kNoServer || y == kNoServer) {
        marker.ok = false;
        return;
      }
      rt.cluster_.network().heal_link(x, y);
      rt.cluster_.network().heal_link_one_way(x, y);
      rt.cluster_.network().heal_link_one_way(y, x);
      rt.cut_links_.erase(std::minmax(x, y));
      rt.one_way_cuts_.erase({x, y});
      rt.one_way_cuts_.erase({y, x});
    }
    void operator()(const PartialIsolate& a) {
      const ServerId id = rt.resolve(a.node);
      marker.node = id;
      if (id == kNoServer) {
        marker.ok = false;
        return;
      }
      for (const ServerId other : rt.cluster_.members()) {
        if (other == id) continue;
        if (a.direction == LinkDirection::kOutbound) {
          rt.cluster_.network().cut_link_one_way(id, other);
          rt.one_way_cuts_.insert({id, other});
        } else {
          rt.cluster_.network().cut_link_one_way(other, id);
          rt.one_way_cuts_.insert({other, id});
        }
      }
    }
    void operator()(const HealPartial& a) {
      const ServerId id = rt.resolve(a.node);
      marker.node = id;
      if (id == kNoServer) {
        marker.ok = false;
        return;
      }
      for (const ServerId other : rt.cluster_.members()) {
        if (other == id) continue;
        rt.cluster_.network().heal_link_one_way(id, other);
        rt.cluster_.network().heal_link_one_way(other, id);
        rt.one_way_cuts_.erase({id, other});
        rt.one_way_cuts_.erase({other, id});
      }
    }
    void operator()(const SwapLatency& a) {
      rt.swapped_latency_ = a.latency;
      rt.apply_latency();
    }
    void operator()(const DegradeNode& a) {
      const ServerId id = rt.resolve(a.node);
      marker.node = id;
      if (id == kNoServer) {
        marker.ok = false;
        return;
      }
      rt.degraded_[id] = a.extra;
      rt.apply_latency();
    }
    void operator()(const RestoreLatency&) {
      rt.swapped_latency_ = nullptr;
      rt.degraded_.clear();
      rt.apply_latency();
    }
    void operator()(const SetLossRate& a) {
      rt.cluster_.network().set_broadcast_omission(a.broadcast_omission);
      rt.cluster_.network().set_uniform_loss(a.uniform_loss);
    }
    void operator()(const LeaderTransfer& a) {
      const ServerId leader = rt.cluster_.leader();
      const ServerId target = rt.resolve(a.target);
      marker.node = target;
      if (leader == kNoServer || target == kNoServer || target == leader) {
        marker.ok = false;
        return;
      }
      marker.ok = rt.cluster_.node(leader).transfer_leadership(target,
                                                               rt.cluster_.loop().now());
      if (marker.ok) rt.cluster_.pump(leader);
    }
    void operator()(const TrafficBurst& a) {
      if (a.interval <= 0) {
        // A non-positive interval would reschedule at the same virtual
        // instant forever, livelocking the loop.
        marker.ok = false;
        return;
      }
      rt.traffic_tick(rt.cluster_.loop().now() + a.duration, a.interval, a.payload_bytes);
    }
    void operator()(const ProposalBurst& a) {
      if (a.interval <= 0 || a.per_tick == 0) {  // same livelock guard as TrafficBurst
        marker.ok = false;
        return;
      }
      rt.proposal_tick(rt.cluster_.loop().now() + a.duration, a.interval, a.per_tick,
                       a.payload_bytes);
    }
    void operator()(const ClientRead& a) {
      if (a.interval <= 0) {  // same livelock guard as TrafficBurst
        marker.ok = false;
        return;
      }
      rt.read_tick(rt.cluster_.loop().now() + a.duration, a.interval);
    }
    void operator()(const ScriptTimeout& a) {
      const ServerId id = rt.resolve(a.node);
      marker.node = id;
      if (id == kNoServer || !rt.cluster_.alive(id)) {
        marker.ok = false;
        return;
      }
      rt.cluster_.node(id).mutable_policy().set_timeout_override(a.script);
      if (a.script) {
        rt.scripted_.insert(id);
      } else {
        rt.scripted_.erase(id);
      }
    }
    void operator()(const MarkEpisode& a) {
      marker.episode = true;
      marker.label = a.label;
    }
    void operator()(const TriggerSnapshot& a) {
      const ServerId id = rt.resolve(a.node);
      marker.node = id;
      if (id == kNoServer || !rt.cluster_.alive(id)) {
        marker.ok = false;
        return;
      }
      marker.ok = rt.cluster_.trigger_snapshot(id).has_value();
    }
    void operator()(const JoinServer& a) {
      marker.node = a.id;
      if (a.id == kNoServer || a.retry_interval <= 0) {
        marker.ok = false;
        return;
      }
      // A replacement scenario may have pre-staged the machine; otherwise
      // provision it now. An id that is already a cluster member is a plan
      // bug only if it was never removed — the tick loop sorts that out.
      bool present = false;
      for (const ServerId m : rt.cluster_.members()) present = present || (m == a.id);
      if (!present) rt.cluster_.add_host(a.id);
      rt.join_tick(a.id, a.retry_interval);
    }
    void operator()(const LeaveServer& a) {
      const ServerId id = rt.resolve(a.node);
      marker.node = id;
      if (id == kNoServer || a.retry_interval <= 0) {
        marker.ok = false;
        return;
      }
      rt.leave_tick(id, a.retry_interval);
    }
    void operator()(const SnapshotAndCrash& a) {
      const ServerId id = rt.resolve(a.node);
      marker.node = id;
      if (id == kNoServer || !rt.cluster_.alive(id)) {
        marker.ok = false;
        return;
      }
      rt.cluster_.trigger_snapshot(id);  // best-effort: crash follows anyway
      rt.crash_now(id, /*deferred=*/false);
      // crash_now recorded the marker (incl. the episode flag); rename it so
      // traces attribute the crash to this compound action.
      if (!rt.markers_.empty()) rt.markers_.back().what = "snapshot-crash";
      marker.what.clear();
    }
  };

  std::visit(Visitor{*this, marker}, action);
  if (!marker.what.empty()) markers_.push_back(std::move(marker));
}

}  // namespace escape::sim
