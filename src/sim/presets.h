// Canonical experiment configurations matching the paper's setup
// (Section VI-A): Compute Canada VMs with NetEm latency uniform in
// 100–200 ms, Raft election timeouts 1500–3000 ms (the range Raft
// recommends for that latency), ESCAPE baseTime 1500 ms with k = 500 ms,
// and 500 ms leader heartbeats. Shared by benches, examples and tests.
#pragma once

#include "core/escape_policy.h"
#include "sim/sim_cluster.h"

namespace escape::sim::presets {

inline core::EscapeOptions paper_escape_options() {
  core::EscapeOptions o;
  o.base_time = from_ms(1500);
  o.gap = from_ms(500);
  return o;
}

inline PolicyFactory escape_policy(core::EscapeOptions opts = paper_escape_options()) {
  return [opts](ServerId id, std::size_t n) {
    return std::make_unique<core::EscapePolicy>(id, n, opts);
  };
}

inline PolicyFactory zraft_policy(core::EscapeOptions opts = paper_escape_options()) {
  return [opts](ServerId id, std::size_t n) { return core::make_zraft_policy(id, n, opts); };
}

inline PolicyFactory raft_policy(Duration timeout_min = from_ms(1500),
                                 Duration timeout_max = from_ms(3000)) {
  return raft_policy_factory(timeout_min, timeout_max);
}

/// The paper's base deployment: `n` servers, 100–200 ms latency, 500 ms
/// heartbeats, and Δ = `broadcast_omission` receiver-omission loss.
inline ClusterOptions paper_cluster(std::size_t n, PolicyFactory policy, std::uint64_t seed,
                                    double broadcast_omission = 0.0) {
  ClusterOptions o;
  o.size = n;
  o.policy = std::move(policy);
  o.seed = seed;
  o.network.latency = uniform_latency(from_ms(100), from_ms(200));
  o.network.broadcast_omission = broadcast_omission;
  o.node.heartbeat_interval = from_ms(500);
  return o;
}

}  // namespace escape::sim::presets
