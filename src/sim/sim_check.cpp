#include "sim/sim_check.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <iterator>
#include <set>
#include <stdexcept>
#include <utility>

#include "sim/trial_pool.h"

namespace escape::sim {

namespace {

// Action weights for the fuzz vocabulary. Crashes dominate (they are the
// paper's subject and the only episode openers), but every fault family —
// including the snapshot pair — keeps enough mass that a few hundred trials
// cover the whole vocabulary.
enum class FuzzAction : int {
  kCrash = 0,
  kCutLink,
  kPartialIsolate,
  kIsolate,
  kDegrade,
  kLossStorm,
  kTransfer,
  kBurst,
  kProposalBurst,
  kSnapshot,
  kSnapshotCrash,
  kClientRead,
  kJoinServer,
  kLeaveServer,
  kCount,
};

constexpr std::size_t kFuzzActionCount = static_cast<std::size_t>(FuzzAction::kCount);

/// Name + default weight per FuzzAction, in enum order.
struct ActionSpec {
  const char* name;
  int weight;
};
// The membership pair defaults to weight 0: a zero weight draws no RNG and
// adds nothing to the weight total, so every pre-membership scenario seed
// still maps to the byte-identical schedule (the repro contract). CI's
// dedicated membership pass opts in with --actions join-server=N,...
constexpr ActionSpec kActionSpecs[] = {
    {"crash", 30},   {"cut-link", 12}, {"partial-isolate", 12}, {"isolate", 8},
    {"degrade", 10}, {"loss-storm", 10}, {"transfer", 8},       {"burst", 10},
    {"proposal-burst", 12}, {"snapshot", 12}, {"snapshot-crash", 8}, {"client-read", 14},
    {"join-server", 0}, {"leave-server", 0},
};
static_assert(std::size(kActionSpecs) == kFuzzActionCount,
              "every FuzzAction needs a name + default weight row");

/// Default weights with `overrides` applied (unknown keys are ignored here;
/// the CLI validates them against default_action_weights()). A fully zeroed
/// table is a misconfiguration, not a request to fuzz nothing — honoring the
/// "=0 retires a family" contract means never silently substituting one.
std::array<int, kFuzzActionCount> resolve_weights(
    const std::map<std::string, int>& overrides) {
  if (effective_action_weight_total(overrides) <= 0) {
    throw std::invalid_argument("SimCheck: every action weight is zero");
  }
  std::array<int, kFuzzActionCount> weights{};
  for (std::size_t i = 0; i < kFuzzActionCount; ++i) {
    const auto it = overrides.find(kActionSpecs[i].name);
    weights[i] = it == overrides.end() ? kActionSpecs[i].weight : std::max(0, it->second);
  }
  return weights;
}

FuzzAction pick_action(Rng& rng, const std::array<int, kFuzzActionCount>& weights) {
  int total = 0;
  for (int w : weights) total += w;
  std::int64_t roll = rng.uniform_int(0, total - 1);  // total > 0 by resolve_weights
  for (std::size_t i = 0;; ++i) {
    roll -= weights[i];
    if (roll < 0) return static_cast<FuzzAction>(i);
  }
}

Duration ms_between(Rng& rng, std::int64_t lo, std::int64_t hi) {
  return from_ms(rng.uniform_int(lo, hi));
}

}  // namespace

const std::map<std::string, int>& default_action_weights() {
  static const std::map<std::string, int> weights = [] {
    std::map<std::string, int> m;
    for (const auto& spec : kActionSpecs) m.emplace(spec.name, spec.weight);
    return m;
  }();
  return weights;
}

int effective_action_weight_total(const std::map<std::string, int>& overrides) {
  int total = 0;
  for (const auto& spec : kActionSpecs) {
    const auto it = overrides.find(spec.name);
    total += it == overrides.end() ? spec.weight : std::max(0, it->second);
  }
  return total;
}

FuzzCase make_fuzz_case(std::uint64_t scenario_seed, const SimCheckOptions& options) {
  FuzzCase c;
  c.scenario_seed = scenario_seed;
  Rng rng(scenario_seed);

  const auto n = static_cast<std::size_t>(rng.uniform_int(
      static_cast<std::int64_t>(options.min_servers),
      static_cast<std::int64_t>(options.max_servers)));
  c.params.servers = n;
  // Bias toward the paper's policy; Z-Raft and Raft keep the invariants
  // honest on the non-ESCAPE paths too.
  static const char* kPolicies[] = {"escape", "escape", "zraft", "raft"};
  c.params.policy = kPolicies[rng.uniform_int(0, 3)];
  static constexpr double kBaselineLoss[] = {0.0, 0.0, 0.1, 0.2};
  c.params.broadcast_omission = kBaselineLoss[rng.uniform_int(0, 3)];
  // Half the trials run with automatic compaction so snapshots interleave
  // with every other fault family even when no snapshot action is drawn; the
  // thresholds are small enough that sustained background traffic crosses
  // them several times per trial.
  static constexpr LogIndex kSnapshotIntervals[] = {0, 0, 40, 80};
  c.params.snapshot_interval = kSnapshotIntervals[rng.uniform_int(0, 3)];
  c.params.seed = rng.next_u64();

  // --- compose a legal schedule -------------------------------------------
  // Legality at plan-construction time: concurrently scheduled crashes +
  // isolations never reach a quorum of servers, every link fault and
  // latency/loss override is healed, and every server is recovered before
  // the drain — so quiescence is a whole, connected cluster and deep_check
  // verifies a state every server participates in. (A crash-the-leader that
  // defers past its RecoverAll can briefly exceed the budget; the safety
  // invariants do not depend on liveness, and the closing sweep recovers
  // stragglers.)
  FaultPlan& plan = c.plan;
  const auto weights = resolve_weights(options.action_weights);
  const auto fault_budget = static_cast<std::size_t>((n - 1) / 2);
  const std::size_t action_count = static_cast<std::size_t>(
      rng.uniform_int(3, static_cast<std::int64_t>(std::max<std::size_t>(options.max_faults, 3))));

  Duration t = 0;
  std::size_t crashed_down = 0;          // outstanding crash schedules
  std::vector<Duration> crash_repairs;   // times of scheduled per-crash recoveries
  std::size_t isolated_down = 0;         // outstanding symmetric isolations
  std::vector<Duration> isolate_heals;   // times of scheduled HealNode actions
  std::vector<std::pair<ServerId, ServerId>> cut_pairs;  // symmetric cuts
  bool used_one_way = false;             // one-way cuts / partial isolations
  bool touched_latency = false;
  bool touched_loss = false;
  // Joined-but-not-yet-left server ids. Joins mint fresh ids above the seed
  // range (crash/isolate targeting stays on 1..n, so the quorum budget
  // arithmetic — computed against the seed voter count — remains a
  // conservative bound as the voter set grows); leaves only ever target an
  // outstanding joined id, never a seed voter.
  std::vector<ServerId> joined_live;
  auto next_join = static_cast<ServerId>(n) + 1;

  auto random_server = [&] {
    return static_cast<ServerId>(rng.uniform_int(1, static_cast<std::int64_t>(n)));
  };

  // Background client traffic for the whole fuzz window: under faults this
  // keeps follower logs unevenly replicated, which is what gives the
  // log-matching and state-machine invariants something to bite on.
  const Duration traffic_interval = ms_between(rng, 80, 250);

  for (std::size_t k = 0; k < action_count; ++k) {
    t += ms_between(rng, 400, 2'800);
    // Credit repairs that are scheduled at or before the new action time.
    for (auto it = crash_repairs.begin(); it != crash_repairs.end();) {
      if (*it <= t) {
        if (crashed_down > 0) --crashed_down;
        it = crash_repairs.erase(it);
      } else {
        ++it;
      }
    }
    for (auto it = isolate_heals.begin(); it != isolate_heals.end();) {
      if (*it <= t) {
        if (isolated_down > 0) --isolated_down;
        it = isolate_heals.erase(it);
      } else {
        ++it;
      }
    }

    switch (pick_action(rng, weights)) {
      case FuzzAction::kCrash: {
        if (crashed_down + isolated_down >= fault_budget) break;  // keep quorum
        // The leader is the interesting victim (it opens a measurement
        // episode and may defer); direct ids probe follower crashes. Each
        // crash pairs with a *targeted* recovery so overlapping crashes keep
        // independent down-windows and the multi-node-down budget actually
        // gets sustained exercise. A leader crash's victim is unknown until
        // it fires, so its repair is best-effort (last_crashed may point at
        // a newer victim by then); the closing sweeps revive stragglers.
        const bool leader = rng.chance(0.6);
        const ServerId direct = random_server();
        plan.at(t, CrashNode{leader ? NodeRef::leader() : NodeRef::id(direct)});
        ++crashed_down;
        const Duration up = t + ms_between(rng, 2'500, 8'000);
        plan.at(up, RecoverNode{leader ? NodeRef::last_crashed() : NodeRef::id(direct)});
        crash_repairs.push_back(up);
        break;
      }
      case FuzzAction::kCutLink: {
        const ServerId a = random_server();
        ServerId b = random_server();
        if (a == b) b = (b % static_cast<ServerId>(n)) + 1;
        const bool bidirectional = rng.chance(0.5);
        plan.at(t, CutLink{NodeRef::id(a), NodeRef::id(b), bidirectional});
        if (bidirectional) {
          cut_pairs.emplace_back(a, b);
        } else {
          used_one_way = true;
        }
        plan.at(t + ms_between(rng, 1'500, 6'000), HealLink{NodeRef::id(a), NodeRef::id(b)});
        break;
      }
      case FuzzAction::kPartialIsolate: {
        // Id-targeted so the paired heal always reaches the same victim; a
        // closing HealPartial sweep covers every node regardless.
        const ServerId victim = random_server();
        const auto direction =
            rng.chance(0.5) ? LinkDirection::kOutbound : LinkDirection::kInbound;
        plan.at(t, PartialIsolate{NodeRef::id(victim), direction});
        used_one_way = true;
        plan.at(t + ms_between(rng, 2'000, 7'000), HealPartial{NodeRef::id(victim)});
        break;
      }
      case FuzzAction::kIsolate: {
        if (crashed_down + isolated_down >= fault_budget) break;  // keep quorum
        const ServerId victim = random_server();
        plan.at(t, IsolateNode{NodeRef::id(victim)});
        ++isolated_down;
        const Duration heal = t + ms_between(rng, 1'500, 5'000);
        plan.at(heal, HealNode{NodeRef::id(victim)});
        isolate_heals.push_back(heal);
        break;
      }
      case FuzzAction::kDegrade: {
        const bool leader = rng.chance(0.5);
        plan.at(t, DegradeNode{leader ? NodeRef::leader() : NodeRef::id(random_server()),
                               ms_between(rng, 1'000, 5'000)});
        touched_latency = true;
        break;
      }
      case FuzzAction::kLossStorm: {
        plan.at(t, SetLossRate{rng.uniform_real(0.0, 0.4), rng.uniform_real(0.0, 0.15)});
        touched_loss = true;
        break;
      }
      case FuzzAction::kTransfer: {
        plan.at(t, LeaderTransfer{rng.chance(0.7) ? NodeRef::top_follower()
                                                  : NodeRef::id(random_server())});
        break;
      }
      case FuzzAction::kBurst: {
        plan.at(t, TrafficBurst{ms_between(rng, 1'000, 5'000), ms_between(rng, 50, 250)});
        break;
      }
      case FuzzAction::kProposalBurst: {
        // Open-loop write storm racing whatever faults surround it: the
        // leader builds real replication backlog, so failover, snapshot
        // catch-up and partitions land mid-pipeline — where a stale conflict
        // hint or a lost in-flight batch would strand the commit index or
        // diverge a replica (both audited at quiescence by deep_check).
        plan.at(t, ProposalBurst{ms_between(rng, 1'000, 4'000), ms_between(rng, 10, 60),
                                 static_cast<std::size_t>(rng.uniform_int(2, 16))});
        break;
      }
      case FuzzAction::kClientRead: {
        // A read storm overlapping whatever faults surround it: every grant
        // is audited by the read-linearizability invariant, so a lease
        // served stale across a crash/partition/transfer shows up as a
        // violation with a one-line repro.
        plan.at(t, ClientRead{ms_between(rng, 1'500, 6'000), ms_between(rng, 80, 350)});
        break;
      }
      case FuzzAction::kSnapshot: {
        // Compacting the leader is what forces InstallSnapshot catch-up on
        // anyone who falls behind later; follower snapshots probe the
        // restart-from-own-snapshot path.
        const bool leader = rng.chance(0.6);
        plan.at(t, TriggerSnapshot{leader ? NodeRef::leader() : NodeRef::id(random_server())});
        break;
      }
      case FuzzAction::kSnapshotCrash: {
        if (crashed_down + isolated_down >= fault_budget) break;  // keep quorum
        // Compact-then-die: the victim restarts from the snapshot it just
        // took. Same budget and targeted-recovery pairing as kCrash.
        const bool leader = rng.chance(0.5);
        const ServerId direct = random_server();
        plan.at(t, SnapshotAndCrash{leader ? NodeRef::leader() : NodeRef::id(direct)});
        ++crashed_down;
        const Duration up = t + ms_between(rng, 2'500, 8'000);
        plan.at(up, RecoverNode{leader ? NodeRef::last_crashed() : NodeRef::id(direct)});
        crash_repairs.push_back(up);
        break;
      }
      case FuzzAction::kJoinServer: {
        // Full AddServer workflow (provision, learner catch-up, promote)
        // racing whatever faults surround it; the retry loop rides through
        // leaderless gaps and kBusy windows on its own.
        plan.at(t, JoinServer{next_join});
        joined_live.push_back(next_join);
        ++next_join;
        break;
      }
      case FuzzAction::kLeaveServer: {
        if (joined_live.empty()) break;  // nothing legally removable yet
        const auto idx = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(joined_live.size()) - 1));
        plan.at(t, LeaveServer{NodeRef::id(joined_live[idx])});
        joined_live.erase(joined_live.begin() + static_cast<std::ptrdiff_t>(idx));
        break;
      }
      case FuzzAction::kCount:
        break;  // unreachable
    }
  }

  // Closing sweep: restore the baseline world so the drain runs on a whole
  // cluster. A second RecoverAll mid-drain picks up any crash-the-leader
  // that deferred past the first sweep.
  const Duration t_end = t + ms_between(rng, 1'000, 3'000);
  plan.at(t_end, RecoverAll{});
  for (const auto& [a, b] : cut_pairs) {
    plan.at(t_end, HealLink{NodeRef::id(a), NodeRef::id(b)});
  }
  if (used_one_way) {
    for (ServerId id = 1; id <= static_cast<ServerId>(n); ++id) {
      plan.at(t_end, HealPartial{NodeRef::id(id)});
    }
  }
  if (touched_latency) plan.at(t_end, RestoreLatency{});
  if (touched_loss) plan.at(t_end, SetLossRate{c.params.broadcast_omission, 0.0});
  plan.at(0, TrafficBurst{t_end, traffic_interval});
  plan.at(t_end + options.drain / 2, RecoverAll{});
  return c;
}

std::vector<std::string> describe_plan(const FaultPlan& plan) {
  // Stable sort by time so same-instant actions (the closing sweep) keep
  // their deterministic insertion order in the repro output.
  std::vector<PlannedAction> ordered = plan.actions();
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const PlannedAction& a, const PlannedAction& b) { return a.at < b.at; });
  std::vector<std::string> lines;
  lines.reserve(ordered.size());
  for (const auto& planned : ordered) {
    lines.push_back(std::to_string(to_ms(planned.at)) + "ms " + action_name(planned.action));
  }
  return lines;
}

ScenarioReport run_fuzz_trial(std::uint64_t scenario_seed, const SimCheckOptions& options,
                              SimCheckFailure* failure) {
  const FuzzCase fuzz = make_fuzz_case(scenario_seed, options);

  ScenarioSpec spec;
  spec.name = "simcheck-" + std::to_string(scenario_seed);
  spec.description = "randomized fault schedule";
  spec.plan = [&fuzz](SimCluster&, const ScenarioParams&) { return fuzz.plan; };
  spec.drain = options.drain;
  spec.min_servers = fuzz.params.servers;

  ScenarioReport report = run_scenario(spec, fuzz.params);
  bool diverged = false;
  if (options.check_determinism) {
    const ScenarioReport replay = run_scenario(spec, fuzz.params);
    diverged = replay.trace != report.trace;
  }

  if ((!report.bootstrapped || !report.safety_ok() || diverged) && failure) {
    failure->scenario_seed = scenario_seed;
    failure->policy = fuzz.params.policy;
    failure->servers = fuzz.params.servers;
    failure->bootstrapped = report.bootstrapped;
    failure->trace_diverged = diverged;
    failure->violations = report.violations;
    failure->repro = "sim_check --scenario-seed " + std::to_string(scenario_seed);
    // Weight overrides redefine the seed -> schedule mapping; a repro line
    // that omitted them would regenerate a different trial and "pass".
    if (!options.action_weights.empty()) {
      std::string spec;
      for (const auto& [name, weight] : options.action_weights) {
        spec += (spec.empty() ? "" : ",") + name + "=" + std::to_string(weight);
      }
      failure->repro += " --actions " + spec;
    }
  }
  return report;
}

SimCheckResult run_sim_check(const SimCheckOptions& options) {
  struct TrialSummary {
    std::size_t executed_actions = 0;
    std::size_t episodes = 0;
    std::size_t converged = 0;
    std::size_t traffic = 0;
    std::map<std::string, std::size_t> histogram;
    bool failed = false;
    SimCheckFailure failure;
  };

  TrialPool pool(options.threads);
  const std::vector<TrialSummary> summaries = pool.map_seeded<TrialSummary>(
      options.trials, options.root_seed, [&](std::size_t, std::uint64_t seed) {
        TrialSummary s;
        // Regenerating the case for the histogram is cheap (plan synthesis
        // is RNG arithmetic, no simulation) and keeps run_fuzz_trial's
        // signature focused on the verdict.
        const FuzzCase fuzz = make_fuzz_case(seed, options);
        for (const auto& planned : fuzz.plan.actions()) {
          ++s.histogram[action_name(planned.action)];
        }
        SimCheckFailure failure;  // failure.repro stays empty for a passing trial
        const ScenarioReport report = run_fuzz_trial(seed, options, &failure);
        s.executed_actions = report.executed_actions;
        s.episodes = report.episodes.size();
        for (const auto& e : report.episodes) {
          if (e.converged) ++s.converged;
        }
        s.traffic = report.traffic_submitted;
        if (!failure.repro.empty()) {
          s.failed = true;
          s.failure = failure;
          if (options.announce_failures) {
            // One buffered write per failure: concurrent workers must not
            // interleave a repro line with another seed's violation detail.
            std::string msg = "SimCheck violation (seed " + std::to_string(seed) + ", " +
                              failure.policy + ", " + std::to_string(failure.servers) +
                              " servers)" +
                              (failure.trace_diverged ? " [trace diverged]" : "") +
                              "; repro: " + failure.repro + "\n";
            for (const auto& v : failure.violations) msg += "  violation: " + v + "\n";
            std::fputs(msg.c_str(), stderr);
          }
        }
        return s;
      });

  SimCheckResult result;
  result.trials = options.trials;
  for (const auto& s : summaries) {  // trial-index order: thread-count invariant
    result.executed_actions += s.executed_actions;
    result.episodes += s.episodes;
    result.converged_episodes += s.converged;
    result.traffic_submitted += s.traffic;
    for (const auto& [name, count] : s.histogram) result.action_histogram[name] += count;
    if (s.failed) result.failures.push_back(s.failure);
  }
  return result;
}

}  // namespace escape::sim
