#include "sim/event_loop.h"

#include <utility>

namespace escape::sim {

void EventLoop::schedule_at(TimePoint at, Callback fn) {
  if (at < now_) at = now_;  // no time travel; deliver "immediately"
  queue_.push(Event{at, seq_++, std::move(fn)});
}

std::size_t EventLoop::run_until(TimePoint until) {
  std::size_t n = 0;
  while (!queue_.empty() && queue_.top().at <= until) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.at;
    ev.fn();
    ++n;
    ++processed_;
  }
  if (queue_.empty() || queue_.top().at > until) {
    if (until > now_) now_ = until;
  }
  return n;
}

std::size_t EventLoop::run_until_stopped(TimePoint until) {
  stop_requested_ = false;
  std::size_t n = 0;
  while (!stop_requested_ && !queue_.empty() && queue_.top().at <= until) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.at;
    ev.fn();
    ++n;
    ++processed_;
  }
  return n;
}

}  // namespace escape::sim
