#include "sim/invariants.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace escape::sim {

InvariantChecker::InvariantChecker(SimCluster& cluster, bool check_configs)
    : cluster_(cluster), check_configs_(check_configs) {
  cluster_.add_event_listener([this](const raft::NodeEvent& e) { on_event(e); });
  cluster_.add_read_listener(
      [this](ServerId id, const raft::ReadGrant& g) { on_read(id, g); });
}

void InvariantChecker::on_read(ServerId id, const raft::ReadGrant& grant) {
  if (!grant.ok) return;  // rejections are a liveness outcome, not a safety one
  // Only probe-ledger reads are auditable: the floor was recorded at issue
  // time by SimCluster::submit_read (and is erased right after this runs).
  const auto floor = cluster_.read_floor(id, grant.id);
  if (!floor) return;
  ++reads_checked_;
  if (grant.read_index < *floor) {
    std::ostringstream os;
    os << "read linearizability: " << server_name(id) << " granted a "
       << (grant.via_lease ? "lease" : "read-index") << " read at index " << grant.read_index
       << " behind commit floor " << *floor << " observed at issue time";
    add_violation(os.str());
  }
  if (cluster_.alive(id) && cluster_.node(id).last_applied() < grant.read_index) {
    std::ostringstream os;
    os << "read linearizability: " << server_name(id) << " granted a read at index "
       << grant.read_index << " but applied only " << cluster_.node(id).last_applied();
    add_violation(os.str());
  }
}

void InvariantChecker::add_violation(std::string v) {
  LOG_ERROR("INVARIANT VIOLATION: " << v);
  violations_.push_back(std::move(v));
}

void InvariantChecker::on_event(const raft::NodeEvent& event) {
  if (event.kind == raft::NodeEvent::Kind::kBecameLeader) {
    const auto [it, inserted] = leaders_by_term_.try_emplace(event.term, event.node);
    if (!inserted && it->second != event.node) {
      std::ostringstream os;
      os << "election safety: term " << event.term << " led by both "
         << server_name(it->second) << " and " << server_name(event.node);
      add_violation(os.str());
    }
    if (check_configs_) check_config_uniqueness();
  } else if (event.kind == raft::NodeEvent::Kind::kConfigAdopted && check_configs_) {
    check_config_uniqueness();
  }
}

void InvariantChecker::check_config_uniqueness() {
  // Lemma 3: same configuration clock implies different configurations.
  std::map<ConfClock, std::map<Priority, ServerId>> seen;
  for (ServerId id : cluster_.members()) {
    if (!cluster_.alive(id)) continue;
    const auto cfg = cluster_.node(id).policy().current_config();
    if (cfg.priority == 0 && cfg.conf_clock == 0) continue;  // non-ESCAPE policy
    auto& owners = seen[cfg.conf_clock];
    const auto [it, inserted] = owners.try_emplace(cfg.priority, id);
    if (!inserted) {
      std::ostringstream os;
      os << "config uniqueness (Lemma 3): pi(P=" << cfg.priority << ",k=" << cfg.conf_clock
         << ") held by both " << server_name(it->second) << " and " << server_name(id);
      add_violation(os.str());
    }
  }
}

void InvariantChecker::deep_check() {
  const auto& members = cluster_.members();

  // Log Matching: if two logs agree on (index, term) they agree on the whole
  // prefix up to that index. Only the stored overlap is comparable — entries
  // below either snapshot boundary are gone (their consistency is covered by
  // the snapshot checks below and Leader Completeness).
  for (std::size_t i = 0; i < members.size(); ++i) {
    for (std::size_t j = i + 1; j < members.size(); ++j) {
      if (!cluster_.alive(members[i]) || !cluster_.alive(members[j])) continue;
      const auto& la = cluster_.node(members[i]).log();
      const auto& lb = cluster_.node(members[j]).log();
      const LogIndex common = std::min(la.last_index(), lb.last_index());
      const LogIndex floor = std::max(la.first_index(), lb.first_index());
      LogIndex agree = 0;
      for (LogIndex x = common; x >= floor; --x) {
        if (la.term_at(x) == lb.term_at(x)) {
          agree = x;
          break;
        }
      }
      for (LogIndex x = floor; x <= agree; ++x) {
        const auto* ea = la.entry_at(x);
        const auto* eb = lb.entry_at(x);
        if (ea == nullptr || eb == nullptr || !(*ea == *eb)) {
          std::ostringstream os;
          os << "log matching: " << server_name(members[i]) << " and " << server_name(members[j])
             << " diverge at index " << x << " despite agreeing at " << agree;
          add_violation(os.str());
          break;
        }
      }
      // The snapshot boundary participates too: if one log's base falls
      // inside the other's stored range, the retained boundary term must
      // match the stored entry's term.
      for (const auto* pair : {&la, &lb}) {
        const auto& snapped = *pair;
        const auto& other = (pair == &la) ? lb : la;
        const LogIndex b = snapped.base();
        if (b >= other.first_index() && b <= other.last_index() &&
            other.term_at(b) != snapped.term_at(b)) {
          std::ostringstream os;
          os << "log matching: snapshot boundary " << b << " term mismatch between "
             << server_name(members[i]) << " and " << server_name(members[j]);
          add_violation(os.str());
        }
      }
    }
  }

  // State-Machine Safety: replicas never apply different entries at the same
  // log index. Compared by index, not stream position: a snapshot-restored
  // replica's applied stream begins past the snapshot, and a recovered one
  // replays from its snapshot boundary.
  for (std::size_t i = 0; i < members.size(); ++i) {
    std::map<LogIndex, const rpc::LogEntry*> by_index;
    for (const auto& entry : cluster_.applied(members[i])) {
      by_index[entry.index] = &entry;
    }
    for (std::size_t j = i + 1; j < members.size(); ++j) {
      for (const auto& entry : cluster_.applied(members[j])) {
        const auto it = by_index.find(entry.index);
        if (it != by_index.end() && !(*it->second == entry)) {
          std::ostringstream os;
          os << "state-machine safety: " << server_name(members[i]) << " and "
             << server_name(members[j]) << " applied different entries at index "
             << entry.index;
          add_violation(os.str());
          break;
        }
      }
    }
  }

  // Leader Completeness: every applied (hence committed) entry must be in
  // the current leader's log at the same index and term — or below the
  // leader's snapshot boundary, where it is committed by construction (a
  // leader only compacts its own applied prefix, and an installed snapshot
  // only covers committed state).
  const ServerId leader = cluster_.leader();
  if (leader != kNoServer) {
    const auto& llog = cluster_.node(leader).log();
    for (ServerId id : members) {
      for (const auto& entry : cluster_.applied(id)) {
        if (entry.index <= llog.base()) continue;  // compacted, committed
        const auto* in_leader = llog.entry_at(entry.index);
        if (in_leader == nullptr || !(*in_leader == entry)) {
          std::ostringstream os;
          os << "leader completeness: entry " << entry.index << "/t" << entry.term
             << " applied by " << server_name(id) << " missing from leader "
             << server_name(leader);
          add_violation(os.str());
          break;
        }
      }
    }
  }

  // Membership agreement: a committed configuration entry is one log entry,
  // so any two servers whose latest config boundary is the same *committed*
  // index must have materialized the identical membership from it. (Uncommitted
  // boundaries are exempt — one server may sit on a divergent branch a future
  // leader will truncate.)
  for (std::size_t i = 0; i < members.size(); ++i) {
    for (std::size_t j = i + 1; j < members.size(); ++j) {
      if (!cluster_.alive(members[i]) || !cluster_.alive(members[j])) continue;
      const auto& na = cluster_.node(members[i]);
      const auto& nb = cluster_.node(members[j]);
      if (na.conf_index() != nb.conf_index()) continue;
      // conf_index 0 is the bootstrap base, not a log entry: a freshly
      // joined host boots as a self-learner while the seed trio boots as
      // voters, and only an adopted conf entry reconciles them.
      if (na.conf_index() == 0) continue;
      if (na.conf_index() > na.commit_index() || nb.conf_index() > nb.commit_index()) continue;
      if (!(na.membership() == nb.membership())) {
        std::ostringstream os;
        os << "membership agreement: " << server_name(members[i]) << " and "
           << server_name(members[j]) << " disagree on the configuration committed at index "
           << na.conf_index() << " (" << rpc::to_string(na.membership()) << " vs "
           << rpc::to_string(nb.membership()) << ")";
        add_violation(os.str());
      }
    }
  }

  // Snapshot clock monotonicity: the configuration generation a snapshot
  // carries is a floor for the server that holds it. A node whose adopted
  // confClock is behind its own snapshot's has regressed through a restore —
  // exactly the hazard carrying π(P, k) through snapshots exists to prevent.
  // The snapshot's boundary must also never outrun what the server applied.
  for (ServerId id : members) {
    if (!cluster_.alive(id)) continue;
    const auto snap = cluster_.snapshot_store(id).load();
    if (!snap || snap->last_included_index == 0) continue;
    const auto& node = cluster_.node(id);
    const auto cfg = node.policy().current_config();
    if (cfg.conf_clock < snap->config.conf_clock) {
      std::ostringstream os;
      os << "snapshot clock regression: " << server_name(id) << " adopted confClock "
         << cfg.conf_clock << " behind its snapshot's " << snap->config.conf_clock;
      add_violation(os.str());
    }
    if (snap->last_included_index > node.last_applied()) {
      std::ostringstream os;
      os << "snapshot ahead of state: " << server_name(id) << " snapshot covers "
         << snap->last_included_index << " but applied only " << node.last_applied();
      add_violation(os.str());
    }
    if (node.log().base() > 0 && !node.log().matches(snap->last_included_index,
                                                     snap->last_included_term) &&
        node.log().base() == snap->last_included_index) {
      std::ostringstream os;
      os << "snapshot boundary mismatch: " << server_name(id) << " log base term "
         << node.log().base_term() << " != snapshot term " << snap->last_included_term;
      add_violation(os.str());
    }
  }
}

}  // namespace escape::sim
