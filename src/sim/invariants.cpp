#include "sim/invariants.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace escape::sim {

InvariantChecker::InvariantChecker(SimCluster& cluster, bool check_configs)
    : cluster_(cluster), check_configs_(check_configs) {
  cluster_.add_event_listener([this](const raft::NodeEvent& e) { on_event(e); });
}

void InvariantChecker::add_violation(std::string v) {
  LOG_ERROR("INVARIANT VIOLATION: " << v);
  violations_.push_back(std::move(v));
}

void InvariantChecker::on_event(const raft::NodeEvent& event) {
  if (event.kind == raft::NodeEvent::Kind::kBecameLeader) {
    const auto [it, inserted] = leaders_by_term_.try_emplace(event.term, event.node);
    if (!inserted && it->second != event.node) {
      std::ostringstream os;
      os << "election safety: term " << event.term << " led by both "
         << server_name(it->second) << " and " << server_name(event.node);
      add_violation(os.str());
    }
    if (check_configs_) check_config_uniqueness();
  } else if (event.kind == raft::NodeEvent::Kind::kConfigAdopted && check_configs_) {
    check_config_uniqueness();
  }
}

void InvariantChecker::check_config_uniqueness() {
  // Lemma 3: same configuration clock implies different configurations.
  std::map<ConfClock, std::map<Priority, ServerId>> seen;
  for (ServerId id : cluster_.members()) {
    if (!cluster_.alive(id)) continue;
    const auto cfg = cluster_.node(id).policy().current_config();
    if (cfg.priority == 0 && cfg.conf_clock == 0) continue;  // non-ESCAPE policy
    auto& owners = seen[cfg.conf_clock];
    const auto [it, inserted] = owners.try_emplace(cfg.priority, id);
    if (!inserted) {
      std::ostringstream os;
      os << "config uniqueness (Lemma 3): pi(P=" << cfg.priority << ",k=" << cfg.conf_clock
         << ") held by both " << server_name(it->second) << " and " << server_name(id);
      add_violation(os.str());
    }
  }
}

void InvariantChecker::deep_check() {
  const auto& members = cluster_.members();

  // Log Matching: if two logs agree on (index, term) they agree on the whole
  // prefix up to that index.
  for (std::size_t i = 0; i < members.size(); ++i) {
    for (std::size_t j = i + 1; j < members.size(); ++j) {
      if (!cluster_.alive(members[i]) || !cluster_.alive(members[j])) continue;
      const auto& la = cluster_.node(members[i]).log();
      const auto& lb = cluster_.node(members[j]).log();
      const LogIndex common = std::min(la.last_index(), lb.last_index());
      LogIndex agree = 0;
      for (LogIndex x = common; x >= 1; --x) {
        if (la.term_at(x) == lb.term_at(x)) {
          agree = x;
          break;
        }
      }
      for (LogIndex x = 1; x <= agree; ++x) {
        const auto* ea = la.entry_at(x);
        const auto* eb = lb.entry_at(x);
        if (ea == nullptr || eb == nullptr || !(*ea == *eb)) {
          std::ostringstream os;
          os << "log matching: " << server_name(members[i]) << " and " << server_name(members[j])
             << " diverge at index " << x << " despite agreeing at " << agree;
          add_violation(os.str());
          break;
        }
      }
    }
  }

  // State-Machine Safety: applied sequences are prefixes of one another.
  for (std::size_t i = 0; i < members.size(); ++i) {
    for (std::size_t j = i + 1; j < members.size(); ++j) {
      const auto& aa = cluster_.applied(members[i]);
      const auto& ab = cluster_.applied(members[j]);
      const std::size_t common = std::min(aa.size(), ab.size());
      for (std::size_t x = 0; x < common; ++x) {
        if (!(aa[x] == ab[x])) {
          std::ostringstream os;
          os << "state-machine safety: " << server_name(members[i]) << " and "
             << server_name(members[j]) << " applied different entries at position " << x;
          add_violation(os.str());
          break;
        }
      }
    }
  }

  // Leader Completeness: every applied (hence committed) entry must be in
  // the current leader's log at the same index and term.
  const ServerId leader = cluster_.leader();
  if (leader != kNoServer) {
    const auto& llog = cluster_.node(leader).log();
    for (ServerId id : members) {
      for (const auto& entry : cluster_.applied(id)) {
        const auto* in_leader = llog.entry_at(entry.index);
        if (in_leader == nullptr || !(*in_leader == entry)) {
          std::ostringstream os;
          os << "leader completeness: entry " << entry.index << "/t" << entry.term
             << " applied by " << server_name(id) << " missing from leader "
             << server_name(leader);
          add_violation(os.str());
          break;
        }
      }
    }
  }
}

}  // namespace escape::sim
