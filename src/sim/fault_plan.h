// Declarative fault/experiment plans.
//
// A FaultPlan is a typed, virtual-time-stamped schedule of actions — crash or
// recover a node, isolate it, cut links (symmetric or one-way), swap the
// latency model, change the loss rate Δ, transfer leadership, drive client
// traffic, script election timeouts, snapshot/compact a node's log (alone or
// paired with an immediate crash) — that a PlanRuntime executes
// deterministically on a SimCluster's EventLoop. Scenarios thereby become
// *data*: the paper's drivers (src/sim/scenario.cpp), every bench harness,
// and the named scenarios in the registry (src/sim/scenario_registry.h) all
// compose these actions instead of hand-rolling driving loops.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <variant>
#include <vector>

#include "raft/election_policy.h"
#include "sim/sim_cluster.h"

namespace escape::sim {

/// Names a server either directly or symbolically; symbolic references are
/// resolved at the virtual time the action executes, so a plan can say
/// "crash whoever leads then" without knowing ids up front.
struct NodeRef {
  enum class Kind : std::uint8_t {
    kId,           ///< a fixed server id
    kLeader,       ///< the cluster's leader at execution time
    kLastCrashed,  ///< the node most recently crashed by this runtime
    kTopFollower,  ///< alive follower with the highest configuration priority
  };
  Kind kind = Kind::kId;
  ServerId server = kNoServer;

  static NodeRef id(ServerId s) { return {Kind::kId, s}; }
  static NodeRef leader() { return {Kind::kLeader, kNoServer}; }
  static NodeRef last_crashed() { return {Kind::kLastCrashed, kNoServer}; }
  static NodeRef top_follower() { return {Kind::kTopFollower, kNoServer}; }
};

// --- action vocabulary -------------------------------------------------------

/// Kills the referenced node. Crashing the *leader* when the cluster is
/// momentarily leaderless defers the crash to the next election: the action
/// fires as soon as a leader emerges (the paper's repeated-crash protocol
/// under loss needs exactly this). Crash-of-leader actions automatically
/// start a measurement episode (see PlanMarker::episode).
struct CrashNode {
  NodeRef node;
};

/// Restarts a crashed node from its durable state. No-op if it is alive.
struct RecoverNode {
  NodeRef node = NodeRef::last_crashed();
};

/// Restarts every crashed node. The robust closer for plans whose crash
/// targets resolve dynamically (a deferred crash-the-leader may fire after
/// its paired RecoverNode already ran).
struct RecoverAll {};

/// Cuts every link touching the node (symmetric partition).
struct IsolateNode {
  NodeRef node;
};

/// Clears a prior IsolateNode on the node. (Pairwise and one-way cuts are
/// separate faults: heal those with HealLink / HealPartial.)
struct HealNode {
  NodeRef node;
};

/// Severs one pairwise link; `bidirectional = false` cuts only a -> b.
struct CutLink {
  NodeRef a;
  NodeRef b;
  bool bidirectional = true;
};

/// Restores one pairwise link (both directions and the one-way direction).
struct HealLink {
  NodeRef a;
  NodeRef b;
};

/// Direction selector for asymmetric node-level partitions.
enum class LinkDirection : std::uint8_t {
  kOutbound,  ///< node -> everyone cut; node still hears the cluster
  kInbound,   ///< everyone -> node cut; node still reaches the cluster
};

/// Cuts one direction of every link touching the node — e.g. a leader whose
/// heartbeats stop arriving while it still receives replies.
struct PartialIsolate {
  NodeRef node;
  LinkDirection direction = LinkDirection::kOutbound;
};

/// Heals all one-way cuts touching the node (both directions).
struct HealPartial {
  NodeRef node;
};

/// Swaps the network latency model; an empty function restores the model the
/// cluster had when the PlanRuntime was created.
struct SwapLatency {
  LatencyFn latency;
};

/// Adds `extra` delay to every message *sent by* the node on top of the
/// current model — a gray, degraded server rather than a dead one.
struct DegradeNode {
  NodeRef node;
  Duration extra = from_ms(3000);
};

/// Drops all latency overrides (SwapLatency and DegradeNode) and restores
/// the baseline model.
struct RestoreLatency {};

/// Changes the loss knobs mid-run: Section VI-D's broadcast receiver-omission
/// fraction Δ and/or the independent per-message drop probability.
struct SetLossRate {
  double broadcast_omission = 0.0;
  double uniform_loss = 0.0;
};

/// Asks the current leader for a proactive handoff (TimeoutNow) to `target`.
/// Best-effort: recorded as a failed marker when there is no leader or the
/// target is not fully caught up.
struct LeaderTransfer {
  NodeRef target = NodeRef::top_follower();
};

/// Submits a small command through whatever leader exists every `interval`
/// for `duration`, event-driven (no blocking loop), so traffic interleaves
/// with every other planned action.
struct TrafficBurst {
  Duration duration;
  Duration interval = from_ms(100);
  std::size_t payload_bytes = 16;
};

/// Open-loop write storm: submits `per_tick` commands through whatever
/// leader exists every `interval` for `duration`, regardless of completions
/// — unlike TrafficBurst's one-at-a-time trickle, this builds real
/// replication backlog. The pressure lever for the batched/pipelined write
/// path: storms racing failover, snapshot catch-up and partitions are where
/// a stale conflict hint or a lost in-flight batch would strand the commit
/// index or diverge a replica.
struct ProposalBurst {
  Duration duration;
  Duration interval = from_ms(20);
  std::size_t per_tick = 8;
  std::size_t payload_bytes = 16;
};

/// Issues a linearizable fast-path read through whatever leader exists every
/// `interval` for `duration` — the read-side twin of TrafficBurst. Reads go
/// through SimCluster::submit_read, so each one lands in the probe ledger
/// and the InvariantChecker audits its grant for staleness; hammering reads
/// across crashes, partitions, transfers and snapshots is how the
/// read-linearizability invariant earns its keep.
struct ClientRead {
  Duration duration;
  Duration interval = from_ms(150);
};

/// Installs (or, with an empty function, clears) a scripted election-timeout
/// override on the node's policy — the Figure-10 forced-competition lever.
struct ScriptTimeout {
  NodeRef node;
  raft::ElectionPolicy::TimeoutOverride script;
};

/// Explicitly starts a measurement episode (for scenarios whose triggering
/// fault is not a leader crash, e.g. a gray leader or a planned handoff).
struct MarkEpisode {
  std::string label;
};

/// Snapshots the node's state machine at its applied index and compacts its
/// log (SimCluster::trigger_snapshot). Recorded as a failed marker when the
/// node is down or nothing new is compactable.
struct TriggerSnapshot {
  NodeRef node = NodeRef::leader();
};

/// Drives the full AddServer workflow for a brand-new server: provisions the
/// host (SimCluster::add_host, unless it already exists — e.g. a replacement
/// scenario pre-staged the machine), proposes kAddLearner through whatever
/// leader exists, waits for the learner to catch up (snapshot or log
/// replication — the core answers kNotCaughtUp until it has), then proposes
/// kPromote and waits for the joint configuration to resolve. Every step
/// retries each `retry_interval` across leaderless gaps, kBusy windows
/// (another change in flight) and leader changes, so joins interleave with
/// arbitrary faults; a "join-complete" marker records when the server is a
/// settled voter.
struct JoinServer {
  ServerId id = kNoServer;
  Duration retry_interval = from_ms(200);
};

/// Drives RemoveServer: proposes kRemove for the node (resolved at execution
/// time, so NodeRef::leader() removes whoever leads then — the retiring-
/// leader path) and retries until the server is out of the configuration,
/// recording a "leave-complete" marker. The host itself stays racked (and
/// keeps ticking, harmlessly non-voting) — crash it separately to model
/// decommissioning.
struct LeaveServer {
  NodeRef node;
  Duration retry_interval = from_ms(200);
};

/// Snapshot immediately followed by a crash of the same node — the
/// compact-to-last-applied-then-restart hazard as one atomic action (a
/// paired RecoverNode/RecoverAll restarts it from the snapshot). Crashing
/// the leader this way opens a measurement episode, as CrashNode does.
struct SnapshotAndCrash {
  NodeRef node = NodeRef::leader();
};

using FaultAction =
    std::variant<CrashNode, RecoverNode, RecoverAll, IsolateNode, HealNode, CutLink,
                 HealLink, PartialIsolate, HealPartial, SwapLatency, DegradeNode,
                 RestoreLatency, SetLossRate, LeaderTransfer, TrafficBurst, ProposalBurst,
                 ClientRead, ScriptTimeout, MarkEpisode, TriggerSnapshot, SnapshotAndCrash,
                 JoinServer, LeaveServer>;

/// Human-readable tag for traces and markers ("crash", "traffic", ...).
const char* action_name(const FaultAction& action);

/// One scheduled action; `at` is a virtual-time offset from plan install.
struct PlannedAction {
  Duration at = 0;
  FaultAction action;
};

/// An ordered schedule of actions. Build with at()/then(); install with
/// PlanRuntime (or the higher-level ScenarioRunner).
class FaultPlan {
 public:
  /// Schedules `action` at `offset` from plan install. Offsets need not be
  /// monotone; the EventLoop orders execution.
  FaultPlan& at(Duration offset, FaultAction action);

  /// Schedules `action` `delay` after the previously added action.
  FaultPlan& then(Duration delay, FaultAction action);

  bool empty() const { return actions_.empty(); }
  const std::vector<PlannedAction>& actions() const { return actions_; }

  /// Offset of the latest scheduled action (0 for an empty plan). Traffic
  /// bursts extend the span by their duration.
  Duration span() const;

 private:
  std::vector<PlannedAction> actions_;
  Duration cursor_ = 0;
};

/// Execution record: one entry per action actually executed (plus deferred
/// crash-of-leader firings), with the resolved node where applicable.
struct PlanMarker {
  TimePoint at = 0;
  std::string what;
  ServerId node = kNoServer;
  bool ok = true;        ///< false when the action could not apply (e.g. no target)
  bool episode = false;  ///< starts a measured failover episode
  std::string label;     ///< MarkEpisode label, empty otherwise
  /// Size of the cluster's event log when the marker was recorded. Episode
  /// analysis starts here, which disambiguates same-virtual-time ticks: a
  /// deferred crash fires in the tick of the election win that triggered it,
  /// and the victim's own win must not converge the victim's episode.
  std::size_t log_index = 0;
};

/// Installs FaultPlans on a SimCluster and executes their actions at the
/// scheduled virtual times. One runtime can install many plans over a
/// cluster's lifetime (the series protocol installs one per run).
///
/// The runtime is a *scoped guard* for everything it overrides: the latency
/// model, loss knobs, and scripted timeouts are captured at construction and
/// restored by the destructor (or restore_overrides()), so an exception or
/// early return inside a scenario cannot leak a scripted topology into the
/// next run.
class PlanRuntime {
 public:
  explicit PlanRuntime(SimCluster& cluster);
  ~PlanRuntime();

  PlanRuntime(const PlanRuntime&) = delete;
  PlanRuntime& operator=(const PlanRuntime&) = delete;

  /// Schedules every action of `plan` at now() + offset. Returns the virtual
  /// time of the last scheduled action (traffic bursts: their end).
  TimePoint install(const FaultPlan& plan);

  /// Markers for every executed action, in execution order.
  const std::vector<PlanMarker>& markers() const { return markers_; }

  /// Time of the most recent episode-starting marker, or kNever.
  TimePoint last_episode_at() const;

  /// Resets markers, the traffic counter, and any still-pending deferred
  /// crash-of-leader trigger; series protocols call this between runs.
  void clear_markers();

  /// Defuses a crash-the-leader that is still waiting for an election win,
  /// without touching markers. A series run that timed out leaderless must
  /// not let its stale trigger kill the leader elected during the settle
  /// window (which nothing would recover).
  void disarm_deferred_crash();

  /// Commands submitted by TrafficBurst actions since the last clear.
  std::size_t traffic_submitted() const { return traffic_submitted_; }

  /// Fast-path reads issued by ClientRead actions since the last clear.
  std::size_t reads_issued() const { return reads_issued_; }

  /// JoinServer workflows that reached "settled voter" since the last clear.
  std::size_t joins_completed() const { return joins_completed_; }

  /// LeaveServer workflows whose target left the configuration since the
  /// last clear.
  std::size_t leaves_completed() const { return leaves_completed_; }

  /// Node most recently crashed by this runtime (kNoServer if none).
  ServerId last_crashed() const { return last_crashed_; }

  /// Restores everything this runtime overrode: the latency model, loss
  /// knobs, scripted timeouts, and any link faults (isolations, symmetric
  /// and one-way cuts) its plans installed. Idempotent; also run by the
  /// destructor, so an exception mid-scenario cannot leak a scripted
  /// topology into later runs on the same cluster.
  void restore_overrides();

  SimCluster& cluster() { return cluster_; }

 private:
  /// Shared with every closure this runtime schedules on the EventLoop.
  /// `active` is cleared by the destructor, turning closures that outlive
  /// the runtime (pending traffic ticks, a deferred crash) into no-ops.
  struct LiveFlag {
    bool active = true;
    /// Crash-the-leader actions awaiting an election win. A counter, not a
    /// flag: overlapping deferred crashes (churn under slow elections) each
    /// keep their per-action contract instead of silently merging.
    int crashes_pending = 0;
  };

  void execute(const FaultAction& action);
  ServerId resolve(const NodeRef& ref) const;
  void crash_now(ServerId id, bool deferred);
  void apply_latency();
  void traffic_tick(TimePoint end, Duration interval, std::size_t payload_bytes);
  void proposal_tick(TimePoint end, Duration interval, std::size_t per_tick,
                     std::size_t payload_bytes);
  void read_tick(TimePoint end, Duration interval);
  void join_tick(ServerId id, Duration interval);
  void leave_tick(ServerId id, Duration interval);

  SimCluster& cluster_;
  NetworkOptions base_options_;  ///< snapshot for scoped restore
  LatencyFn swapped_latency_;    ///< active SwapLatency model (null = baseline)
  std::map<ServerId, Duration> degraded_;
  std::set<ServerId> scripted_;  ///< nodes holding a ScriptTimeout override
  // Link faults installed by this runtime's plans, healed on restore.
  std::set<ServerId> isolated_;
  std::set<std::pair<ServerId, ServerId>> cut_links_;
  std::set<std::pair<ServerId, ServerId>> one_way_cuts_;
  std::vector<PlanMarker> markers_;
  std::size_t traffic_submitted_ = 0;
  std::size_t reads_issued_ = 0;
  std::size_t joins_completed_ = 0;
  std::size_t leaves_completed_ = 0;
  ServerId last_crashed_ = kNoServer;
  std::shared_ptr<LiveFlag> live_;
  std::size_t listener_handle_ = 0;
};

}  // namespace escape::sim
