#include "sim/sim_cluster.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "common/logging.h"

namespace escape::sim {

PolicyFactory raft_policy_factory(Duration timeout_min, Duration timeout_max) {
  return [=](ServerId, std::size_t) {
    return std::make_unique<raft::RaftRandomizedPolicy>(timeout_min, timeout_max);
  };
}

SimCluster::SimCluster(ClusterOptions options)
    : options_(std::move(options)),
      owned_loop_(options_.loop ? nullptr : std::make_unique<EventLoop>()),
      loop_(options_.loop ? options_.loop : owned_loop_.get()),
      rng_(options_.seed) {
  if (options_.size == 0) throw std::invalid_argument("cluster size must be >= 1");
  if (!options_.policy) options_.policy = raft_policy_factory(from_ms(1500), from_ms(3000));
  // The core's commit rule and the driver's staging must agree on who counts
  // the local copy; force the node option so callers can't desynchronize them.
  if (options_.driver.async_persist) options_.node.async_persist = true;
  for (ServerId id = 1; id <= options_.size; ++id) members_.push_back(id);
  seed_size_ = members_.size();
  network_ = std::make_unique<SimNetwork>(
      *loop_, options_.network, rng_.fork(0xBEEF),
      [this](const rpc::Envelope& env) { deliver(env); });
  for (ServerId id : members_) {
    auto& host = hosts_[id];
    host.store = std::make_unique<storage::MemoryStateStore>();
    host.wal = std::make_unique<storage::MemoryWal>();
    host.snaps = std::make_unique<storage::MemorySnapshotStore>();
    host.base.voters = members_;
  }
}

void SimCluster::build_node(ServerId id) {
  auto& host = hosts_.at(id);
  host.driver = std::make_unique<SimDriver>(*host.store, *host.wal, host.snaps.get(),
                                            options_.driver);
  // The policy is parameterized by the host's *bootstrap* voter count (its
  // Eq. 1 starting point); conf entries recovered from the WAL re-parameterize
  // it via on_membership_changed before the node ever ticks.
  host.node = std::make_unique<raft::RaftNode>(
      id, host.base, options_.policy(id, std::max<std::size_t>(1, host.base.voters.size())),
      rng_.fork(0x1000 + id), options_.node, host.driver->recover());
  host.driver->attach(*host.node);
  host.node->set_event_hook([this](const raft::NodeEvent& ev) { on_node_event(ev); });

  // Environment hooks: immediate dispatch into the simulated world.
  auto& hooks = host.driver->hooks();
  hooks.send = [this](const std::vector<rpc::Envelope>& batch) { network_->send_batch(batch); };
  hooks.restore = [this, id](const std::shared_ptr<const raft::Snapshot>& snap) {
    if (snapshot_restore_hook_) snapshot_restore_hook_(id, *snap);
  };
  hooks.apply = [this, id](const rpc::LogEntry& entry) {
    if (apply_hook_) apply_hook_(id, entry);
    hosts_.at(id).applied.push_back(entry);
  };
  // Read completions fire only after the same batch's entries applied: an
  // `ok` grant promises the replica state machine covers read_index.
  hooks.read = [this, id](const raft::ReadGrant& grant) {
    for (std::size_t next = 0;;) {  // erase-safe, as in on_node_event
      const auto it = read_listeners_.lower_bound(next);
      if (it == read_listeners_.end()) break;
      next = it->first + 1;
      it->second(id, grant);
    }
    read_probes_.erase({id, grant.id});
  };

  host.alive = true;
  host.scheduled_wakeup = kNever;
}

void SimCluster::start_all() {
  if (started_) throw std::logic_error("start_all() called twice");
  started_ = true;
  for (ServerId id : members_) {
    build_node(id);
    hosts_.at(id).node->start(loop_->now());
    pump(id);
  }
}

raft::RaftNode& SimCluster::node(ServerId id) {
  auto& host = hosts_.at(id);
  if (!host.node) throw std::logic_error("node " + server_name(id) + " is crashed");
  return *host.node;
}

const raft::RaftNode& SimCluster::node(ServerId id) const {
  const auto& host = hosts_.at(id);
  if (!host.node) throw std::logic_error("node " + server_name(id) + " is crashed");
  return *host.node;
}

bool SimCluster::alive(ServerId id) const { return hosts_.at(id).alive; }

ServerId SimCluster::leader() const {
  ServerId best = kNoServer;
  Term best_term = -1;
  for (ServerId id : members_) {
    const auto& host = hosts_.at(id);
    if (host.alive && host.node && host.node->role() == Role::kLeader &&
        host.node->term() > best_term) {
      best = id;
      best_term = host.node->term();
    }
  }
  return best;
}

void SimCluster::add_host(ServerId id) {
  if (hosts_.count(id) != 0) throw std::logic_error("add_host: host already exists");
  auto& host = hosts_[id];
  host.store = std::make_unique<storage::MemoryStateStore>();
  host.wal = std::make_unique<storage::MemoryWal>();
  host.snaps = std::make_unique<storage::MemorySnapshotStore>();
  host.base.learners = {id};
  members_.push_back(id);
  if (started_) {
    build_node(id);
    host.node->start(loop_->now());
    LOG_DEBUG(server_name(id) << " provisioned at " << to_ms(loop_->now()) << "ms");
    pump(id);
  }
}

raft::RaftNode::ConfChangeResult SimCluster::propose_conf_change(const raft::ConfChange& change) {
  const ServerId l = leader();
  if (l == kNoServer) return {};  // status defaults to kNotLeader
  const auto result = node(l).propose_conf_change(change, loop_->now());
  pump(l);
  return result;
}

void SimCluster::crash(ServerId id) {
  auto& host = hosts_.at(id);
  if (!host.alive) throw std::logic_error("crash() on a node that is already down");
  host.alive = false;
  host.node.reset();  // volatile state gone; store/wal survive
  host.driver.reset();
  host.scheduled_wakeup = kNever;
  // Outstanding read probes die with the volatile read state they audited.
  read_probes_.erase(read_probes_.lower_bound({id, 0}),
                     read_probes_.upper_bound({id, std::numeric_limits<raft::ReadId>::max()}));
  LOG_DEBUG(server_name(id) << " crashed at " << to_ms(loop_->now()) << "ms");
}

void SimCluster::recover(ServerId id) {
  auto& host = hosts_.at(id);
  if (host.alive) throw std::logic_error("recover() on a live node");
  // The state machine restarts from its last snapshot (when one exists) and
  // replays the WAL suffix beyond it; `applied` tracks the current
  // incarnation's input sequence.
  host.applied.clear();
  build_node(id);
  if (snapshot_restore_hook_) {
    if (const auto snap = host.snaps->load(); snap && snap->last_included_index > 0) {
      snapshot_restore_hook_(id, *snap);
    }
  }
  host.node->start(loop_->now());
  LOG_DEBUG(server_name(id) << " recovered at " << to_ms(loop_->now()) << "ms");
  pump(id);
}

std::optional<LogIndex> SimCluster::trigger_snapshot(ServerId id) {
  auto& host = hosts_.at(id);
  if (!host.alive || !host.node) return std::nullopt;
  auto state = snapshot_state_hook_ ? snapshot_state_hook_(id) : std::vector<std::uint8_t>{};
  const auto upto = host.node->compact(host.node->last_applied(), std::move(state), loop_->now());
  host.driver->pump(loop_->now());  // drain the kSaveSnapshot/kCompactTo ops immediately
  return upto;
}

std::optional<raft::NodeEvent> SimCluster::run_until_event(
    std::function<bool(const raft::NodeEvent&)> pred, TimePoint deadline) {
  stop_predicate_ = std::move(pred);
  stop_event_.reset();
  loop_->run_until_stopped(deadline);
  stop_predicate_ = nullptr;
  return std::exchange(stop_event_, std::nullopt);
}

ServerId SimCluster::run_until_leader(TimePoint deadline) {
  // Fast path: already led.
  if (ServerId l = leader(); l != kNoServer) return l;
  auto ev = run_until_event(
      [](const raft::NodeEvent& e) { return e.kind == raft::NodeEvent::Kind::kBecameLeader; },
      deadline);
  return ev ? ev->node : kNoServer;
}

std::optional<LogIndex> SimCluster::submit_via_leader(std::vector<std::uint8_t> command) {
  const ServerId l = leader();
  if (l == kNoServer) return std::nullopt;
  auto idx = node(l).submit(std::move(command), loop_->now());
  pump(l);
  return idx;
}

std::optional<raft::ReadId> SimCluster::submit_read(ServerId id) {
  auto& host = hosts_.at(id);
  if (!host.alive || !host.node) return std::nullopt;
  // The floor is computed *before* the submission so a lease read granted
  // synchronously inside submit_read() is audited against the state of the
  // world at issue time. Any commit index an alive node reports is a lower
  // bound on what has truly committed, so the max over the cluster is the
  // strongest staleness detector available to the checker: a deposed leader
  // serving behind a newer leadership's commits trips it immediately.
  LogIndex floor = 0;
  for (const ServerId member : members_) {
    const auto& h = hosts_.at(member);
    if (h.alive && h.node) floor = std::max(floor, h.node->commit_index());
  }
  const auto read = host.node->submit_read(loop_->now());
  if (read) read_probes_[{id, *read}] = floor;
  pump(id);
  return read;
}

std::optional<LogIndex> SimCluster::read_floor(ServerId id, raft::ReadId read) const {
  const auto it = read_probes_.find({id, read});
  if (it == read_probes_.end()) return std::nullopt;
  return it->second;
}

bool SimCluster::run_until_applied(LogIndex index, TimePoint deadline) {
  auto all_applied = [&] {
    for (ServerId id : members_) {
      const auto& host = hosts_.at(id);
      if (!host.alive || !host.node) continue;
      // commit_index is updated before the commit event fires, so this
      // predicate is evaluated against fresh state from inside listeners.
      if (host.node->commit_index() < index) return false;
    }
    return true;
  };
  if (all_applied()) return true;
  run_until_event([&](const raft::NodeEvent&) { return all_applied(); }, deadline);
  return all_applied();
}

std::size_t SimCluster::add_event_listener(
    std::function<void(const raft::NodeEvent&)> listener) {
  const std::size_t handle = next_listener_handle_++;
  listeners_.emplace(handle, std::move(listener));
  return handle;
}

void SimCluster::remove_event_listener(std::size_t handle) { listeners_.erase(handle); }

std::size_t SimCluster::add_read_listener(
    std::function<void(ServerId, const raft::ReadGrant&)> listener) {
  const std::size_t handle = next_read_listener_handle_++;
  read_listeners_.emplace(handle, std::move(listener));
  return handle;
}

void SimCluster::remove_read_listener(std::size_t handle) { read_listeners_.erase(handle); }

void SimCluster::pump(ServerId id) {
  auto& host = hosts_.at(id);
  if (!host.alive || !host.node) return;
  host.driver->pump(loop_->now());
  if (options_.snapshot_interval > 0 &&
      host.node->last_applied() - host.node->log().base() >= options_.snapshot_interval) {
    trigger_snapshot(id);
  }
  ensure_timer(id);
}

SimDriver& SimCluster::driver(ServerId id) {
  auto& host = hosts_.at(id);
  if (!host.driver) throw std::logic_error("node " + server_name(id) + " is crashed");
  return *host.driver;
}

void SimCluster::ensure_timer(ServerId id) {
  auto& host = hosts_.at(id);
  const TimePoint deadline = host.node->next_deadline();
  if (deadline == kNever) return;
  if (deadline >= host.scheduled_wakeup) return;  // earlier wakeup already pending
  host.scheduled_wakeup = deadline;
  loop_->schedule_at(deadline, [this, id, deadline] {
    auto& h = hosts_.at(id);
    if (h.scheduled_wakeup == deadline) h.scheduled_wakeup = kNever;
    if (!h.alive || !h.node) return;
    h.node->tick(loop_->now());
    pump(id);
  });
}

void SimCluster::deliver(const rpc::Envelope& envelope) {
  // A removed-then-forgotten or not-yet-provisioned destination is a machine
  // that does not exist: the network drops the frame on the floor.
  const auto it = hosts_.find(envelope.to);
  if (it == hosts_.end()) return;
  auto& host = it->second;
  if (!host.alive || !host.node) return;  // message to a dead machine
  host.node->step(envelope, loop_->now());
  pump(envelope.to);
}

void SimCluster::on_node_event(const raft::NodeEvent& event) {
  event_log_.push_back(event);
  // A listener may add or remove listeners (including arbitrary others)
  // while handling an event. Handles are monotonically increasing, so
  // re-looking up the next handle after each call is erase-safe without
  // allocating on this hot path; listeners added mid-dispatch (with larger
  // handles) also fire. (Self-removal mid-dispatch is not supported: it
  // would destroy the std::function currently executing.)
  for (std::size_t next = 0;;) {
    const auto it = listeners_.lower_bound(next);
    if (it == listeners_.end()) break;
    next = it->first + 1;
    it->second(event);
  }
  if (stop_predicate_ && stop_predicate_(event)) {
    stop_event_ = event;
    loop_->stop();
  }
}

}  // namespace escape::sim
