// The simulator's Ready consumer.
//
// SimDriver is the synchronous, immediate-dispatch face of raft::NodeDriver:
// SimCluster installs hooks that push outbound batches straight into the
// SimNetwork and apply committed entries into the host's replica state the
// moment pump() drains them — everything happens inline on the event-loop
// "thread", in virtual time.
//
// The contrast with net::RealDriver (which buffers a batch's effects under
// the node lock and flushes them outside it) is deliberate and is itself
// under test: driver_conformance_test replays identical scenarios through
// both consumption styles and asserts byte-identical Ready streams.
#pragma once

#include "raft/driver.h"

namespace escape::sim {

/// One host's driver in the simulated cluster: owns the drain loop over the
/// host's in-memory stores; SimCluster provides the environment hooks.
class SimDriver {
 public:
  SimDriver(storage::StateStore& store, storage::Wal& wal, storage::SnapshotStore* snapshots,
            raft::NodeDriver::Options options = {})
      : base_(store, wal, snapshots, options) {}

  /// See raft::NodeDriver::recover().
  raft::Bootstrap recover() { return base_.recover(); }

  /// See raft::NodeDriver::attach().
  void attach(raft::RaftNode& node) { base_.attach(node); }

  /// Drains every pending batch with immediate hook dispatch. In async-
  /// persist mode the staged batches are then flushed at `now` — the sim
  /// models a disk whose completion queue drains within the same virtual
  /// instant, but strictly *after* the core produced everything it could,
  /// which is exactly the reordering the sequence checker must tolerate —
  /// and the flush's durability ack may produce one more wave of batches.
  std::size_t pump(TimePoint now = 0) {
    std::size_t drained = base_.pump();
    while (base_.staged() > 0) {
      base_.flush_persists(now);
      drained += base_.pump();
    }
    return drained;
  }

  /// Environment hooks (send into SimNetwork, apply into the host, ...).
  raft::NodeDriver::Hooks& hooks() { return base_.hooks(); }

  /// The generic drain underneath — tests attach phase hooks and Ready
  /// observers here.
  raft::NodeDriver& base() { return base_; }

 private:
  raft::NodeDriver base_;
};

}  // namespace escape::sim
