#include "raft/log.h"

#include <cassert>
#include <stdexcept>

namespace escape::raft {

Term Log::last_term() const {
  if (entries_.empty()) return base_term_;
  return entries_.back().term;
}

std::optional<Term> Log::term_at(LogIndex index) const {
  if (index == 0) return Term{0};
  if (index == base_) return base_term_;
  if (index < base_ || index > last_index()) return std::nullopt;
  return entries_[static_cast<std::size_t>(index - base_ - 1)].term;
}

const rpc::LogEntry* Log::entry_at(LogIndex index) const {
  if (index <= base_ || index > last_index()) return nullptr;
  return &entries_[static_cast<std::size_t>(index - base_ - 1)];
}

void Log::append(rpc::LogEntry entry) {
  if (entry.index != last_index() + 1) {
    throw std::logic_error("Log::append: non-contiguous index");
  }
  entries_.push_back(std::move(entry));
}

void Log::truncate_from(LogIndex from) {
  if (from <= base_) {
    throw std::logic_error("Log::truncate_from: index already compacted");
  }
  if (from > last_index()) return;
  entries_.resize(static_cast<std::size_t>(from - base_ - 1));
}

void Log::compact_to(LogIndex upto) {
  if (upto <= base_) return;
  if (upto > last_index()) {
    throw std::logic_error("Log::compact_to: beyond tail");
  }
  base_term_ = entries_[static_cast<std::size_t>(upto - base_ - 1)].term;
  entries_.erase(entries_.begin(),
                 entries_.begin() + static_cast<std::ptrdiff_t>(upto - base_));
  base_ = upto;
}

void Log::reset_to(LogIndex index, Term term) {
  entries_.clear();
  base_ = index;
  base_term_ = term;
}

std::vector<rpc::LogEntry> Log::slice(LogIndex from, std::size_t max_count) const {
  std::vector<rpc::LogEntry> out;
  if (from <= base_) return out;  // compacted away; caller must snapshot
  for (LogIndex i = from; i <= last_index() && out.size() < max_count; ++i) {
    out.push_back(*entry_at(i));
  }
  return out;
}

bool Log::matches(LogIndex index, Term term) const {
  const auto t = term_at(index);
  return t.has_value() && *t == term;
}

bool Log::candidate_is_up_to_date(LogIndex cand_last_index, Term cand_last_term) const {
  // Raft §5.4.1: compare last terms, break ties by length.
  if (cand_last_term != last_term()) return cand_last_term > last_term();
  return cand_last_index >= last_index();
}

std::optional<LogIndex> Log::first_index_of_term(Term t) const {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].term == t) return base_ + static_cast<LogIndex>(i) + 1;
  }
  return std::nullopt;
}

std::optional<LogIndex> Log::last_index_of_term(Term t) const {
  for (std::size_t i = entries_.size(); i > 0; --i) {
    if (entries_[i - 1].term == t) return base_ + static_cast<LogIndex>(i);
  }
  return std::nullopt;
}

std::size_t Log::approx_bytes() const {
  // Per-entry header: term + index (two i64s on the wire).
  std::size_t bytes = 0;
  for (const auto& e : entries_) bytes += 16 + e.command.size();
  return bytes;
}

}  // namespace escape::raft
