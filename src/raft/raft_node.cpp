#include "raft/raft_node.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

#include "common/logging.h"

namespace escape::raft {

RaftNode::RaftNode(ServerId id, std::vector<ServerId> members,
                   std::unique_ptr<ElectionPolicy> policy, storage::StateStore& state_store,
                   storage::Wal& wal, Rng rng, NodeOptions options,
                   std::vector<rpc::LogEntry> recovered_log, storage::SnapshotStore* snapshots)
    : id_(id),
      members_(std::move(members)),
      policy_(std::move(policy)),
      state_store_(state_store),
      wal_(wal),
      snapshot_store_(snapshots),
      rng_(rng),
      options_(options) {
  if (id_ == kNoServer) throw std::invalid_argument("server id 0 is reserved");
  if (!policy_) throw std::invalid_argument("null election policy");
  bool self_listed = false;
  for (ServerId m : members_) {
    if (m == id_) {
      self_listed = true;
    } else {
      others_.push_back(m);
    }
  }
  if (!self_listed) throw std::invalid_argument("member list must include self");
  if (snapshot_store_) {
    if (auto snap = snapshot_store_->load()) {
      // The snapshot is the log's new origin: commit/applied resume at its
      // boundary (the runtime restores the state machine from the store).
      log_.reset_to(snap->last_included_index, snap->last_included_term);
      commit_index_ = snap->last_included_index;
      last_applied_ = snap->last_included_index;
      snapshot_boot_config_ = snap->config;
    }
  }
  for (const auto& e : recovered_log) {
    if (e.index <= log_.base()) continue;  // absorbed by the snapshot
    if (e.index != log_.last_index() + 1) {
      // The WAL was compacted past our snapshot view (the snapshot file is
      // missing or was rejected as corrupt): the prefix below this entry is
      // gone and nothing stands in for it. Booting anyway would silently
      // lose committed state; fail with the actual diagnosis instead of the
      // contiguity assertion deep inside Log::append.
      throw std::runtime_error(
          "recovered WAL resumes at index " + std::to_string(e.index) +
          " but the log ends at " + std::to_string(log_.last_index()) +
          ": no snapshot covers the compacted prefix (snapshot store missing or corrupt)");
    }
    log_.append(e);
  }
}

void RaftNode::start(TimePoint now) {
  if (started_) throw std::logic_error("start() called twice");
  if (auto persisted = state_store_.load()) {
    current_term_ = persisted->current_term;
    voted_for_ = persisted->voted_for;
    policy_->restore(persisted->config);
  }
  // The snapshotted state embodies configuration generation k; restoring the
  // state but an older configuration would regress the confClock (and with
  // it the staleness vote rule). Normally the state store is at least as
  // fresh — every adoption persists — but a lost or corrupt state file must
  // not un-adopt what the snapshot proves this server held.
  if (snapshot_boot_config_ &&
      snapshot_boot_config_->conf_clock > policy_->current_config().conf_clock) {
    policy_->restore(*snapshot_boot_config_);
  }
  started_ = true;
  arm_election_timer(now);
  LOG_DEBUG(server_name(id_) << " started t=" << current_term_ << " log=" << log_.last_index());
}

void RaftNode::on_message(const rpc::Envelope& envelope, TimePoint now) {
  assert(started_);
  ++counters_.messages_received;
  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, rpc::RequestVote>) {
          handle_request_vote(m, now);
        } else if constexpr (std::is_same_v<T, rpc::RequestVoteReply>) {
          handle_request_vote_reply(m, now);
        } else if constexpr (std::is_same_v<T, rpc::AppendEntries>) {
          handle_append_entries(envelope.from, m, now);
        } else if constexpr (std::is_same_v<T, rpc::AppendEntriesReply>) {
          handle_append_entries_reply(m, now);
        } else if constexpr (std::is_same_v<T, rpc::TimeoutNow>) {
          handle_timeout_now(m, now);
        } else if constexpr (std::is_same_v<T, rpc::InstallSnapshot>) {
          handle_install_snapshot(m, now);
        } else if constexpr (std::is_same_v<T, rpc::InstallSnapshotReply>) {
          handle_install_snapshot_reply(m, now);
        } else {
          // Client traffic is handled by the application layer (kv::Server);
          // the consensus core only sees consensus RPCs.
          LOG_WARN(server_name(id_) << " dropping non-consensus message");
        }
      },
      envelope.message);
}

void RaftNode::on_tick(TimePoint now) {
  assert(started_);
  if (role_ != Role::kLeader && election_deadline_ != kNever && now >= election_deadline_) {
    start_campaign(now);
  }
  if (role_ == Role::kLeader && heartbeat_deadline_ != kNever && now >= heartbeat_deadline_) {
    broadcast_heartbeat_round(now);
  }
}

std::optional<LogIndex> RaftNode::submit(std::vector<std::uint8_t> command, TimePoint now) {
  assert(started_);
  if (role_ != Role::kLeader) return std::nullopt;
  rpc::LogEntry entry;
  entry.term = current_term_;
  entry.index = log_.last_index() + 1;
  entry.command = std::move(command);
  wal_.append(entry);
  log_.append(entry);
  // Replicate eagerly; heartbeats would pick it up anyway, but latency
  // matters to clients.
  for (ServerId peer : others_) send_append_entries(peer, /*include_config=*/false);
  maybe_advance_commit();  // single-node clusters commit immediately
  (void)now;
  return entry.index;
}

bool RaftNode::transfer_leadership(ServerId target, TimePoint now) {
  (void)now;
  if (role_ != Role::kLeader || target == id_) return false;
  const auto match = match_index_.find(target);
  if (match == match_index_.end()) return false;
  if (match->second < log_.last_index()) return false;  // target not caught up
  rpc::TimeoutNow m;
  m.term = current_term_;
  m.leader_id = id_;
  send(target, m);
  LOG_DEBUG(server_name(id_) << " transfers leadership to " << server_name(target));
  return true;
}

void RaftNode::handle_timeout_now(const rpc::TimeoutNow& m, TimePoint now) {
  // Only honor a transfer from the current term's leader; stale or rogue
  // requests are ignored (the campaign itself is still governed by the
  // normal election rules, so even a honored stale one is safe).
  if (m.term < current_term_ || role_ == Role::kLeader) return;
  if (m.term > current_term_) become_follower(m.term, m.leader_id, now, /*reset_timer=*/false);
  start_campaign(now);
}

std::optional<LogIndex> RaftNode::compact(LogIndex upto, std::vector<std::uint8_t> state,
                                          TimePoint now) {
  assert(started_);
  if (!snapshot_store_) return std::nullopt;  // compaction disabled
  upto = std::min(upto, last_applied_);       // never snapshot unapplied entries
  if (upto <= log_.base()) return std::nullopt;
  storage::Snapshot snap;
  snap.last_included_index = upto;
  snap.last_included_term = *log_.term_at(upto);
  snap.config = policy_->current_config();
  snap.state = std::move(state);
  // Snapshot first, compact second: a crash between the two replays a log
  // whose prefix the snapshot already covers (harmless), never a log whose
  // prefix is gone with no snapshot to stand in for it.
  snapshot_store_->save(snap);
  wal_.compact_to(upto);
  log_.compact_to(upto);
  ++counters_.snapshots_taken;
  emit({.kind = NodeEvent::Kind::kSnapshotTaken,
        .term = current_term_,
        .index = upto,
        .at = now});
  LOG_DEBUG(server_name(id_) << " compacted log through " << upto);
  return upto;
}

std::vector<rpc::Envelope> RaftNode::take_outbox() { return std::exchange(outbox_, {}); }

std::vector<rpc::LogEntry> RaftNode::take_committed() { return std::exchange(committed_out_, {}); }

std::optional<storage::Snapshot> RaftNode::take_installed_snapshot() {
  return std::exchange(installed_out_, std::nullopt);
}

TimePoint RaftNode::next_deadline() const {
  return std::min(election_deadline_, heartbeat_deadline_);
}

// --- role transitions --------------------------------------------------------

void RaftNode::become_follower(Term term, ServerId leader, TimePoint now, bool reset_timer) {
  assert(term >= current_term_);
  const bool stepping_down = role_ != Role::kFollower;
  bool dirty = false;
  if (term > current_term_) {
    // Eq. 3 / Raft: adopt the higher term and forget this term's vote.
    current_term_ = term;
    voted_for_ = kNoServer;
    dirty = true;
  }
  role_ = Role::kFollower;
  leader_id_ = leader;
  votes_.clear();
  heartbeat_deadline_ = kNever;
  if (dirty) persist_state();
  if (stepping_down) {
    emit({.kind = NodeEvent::Kind::kSteppedDown, .term = current_term_, .at = now});
  }
  if (reset_timer || election_deadline_ == kNever) arm_election_timer(now);
}

void RaftNode::start_campaign(TimePoint now) {
  role_ = Role::kCandidate;
  leader_id_ = kNoServer;
  current_term_ = policy_->campaign_term(current_term_);
  voted_for_ = id_;
  votes_.clear();
  votes_.insert(id_);
  persist_state();
  ++counters_.campaigns_started;
  emit({.kind = NodeEvent::Kind::kCampaignStarted, .term = current_term_, .at = now});
  LOG_DEBUG(server_name(id_) << " campaigns in t=" << current_term_);

  rpc::RequestVote rv;
  rv.term = current_term_;
  rv.candidate_id = id_;
  rv.last_log_index = log_.last_index();
  rv.last_log_term = log_.last_term();
  rv.conf_clock = policy_->vote_request_clock();
  for (ServerId peer : others_) {
    send(peer, rv);
    ++counters_.request_votes_sent;
  }
  arm_election_timer(now);
  if (votes_.size() >= quorum()) become_leader(now);  // single-node cluster
}

void RaftNode::become_leader(TimePoint now) {
  assert(role_ == Role::kCandidate);
  role_ = Role::kLeader;
  leader_id_ = id_;
  election_deadline_ = kNever;
  next_index_.clear();
  match_index_.clear();
  install_sent_round_.clear();
  for (ServerId peer : others_) {
    next_index_[peer] = log_.last_index() + 1;
    match_index_[peer] = 0;
  }
  policy_->on_become_leader(others_, current_term_);
  ++counters_.elections_won;
  emit({.kind = NodeEvent::Kind::kBecameLeader, .term = current_term_, .at = now});
  LOG_DEBUG(server_name(id_) << " elected leader t=" << current_term_);

  if (options_.commit_noop_on_elect) {
    // Barrier entry: commits everything from prior terms once it replicates
    // (Raft §5.4.2 — prior-term entries never commit by counting alone).
    rpc::LogEntry noop;
    noop.term = current_term_;
    noop.index = log_.last_index() + 1;
    wal_.append(noop);
    log_.append(noop);
  }
  broadcast_heartbeat_round(now);
  maybe_advance_commit();  // single-node clusters
}

// --- message handlers --------------------------------------------------------

void RaftNode::handle_request_vote(const rpc::RequestVote& m, TimePoint now) {
  if (m.term > current_term_) {
    become_follower(m.term, kNoServer, now, /*reset_timer=*/false);
  }
  bool granted = false;
  if (m.term == current_term_ && (voted_for_ == kNoServer || voted_for_ == m.candidate_id) &&
      log_.candidate_is_up_to_date(m.last_log_index, m.last_log_term) &&
      policy_->approve_candidate(m)) {
    granted = true;
    if (voted_for_ != m.candidate_id) {
      voted_for_ = m.candidate_id;
      persist_state();
    }
    ++counters_.votes_granted;
    emit({.kind = NodeEvent::Kind::kVoteGranted,
          .peer = m.candidate_id,
          .term = current_term_,
          .at = now});
    arm_election_timer(now);  // granting a vote defers our own candidacy
  }
  rpc::RequestVoteReply reply;
  reply.term = current_term_;
  reply.vote_granted = granted;
  reply.voter_id = id_;
  send(m.candidate_id, reply);
}

void RaftNode::handle_request_vote_reply(const rpc::RequestVoteReply& m, TimePoint now) {
  if (m.term > current_term_) {
    become_follower(m.term, kNoServer, now, /*reset_timer=*/false);
    return;
  }
  if (role_ != Role::kCandidate || m.term < current_term_ || !m.vote_granted) return;
  votes_.insert(m.voter_id);
  if (votes_.size() >= quorum()) become_leader(now);
}

void RaftNode::handle_append_entries(ServerId from, const rpc::AppendEntries& m, TimePoint now) {
  (void)from;
  if (m.term < current_term_) {
    rpc::AppendEntriesReply reply;
    reply.term = current_term_;
    reply.success = false;
    reply.from = id_;
    reply.status = own_status();
    send(m.leader_id, reply);
    return;
  }
  if (m.term > current_term_) {
    become_follower(m.term, m.leader_id, now, /*reset_timer=*/false);
  } else if (role_ == Role::kCandidate) {
    become_follower(m.term, m.leader_id, now, /*reset_timer=*/false);
  } else if (role_ == Role::kLeader) {
    // Two leaders in one term violates Election Safety; refuse loudly.
    LOG_ERROR(server_name(id_) << " saw AppendEntries from " << server_name(m.leader_id)
                               << " in own leadership term " << current_term_);
    return;
  }
  leader_id_ = m.leader_id;

  // Adopt any piggybacked configuration before re-arming the timer so the
  // new election-timeout period takes effect immediately (Section IV-B).
  if (m.new_config && policy_->on_config_received(*m.new_config)) {
    persist_state();
    ++counters_.config_adoptions;
    emit({.kind = NodeEvent::Kind::kConfigAdopted,
          .term = current_term_,
          .config = *m.new_config,
          .at = now});
  }
  arm_election_timer(now);

  rpc::AppendEntriesReply reply;
  reply.term = current_term_;
  reply.from = id_;

  // A prev inside our compacted prefix is vacuously consistent: everything
  // at or below the snapshot boundary is committed, and committed prefixes
  // agree on every server (Leader Completeness). The boundary itself still
  // checks its retained term.
  const bool prefix_ok = m.prev_log_index < log_.base() ||
                         log_.matches(m.prev_log_index, m.prev_log_term);
  if (!prefix_ok) {
    reply.success = false;
    if (log_.last_index() < m.prev_log_index) {
      // Log too short: leader should back up to our tail.
      reply.conflict_index = log_.last_index() + 1;
      reply.conflict_term = 0;
    } else {
      // Term mismatch at prev: report the whole conflicting term at once.
      reply.conflict_term = log_.term_at(m.prev_log_index).value_or(0);
      reply.conflict_index =
          log_.first_index_of_term(reply.conflict_term).value_or(m.prev_log_index);
    }
    reply.status = own_status();
    send(m.leader_id, reply);
    return;
  }

  for (const auto& e : m.entries) {
    if (e.index <= log_.base()) continue;  // already absorbed by our snapshot
    const auto existing = log_.term_at(e.index);
    if (existing && *existing != e.term) {
      wal_.truncate_from(e.index);
      log_.truncate_from(e.index);
    }
    if (e.index > log_.last_index()) {
      wal_.append(e);
      log_.append(e);
    }
  }

  if (m.leader_commit > commit_index_) {
    commit_index_ = std::min(m.leader_commit, log_.last_index());
    apply_committed();
    emit({.kind = NodeEvent::Kind::kCommitAdvanced,
          .term = current_term_,
          .index = commit_index_,
          .at = now});
  }

  reply.success = true;
  reply.match_index = m.prev_log_index + static_cast<LogIndex>(m.entries.size());
  reply.status = own_status();
  send(m.leader_id, reply);
}

void RaftNode::handle_append_entries_reply(const rpc::AppendEntriesReply& m, TimePoint now) {
  if (m.term > current_term_) {
    become_follower(m.term, kNoServer, now, /*reset_timer=*/false);
    return;
  }
  if (role_ != Role::kLeader || m.term < current_term_) return;

  // The peer is alive and talking: lift the snapshot-resend throttle so a
  // follower that still needs the snapshot gets it immediately.
  install_sent_round_.erase(m.from);

  // PPF input: track log responsiveness regardless of replication outcome.
  policy_->on_follower_status(m.from, m.status);

  if (m.success) {
    match_index_[m.from] = std::max(match_index_[m.from], m.match_index);
    next_index_[m.from] = std::max(next_index_[m.from], m.match_index + 1);
    maybe_advance_commit();
    if (next_index_[m.from] <= log_.last_index()) {
      send_append_entries(m.from, /*include_config=*/false);  // continue catch-up
    }
  } else {
    LogIndex next;
    if (m.conflict_term != 0) {
      // If we have entries of the conflicting term, probe just past our last
      // one; otherwise skip the follower's entire conflicting term.
      const auto last_of_term = log_.last_index_of_term(m.conflict_term);
      next = last_of_term ? *last_of_term + 1 : m.conflict_index;
    } else {
      next = m.conflict_index;
    }
    next = std::clamp<LogIndex>(next, 1, log_.last_index() + 1);
    // Guarantee progress even with a degenerate hint.
    next_index_[m.from] = std::min(next, std::max<LogIndex>(1, next_index_[m.from] - 1));
    send_append_entries(m.from, /*include_config=*/false);
  }
}

void RaftNode::handle_install_snapshot(const rpc::InstallSnapshot& m, TimePoint now) {
  rpc::InstallSnapshotReply reply;
  reply.from = id_;
  if (m.term < current_term_) {
    reply.term = current_term_;
    reply.success = false;
    reply.status = own_status();
    send(m.leader_id, reply);
    return;
  }
  if (m.term > current_term_ || role_ == Role::kCandidate) {
    become_follower(m.term, m.leader_id, now, /*reset_timer=*/false);
  } else if (role_ == Role::kLeader) {
    // Same-term InstallSnapshot from another leader: Election Safety is
    // broken; refuse loudly, as with AppendEntries.
    LOG_ERROR(server_name(id_) << " saw InstallSnapshot from " << server_name(m.leader_id)
                               << " in own leadership term " << current_term_);
    return;
  }
  leader_id_ = m.leader_id;
  arm_election_timer(now);
  reply.term = current_term_;
  reply.success = true;

  if (m.last_included_index <= commit_index_) {
    // Stale or duplicate snapshot: we already hold (and may have applied)
    // everything it covers. Report how far we actually are so the leader's
    // next_index jumps past the resend.
    reply.match_index = commit_index_;
    reply.status = own_status();
    send(m.leader_id, reply);
    return;
  }

  // The message carries this follower's own PPF assignment; only a strictly
  // fresher clock is adopted, so an old snapshot resend can never roll the
  // confClock back.
  if (policy_->on_config_received(m.config)) {
    ++counters_.config_adoptions;
    emit({.kind = NodeEvent::Kind::kConfigAdopted,
          .term = current_term_,
          .config = m.config,
          .at = now});
    arm_election_timer(now);  // the adopted timeout takes effect immediately
  }
  persist_state();

  storage::Snapshot snap;
  snap.last_included_index = m.last_included_index;
  snap.last_included_term = m.last_included_term;
  // Our own snapshot stores *our* adopted configuration (it restores our
  // identity at restart), which the adoption above just refreshed.
  snap.config = policy_->current_config();
  snap.state = m.state;
  // Same crash-ordering rule as compact(): the snapshot must be durable
  // before the WAL drops the prefix it stands in for — a crash in between
  // otherwise reopens a WAL rebased past a snapshot that does not exist.
  if (snapshot_store_) snapshot_store_->save(snap);

  // When our log already contains the boundary entry with the right term,
  // the suffix beyond it is consistent and survives; otherwise the whole
  // log is superseded and rebases onto the snapshot.
  const auto existing = log_.term_at(m.last_included_index);
  if (existing && *existing == m.last_included_term) {
    wal_.compact_to(m.last_included_index);
    log_.compact_to(m.last_included_index);
  } else {
    if (m.last_included_index < log_.last_index()) {
      wal_.truncate_from(std::max(m.last_included_index + 1, log_.first_index()));
    }
    wal_.compact_to(m.last_included_index);
    log_.reset_to(m.last_included_index, m.last_included_term);
  }
  commit_index_ = m.last_included_index;
  last_applied_ = m.last_included_index;
  committed_out_.clear();  // superseded by the snapshot's state
  installed_out_ = std::move(snap);
  ++counters_.snapshots_installed;
  emit({.kind = NodeEvent::Kind::kSnapshotInstalled,
        .term = current_term_,
        .index = m.last_included_index,
        .at = now});
  LOG_DEBUG(server_name(id_) << " installed snapshot through " << m.last_included_index);

  reply.match_index = m.last_included_index;
  reply.status = own_status();
  send(m.leader_id, reply);
}

void RaftNode::handle_install_snapshot_reply(const rpc::InstallSnapshotReply& m,
                                             TimePoint now) {
  if (m.term > current_term_) {
    become_follower(m.term, kNoServer, now, /*reset_timer=*/false);
    return;
  }
  if (role_ != Role::kLeader || m.term < current_term_) return;
  install_sent_round_.erase(m.from);  // it arrived; resume normal flow
  if (!m.success) return;
  policy_->on_follower_status(m.from, m.status);
  match_index_[m.from] = std::max(match_index_[m.from], m.match_index);
  next_index_[m.from] = std::max(next_index_[m.from], m.match_index + 1);
  maybe_advance_commit();
  if (next_index_[m.from] <= log_.last_index()) {
    send_append_entries(m.from, /*include_config=*/false);  // ship the suffix
  }
}

// --- leader machinery ----------------------------------------------------------

void RaftNode::broadcast_heartbeat_round(TimePoint now) {
  ++counters_.heartbeat_rounds;
  policy_->begin_heartbeat_round();
  for (ServerId peer : others_) send_append_entries(peer, /*include_config=*/true);
  heartbeat_deadline_ = now + options_.heartbeat_interval;
}

void RaftNode::send_append_entries(ServerId peer, bool include_config) {
  const LogIndex next = next_index_.at(peer);
  if (next <= log_.base()) {
    // The entries this follower needs are compacted away; only the snapshot
    // can catch it up (Raft §7). Re-ship to a *silent* peer (likely down —
    // every copy would be dropped anyway) only every snapshot_retry_rounds
    // heartbeats; any reply from the peer clears the throttle.
    const auto it = install_sent_round_.find(peer);
    if (it != install_sent_round_.end() &&
        counters_.heartbeat_rounds - it->second < options_.snapshot_retry_rounds) {
      return;
    }
    install_sent_round_[peer] = counters_.heartbeat_rounds;
    send_install_snapshot(peer);
    return;
  }
  rpc::AppendEntries ae;
  ae.term = current_term_;
  ae.leader_id = id_;
  ae.prev_log_index = next - 1;
  ae.prev_log_term = log_.term_at(next - 1).value_or(0);
  ae.entries = log_.slice(next, options_.max_entries_per_rpc);
  ae.leader_commit = commit_index_;
  if (include_config) ae.new_config = policy_->config_for(peer);
  send(peer, std::move(ae));
  ++counters_.append_entries_sent;
}

void RaftNode::send_install_snapshot(ServerId peer) {
  auto snap = snapshot_store_ ? snapshot_store_->load() : std::nullopt;
  if (!snap) {
    // A compacted log without a loadable snapshot should be impossible
    // (compact() saves before compacting); surface it instead of spinning.
    LOG_ERROR(server_name(id_) << " log compacted to " << log_.base()
                               << " but no snapshot available for " << server_name(peer));
    return;
  }
  rpc::InstallSnapshot is;
  is.term = current_term_;
  is.leader_id = id_;
  is.last_included_index = snap->last_included_index;
  is.last_included_term = snap->last_included_term;
  // Ship the *destination's* standing PPF assignment (as a heartbeat would),
  // never this leader's own stored configuration: two servers holding the
  // same (P, k) pair is exactly the Lemma 3 violation the clock exists to
  // rule out. Zeros (no assignment / non-ESCAPE policy) adopt as a no-op.
  is.config = policy_->assignment_for(peer).value_or(rpc::Configuration{});
  is.state = std::move(snap->state);
  send(peer, std::move(is));
  ++counters_.install_snapshots_sent;
}

void RaftNode::maybe_advance_commit() {
  // Raft §5.4.2: only entries of the current term commit by counting.
  for (LogIndex n = log_.last_index(); n > commit_index_; --n) {
    const auto t = log_.term_at(n);
    if (!t || *t != current_term_) break;  // older-term entries commit transitively
    std::size_t replicas = 1;              // self
    for (const auto& [peer, match] : match_index_) {
      if (match >= n) ++replicas;
    }
    if (replicas >= quorum()) {
      commit_index_ = n;
      apply_committed();
      emit({.kind = NodeEvent::Kind::kCommitAdvanced, .term = current_term_, .index = n});
      break;
    }
  }
}

// --- common machinery ------------------------------------------------------------

void RaftNode::arm_election_timer(TimePoint now) {
  if (role_ == Role::kLeader) {
    election_deadline_ = kNever;
    return;
  }
  election_deadline_ = now + policy_->next_election_timeout(rng_);
}

void RaftNode::persist_state() {
  storage::PersistentState s;
  s.current_term = current_term_;
  s.voted_for = voted_for_;
  s.config = policy_->current_config();
  state_store_.save(s);
}

void RaftNode::apply_committed() {
  while (last_applied_ < commit_index_) {
    ++last_applied_;
    const auto* e = log_.entry_at(last_applied_);
    assert(e != nullptr);
    committed_out_.push_back(*e);
    ++counters_.entries_committed;
  }
}

void RaftNode::send(ServerId to, rpc::Message message) {
  outbox_.push_back({id_, to, std::move(message)});
}

void RaftNode::emit(NodeEvent event) {
  event.node = id_;
  if (event_hook_) event_hook_(event);
}

rpc::ConfigStatus RaftNode::own_status() const {
  const auto cfg = policy_->current_config();
  rpc::ConfigStatus s;
  s.log_index = log_.last_index();
  s.timer_period = cfg.timer_period;
  s.conf_clock = cfg.conf_clock;
  return s;
}

}  // namespace escape::raft
