#include "raft/raft_node.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

#include "common/logging.h"

namespace escape::raft {
namespace {

/// Per-entry framing estimate charged against max_bytes_per_msg on top of
/// the command payload (term + index + length prefix on the wire).
constexpr std::size_t kEntryFramingBytes = 24;

}  // namespace

namespace {

rpc::Membership membership_from_voters(std::vector<ServerId> members) {
  std::sort(members.begin(), members.end());
  members.erase(std::unique(members.begin(), members.end()), members.end());
  rpc::Membership m;
  m.voters = std::move(members);
  return m;
}

}  // namespace

RaftNode::RaftNode(ServerId id, std::vector<ServerId> members,
                   std::unique_ptr<ElectionPolicy> policy, Rng rng, NodeOptions options,
                   Bootstrap boot)
    : RaftNode(id, membership_from_voters(std::move(members)), std::move(policy), rng,
               options, std::move(boot)) {}

RaftNode::RaftNode(ServerId id, rpc::Membership base, std::unique_ptr<ElectionPolicy> policy,
                   Rng rng, NodeOptions options, Bootstrap boot)
    : id_(id),
      base_membership_(std::move(base)),
      policy_(std::move(policy)),
      rng_(rng),
      options_(options),
      boot_hard_state_(std::move(boot.hard_state)),
      can_compact_(boot.can_compact) {
  if (id_ == kNoServer) throw std::invalid_argument("server id 0 is reserved");
  if (!policy_) throw std::invalid_argument("null election policy");
  if (options_.lease_ratio > 0 && options_.lease_ratio >= options_.vote_guard_ratio) {
    // The whole lease argument is lease < guard: a voter that acked the
    // round refuses rivals for guard x min_timeout after contact, so the
    // lease must end first. Refuse the unsound configuration loudly.
    throw std::invalid_argument("lease_ratio must be < vote_guard_ratio");
  }
  // The operator-provided seed must name this server (as a voter, or — for
  // a runtime join — as a lone learner). Durable state may later say
  // otherwise (a removed server restarting), which is legal.
  if (!base_membership_.contains(id_)) {
    throw std::invalid_argument("member list must include self");
  }
  if (boot.snapshot) {
    // The snapshot is the log's new origin: commit/applied resume at its
    // boundary (the driver restores the state machine from the same
    // snapshot).
    snapshot_boot_config_ = boot.snapshot->config;
    if (!boot.snapshot->membership.empty()) {
      base_membership_ = boot.snapshot->membership;
    }
    snapshot_ = std::make_shared<const Snapshot>(std::move(*boot.snapshot));
    log_.reset_to(snapshot_->last_included_index, snapshot_->last_included_term);
    commit_index_ = snapshot_->last_included_index;
    last_applied_ = snapshot_->last_included_index;
  }
  for (auto& e : boot.log) {
    if (e.index <= log_.base()) continue;  // absorbed by the snapshot
    if (e.index != log_.last_index() + 1) {
      // The WAL was compacted past our snapshot view (the snapshot file is
      // missing or was rejected as corrupt): the prefix below this entry is
      // gone and nothing stands in for it. Booting anyway would silently
      // lose committed state; fail with the actual diagnosis instead of the
      // contiguity assertion deep inside Log::append.
      throw std::runtime_error(
          "recovered WAL resumes at index " + std::to_string(e.index) +
          " but the log ends at " + std::to_string(log_.last_index()) +
          ": no snapshot covers the compacted prefix (snapshot store missing or corrupt)");
    }
    log_.append(std::move(e));
  }
  // Latest-config-in-log across a restart: the snapshot membership seeds the
  // base, conf entries in the recovered suffix override it.
  rescan_membership(/*now=*/0);
}

// --- membership machinery ----------------------------------------------------

std::vector<ServerId> RaftNode::voter_others() const {
  std::vector<ServerId> ids = voter_union(membership_);
  ids.erase(std::remove(ids.begin(), ids.end(), id_), ids.end());
  return ids;
}

std::vector<ServerId> RaftNode::patrol_others() const {
  std::vector<ServerId> ids = membership_.voters;
  ids.erase(std::remove(ids.begin(), ids.end(), id_), ids.end());
  return ids;
}

void RaftNode::set_membership(rpc::Membership m, LogIndex at, TimePoint now) {
  const bool changed = !(m == membership_);
  membership_ = std::move(m);
  conf_index_ = at;
  others_ = all_members(membership_);
  others_.erase(std::remove(others_.begin(), others_.end(), id_), others_.end());
  if (role_ == Role::kLeader) {
    // Newcomers start probing from the log tail (their first NACK or
    // snapshot walks the cursor back); departed peers drop out of
    // replication immediately.
    for (ServerId peer : others_) {
      if (progress_.find(peer) == progress_.end()) {
        progress_[peer] = Progress{log_.last_index() + 1, 0, 0, false};
      }
    }
    for (auto it = progress_.begin(); it != progress_.end();) {
      if (std::find(others_.begin(), others_.end(), it->first) == others_.end()) {
        install_sent_round_.erase(it->first);
        acked_round_.erase(it->first);
        it = progress_.erase(it);
      } else {
        ++it;
      }
    }
  }
  // ESCAPE re-deal: Eq. 1's ladder depends on n, so the policy must learn
  // the new voter count (followers too — their fallback period recomputes);
  // a leading policy additionally re-deals the {2..n} pool over the new
  // voter set under a freshly minted confClock (Lemma 3: reconfig and
  // patrol serialize on this leader's single clock).
  policy_->on_membership_changed(patrol_others(), membership_.voters.size());
  if (changed) {
    ++counters_.membership_changes;
    if (started_) {
      emit({.kind = NodeEvent::Kind::kMembershipChanged,
            .term = current_term_,
            .index = at,
            .at = now});
      LOG_DEBUG(server_name(id_) << " adopts membership " << rpc::to_string(membership_)
                                 << " @" << at);
    }
  }
  // A promoted learner starts electing; a demoted or removed voter stops.
  if (started_ && role_ != Role::kLeader) {
    if (!membership_.is_voter(id_)) {
      election_deadline_ = kNever;
    } else if (election_deadline_ == kNever) {
      arm_election_timer(now);
    }
  }
}

void RaftNode::rescan_membership(TimePoint now) {
  rpc::Membership m = base_membership_;
  LogIndex at = 0;
  for (LogIndex i = log_.first_index(); i <= log_.last_index(); ++i) {
    const auto* e = log_.entry_at(i);
    if (e != nullptr && e->kind == rpc::EntryKind::kConfChange) {
      m = decode_conf_entry(e->command);
      at = i;
    }
  }
  set_membership(std::move(m), at, now);
}

rpc::Membership RaftNode::membership_at(LogIndex upto) const {
  rpc::Membership m = base_membership_;
  const LogIndex last = std::min(upto, log_.last_index());
  for (LogIndex i = log_.first_index(); i <= last; ++i) {
    const auto* e = log_.entry_at(i);
    if (e != nullptr && e->kind == rpc::EntryKind::kConfChange) {
      m = decode_conf_entry(e->command);
    }
  }
  return m;
}

bool RaftNode::votes_win() const {
  if (membership_.voters.empty()) return false;
  const auto majority = [&](const std::vector<ServerId>& set) {
    std::size_t got = 0;
    for (ServerId s : set) {
      if (votes_.count(s) != 0) ++got;
    }
    return got >= set.size() / 2 + 1;
  };
  if (!majority(membership_.voters)) return false;
  return !membership_.joint() || majority(membership_.old_voters);
}

RaftNode::ConfChangeResult RaftNode::propose_conf_change(const ConfChange& change,
                                                         TimePoint now) {
  assert(started_);
  assert_inputs_allowed();
  ConfChangeResult out;
  if (role_ != Role::kLeader) {
    out.status = rpc::ConfChangeStatus::kNotLeader;
    return out;
  }
  if (membership_.joint() || conf_index_ > commit_index_) {
    // One change at a time (dissertation §4.3): the previous conf entry
    // must commit — and a joint config must complete its Cnew handoff —
    // before the next change may start.
    out.status = rpc::ConfChangeStatus::kBusy;
    return out;
  }
  auto target = apply_conf_change(membership_, change);
  if (!target) {
    out.status = rpc::ConfChangeStatus::kInvalid;
    return out;
  }
  if (change.op == rpc::ConfChangeOp::kPromote) {
    const auto it = progress_.find(change.server);
    if (it == progress_.end() || it->second.match < commit_index_) {
      out.status = rpc::ConfChangeStatus::kNotCaughtUp;
      return out;
    }
  }
  rpc::LogEntry entry;
  entry.term = current_term_;
  entry.index = log_.last_index() + 1;
  entry.kind = rpc::EntryKind::kConfChange;
  entry.command = encode_conf_entry(*target);
  out.index = entry.index;
  out.status = rpc::ConfChangeStatus::kOk;
  append_entry(std::move(entry), now);  // adopts the membership on append
  for (ServerId peer : others_) maybe_send_appends(peer);
  maybe_advance_commit(now);  // single-node clusters commit immediately
  sync_soft_state();
  LOG_DEBUG(server_name(id_) << " proposed conf change op=" << static_cast<int>(change.op)
                             << " server=" << server_name(change.server) << " @" << out.index);
  return out;
}

void RaftNode::maybe_finish_conf_change(TimePoint now) {
  if (role_ != Role::kLeader || conf_index_ > commit_index_) return;
  if (membership_.joint()) {
    // Cold,new is committed under both majorities: the handoff is decided.
    // Append Cnew so the old majority retires.
    rpc::LogEntry entry;
    entry.term = current_term_;
    entry.index = log_.last_index() + 1;
    entry.kind = rpc::EntryKind::kConfChange;
    entry.command = encode_conf_entry(finish_joint(membership_));
    append_entry(std::move(entry), now);
    for (ServerId peer : others_) maybe_send_appends(peer);
    maybe_advance_commit(now);
    return;
  }
  if (!membership_.is_voter(id_)) {
    // Cnew committed and it does not include this leader: step down
    // (dissertation §4.2.2). The election timer stays disarmed — a removed
    // server never campaigns — and the vote-recency guard on the remaining
    // voters contains any disruption from our stale lease window.
    LOG_DEBUG(server_name(id_) << " removed by committed conf entry; stepping down");
    become_follower(current_term_, kNoServer, now, /*reset_timer=*/true);
  }
}

void RaftNode::handle_conf_change_request(ServerId from, const rpc::ConfChangeRequest& m,
                                          TimePoint now) {
  rpc::ConfChangeReply reply;
  reply.id = m.id;
  if (role_ != Role::kLeader) {
    reply.status = rpc::ConfChangeStatus::kNotLeader;
    reply.leader_hint = leader_id_;
  } else {
    const ConfChangeResult r = propose_conf_change({m.op, m.server}, now);
    reply.status = r.status;
    reply.leader_hint = id_;
    reply.index = r.index;
  }
  send(from, reply);
}

void RaftNode::start(TimePoint now) {
  if (started_) throw std::logic_error("start() called twice");
  if (boot_hard_state_) {
    current_term_ = boot_hard_state_->current_term;
    voted_for_ = boot_hard_state_->voted_for;
    policy_->restore(boot_hard_state_->config);
    boot_hard_state_.reset();
  }
  // The snapshotted state embodies configuration generation k; restoring the
  // state but an older configuration would regress the confClock (and with
  // it the staleness vote rule). Normally the hard state is at least as
  // fresh — every adoption persists — but a lost or corrupt state file must
  // not un-adopt what the snapshot proves this server held.
  if (snapshot_boot_config_ &&
      snapshot_boot_config_->conf_clock > policy_->current_config().conf_clock) {
    policy_->restore(*snapshot_boot_config_);
  }
  started_ = true;
  if (current_term_ > 0 || log_.last_index() > 0) {
    // Restarted, not newborn: this server may have acked a heartbeat round
    // (extending some leader's lease) right before it died. Refusing votes
    // for one guard window from here restores the lease argument's quorum-
    // intersection step for its pre-crash acks — any lease it helped grant
    // expires before this refusal window does (lease_ratio < vote_guard_ratio
    // and the lease was anchored at or before the crash).
    restart_guard_until_ =
        now + static_cast<Duration>(options_.vote_guard_ratio *
                                    static_cast<double>(policy_->min_election_timeout()));
  }
  arm_election_timer(now);
  sync_soft_state();  // first batch reports the initial soft state
  LOG_DEBUG(server_name(id_) << " started t=" << current_term_ << " log=" << log_.last_index());
}

void RaftNode::step(const rpc::Envelope& envelope, TimePoint now) {
  assert(started_);
  assert_inputs_allowed();
  ++counters_.messages_received;
  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, rpc::RequestVote>) {
          handle_request_vote(m, now);
        } else if constexpr (std::is_same_v<T, rpc::RequestVoteReply>) {
          handle_request_vote_reply(m, now);
        } else if constexpr (std::is_same_v<T, rpc::AppendEntries>) {
          handle_append_entries(envelope.from, m, now);
        } else if constexpr (std::is_same_v<T, rpc::AppendEntriesReply>) {
          handle_append_entries_reply(m, now);
        } else if constexpr (std::is_same_v<T, rpc::TimeoutNow>) {
          handle_timeout_now(m, now);
        } else if constexpr (std::is_same_v<T, rpc::InstallSnapshot>) {
          handle_install_snapshot(m, now);
        } else if constexpr (std::is_same_v<T, rpc::InstallSnapshotReply>) {
          handle_install_snapshot_reply(m, now);
        } else if constexpr (std::is_same_v<T, rpc::ConfChangeRequest>) {
          handle_conf_change_request(envelope.from, m, now);
        } else if constexpr (std::is_same_v<T, rpc::ConfChangeReply>) {
          // Admin-plane reply addressed to whoever proposed the change; the
          // serving layer consumes these, the consensus core ignores them.
        } else {
          // Client traffic is handled by the application layer (kv::Server);
          // the consensus core only sees consensus RPCs.
          LOG_WARN(server_name(id_) << " dropping non-consensus message");
        }
      },
      envelope.message);
  sync_soft_state();
}

void RaftNode::tick(TimePoint now) {
  assert(started_);
  assert_inputs_allowed();
  if (role_ != Role::kLeader && election_deadline_ != kNever && now >= election_deadline_) {
    start_campaign(now);
  }
  if (role_ == Role::kLeader && heartbeat_deadline_ != kNever && now >= heartbeat_deadline_) {
    broadcast_heartbeat_round(now);
  }
  sync_soft_state();
}

std::optional<LogIndex> RaftNode::submit(std::vector<std::uint8_t> command, TimePoint now) {
  assert(started_);
  assert_inputs_allowed();
  if (role_ != Role::kLeader) return std::nullopt;
  rpc::LogEntry entry;
  entry.term = current_term_;
  entry.index = log_.last_index() + 1;
  entry.command = std::move(command);
  const LogIndex index = entry.index;
  append_entry(std::move(entry), now);
  // Replicate eagerly while each peer's pipelining window has room;
  // heartbeats would pick it up anyway, but latency matters to clients.
  // Once a window fills, further submissions accumulate and leave as
  // multi-entry batches when acks (or the next round) reopen it — that
  // backpressure is where batching coalescing actually comes from.
  for (ServerId peer : others_) maybe_send_appends(peer);
  maybe_advance_commit(now);  // single-node clusters commit immediately
  sync_soft_state();
  return index;
}

void RaftNode::ack_persisted(LogIndex durable, TimePoint now) {
  assert(started_);
  assert_inputs_allowed();
  if (durable > durable_index_) {
    durable_index_ = durable;
    // The leader's own copy just became countable (see NodeOptions::
    // async_persist); entries waiting only on it can commit now.
    if (role_ == Role::kLeader) maybe_advance_commit(now);
  }
  sync_soft_state();
}

bool RaftNode::transfer_leadership(ServerId target, TimePoint now) {
  assert_inputs_allowed();
  if (role_ != Role::kLeader || target == id_) return false;
  const auto it = progress_.find(target);
  if (it == progress_.end()) return false;
  if (it->second.match < log_.last_index()) return false;  // target not caught up
  // The target's transfer campaign bypasses the vote-recency guard, so the
  // usual "no rival before the lease expires" argument no longer covers this
  // leadership — from this instant until step-down, and not just until the
  // next quorum-acked round re-extends the lease (an in-flight ack arriving
  // after a one-shot revocation would re-arm it while the rival can already
  // be campaigning). The pending ReadIndex batch stays safe: it needs quorum
  // acks in the current term, which the transfer itself will invalidate.
  transfer_pending_ = true;
  revoke_lease();
  (void)now;
  rpc::TimeoutNow m;
  m.term = current_term_;
  m.leader_id = id_;
  send(target, m);
  LOG_DEBUG(server_name(id_) << " transfers leadership to " << server_name(target));
  return true;
}

// --- read fast path ----------------------------------------------------------

void RaftNode::append_noop(TimePoint now) {
  rpc::LogEntry noop;
  noop.term = current_term_;
  noop.index = log_.last_index() + 1;
  append_entry(std::move(noop), now);
}

bool RaftNode::lease_valid(TimePoint now) const {
  return role_ == Role::kLeader && !transfer_pending_ && options_.lease_ratio > 0 &&
         lease_until_ > 0 && now < lease_until_ &&
         policy_->current_config().conf_clock == lease_clock_;
}

std::optional<ReadId> RaftNode::submit_read(TimePoint now) {
  assert(started_);
  assert_inputs_allowed();
  if (role_ != Role::kLeader) return std::nullopt;
  const ReadId id = ++next_read_id_;
  // A fresh leader's commit index can trail what its predecessor committed
  // (it only learns the true frontier by committing in its own term —
  // dissertation §6.4's "no-op at start of term" problem; SimCheck found the
  // stale read within a few hundred trials). Until an own-term entry is
  // committed, a read may not use commit_index_ as its index; Leader
  // Completeness bounds every possibly-committed entry by our log tail, so
  // the read waits on that instead, and an on-demand no-op barrier makes
  // sure something of this term commits even on an otherwise idle cluster.
  const bool term_committed =
      log_.last_index() == 0 || log_.term_at(commit_index_) == current_term_;
  // A sole-voter cluster is its own quorum: every read is trivially
  // current-leader-confirmed (mirrors submit()'s immediate commit), even
  // when learners are attached — they sit outside the quorum and must not
  // gate reads. The fresh-leadership barrier still applies — a restarted
  // singleton resumes with commit_index at its snapshot boundary, below
  // what it acked before.
  if (sole_voter()) {
    if (!term_committed) {
      append_noop(now);
      maybe_advance_commit(now);  // self-quorum: commits the whole log
    }
    grant_read(id, commit_index_, /*via_lease=*/false, now);
    ++counters_.read_index_reads;
    sync_soft_state();
    return id;
  }
  if (term_committed && lease_valid(now) && last_applied_ >= commit_index_) {
    grant_read(id, commit_index_, /*via_lease=*/true, now);
    ++counters_.lease_reads;
    return id;
  }
  // Backpressure: a leader that cannot reach a quorum (minority partition)
  // would otherwise queue reads without bound until it finally steps down.
  // Past the cap, reject immediately — the client retries or re-routes.
  if (pending_reads_.size() >= kMaxPendingReads) {
    ready_.read_grants.push_back({id, 0, /*ok=*/false, false});
    ++counters_.reads_rejected;
    NodeEvent ev;
    ev.kind = NodeEvent::Kind::kReadRejected;
    ev.term = current_term_;
    ev.at = now;
    ev.read_id = id;
    emit(ev);
    return id;
  }
  // ReadIndex: remember today's commit frontier; quorum acks to a round
  // *broadcast after this instant* prove no newer leader existed when the
  // read arrived, making that frontier a linearizable lower bound.
  const LogIndex read_index = term_committed ? commit_index_ : log_.last_index();
  pending_reads_.push_back({id, read_index, broadcast_round_ + 1});
  // Self-clocking batch trigger: confirm eagerly when no round is in flight
  // (sub-RTT read latency); otherwise the batch rides the round broadcast
  // when the in-flight one confirms, or the next scheduled heartbeat.
  const bool open_round_now = confirmed_round_ == broadcast_round_;
  if (!term_committed && log_.last_term() != current_term_) {
    // Barrier no-op: commits the inherited suffix so the read's release
    // condition can be met without waiting for client write traffic. When a
    // round is about to open it carries the entry; only replicate
    // explicitly when the batch is riding an in-flight round instead.
    append_noop(now);
    if (!open_round_now) {
      for (ServerId peer : others_) maybe_send_appends(peer);
    }
  }
  if (open_round_now) broadcast_heartbeat_round(now);
  sync_soft_state();
  return id;
}

void RaftNode::note_round_ack(ServerId peer, std::uint64_t round, TimePoint now) {
  if (round == 0) return;  // pre-read-path peer or non-round message
  auto& acked = acked_round_[peer];
  if (round <= acked) return;
  acked = round;
  // Quorum-max per voter set: the highest round a majority of the set has
  // acknowledged (self counts at broadcast_round_ when it is in the set;
  // learner echoes never gate a quorum). A joint configuration confirms a
  // round only when BOTH majorities have echoed it — the same rule its
  // commits and elections obey, so a read confirmed mid-reconfig is sound
  // against rivals elected under either configuration.
  const auto set_round = [&](const std::vector<ServerId>& set) -> std::uint64_t {
    std::vector<std::uint64_t> rounds;
    rounds.reserve(set.size());
    for (const ServerId s : set) {
      if (s == id_) {
        rounds.push_back(broadcast_round_);
      } else {
        const auto it = acked_round_.find(s);
        rounds.push_back(it == acked_round_.end() ? 0 : it->second);
      }
    }
    if (rounds.empty()) return broadcast_round_;
    const auto nth = static_cast<std::ptrdiff_t>(rounds.size() / 2);
    std::nth_element(rounds.begin(), rounds.begin() + nth, rounds.end(), std::greater<>());
    return rounds[static_cast<std::size_t>(nth)];
  };
  std::uint64_t quorum_round = set_round(membership_.voters);
  if (membership_.joint()) {
    quorum_round = std::min(quorum_round, set_round(membership_.old_voters));
  }
  if (quorum_round <= confirmed_round_) return;
  confirmed_round_ = quorum_round;

  // Lease extension: the confirmed round was *sent* at T_S; every acking
  // follower rearmed its election timer at receipt >= T_S and refuses votes
  // for min_election_timeout after that contact, so no rival can be elected
  // before T_S + min_election_timeout. The lease stops strictly earlier.
  const auto sent = round_sent_at_.find(quorum_round);
  if (sent != round_sent_at_.end() && options_.lease_ratio > 0 && !transfer_pending_) {
    const auto span = static_cast<Duration>(
        options_.lease_ratio * static_cast<double>(policy_->min_election_timeout()));
    const TimePoint until = sent->second + span;
    if (until > lease_until_) {
      lease_until_ = until;
      lease_clock_ = policy_->current_config().conf_clock;
    }
  }
  round_sent_at_.erase(round_sent_at_.begin(), round_sent_at_.upper_bound(quorum_round));

  release_ready_reads(now);
  // A batch formed while the round was in flight waits on a round that is
  // not broadcast yet; open it now rather than waiting out the heartbeat
  // interval (closed-loop reads self-clock at one round per RTT).
  if (!pending_reads_.empty() && pending_reads_.back().required_round > broadcast_round_) {
    broadcast_heartbeat_round(now);
  }
}

void RaftNode::release_ready_reads(TimePoint now) {
  std::size_t released = 0;
  while (released < pending_reads_.size()) {
    const PendingRead& r = pending_reads_[released];
    if (r.required_round > confirmed_round_ || last_applied_ < r.read_index) break;
    grant_read(r.id, r.read_index, /*via_lease=*/false, now);
    ++counters_.read_index_reads;
    ++released;
  }
  pending_reads_.erase(pending_reads_.begin(),
                       pending_reads_.begin() + static_cast<std::ptrdiff_t>(released));
}

void RaftNode::grant_read(ReadId id, LogIndex read_index, bool via_lease, TimePoint now) {
  assert(last_applied_ >= read_index);
  ready_.read_grants.push_back({id, read_index, /*ok=*/true, via_lease});
  NodeEvent ev;
  ev.kind = NodeEvent::Kind::kReadGranted;
  ev.term = current_term_;
  ev.index = read_index;
  ev.at = now;
  ev.read_id = id;
  ev.via_lease = via_lease;
  emit(ev);
}

void RaftNode::reject_pending_reads(TimePoint now) {
  for (const PendingRead& r : pending_reads_) {
    ready_.read_grants.push_back({r.id, r.read_index, /*ok=*/false, false});
    ++counters_.reads_rejected;
    NodeEvent ev;
    ev.kind = NodeEvent::Kind::kReadRejected;
    ev.term = current_term_;
    ev.index = r.read_index;
    ev.at = now;
    ev.read_id = r.id;
    emit(ev);
  }
  pending_reads_.clear();
}

void RaftNode::revoke_lease() {
  lease_until_ = 0;
  lease_clock_ = 0;
}

void RaftNode::reset_read_state(TimePoint now) {
  reject_pending_reads(now);
  revoke_lease();
  transfer_pending_ = false;
  acked_round_.clear();
  round_sent_at_.clear();
  broadcast_round_ = 0;
  confirmed_round_ = 0;
}

void RaftNode::handle_timeout_now(const rpc::TimeoutNow& m, TimePoint now) {
  // Only honor a transfer from the current term's leader; stale or rogue
  // requests are ignored (the campaign itself is still governed by the
  // normal election rules, so even a honored stale one is safe).
  if (m.term < current_term_ || role_ == Role::kLeader) return;
  if (m.term > current_term_) become_follower(m.term, m.leader_id, now, /*reset_timer=*/false);
  // The sanctioning leader revoked its lease before sending; flag the
  // campaign so voters waive the recency guard (everyone heard from that
  // leader moments ago — an unflagged transfer campaign could never win).
  start_campaign(now, /*leadership_transfer=*/true);
}

std::optional<LogIndex> RaftNode::compact(LogIndex upto, std::vector<std::uint8_t> state,
                                          TimePoint now) {
  assert(started_);
  assert_inputs_allowed();
  if (!can_compact_) return std::nullopt;  // driver cannot persist snapshots
  upto = std::min(upto, last_applied_);    // never snapshot unapplied entries
  if (upto <= log_.base()) return std::nullopt;
  Snapshot snap;
  snap.last_included_index = upto;
  snap.last_included_term = *log_.term_at(upto);
  snap.config = policy_->current_config();
  // Membership as of the compaction boundary (conf entries above `upto`
  // survive in the log and still override this on a future rescan).
  snap.membership = membership_at(upto);
  snap.state = std::move(state);
  snapshot_ = std::make_shared<const Snapshot>(std::move(snap));
  // Snapshot first, compact second: a crash between the two replays a log
  // whose prefix the snapshot already covers (harmless), never a log whose
  // prefix is gone with no snapshot to stand in for it. LogOps execute in
  // order, so the batch encodes exactly that discipline.
  ready_.log_ops.push_back(LogOp::save_snapshot(snapshot_));
  ready_.log_ops.push_back(LogOp::compact_to(upto));
  log_.compact_to(upto);
  base_membership_ = snapshot_->membership;  // the new log base's membership
  ++counters_.snapshots_taken;
  emit({.kind = NodeEvent::Kind::kSnapshotTaken,
        .term = current_term_,
        .index = upto,
        .at = now});
  LOG_DEBUG(server_name(id_) << " compacted log through " << upto);
  return upto;
}

// --- the Ready interface -----------------------------------------------------

bool RaftNode::has_ready() const { return started_ && !ready_in_flight_ && !ready_.empty(); }

Ready RaftNode::ready() {
  if (ready_in_flight_) throw std::logic_error("ready() called again before advance()");
  if (!started_) throw std::logic_error("ready() before start()");
  Ready out = std::move(ready_);
  ready_ = Ready{};
  out.sequence = ++next_sequence_;
  if (out.soft_state) {
    reported_soft_ = *out.soft_state;
    soft_reported_once_ = true;
  }
  ready_in_flight_ = true;
  return out;
}

void RaftNode::advance(LogIndex applied) {
  if (!ready_in_flight_) throw std::logic_error("advance() without a batch in flight");
  if (applied != last_applied_) {
    // The batch handed the driver everything through last_applied_ (restore
    // boundary included); anything else means the driver dropped or invented
    // applies, which silently breaks every read-linearizability promise.
    throw std::logic_error("advance(" + std::to_string(applied) + ") but the core applied " +
                           std::to_string(last_applied_));
  }
  ready_in_flight_ = false;
}

TimePoint RaftNode::next_deadline() const {
  return std::min(election_deadline_, heartbeat_deadline_);
}

// --- role transitions --------------------------------------------------------

void RaftNode::become_follower(Term term, ServerId leader, TimePoint now, bool reset_timer) {
  assert(term >= current_term_);
  const bool stepping_down = role_ != Role::kFollower;
  bool dirty = false;
  if (term > current_term_) {
    // Eq. 3 / Raft: adopt the higher term and forget this term's vote.
    current_term_ = term;
    voted_for_ = kNoServer;
    dirty = true;
  }
  // Deposed leaders answer no more reads: pending ReadIndex batches can no
  // longer be confirmed in this term, and a lease must never outlive the
  // leadership it certifies.
  reset_read_state(now);
  role_ = Role::kFollower;
  leader_id_ = leader;
  votes_.clear();
  heartbeat_deadline_ = kNever;
  if (dirty) persist_state();
  if (stepping_down) {
    emit({.kind = NodeEvent::Kind::kSteppedDown, .term = current_term_, .at = now});
  }
  if (reset_timer || election_deadline_ == kNever) arm_election_timer(now);
}

void RaftNode::start_campaign(TimePoint now, bool leadership_transfer) {
  if (!membership_.is_voter(id_)) {
    // Learners and removed servers never campaign (their election timer is
    // disarmed; this also shields against a stray TimeoutNow or a scripted
    // timer override).
    return;
  }
  if (role_ == Role::kLeader) {
    // Re-campaign out of a leadership (possible only via scripted timers):
    // drop the read state the old leadership accumulated.
    reset_read_state(now);
  }
  role_ = Role::kCandidate;
  leader_id_ = kNoServer;
  current_term_ = policy_->campaign_term(current_term_);
  voted_for_ = id_;
  votes_.clear();
  votes_.insert(id_);
  persist_state();
  ++counters_.campaigns_started;
  emit({.kind = NodeEvent::Kind::kCampaignStarted, .term = current_term_, .at = now});
  LOG_DEBUG(server_name(id_) << " campaigns in t=" << current_term_);

  rpc::RequestVote rv;
  rv.term = current_term_;
  rv.candidate_id = id_;
  rv.last_log_index = log_.last_index();
  rv.last_log_term = log_.last_term();
  rv.conf_clock = policy_->vote_request_clock();
  rv.leadership_transfer = leadership_transfer;
  // Solicit every voter of either set — a joint election needs both
  // majorities — but not learners: their grants would not count.
  for (ServerId peer : voter_others()) {
    send(peer, rv);
    ++counters_.request_votes_sent;
  }
  arm_election_timer(now);
  if (votes_win()) become_leader(now);  // single-node cluster
}

void RaftNode::become_leader(TimePoint now) {
  assert(role_ == Role::kCandidate);
  role_ = Role::kLeader;
  leader_id_ = id_;
  election_deadline_ = kNever;
  progress_.clear();
  install_sent_round_.clear();
  reset_read_state(now);  // a lease is earned per leadership, never inherited
  for (ServerId peer : others_) {
    progress_[peer] = Progress{log_.last_index() + 1, 0, 0, false};
  }
  // The patrol pool covers the destination voter set: learners hold no
  // priority (they never campaign) and old-only voters are being retired.
  policy_->on_become_leader(patrol_others(), current_term_);
  ++counters_.elections_won;
  emit({.kind = NodeEvent::Kind::kBecameLeader, .term = current_term_, .at = now});
  LOG_DEBUG(server_name(id_) << " elected leader t=" << current_term_);

  if (options_.commit_noop_on_elect || conf_index_ > commit_index_) {
    // Barrier entry: commits everything from prior terms once it replicates
    // (Raft §5.4.2 — prior-term entries never commit by counting alone).
    // Forced when an uncommitted configuration entry was inherited: an
    // in-flight reconfiguration must complete without waiting for client
    // traffic to supply the current-term entry the commit rule needs.
    append_noop(now);
  }
  broadcast_heartbeat_round(now);
  maybe_advance_commit(now);  // single-node clusters
  // Inherited, already-committed joint config: append Cnew now. The
  // commit-driven trigger only fires on a commit *advance*, which an idle
  // leadership would otherwise never see.
  maybe_finish_conf_change(now);
}

// --- message handlers --------------------------------------------------------

void RaftNode::handle_request_vote(const rpc::RequestVote& m, TimePoint now) {
  // Vote-recency guard (Raft dissertation §4.2.3): a server that heard from
  // a live leader within the minimum election timeout neither grants the
  // vote *nor adopts the candidate's term* — otherwise a partially
  // partitioned server could depose a healthy leader through voters that
  // still hear it, which is exactly the hole that would let an expired-lease
  // argument fail (see NodeOptions::lease_ratio). Leaders trust their own
  // authority the same way. A TimeoutNow-triggered campaign bypasses the
  // guard: the sanctioning leader already revoked its lease.
  if (!m.leadership_transfer && m.candidate_id != id_) {
    const auto guard_window = static_cast<Duration>(
        options_.vote_guard_ratio * static_cast<double>(policy_->min_election_timeout()));
    const bool leader_is_live =
        role_ == Role::kLeader ||
        (leader_id_ != kNoServer && last_leader_contact_ != kNever &&
         now - last_leader_contact_ < guard_window) ||
        now < restart_guard_until_;
    if (leader_is_live) {
      ++counters_.votes_refused_recent_leader;
      rpc::RequestVoteReply refusal;
      refusal.term = current_term_;
      refusal.vote_granted = false;
      refusal.voter_id = id_;
      send(m.candidate_id, refusal);
      return;
    }
  }
  if (m.term > current_term_) {
    become_follower(m.term, kNoServer, now, /*reset_timer=*/false);
  }
  bool granted = false;
  if (m.term == current_term_ && (voted_for_ == kNoServer || voted_for_ == m.candidate_id) &&
      log_.candidate_is_up_to_date(m.last_log_index, m.last_log_term) &&
      policy_->approve_candidate(m)) {
    granted = true;
    if (voted_for_ != m.candidate_id) {
      voted_for_ = m.candidate_id;
      persist_state();
    }
    ++counters_.votes_granted;
    emit({.kind = NodeEvent::Kind::kVoteGranted,
          .peer = m.candidate_id,
          .term = current_term_,
          .at = now});
    arm_election_timer(now);  // granting a vote defers our own candidacy
  }
  rpc::RequestVoteReply reply;
  reply.term = current_term_;
  reply.vote_granted = granted;
  reply.voter_id = id_;
  send(m.candidate_id, reply);
}

void RaftNode::handle_request_vote_reply(const rpc::RequestVoteReply& m, TimePoint now) {
  if (m.term > current_term_) {
    become_follower(m.term, kNoServer, now, /*reset_timer=*/false);
    return;
  }
  if (role_ != Role::kCandidate || m.term < current_term_ || !m.vote_granted) return;
  votes_.insert(m.voter_id);
  if (votes_win()) become_leader(now);
}

void RaftNode::handle_append_entries(ServerId from, const rpc::AppendEntries& m, TimePoint now) {
  (void)from;
  if (m.term < current_term_) {
    rpc::AppendEntriesReply reply;
    reply.term = current_term_;
    reply.success = false;
    reply.from = id_;
    reply.status = own_status();
    send(m.leader_id, reply);
    return;
  }
  if (m.term > current_term_) {
    become_follower(m.term, m.leader_id, now, /*reset_timer=*/false);
  } else if (role_ == Role::kCandidate) {
    become_follower(m.term, m.leader_id, now, /*reset_timer=*/false);
  } else if (role_ == Role::kLeader) {
    // Two leaders in one term violates Election Safety; refuse loudly.
    LOG_ERROR(server_name(id_) << " saw AppendEntries from " << server_name(m.leader_id)
                               << " in own leadership term " << current_term_);
    return;
  }
  leader_id_ = m.leader_id;
  last_leader_contact_ = now;  // vote-recency guard input

  // Adopt any piggybacked configuration before re-arming the timer so the
  // new election-timeout period takes effect immediately (Section IV-B).
  if (m.new_config && policy_->on_config_received(*m.new_config)) {
    persist_state();
    ++counters_.config_adoptions;
    emit({.kind = NodeEvent::Kind::kConfigAdopted,
          .term = current_term_,
          .config = *m.new_config,
          .at = now});
  }
  arm_election_timer(now);

  rpc::AppendEntriesReply reply;
  reply.term = current_term_;
  reply.from = id_;
  // Echo the broadcast round even on replication failure: either reply
  // proves this follower still recognizes the sender's term, which is all a
  // ReadIndex confirmation (or lease extension) needs.
  reply.round = m.round;

  // A prev inside our compacted prefix is vacuously consistent: everything
  // at or below the snapshot boundary is committed, and committed prefixes
  // agree on every server (Leader Completeness). The boundary itself still
  // checks its retained term.
  const bool prefix_ok = m.prev_log_index < log_.base() ||
                         log_.matches(m.prev_log_index, m.prev_log_term);
  if (!prefix_ok) {
    reply.success = false;
    if (log_.last_index() < m.prev_log_index) {
      // Log too short: leader should back up to our tail.
      reply.conflict_index = log_.last_index() + 1;
      reply.conflict_term = 0;
    } else {
      // Term mismatch at prev: report the whole conflicting term at once.
      reply.conflict_term = log_.term_at(m.prev_log_index).value_or(0);
      reply.conflict_index =
          log_.first_index_of_term(reply.conflict_term).value_or(m.prev_log_index);
    }
    reply.status = own_status();
    send(m.leader_id, reply);
    return;
  }

  for (const auto& e : m.entries) {
    if (e.index <= log_.base()) continue;  // already absorbed by our snapshot
    const auto existing = log_.term_at(e.index);
    if (existing && *existing != e.term) {
      ready_.log_ops.push_back(LogOp::truncate_from(e.index));
      log_.truncate_from(e.index);
      if (conf_index_ >= e.index) {
        // The conflicting suffix carried the conf entry we had adopted
        // (latest-config-in-log cuts both ways: an uncommitted conf entry
        // rolls back when the log does).
        rescan_membership(now);
      }
    }
    if (e.index > log_.last_index()) {
      append_entry(e, now);  // a conf entry takes effect right here
    }
  }

  if (m.leader_commit > commit_index_) {
    commit_index_ = std::min(m.leader_commit, log_.last_index());
    apply_committed(now);
    emit({.kind = NodeEvent::Kind::kCommitAdvanced,
          .term = current_term_,
          .index = commit_index_,
          .at = now});
  }

  reply.success = true;
  reply.match_index = m.prev_log_index + static_cast<LogIndex>(m.entries.size());
  reply.status = own_status();
  send(m.leader_id, reply);
}

void RaftNode::handle_append_entries_reply(const rpc::AppendEntriesReply& m, TimePoint now) {
  if (m.term > current_term_) {
    become_follower(m.term, kNoServer, now, /*reset_timer=*/false);
    return;
  }
  if (role_ != Role::kLeader || m.term < current_term_) return;

  // The peer is alive and talking: lift the snapshot-resend throttle so a
  // follower that still needs the snapshot gets it immediately.
  install_sent_round_.erase(m.from);

  // PPF input: track log responsiveness regardless of replication outcome.
  policy_->on_follower_status(m.from, m.status);

  // Read fast path: count the echoed round toward quorum confirmation
  // (success or not — the reply proves the follower is still in our term).
  note_round_ack(m.from, m.round, now);

  const auto it = progress_.find(m.from);
  if (it == progress_.end()) return;  // reply from a non-member
  Progress& pr = it->second;

  if (m.success) {
    pr.match = std::max(pr.match, m.match_index);
    pr.next = std::max(pr.next, m.match_index + 1);
    if (pr.inflight > 0) --pr.inflight;  // one batch confirmed, window reopens
    pr.probing = false;
    maybe_advance_commit(now);
    maybe_send_appends(m.from);  // refill the pipeline
  } else {
    LogIndex next;
    if (m.conflict_term != 0) {
      // If we have entries of the conflicting term, probe just past our last
      // one; otherwise skip the follower's entire conflicting term.
      const auto last_of_term = log_.last_index_of_term(m.conflict_term);
      next = last_of_term ? *last_of_term + 1 : m.conflict_index;
    } else {
      next = m.conflict_index;
    }
    next = std::clamp<LogIndex>(next, 1, log_.last_index() + 1);
    if (next <= pr.match) {
      // Stale rejection: a pipelined batch this peer NACKed before a later
      // success established agreement through pr.match. Walking `next` back
      // below match would resend entries the peer provably holds.
      return;
    }
    // Guarantee progress even with a degenerate hint, but never below the
    // agreed prefix.
    pr.next = std::max(pr.match + 1,
                       std::min(next, std::max<LogIndex>(1, pr.next > 1 ? pr.next - 1 : 1)));
    // Probe state: close the window to this single message until the peer
    // confirms where the logs agree — blasting max_inflight_msgs speculative
    // batches at a diverged follower would all be rejected anyway.
    pr.probing = true;
    pr.inflight = 0;
    send_append_entries(m.from, /*include_config=*/false);
  }
}

void RaftNode::handle_install_snapshot(const rpc::InstallSnapshot& m, TimePoint now) {
  rpc::InstallSnapshotReply reply;
  reply.from = id_;
  if (m.term < current_term_) {
    reply.term = current_term_;
    reply.success = false;
    reply.status = own_status();
    send(m.leader_id, reply);
    return;
  }
  if (m.term > current_term_ || role_ == Role::kCandidate) {
    become_follower(m.term, m.leader_id, now, /*reset_timer=*/false);
  } else if (role_ == Role::kLeader) {
    // Same-term InstallSnapshot from another leader: Election Safety is
    // broken; refuse loudly, as with AppendEntries.
    LOG_ERROR(server_name(id_) << " saw InstallSnapshot from " << server_name(m.leader_id)
                               << " in own leadership term " << current_term_);
    return;
  }
  leader_id_ = m.leader_id;
  last_leader_contact_ = now;  // vote-recency guard input
  arm_election_timer(now);
  reply.term = current_term_;
  reply.success = true;
  reply.round = m.round;  // a snapshot shipped for a round still confirms it

  if (m.last_included_index <= commit_index_) {
    // Stale or duplicate snapshot: we already hold (and may have applied)
    // everything it covers. Report how far we actually are so the leader's
    // next_index jumps past the resend.
    reply.match_index = commit_index_;
    reply.status = own_status();
    send(m.leader_id, reply);
    return;
  }

  // The message carries this follower's own PPF assignment; only a strictly
  // fresher clock is adopted, so an old snapshot resend can never roll the
  // confClock back.
  if (policy_->on_config_received(m.config)) {
    ++counters_.config_adoptions;
    emit({.kind = NodeEvent::Kind::kConfigAdopted,
          .term = current_term_,
          .config = m.config,
          .at = now});
    arm_election_timer(now);  // the adopted timeout takes effect immediately
  }
  persist_state();

  Snapshot snap;
  snap.last_included_index = m.last_included_index;
  snap.last_included_term = m.last_included_term;
  // Our own snapshot stores *our* adopted configuration (it restores our
  // identity at restart), which the adoption above just refreshed.
  snap.config = policy_->current_config();
  // Membership as of the snapshot boundary: what the leader shipped (a
  // learner catching up by snapshot learns the voter set from here). An
  // empty shipped membership (hand-crafted legacy message) keeps what we
  // already believe.
  snap.membership = m.membership.empty() ? membership_ : m.membership;
  snap.state = m.state;
  snapshot_ = std::make_shared<const Snapshot>(std::move(snap));
  // Same crash-ordering rule as compact(): the snapshot must be durable
  // before the WAL drops the prefix it stands in for — a crash in between
  // otherwise reopens a WAL rebased past a snapshot that does not exist.
  // Drivers without a snapshot store (can_compact_ false) skip the save but
  // still compact their WAL, exactly as before the core/driver split.
  if (can_compact_) {
    ready_.log_ops.push_back(LogOp::save_snapshot(snapshot_));
  }

  // When our log already contains the boundary entry with the right term,
  // the suffix beyond it is consistent and survives; otherwise the whole
  // log is superseded and rebases onto the snapshot.
  const auto existing = log_.term_at(m.last_included_index);
  if (existing && *existing == m.last_included_term) {
    ready_.log_ops.push_back(LogOp::compact_to(m.last_included_index));
    log_.compact_to(m.last_included_index);
  } else {
    if (m.last_included_index < log_.last_index()) {
      ready_.log_ops.push_back(
          LogOp::truncate_from(std::max(m.last_included_index + 1, log_.first_index())));
    }
    ready_.log_ops.push_back(LogOp::compact_to(m.last_included_index));
    log_.reset_to(m.last_included_index, m.last_included_term);
  }
  commit_index_ = m.last_included_index;
  last_applied_ = m.last_included_index;
  // The snapshot boundary is the log's new base: its membership becomes the
  // base membership, and conf entries surviving in the retained suffix (the
  // consistent-suffix case above) still override it.
  base_membership_ = snapshot_->membership;
  rescan_membership(now);
  ready_.committed.clear();  // superseded by the snapshot's state
  ready_.restore = snapshot_;
  ++counters_.snapshots_installed;
  emit({.kind = NodeEvent::Kind::kSnapshotInstalled,
        .term = current_term_,
        .index = m.last_included_index,
        .at = now});
  LOG_DEBUG(server_name(id_) << " installed snapshot through " << m.last_included_index);

  reply.match_index = m.last_included_index;
  reply.status = own_status();
  send(m.leader_id, reply);
}

void RaftNode::handle_install_snapshot_reply(const rpc::InstallSnapshotReply& m,
                                             TimePoint now) {
  if (m.term > current_term_) {
    become_follower(m.term, kNoServer, now, /*reset_timer=*/false);
    return;
  }
  if (role_ != Role::kLeader || m.term < current_term_) return;
  install_sent_round_.erase(m.from);  // it arrived; resume normal flow
  if (!m.success) return;
  policy_->on_follower_status(m.from, m.status);
  note_round_ack(m.from, m.round, now);
  const auto it = progress_.find(m.from);
  if (it == progress_.end()) return;
  Progress& pr = it->second;
  pr.match = std::max(pr.match, m.match_index);
  pr.next = std::max(pr.next, m.match_index + 1);
  pr.probing = false;
  pr.inflight = 0;  // the snapshot round-trip drained anything speculative
  maybe_advance_commit(now);
  maybe_send_appends(m.from);  // ship the suffix
}

// --- leader machinery ----------------------------------------------------------

void RaftNode::broadcast_heartbeat_round(TimePoint now) {
  ++counters_.heartbeat_rounds;
  // ESCAPE twist: feed each follower's replication backlog and pipeline
  // depth into the policy before the patrol ranks followers, so π(P, k)
  // reflects not just the last log index a follower reported but how much
  // the leader still owes it under the current load.
  for (ServerId peer : others_) {
    const auto it = progress_.find(peer);
    if (it == progress_.end()) continue;
    const LogIndex backlog =
        log_.last_index() > it->second.match ? log_.last_index() - it->second.match : 0;
    policy_->on_follower_backlog(peer, backlog, it->second.inflight);
  }
  policy_->begin_heartbeat_round();
  ++broadcast_round_;
  if (!others_.empty()) {
    // Remember the send instant: it anchors the lease extension when a
    // quorum echoes this round. Cap the unconfirmed backlog — a leader that
    // cannot reach a quorum (minority partition) must not grow this map for
    // as long as the partition lasts, and rounds that old can no longer
    // extend a useful lease anyway.
    round_sent_at_[broadcast_round_] = now;
    while (round_sent_at_.size() > 64) round_sent_at_.erase(round_sent_at_.begin());
  }
  for (ServerId peer : others_) {
    // Round-trip valve for the pipelining window: anything still unacked
    // after a full heartbeat interval is treated as lost — the reset reopens
    // the window, and the heartbeat itself re-probes from the optimistic
    // cursor (a follower that missed entries NACKs with conflict hints,
    // which walk the cursor back). Without this, max_inflight_msgs dropped
    // batches would wedge the window shut forever.
    auto& pr = progress_[peer];
    pr.inflight = 0;
    pr.probing = false;
    send_append_entries(peer, /*include_config=*/true);
    maybe_send_appends(peer);  // pipeline catch-up traffic behind the round
  }
  heartbeat_deadline_ = now + options_.heartbeat_interval;
}

void RaftNode::maybe_send_appends(ServerId peer) {
  const auto it = progress_.find(peer);
  if (it == progress_.end()) return;
  Progress& pr = it->second;
  while (!pr.probing && pr.inflight < options_.max_inflight_msgs &&
         (pr.next <= log_.last_index() || pr.next <= log_.base())) {
    const LogIndex before = pr.next;
    send_append_entries(peer, /*include_config=*/false);
    // The snapshot path (and its resend throttle) does not advance the
    // cursor; bail instead of spinning.
    if (pr.next == before) break;
  }
}

std::vector<rpc::LogEntry> RaftNode::gather_entries(LogIndex from) const {
  std::vector<rpc::LogEntry> out = log_.slice(from, options_.max_entries_per_rpc);
  std::size_t bytes = 0;
  std::size_t n = 0;
  for (; n < out.size(); ++n) {
    bytes += out[n].command.size() + kEntryFramingBytes;
    if (n > 0 && bytes > options_.max_bytes_per_msg) break;  // always keep >= 1
  }
  out.resize(n);
  return out;
}

void RaftNode::send_append_entries(ServerId peer, bool include_config) {
  Progress& pr = progress_.at(peer);
  const LogIndex next = pr.next;
  if (next <= log_.base()) {
    // The entries this follower needs are compacted away; only the snapshot
    // can catch it up (Raft §7). Re-ship to a *silent* peer (likely down —
    // every copy would be dropped anyway) only every snapshot_retry_rounds
    // heartbeats; any reply from the peer clears the throttle.
    const auto it = install_sent_round_.find(peer);
    if (it != install_sent_round_.end() &&
        counters_.heartbeat_rounds - it->second < options_.snapshot_retry_rounds) {
      return;
    }
    install_sent_round_[peer] = counters_.heartbeat_rounds;
    send_install_snapshot(peer);
    return;
  }
  rpc::AppendEntries ae;
  ae.term = current_term_;
  ae.leader_id = id_;
  ae.prev_log_index = next - 1;
  ae.prev_log_term = log_.term_at(next - 1).value_or(0);
  ae.entries = gather_entries(next);
  ae.leader_commit = commit_index_;
  // Every append is stamped with the latest broadcast round: a catch-up
  // append sent after round R was opened is sent no earlier than R's
  // heartbeats, so its ack confirms R just as well.
  ae.round = broadcast_round_;
  if (include_config) ae.new_config = policy_->config_for(peer);
  if (!ae.entries.empty()) {
    // Optimistic pipelining: assume delivery and march the cursor past the
    // batch so the next send ships the *following* entries instead of
    // resending these. A rejection (or the next heartbeat's NACK after a
    // loss) walks it back via conflict hints.
    pr.next = ae.entries.back().index + 1;
    ++pr.inflight;
    counters_.append_batch_entries.record(ae.entries.size());
    counters_.inflight_depth.record(pr.inflight);
  }
  send(peer, std::move(ae));
  ++counters_.append_entries_sent;
}

void RaftNode::send_install_snapshot(ServerId peer) {
  if (!snapshot_) {
    // A compacted log without a snapshot in memory should be impossible
    // (compact() builds one before compacting); surface it instead of
    // spinning.
    LOG_ERROR(server_name(id_) << " log compacted to " << log_.base()
                               << " but no snapshot available for " << server_name(peer));
    return;
  }
  rpc::InstallSnapshot is;
  is.term = current_term_;
  is.leader_id = id_;
  is.last_included_index = snapshot_->last_included_index;
  is.last_included_term = snapshot_->last_included_term;
  // Ship the *destination's* standing PPF assignment (as a heartbeat would),
  // never this leader's own stored configuration: two servers holding the
  // same (P, k) pair is exactly the Lemma 3 violation the clock exists to
  // rule out. Zeros (no assignment / non-ESCAPE policy) adopt as a no-op.
  is.config = policy_->assignment_for(peer).value_or(rpc::Configuration{});
  is.membership = snapshot_->membership;
  is.state = snapshot_->state;
  is.round = broadcast_round_;  // counts toward the round's quorum, as an AE would
  send(peer, std::move(is));
  ++counters_.install_snapshots_sent;
}

void RaftNode::maybe_advance_commit(TimePoint now) {
  // Per-voter-set majority test: self counts only when its own copy is
  // durable — always true with an inline-persisting driver (the Ready
  // contract persists before the acks that drive this arrive), but in
  // async-persist mode the local WAL tail may still sit in the completion
  // queue, and until ack_persisted() covers n, commitment must come from
  // the followers alone. Learners and retired peers hold Progress but sit
  // outside every voter set, so their matches never count here.
  const auto set_replicated = [&](const std::vector<ServerId>& set, LogIndex n) {
    std::size_t replicas = 0;
    for (const ServerId s : set) {
      if (s == id_) {
        if (!options_.async_persist || durable_index_ >= n) ++replicas;
      } else {
        const auto it = progress_.find(s);
        if (it != progress_.end() && it->second.match >= n) ++replicas;
      }
    }
    return replicas >= set.size() / 2 + 1;
  };
  bool advanced = false;
  // Raft §5.4.2: only entries of the current term commit by counting.
  for (LogIndex n = log_.last_index(); n > commit_index_; --n) {
    const auto t = log_.term_at(n);
    if (!t || *t != current_term_) break;  // older-term entries commit transitively
    // Joint consensus: a decision requires majorities of BOTH voter sets
    // for as long as Cold,new is in force (dissertation §4.3).
    if (!membership_.voters.empty() && set_replicated(membership_.voters, n) &&
        (!membership_.joint() || set_replicated(membership_.old_voters, n))) {
      commit_index_ = n;
      apply_committed(now);
      emit({.kind = NodeEvent::Kind::kCommitAdvanced, .term = current_term_, .index = n, .at = now});
      advanced = true;
      break;
    }
  }
  // Conf-change state machine: committing the joint entry triggers the Cnew
  // append; committing Cnew retires a removed leader.
  if (advanced) maybe_finish_conf_change(now);
}

// --- common machinery ------------------------------------------------------------

void RaftNode::arm_election_timer(TimePoint now) {
  if (role_ == Role::kLeader || !membership_.is_voter(id_)) {
    // Leaders heartbeat instead; learners and removed servers never
    // campaign (Figure 5's "NA/inf" timer, extended to non-voters).
    election_deadline_ = kNever;
    return;
  }
  election_deadline_ = now + policy_->next_election_timeout(rng_);
}

void RaftNode::persist_state() {
  HardState s;
  s.current_term = current_term_;
  s.voted_for = voted_for_;
  s.config = policy_->current_config();
  // Later persists within one batch overwrite earlier ones: hard state is
  // monotone within a batch, and the newest value subsumes what any message
  // already queued in this batch relies on.
  ready_.hard_state = std::move(s);
}

void RaftNode::append_entry(rpc::LogEntry entry, TimePoint now) {
  ready_.log_ops.push_back(LogOp::append(entry));
  const bool conf = entry.kind == rpc::EntryKind::kConfChange;
  log_.append(std::move(entry));
  if (conf) {
    // Latest-config-in-log (dissertation §4.1): a configuration entry takes
    // effect the moment it is appended, on leader and follower alike.
    const auto* e = log_.entry_at(log_.last_index());
    set_membership(decode_conf_entry(e->command), log_.last_index(), now);
  }
}

void RaftNode::apply_committed(TimePoint now) {
  while (last_applied_ < commit_index_) {
    ++last_applied_;
    const auto* e = log_.entry_at(last_applied_);
    assert(e != nullptr);
    ready_.committed.push_back(*e);
    ++counters_.entries_committed;
  }
  // A pending read whose round is already confirmed may have been waiting
  // only for the apply cursor (fresh-leadership reads wait on the inherited
  // log tail committing, which just happened here).
  if (role_ == Role::kLeader && !pending_reads_.empty()) release_ready_reads(now);
}

void RaftNode::send(ServerId to, rpc::Message message) {
  ready_.messages.push_back({id_, to, std::move(message)});
}

void RaftNode::emit(NodeEvent event) {
  event.node = id_;
  if (event_hook_) event_hook_(event);
}

rpc::ConfigStatus RaftNode::own_status() const {
  const auto cfg = policy_->current_config();
  rpc::ConfigStatus s;
  s.log_index = log_.last_index();
  s.timer_period = cfg.timer_period;
  s.conf_clock = cfg.conf_clock;
  return s;
}

SoftState RaftNode::soft_state() const {
  SoftState s;
  s.role = role_;
  s.leader = leader_id_;
  s.term = current_term_;
  s.conf_clock = policy_->current_config().conf_clock;
  return s;
}

void RaftNode::sync_soft_state() {
  const SoftState s = soft_state();
  if (!soft_reported_once_ || !(s == reported_soft_)) {
    ready_.soft_state = s;
  } else {
    // The state drifted and came back before the batch was drained; nothing
    // to report after all.
    ready_.soft_state.reset();
  }
}

void RaftNode::assert_inputs_allowed() const {
  if (ready_in_flight_) {
    throw std::logic_error(
        "input stepped between ready() and advance(): the driver is mid-drain");
  }
}

}  // namespace escape::raft
