// The Ready batch: the deterministic core's only output channel.
//
// RaftNode performs no I/O. Every side effect the protocol requires —
// durable writes, outbound messages, state-machine applies, read grants —
// is *described* in a Ready batch that a driver drains and executes:
//
//   node.step(envelope, now);            // or tick / submit / submit_read
//   if (node.has_ready()) {
//     raft::Ready rd = node.ready();
//     persist(rd.hard_state, rd.log_ops);   // 1. durable BEFORE anything else
//     transport.send(rd.messages);          // 2. only now may messages leave
//     if (rd.restore) state_machine.restore(**rd.restore);
//     for (e : rd.committed) state_machine.apply(e);   // 3. apply in order
//     for (g : rd.read_grants) serve(g);    // 4. grants after applies
//     node.advance(applied_index);
//   }
//
// The persist-before-send ordering is a protocol invariant, not a
// performance choice: an AppendEntriesReply acknowledging index i promises i
// is durable here, and a RequestVoteReply granting a vote promises the vote
// survives a crash. Drivers assert the discipline via ReadySequenceChecker
// (raft/driver.h). The payoff of the split is that one bit-identical core is
// exercised by the simulator's fuzzing and by the TCP runtime, and that
// batched/async persistence can be built entirely driver-side.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "common/types.h"
#include "raft/snapshot.h"
#include "rpc/messages.h"

namespace escape::raft {

/// State that must be durable before a server answers an RPC (Raft Figure 2
/// "persistent state", extended with ESCAPE's adopted configuration).
struct HardState {
  Term current_term = 0;
  ServerId voted_for = kNoServer;
  rpc::Configuration config;  ///< adopted ESCAPE configuration (zeros for Raft)

  bool operator==(const HardState&) const = default;
};

/// Volatile, observable state the driver may want to surface (leader hints
/// for request routing, role for metrics). Never needs persistence.
struct SoftState {
  Role role = Role::kFollower;
  ServerId leader = kNoServer;  ///< current leader hint (kNoServer unknown)
  Term term = 0;
  ConfClock conf_clock = 0;  ///< ESCAPE configuration clock currently adopted

  bool operator==(const SoftState&) const = default;
};

/// One durable log mutation. Ops must be executed strictly in sequence — a
/// batch may legally truncate then append (follower overwrite), or save a
/// snapshot then compact (the save MUST land first: a crash in between
/// replays a covered prefix, never loses one).
struct LogOp {
  enum class Kind : std::uint8_t {
    kAppend,        ///< append `entry` to the WAL at its index
    kTruncateFrom,  ///< discard WAL entries with index >= `index`
    kCompactTo,     ///< WAL prefix through `index` absorbed by a saved snapshot
    kSaveSnapshot,  ///< durably replace the stored snapshot with `snapshot`
  };

  Kind kind = Kind::kAppend;
  rpc::LogEntry entry;  ///< kAppend only
  LogIndex index = 0;   ///< kTruncateFrom / kCompactTo only
  /// kSaveSnapshot only. Shared with the core's in-memory copy — snapshots
  /// can be megabytes and one value may be persisted, shipped, and restored
  /// in the same batch.
  std::shared_ptr<const Snapshot> snapshot;

  static LogOp append(rpc::LogEntry e) {
    LogOp op;
    op.kind = Kind::kAppend;
    op.entry = std::move(e);
    return op;
  }
  static LogOp truncate_from(LogIndex index) {
    LogOp op;
    op.kind = Kind::kTruncateFrom;
    op.index = index;
    return op;
  }
  static LogOp compact_to(LogIndex index) {
    LogOp op;
    op.kind = Kind::kCompactTo;
    op.index = index;
    return op;
  }
  static LogOp save_snapshot(std::shared_ptr<const Snapshot> snap) {
    LogOp op;
    op.kind = Kind::kSaveSnapshot;
    op.snapshot = std::move(snap);
    return op;
  }
};

/// Completion record for one accepted linearizable read (see
/// RaftNode::submit_read). The driver must apply Ready::committed *before*
/// serving granted reads: a grant promises the local state machine has
/// applied at least `read_index`.
using ReadId = std::uint64_t;
struct ReadGrant {
  ReadId id = 0;
  LogIndex read_index = 0;  ///< state served must include this prefix
  bool ok = false;          ///< false: leadership lost before confirmation
  bool via_lease = false;   ///< served under the lease (no confirmation round)
};

/// One batch of pending side effects. Field order mirrors the mandatory
/// execution order (persist, send, restore, apply, grant).
struct Ready {
  /// Monotone batch number (1-based); advance() acknowledges exactly the
  /// sequence last returned by ready().
  std::uint64_t sequence = 0;

  // --- 1. persistence: must be durable before `messages` are sent ---------
  std::optional<HardState> hard_state;  ///< changed term/vote/config, if any
  std::vector<LogOp> log_ops;           ///< ordered WAL + snapshot mutations

  // --- 2. network ----------------------------------------------------------
  std::vector<rpc::Envelope> messages;

  // --- 3. apply ------------------------------------------------------------
  /// Snapshot to restore into the state machine BEFORE applying `committed`
  /// (an InstallSnapshot superseded the log prefix this incarnation applied).
  std::optional<std::shared_ptr<const Snapshot>> restore;
  std::vector<rpc::LogEntry> committed;  ///< newly committed, in log order

  // --- 4. reads ------------------------------------------------------------
  std::vector<ReadGrant> read_grants;  ///< serve after applying `committed`

  // --- observability -------------------------------------------------------
  std::optional<SoftState> soft_state;  ///< set when role/leader/term changed

  /// True when draining this batch would be a no-op.
  bool empty() const {
    return !hard_state && log_ops.empty() && messages.empty() && !restore &&
           committed.empty() && read_grants.empty() && !soft_state;
  }
};

/// Durable state recovered by a driver and handed to a fresh core. This is
/// the only way persisted state enters the core: the core itself never loads
/// anything.
struct Bootstrap {
  std::optional<HardState> hard_state;  ///< from StateStore::load()
  std::optional<Snapshot> snapshot;     ///< from SnapshotStore::load()
  std::vector<rpc::LogEntry> log;       ///< WAL entries beyond the snapshot
  /// Whether the driver can persist snapshots. When false, compact() refuses
  /// (compacting without a durable snapshot loses the prefix on restart).
  bool can_compact = true;
};

}  // namespace escape::raft
