#include "raft/driver.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace escape::raft {

// --- ReadySequenceChecker ----------------------------------------------------

void ReadySequenceChecker::seed(const Bootstrap& boot) {
  persisted_term_ = boot.hard_state ? boot.hard_state->current_term : 0;
  durable_index_ = boot.snapshot ? boot.snapshot->last_included_index : 0;
  if (!boot.log.empty()) {
    durable_index_ = std::max(durable_index_, boot.log.back().index);
  }
}

void ReadySequenceChecker::note_persisted(const Ready& ready) {
  if (ready.hard_state) {
    persisted_term_ = std::max(persisted_term_, ready.hard_state->current_term);
  }
  for (const LogOp& op : ready.log_ops) {
    switch (op.kind) {
      case LogOp::Kind::kAppend:
        durable_index_ = op.entry.index;
        break;
      case LogOp::Kind::kTruncateFrom:
        durable_index_ = std::min(durable_index_, op.index - 1);
        break;
      case LogOp::Kind::kCompactTo:
        // The prefix through `index` is absorbed by a snapshot; durable
        // coverage extends at least that far even if the WAL shrank.
        durable_index_ = std::max(durable_index_, op.index);
        break;
      case LogOp::Kind::kSaveSnapshot:
        durable_index_ = std::max(durable_index_, op.snapshot->last_included_index);
        break;
    }
  }
}

namespace {

[[noreturn]] void violation(const std::string& what) {
  throw std::logic_error("persist-before-send violation: " + what);
}

}  // namespace

void ReadySequenceChecker::check_send(const Ready& ready) const {
  for (const rpc::Envelope& env : ready.messages) {
    std::visit(
        [&](const auto& m) {
          using T = std::decay_t<decltype(m)>;
          if constexpr (std::is_same_v<T, rpc::RequestVote>) {
            // A campaign implies (term, voted_for = self) is durable: a
            // crash-restart must not let this server vote for a rival in the
            // same term it campaigned in.
            if (m.term > persisted_term_) {
              violation("RequestVote in term " + std::to_string(m.term) +
                        " but persisted term is " + std::to_string(persisted_term_));
            }
          } else if constexpr (std::is_same_v<T, rpc::RequestVoteReply>) {
            // A granted vote must survive a crash, or the server could
            // grant a second vote in the same term after restarting.
            if (m.vote_granted && m.term > persisted_term_) {
              violation("granted vote in term " + std::to_string(m.term) +
                        " but persisted term is " + std::to_string(persisted_term_));
            }
          } else if constexpr (std::is_same_v<T, rpc::AppendEntries>) {
            // The leader counts itself toward the quorum for every entry it
            // ships, so shipped entries must already be durable locally.
            if (!m.entries.empty() && m.entries.back().index > durable_index_) {
              violation("AppendEntries ships index " +
                        std::to_string(m.entries.back().index) +
                        " but the WAL is durable only through " +
                        std::to_string(durable_index_));
            }
            if (m.term > persisted_term_) {
              violation("AppendEntries in term " + std::to_string(m.term) +
                        " but persisted term is " + std::to_string(persisted_term_));
            }
          } else if constexpr (std::is_same_v<T, rpc::AppendEntriesReply>) {
            // An ack of index i promises i is durable here: the leader
            // commits on this promise.
            if (m.success && m.match_index > durable_index_) {
              violation("AppendEntriesReply acks index " + std::to_string(m.match_index) +
                        " but the WAL is durable only through " +
                        std::to_string(durable_index_));
            }
          } else if constexpr (std::is_same_v<T, rpc::InstallSnapshot>) {
            if (m.last_included_index > durable_index_) {
              violation("InstallSnapshot ships boundary " +
                        std::to_string(m.last_included_index) +
                        " but durable coverage ends at " + std::to_string(durable_index_));
            }
          } else if constexpr (std::is_same_v<T, rpc::InstallSnapshotReply>) {
            if (m.success && m.match_index > durable_index_) {
              violation("InstallSnapshotReply acks boundary " +
                        std::to_string(m.match_index) + " but durable coverage ends at " +
                        std::to_string(durable_index_));
            }
          } else {
            // TimeoutNow and non-consensus traffic carry no durability
            // promise of their own.
            (void)m;
          }
        },
        env.message);
  }
}

// --- NodeDriver --------------------------------------------------------------

NodeDriver::NodeDriver(storage::StateStore& state_store, storage::Wal& wal,
                       storage::SnapshotStore* snapshots)
    : NodeDriver(state_store, wal, snapshots, Options()) {}

NodeDriver::NodeDriver(storage::StateStore& state_store, storage::Wal& wal,
                       storage::SnapshotStore* snapshots, Options options)
    : state_store_(state_store), wal_(wal), snapshots_(snapshots), options_(options) {}

Bootstrap NodeDriver::recover() {
  Bootstrap boot;
  boot.hard_state = state_store_.load();
  if (snapshots_) boot.snapshot = snapshots_->load();
  boot.log = wal_.recovered();
  boot.can_compact = snapshots_ != nullptr;
  checker_.seed(boot);
  applied_ = boot.snapshot ? boot.snapshot->last_included_index : 0;
  return boot;
}

void NodeDriver::attach(RaftNode& node) {
  if (node_) throw std::logic_error("NodeDriver::attach() called twice");
  node_ = &node;
}

std::size_t NodeDriver::execute_log_ops(const Ready& ready) {
  std::size_t records = 0;
  std::vector<rpc::LogEntry> batch;
  const auto flush_batch = [&] {
    if (batch.empty()) return;
    // Group commit step 1: one WAL call (one buffered write for FileWal)
    // for the whole contiguous run of appends.
    if (batch.size() == 1) {
      wal_.append(batch.front());
    } else {
      wal_.append_batch(batch);
    }
    records += batch.size();
    batch.clear();
  };
  for (const LogOp& op : ready.log_ops) {
    switch (op.kind) {
      case LogOp::Kind::kAppend:
        batch.push_back(op.entry);
        break;
      case LogOp::Kind::kTruncateFrom:
        flush_batch();
        wal_.truncate_from(op.index);
        ++records;
        break;
      case LogOp::Kind::kCompactTo:
        flush_batch();
        wal_.compact_to(op.index);
        ++records;
        break;
      case LogOp::Kind::kSaveSnapshot:
        flush_batch();
        if (!snapshots_) {
          // The core only emits saves when bootstrapped with can_compact;
          // reaching here means the driver lied in recover().
          throw std::logic_error("kSaveSnapshot op but no snapshot store");
        }
        snapshots_->save(*op.snapshot);
        break;
    }
  }
  flush_batch();
  return records;
}

bool NodeDriver::pump_one() {
  if (!node_) throw std::logic_error("NodeDriver::pump() before attach()");
  if (!node_->has_ready()) return false;
  Ready ready = node_->ready();

  // 1. Persistence — write everything before a single byte leaves. Hard
  // state is small and rare (term/vote/config changes); it saves inline even
  // in async mode, so only the log ops ride the completion queue.
  if (ready.hard_state) state_store_.save(*ready.hard_state);
  records_since_sync_ += execute_log_ops(ready);

  if (options_.async_persist) {
    // Stage: the writes are issued but not synced, so nothing may be sent
    // yet — a message now could promise durability a crash would revoke.
    // Applies and read grants proceed (committed entries are quorum-durable
    // by definition; the local state machine is volatile and rebuilt on
    // restart), and advance() below lets the core keep producing while the
    // batch waits for flush_persists().
    if (hooks_.phase) hooks_.phase(Phase::kStaged, ready);
  } else {
    if (options_.group_commit && records_since_sync_ > 0) {
      // Group commit step 2: one sync per batch, amortized over every record
      // it carried (NullWal/MemoryWal: no-op; FileWal: one fsync).
      wal_.sync();
      NodeCounters& c = node_->mutable_counters();
      ++c.wal_group_syncs;
      c.wal_records_per_sync.record(records_since_sync_);
      records_since_sync_ = 0;
    }
#ifndef NDEBUG
    checker_.note_persisted(ready);
#endif
    if (hooks_.phase) hooks_.phase(Phase::kPersisted, ready);

    // 2. Send.
#ifndef NDEBUG
    checker_.check_send(ready);
#endif
    if (!ready.messages.empty() && hooks_.send) hooks_.send(ready.messages);
    if (hooks_.phase) hooks_.phase(Phase::kSent, ready);
  }

  // 3. Restore, then apply — in-batch order is part of the contract.
  if (ready.restore) {
    applied_ = (*ready.restore)->last_included_index;
    if (hooks_.restore) hooks_.restore(*ready.restore);
  }
  for (const rpc::LogEntry& entry : ready.committed) {
    if (hooks_.apply) hooks_.apply(entry);
    applied_ = entry.index;
  }

  // 4. Reads — strictly after the applies they depend on.
  if (hooks_.read) {
    for (const ReadGrant& grant : ready.read_grants) hooks_.read(grant);
  }

  if (hooks_.observe) hooks_.observe(ready);
  node_->advance(applied_);
  if (options_.async_persist) staged_.push_back(std::move(ready));
  return true;
}

std::size_t NodeDriver::pump() {
  std::size_t drained = 0;
  while (pump_one()) ++drained;
  return drained;
}

std::size_t NodeDriver::flush_persists(TimePoint now) {
  if (staged_.empty()) return 0;
  // One sync covers every staged batch's writes — the async flavour of group
  // commit: the fsync is amortized over everything the core produced while
  // the previous one was (conceptually) in flight.
  wal_.sync();
  NodeCounters& counters = node_->mutable_counters();
  ++counters.wal_group_syncs;
  counters.wal_records_per_sync.record(records_since_sync_);
  records_since_sync_ = 0;

  LogIndex highest_durable = 0;
  std::vector<Ready> releasing;
  releasing.swap(staged_);  // send hooks may pump_one() and stage new batches
  for (Ready& ready : releasing) {
    // FIFO per batch: prove durability covers the sends, then release them.
    // A driver bug that reordered or dropped a stage shows up here as the
    // checker throwing on the first overclaiming message.
#ifndef NDEBUG
    checker_.note_persisted(ready);
    checker_.check_send(ready);
#endif
    if (hooks_.phase) hooks_.phase(Phase::kPersisted, ready);
    if (!ready.messages.empty() && hooks_.send) hooks_.send(ready.messages);
    if (hooks_.phase) hooks_.phase(Phase::kSent, ready);
    for (const LogOp& op : ready.log_ops) {
      if (op.kind == LogOp::Kind::kAppend && op.entry.index > highest_durable) {
        highest_durable = op.entry.index;
      }
    }
  }
  const std::size_t released = releasing.size();
  if (highest_durable > 0) node_->ack_persisted(highest_durable, now);
  return released;
}

}  // namespace escape::raft
