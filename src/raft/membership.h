// Membership-change arithmetic (Raft dissertation §4, joint consensus).
//
// A configuration entry in the log carries the *resulting* rpc::Membership,
// fully materialized — followers adopt what they read instead of replaying a
// transition, so a node that crashed mid-reconfig reconstructs its exact
// membership from snapshot + log alone. This header holds the pure helpers:
// the transition function (current membership × ConfChange → target), the
// joint-config completion, the conf-entry payload codec, and set utilities
// the core uses to derive its peer and quorum sets. Everything is
// deterministic and allocation-light; RaftNode owns all policy (when a
// change is legal to *propose*).
#pragma once

#include <algorithm>
#include <optional>
#include <vector>

#include "common/serde.h"
#include "common/types.h"
#include "rpc/messages.h"

namespace escape::raft {

/// One requested membership change (the admin plane's verb).
struct ConfChange {
  rpc::ConfChangeOp op = rpc::ConfChangeOp::kAddLearner;
  ServerId server = kNoServer;

  bool operator==(const ConfChange&) const = default;
};

namespace membership_detail {

inline std::vector<ServerId> sorted_with(std::vector<ServerId> ids, ServerId add) {
  ids.push_back(add);
  std::sort(ids.begin(), ids.end());
  return ids;
}

inline std::vector<ServerId> without(std::vector<ServerId> ids, ServerId drop) {
  ids.erase(std::remove(ids.begin(), ids.end(), drop), ids.end());
  return ids;
}

}  // namespace membership_detail

/// The membership a legal `change` produces from `current`. nullopt when the
/// change is nonsensical: adding a server already present, promoting a
/// non-learner, removing an unknown server, or removing the last voter.
/// Promoting a learner or removing a voter yields a *joint* configuration
/// Cold,new (old_voters = the previous voter set); adding or removing a
/// learner is a simple one-step entry (learners are outside every quorum, so
/// no handoff is needed).
inline std::optional<rpc::Membership> apply_conf_change(const rpc::Membership& current,
                                                        const ConfChange& change) {
  using membership_detail::sorted_with;
  using membership_detail::without;
  if (change.server == kNoServer || current.joint()) return std::nullopt;
  rpc::Membership next = current;
  switch (change.op) {
    case rpc::ConfChangeOp::kAddLearner:
      if (current.contains(change.server)) return std::nullopt;
      next.learners = sorted_with(std::move(next.learners), change.server);
      return next;
    case rpc::ConfChangeOp::kPromote:
      if (!current.is_learner(change.server)) return std::nullopt;
      next.old_voters = next.voters;
      next.voters = sorted_with(std::move(next.voters), change.server);
      next.learners = without(std::move(next.learners), change.server);
      return next;
    case rpc::ConfChangeOp::kRemove:
      if (current.is_learner(change.server)) {
        next.learners = without(std::move(next.learners), change.server);
        return next;
      }
      if (!current.is_voter(change.server)) return std::nullopt;
      if (current.voters.size() <= 1) return std::nullopt;  // last voter stays
      next.old_voters = next.voters;
      next.voters = without(std::move(next.voters), change.server);
      return next;
  }
  return std::nullopt;
}

/// Cnew: the joint configuration with the old majority retired. The leader
/// auto-appends this the moment the joint entry commits under both
/// majorities.
inline rpc::Membership finish_joint(const rpc::Membership& joint) {
  rpc::Membership final_config = joint;
  final_config.old_voters.clear();
  return final_config;
}

/// Everyone the leader replicates to: voters ∪ old_voters ∪ learners,
/// sorted, deduplicated.
inline std::vector<ServerId> all_members(const rpc::Membership& m) {
  std::vector<ServerId> ids = m.voters;
  ids.insert(ids.end(), m.old_voters.begin(), m.old_voters.end());
  ids.insert(ids.end(), m.learners.begin(), m.learners.end());
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

/// Everyone whose vote can count: voters ∪ old_voters, sorted, deduplicated.
inline std::vector<ServerId> voter_union(const rpc::Membership& m) {
  std::vector<ServerId> ids = m.voters;
  ids.insert(ids.end(), m.old_voters.begin(), m.old_voters.end());
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

/// Conf-entry payload: the resulting membership, serialized with the shared
/// rpc codec (the WAL and wire reuse LogEntry::command verbatim).
inline std::vector<std::uint8_t> encode_conf_entry(const rpc::Membership& m) {
  Encoder e;
  rpc::encode_membership(e, m);
  return e.take();
}

/// Parses a conf-entry payload. Throws DecodeError on malformed input — a
/// conf entry was written by this code, so corruption is a bug, not a
/// recoverable condition.
inline rpc::Membership decode_conf_entry(const std::vector<std::uint8_t>& payload) {
  Decoder d(payload.data(), payload.size());
  rpc::Membership m = rpc::decode_membership(d);
  d.expect_end();
  return m;
}

}  // namespace escape::raft
