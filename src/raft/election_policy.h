// The election-policy seam.
//
// ESCAPE's central claim (Lemma 2) is that its election protocol is
// indistinguishable from Raft's on the wire: only *when* a server campaigns,
// *how far* its term jumps (Eq. 2), and one extra vote predicate (the
// confClock staleness rule) change. This interface captures exactly those
// seams, so the replication core in RaftNode is shared verbatim by:
//   * RaftRandomizedPolicy  — vanilla Raft (randomized timeouts, term+1),
//   * core::ZRaftPolicy     — ZooKeeper-style fixed priorities (§VI-D),
//   * core::EscapePolicy    — SCA + PPF + confClock (the paper's protocol).
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "rpc/messages.h"

namespace escape::raft {

/// Strategy hooks that specialize leader election. All methods are invoked
/// from the (single-threaded) RaftNode; implementations need no locking.
class ElectionPolicy {
 public:
  virtual ~ElectionPolicy() = default;

  /// Human-readable policy name for logs and bench output.
  virtual std::string name() const = 0;

  // --- follower / candidate side -----------------------------------------

  /// Election timeout to arm when the timer is (re)set. Raft samples
  /// uniformly; ESCAPE returns the period its adopted configuration imposes
  /// (Eq. 1). A scripted override (see set_timeout_override) wins when set.
  Duration next_election_timeout(Rng& rng) {
    if (timeout_override_) {
      if (auto d = timeout_override_()) return *d;
    }
    return sample_election_timeout(rng);
  }

  /// Term a new campaign runs in, given the current term.
  /// Raft: current + 1. ESCAPE: current + priority (Eq. 2).
  virtual Term campaign_term(Term current) const = 0;

  /// Smallest election timeout any cluster member could currently be using.
  /// Raft: the sampling range's lower bound. ESCAPE: baseTime — Eq. 1's
  /// period for the top priority P = n, the floor of every π(P, k) the
  /// patrol can mint, so patrol rearrangements can never shorten it. Two
  /// read-path mechanisms derive from this floor: the leader lease is a
  /// strict fraction of it, and the vote-recency guard refuses votes within
  /// it of leader contact — together they guarantee a leaseholder is deposed
  /// only after every lease it could have granted has expired.
  virtual Duration min_election_timeout() const = 0;

  /// Configuration clock stamped on outgoing RequestVote (0 under Raft).
  virtual ConfClock vote_request_clock() const = 0;

  /// Additional vote predicate evaluated after Raft's three rules pass.
  /// ESCAPE: reject candidates whose confClock is older than the voter's.
  virtual bool approve_candidate(const rpc::RequestVote& request) const = 0;

  /// Follower adopts a configuration piggybacked on a heartbeat. Returns
  /// true when the adopted configuration changed (node persists it and the
  /// new timer period takes effect at the next timer arm).
  virtual bool on_config_received(const rpc::Configuration& config) = 0;

  /// Configuration currently in force on this server (zeros under Raft);
  /// reported to the leader in AppendEntriesReply.status and persisted.
  virtual rpc::Configuration current_config() const = 0;

  /// Restores the adopted configuration after a restart.
  virtual void restore(const rpc::Configuration& config) = 0;

  // --- leader side (probing patrol function) -----------------------------

  /// Leadership acquired; `others` are the remaining cluster members.
  virtual void on_become_leader(const std::vector<ServerId>& others, Term term) = 0;

  /// The cluster membership changed (a configuration entry was adopted, on
  /// leader and follower alike): `voter_others` is the destination voter set
  /// minus this server, `n_voters` its full size — the n that Eq. 1's
  /// timeout ladder and Eq. 2's term jumps are computed over from now on.
  /// ESCAPE re-deals the priority pool {2..n} over the new set under a
  /// freshly minted confClock, so Lemma 3 uniqueness survives a reconfig
  /// racing a patrol rearrangement (both serialize on the leader's single
  /// clock). Default: ignored (vanilla Raft needs no n).
  virtual void on_membership_changed(const std::vector<ServerId>& voter_others,
                                     std::size_t n_voters) {
    (void)voter_others;
    (void)n_voters;
  }

  /// Records a follower's reply status (log responsiveness, adopted clock).
  virtual void on_follower_status(ServerId from, const rpc::ConfigStatus& status) = 0;

  /// Pipeline flow-control feedback, reported once per heartbeat round just
  /// before begin_heartbeat_round(): how many log entries the leader still
  /// owes `follower` (its replication backlog) and how many optimistic
  /// batches are in flight to it. ESCAPE folds this into the patrol's
  /// responsiveness ranking — a follower drowning under load should not keep
  /// the shortest timeout. Default: ignored.
  virtual void on_follower_backlog(ServerId follower, LogIndex backlog, std::size_t inflight) {
    (void)follower;
    (void)backlog;
    (void)inflight;
  }

  /// Invoked once per heartbeat round before building AppendEntries. ESCAPE
  /// performs the patrol rearrangement here and advances the confClock.
  virtual void begin_heartbeat_round() = 0;

  /// Configuration to piggyback to `dest` in the current round, if any.
  virtual std::optional<rpc::Configuration> config_for(ServerId dest) = 0;

  /// The standing assignment for `dest` regardless of patrol rounds; shipped
  /// inside InstallSnapshot so a follower catching up via snapshot resumes
  /// at the generation the leader last assigned *to it* (never the leader's
  /// own configuration — two servers must not share a (P, k) pair).
  virtual std::optional<rpc::Configuration> assignment_for(ServerId dest) {
    (void)dest;
    return std::nullopt;
  }

  // --- test / scenario scripting ------------------------------------------

  /// Overrides timeout sampling; used by scenario drivers (e.g. Figure 10's
  /// forced simultaneous expirations). Return nullopt to fall through to the
  /// policy's own sampling for that arm.
  using TimeoutOverride = std::function<std::optional<Duration>()>;
  void set_timeout_override(TimeoutOverride fn) { timeout_override_ = std::move(fn); }

 protected:
  /// Policy-specific timeout sampling (see next_election_timeout).
  virtual Duration sample_election_timeout(Rng& rng) = 0;

 private:
  TimeoutOverride timeout_override_;
};

/// Vanilla Raft: timeouts uniform in [min, max], terms advance by one, no
/// configurations, every qualified candidate approved.
class RaftRandomizedPolicy final : public ElectionPolicy {
 public:
  /// Timeout range in internal time units; the paper's recommended setting
  /// for 100–200 ms latency is 1500–3000 ms.
  RaftRandomizedPolicy(Duration timeout_min, Duration timeout_max)
      : timeout_min_(timeout_min), timeout_max_(timeout_max) {}

  std::string name() const override { return "raft"; }

  Term campaign_term(Term current) const override { return current + 1; }
  Duration min_election_timeout() const override { return timeout_min_; }
  ConfClock vote_request_clock() const override { return 0; }
  bool approve_candidate(const rpc::RequestVote&) const override { return true; }
  bool on_config_received(const rpc::Configuration&) override { return false; }
  rpc::Configuration current_config() const override { return {}; }
  void restore(const rpc::Configuration&) override {}

  void on_become_leader(const std::vector<ServerId>&, Term) override {}
  void on_follower_status(ServerId, const rpc::ConfigStatus&) override {}
  void begin_heartbeat_round() override {}
  std::optional<rpc::Configuration> config_for(ServerId) override { return std::nullopt; }

 protected:
  Duration sample_election_timeout(Rng& rng) override {
    return rng.uniform_int(timeout_min_, timeout_max_);
  }

 private:
  Duration timeout_min_;
  Duration timeout_max_;
};

}  // namespace escape::raft
